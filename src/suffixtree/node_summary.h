#ifndef TSWARP_SUFFIXTREE_NODE_SUMMARY_H_
#define TSWARP_SUFFIXTREE_NODE_SUMMARY_H_

#include <cstdint>
#include <limits>
#include <span>
#include <vector>

#include "common/types.h"
#include "suffixtree/tree_view.h"

namespace tswarp::suffixtree {

/// Per-node subtree summary, one record per tree node, indexed by NodeId.
///
/// Every subsequence that the search driver could emit while inside the
/// subtree of node `n` draws its elements from three symbol populations:
/// the prefix already pushed on the warping table, the symbols of `n`'s
/// own edge label, and the symbols below `n`. The record stores value
/// hulls for the latter two (the driver tracks the prefix hull itself):
///
///   seg_lo/seg_hi[k]   piecewise envelope of the edge label from the
///                      parent into `n`, split into `label_segments`
///                      (<= kMaxLabelSegments) contiguous runs;
///   sub_lo/sub_hi      hull of every label symbol strictly below `n`;
///   total_lo/total_hi  hull of label + subtree — the aggregate a parent
///                      folds into its own sub hull, and the cheap
///                      first-stage screen interval;
///   max_depth          longest symbol path from `n`'s parent through
///                      `n` downward (label_len + deepest child), which
///                      bounds every candidate length reachable below
///                      the edge — the banded length screen.
///
/// Hulls are stored as floats rounded OUTWARD (lo toward -inf, hi toward
/// +inf), so a float hull always contains the exact double hull and the
/// summary bound stays a true lower bound. Empty hulls (a leaf's sub
/// hull, the root's label) are lo=+inf / hi=-inf.
///
/// The record is exactly 64 bytes so it honors the v2 bundle's record
/// alignment contract and a node's summary never straddles a cache line.
struct NodeSummaryRecord {
  static constexpr std::uint32_t kMaxLabelSegments = 4;

  float seg_lo[kMaxLabelSegments];
  float seg_hi[kMaxLabelSegments];
  float sub_lo;
  float sub_hi;
  float total_lo;
  float total_hi;
  std::uint32_t label_segments;  // 0 (root) .. kMaxLabelSegments
  std::uint32_t max_depth;       // symbols; saturated at uint32 max
  std::uint32_t reserved[2];     // zero; room for future PAA coefficients
};
static_assert(sizeof(NodeSummaryRecord) == 64);

inline constexpr float kEmptyHullLo = std::numeric_limits<float>::infinity();
inline constexpr float kEmptyHullHi = -std::numeric_limits<float>::infinity();

/// Value hull of one symbol: the closed interval containing every raw
/// element value the symbol can stand for. Exact trees use the degenerate
/// [v, v]; categorized trees use the fitted category interval.
struct SymbolHull {
  Value lo;
  Value hi;
};

/// Computes a summary for every node of `tree` in one post-order pass.
/// `symbol_hulls` is indexed by symbol; every label symbol in the tree
/// must be a valid index. The result is indexed by NodeId (dense ids).
std::vector<NodeSummaryRecord> BuildNodeSummaries(
    const TreeView& tree, std::span<const SymbolHull> symbol_hulls);

}  // namespace tswarp::suffixtree

#endif  // TSWARP_SUFFIXTREE_NODE_SUMMARY_H_
