#include "suffixtree/dot_export.h"

#include <deque>
#include <sstream>

namespace tswarp::suffixtree {

std::string ToDot(const TreeView& view, const DotOptions& options) {
  std::ostringstream out;
  out << "digraph suffixtree {\n"
      << "  node [shape=circle, fontsize=10];\n";
  auto format = options.symbol_formatter
                    ? options.symbol_formatter
                    : [](Symbol s) { return std::to_string(s); };

  std::deque<NodeId> queue = {view.Root()};
  std::size_t emitted = 0;
  Children children;
  std::vector<OccurrenceRec> occs;
  while (!queue.empty()) {
    const NodeId node = queue.front();
    queue.pop_front();
    if (options.max_nodes != 0 && emitted >= options.max_nodes) {
      out << "  n" << node << " [label=\"...\", shape=plaintext];\n";
      continue;
    }
    ++emitted;

    std::string annotation;
    if (options.show_occurrences) {
      occs.clear();
      view.GetOccurrences(node, &occs);
      for (const OccurrenceRec& o : occs) {
        annotation += "\\n(" + std::to_string(o.seq) + "," +
                      std::to_string(o.pos) + ")";
      }
    }
    out << "  n" << node << " [label=\"" << node << annotation << "\"";
    if (!annotation.empty()) out << ", shape=doublecircle";
    out << "];\n";

    view.GetChildren(node, &children);
    for (const Children::Edge& e : children.edges) {
      std::string label;
      const std::span<const Symbol> symbols = children.Label(e);
      for (std::size_t i = 0; i < symbols.size(); ++i) {
        if (i > 0) label += " ";
        if (i == 8 && symbols.size() > 10) {
          label += "... +" + std::to_string(symbols.size() - 8);
          break;
        }
        label += format(symbols[i]);
      }
      out << "  n" << node << " -> n" << e.child << " [label=\"" << label
          << "\"];\n";
      queue.push_back(e.child);
    }
  }
  out << "}\n";
  return out.str();
}

}  // namespace tswarp::suffixtree
