#include "suffixtree/tree_view.h"

namespace tswarp::suffixtree {

void TreeView::CollectSubtreeOccurrences(
    NodeId node, std::vector<OccurrenceRec>* out) const {
  SubtreeScratch scratch;
  CollectSubtreeOccurrences(node, out, &scratch);
}

void TreeView::CollectSubtreeOccurrences(NodeId node,
                                         std::vector<OccurrenceRec>* out,
                                         SubtreeScratch* scratch) const {
  std::vector<NodeId>& stack = scratch->stack;
  Children& children = scratch->children;
  stack.clear();
  stack.push_back(node);
  while (!stack.empty()) {
    const NodeId n = stack.back();
    stack.pop_back();
    GetOccurrences(n, out);
    GetChildren(n, &children);
    for (const Children::Edge& e : children.edges) stack.push_back(e.child);
  }
}

}  // namespace tswarp::suffixtree
