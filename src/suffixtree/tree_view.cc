#include "suffixtree/tree_view.h"

namespace tswarp::suffixtree {

void TreeView::CollectSubtreeOccurrences(
    NodeId node, std::vector<OccurrenceRec>* out) const {
  std::vector<NodeId> stack = {node};
  Children children;
  while (!stack.empty()) {
    const NodeId n = stack.back();
    stack.pop_back();
    GetOccurrences(n, out);
    GetChildren(n, &children);
    for (const Children::Edge& e : children.edges) stack.push_back(e.child);
  }
}

}  // namespace tswarp::suffixtree
