#ifndef TSWARP_SUFFIXTREE_DOT_EXPORT_H_
#define TSWARP_SUFFIXTREE_DOT_EXPORT_H_

#include <functional>
#include <string>

#include "common/types.h"
#include "suffixtree/tree_view.h"

namespace tswarp::suffixtree {

/// Options for Graphviz export.
struct DotOptions {
  /// Formats one label symbol; defaults to the integer value.
  std::function<std::string(Symbol)> symbol_formatter;

  /// Cap on emitted nodes (breadth-first); 0 = unlimited. Big trees make
  /// Graphviz unhappy, so default to a small window.
  std::size_t max_nodes = 256;

  /// Include occurrence (seq, pos) annotations on nodes.
  bool show_occurrences = true;
};

/// Renders a suffix tree as a Graphviz digraph (for debugging and docs).
std::string ToDot(const TreeView& view, const DotOptions& options = {});

}  // namespace tswarp::suffixtree

#endif  // TSWARP_SUFFIXTREE_DOT_EXPORT_H_
