#include "suffixtree/ukkonen.h"

#include <limits>
#include <unordered_map>
#include <vector>

#include "common/logging.h"

namespace tswarp::suffixtree {
namespace {

/// Terminator symbol appended during construction. Real symbols are
/// non-negative (category ids / dictionary codes), so this cannot collide.
constexpr Symbol kTerminator = std::numeric_limits<Symbol>::min();

/// Ukkonen working representation: implicit suffix tree over x[0..m).
/// Edge into node v is x[start_[v], end(v)); leaves are open-ended.
class Ukkonen {
 public:
  explicit Ukkonen(std::vector<Symbol> x) : x_(std::move(x)) {
    // Node 0 is the root.
    NewNode(0, 0);
    start_[0] = 0;
    end_[0] = 0;
  }

  void Build() {
    const auto m = static_cast<std::int32_t>(x_.size());
    for (std::int32_t i = 0; i < m; ++i) Extend(i);
  }

  /// Converts to the library SuffixTree representation, stripping the
  /// terminator and attaching one occurrence per suffix of sequence `id`
  /// (with run lengths taken from `db`, matching the insertion builder).
  SuffixTree ToSuffixTree(const SymbolDatabase& db, SeqId id) const {
    SuffixTree out;
    const auto m = static_cast<std::int32_t>(x_.size());  // Includes T.
    struct Frame {
      std::int32_t node;
      NodeId out_node;
      std::int32_t depth;  // Path length in symbols (terminator included).
    };
    std::vector<Frame> stack = {{0, out.Root(), 0}};
    while (!stack.empty()) {
      const Frame f = stack.back();
      stack.pop_back();
      auto range = children_.equal_range(f.node);
      for (auto it = range.first; it != range.second; ++it) {
        const std::int32_t child = it->second;
        const std::int32_t lo = start_[child];
        const std::int32_t hi = End(child);
        const bool is_leaf = !HasChildren(child);
        std::int32_t label_len = hi - lo;
        if (is_leaf) {
          TSW_DCHECK(x_[static_cast<std::size_t>(hi) - 1] == kTerminator);
          --label_len;  // Strip the terminator.
          const std::int32_t depth = f.depth + label_len;
          const std::int32_t suffix = m - 1 - depth;  // m-1 real symbols.
          if (label_len == 0) {
            // Suffix is a prefix of a longer suffix: occurrence at parent.
            if (suffix < m - 1) {
              out.AddOccurrence(
                  f.out_node,
                  {id, static_cast<Pos>(suffix),
                   db.RunLength(id, static_cast<Pos>(suffix))});
            }
            continue;
          }
          const NodeId leaf = out.AddNode(
              f.out_node,
              std::span<const Symbol>(x_.data() + lo,
                                      static_cast<std::size_t>(label_len)));
          out.AddOccurrence(leaf,
                            {id, static_cast<Pos>(suffix),
                             db.RunLength(id, static_cast<Pos>(suffix))});
          continue;
        }
        const NodeId inner = out.AddNode(
            f.out_node,
            std::span<const Symbol>(x_.data() + lo,
                                    static_cast<std::size_t>(label_len)));
        stack.push_back({child, inner, f.depth + label_len});
      }
    }
    out.Finalize();
    return out;
  }

 private:
  std::int32_t NewNode(std::int32_t start, std::int32_t end_or_open) {
    const auto v = static_cast<std::int32_t>(start_.size());
    start_.push_back(start);
    end_.push_back(end_or_open);
    slink_.push_back(0);
    return v;
  }

  static constexpr std::int32_t kOpen = -1;

  std::int32_t End(std::int32_t v) const {
    return end_[static_cast<std::size_t>(v)] == kOpen
               ? static_cast<std::int32_t>(x_.size())
               : end_[static_cast<std::size_t>(v)];
  }

  std::int32_t EdgeLength(std::int32_t v) const {
    return End(v) - start_[static_cast<std::size_t>(v)];
  }

  static std::uint64_t Key(std::int32_t node, Symbol s) {
    return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(node))
            << 32) |
           static_cast<std::uint32_t>(s);
  }

  std::int32_t Child(std::int32_t node, Symbol s) const {
    auto it = child_index_.find(Key(node, s));
    return it == child_index_.end() ? -1 : it->second;
  }

  void SetChild(std::int32_t node, Symbol s, std::int32_t child) {
    auto [it, inserted] = child_index_.try_emplace(Key(node, s), child);
    if (!inserted) {
      // Replacing (edge split): update the multimap entry as well.
      auto range = children_.equal_range(node);
      for (auto cit = range.first; cit != range.second; ++cit) {
        if (cit->second == it->second) {
          cit->second = child;
          break;
        }
      }
      it->second = child;
      return;
    }
    children_.emplace(node, child);
  }

  bool HasChildren(std::int32_t node) const {
    return children_.find(node) != children_.end();
  }

  /// One Ukkonen phase: extend the implicit tree with x_[i].
  void Extend(std::int32_t i) {
    const Symbol c = x_[static_cast<std::size_t>(i)];
    ++remainder_;
    last_internal_ = -1;
    while (remainder_ > 0) {
      if (active_len_ == 0) active_edge_ = i;
      const Symbol edge_sym = x_[static_cast<std::size_t>(active_edge_)];
      const std::int32_t next = Child(active_node_, edge_sym);
      if (next == -1) {
        // Rule 2: new leaf from the active node.
        const std::int32_t leaf = NewNode(i, kOpen);
        SetChild(active_node_, edge_sym, leaf);
        AddSuffixLink(active_node_);
      } else {
        if (active_len_ >= EdgeLength(next)) {
          // Observation 2: walk down.
          active_edge_ += EdgeLength(next);
          active_len_ -= EdgeLength(next);
          active_node_ = next;
          continue;
        }
        const Symbol on_edge = x_[static_cast<std::size_t>(
            start_[static_cast<std::size_t>(next)] + active_len_)];
        if (on_edge == c) {
          // Observation 3: already present; the phase ends.
          ++active_len_;
          AddSuffixLink(active_node_);
          break;
        }
        // Rule 2 with an edge split.
        const std::int32_t split =
            NewNode(start_[static_cast<std::size_t>(next)],
                    start_[static_cast<std::size_t>(next)] + active_len_);
        SetChild(active_node_, edge_sym, split);
        const std::int32_t leaf = NewNode(i, kOpen);
        SetChild(split, c, leaf);
        start_[static_cast<std::size_t>(next)] += active_len_;
        SetChild(split,
                 x_[static_cast<std::size_t>(
                     start_[static_cast<std::size_t>(next)])],
                 next);
        AddSuffixLink(split);
      }
      --remainder_;
      if (active_node_ == 0 && active_len_ > 0) {  // Rule 1.
        --active_len_;
        active_edge_ = i - remainder_ + 1;
      } else if (active_node_ != 0) {  // Rule 3.
        active_node_ = slink_[static_cast<std::size_t>(active_node_)];
      }
    }
  }

  void AddSuffixLink(std::int32_t node) {
    if (last_internal_ != -1) {
      slink_[static_cast<std::size_t>(last_internal_)] = node;
    }
    last_internal_ = node;
  }

  std::vector<Symbol> x_;
  std::vector<std::int32_t> start_;
  std::vector<std::int32_t> end_;
  std::vector<std::int32_t> slink_;
  std::unordered_map<std::uint64_t, std::int32_t> child_index_;
  std::unordered_multimap<std::int32_t, std::int32_t> children_;
  std::int32_t active_node_ = 0;
  std::int32_t active_edge_ = 0;
  std::int32_t active_len_ = 0;
  std::int32_t remainder_ = 0;
  std::int32_t last_internal_ = -1;
};

}  // namespace

SuffixTree BuildSuffixTreeUkkonen(const SymbolDatabase& db, SeqId id) {
  const SymbolSequence& s = db.sequence(id);
  std::vector<Symbol> x(s.begin(), s.end());
  x.push_back(kTerminator);
  Ukkonen builder(std::move(x));
  builder.Build();
  return builder.ToSuffixTree(db, id);
}

}  // namespace tswarp::suffixtree
