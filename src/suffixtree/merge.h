#ifndef TSWARP_SUFFIXTREE_MERGE_H_
#define TSWARP_SUFFIXTREE_MERGE_H_

#include <atomic>
#include <vector>

#include "suffixtree/tree_view.h"

namespace tswarp::suffixtree {

/// Merges two generalized suffix trees into `out` by synchronized pre-order
/// traversal, combining the paths of common subsequences (the disk-based
/// incremental construction of Bieganski et al. used by the paper,
/// Section 4.1). The sources are only read through the TreeView interface,
/// so disk-resident trees stream through their buffer pools; the output is
/// written once through TreeSink.
///
/// Complexity O(|A| + |B|) tree operations plus the symbol comparisons on
/// shared label prefixes. Finalize() is called on `out`.
///
/// `cancel` (optional) is polled periodically; when it becomes true the
/// merge unwinds and returns false WITHOUT finalizing `out` — the caller
/// must discard the partial sink (background tier compactions abort this
/// way on shutdown). Returns true on a completed, finalized merge.
bool MergeTrees(const TreeView& a, const TreeView& b, TreeSink* out,
                const std::atomic<bool>* cancel = nullptr);

/// Structural copy of `view` into `sink` (pre-order). Finalize() is called
/// on `sink`. Used to serialize an in-memory tree to disk and vice versa.
void CopyTree(const TreeView& view, TreeSink* sink);

/// Read-only adaptor that rebases every occurrence's sequence id by a
/// fixed offset, leaving the structure untouched. Tier compaction merges
/// two tiers whose occurrences are tier-local (each tier's ids start at
/// 0 over its own database fragment); wrapping the second tier in
/// SeqOffsetTreeView(b, a.num_sequences) makes the merged tier's ids
/// local to the concatenated fragment.
class SeqOffsetTreeView : public TreeView {
 public:
  SeqOffsetTreeView(const TreeView& base, SeqId offset)
      : base_(base), offset_(offset) {}

  NodeId Root() const override { return base_.Root(); }
  void GetChildren(NodeId node, Children* out) const override {
    base_.GetChildren(node, out);
  }
  void GetOccurrences(NodeId node,
                      std::vector<OccurrenceRec>* out) const override {
    const std::size_t first = out->size();
    base_.GetOccurrences(node, out);
    for (std::size_t i = first; i < out->size(); ++i) {
      (*out)[i].seq += offset_;
    }
  }
  std::uint32_t SubtreeOccCount(NodeId node) const override {
    return base_.SubtreeOccCount(node);
  }
  Pos MaxRun(NodeId node) const override { return base_.MaxRun(node); }
  std::uint64_t NumNodes() const override { return base_.NumNodes(); }
  std::uint64_t NumOccurrences() const override {
    return base_.NumOccurrences();
  }
  std::uint64_t NumLabelSymbols() const override {
    return base_.NumLabelSymbols();
  }
  std::uint64_t SizeBytes() const override { return base_.SizeBytes(); }
  void HintSequentialScan() const override { base_.HintSequentialScan(); }

 private:
  const TreeView& base_;
  SeqId offset_;
};

}  // namespace tswarp::suffixtree

#endif  // TSWARP_SUFFIXTREE_MERGE_H_
