#ifndef TSWARP_SUFFIXTREE_MERGE_H_
#define TSWARP_SUFFIXTREE_MERGE_H_

#include "suffixtree/tree_view.h"

namespace tswarp::suffixtree {

/// Merges two generalized suffix trees into `out` by synchronized pre-order
/// traversal, combining the paths of common subsequences (the disk-based
/// incremental construction of Bieganski et al. used by the paper,
/// Section 4.1). The sources are only read through the TreeView interface,
/// so disk-resident trees stream through their buffer pools; the output is
/// written once through TreeSink.
///
/// Complexity O(|A| + |B|) tree operations plus the symbol comparisons on
/// shared label prefixes. Finalize() is called on `out`.
void MergeTrees(const TreeView& a, const TreeView& b, TreeSink* out);

/// Structural copy of `view` into `sink` (pre-order). Finalize() is called
/// on `sink`. Used to serialize an in-memory tree to disk and vice versa.
void CopyTree(const TreeView& view, TreeSink* sink);

}  // namespace tswarp::suffixtree

#endif  // TSWARP_SUFFIXTREE_MERGE_H_
