#include "suffixtree/suffix_tree.h"

#include <algorithm>

#include "common/logging.h"

namespace tswarp::suffixtree {
namespace {

// Serialized record sizes; SizeBytes() reports the on-disk footprint so
// in-memory and disk trees are comparable (Table 1 accounting).
constexpr std::uint64_t kNodeRecordBytes = 32;
constexpr std::uint64_t kOccRecordBytes = 16;
constexpr std::uint64_t kLabelSymbolBytes = sizeof(Symbol);
constexpr std::uint64_t kHeaderBytes = 64;

std::uint64_t ChildKey(NodeId parent, Symbol s) {
  return (static_cast<std::uint64_t>(parent) << 32) |
         static_cast<std::uint32_t>(s);
}

}  // namespace

SuffixTree::SuffixTree() {
  nodes_.push_back(Node{});  // Root: id 0, empty label.
}

void SuffixTree::GetChildren(NodeId node, Children* out) const {
  out->Clear();
  TSW_DCHECK(node < nodes_.size());
  for (NodeId c = nodes_[node].first_child; c != kNilNode;
       c = nodes_[c].next_sibling) {
    const Node& cn = nodes_[c];
    const auto begin = static_cast<std::uint32_t>(out->label_pool.size());
    out->label_pool.insert(out->label_pool.end(),
                           label_pool_.begin() + cn.label_begin,
                           label_pool_.begin() + cn.label_begin +
                               cn.label_len);
    out->edges.push_back({c, begin, cn.label_len});
  }
}

void SuffixTree::GetOccurrences(NodeId node,
                                std::vector<OccurrenceRec>* out) const {
  TSW_DCHECK(node < nodes_.size());
  for (std::uint32_t o = nodes_[node].first_occ; o != kNilOcc;
       o = occurrences_[o].next) {
    const Occ& occ = occurrences_[o];
    out->push_back({occ.seq, occ.pos, occ.run});
  }
}

std::uint32_t SuffixTree::SubtreeOccCount(NodeId node) const {
  TSW_DCHECK(finalized_);
  return nodes_[node].subtree_occ;
}

Pos SuffixTree::MaxRun(NodeId node) const {
  TSW_DCHECK(finalized_);
  return nodes_[node].max_run;
}

std::uint64_t SuffixTree::SizeBytes() const {
  return kHeaderBytes + NumNodes() * kNodeRecordBytes +
         NumOccurrences() * kOccRecordBytes +
         NumLabelSymbols() * kLabelSymbolBytes;
}

NodeId SuffixTree::AddNode(NodeId parent, std::span<const Symbol> label) {
  if (parent == kNilNode) {
    // Root creation: the constructor already made it.
    TSW_CHECK(nodes_.size() == 1 && occurrences_.empty());
    return 0;
  }
  TSW_CHECK(parent < nodes_.size());
  TSW_CHECK(!label.empty()) << "non-root edges need a non-empty label";
  Node n;
  n.label_begin = static_cast<std::uint32_t>(label_pool_.size());
  n.label_len = static_cast<std::uint32_t>(label.size());
  label_pool_.insert(label_pool_.end(), label.begin(), label.end());
  n.next_sibling = nodes_[parent].first_child;
  const auto id = static_cast<NodeId>(nodes_.size());
  nodes_.push_back(n);
  nodes_[parent].first_child = id;
  return id;
}

void SuffixTree::AddOccurrence(NodeId node, const OccurrenceRec& occ) {
  TSW_CHECK(node < nodes_.size());
  Occ o{occ.seq, occ.pos, occ.run, nodes_[node].first_occ};
  nodes_[node].first_occ = static_cast<std::uint32_t>(occurrences_.size());
  occurrences_.push_back(o);
}

void SuffixTree::Finalize() {
  TSW_CHECK(!finalized_);
  // Iterative post-order: push node twice; second visit folds children.
  std::vector<std::pair<NodeId, bool>> stack;
  stack.reserve(256);
  stack.push_back({0, false});
  while (!stack.empty()) {
    auto [n, processed] = stack.back();
    stack.pop_back();
    if (!processed) {
      stack.push_back({n, true});
      for (NodeId c = nodes_[n].first_child; c != kNilNode;
           c = nodes_[c].next_sibling) {
        stack.push_back({c, false});
      }
      continue;
    }
    std::uint32_t count = 0;
    Pos max_run = 0;
    for (std::uint32_t o = nodes_[n].first_occ; o != kNilOcc;
         o = occurrences_[o].next) {
      ++count;
      max_run = std::max(max_run, occurrences_[o].run);
    }
    for (NodeId c = nodes_[n].first_child; c != kNilNode;
         c = nodes_[c].next_sibling) {
      count += nodes_[c].subtree_occ;
      max_run = std::max(max_run, nodes_[c].max_run);
    }
    nodes_[n].subtree_occ = count;
    nodes_[n].max_run = max_run;
  }
  finalized_ = true;
}

SuffixTreeBuilder::SuffixTreeBuilder(const SymbolDatabase* db,
                                     BuildOptions options)
    : db_(db), options_(options) {
  TSW_CHECK(db != nullptr);
}

NodeId SuffixTreeBuilder::FindChild(NodeId parent, Symbol s) const {
  auto it = child_index_.find(ChildKey(parent, s));
  return it == child_index_.end() ? kNilNode : it->second;
}

void SuffixTreeBuilder::LinkChild(NodeId parent, Symbol s, NodeId child) {
  child_index_.emplace(ChildKey(parent, s), child);
  // Sibling chaining is done by SuffixTree::AddNode for new nodes; for
  // split nodes the chain is adjusted in place (see InsertSuffix).
  (void)parent;
  (void)child;
}

void SuffixTreeBuilder::InsertSequence(SeqId id) {
  const SymbolSequence& s = db_->sequence(id);
  const auto n = static_cast<Pos>(s.size());
  Pos p = 0;
  while (p < n) {
    // One scan finds the run; all positions inside it share the symbol.
    Pos run = 1;
    while (p + run < n && s[p + run] == s[p]) ++run;
    for (Pos q = p; q < p + run; ++q) {
      const Pos suffix_len = n - q;
      if (options_.min_suffix_length != 0 &&
          suffix_len < options_.min_suffix_length) {
        ++skipped_suffixes_;
        continue;
      }
      if (options_.sparse && q != p) {
        ++skipped_suffixes_;
        continue;
      }
      InsertSuffix(id, q, run - (q - p));
    }
    p += run;
  }
}

void SuffixTreeBuilder::InsertSuffix(SeqId id, Pos start, Pos run) {
  std::span<const Symbol> sfx = db_->Suffix(id, start);
  if (options_.max_suffix_length != 0 &&
      sfx.size() > options_.max_suffix_length) {
    sfx = sfx.subspan(0, options_.max_suffix_length);
  }
  ++stored_suffixes_;
  const OccurrenceRec occ{id, start, run};
  auto& nodes = tree_.nodes_;
  auto& pool = tree_.label_pool_;

  NodeId cur = 0;
  std::size_t i = 0;
  const std::size_t n = sfx.size();
  while (true) {
    if (i == n) {
      tree_.AddOccurrence(cur, occ);
      return;
    }
    const NodeId child = FindChild(cur, sfx[i]);
    if (child == kNilNode) {
      const NodeId leaf = tree_.AddNode(cur, sfx.subspan(i));
      LinkChild(cur, sfx[i], leaf);
      tree_.AddOccurrence(leaf, occ);
      return;
    }
    const std::uint32_t lb = nodes[child].label_begin;
    const std::uint32_t ll = nodes[child].label_len;
    std::uint32_t j = 1;
    while (j < ll && i + j < n && pool[lb + j] == sfx[i + j]) ++j;
    if (j == ll) {
      cur = child;
      i += j;
      continue;
    }
    // Split the edge above `child` at offset j. `child` keeps its identity
    // (slot in the parent's sibling chain and its child-index key) and
    // becomes the upper split node; a fresh node takes over the deep part.
    const auto deep = static_cast<NodeId>(nodes.size());
    SuffixTree::Node deep_node;
    deep_node.label_begin = lb + j;
    deep_node.label_len = ll - j;
    deep_node.first_child = nodes[child].first_child;
    deep_node.first_occ = nodes[child].first_occ;
    deep_node.next_sibling = kNilNode;
    nodes.push_back(deep_node);
    // Re-key the grandchildren from `child` to `deep`.
    for (NodeId gc = deep_node.first_child; gc != kNilNode;
         gc = nodes[gc].next_sibling) {
      const Symbol gs = pool[nodes[gc].label_begin];
      child_index_.erase(ChildKey(child, gs));
      child_index_.emplace(ChildKey(deep, gs), gc);
    }
    nodes[child].label_len = j;
    nodes[child].first_child = deep;
    nodes[child].first_occ = SuffixTree::kNilOcc;
    child_index_.emplace(ChildKey(child, pool[lb + j]), deep);

    if (i + j == n) {
      tree_.AddOccurrence(child, occ);
      return;
    }
    const NodeId leaf = tree_.AddNode(child, sfx.subspan(i + j));
    LinkChild(child, sfx[i + j], leaf);
    tree_.AddOccurrence(leaf, occ);
    return;
  }
}

SuffixTree SuffixTreeBuilder::Build() {
  child_index_.clear();
  tree_.Finalize();
  return std::move(tree_);
}

SuffixTree BuildSuffixTree(const SymbolDatabase& db, BuildOptions options) {
  SuffixTreeBuilder builder(&db, options);
  for (SeqId id = 0; id < db.size(); ++id) builder.InsertSequence(id);
  return builder.Build();
}

}  // namespace tswarp::suffixtree
