#ifndef TSWARP_SUFFIXTREE_UKKONEN_H_
#define TSWARP_SUFFIXTREE_UKKONEN_H_

#include "suffixtree/suffix_tree.h"
#include "suffixtree/symbol_database.h"

namespace tswarp::suffixtree {

/// Builds the suffix tree of a single sequence in O(n) time with Ukkonen's
/// algorithm (suffix links + active point). Produces exactly the same tree
/// as suffix-by-suffix insertion, including occurrence records for every
/// suffix, but in linear instead of O(n * height) time.
///
/// Internally the sequence is extended with a unique terminator so every
/// suffix ends at a leaf; the terminator is stripped during a final
/// compaction pass (suffixes that are prefixes of longer suffixes become
/// occurrences at internal nodes, matching the insertion builder's
/// representation).
///
/// The per-sequence Ukkonen trees plus MergeTrees() realize the paper's
/// construction pipeline in its purest form: linear-time per-sequence
/// builds followed by a series of binary merges (Section 4.1).
SuffixTree BuildSuffixTreeUkkonen(const SymbolDatabase& db, SeqId id);

}  // namespace tswarp::suffixtree

#endif  // TSWARP_SUFFIXTREE_UKKONEN_H_
