#include "suffixtree/disk_tree.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <utility>

#include "common/logging.h"
#include "suffixtree/merge.h"

namespace tswarp::suffixtree {
namespace {

constexpr std::uint64_t kMetaMagic = 0x545357545245451ull;  // "TSWTREE"+1
constexpr std::uint32_t kMetaVersion = 1;

// On-disk node record: 32 bytes, no padding.
struct NodeRecord {
  std::uint64_t label_offset;  // Symbol index into the label region.
  std::uint32_t label_len;
  std::uint32_t first_child;
  std::uint32_t next_sibling;
  std::uint32_t first_occ;
  std::uint32_t subtree_occ;
  std::uint32_t max_run;
};
static_assert(sizeof(NodeRecord) == 32);

// On-disk occurrence record: 16 bytes.
struct OccRecord {
  std::uint32_t seq;
  std::uint32_t pos;
  std::uint32_t run;
  std::uint32_t next;
};
static_assert(sizeof(OccRecord) == 16);

constexpr std::uint32_t kNilOcc = 0xFFFFFFFFu;

// Records must never straddle a page boundary or the zero-copy cursors
// below could not hand out direct pointers into pinned frames.
static_assert(storage::PagedFile::kPageSize % sizeof(NodeRecord) == 0);
static_assert(storage::PagedFile::kPageSize % sizeof(OccRecord) == 0);
static_assert(storage::PagedFile::kPageSize % sizeof(Symbol) == 0);

struct MetaRecord {
  std::uint64_t magic;
  std::uint32_t version;
  std::uint32_t finalized;
  std::uint64_t num_nodes;
  std::uint64_t num_occs;
  std::uint64_t num_label_symbols;
};

std::string NodesPath(const std::string& base) { return base + ".nodes"; }
std::string OccsPath(const std::string& base) { return base + ".occs"; }
std::string LabelsPath(const std::string& base) { return base + ".labels"; }
std::string MetaPath(const std::string& base) { return base + ".meta"; }

/// Zero-copy access to fixed-size records of one region. Get() pins the
/// record's page and returns a pointer straight into the frame; the pin
/// (a read guard) is held until the next Get() on a different page or the
/// cursor dies. Holding a read guard across further pins is explicitly
/// allowed by the manager, so cursors for several regions can be live at
/// once (GetChildren walks nodes and labels together) — but to keep the
/// latch-order graph acyclic, accessors must only pin in the region
/// order nodes -> occs -> labels while a guard is held.
template <typename T>
class RecordCursor {
 public:
  explicit RecordCursor(storage::BufferManager* mgr) : mgr_(mgr) {}

  /// Pointer valid until the next Get() on this cursor.
  const T* Get(std::uint64_t index) {
    const std::uint64_t offset = index * sizeof(T);
    const std::uint64_t page_no = offset / storage::PagedFile::kPageSize;
    if (!guard_.valid() || guard_.page_no() != page_no) {
      guard_.Release();
      auto pinned = mgr_->Pin(page_no, storage::PinIntent::kRead);
      TSW_CHECK(pinned.ok()) << pinned.status();
      guard_ = std::move(pinned).value();
    }
    return reinterpret_cast<const T*>(
        guard_.bytes().data() + offset % storage::PagedFile::kPageSize);
  }

 private:
  storage::BufferManager* mgr_;
  storage::PageGuard guard_;
};

/// Copies a run of label symbols out of pinned pages, reusing one guard
/// across the pages of a single run. The guard is NOT cached across Copy
/// calls: the accessors pin latches in the fixed region order
/// nodes -> occs -> labels, and a label guard surviving into the next
/// nodes Get() would add a labels -> nodes edge that closes a cycle in
/// the latch-order graph (harmless for shared latches, but it trips
/// TSan's deadlock detector and is a trap for future exclusive users).
class LabelReader {
 public:
  explicit LabelReader(storage::BufferManager* mgr) : mgr_(mgr) {}

  void Copy(std::uint64_t first_symbol, std::uint32_t n, Symbol* dst) {
    storage::PageGuard guard;
    std::uint64_t offset = first_symbol * sizeof(Symbol);
    std::size_t remaining = static_cast<std::size_t>(n) * sizeof(Symbol);
    auto* out = reinterpret_cast<std::byte*>(dst);
    while (remaining > 0) {
      const std::uint64_t page_no = offset / storage::PagedFile::kPageSize;
      const std::size_t in_page = offset % storage::PagedFile::kPageSize;
      if (!guard.valid() || guard.page_no() != page_no) {
        guard.Release();
        auto pinned = mgr_->Pin(page_no, storage::PinIntent::kRead);
        TSW_CHECK(pinned.ok()) << pinned.status();
        guard = std::move(pinned).value();
      }
      const std::size_t chunk =
          std::min(remaining, storage::PagedFile::kPageSize - in_page);
      std::memcpy(out, guard.bytes().data() + in_page, chunk);
      out += chunk;
      offset += chunk;
      remaining -= chunk;
    }
  }

 private:
  storage::BufferManager* mgr_;
};

// Writer-side helpers on the byte-copy shim (records are patched in
// place, and the writer is single-threaded, so guards buy nothing here).

Status ReadNode(storage::BufferManager& mgr, NodeId id, NodeRecord* out) {
  return mgr.Read(static_cast<std::uint64_t>(id) * sizeof(NodeRecord), out,
                  sizeof(NodeRecord));
}

Status WriteNode(storage::BufferManager& mgr, NodeId id,
                 const NodeRecord& rec) {
  return mgr.Write(static_cast<std::uint64_t>(id) * sizeof(NodeRecord), &rec,
                   sizeof(NodeRecord));
}

Status ReadOcc(storage::BufferManager& mgr, std::uint32_t id,
               OccRecord* out) {
  return mgr.Read(static_cast<std::uint64_t>(id) * sizeof(OccRecord), out,
                  sizeof(OccRecord));
}

}  // namespace

storage::BufferManagerOptions DiskTreeOptions::ToManagerOptions() const {
  storage::BufferManagerOptions o;
  o.capacity_pages = pool_pages;
  o.num_shards = pool_shards;
  o.eviction = eviction;
  o.readahead_pages = readahead_pages;
  return o;
}

storage::BufferManager::Stats RegionStats::Total() const {
  storage::BufferManager::Stats total;
  total += nodes;
  total += occs;
  total += labels;
  return total;
}

// ---------------------------------------------------------------------------
// DiskTreeWriter
// ---------------------------------------------------------------------------

DiskTreeWriter::DiskTreeWriter(const std::string& base_path,
                               DiskTreeOptions options)
    : base_path_(base_path), options_(options) {}

StatusOr<std::unique_ptr<DiskTreeWriter>> DiskTreeWriter::Create(
    const std::string& base_path, DiskTreeOptions options) {
  std::unique_ptr<DiskTreeWriter> writer(
      new DiskTreeWriter(base_path, options));
  TSW_RETURN_IF_ERROR(writer->Init());
  return writer;
}

Status DiskTreeWriter::Init() {
  TSW_ASSIGN_OR_RETURN(auto nodes_file,
                       storage::PagedFile::Create(NodesPath(base_path_)));
  TSW_ASSIGN_OR_RETURN(auto occs_file,
                       storage::PagedFile::Create(OccsPath(base_path_)));
  TSW_ASSIGN_OR_RETURN(auto labels_file,
                       storage::PagedFile::Create(LabelsPath(base_path_)));
  node_file_ = std::make_unique<storage::PagedFile>(std::move(nodes_file));
  occ_file_ = std::make_unique<storage::PagedFile>(std::move(occs_file));
  label_file_ = std::make_unique<storage::PagedFile>(std::move(labels_file));
  const storage::BufferManagerOptions mgr_options =
      options_.ToManagerOptions();
  nodes_ = std::make_unique<storage::BufferManager>(node_file_.get(),
                                                    mgr_options);
  occs_ = std::make_unique<storage::BufferManager>(occ_file_.get(),
                                                   mgr_options);
  labels_ = std::make_unique<storage::BufferManager>(label_file_.get(),
                                                     mgr_options);
  return Status::OK();
}

NodeId DiskTreeWriter::AddNode(NodeId parent, std::span<const Symbol> label) {
  const auto id = static_cast<NodeId>(num_nodes_);
  NodeRecord rec{};
  rec.first_child = kNilNode;
  rec.next_sibling = kNilNode;
  rec.first_occ = kNilOcc;
  if (parent == kNilNode) {
    TSW_CHECK(num_nodes_ == 0) << "root must be the first node";
  } else {
    rec.label_offset = num_label_symbols_;
    rec.label_len = static_cast<std::uint32_t>(label.size());
    Latch(labels_->Write(num_label_symbols_ * sizeof(Symbol), label.data(),
                         label.size() * sizeof(Symbol)));
    num_label_symbols_ += label.size();
    // Prepend into the parent's child chain.
    NodeRecord parent_rec;
    Latch(ReadNode(*nodes_, parent, &parent_rec));
    rec.next_sibling = parent_rec.first_child;
    parent_rec.first_child = id;
    Latch(WriteNode(*nodes_, parent, parent_rec));
  }
  Latch(WriteNode(*nodes_, id, rec));
  ++num_nodes_;
  return id;
}

void DiskTreeWriter::AddOccurrence(NodeId node, const OccurrenceRec& occ) {
  NodeRecord node_rec;
  Latch(ReadNode(*nodes_, node, &node_rec));
  OccRecord rec{occ.seq, occ.pos, occ.run, node_rec.first_occ};
  const auto id = static_cast<std::uint32_t>(num_occs_);
  Latch(occs_->Write(num_occs_ * sizeof(OccRecord), &rec, sizeof(OccRecord)));
  node_rec.first_occ = id;
  Latch(WriteNode(*nodes_, node, node_rec));
  ++num_occs_;
}

void DiskTreeWriter::Finalize() {
  TSW_CHECK(!finalized_);
  if (num_nodes_ == 0) {
    finalized_ = true;
    return;
  }
  // Iterative post-order pass patching subtree_occ / max_run.
  struct Frame {
    NodeId node;
    bool processed;
  };
  std::vector<Frame> stack = {{0, false}};
  while (!stack.empty() && status_.ok()) {
    Frame f = stack.back();
    stack.pop_back();
    NodeRecord rec;
    Latch(ReadNode(*nodes_, f.node, &rec));
    if (!f.processed) {
      stack.push_back({f.node, true});
      for (NodeId c = rec.first_child; c != kNilNode;) {
        stack.push_back({c, false});
        NodeRecord crec;
        Latch(ReadNode(*nodes_, c, &crec));
        if (!status_.ok()) break;
        c = crec.next_sibling;
      }
      continue;
    }
    std::uint32_t count = 0;
    std::uint32_t max_run = 0;
    for (std::uint32_t o = rec.first_occ; o != kNilOcc;) {
      OccRecord orec;
      Latch(ReadOcc(*occs_, o, &orec));
      if (!status_.ok()) break;
      ++count;
      max_run = std::max(max_run, orec.run);
      o = orec.next;
    }
    for (NodeId c = rec.first_child; c != kNilNode;) {
      NodeRecord crec;
      Latch(ReadNode(*nodes_, c, &crec));
      if (!status_.ok()) break;
      count += crec.subtree_occ;
      max_run = std::max(max_run, crec.max_run);
      c = crec.next_sibling;
    }
    rec.subtree_occ = count;
    rec.max_run = max_run;
    Latch(WriteNode(*nodes_, f.node, rec));
  }
  finalized_ = true;
}

Status DiskTreeWriter::Close() {
  if (closed_) return status_;
  closed_ = true;
  Latch(CloseInternal());
  return status_;
}

Status DiskTreeWriter::CloseInternal() {
  TSW_RETURN_IF_ERROR(status_);
  if (!finalized_) {
    return Status::FailedPrecondition("Close() before Finalize() on " +
                                      base_path_);
  }
  TSW_RETURN_IF_ERROR(nodes_->Flush());
  TSW_RETURN_IF_ERROR(occs_->Flush());
  TSW_RETURN_IF_ERROR(labels_->Flush());
  TSW_ASSIGN_OR_RETURN(auto meta_file,
                       storage::PagedFile::Create(MetaPath(base_path_)));
  MetaRecord meta{kMetaMagic, kMetaVersion, 1u, num_nodes_, num_occs_,
                  num_label_symbols_};
  std::vector<std::byte> page(storage::PagedFile::kPageSize);
  std::memcpy(page.data(), &meta, sizeof(meta));
  TSW_RETURN_IF_ERROR(meta_file.WritePage(0, page));
  return meta_file.Sync();
}

// ---------------------------------------------------------------------------
// DiskSuffixTree
// ---------------------------------------------------------------------------

StatusOr<std::unique_ptr<DiskSuffixTree>> DiskSuffixTree::Open(
    const std::string& base_path, DiskTreeOptions options) {
  std::unique_ptr<DiskSuffixTree> tree(new DiskSuffixTree());
  tree->base_path_ = base_path;
  tree->options_ = options;

  TSW_ASSIGN_OR_RETURN(auto meta_file,
                       storage::PagedFile::Open(MetaPath(base_path), false));
  std::vector<std::byte> page(storage::PagedFile::kPageSize);
  TSW_RETURN_IF_ERROR(meta_file.ReadPage(0, page));
  MetaRecord meta;
  std::memcpy(&meta, page.data(), sizeof(meta));
  if (meta.magic != kMetaMagic) {
    return Status::Corruption("bad magic in " + MetaPath(base_path));
  }
  if (meta.version != kMetaVersion || meta.finalized != 1) {
    return Status::Corruption("unreadable tree bundle " + base_path);
  }
  tree->num_nodes_ = meta.num_nodes;
  tree->num_occs_ = meta.num_occs;
  tree->num_label_symbols_ = meta.num_label_symbols;

  TSW_ASSIGN_OR_RETURN(auto nodes_file,
                       storage::PagedFile::Open(NodesPath(base_path), false));
  TSW_ASSIGN_OR_RETURN(auto occs_file,
                       storage::PagedFile::Open(OccsPath(base_path), false));
  TSW_ASSIGN_OR_RETURN(
      auto labels_file, storage::PagedFile::Open(LabelsPath(base_path),
                                                 false));
  tree->node_file_ =
      std::make_unique<storage::PagedFile>(std::move(nodes_file));
  tree->occ_file_ = std::make_unique<storage::PagedFile>(std::move(occs_file));
  tree->label_file_ =
      std::make_unique<storage::PagedFile>(std::move(labels_file));
  const storage::BufferManagerOptions mgr_options = options.ToManagerOptions();
  tree->nodes_ = std::make_unique<storage::BufferManager>(
      tree->node_file_.get(), mgr_options);
  tree->occs_ = std::make_unique<storage::BufferManager>(
      tree->occ_file_.get(), mgr_options);
  tree->labels_ = std::make_unique<storage::BufferManager>(
      tree->label_file_.get(), mgr_options);
  return tree;
}

void DiskSuffixTree::GetChildren(NodeId node, Children* out) const {
  out->Clear();
  RecordCursor<NodeRecord> nodes(nodes_.get());
  LabelReader labels(labels_.get());
  // Copy out scalars before the next cursor call invalidates the pointer.
  const NodeId first_child = nodes.Get(node)->first_child;
  for (NodeId c = first_child; c != kNilNode;) {
    const NodeRecord* crec = nodes.Get(c);
    const std::uint64_t label_offset = crec->label_offset;
    const std::uint32_t label_len = crec->label_len;
    const NodeId next = crec->next_sibling;
    const auto begin = static_cast<std::uint32_t>(out->label_pool.size());
    out->label_pool.resize(begin + label_len);
    labels.Copy(label_offset, label_len, out->label_pool.data() + begin);
    out->edges.push_back({c, begin, label_len});
    c = next;
  }
}

void DiskSuffixTree::GetOccurrences(NodeId node,
                                    std::vector<OccurrenceRec>* out) const {
  RecordCursor<NodeRecord> nodes(nodes_.get());
  RecordCursor<OccRecord> occs(occs_.get());
  const std::uint32_t first_occ = nodes.Get(node)->first_occ;
  for (std::uint32_t o = first_occ; o != kNilOcc;) {
    const OccRecord* orec = occs.Get(o);
    out->push_back({orec->seq, orec->pos, orec->run});
    o = orec->next;
  }
}

std::uint32_t DiskSuffixTree::SubtreeOccCount(NodeId node) const {
  RecordCursor<NodeRecord> nodes(nodes_.get());
  return nodes.Get(node)->subtree_occ;
}

Pos DiskSuffixTree::MaxRun(NodeId node) const {
  RecordCursor<NodeRecord> nodes(nodes_.get());
  return nodes.Get(node)->max_run;
}

std::uint64_t DiskSuffixTree::SizeBytes() const {
  return storage::PagedFile::kPageSize +  // meta page
         num_nodes_ * sizeof(NodeRecord) + num_occs_ * sizeof(OccRecord) +
         num_label_symbols_ * sizeof(Symbol);
}

void DiskSuffixTree::HintSequentialScan() const {
  const std::size_t window = options_.readahead_pages;
  if (window == 0) return;
  // Prime the first window of each region; once the scan reaches the end
  // of a primed run, the managers' sequential fault detection takes over.
  nodes_->ReadAhead(0, window);
  occs_->ReadAhead(0, window);
  labels_->ReadAhead(0, window);
}

RegionStats DiskSuffixTree::PoolStats() const {
  RegionStats stats;
  stats.nodes = nodes_->stats();
  stats.occs = occs_->stats();
  stats.labels = labels_->stats();
  return stats;
}

std::size_t DiskSuffixTree::pool_shards() const {
  return nodes_->num_shards();
}

storage::EvictionPolicyKind DiskSuffixTree::pool_eviction() const {
  return nodes_->eviction_policy();
}

// ---------------------------------------------------------------------------
// High-level build
// ---------------------------------------------------------------------------

Status WriteTreeToDisk(const TreeView& view, const std::string& base_path,
                       DiskTreeOptions options) {
  TSW_ASSIGN_OR_RETURN(auto writer,
                       DiskTreeWriter::Create(base_path, options));
  CopyTree(view, writer.get());
  return writer->Close();
}

void RemoveDiskTree(const std::string& base_path) {
  std::remove(NodesPath(base_path).c_str());
  std::remove(OccsPath(base_path).c_str());
  std::remove(LabelsPath(base_path).c_str());
  std::remove(MetaPath(base_path).c_str());
}

StatusOr<std::unique_ptr<DiskSuffixTree>> BuildDiskTree(
    const SymbolDatabase& db, const std::string& base_path,
    DiskBuildOptions options) {
  TSW_CHECK(options.batch_sequences >= 1);
  // Phase 1: spill batch trees.
  std::vector<std::string> pending;
  int next_tmp = 0;
  for (SeqId begin = 0; begin < db.size();
       begin += static_cast<SeqId>(options.batch_sequences)) {
    const SeqId end = static_cast<SeqId>(
        std::min<std::size_t>(db.size(), begin + options.batch_sequences));
    SuffixTreeBuilder builder(&db, options.build);
    for (SeqId id = begin; id < end; ++id) builder.InsertSequence(id);
    SuffixTree batch = builder.Build();
    const std::string tmp = base_path + ".tmp" + std::to_string(next_tmp++);
    TSW_RETURN_IF_ERROR(WriteTreeToDisk(batch, tmp, options.tree));
    pending.push_back(tmp);
  }
  if (pending.empty()) {
    return Status::InvalidArgument("empty symbol database");
  }

  // Phase 2: binary merges of trees of increasing size (FIFO pairing).
  std::size_t head = 0;
  while (pending.size() - head > 1) {
    const std::string a = pending[head++];
    const std::string b = pending[head++];
    TSW_ASSIGN_OR_RETURN(auto view_a, DiskSuffixTree::Open(a, options.tree));
    TSW_ASSIGN_OR_RETURN(auto view_b, DiskSuffixTree::Open(b, options.tree));
    const std::string out = base_path + ".tmp" + std::to_string(next_tmp++);
    TSW_ASSIGN_OR_RETURN(auto writer,
                         DiskTreeWriter::Create(out, options.tree));
    MergeTrees(*view_a, *view_b, writer.get());
    TSW_RETURN_IF_ERROR(writer->Close());
    RemoveDiskTree(a);
    RemoveDiskTree(b);
    pending.push_back(out);
  }

  // Rename the survivor into place.
  const std::string last = pending[head];
  RemoveDiskTree(base_path);
  for (const char* suffix : {".meta", ".nodes", ".occs", ".labels"}) {
    const std::string from = last + suffix;
    const std::string to = base_path + suffix;
    if (std::rename(from.c_str(), to.c_str()) != 0) {
      return Status::IOError("rename " + from + " -> " + to + " failed");
    }
  }
  return DiskSuffixTree::Open(base_path, options.tree);
}

}  // namespace tswarp::suffixtree
