#include "suffixtree/disk_tree.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <utility>

#include "common/logging.h"
#include "suffixtree/merge.h"

namespace tswarp::suffixtree {
namespace {

constexpr std::uint64_t kMetaMagic = 0x545357545245451ull;  // "TSWTREE"+1

// Format versions. v1 (PR 3) is the bare MetaRecord; v2 adds the section
// table below and is required by the mmap read path. The buffered path
// reads both.
constexpr std::uint32_t kMetaVersionV1 = 1;
constexpr std::uint32_t kMetaVersionV2 = 2;

// On-disk node record: 32 bytes, no padding.
struct NodeRecord {
  std::uint64_t label_offset;  // Symbol index into the label region.
  std::uint32_t label_len;
  std::uint32_t first_child;
  std::uint32_t next_sibling;
  std::uint32_t first_occ;
  std::uint32_t subtree_occ;
  std::uint32_t max_run;
};
static_assert(sizeof(NodeRecord) == 32);

// On-disk occurrence record: 16 bytes.
struct OccRecord {
  std::uint32_t seq;
  std::uint32_t pos;
  std::uint32_t run;
  std::uint32_t next;
};
static_assert(sizeof(OccRecord) == 16);

constexpr std::uint32_t kNilOcc = 0xFFFFFFFFu;

// Records must never straddle a page boundary or the zero-copy cursors
// below could not hand out direct pointers into pinned frames.
static_assert(storage::PagedFile::kPageSize % sizeof(NodeRecord) == 0);
static_assert(storage::PagedFile::kPageSize % sizeof(OccRecord) == 0);
static_assert(storage::PagedFile::kPageSize % sizeof(Symbol) == 0);

// v2 alignment contract: record sizes divide the cache line, so no record
// straddles a cache-line (or page) boundary and mapped cursors never split
// a read across lines.
constexpr std::uint32_t kRecordAlignment = 64;
static_assert(kRecordAlignment % sizeof(NodeRecord) == 0);
static_assert(kRecordAlignment % sizeof(OccRecord) == 0);
static_assert(kRecordAlignment % sizeof(Symbol) == 0);
static_assert(kRecordAlignment % sizeof(NodeSummaryRecord) == 0);
static_assert(storage::PagedFile::kPageSize % sizeof(NodeSummaryRecord) == 0);

// v1 meta page: just this record. The v2 page appends the section table.
struct MetaRecord {
  std::uint64_t magic;
  std::uint32_t version;
  std::uint32_t finalized;
  std::uint64_t num_nodes;
  std::uint64_t num_occs;
  std::uint64_t num_label_symbols;
};
static_assert(sizeof(MetaRecord) == 40);

// One v2 section-table entry per region file, in region-id order. The
// table is what makes the bundle self-describing for the mmap path: the
// opener validates record sizes and byte lengths against the actual files
// before handing out any pointer, so truncation fails cleanly at Open.
enum RegionId : std::uint32_t {
  kRegionNodes = 0,
  kRegionOccs = 1,
  kRegionLabels = 2,
  // Optional trailing section (node summaries). A 3-section bundle is a
  // plain v2 bundle; a 4-section bundle additionally carries `.sums`.
  kRegionSummaries = 3,
};
constexpr std::uint32_t kNumSections = 3;
constexpr std::uint32_t kMaxSections = 4;

struct SectionEntry {
  std::uint32_t region;       // RegionId
  std::uint32_t record_size;  // bytes per fixed record
  std::uint64_t record_count;
  std::uint64_t byte_length;  // record_count * record_size
};
static_assert(sizeof(SectionEntry) == 24);

constexpr std::size_t kSectionTableOffset = sizeof(MetaRecord);
static_assert(kSectionTableOffset + 2 * sizeof(std::uint32_t) +
                  kMaxSections * sizeof(SectionEntry) <=
              storage::PagedFile::kPageSize);

std::string NodesPath(const std::string& base) { return base + ".nodes"; }
std::string OccsPath(const std::string& base) { return base + ".occs"; }
std::string LabelsPath(const std::string& base) { return base + ".labels"; }
std::string MetaPath(const std::string& base) { return base + ".meta"; }
std::string SumsPath(const std::string& base) { return base + ".sums"; }

std::string ParentDir(const std::string& base_path) {
  return std::filesystem::path(base_path).parent_path().string();
}

/// Counts + format version recovered from a validated meta page.
struct ParsedMeta {
  std::uint32_t version;
  std::uint64_t num_nodes;
  std::uint64_t num_occs;
  std::uint64_t num_label_symbols;
  bool has_summaries = false;
};

StatusOr<ParsedMeta> ReadMeta(const std::string& base_path) {
  TSW_ASSIGN_OR_RETURN(auto meta_file,
                       storage::PagedFile::Open(MetaPath(base_path), false));
  std::vector<std::byte> page(storage::PagedFile::kPageSize);
  TSW_RETURN_IF_ERROR(meta_file.ReadPage(0, page));
  MetaRecord meta;
  std::memcpy(&meta, page.data(), sizeof(meta));
  if (meta.magic != kMetaMagic) {
    return Status::Corruption("bad magic in " + MetaPath(base_path));
  }
  if (meta.version != kMetaVersionV1 && meta.version != kMetaVersionV2) {
    return Status::Corruption("unsupported format version " +
                              std::to_string(meta.version) + " in " +
                              MetaPath(base_path));
  }
  if (meta.finalized != 1) {
    return Status::Corruption("unreadable tree bundle " + base_path);
  }
  bool has_summaries = false;
  if (meta.version == kMetaVersionV2) {
    std::size_t off = kSectionTableOffset;
    std::uint32_t section_count = 0;
    std::uint32_t alignment = 0;
    std::memcpy(&section_count, page.data() + off, sizeof(section_count));
    off += sizeof(section_count);
    std::memcpy(&alignment, page.data() + off, sizeof(alignment));
    off += sizeof(alignment);
    // The summary section is optional: 3 sections is a plain v2 bundle,
    // 4 announces a trailing node-summary region. Anything else is not a
    // bundle this build can describe.
    if ((section_count != kNumSections && section_count != kMaxSections) ||
        alignment != kRecordAlignment) {
      return Status::Corruption("bad section table header in " +
                                MetaPath(base_path));
    }
    const std::uint64_t expect_count[kMaxSections] = {
        meta.num_nodes, meta.num_occs, meta.num_label_symbols,
        meta.num_nodes};
    const std::uint32_t expect_size[kMaxSections] = {
        sizeof(NodeRecord), sizeof(OccRecord), sizeof(Symbol),
        sizeof(NodeSummaryRecord)};
    for (std::uint32_t i = 0; i < section_count; ++i) {
      SectionEntry entry;
      std::memcpy(&entry, page.data() + off, sizeof(entry));
      off += sizeof(entry);
      if (entry.region != i || entry.record_size != expect_size[i] ||
          entry.record_count != expect_count[i] ||
          entry.byte_length != entry.record_count * entry.record_size) {
        return Status::Corruption("bad section table entry " +
                                  std::to_string(i) + " in " +
                                  MetaPath(base_path));
      }
    }
    has_summaries = section_count == kMaxSections;
  }
  return ParsedMeta{meta.version, meta.num_nodes, meta.num_occs,
                    meta.num_label_symbols, has_summaries};
}

/// Zero-copy access to fixed-size records of one region. Get() pins the
/// record's page and returns a pointer straight into the frame; the pin
/// (a read guard) is held until the next Get() on a different page or the
/// cursor dies. Holding a read guard across further pins is explicitly
/// allowed by the manager, so cursors for several regions can be live at
/// once (GetChildren walks nodes and labels together) — but to keep the
/// latch-order graph acyclic, accessors must only pin in the region
/// order nodes -> occs -> labels while a guard is held.
template <typename T>
class RecordCursor {
 public:
  explicit RecordCursor(storage::BufferManager* mgr) : mgr_(mgr) {}

  /// Pointer valid until the next Get() on this cursor.
  const T* Get(std::uint64_t index) {
    const std::uint64_t offset = index * sizeof(T);
    const std::uint64_t page_no = offset / storage::PagedFile::kPageSize;
    if (!guard_.valid() || guard_.page_no() != page_no) {
      guard_.Release();
      auto pinned = mgr_->Pin(page_no, storage::PinIntent::kRead);
      TSW_CHECK(pinned.ok()) << pinned.status();
      guard_ = std::move(pinned).value();
    }
    return reinterpret_cast<const T*>(
        guard_.bytes().data() + offset % storage::PagedFile::kPageSize);
  }

 private:
  storage::BufferManager* mgr_;
  storage::PageGuard guard_;
};

/// Copies a run of label symbols out of pinned pages, reusing one guard
/// across the pages of a single run. The guard is NOT cached across Copy
/// calls: the accessors pin latches in the fixed region order
/// nodes -> occs -> labels, and a label guard surviving into the next
/// nodes Get() would add a labels -> nodes edge that closes a cycle in
/// the latch-order graph (harmless for shared latches, but it trips
/// TSan's deadlock detector and is a trap for future exclusive users).
class LabelReader {
 public:
  explicit LabelReader(storage::BufferManager* mgr) : mgr_(mgr) {}

  void Copy(std::uint64_t first_symbol, std::uint32_t n, Symbol* dst) {
    storage::PageGuard guard;
    std::uint64_t offset = first_symbol * sizeof(Symbol);
    std::size_t remaining = static_cast<std::size_t>(n) * sizeof(Symbol);
    auto* out = reinterpret_cast<std::byte*>(dst);
    while (remaining > 0) {
      const std::uint64_t page_no = offset / storage::PagedFile::kPageSize;
      const std::size_t in_page = offset % storage::PagedFile::kPageSize;
      if (!guard.valid() || guard.page_no() != page_no) {
        guard.Release();
        auto pinned = mgr_->Pin(page_no, storage::PinIntent::kRead);
        TSW_CHECK(pinned.ok()) << pinned.status();
        guard = std::move(pinned).value();
      }
      const std::size_t chunk =
          std::min(remaining, storage::PagedFile::kPageSize - in_page);
      std::memcpy(out, guard.bytes().data() + in_page, chunk);
      out += chunk;
      offset += chunk;
      remaining -= chunk;
    }
  }

 private:
  storage::BufferManager* mgr_;
};

// Writer-side helpers on the byte-copy shim (records are patched in
// place, and the writer is single-threaded, so guards buy nothing here).

Status ReadNode(storage::BufferManager& mgr, NodeId id, NodeRecord* out) {
  return mgr.Read(static_cast<std::uint64_t>(id) * sizeof(NodeRecord), out,
                  sizeof(NodeRecord));
}

Status WriteNode(storage::BufferManager& mgr, NodeId id,
                 const NodeRecord& rec) {
  return mgr.Write(static_cast<std::uint64_t>(id) * sizeof(NodeRecord), &rec,
                   sizeof(NodeRecord));
}

Status ReadOcc(storage::BufferManager& mgr, std::uint32_t id,
               OccRecord* out) {
  return mgr.Read(static_cast<std::uint64_t>(id) * sizeof(OccRecord), out,
                  sizeof(OccRecord));
}

}  // namespace

// ---------------------------------------------------------------------------
// Node-access layer
// ---------------------------------------------------------------------------

namespace internal {

/// Backend behind DiskSuffixTree's read accessors. Implementations must
/// be safe for concurrent reads from many threads.
class TreeAccess {
 public:
  virtual ~TreeAccess() = default;

  virtual void GetChildren(NodeId node, Children* out) const = 0;
  virtual void GetOccurrences(NodeId node,
                              std::vector<OccurrenceRec>* out) const = 0;
  virtual std::uint32_t SubtreeOccCount(NodeId node) const = 0;
  virtual Pos MaxRun(NodeId node) const = 0;
  virtual void HintSequentialScan() const = 0;
  virtual RegionStats PoolStats() const = 0;
  virtual storage::IoMode io_mode() const = 0;
  virtual std::size_t pool_shards() const = 0;
  virtual storage::EvictionPolicyKind pool_eviction() const = 0;
  virtual std::uint64_t MappedBytes() const = 0;
  virtual std::uint64_t ResidentBytes() const = 0;
  /// Records of the bundle's summary section; empty when absent or not
  /// loaded. Stable for the backend's lifetime.
  virtual std::span<const NodeSummaryRecord> NodeSummaries() const = 0;
};

}  // namespace internal

namespace {

/// The PR 3 read path: three sharded BufferManagers with a bounded frame
/// budget. Handles bundles larger than RAM and v1 bundles; also the only
/// backend usable while a writer still exists (construction, merges).
class BufferedTreeAccess : public internal::TreeAccess {
 public:
  static StatusOr<std::unique_ptr<internal::TreeAccess>> Open(
      const std::string& base_path, const DiskTreeOptions& options,
      const ParsedMeta& meta) {
    auto access = std::unique_ptr<BufferedTreeAccess>(new BufferedTreeAccess);
    access->readahead_pages_ = options.readahead_pages;
    if (meta.has_summaries && options.load_node_summaries) {
      TSW_RETURN_IF_ERROR(LoadSummaries(base_path, meta.num_nodes,
                                        &access->summaries_));
    }
    TSW_ASSIGN_OR_RETURN(
        auto nodes_file, storage::PagedFile::Open(NodesPath(base_path), false));
    TSW_ASSIGN_OR_RETURN(
        auto occs_file, storage::PagedFile::Open(OccsPath(base_path), false));
    TSW_ASSIGN_OR_RETURN(
        auto labels_file,
        storage::PagedFile::Open(LabelsPath(base_path), false));
    access->node_file_ =
        std::make_unique<storage::PagedFile>(std::move(nodes_file));
    access->occ_file_ =
        std::make_unique<storage::PagedFile>(std::move(occs_file));
    access->label_file_ =
        std::make_unique<storage::PagedFile>(std::move(labels_file));
    const storage::BufferManagerOptions mgr_options =
        options.ToManagerOptions();
    access->nodes_ = std::make_unique<storage::BufferManager>(
        access->node_file_.get(), mgr_options);
    access->occs_ = std::make_unique<storage::BufferManager>(
        access->occ_file_.get(), mgr_options);
    access->labels_ = std::make_unique<storage::BufferManager>(
        access->label_file_.get(), mgr_options);
    return std::unique_ptr<internal::TreeAccess>(std::move(access));
  }

  void GetChildren(NodeId node, Children* out) const override {
    out->Clear();
    RecordCursor<NodeRecord> nodes(nodes_.get());
    LabelReader labels(labels_.get());
    // Copy out scalars before the next cursor call invalidates the pointer.
    const NodeId first_child = nodes.Get(node)->first_child;
    for (NodeId c = first_child; c != kNilNode;) {
      const NodeRecord* crec = nodes.Get(c);
      const std::uint64_t label_offset = crec->label_offset;
      const std::uint32_t label_len = crec->label_len;
      const NodeId next = crec->next_sibling;
      const auto begin = static_cast<std::uint32_t>(out->label_pool.size());
      out->label_pool.resize(begin + label_len);
      labels.Copy(label_offset, label_len, out->label_pool.data() + begin);
      out->edges.push_back({c, begin, label_len});
      c = next;
    }
  }

  void GetOccurrences(NodeId node,
                      std::vector<OccurrenceRec>* out) const override {
    RecordCursor<NodeRecord> nodes(nodes_.get());
    RecordCursor<OccRecord> occs(occs_.get());
    const std::uint32_t first_occ = nodes.Get(node)->first_occ;
    for (std::uint32_t o = first_occ; o != kNilOcc;) {
      const OccRecord* orec = occs.Get(o);
      out->push_back({orec->seq, orec->pos, orec->run});
      o = orec->next;
    }
  }

  std::uint32_t SubtreeOccCount(NodeId node) const override {
    RecordCursor<NodeRecord> nodes(nodes_.get());
    return nodes.Get(node)->subtree_occ;
  }

  Pos MaxRun(NodeId node) const override {
    RecordCursor<NodeRecord> nodes(nodes_.get());
    return nodes.Get(node)->max_run;
  }

  void HintSequentialScan() const override {
    const std::size_t window = readahead_pages_;
    if (window == 0) return;
    // Prime the first window of each region; once the scan reaches the end
    // of a primed run, the managers' sequential fault detection takes over.
    nodes_->ReadAhead(0, window);
    occs_->ReadAhead(0, window);
    labels_->ReadAhead(0, window);
  }

  RegionStats PoolStats() const override {
    RegionStats stats;
    stats.nodes = nodes_->stats();
    stats.occs = occs_->stats();
    stats.labels = labels_->stats();
    return stats;
  }

  storage::IoMode io_mode() const override {
    return storage::IoMode::kBuffered;
  }
  std::size_t pool_shards() const override { return nodes_->num_shards(); }
  storage::EvictionPolicyKind pool_eviction() const override {
    return nodes_->eviction_policy();
  }
  std::uint64_t MappedBytes() const override { return 0; }
  std::uint64_t ResidentBytes() const override { return 0; }

  std::span<const NodeSummaryRecord> NodeSummaries() const override {
    return summaries_;
  }

 private:
  BufferedTreeAccess() = default;

  // Summaries are consulted on every edge of every query, so the
  // buffered path reads the whole section into an owned array at Open
  // (one flat 64 B/node sidecar) instead of pinning pages per probe.
  // This is the one deliberate exception to the bounded-pool promise;
  // open with load_node_summaries=false to keep the strict bound.
  static Status LoadSummaries(const std::string& base_path,
                              std::uint64_t num_nodes,
                              std::vector<NodeSummaryRecord>* out) {
    TSW_ASSIGN_OR_RETURN(auto file,
                         storage::PagedFile::Open(SumsPath(base_path), false));
    const std::uint64_t need = num_nodes * sizeof(NodeSummaryRecord);
    if (file.SizeBytes() < need) {
      return Status::Corruption(
          "summary section truncated: " + SumsPath(base_path) + " holds " +
          std::to_string(file.SizeBytes()) + " bytes, section table claims " +
          std::to_string(need));
    }
    out->resize(static_cast<std::size_t>(num_nodes));
    std::vector<std::byte> page(storage::PagedFile::kPageSize);
    auto* dst = reinterpret_cast<std::byte*>(out->data());
    std::uint64_t copied = 0;
    for (std::uint64_t page_no = 0; copied < need; ++page_no) {
      TSW_RETURN_IF_ERROR(file.ReadPage(page_no, page));
      const std::uint64_t chunk =
          std::min<std::uint64_t>(need - copied, page.size());
      std::memcpy(dst + copied, page.data(), chunk);
      copied += chunk;
    }
    return Status::OK();
  }

  std::size_t readahead_pages_ = 0;
  std::vector<NodeSummaryRecord> summaries_;
  std::unique_ptr<storage::PagedFile> node_file_;
  std::unique_ptr<storage::PagedFile> occ_file_;
  std::unique_ptr<storage::PagedFile> label_file_;
  // Managers are mutable in effect: reads fault pages in and move policy
  // state; BufferManager is internally synchronized.
  mutable std::unique_ptr<storage::BufferManager> nodes_;
  mutable std::unique_ptr<storage::BufferManager> occs_;
  mutable std::unique_ptr<storage::BufferManager> labels_;
};

/// The zero-copy read path: every region file is mapped read-only at Open
/// and accessors dereference records straight out of the mapping. No pins,
/// no locks, no private cache — the kernel page cache is the only cache
/// and is shared with every other process serving the same bundle.
/// MappedRegion::Create validated the byte lengths up front, so every
/// RecordAt below is in-bounds by construction.
class MappedTreeAccess : public internal::TreeAccess {
 public:
  static StatusOr<std::unique_ptr<internal::TreeAccess>> Open(
      const std::string& base_path, const ParsedMeta& meta,
      bool load_summaries) {
    auto access = std::unique_ptr<MappedTreeAccess>(new MappedTreeAccess);
    TSW_ASSIGN_OR_RETURN(access->nodes_file_,
                         storage::MappedFile::Open(NodesPath(base_path)));
    TSW_ASSIGN_OR_RETURN(access->occs_file_,
                         storage::MappedFile::Open(OccsPath(base_path)));
    TSW_ASSIGN_OR_RETURN(access->labels_file_,
                         storage::MappedFile::Open(LabelsPath(base_path)));
    TSW_ASSIGN_OR_RETURN(
        access->nodes_,
        storage::MappedRegion::Create(access->nodes_file_, sizeof(NodeRecord),
                                      meta.num_nodes, "nodes"));
    TSW_ASSIGN_OR_RETURN(
        access->occs_,
        storage::MappedRegion::Create(access->occs_file_, sizeof(OccRecord),
                                      meta.num_occs, "occs"));
    TSW_ASSIGN_OR_RETURN(
        access->labels_,
        storage::MappedRegion::Create(access->labels_file_, sizeof(Symbol),
                                      meta.num_label_symbols, "labels"));
    if (meta.has_summaries && load_summaries) {
      // The summary section maps like any other region: extents are
      // validated before any pointer is handed out, so a truncated
      // `.sums` is a clean Corruption here, never a SIGBUS mid-query.
      TSW_ASSIGN_OR_RETURN(access->sums_file_,
                           storage::MappedFile::Open(SumsPath(base_path)));
      TSW_ASSIGN_OR_RETURN(
          access->sums_,
          storage::MappedRegion::Create(access->sums_file_,
                                        sizeof(NodeSummaryRecord),
                                        meta.num_nodes, "sums"));
      access->sums_file_.Advise(storage::AccessHint::kWillNeed);
    }
    // Kick off asynchronous population of the whole bundle; queries that
    // arrive before it completes just fault their pages on demand.
    access->nodes_file_.Advise(storage::AccessHint::kWillNeed);
    access->occs_file_.Advise(storage::AccessHint::kWillNeed);
    access->labels_file_.Advise(storage::AccessHint::kWillNeed);
    return std::unique_ptr<internal::TreeAccess>(std::move(access));
  }

  void GetChildren(NodeId node, Children* out) const override {
    out->Clear();
    const auto* labels = reinterpret_cast<const Symbol*>(labels_.data());
    for (NodeId c = Node(node).first_child; c != kNilNode;) {
      const NodeRecord& crec = Node(c);
      const auto begin = static_cast<std::uint32_t>(out->label_pool.size());
      out->label_pool.resize(begin + crec.label_len);
      std::memcpy(out->label_pool.data() + begin, labels + crec.label_offset,
                  static_cast<std::size_t>(crec.label_len) * sizeof(Symbol));
      out->edges.push_back({c, begin, crec.label_len});
      c = crec.next_sibling;
    }
  }

  void GetOccurrences(NodeId node,
                      std::vector<OccurrenceRec>* out) const override {
    for (std::uint32_t o = Node(node).first_occ; o != kNilOcc;) {
      const auto& orec =
          *reinterpret_cast<const OccRecord*>(occs_.RecordAt(o));
      out->push_back({orec.seq, orec.pos, orec.run});
      o = orec.next;
    }
  }

  std::uint32_t SubtreeOccCount(NodeId node) const override {
    return Node(node).subtree_occ;
  }

  Pos MaxRun(NodeId node) const override { return Node(node).max_run; }

  void HintSequentialScan() const override {
    nodes_file_.Advise(storage::AccessHint::kSequential);
    occs_file_.Advise(storage::AccessHint::kSequential);
    labels_file_.Advise(storage::AccessHint::kSequential);
  }

  RegionStats PoolStats() const override { return RegionStats{}; }

  storage::IoMode io_mode() const override { return storage::IoMode::kMmap; }
  std::size_t pool_shards() const override { return 0; }
  storage::EvictionPolicyKind pool_eviction() const override {
    return storage::EvictionPolicyKind::kLru;
  }

  std::uint64_t MappedBytes() const override {
    return nodes_file_.size_bytes() + occs_file_.size_bytes() +
           labels_file_.size_bytes() + sums_file_.size_bytes();
  }

  std::uint64_t ResidentBytes() const override {
    return nodes_file_.ResidentBytes() + occs_file_.ResidentBytes() +
           labels_file_.ResidentBytes() + sums_file_.ResidentBytes();
  }

  std::span<const NodeSummaryRecord> NodeSummaries() const override {
    if (sums_.record_count() == 0) return {};
    return {reinterpret_cast<const NodeSummaryRecord*>(sums_.data()),
            static_cast<std::size_t>(sums_.record_count())};
  }

 private:
  MappedTreeAccess() = default;

  const NodeRecord& Node(NodeId id) const {
    return *reinterpret_cast<const NodeRecord*>(nodes_.RecordAt(id));
  }

  storage::MappedFile nodes_file_;
  storage::MappedFile occs_file_;
  storage::MappedFile labels_file_;
  storage::MappedFile sums_file_;
  storage::MappedRegion nodes_;
  storage::MappedRegion occs_;
  storage::MappedRegion labels_;
  storage::MappedRegion sums_;
};

}  // namespace

storage::BufferManagerOptions DiskTreeOptions::ToManagerOptions() const {
  storage::BufferManagerOptions o;
  o.capacity_pages = pool_pages;
  o.num_shards = pool_shards;
  o.eviction = eviction;
  o.readahead_pages = readahead_pages;
  return o;
}

storage::BufferManager::Stats RegionStats::Total() const {
  storage::BufferManager::Stats total;
  total += nodes;
  total += occs;
  total += labels;
  return total;
}

// ---------------------------------------------------------------------------
// DiskTreeWriter
// ---------------------------------------------------------------------------

DiskTreeWriter::DiskTreeWriter(const std::string& base_path,
                               DiskTreeOptions options)
    : base_path_(base_path), options_(options) {}

StatusOr<std::unique_ptr<DiskTreeWriter>> DiskTreeWriter::Create(
    const std::string& base_path, DiskTreeOptions options) {
  std::unique_ptr<DiskTreeWriter> writer(
      new DiskTreeWriter(base_path, options));
  TSW_RETURN_IF_ERROR(writer->Init());
  return writer;
}

Status DiskTreeWriter::Init() {
  TSW_ASSIGN_OR_RETURN(auto nodes_file,
                       storage::PagedFile::Create(NodesPath(base_path_)));
  TSW_ASSIGN_OR_RETURN(auto occs_file,
                       storage::PagedFile::Create(OccsPath(base_path_)));
  TSW_ASSIGN_OR_RETURN(auto labels_file,
                       storage::PagedFile::Create(LabelsPath(base_path_)));
  node_file_ = std::make_unique<storage::PagedFile>(std::move(nodes_file));
  occ_file_ = std::make_unique<storage::PagedFile>(std::move(occs_file));
  label_file_ = std::make_unique<storage::PagedFile>(std::move(labels_file));
  const storage::BufferManagerOptions mgr_options =
      options_.ToManagerOptions();
  nodes_ = std::make_unique<storage::BufferManager>(node_file_.get(),
                                                    mgr_options);
  occs_ = std::make_unique<storage::BufferManager>(occ_file_.get(),
                                                   mgr_options);
  labels_ = std::make_unique<storage::BufferManager>(label_file_.get(),
                                                     mgr_options);
  return Status::OK();
}

NodeId DiskTreeWriter::AddNode(NodeId parent, std::span<const Symbol> label) {
  const auto id = static_cast<NodeId>(num_nodes_);
  NodeRecord rec{};
  rec.first_child = kNilNode;
  rec.next_sibling = kNilNode;
  rec.first_occ = kNilOcc;
  if (parent == kNilNode) {
    TSW_CHECK(num_nodes_ == 0) << "root must be the first node";
  } else {
    rec.label_offset = num_label_symbols_;
    rec.label_len = static_cast<std::uint32_t>(label.size());
    Latch(labels_->Write(num_label_symbols_ * sizeof(Symbol), label.data(),
                         label.size() * sizeof(Symbol)));
    num_label_symbols_ += label.size();
    // Prepend into the parent's child chain.
    NodeRecord parent_rec;
    Latch(ReadNode(*nodes_, parent, &parent_rec));
    rec.next_sibling = parent_rec.first_child;
    parent_rec.first_child = id;
    Latch(WriteNode(*nodes_, parent, parent_rec));
  }
  Latch(WriteNode(*nodes_, id, rec));
  ++num_nodes_;
  return id;
}

void DiskTreeWriter::AddOccurrence(NodeId node, const OccurrenceRec& occ) {
  NodeRecord node_rec;
  Latch(ReadNode(*nodes_, node, &node_rec));
  OccRecord rec{occ.seq, occ.pos, occ.run, node_rec.first_occ};
  const auto id = static_cast<std::uint32_t>(num_occs_);
  Latch(occs_->Write(num_occs_ * sizeof(OccRecord), &rec, sizeof(OccRecord)));
  node_rec.first_occ = id;
  Latch(WriteNode(*nodes_, node, node_rec));
  ++num_occs_;
}

void DiskTreeWriter::Finalize() {
  TSW_CHECK(!finalized_);
  if (num_nodes_ == 0) {
    finalized_ = true;
    return;
  }
  // Iterative post-order pass patching subtree_occ / max_run.
  struct Frame {
    NodeId node;
    bool processed;
  };
  std::vector<Frame> stack = {{0, false}};
  while (!stack.empty() && status_.ok()) {
    Frame f = stack.back();
    stack.pop_back();
    NodeRecord rec;
    Latch(ReadNode(*nodes_, f.node, &rec));
    if (!f.processed) {
      stack.push_back({f.node, true});
      for (NodeId c = rec.first_child; c != kNilNode;) {
        stack.push_back({c, false});
        NodeRecord crec;
        Latch(ReadNode(*nodes_, c, &crec));
        if (!status_.ok()) break;
        c = crec.next_sibling;
      }
      continue;
    }
    std::uint32_t count = 0;
    std::uint32_t max_run = 0;
    for (std::uint32_t o = rec.first_occ; o != kNilOcc;) {
      OccRecord orec;
      Latch(ReadOcc(*occs_, o, &orec));
      if (!status_.ok()) break;
      ++count;
      max_run = std::max(max_run, orec.run);
      o = orec.next;
    }
    for (NodeId c = rec.first_child; c != kNilNode;) {
      NodeRecord crec;
      Latch(ReadNode(*nodes_, c, &crec));
      if (!status_.ok()) break;
      count += crec.subtree_occ;
      max_run = std::max(max_run, crec.max_run);
      c = crec.next_sibling;
    }
    rec.subtree_occ = count;
    rec.max_run = max_run;
    Latch(WriteNode(*nodes_, f.node, rec));
  }
  finalized_ = true;
}

Status DiskTreeWriter::Close() {
  if (closed_) return status_;
  closed_ = true;
  Latch(CloseInternal());
  return status_;
}

Status DiskTreeWriter::CloseInternal() {
  TSW_RETURN_IF_ERROR(status_);
  if (!finalized_) {
    return Status::FailedPrecondition("Close() before Finalize() on " +
                                      base_path_);
  }
  TSW_RETURN_IF_ERROR(nodes_->Flush());
  TSW_RETURN_IF_ERROR(occs_->Flush());
  TSW_RETURN_IF_ERROR(labels_->Flush());
  TSW_ASSIGN_OR_RETURN(auto meta_file,
                       storage::PagedFile::Create(MetaPath(base_path_)));
  MetaRecord meta{kMetaMagic, kMetaVersionV2, 1u, num_nodes_, num_occs_,
                  num_label_symbols_};
  std::vector<std::byte> page(storage::PagedFile::kPageSize);
  std::memcpy(page.data(), &meta, sizeof(meta));
  std::size_t off = kSectionTableOffset;
  const std::uint32_t section_count = kNumSections;
  const std::uint32_t alignment = kRecordAlignment;
  std::memcpy(page.data() + off, &section_count, sizeof(section_count));
  off += sizeof(section_count);
  std::memcpy(page.data() + off, &alignment, sizeof(alignment));
  off += sizeof(alignment);
  const SectionEntry sections[kNumSections] = {
      {kRegionNodes, static_cast<std::uint32_t>(sizeof(NodeRecord)),
       num_nodes_, num_nodes_ * sizeof(NodeRecord)},
      {kRegionOccs, static_cast<std::uint32_t>(sizeof(OccRecord)), num_occs_,
       num_occs_ * sizeof(OccRecord)},
      {kRegionLabels, static_cast<std::uint32_t>(sizeof(Symbol)),
       num_label_symbols_, num_label_symbols_ * sizeof(Symbol)},
  };
  std::memcpy(page.data() + off, sections, sizeof(sections));
  TSW_RETURN_IF_ERROR(meta_file.WritePage(0, page));
  TSW_RETURN_IF_ERROR(meta_file.Sync());
  // The bundle's directory entries must survive power loss too: without
  // this, a crash after Close() could leave a tier whose files simply
  // never existed as far as the recovered filesystem is concerned.
  return storage::SyncDir(ParentDir(base_path_));
}

// ---------------------------------------------------------------------------
// DiskSuffixTree
// ---------------------------------------------------------------------------

DiskSuffixTree::~DiskSuffixTree() = default;

StatusOr<std::unique_ptr<DiskSuffixTree>> DiskSuffixTree::Open(
    const std::string& base_path, DiskTreeOptions options) {
  TSW_ASSIGN_OR_RETURN(const ParsedMeta meta, ReadMeta(base_path));
  if (options.io_mode == storage::IoMode::kMmap &&
      meta.version < kMetaVersionV2) {
    return Status::Corruption(
        "bundle " + base_path + " is format v" + std::to_string(meta.version) +
        " (no section table): the mmap read path needs v2 — open with "
        "io_mode=buffered or rebuild the index");
  }
  std::unique_ptr<DiskSuffixTree> tree(new DiskSuffixTree());
  tree->base_path_ = base_path;
  tree->options_ = options;
  tree->num_nodes_ = meta.num_nodes;
  tree->num_occs_ = meta.num_occs;
  tree->num_label_symbols_ = meta.num_label_symbols;
  tree->format_version_ = meta.version;
  if (options.io_mode == storage::IoMode::kMmap) {
    TSW_ASSIGN_OR_RETURN(
        tree->access_,
        MappedTreeAccess::Open(base_path, meta, options.load_node_summaries));
  } else {
    TSW_ASSIGN_OR_RETURN(tree->access_,
                         BufferedTreeAccess::Open(base_path, options, meta));
  }
  return tree;
}

std::span<const NodeSummaryRecord> DiskSuffixTree::node_summaries() const {
  return access_->NodeSummaries();
}

void DiskSuffixTree::GetChildren(NodeId node, Children* out) const {
  access_->GetChildren(node, out);
}

void DiskSuffixTree::GetOccurrences(NodeId node,
                                    std::vector<OccurrenceRec>* out) const {
  access_->GetOccurrences(node, out);
}

std::uint32_t DiskSuffixTree::SubtreeOccCount(NodeId node) const {
  return access_->SubtreeOccCount(node);
}

Pos DiskSuffixTree::MaxRun(NodeId node) const {
  return access_->MaxRun(node);
}

std::uint64_t DiskSuffixTree::SizeBytes() const {
  return storage::PagedFile::kPageSize +  // meta page
         num_nodes_ * sizeof(NodeRecord) + num_occs_ * sizeof(OccRecord) +
         num_label_symbols_ * sizeof(Symbol);
}

void DiskSuffixTree::HintSequentialScan() const {
  access_->HintSequentialScan();
}

RegionStats DiskSuffixTree::PoolStats() const { return access_->PoolStats(); }

std::size_t DiskSuffixTree::pool_shards() const {
  return access_->pool_shards();
}

storage::EvictionPolicyKind DiskSuffixTree::pool_eviction() const {
  return access_->pool_eviction();
}

storage::IoMode DiskSuffixTree::io_mode() const { return access_->io_mode(); }

std::uint64_t DiskSuffixTree::MappedBytes() const {
  return access_->MappedBytes();
}

std::uint64_t DiskSuffixTree::ResidentBytes() const {
  return access_->ResidentBytes();
}

// ---------------------------------------------------------------------------
// High-level build
// ---------------------------------------------------------------------------

Status WriteTreeToDisk(const TreeView& view, const std::string& base_path,
                       DiskTreeOptions options) {
  TSW_ASSIGN_OR_RETURN(auto writer,
                       DiskTreeWriter::Create(base_path, options));
  CopyTree(view, writer.get());
  return writer->Close();
}

Status AttachNodeSummaries(const std::string& base_path,
                           std::span<const NodeSummaryRecord> records) {
  TSW_ASSIGN_OR_RETURN(const ParsedMeta meta, ReadMeta(base_path));
  if (meta.version < kMetaVersionV2) {
    return Status::InvalidArgument(
        "bundle " + base_path + " is format v" + std::to_string(meta.version) +
        ": node summaries need the v2 section table");
  }
  if (records.size() != meta.num_nodes) {
    return Status::InvalidArgument(
        "summary count " + std::to_string(records.size()) +
        " != node count " + std::to_string(meta.num_nodes) + " of " +
        base_path);
  }
  // Write and sync the section data before announcing it in the meta
  // page: a crash in between leaves a 3-section meta plus an
  // unreferenced .sums file, which reopens cleanly without summaries.
  {
    TSW_ASSIGN_OR_RETURN(auto sums_file,
                         storage::PagedFile::Create(SumsPath(base_path)));
    const auto* src = reinterpret_cast<const std::byte*>(records.data());
    const std::uint64_t total = records.size() * sizeof(NodeSummaryRecord);
    std::vector<std::byte> page(storage::PagedFile::kPageSize);
    std::uint64_t written = 0;
    for (std::uint64_t page_no = 0; written < total; ++page_no) {
      const std::uint64_t chunk =
          std::min<std::uint64_t>(total - written, page.size());
      std::memcpy(page.data(), src + written, chunk);
      if (chunk < page.size()) {
        std::fill(page.begin() + static_cast<std::ptrdiff_t>(chunk),
                  page.end(), std::byte{0});
      }
      TSW_RETURN_IF_ERROR(sums_file.WritePage(page_no, page));
      written += chunk;
    }
    TSW_RETURN_IF_ERROR(sums_file.Sync());
  }
  TSW_ASSIGN_OR_RETURN(auto meta_file,
                       storage::PagedFile::Open(MetaPath(base_path), true));
  std::vector<std::byte> page(storage::PagedFile::kPageSize);
  TSW_RETURN_IF_ERROR(meta_file.ReadPage(0, page));
  // ReadMeta validated the first three entries and the alignment header;
  // only the count and the trailing entry change.
  std::size_t off = kSectionTableOffset;
  const std::uint32_t section_count = kMaxSections;
  std::memcpy(page.data() + off, &section_count, sizeof(section_count));
  off += 2 * sizeof(std::uint32_t) + kNumSections * sizeof(SectionEntry);
  const SectionEntry entry{
      kRegionSummaries, static_cast<std::uint32_t>(sizeof(NodeSummaryRecord)),
      meta.num_nodes, meta.num_nodes * sizeof(NodeSummaryRecord)};
  std::memcpy(page.data() + off, &entry, sizeof(entry));
  TSW_RETURN_IF_ERROR(meta_file.WritePage(0, page));
  TSW_RETURN_IF_ERROR(meta_file.Sync());
  return storage::SyncDir(ParentDir(base_path));
}

void RemoveDiskTree(const std::string& base_path) {
  std::remove(NodesPath(base_path).c_str());
  std::remove(OccsPath(base_path).c_str());
  std::remove(LabelsPath(base_path).c_str());
  std::remove(MetaPath(base_path).c_str());
  std::remove(SumsPath(base_path).c_str());
}

StatusOr<std::unique_ptr<DiskSuffixTree>> BuildDiskTree(
    const SymbolDatabase& db, const std::string& base_path,
    DiskBuildOptions options) {
  TSW_CHECK(options.batch_sequences >= 1);
  // Intermediate trees are written, scanned once in a merge, and deleted;
  // they are always accessed buffered (the mmap path would remap every
  // short-lived tmp bundle for no reuse).
  DiskTreeOptions scratch = options.tree;
  scratch.io_mode = storage::IoMode::kBuffered;

  // Phase 1: spill batch trees.
  std::vector<std::string> pending;
  int next_tmp = 0;
  for (SeqId begin = 0; begin < db.size();
       begin += static_cast<SeqId>(options.batch_sequences)) {
    const SeqId end = static_cast<SeqId>(
        std::min<std::size_t>(db.size(), begin + options.batch_sequences));
    SuffixTreeBuilder builder(&db, options.build);
    for (SeqId id = begin; id < end; ++id) builder.InsertSequence(id);
    SuffixTree batch = builder.Build();
    const std::string tmp = base_path + ".tmp" + std::to_string(next_tmp++);
    TSW_RETURN_IF_ERROR(WriteTreeToDisk(batch, tmp, scratch));
    pending.push_back(tmp);
  }
  if (pending.empty()) {
    return Status::InvalidArgument("empty symbol database");
  }

  // Phase 2: binary merges of trees of increasing size (FIFO pairing).
  std::size_t head = 0;
  while (pending.size() - head > 1) {
    const std::string a = pending[head++];
    const std::string b = pending[head++];
    TSW_ASSIGN_OR_RETURN(auto view_a, DiskSuffixTree::Open(a, scratch));
    TSW_ASSIGN_OR_RETURN(auto view_b, DiskSuffixTree::Open(b, scratch));
    const std::string out = base_path + ".tmp" + std::to_string(next_tmp++);
    TSW_ASSIGN_OR_RETURN(auto writer, DiskTreeWriter::Create(out, scratch));
    MergeTrees(*view_a, *view_b, writer.get());
    TSW_RETURN_IF_ERROR(writer->Close());
    RemoveDiskTree(a);
    RemoveDiskTree(b);
    pending.push_back(out);
  }

  // Rename the survivor into place, then persist the renames.
  const std::string last = pending[head];
  RemoveDiskTree(base_path);
  for (const char* suffix : {".meta", ".nodes", ".occs", ".labels"}) {
    const std::string from = last + suffix;
    const std::string to = base_path + suffix;
    if (std::rename(from.c_str(), to.c_str()) != 0) {
      return Status::IOError("rename " + from + " -> " + to + " failed");
    }
  }
  TSW_RETURN_IF_ERROR(storage::SyncDir(ParentDir(base_path)));
  return DiskSuffixTree::Open(base_path, options.tree);
}

Status DowngradeBundleToV1ForTest(const std::string& base_path) {
  TSW_ASSIGN_OR_RETURN(auto meta_file,
                       storage::PagedFile::Open(MetaPath(base_path), true));
  std::vector<std::byte> page(storage::PagedFile::kPageSize);
  TSW_RETURN_IF_ERROR(meta_file.ReadPage(0, page));
  MetaRecord meta;
  std::memcpy(&meta, page.data(), sizeof(meta));
  if (meta.magic != kMetaMagic) {
    return Status::Corruption("bad magic in " + MetaPath(base_path));
  }
  meta.version = kMetaVersionV1;
  // A v1 writer never emitted anything past the MetaRecord.
  std::fill(page.begin() + sizeof(meta), page.end(), std::byte{0});
  std::memcpy(page.data(), &meta, sizeof(meta));
  TSW_RETURN_IF_ERROR(meta_file.WritePage(0, page));
  return meta_file.Sync();
}

}  // namespace tswarp::suffixtree
