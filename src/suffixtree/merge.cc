#include "suffixtree/merge.h"

#include <algorithm>
#include <span>
#include <vector>

#include "common/logging.h"

namespace tswarp::suffixtree {
namespace {

/// Recursive merge machinery. Each recursion frame owns its Children
/// buffers; label spans passed down the recursion point into a live
/// ancestor frame.
class Merger {
 public:
  Merger(const TreeView& a, const TreeView& b, TreeSink* out,
         const std::atomic<bool>* cancel)
      : a_(a), b_(b), out_(out), cancel_(cancel) {}

  /// Returns false iff the merge was cancelled (the sink is then left
  /// unfinalized and must be discarded).
  bool Run() {
    // The merge visits both inputs roughly front to back (node ids are
    // allocated in creation order); let disk-backed views stream.
    a_.HintSequentialScan();
    b_.HintSequentialScan();
    const NodeId root = out_->AddNode(kNilNode, {});
    try {
      MergeNodes(a_.Root(), b_.Root(), root);
    } catch (const Cancelled&) {
      return false;
    }
    out_->Finalize();
    return true;
  }

 private:
  /// Internal unwinding token for cooperative cancellation; never escapes
  /// MergeTrees.
  struct Cancelled {};

  /// Cancellation poll, amortized to one relaxed load every
  /// kCancelPollNodes output nodes. Throwing unwinds the whole recursion
  /// in one step, leaving the sink unfinalized.
  void PollCancel() {
    static constexpr std::uint32_t kCancelPollNodes = 256;
    if (cancel_ == nullptr) return;
    if (++cancel_polls_ < kCancelPollNodes) return;
    cancel_polls_ = 0;
    if (cancel_->load(std::memory_order_relaxed)) throw Cancelled{};
  }

  void CopyOccurrences(const TreeView& v, NodeId from, NodeId to) {
    occ_buf_.clear();
    v.GetOccurrences(from, &occ_buf_);
    for (const OccurrenceRec& o : occ_buf_) out_->AddOccurrence(to, o);
  }

  /// Copies the subtree of `node` (in `v`) under `out_parent`, where the
  /// edge into `node` still has `label` pending.
  void CopySubtree(const TreeView& v, std::span<const Symbol> label,
                   NodeId node, NodeId out_parent) {
    PollCancel();
    const NodeId m = out_->AddNode(out_parent, label);
    CopyOccurrences(v, node, m);
    Children children;
    v.GetChildren(node, &children);
    for (const Children::Edge& e : children.edges) {
      CopySubtree(v, children.Label(e), e.child, m);
    }
  }

  /// Merges two *nodes* (both positions are exactly at a node). The output
  /// node `on` already exists; this fills its occurrences and children.
  void MergeNodes(NodeId na, NodeId nb, NodeId on) {
    PollCancel();
    CopyOccurrences(a_, na, on);
    CopyOccurrences(b_, nb, on);
    Children ca, cb;
    a_.GetChildren(na, &ca);
    b_.GetChildren(nb, &cb);
    std::vector<bool> b_used(cb.edges.size(), false);
    for (const Children::Edge& ea : ca.edges) {
      const Symbol sa = ca.FirstSymbol(ea);
      std::size_t match = cb.edges.size();
      for (std::size_t i = 0; i < cb.edges.size(); ++i) {
        if (!b_used[i] && cb.FirstSymbol(cb.edges[i]) == sa) {
          match = i;
          break;
        }
      }
      if (match == cb.edges.size()) {
        CopySubtree(a_, ca.Label(ea), ea.child, on);
      } else {
        b_used[match] = true;
        const Children::Edge& eb = cb.edges[match];
        MergeEdges(ca.Label(ea), ea.child, cb.Label(eb), eb.child, on);
      }
    }
    for (std::size_t i = 0; i < cb.edges.size(); ++i) {
      if (!b_used[i]) {
        CopySubtree(b_, cb.Label(cb.edges[i]), cb.edges[i].child, on);
      }
    }
  }

  /// Merges two edges with equal first symbols under output node `on`.
  void MergeEdges(std::span<const Symbol> la, NodeId child_a,
                  std::span<const Symbol> lb, NodeId child_b, NodeId on) {
    std::size_t k = 0;
    const std::size_t limit = std::min(la.size(), lb.size());
    while (k < limit && la[k] == lb[k]) ++k;
    TSW_DCHECK(k >= 1);
    if (k == la.size() && k == lb.size()) {
      const NodeId m = out_->AddNode(on, la);
      MergeNodes(child_a, child_b, m);
    } else if (k == la.size()) {
      // A reaches its node; B is still mid-edge with lb[k:] pending.
      const NodeId m = out_->AddNode(on, la);
      MergeNodeWithEdge(a_, child_a, b_, lb.subspan(k), child_b, m);
    } else if (k == lb.size()) {
      const NodeId m = out_->AddNode(on, lb);
      MergeNodeWithEdge(b_, child_b, a_, la.subspan(k), child_a, m);
    } else {
      // Divergence strictly inside both edges: fresh branching node.
      const NodeId m = out_->AddNode(on, la.subspan(0, k));
      CopySubtree(a_, la.subspan(k), child_a, m);
      CopySubtree(b_, lb.subspan(k), child_b, m);
    }
  }

  /// Merges node `nv` of view `v` with a pending edge (rest -> child_w) of
  /// view `w`, writing into existing output node `mo`.
  void MergeNodeWithEdge(const TreeView& v, NodeId nv, const TreeView& w,
                         std::span<const Symbol> rest, NodeId child_w,
                         NodeId mo) {
    CopyOccurrences(v, nv, mo);
    Children cv;
    v.GetChildren(nv, &cv);
    bool matched = false;
    for (const Children::Edge& e : cv.edges) {
      if (!matched && cv.FirstSymbol(e) == rest.front()) {
        matched = true;
        // Careful with argument order: MergeEdges is symmetric in structure
        // but binds its first edge to a_ and second to b_; dispatch on
        // which view `v` actually is.
        if (&v == &a_) {
          MergeEdges(cv.Label(e), e.child, rest, child_w, mo);
        } else {
          MergeEdges(rest, child_w, cv.Label(e), e.child, mo);
        }
      } else {
        CopySubtree(v, cv.Label(e), e.child, mo);
      }
    }
    if (!matched) CopySubtree(w, rest, child_w, mo);
  }

  const TreeView& a_;
  const TreeView& b_;
  TreeSink* out_;
  const std::atomic<bool>* cancel_;
  std::uint32_t cancel_polls_ = 0;
  std::vector<OccurrenceRec> occ_buf_;
};

}  // namespace

bool MergeTrees(const TreeView& a, const TreeView& b, TreeSink* out,
                const std::atomic<bool>* cancel) {
  TSW_CHECK(out != nullptr);
  return Merger(a, b, out, cancel).Run();
}

void CopyTree(const TreeView& view, TreeSink* sink) {
  TSW_CHECK(sink != nullptr);
  view.HintSequentialScan();
  const NodeId root = sink->AddNode(kNilNode, {});
  std::vector<OccurrenceRec> occ_buf;
  view.GetOccurrences(view.Root(), &occ_buf);
  for (const OccurrenceRec& o : occ_buf) sink->AddOccurrence(root, o);

  // Explicit stack to copy arbitrarily deep trees.
  struct Frame {
    NodeId src;
    NodeId dst;
  };
  std::vector<Frame> stack = {{view.Root(), root}};
  Children children;
  std::vector<OccurrenceRec> occs;
  while (!stack.empty()) {
    Frame f = stack.back();
    stack.pop_back();
    view.GetChildren(f.src, &children);
    for (const Children::Edge& e : children.edges) {
      const NodeId m = sink->AddNode(f.dst, children.Label(e));
      occs.clear();
      view.GetOccurrences(e.child, &occs);
      for (const OccurrenceRec& o : occs) sink->AddOccurrence(m, o);
      stack.push_back({e.child, m});
    }
  }
  sink->Finalize();
}

}  // namespace tswarp::suffixtree
