#ifndef TSWARP_SUFFIXTREE_TREE_VIEW_H_
#define TSWARP_SUFFIXTREE_TREE_VIEW_H_

#include <cstdint>
#include <span>
#include <vector>

#include "common/types.h"

namespace tswarp::suffixtree {

/// Node handle inside a TreeView. Dense ids; kNilNode marks "none".
using NodeId = std::uint32_t;
inline constexpr NodeId kNilNode = 0xFFFFFFFFu;

/// One stored suffix: sequence `seq`, starting position `pos`, and the
/// length `run` of the run of equal symbols starting at `pos` (1 for dense
/// trees' bookkeeping; > 1 values matter only for sparse trees, where the
/// occurrence also represents the non-stored suffixes pos+1 .. pos+run-1).
struct OccurrenceRec {
  SeqId seq;
  Pos pos;
  Pos run;

  friend bool operator==(const OccurrenceRec&, const OccurrenceRec&) = default;
};

/// Children of one node, with edge-label symbols gathered into a shared
/// pool to avoid per-edge allocations.
struct Children {
  struct Edge {
    NodeId child;
    std::uint32_t label_begin;  // Offset into label_pool.
    std::uint32_t label_len;    // >= 1 for non-root edges.
  };

  std::vector<Symbol> label_pool;
  std::vector<Edge> edges;

  void Clear() {
    label_pool.clear();
    edges.clear();
  }

  std::span<const Symbol> Label(const Edge& e) const {
    return std::span<const Symbol>(label_pool.data() + e.label_begin,
                                   e.label_len);
  }

  Symbol FirstSymbol(const Edge& e) const { return label_pool[e.label_begin]; }
};

/// Reusable buffers for subtree-occurrence collection (see
/// TreeView::CollectSubtreeOccurrences below).
struct SubtreeScratch {
  std::vector<NodeId> stack;
  Children children;
};

/// Read-only interface over a generalized suffix tree, implemented by the
/// in-memory SuffixTree and the disk-backed DiskSuffixTree. The similarity
/// searchers, the merge algorithm, and the serializer are all written
/// against this interface.
class TreeView {
 public:
  virtual ~TreeView() = default;

  virtual NodeId Root() const = 0;

  /// Fills `out` (cleared first) with the children of `node` and their edge
  /// labels.
  virtual void GetChildren(NodeId node, Children* out) const = 0;

  /// Appends the occurrences attached to `node` (suffixes that end exactly
  /// at this node) to `out`.
  virtual void GetOccurrences(NodeId node,
                              std::vector<OccurrenceRec>* out) const = 0;

  /// Number of occurrences in the subtree rooted at `node` (computed at
  /// finalize time).
  virtual std::uint32_t SubtreeOccCount(NodeId node) const = 0;

  /// Maximum `run` value over all occurrences in the subtree of `node`
  /// (finalize-time stat). Used by the sparse searcher to discount the
  /// Theorem-1 pruning bound so non-stored suffixes are never dismissed.
  virtual Pos MaxRun(NodeId node) const = 0;

  virtual std::uint64_t NumNodes() const = 0;
  virtual std::uint64_t NumOccurrences() const = 0;

  /// Total label symbols stored by the tree (materialized edge labels).
  virtual std::uint64_t NumLabelSymbols() const = 0;

  /// Index size in bytes: node records + occurrence records + materialized
  /// edge labels, matching the serialized footprint.
  virtual std::uint64_t SizeBytes() const = 0;

  /// Hint that the caller is about to scan the whole tree front to back
  /// (merge, serialization). Disk-backed views prime their sequential
  /// read-ahead; in-memory views ignore it.
  virtual void HintSequentialScan() const {}

  /// DFS helper: appends every occurrence in the subtree of `node`.
  void CollectSubtreeOccurrences(NodeId node,
                                 std::vector<OccurrenceRec>* out) const;

  /// Scratch-reusing variant for hot-path callers (the search driver
  /// collects once per matched edge): identical traversal and output
  /// order, but the DFS stack and children buffer live in `scratch` and
  /// are reused across calls, so a warmed-up caller allocates nothing.
  void CollectSubtreeOccurrences(NodeId node, std::vector<OccurrenceRec>* out,
                                 SubtreeScratch* scratch) const;
};

/// Write interface for producing a suffix tree node-by-node; implemented by
/// the in-memory tree and the disk writer. Used by the merge algorithm and
/// the serializer.
class TreeSink {
 public:
  virtual ~TreeSink() = default;

  /// Adds a node under `parent` with the given edge label (copied). Pass
  /// kNilNode as parent to create the root (label ignored, must be first).
  virtual NodeId AddNode(NodeId parent, std::span<const Symbol> label) = 0;

  /// Attaches an occurrence to an existing node.
  virtual void AddOccurrence(NodeId node, const OccurrenceRec& occ) = 0;

  /// Computes subtree statistics; must be called exactly once, after all
  /// nodes and occurrences are added.
  virtual void Finalize() = 0;
};

}  // namespace tswarp::suffixtree

#endif  // TSWARP_SUFFIXTREE_TREE_VIEW_H_
