#ifndef TSWARP_SUFFIXTREE_SUFFIX_TREE_H_
#define TSWARP_SUFFIXTREE_SUFFIX_TREE_H_

#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "common/types.h"
#include "suffixtree/symbol_database.h"
#include "suffixtree/tree_view.h"

namespace tswarp::suffixtree {

/// In-memory generalized suffix tree over symbol sequences.
///
/// Edge labels are materialized into an internal symbol pool (the tree does
/// not reference the SymbolDatabase after construction), which makes
/// SizeBytes() equal to the serialized footprint — the quantity Table 1 of
/// the paper reports. Edge splits alias sub-ranges of the pool, so the pool
/// grows only by the unmatched remainder of each inserted suffix.
///
/// Construction is suffix-by-suffix insertion (see SuffixTreeBuilder);
/// trees can also be produced structurally via the TreeSink interface (used
/// by MergeTrees and the disk loader).
class SuffixTree : public TreeView, public TreeSink {
 public:
  SuffixTree();

  SuffixTree(const SuffixTree&) = delete;
  SuffixTree& operator=(const SuffixTree&) = delete;
  SuffixTree(SuffixTree&&) = default;
  SuffixTree& operator=(SuffixTree&&) = default;

  // --- TreeView ---
  NodeId Root() const override { return 0; }
  void GetChildren(NodeId node, Children* out) const override;
  void GetOccurrences(NodeId node,
                      std::vector<OccurrenceRec>* out) const override;
  std::uint32_t SubtreeOccCount(NodeId node) const override;
  Pos MaxRun(NodeId node) const override;
  std::uint64_t NumNodes() const override { return nodes_.size(); }
  std::uint64_t NumOccurrences() const override { return occurrences_.size(); }
  std::uint64_t NumLabelSymbols() const override { return label_pool_.size(); }
  std::uint64_t SizeBytes() const override;

  // --- TreeSink ---
  NodeId AddNode(NodeId parent, std::span<const Symbol> label) override;
  void AddOccurrence(NodeId node, const OccurrenceRec& occ) override;
  void Finalize() override;

  bool finalized() const { return finalized_; }

 private:
  friend class SuffixTreeBuilder;

  struct Node {
    std::uint32_t label_begin = 0;
    std::uint32_t label_len = 0;
    NodeId first_child = kNilNode;
    NodeId next_sibling = kNilNode;
    std::uint32_t first_occ = kNilOcc;
    std::uint32_t subtree_occ = 0;
    Pos max_run = 0;
  };

  struct Occ {
    SeqId seq;
    Pos pos;
    Pos run;
    std::uint32_t next;
  };

  static constexpr std::uint32_t kNilOcc = 0xFFFFFFFFu;

  Symbol FirstLabelSymbol(NodeId n) const {
    return label_pool_[nodes_[n].label_begin];
  }

  std::vector<Node> nodes_;
  std::vector<Occ> occurrences_;
  std::vector<Symbol> label_pool_;
  bool finalized_ = false;
};

/// Options controlling which suffixes of a sequence are inserted.
struct BuildOptions {
  /// Sparse rule (paper Section 6.1): store suffix p only when p == 0 or
  /// CS[p] != CS[p-1]. Non-stored suffixes stay reachable through the
  /// occurrence `run` fields.
  bool sparse = false;

  /// Skip suffixes shorter than this (warping-window extension, paper §8).
  /// 0 disables the bound.
  Pos min_suffix_length = 0;

  /// Truncate inserted suffixes to this many symbols (0 = unlimited).
  /// Together with min_suffix_length this realizes the paper's
  /// length-bounded index.
  Pos max_suffix_length = 0;
};

/// Incremental construction of a SuffixTree by inserting suffixes. Keeps a
/// (node, first-symbol) hash index that is discarded when Build() is called.
class SuffixTreeBuilder {
 public:
  explicit SuffixTreeBuilder(const SymbolDatabase* db,
                             BuildOptions options = {});

  /// Inserts the suffixes of sequence `id` selected by the build options.
  void InsertSequence(SeqId id);

  /// Inserts the single suffix starting at (id, start); `run` must be
  /// db->RunLength(id, start) (passed in to avoid rescanning).
  void InsertSuffix(SeqId id, Pos start, Pos run);

  /// Number of suffixes inserted / skipped so far (compaction accounting,
  /// paper Section 6: r = non-stored / total).
  std::uint64_t stored_suffixes() const { return stored_suffixes_; }
  std::uint64_t skipped_suffixes() const { return skipped_suffixes_; }

  /// Finalizes statistics and returns the tree. The builder is spent.
  SuffixTree Build();

 private:
  NodeId FindChild(NodeId parent, Symbol s) const;
  void LinkChild(NodeId parent, Symbol s, NodeId child);
  void RekeyChild(NodeId parent, Symbol s, NodeId child);

  const SymbolDatabase* db_;
  BuildOptions options_;
  SuffixTree tree_;
  // (parent << 32 | symbol) -> child node.
  std::unordered_map<std::uint64_t, NodeId> child_index_;
  std::uint64_t stored_suffixes_ = 0;
  std::uint64_t skipped_suffixes_ = 0;
};

/// Convenience: builds a tree over every sequence of `db`.
SuffixTree BuildSuffixTree(const SymbolDatabase& db, BuildOptions options = {});

}  // namespace tswarp::suffixtree

#endif  // TSWARP_SUFFIXTREE_SUFFIX_TREE_H_
