#include "suffixtree/node_summary.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace tswarp::suffixtree {
namespace {

constexpr Value kInf = std::numeric_limits<Value>::infinity();

// Outward float rounding keeps the stored hull a superset of the exact
// double hull. The unbounded cases stay sound: a lower bound above
// FLT_MAX clamps to FLT_MAX (still below the value), an upper bound
// above FLT_MAX widens to +inf.
float RoundDown(Value v) {
  auto f = static_cast<float>(v);
  if (static_cast<Value>(f) > v) {
    f = std::nextafterf(f, -std::numeric_limits<float>::infinity());
  }
  return f;
}

float RoundUp(Value v) {
  auto f = static_cast<float>(v);
  if (static_cast<Value>(f) < v) {
    f = std::nextafterf(f, std::numeric_limits<float>::infinity());
  }
  return f;
}

NodeSummaryRecord EmptyRecord() {
  NodeSummaryRecord rec{};
  for (std::uint32_t s = 0; s < NodeSummaryRecord::kMaxLabelSegments; ++s) {
    rec.seg_lo[s] = kEmptyHullLo;
    rec.seg_hi[s] = kEmptyHullHi;
  }
  rec.sub_lo = kEmptyHullLo;
  rec.sub_hi = kEmptyHullHi;
  rec.total_lo = kEmptyHullLo;
  rec.total_hi = kEmptyHullHi;
  return rec;
}

}  // namespace

std::vector<NodeSummaryRecord> BuildNodeSummaries(
    const TreeView& tree, std::span<const SymbolHull> symbol_hulls) {
  const auto num_nodes = static_cast<std::size_t>(tree.NumNodes());
  std::vector<NodeSummaryRecord> recs(num_nodes, EmptyRecord());
  if (num_nodes == 0) return recs;
  std::vector<std::uint32_t> label_len(num_nodes, 0);

  struct Frame {
    NodeId node;
    bool processed;
  };
  std::vector<Frame> stack = {{tree.Root(), false}};
  Children children;
  while (!stack.empty()) {
    const Frame f = stack.back();
    stack.pop_back();
    if (!f.processed) {
      stack.push_back({f.node, true});
      tree.GetChildren(f.node, &children);
      for (const Children::Edge& e : children.edges) {
        // The edge label is only reachable from the parent, so the
        // child's label-derived fields are filled here; the subtree
        // fields follow when the child pops in post-order.
        NodeSummaryRecord& rec = recs[e.child];
        const std::span<const Symbol> label = children.Label(e);
        const auto segments = static_cast<std::uint32_t>(
            std::min<std::size_t>(NodeSummaryRecord::kMaxLabelSegments,
                                  label.size()));
        rec.label_segments = segments;
        for (std::uint32_t s = 0; s < segments; ++s) {
          const std::size_t begin = label.size() * s / segments;
          const std::size_t end = label.size() * (s + 1) / segments;
          Value lo = kInf;
          Value hi = -kInf;
          for (std::size_t i = begin; i < end; ++i) {
            const Symbol sym = label[i];
            TSW_CHECK(sym >= 0 &&
                      static_cast<std::size_t>(sym) < symbol_hulls.size())
                << "label symbol " << sym << " outside the hull table ("
                << symbol_hulls.size() << ")";
            lo = std::min(lo, symbol_hulls[static_cast<std::size_t>(sym)].lo);
            hi = std::max(hi, symbol_hulls[static_cast<std::size_t>(sym)].hi);
          }
          rec.seg_lo[s] = RoundDown(lo);
          rec.seg_hi[s] = RoundUp(hi);
        }
        label_len[e.child] = static_cast<std::uint32_t>(label.size());
        stack.push_back({e.child, false});
      }
      continue;
    }
    // Post-order visit: every child record is complete.
    NodeSummaryRecord& rec = recs[f.node];
    float sub_lo = kEmptyHullLo;
    float sub_hi = kEmptyHullHi;
    std::uint64_t max_below = 0;
    tree.GetChildren(f.node, &children);
    for (const Children::Edge& e : children.edges) {
      const NodeSummaryRecord& crec = recs[e.child];
      sub_lo = std::min(sub_lo, crec.total_lo);
      sub_hi = std::max(sub_hi, crec.total_hi);
      max_below = std::max<std::uint64_t>(max_below, crec.max_depth);
    }
    rec.sub_lo = sub_lo;
    rec.sub_hi = sub_hi;
    float total_lo = sub_lo;
    float total_hi = sub_hi;
    for (std::uint32_t s = 0; s < rec.label_segments; ++s) {
      total_lo = std::min(total_lo, rec.seg_lo[s]);
      total_hi = std::max(total_hi, rec.seg_hi[s]);
    }
    rec.total_lo = total_lo;
    rec.total_hi = total_hi;
    rec.max_depth = static_cast<std::uint32_t>(std::min<std::uint64_t>(
        static_cast<std::uint64_t>(label_len[f.node]) + max_below,
        0xFFFFFFFFull));
  }
  return recs;
}

}  // namespace tswarp::suffixtree
