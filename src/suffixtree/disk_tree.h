#ifndef TSWARP_SUFFIXTREE_DISK_TREE_H_
#define TSWARP_SUFFIXTREE_DISK_TREE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "storage/buffer_manager.h"
#include "storage/paged_file.h"
#include "suffixtree/suffix_tree.h"
#include "suffixtree/symbol_database.h"
#include "suffixtree/tree_view.h"

namespace tswarp::suffixtree {

/// A disk-resident suffix tree is a bundle of four files:
///   <base>.meta    counts + magic
///   <base>.nodes   fixed 32-byte node records
///   <base>.occs    fixed 16-byte occurrence records
///   <base>.labels  materialized edge-label symbols (4 bytes each)
/// All access goes through per-region sharded buffer managers, so trees
/// larger than RAM can be built, merged, and searched with a bounded page
/// budget — the paper's disk-based index.
struct DiskTreeOptions {
  /// Frame budget per region file.
  std::size_t pool_pages = 256;

  /// Lock shards per region manager; 0 = auto (hardware threads, capped),
  /// 1 = classic single-mutex pool (the PR 1 baseline).
  std::size_t pool_shards = 0;

  /// Replacement policy of every region manager.
  storage::EvictionPolicyKind eviction = storage::EvictionPolicyKind::kLru;

  /// Sequential read-ahead window (pages); 0 disables. Only helps
  /// scan-shaped access (merge, CopyTree), never hurts random traversal
  /// because the manager arms it on sequential fault patterns only.
  std::size_t readahead_pages = 8;

  storage::BufferManagerOptions ToManagerOptions() const;
};

/// Buffer-manager statistics of one tree, broken down by region.
struct RegionStats {
  storage::BufferManager::Stats nodes;
  storage::BufferManager::Stats occs;
  storage::BufferManager::Stats labels;

  storage::BufferManager::Stats Total() const;
};

/// TreeSink that writes a disk tree bundle. Nodes and occurrences are
/// appended; parent/sibling links are patched in place through the
/// managers' byte-granular Read/Write shim (patching a record rewrites a
/// few dozen bytes mid-page, so pin-copy-unpin is the right shape here).
class DiskTreeWriter : public TreeSink {
 public:
  static StatusOr<std::unique_ptr<DiskTreeWriter>> Create(
      const std::string& base_path, DiskTreeOptions options = {});

  // --- TreeSink ---
  NodeId AddNode(NodeId parent, std::span<const Symbol> label) override;
  void AddOccurrence(NodeId node, const OccurrenceRec& occ) override;
  void Finalize() override;

  /// Flushes the managers and writes the meta file. Must be called after
  /// Finalize(); the bundle is unreadable before Close(). Idempotent: the
  /// first call decides the outcome and latches it; any further call
  /// returns the latched status without touching the files again.
  /// Close() before Finalize() latches (and returns) FailedPrecondition.
  Status Close();

  /// Last I/O error, if any sink call failed (TreeSink's interface has no
  /// Status returns; errors are latched and surfaced here / by Close()).
  const Status& status() const { return status_; }

 private:
  DiskTreeWriter(const std::string& base_path, DiskTreeOptions options);

  Status Init();
  Status CloseInternal();
  void Latch(const Status& s) {
    if (status_.ok() && !s.ok()) status_ = s;
  }

  std::string base_path_;
  DiskTreeOptions options_;
  std::unique_ptr<storage::PagedFile> node_file_;
  std::unique_ptr<storage::PagedFile> occ_file_;
  std::unique_ptr<storage::PagedFile> label_file_;
  std::unique_ptr<storage::BufferManager> nodes_;
  std::unique_ptr<storage::BufferManager> occs_;
  std::unique_ptr<storage::BufferManager> labels_;
  std::uint64_t num_nodes_ = 0;
  std::uint64_t num_occs_ = 0;
  std::uint64_t num_label_symbols_ = 0;
  bool finalized_ = false;
  bool closed_ = false;
  Status status_;
};

/// Read-only TreeView over a disk tree bundle.
///
/// Thread safety: the read accessors (GetChildren, GetOccurrences,
/// SubtreeOccCount, MaxRun, CollectSubtreeOccurrences, PoolStats) may be
/// called from many threads concurrently. Each call pins the pages it
/// touches through the three sharded BufferManagers and reads records
/// zero-copy out of the pinned frames; every caller-visible buffer is an
/// out-parameter owned by the calling worker. Because the managers are
/// lock-sharded, parallel tree searchers only contend when they touch
/// pages of the same shard — this is what converts PR 1's thread-pool
/// parallelism into real disk-backed scaling.
class DiskSuffixTree : public TreeView {
 public:
  static StatusOr<std::unique_ptr<DiskSuffixTree>> Open(
      const std::string& base_path, DiskTreeOptions options = {});

  // --- TreeView ---
  NodeId Root() const override { return 0; }
  void GetChildren(NodeId node, Children* out) const override;
  void GetOccurrences(NodeId node,
                      std::vector<OccurrenceRec>* out) const override;
  std::uint32_t SubtreeOccCount(NodeId node) const override;
  Pos MaxRun(NodeId node) const override;
  std::uint64_t NumNodes() const override { return num_nodes_; }
  std::uint64_t NumOccurrences() const override { return num_occs_; }
  std::uint64_t NumLabelSymbols() const override {
    return num_label_symbols_;
  }
  std::uint64_t SizeBytes() const override;

  /// Primes the managers' sequential read-ahead for a front-to-back scan
  /// (merge / CopyTree). No-op when read-ahead is disabled.
  void HintSequentialScan() const override;

  /// Buffer-manager statistics, per region. RegionStats::Total() gives
  /// the old aggregate view.
  RegionStats PoolStats() const;

  /// Resolved shard count of the region managers (after auto-detection).
  std::size_t pool_shards() const;
  storage::EvictionPolicyKind pool_eviction() const;

 private:
  DiskSuffixTree() = default;

  std::string base_path_;
  DiskTreeOptions options_;
  std::unique_ptr<storage::PagedFile> node_file_;
  std::unique_ptr<storage::PagedFile> occ_file_;
  std::unique_ptr<storage::PagedFile> label_file_;
  // Managers are mutable: reads fault pages in and move policy state.
  mutable std::unique_ptr<storage::BufferManager> nodes_;
  mutable std::unique_ptr<storage::BufferManager> occs_;
  mutable std::unique_ptr<storage::BufferManager> labels_;
  std::uint64_t num_nodes_ = 0;
  std::uint64_t num_occs_ = 0;
  std::uint64_t num_label_symbols_ = 0;
};

/// Serializes any TreeView to a disk bundle at `base_path`.
Status WriteTreeToDisk(const TreeView& view, const std::string& base_path,
                       DiskTreeOptions options = {});

/// Deletes the files of a disk tree bundle (best-effort).
void RemoveDiskTree(const std::string& base_path);

/// Build configuration for the batched, merge-based disk construction
/// (paper Section 4.1: "a series of binary merges of suffix trees of
/// increasing size").
struct DiskBuildOptions {
  BuildOptions build;
  /// Sequences per in-memory batch tree before it is spilled to disk.
  std::size_t batch_sequences = 64;
  DiskTreeOptions tree = {};
};

/// Builds a disk tree over all sequences of `db`: batches are built in
/// memory, spilled, then pairwise-merged on disk until one tree remains at
/// `base_path`.
StatusOr<std::unique_ptr<DiskSuffixTree>> BuildDiskTree(
    const SymbolDatabase& db, const std::string& base_path,
    DiskBuildOptions options = {});

}  // namespace tswarp::suffixtree

#endif  // TSWARP_SUFFIXTREE_DISK_TREE_H_
