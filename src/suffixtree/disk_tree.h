#ifndef TSWARP_SUFFIXTREE_DISK_TREE_H_
#define TSWARP_SUFFIXTREE_DISK_TREE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "storage/buffer_manager.h"
#include "storage/mmap_file.h"
#include "storage/paged_file.h"
#include "suffixtree/node_summary.h"
#include "suffixtree/suffix_tree.h"
#include "suffixtree/symbol_database.h"
#include "suffixtree/tree_view.h"

namespace tswarp::suffixtree {

namespace internal {
class TreeAccess;  // Pluggable node-access backend (buffered or mmap).
}  // namespace internal

/// A disk-resident suffix tree is a bundle of four files, plus an
/// optional fifth:
///   <base>.meta    counts + magic + v2 section table
///   <base>.nodes   fixed 32-byte node records
///   <base>.occs    fixed 16-byte occurrence records
///   <base>.labels  materialized edge-label symbols (4 bytes each)
///   <base>.sums    fixed 64-byte node-summary records (optional; v2
///                  only, announced by a 4th section-table entry)
/// The bundle is relocatable: records reference each other by index only
/// (no absolute offsets or embedded paths), so the files can be moved or
/// renamed together freely.
///
/// Two read paths exist, selected per open via `io_mode`:
///   - buffered: per-region sharded buffer managers with a bounded page
///     budget — trees larger than RAM can be built, merged, and searched.
///     The only path that can read v1 bundles.
///   - mmap: the region files are mapped read-only and cursors read
///     records straight out of the mapping — zero pins, zero private
///     cache, kernel page cache shared across processes. Requires a
///     finalized v2 bundle.
struct DiskTreeOptions {
  /// Frame budget per region file (buffered path only).
  std::size_t pool_pages = 256;

  /// Lock shards per region manager; 0 = auto (hardware threads, capped),
  /// 1 = classic single-mutex pool (the PR 1 baseline). Buffered only.
  std::size_t pool_shards = 0;

  /// Replacement policy of every region manager. Buffered only.
  storage::EvictionPolicyKind eviction = storage::EvictionPolicyKind::kLru;

  /// Sequential read-ahead window (pages); 0 disables. Only helps
  /// scan-shaped access (merge, CopyTree), never hurts random traversal
  /// because the manager arms it on sequential fault patterns only.
  /// On the mmap path the analogue is madvise MADV_SEQUENTIAL, armed by
  /// HintSequentialScan() regardless of this knob.
  std::size_t readahead_pages = 8;

  /// Read path for DiskSuffixTree::Open. The writer always runs buffered
  /// (mmap is read-only). Library default is buffered for compatibility;
  /// core::IndexOptions defaults to mmap for finalized bundles.
  storage::IoMode io_mode = storage::IoMode::kBuffered;

  /// Whether Open serves the bundle's node-summary section when present
  /// (mmap: mapped like any region; buffered: loaded eagerly as a flat
  /// sidecar array — summaries are consulted per edge, so they bypass
  /// the page pool). Bundles without the section always open fine and
  /// simply expose an empty span.
  bool load_node_summaries = true;

  storage::BufferManagerOptions ToManagerOptions() const;
};

/// Buffer-manager statistics of one tree, broken down by region. On the
/// mmap path all counters are zero — there is no pool to hit or miss.
struct RegionStats {
  storage::BufferManager::Stats nodes;
  storage::BufferManager::Stats occs;
  storage::BufferManager::Stats labels;

  storage::BufferManager::Stats Total() const;
};

/// TreeSink that writes a disk tree bundle (always buffered; mappings are
/// read-only). Nodes and occurrences are appended; parent/sibling links
/// are patched in place through the managers' byte-granular Read/Write
/// shim (patching a record rewrites a few dozen bytes mid-page, so
/// pin-copy-unpin is the right shape here). Close() syncs the meta file
/// and then fsyncs the containing directory, so a bundle that Close()
/// reported durable cannot vanish on power loss.
class DiskTreeWriter : public TreeSink {
 public:
  static StatusOr<std::unique_ptr<DiskTreeWriter>> Create(
      const std::string& base_path, DiskTreeOptions options = {});

  // --- TreeSink ---
  NodeId AddNode(NodeId parent, std::span<const Symbol> label) override;
  void AddOccurrence(NodeId node, const OccurrenceRec& occ) override;
  void Finalize() override;

  /// Flushes the managers and writes the meta file. Must be called after
  /// Finalize(); the bundle is unreadable before Close(). Idempotent: the
  /// first call decides the outcome and latches it; any further call
  /// returns the latched status without touching the files again.
  /// Close() before Finalize() latches (and returns) FailedPrecondition.
  Status Close();

  /// Last I/O error, if any sink call failed (TreeSink's interface has no
  /// Status returns; errors are latched and surfaced here / by Close()).
  const Status& status() const { return status_; }

 private:
  DiskTreeWriter(const std::string& base_path, DiskTreeOptions options);

  Status Init();
  Status CloseInternal();
  void Latch(const Status& s) {
    if (status_.ok() && !s.ok()) status_ = s;
  }

  std::string base_path_;
  DiskTreeOptions options_;
  std::unique_ptr<storage::PagedFile> node_file_;
  std::unique_ptr<storage::PagedFile> occ_file_;
  std::unique_ptr<storage::PagedFile> label_file_;
  std::unique_ptr<storage::BufferManager> nodes_;
  std::unique_ptr<storage::BufferManager> occs_;
  std::unique_ptr<storage::BufferManager> labels_;
  std::uint64_t num_nodes_ = 0;
  std::uint64_t num_occs_ = 0;
  std::uint64_t num_label_symbols_ = 0;
  bool finalized_ = false;
  bool closed_ = false;
  Status status_;
};

/// Read-only TreeView over a disk tree bundle, backed by one of two
/// node-access layers chosen at Open time (DiskTreeOptions::io_mode):
///
///   - Buffered: every accessor pins the pages it touches through three
///     sharded BufferManagers and reads records zero-copy out of the
///     pinned frames. Parallel searchers contend only on same-shard
///     pages. Works for v1 and v2 bundles, any size vs RAM.
///   - Mapped: the three region files are mmap'd read-only at Open
///     (validated up front — truncation is a clean Status::Corruption,
///     never a SIGBUS) and accessors read records directly from the
///     mapping with no pinning or locking at all.
///
/// Thread safety: the read accessors (GetChildren, GetOccurrences,
/// SubtreeOccCount, MaxRun, CollectSubtreeOccurrences, PoolStats) may be
/// called from many threads concurrently on either backend; every
/// caller-visible buffer is an out-parameter owned by the calling worker.
class DiskSuffixTree : public TreeView {
 public:
  static StatusOr<std::unique_ptr<DiskSuffixTree>> Open(
      const std::string& base_path, DiskTreeOptions options = {});

  ~DiskSuffixTree() override;

  // --- TreeView ---
  NodeId Root() const override { return 0; }
  void GetChildren(NodeId node, Children* out) const override;
  void GetOccurrences(NodeId node,
                      std::vector<OccurrenceRec>* out) const override;
  std::uint32_t SubtreeOccCount(NodeId node) const override;
  Pos MaxRun(NodeId node) const override;
  std::uint64_t NumNodes() const override { return num_nodes_; }
  std::uint64_t NumOccurrences() const override { return num_occs_; }
  std::uint64_t NumLabelSymbols() const override {
    return num_label_symbols_;
  }
  std::uint64_t SizeBytes() const override;

  /// Primes for a front-to-back scan (merge / CopyTree): sequential
  /// read-ahead on the buffered path, madvise MADV_SEQUENTIAL on mmap.
  void HintSequentialScan() const override;

  /// Buffer-manager statistics, per region. RegionStats::Total() gives
  /// the old aggregate view. All-zero on the mmap path: no pool exists.
  RegionStats PoolStats() const;

  /// Resolved shard count of the region managers (after auto-detection);
  /// 0 on the mmap path.
  std::size_t pool_shards() const;
  storage::EvictionPolicyKind pool_eviction() const;

  /// Read path this tree was opened with.
  storage::IoMode io_mode() const;

  /// Bytes mapped into the address space (mmap path; 0 when buffered).
  std::uint64_t MappedBytes() const;

  /// Mapped bytes currently resident in the kernel page cache (best
  /// effort, mmap path only). Not a hot-path call.
  std::uint64_t ResidentBytes() const;

  /// On-disk format version of the bundle (1 or 2).
  std::uint32_t format_version() const { return format_version_; }

  /// Node-summary records of the bundle's optional summary section,
  /// indexed by NodeId. Empty when the bundle has no section or Open was
  /// told not to load it. Valid for the tree's lifetime (mmap: a view
  /// into the mapping; buffered: an owned copy read at Open).
  std::span<const NodeSummaryRecord> node_summaries() const;

 private:
  DiskSuffixTree() = default;

  std::string base_path_;
  DiskTreeOptions options_;
  std::unique_ptr<internal::TreeAccess> access_;
  std::uint64_t num_nodes_ = 0;
  std::uint64_t num_occs_ = 0;
  std::uint64_t num_label_symbols_ = 0;
  std::uint32_t format_version_ = 0;
};

/// Serializes any TreeView to a disk bundle at `base_path`.
Status WriteTreeToDisk(const TreeView& view, const std::string& base_path,
                       DiskTreeOptions options = {});

/// Adds (or replaces) the node-summary section of a finalized v2 bundle:
/// writes `<base>.sums` and rewrites the meta page's section table to
/// announce it. `records.size()` must equal the bundle's node count.
/// Open handles on the bundle do not observe the new section; reopen to
/// serve it. v1 bundles are rejected (no section table to extend).
Status AttachNodeSummaries(const std::string& base_path,
                           std::span<const NodeSummaryRecord> records);

/// Deletes the files of a disk tree bundle (best-effort).
void RemoveDiskTree(const std::string& base_path);

/// Build configuration for the batched, merge-based disk construction
/// (paper Section 4.1: "a series of binary merges of suffix trees of
/// increasing size").
struct DiskBuildOptions {
  BuildOptions build;
  /// Sequences per in-memory batch tree before it is spilled to disk.
  std::size_t batch_sequences = 64;
  DiskTreeOptions tree = {};
};

/// Builds a disk tree over all sequences of `db`: batches are built in
/// memory, spilled, then pairwise-merged on disk until one tree remains at
/// `base_path`. Intermediate trees are always opened buffered (they are
/// scanned once and deleted); only the final open honors
/// `options.tree.io_mode`.
StatusOr<std::unique_ptr<DiskSuffixTree>> BuildDiskTree(
    const SymbolDatabase& db, const std::string& base_path,
    DiskBuildOptions options = {});

/// Test hook: rewrites the meta page of a finalized v2 bundle as format
/// v1 (the layouts share a common prefix), producing the bundle an older
/// build would have written. Used to pin the version gate.
Status DowngradeBundleToV1ForTest(const std::string& base_path);

}  // namespace tswarp::suffixtree

#endif  // TSWARP_SUFFIXTREE_DISK_TREE_H_
