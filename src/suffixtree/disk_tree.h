#ifndef TSWARP_SUFFIXTREE_DISK_TREE_H_
#define TSWARP_SUFFIXTREE_DISK_TREE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "storage/buffer_pool.h"
#include "storage/paged_file.h"
#include "suffixtree/suffix_tree.h"
#include "suffixtree/symbol_database.h"
#include "suffixtree/tree_view.h"

namespace tswarp::suffixtree {

/// A disk-resident suffix tree is a bundle of four files:
///   <base>.meta    counts + magic
///   <base>.nodes   fixed 32-byte node records
///   <base>.occs    fixed 16-byte occurrence records
///   <base>.labels  materialized edge-label symbols (4 bytes each)
/// All access goes through per-file LRU buffer pools, so trees larger than
/// RAM can be built, merged, and searched with a bounded page budget —
/// the paper's disk-based index.
struct DiskTreeOptions {
  /// Buffer-pool pages per region file.
  std::size_t pool_pages = 256;
};

/// TreeSink that writes a disk tree bundle. Nodes and occurrences are
/// appended; parent/sibling links are patched in place through the pool.
class DiskTreeWriter : public TreeSink {
 public:
  static StatusOr<std::unique_ptr<DiskTreeWriter>> Create(
      const std::string& base_path, DiskTreeOptions options = {});

  // --- TreeSink ---
  NodeId AddNode(NodeId parent, std::span<const Symbol> label) override;
  void AddOccurrence(NodeId node, const OccurrenceRec& occ) override;
  void Finalize() override;

  /// Flushes pools and writes the meta file. Must be called after
  /// Finalize(); the bundle is unreadable before Close().
  Status Close();

  /// Last I/O error, if any sink call failed (TreeSink's interface has no
  /// Status returns; errors are latched and surfaced here / by Close()).
  const Status& status() const { return status_; }

 private:
  DiskTreeWriter(const std::string& base_path, DiskTreeOptions options);

  Status Init();
  void Latch(const Status& s) {
    if (status_.ok() && !s.ok()) status_ = s;
  }

  std::string base_path_;
  DiskTreeOptions options_;
  std::unique_ptr<storage::PagedFile> node_file_;
  std::unique_ptr<storage::PagedFile> occ_file_;
  std::unique_ptr<storage::PagedFile> label_file_;
  std::unique_ptr<storage::BufferPool> nodes_;
  std::unique_ptr<storage::BufferPool> occs_;
  std::unique_ptr<storage::BufferPool> labels_;
  std::uint64_t num_nodes_ = 0;
  std::uint64_t num_occs_ = 0;
  std::uint64_t num_label_symbols_ = 0;
  bool finalized_ = false;
  Status status_;
};

/// Read-only TreeView over a disk tree bundle.
///
/// Thread safety: the read accessors (GetChildren, GetOccurrences,
/// SubtreeOccCount, MaxRun, CollectSubtreeOccurrences, PoolStats) may be
/// called from many threads concurrently — they share the three
/// mutex-guarded BufferPools, and every caller-visible buffer is an
/// out-parameter owned by the calling worker. This is what lets the
/// parallel tree searchers traverse one disk-backed index from a whole
/// thread pool while the pools' hit/miss/eviction Stats stay exact.
class DiskSuffixTree : public TreeView {
 public:
  static StatusOr<std::unique_ptr<DiskSuffixTree>> Open(
      const std::string& base_path, DiskTreeOptions options = {});

  // --- TreeView ---
  NodeId Root() const override { return 0; }
  void GetChildren(NodeId node, Children* out) const override;
  void GetOccurrences(NodeId node,
                      std::vector<OccurrenceRec>* out) const override;
  std::uint32_t SubtreeOccCount(NodeId node) const override;
  Pos MaxRun(NodeId node) const override;
  std::uint64_t NumNodes() const override { return num_nodes_; }
  std::uint64_t NumOccurrences() const override { return num_occs_; }
  std::uint64_t NumLabelSymbols() const override {
    return num_label_symbols_;
  }
  std::uint64_t SizeBytes() const override;

  /// Aggregate buffer-pool statistics across the three region pools.
  storage::BufferPool::Stats PoolStats() const;

 private:
  DiskSuffixTree() = default;

  std::string base_path_;
  std::unique_ptr<storage::PagedFile> node_file_;
  std::unique_ptr<storage::PagedFile> occ_file_;
  std::unique_ptr<storage::PagedFile> label_file_;
  // Pools are mutable: reads fault pages in.
  mutable std::unique_ptr<storage::BufferPool> nodes_;
  mutable std::unique_ptr<storage::BufferPool> occs_;
  mutable std::unique_ptr<storage::BufferPool> labels_;
  std::uint64_t num_nodes_ = 0;
  std::uint64_t num_occs_ = 0;
  std::uint64_t num_label_symbols_ = 0;
};

/// Serializes any TreeView to a disk bundle at `base_path`.
Status WriteTreeToDisk(const TreeView& view, const std::string& base_path,
                       DiskTreeOptions options = {});

/// Deletes the files of a disk tree bundle (best-effort).
void RemoveDiskTree(const std::string& base_path);

/// Build configuration for the batched, merge-based disk construction
/// (paper Section 4.1: "a series of binary merges of suffix trees of
/// increasing size").
struct DiskBuildOptions {
  BuildOptions build;
  /// Sequences per in-memory batch tree before it is spilled to disk.
  std::size_t batch_sequences = 64;
  DiskTreeOptions tree = {};
};

/// Builds a disk tree over all sequences of `db`: batches are built in
/// memory, spilled, then pairwise-merged on disk until one tree remains at
/// `base_path`.
StatusOr<std::unique_ptr<DiskSuffixTree>> BuildDiskTree(
    const SymbolDatabase& db, const std::string& base_path,
    DiskBuildOptions options = {});

}  // namespace tswarp::suffixtree

#endif  // TSWARP_SUFFIXTREE_DISK_TREE_H_
