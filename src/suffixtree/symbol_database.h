#ifndef TSWARP_SUFFIXTREE_SYMBOL_DATABASE_H_
#define TSWARP_SUFFIXTREE_SYMBOL_DATABASE_H_

#include <span>
#include <utility>
#include <vector>

#include "common/logging.h"
#include "common/types.h"

namespace tswarp::suffixtree {

/// A sequence of discrete symbols (a categorized or dictionary-encoded
/// sequence, the paper's CS_j).
using SymbolSequence = std::vector<Symbol>;

/// Collection of symbol sequences that a suffix tree is built from.
/// Parallel to the seqdb::SequenceDatabase it was converted from: SeqIds
/// and positions coincide.
class SymbolDatabase {
 public:
  SymbolDatabase() = default;
  explicit SymbolDatabase(std::vector<SymbolSequence> sequences)
      : sequences_(std::move(sequences)) {
    for (const SymbolSequence& s : sequences_) total_symbols_ += s.size();
  }

  SymbolDatabase(const SymbolDatabase&) = delete;
  SymbolDatabase& operator=(const SymbolDatabase&) = delete;
  SymbolDatabase(SymbolDatabase&&) = default;
  SymbolDatabase& operator=(SymbolDatabase&&) = default;

  SeqId Add(SymbolSequence seq) {
    TSW_CHECK(!seq.empty());
    total_symbols_ += seq.size();
    sequences_.push_back(std::move(seq));
    return static_cast<SeqId>(sequences_.size() - 1);
  }

  std::size_t size() const { return sequences_.size(); }
  std::size_t TotalSymbols() const { return total_symbols_; }

  const SymbolSequence& sequence(SeqId id) const {
    TSW_CHECK(id < sequences_.size());
    return sequences_[id];
  }

  std::span<const Symbol> Suffix(SeqId id, Pos start) const {
    const SymbolSequence& s = sequence(id);
    TSW_CHECK(start < s.size());
    return std::span<const Symbol>(s.data() + start, s.size() - start);
  }

  /// Length of the run of equal symbols starting at (id, pos): the largest
  /// N with s[pos] == s[pos+1] == ... == s[pos+N-1]. Drives the sparse
  /// suffix selection rule and D_tw-lb2 (paper Section 6).
  Pos RunLength(SeqId id, Pos pos) const {
    const SymbolSequence& s = sequence(id);
    TSW_CHECK(pos < s.size());
    Pos n = 1;
    while (pos + n < s.size() && s[pos + n] == s[pos]) ++n;
    return n;
  }

  /// True if the suffix starting at (id, pos) is stored by the sparse rule:
  /// pos == 0 or the symbol differs from its predecessor (paper 6.1).
  bool IsRunStart(SeqId id, Pos pos) const {
    const SymbolSequence& s = sequence(id);
    TSW_CHECK(pos < s.size());
    return pos == 0 || s[pos] != s[pos - 1];
  }

 private:
  std::vector<SymbolSequence> sequences_;
  std::size_t total_symbols_ = 0;
};

}  // namespace tswarp::suffixtree

#endif  // TSWARP_SUFFIXTREE_SYMBOL_DATABASE_H_
