#ifndef TSWARP_COMMON_STATUS_H_
#define TSWARP_COMMON_STATUS_H_

#include <cstdlib>
#include <optional>
#include <ostream>
#include <string>
#include <utility>

namespace tswarp {

/// Error category of a failed operation. Mirrors the usual database-library
/// status vocabulary (RocksDB / Arrow style) restricted to what tswarp needs.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kIOError,
  kCorruption,
  kOutOfRange,
  kFailedPrecondition,
  kUnimplemented,
  kInternal,
};

/// Returns a stable human-readable name for `code` ("OK", "IOError", ...).
const char* StatusCodeToString(StatusCode code);

/// Result of a fallible operation. tswarp is exception-free: every
/// operation that can fail returns a Status (or StatusOr<T>), and callers
/// are expected to check `ok()` before relying on side effects.
///
/// Status is cheap to copy in the OK case (no allocation) and carries a
/// message only on error.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  Status(StatusCode code, std::string msg)
      : code_(code), message_(std::move(msg)) {}

  StatusCode code_;
  std::string message_;
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

/// Either a value of type T or an error Status. Accessing the value of an
/// error StatusOr aborts the process (programming error).
template <typename T>
class StatusOr {
 public:
  /// Implicit construction from a value or a Status keeps call sites terse:
  ///   StatusOr<int> F() { if (bad) return Status::IOError("..."); return 7; }
  StatusOr(T value)  // NOLINT(google-explicit-constructor)
      : status_(Status::OK()), value_(std::move(value)) {}
  StatusOr(Status status)  // NOLINT(google-explicit-constructor)
      : status_(std::move(status)) {
    if (status_.ok()) {
      Fail("StatusOr constructed from OK status without a value");
    }
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    EnsureOk();
    return *value_;
  }
  T& value() & {
    EnsureOk();
    return *value_;
  }
  T&& value() && {
    EnsureOk();
    return *std::move(value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  void EnsureOk() const {
    if (!status_.ok()) Fail(status_.ToString().c_str());
  }
  [[noreturn]] static void Fail(const char* what);

  Status status_;
  std::optional<T> value_;
};

namespace internal_status {
[[noreturn]] void DieStatusOr(const char* what);
}  // namespace internal_status

template <typename T>
void StatusOr<T>::Fail(const char* what) {
  internal_status::DieStatusOr(what);
}

/// Propagates an error Status from a callee expression.
#define TSW_RETURN_IF_ERROR(expr)                   \
  do {                                              \
    ::tswarp::Status tsw_status_tmp_ = (expr);      \
    if (!tsw_status_tmp_.ok()) return tsw_status_tmp_; \
  } while (false)

#define TSW_INTERNAL_CONCAT_IMPL(a, b) a##b
#define TSW_INTERNAL_CONCAT(a, b) TSW_INTERNAL_CONCAT_IMPL(a, b)

/// Assigns the value of a StatusOr expression or propagates its error.
#define TSW_ASSIGN_OR_RETURN(lhs, expr) \
  TSW_ASSIGN_OR_RETURN_IMPL(TSW_INTERNAL_CONCAT(tsw_statusor_, __LINE__), \
                            lhs, expr)

#define TSW_ASSIGN_OR_RETURN_IMPL(tmp, lhs, expr) \
  auto tmp = (expr);                              \
  if (!tmp.ok()) return tmp.status();             \
  lhs = std::move(tmp).value()

}  // namespace tswarp

#endif  // TSWARP_COMMON_STATUS_H_
