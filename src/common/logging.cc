#include "common/logging.h"

namespace tswarp {
namespace internal_logging {

void DieCheckFailure(const char* file, int line, const char* expr,
                     const std::string& msg) {
  std::fprintf(stderr, "tswarp: CHECK failed at %s:%d: %s %s\n", file, line,
               expr, msg.c_str());
  std::fflush(stderr);
  std::abort();
}

}  // namespace internal_logging
}  // namespace tswarp
