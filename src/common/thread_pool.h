#ifndef TSWARP_COMMON_THREAD_POOL_H_
#define TSWARP_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace tswarp {

/// Fixed-size worker pool with a FIFO task queue. Used by the parallel
/// searchers (core/tree_search, core/index SearchBatch) and available to
/// future build/merge parallelism.
///
/// Exception contract: if a task throws, the first exception is captured
/// and rethrown from Wait() (or the destructor's implicit Wait); remaining
/// queued tasks still run. Submitting from inside a task is legal.
class ThreadPool {
 public:
  /// Spawns `num_threads` workers (>= 1). Requests beyond kMaxThreads —
  /// usually a negative count cast to size_t — are clamped rather than
  /// allowed to exhaust the process.
  explicit ThreadPool(std::size_t num_threads);

  static constexpr std::size_t kMaxThreads = 1024;

  /// Waits for all pending tasks, then joins the workers. Swallows any
  /// pending task exception (call Wait() first to observe it).
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues `task` for execution on some worker.
  void Submit(std::function<void()> task);

  /// Blocks until every submitted task has finished, then rethrows the
  /// first exception any task raised (clearing it). The pool is reusable
  /// after Wait().
  void Wait();

  std::size_t num_threads() const { return workers_.size(); }

  /// std::thread::hardware_concurrency() with a floor of 1.
  static std::size_t HardwareThreads();

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable work_cv_;   // Signals workers: task or shutdown.
  std::condition_variable idle_cv_;   // Signals Wait(): everything drained.
  std::deque<std::function<void()>> queue_;
  std::size_t in_flight_ = 0;         // Queued + currently running tasks.
  bool shutdown_ = false;
  std::exception_ptr first_exception_;
  std::vector<std::thread> workers_;
};

}  // namespace tswarp

#endif  // TSWARP_COMMON_THREAD_POOL_H_
