#ifndef TSWARP_COMMON_THREAD_POOL_H_
#define TSWARP_COMMON_THREAD_POOL_H_

#include <cstddef>
#include <functional>

#include "common/task_scheduler.h"

namespace tswarp {

/// Compatibility shim over the shared work-stealing TaskScheduler. The
/// original ThreadPool spawned `num_threads` OS threads per instance —
/// one pool per search, which is exactly the per-query thread-creation
/// tax the persistent scheduler removes. The shim keeps the old contract
/// (a pool object with Submit/Wait and exception propagation) but maps it
/// onto one TaskScope: construction merely ensures the process-wide pool
/// has at least `num_threads` workers; no threads are created when the
/// scheduler is already warm.
///
/// Exception contract (unchanged): if a task throws, the first exception
/// is captured and rethrown from Wait() (or swallowed by the destructor's
/// implicit Wait); remaining queued tasks still run. Submitting from
/// inside a task is legal.
class ThreadPool {
 public:
  /// Ensures >= min(num_threads, TaskScheduler::kMaxWorkers) persistent
  /// workers exist (>= 1 required). Requests beyond kMaxThreads — usually
  /// a negative count cast to size_t — are clamped rather than allowed to
  /// exhaust the process.
  explicit ThreadPool(std::size_t num_threads);

  static constexpr std::size_t kMaxThreads = 1024;

  /// Waits for all pending tasks. Swallows any pending task exception
  /// (call Wait() first to observe it). The shared workers live on.
  ~ThreadPool() = default;

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues `task` for execution on the shared scheduler.
  void Submit(std::function<void()> task) { scope_.Submit(std::move(task)); }

  /// Blocks until every submitted task has finished (helping to execute
  /// queued tasks meanwhile), then rethrows the first exception any task
  /// raised (clearing it). The pool is reusable after Wait().
  void Wait() { scope_.Wait(); }

  /// The clamped thread count this pool was asked for. The scheduler may
  /// run more workers than this if another caller asked for more.
  std::size_t num_threads() const { return num_threads_; }

  /// std::thread::hardware_concurrency() with a floor of 1.
  static std::size_t HardwareThreads();

 private:
  std::size_t num_threads_;
  TaskScope scope_;
};

}  // namespace tswarp

#endif  // TSWARP_COMMON_THREAD_POOL_H_
