#include "common/status.h"

#include <cstdio>
#include <cstdlib>

namespace tswarp {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kIOError:
      return "IOError";
    case StatusCode::kCorruption:
      return "Corruption";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
    case StatusCode::kInternal:
      return "Internal";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string result = StatusCodeToString(code_);
  if (!message_.empty()) {
    result += ": ";
    result += message_;
  }
  return result;
}

namespace internal_status {

void DieStatusOr(const char* what) {
  std::fprintf(stderr, "tswarp: fatal StatusOr access: %s\n", what);
  std::abort();
}

}  // namespace internal_status
}  // namespace tswarp
