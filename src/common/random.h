#ifndef TSWARP_COMMON_RANDOM_H_
#define TSWARP_COMMON_RANDOM_H_

#include <cstdint>
#include <random>

#include "common/logging.h"

namespace tswarp {

/// Deterministic random source. All tswarp generators and benchmarks take
/// an explicit seed so experiments are reproducible run-to-run.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(seed) {}

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi) {
    TSW_DCHECK(lo <= hi);
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t UniformInt(std::int64_t lo, std::int64_t hi) {
    TSW_DCHECK(lo <= hi);
    return std::uniform_int_distribution<std::int64_t>(lo, hi)(engine_);
  }

  /// Normal deviate.
  double Gaussian(double mean, double stddev) {
    return std::normal_distribution<double>(mean, stddev)(engine_);
  }

  /// Log-normal deviate with the given underlying normal parameters.
  double LogNormal(double mu, double sigma) {
    return std::lognormal_distribution<double>(mu, sigma)(engine_);
  }

  /// Bernoulli trial.
  bool Coin(double p_true) {
    return std::bernoulli_distribution(p_true)(engine_);
  }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace tswarp

#endif  // TSWARP_COMMON_RANDOM_H_
