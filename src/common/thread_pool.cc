#include "common/thread_pool.h"

#include <algorithm>
#include <utility>

#include "common/logging.h"

namespace tswarp {

ThreadPool::ThreadPool(std::size_t num_threads) {
  TSW_CHECK(num_threads >= 1);
  num_threads = std::min(num_threads, kMaxThreads);
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    idle_cv_.wait(lock, [this] { return in_flight_ == 0; });
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    TSW_CHECK(!shutdown_);
    queue_.push_back(std::move(task));
    ++in_flight_;
  }
  work_cv_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] { return in_flight_ == 0; });
  if (first_exception_ != nullptr) {
    std::exception_ptr e = std::exchange(first_exception_, nullptr);
    lock.unlock();
    std::rethrow_exception(e);
  }
}

std::size_t ThreadPool::HardwareThreads() {
  return std::max(1u, std::thread::hardware_concurrency());
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) return;  // shutdown_ with a drained queue.
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    try {
      task();
    } catch (...) {
      std::lock_guard<std::mutex> lock(mu_);
      if (first_exception_ == nullptr) {
        first_exception_ = std::current_exception();
      }
    }
    std::lock_guard<std::mutex> lock(mu_);
    if (--in_flight_ == 0) idle_cv_.notify_all();
  }
}

}  // namespace tswarp
