#include "common/thread_pool.h"

#include <algorithm>
#include <thread>

#include "common/logging.h"

namespace tswarp {

ThreadPool::ThreadPool(std::size_t num_threads)
    : num_threads_(std::min(num_threads, kMaxThreads)) {
  TSW_CHECK(num_threads >= 1);
  TaskScheduler::Get().EnsureWorkers(num_threads_);
}

std::size_t ThreadPool::HardwareThreads() {
  return std::max(1u, std::thread::hardware_concurrency());
}

}  // namespace tswarp
