#ifndef TSWARP_COMMON_CANCELLATION_H_
#define TSWARP_COMMON_CANCELLATION_H_

#include <atomic>
#include <chrono>
#include <cstdint>

namespace tswarp {

/// Cooperative cancellation handle shared between a search and whoever may
/// abort it (a server deadline, a client disconnect, an operator). The
/// searcher polls Expired() at bounded intervals from its hot loop and
/// stops early when it fires; everything the search reported before the
/// stop is exact (the no-false-dismissal contract holds for the completed
/// work), the result set is merely a subset of the full answer. The token
/// carries two triggers folded into one poll:
///
///   * an explicit flag, set by Cancel() from any thread, and
///   * an optional deadline (ArmDeadline / ArmDeadlineAfter) checked
///     against the steady clock only when armed, so un-deadlined searches
///     never pay a clock read.
///
/// Tokens are reusable across searches only before the first Cancel();
/// once cancelled a token stays cancelled (there is deliberately no reset:
/// a request that raced its own cancellation must not resurrect). All
/// members are safe to call concurrently.
class CancelToken {
 public:
  using Clock = std::chrono::steady_clock;

  CancelToken() = default;
  CancelToken(const CancelToken&) = delete;
  CancelToken& operator=(const CancelToken&) = delete;

  /// Requests cancellation. Idempotent; visible to pollers promptly (the
  /// searcher's poll interval, not a memory-ordering delay, dominates the
  /// reaction time — relaxed ordering suffices because the token guards
  /// no other data).
  void Cancel() noexcept { cancelled_.store(true, std::memory_order_relaxed); }

  /// True once Cancel() was called (deadline expiry does not set this;
  /// use Expired() for the combined check).
  bool cancelled() const noexcept {
    return cancelled_.load(std::memory_order_relaxed);
  }

  /// Arms (or re-arms) the absolute deadline. A deadline in the past makes
  /// Expired() true on the next poll.
  void ArmDeadline(Clock::time_point deadline) noexcept {
    deadline_ns_.store(deadline.time_since_epoch().count(),
                       std::memory_order_relaxed);
  }

  /// Convenience: deadline `budget` from now. A zero or negative budget
  /// expires immediately.
  void ArmDeadlineAfter(Clock::duration budget) noexcept {
    ArmDeadline(Clock::now() + budget);
  }

  /// The combined poll: explicit cancellation, or an armed deadline that
  /// has passed. Reads the clock only when a deadline is armed.
  bool Expired() const noexcept {
    if (cancelled()) return true;
    const std::int64_t ns = deadline_ns_.load(std::memory_order_relaxed);
    if (ns == kNoDeadline) return false;
    return Clock::now().time_since_epoch().count() >= ns;
  }

 private:
  static constexpr std::int64_t kNoDeadline = 0;

  std::atomic<bool> cancelled_{false};
  /// Steady-clock deadline in ns-since-epoch; kNoDeadline = unarmed. (The
  /// steady clock's epoch is process-local, so 0 never collides with a
  /// real deadline in practice; an exactly-zero time point would merely
  /// disarm, which is harmless.)
  std::atomic<std::int64_t> deadline_ns_{kNoDeadline};
};

}  // namespace tswarp

#endif  // TSWARP_COMMON_CANCELLATION_H_
