#include "common/task_scheduler.h"

#include <algorithm>
#include <utility>

#include "common/logging.h"

namespace tswarp {

namespace {

/// Worker id of the current thread; kExternalThread on non-pool threads.
thread_local std::size_t tl_worker_id = TaskScheduler::kExternalThread;

/// Cheap per-thread xorshift for randomized victim selection. Seeded from
/// the thread's identity, so no global state and no synchronization.
std::uint64_t NextRandom() {
  thread_local std::uint64_t state =
      0x9E3779B97F4A7C15ull ^
      (std::hash<std::thread::id>()(std::this_thread::get_id()) |
       1ull);
  state ^= state << 13;
  state ^= state >> 7;
  state ^= state << 17;
  return state;
}

}  // namespace

// ---------------------------------------------------------------------------
// Chase-Lev deque
// ---------------------------------------------------------------------------

TaskScheduler::Deque::Array::Array(std::size_t cap)
    : capacity(cap), slots(cap) {}

TaskScheduler::Deque::Deque() {
  auto initial = std::make_unique<Array>(64);
  array_.store(initial.get(), std::memory_order_relaxed);
  arrays_.push_back(std::move(initial));
}

TaskScheduler::Deque::~Deque() = default;

void TaskScheduler::Deque::Grow(std::int64_t bottom, std::int64_t top) {
  Array* old = array_.load(std::memory_order_relaxed);
  auto bigger = std::make_unique<Array>(old->capacity * 2);
  for (std::int64_t i = top; i < bottom; ++i) {
    bigger->At(i).store(old->At(i).load(std::memory_order_relaxed),
                        std::memory_order_relaxed);
  }
  array_.store(bigger.get(), std::memory_order_release);
  // The old array stays alive (arrays_) for thieves holding stale
  // pointers: its slots for indices in [top, bottom) still hold the same
  // values the new array does, so a racing Steal reads valid data either
  // way and the top CAS arbitrates ownership.
  arrays_.push_back(std::move(bigger));
}

void TaskScheduler::Deque::Push(Task* task) {
  const std::int64_t b = bottom_.load(std::memory_order_relaxed);
  const std::int64_t t = top_.load(std::memory_order_acquire);
  Array* a = array_.load(std::memory_order_relaxed);
  if (b - t >= static_cast<std::int64_t>(a->capacity)) {
    Grow(b, t);
    a = array_.load(std::memory_order_relaxed);
  }
  a->At(b).store(task, std::memory_order_release);
  // seq_cst (⊇ release) publishes the slot to thieves and joins the
  // owner/thief total order on (top, bottom).
  bottom_.store(b + 1, std::memory_order_seq_cst);
}

TaskScheduler::Task* TaskScheduler::Deque::Pop() {
  const std::int64_t b = bottom_.load(std::memory_order_relaxed) - 1;
  Array* a = array_.load(std::memory_order_relaxed);
  bottom_.store(b, std::memory_order_seq_cst);
  std::int64_t t = top_.load(std::memory_order_seq_cst);
  Task* task = nullptr;
  if (t <= b) {
    task = a->At(b).load(std::memory_order_acquire);
    if (t == b) {
      // Last element: race thieves for it via the top CAS.
      if (!top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                        std::memory_order_relaxed)) {
        task = nullptr;  // A thief got it first.
      }
      bottom_.store(b + 1, std::memory_order_seq_cst);
    }
  } else {
    bottom_.store(b + 1, std::memory_order_seq_cst);
  }
  return task;
}

TaskScheduler::Task* TaskScheduler::Deque::Steal() {
  std::int64_t t = top_.load(std::memory_order_seq_cst);
  const std::int64_t b = bottom_.load(std::memory_order_seq_cst);
  if (t >= b) return nullptr;
  Array* a = array_.load(std::memory_order_acquire);
  Task* task = a->At(t).load(std::memory_order_acquire);
  if (!top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                    std::memory_order_relaxed)) {
    return nullptr;  // Lost the race to the owner or another thief.
  }
  return task;
}

// ---------------------------------------------------------------------------
// Scheduler
// ---------------------------------------------------------------------------

TaskScheduler& TaskScheduler::Get() {
  static TaskScheduler scheduler;
  return scheduler;
}

TaskScheduler::TaskScheduler() = default;

TaskScheduler::~TaskScheduler() {
  stop_.store(true, std::memory_order_seq_cst);
  WakeAll();
  for (std::thread& t : threads_) t.join();
}

std::size_t TaskScheduler::CurrentWorkerId() { return tl_worker_id; }

void TaskScheduler::EnsureWorkers(std::size_t n) {
  n = std::min(n, kMaxWorkers);
  if (num_workers_.load(std::memory_order_acquire) >= n) return;
  std::lock_guard<std::mutex> lock(spawn_mu_);
  std::size_t current = num_workers_.load(std::memory_order_relaxed);
  while (current < n) {
    threads_.emplace_back([this, current] { WorkerLoop(current); });
    ++current;
    num_workers_.store(current, std::memory_order_release);
  }
}

void TaskScheduler::WakeAll() {
  // Taking park_mu_ makes the notify atomic with respect to a parking
  // thread's predicate check, so a wakeup can never fall into the gap
  // between "predicate false" and "blocked on the cv".
  std::lock_guard<std::mutex> lock(park_mu_);
  park_cv_.notify_all();
}

void TaskScheduler::Enqueue(Task* task, std::size_t self) {
  if (self != kExternalThread) {
    deques_[self].Push(task);
  } else {
    std::lock_guard<std::mutex> lock(inject_mu_);
    injected_.push_back(task);
  }
  approx_tasks_.fetch_add(1, std::memory_order_seq_cst);
  if (hungry_.load(std::memory_order_seq_cst) > 0) WakeAll();
}

TaskScheduler::Task* TaskScheduler::FindWork(std::size_t self) {
  // 1. Own deque, newest first (depth-first execution, warm caches).
  if (self != kExternalThread) {
    if (Task* task = deques_[self].Pop()) {
      approx_tasks_.fetch_sub(1, std::memory_order_seq_cst);
      return task;
    }
  }
  // 2. Injection queue (externally submitted roots), oldest first.
  {
    std::lock_guard<std::mutex> lock(inject_mu_);
    if (!injected_.empty()) {
      Task* task = injected_.front();
      injected_.pop_front();
      approx_tasks_.fetch_sub(1, std::memory_order_seq_cst);
      return task;
    }
  }
  // 3. Steal from a random victim, scanning the whole pool once.
  const std::size_t n = num_workers_.load(std::memory_order_acquire);
  if (n != 0) {
    const std::size_t start = static_cast<std::size_t>(NextRandom()) % n;
    for (std::size_t k = 0; k < n; ++k) {
      const std::size_t victim = (start + k) % n;
      if (victim == self) continue;
      steal_attempts_.fetch_add(1, std::memory_order_relaxed);
      if (Task* task = deques_[victim].Steal()) {
        approx_tasks_.fetch_sub(1, std::memory_order_seq_cst);
        return task;
      }
    }
  }
  return nullptr;
}

void TaskScheduler::Execute(Task* task) {
  TaskScope* scope = task->scope;
  try {
    task->fn();
  } catch (...) {
    std::lock_guard<std::mutex> lock(scope->exception_mu_);
    if (scope->first_exception_ == nullptr) {
      scope->first_exception_ = std::current_exception();
    }
  }
  scope->tasks_executed_.fetch_add(1, std::memory_order_relaxed);
  if (CurrentWorkerId() != task->submitter) {
    scope->tasks_stolen_.fetch_add(1, std::memory_order_relaxed);
  }
  delete task;
  // After this decrement the scope may be destroyed by its waiter; touch
  // only scheduler state past this point.
  if (scope->pending_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    WakeAll();
  }
}

void TaskScheduler::WorkerLoop(std::size_t id) {
  tl_worker_id = id;
  for (;;) {
    if (Task* task = FindWork(id)) {
      Execute(task);
      continue;
    }
    if (stop_.load(std::memory_order_acquire)) return;
    std::unique_lock<std::mutex> lock(park_mu_);
    hungry_.fetch_add(1, std::memory_order_seq_cst);
    park_cv_.wait(lock, [this] {
      return stop_.load(std::memory_order_relaxed) ||
             approx_tasks_.load(std::memory_order_seq_cst) > 0;
    });
    hungry_.fetch_sub(1, std::memory_order_seq_cst);
  }
}

// ---------------------------------------------------------------------------
// TaskScope
// ---------------------------------------------------------------------------

TaskScope::TaskScope() : scheduler_(TaskScheduler::Get()) {}

TaskScope::~TaskScope() { WaitNoThrow(); }

void TaskScope::Submit(std::function<void()> fn) {
  const std::size_t self = TaskScheduler::CurrentWorkerId();
  auto* task = new TaskScheduler::Task{std::move(fn), this, self};
  pending_.fetch_add(1, std::memory_order_relaxed);
  scheduler_.Enqueue(task, self);
}

bool TaskScope::WantsWork() const { return scheduler_.HasHungryThreads(); }

void TaskScope::Wait() {
  const std::size_t self = TaskScheduler::CurrentWorkerId();
  while (pending_.load(std::memory_order_acquire) != 0) {
    // Help: run anyone's queued task rather than blocking a thread. This
    // is what makes nested scopes (batch coalescing) deadlock-free.
    if (TaskScheduler::Task* task = scheduler_.FindWork(self)) {
      scheduler_.Execute(task);
      continue;
    }
    std::unique_lock<std::mutex> lock(scheduler_.park_mu_);
    scheduler_.hungry_.fetch_add(1, std::memory_order_seq_cst);
    scheduler_.park_cv_.wait(lock, [this] {
      return pending_.load(std::memory_order_acquire) == 0 ||
             scheduler_.approx_tasks_.load(std::memory_order_seq_cst) > 0;
    });
    scheduler_.hungry_.fetch_sub(1, std::memory_order_seq_cst);
  }
  std::exception_ptr e;
  {
    std::lock_guard<std::mutex> lock(exception_mu_);
    e = std::exchange(first_exception_, nullptr);
  }
  if (e != nullptr) std::rethrow_exception(e);
}

void TaskScope::WaitNoThrow() noexcept {
  try {
    Wait();
  } catch (...) {
    // Destructor-path drain: the exception was already lost to the caller
    // (mirrors the old ThreadPool destructor contract).
  }
}

}  // namespace tswarp
