#ifndef TSWARP_COMMON_TYPES_H_
#define TSWARP_COMMON_TYPES_H_

#include <cstdint>
#include <limits>

namespace tswarp {

/// Identifier of a sequence inside a SequenceDatabase (0-based).
using SeqId = std::uint32_t;

/// 0-based position of an element inside a sequence.
using Pos = std::uint32_t;

/// Continuous element value. The paper's sequences are univariate reals.
using Value = double;

/// Discrete category symbol produced by a Categorizer. Symbols are dense
/// integers in [0, num_categories). kNoSymbol marks "not categorized".
using Symbol = std::int32_t;

inline constexpr Symbol kNoSymbol = -1;

/// Positive infinity used as the identity of min() in DTW tables.
inline constexpr Value kInfinity = std::numeric_limits<Value>::infinity();

}  // namespace tswarp

#endif  // TSWARP_COMMON_TYPES_H_
