#ifndef TSWARP_COMMON_LOGGING_H_
#define TSWARP_COMMON_LOGGING_H_

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

namespace tswarp {
namespace internal_logging {

[[noreturn]] void DieCheckFailure(const char* file, int line,
                                  const char* expr, const std::string& msg);

/// Stream sink that aborts with the accumulated message on destruction.
/// Used by TSW_CHECK(cond) << "extra context";
class CheckFailureStream {
 public:
  CheckFailureStream(const char* file, int line, const char* expr)
      : file_(file), line_(line), expr_(expr) {}
  [[noreturn]] ~CheckFailureStream() {
    DieCheckFailure(file_, line_, expr_, stream_.str());
  }
  CheckFailureStream(const CheckFailureStream&) = delete;
  CheckFailureStream& operator=(const CheckFailureStream&) = delete;

  template <typename T>
  CheckFailureStream& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  const char* file_;
  int line_;
  const char* expr_;
  std::ostringstream stream_;
};

}  // namespace internal_logging
}  // namespace tswarp

/// Aborts with a diagnostic when `condition` is false. For invariants and
/// programming errors only; recoverable failures must return Status.
#define TSW_CHECK(condition)                                              \
  while (!(condition))                                                    \
  ::tswarp::internal_logging::CheckFailureStream(__FILE__, __LINE__,      \
                                                 #condition)

#define TSW_CHECK_EQ(a, b) TSW_CHECK((a) == (b)) << " (" << (a) << " vs " << (b) << ") "
#define TSW_CHECK_LE(a, b) TSW_CHECK((a) <= (b)) << " (" << (a) << " vs " << (b) << ") "
#define TSW_CHECK_LT(a, b) TSW_CHECK((a) < (b)) << " (" << (a) << " vs " << (b) << ") "
#define TSW_CHECK_GE(a, b) TSW_CHECK((a) >= (b)) << " (" << (a) << " vs " << (b) << ") "
#define TSW_CHECK_GT(a, b) TSW_CHECK((a) > (b)) << " (" << (a) << " vs " << (b) << ") "

#ifdef NDEBUG
#define TSW_DCHECK(condition) TSW_CHECK(true || (condition))
#else
#define TSW_DCHECK(condition) TSW_CHECK(condition)
#endif

#endif  // TSWARP_COMMON_LOGGING_H_
