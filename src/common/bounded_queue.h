#ifndef TSWARP_COMMON_BOUNDED_QUEUE_H_
#define TSWARP_COMMON_BOUNDED_QUEUE_H_

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <mutex>
#include <utility>
#include <vector>

namespace tswarp {

/// Bounded MPMC FIFO with *non-blocking* admission: producers that find
/// the queue full are refused immediately (TryPush returns false) instead
/// of blocking, which is exactly the backpressure shape a server's
/// admission control needs — the caller turns the refusal into a 429 and
/// the client retries, rather than piling unbounded latency into a hidden
/// wait. Consumers block (Pop / PopBatch).
///
/// Shutdown protocol: Close() refuses all further pushes while letting
/// consumers drain what was already accepted; Pop/PopBatch return false/0
/// only when the queue is both closed and empty. Every item accepted
/// before Close() is therefore handed to exactly one consumer — nothing
/// accepted is ever dropped, the invariant the server's graceful-drain
/// test pins down.
template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(std::size_t capacity) : capacity_(capacity) {}

  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  /// Accepts `item` unless the queue is full or closed. Never blocks.
  bool TryPush(T item) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (closed_ || items_.size() >= capacity_) {
        ++rejected_;
        return false;
      }
      items_.push_back(std::move(item));
      ++accepted_;
      if (items_.size() > high_water_) high_water_ = items_.size();
    }
    cv_.notify_one();
    return true;
  }

  /// Blocks until an item is available or the queue is closed and empty.
  /// Returns false only in the latter case.
  bool Pop(T* out) {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [&] { return closed_ || !items_.empty(); });
    if (items_.empty()) return false;
    *out = std::move(items_.front());
    items_.pop_front();
    return true;
  }

  /// Blocks like Pop, then drains up to `max` immediately-available items
  /// into `*out` (appended). Returns the number taken; 0 only when closed
  /// and empty. The batch is what a coalescing dispatcher wants: one wait,
  /// then everything that queued up behind the first item.
  std::size_t PopBatch(std::vector<T>* out, std::size_t max) {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [&] { return closed_ || !items_.empty(); });
    std::size_t taken = 0;
    while (taken < max && !items_.empty()) {
      out->push_back(std::move(items_.front()));
      items_.pop_front();
      ++taken;
    }
    return taken;
  }

  /// Refuses all future pushes; wakes every blocked consumer so they can
  /// drain the remainder and observe the close.
  void Close() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      closed_ = true;
    }
    cv_.notify_all();
  }

  bool closed() const {
    std::lock_guard<std::mutex> lock(mu_);
    return closed_;
  }

  std::size_t depth() const {
    std::lock_guard<std::mutex> lock(mu_);
    return items_.size();
  }

  std::size_t capacity() const { return capacity_; }

  /// Lifetime counters (items ever accepted / refused) and the deepest
  /// the queue has been — the admission-control observability trio.
  std::uint64_t accepted() const {
    std::lock_guard<std::mutex> lock(mu_);
    return accepted_;
  }
  std::uint64_t rejected() const {
    std::lock_guard<std::mutex> lock(mu_);
    return rejected_;
  }
  std::size_t high_water() const {
    std::lock_guard<std::mutex> lock(mu_);
    return high_water_;
  }

 private:
  const std::size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<T> items_;
  bool closed_ = false;
  std::uint64_t accepted_ = 0;
  std::uint64_t rejected_ = 0;
  std::size_t high_water_ = 0;
};

}  // namespace tswarp

#endif  // TSWARP_COMMON_BOUNDED_QUEUE_H_
