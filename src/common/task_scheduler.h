#ifndef TSWARP_COMMON_TASK_SCHEDULER_H_
#define TSWARP_COMMON_TASK_SCHEDULER_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace tswarp {

class TaskScope;

/// Process-wide work-stealing executor: a lazily started pool of
/// persistent worker threads, one Chase-Lev deque per worker, and a
/// mutex-guarded injection queue for submissions from non-worker threads.
/// Searches no longer spawn OS threads — they borrow workers from this
/// scheduler through a TaskScope, so a 350 ms query pays nanoseconds of
/// submission cost instead of milliseconds of thread creation.
///
/// Work distribution follows the classic work-stealing discipline
/// (Blumofe & Leiserson): a worker pushes and pops tasks on the *bottom*
/// of its own deque (LIFO — depth-first, cache-warm), while idle workers
/// steal from the *top* of a victim's deque chosen by randomized probing
/// (FIFO — the oldest, and for the search driver's lazy splits the
/// shallowest/largest, task). Tasks are tagged with their TaskScope, so
/// any thread can execute any task and scopes can nest freely.
///
/// Memory-order discipline: the deque is the Chase-Lev structure (owner
/// manipulates bottom, thieves CAS top), but the orderings are chosen
/// conservatively — release stores / acquire loads on the indices and
/// array pointer instead of standalone fences — because (a) task push /
/// steal frequency here is a few hundred per query, far below the rate
/// where relaxed-fence micro-optimizations matter, and (b) TSan does not
/// model standalone fences, so the conservative form keeps the scheduler
/// provably race-free under the CI TSan leg.
class TaskScheduler {
 public:
  /// Hard cap on pool size: per-worker state (deques, slots) is statically
  /// sized so worker growth never reallocates structures thieves read.
  static constexpr std::size_t kMaxWorkers = 64;

  /// Sentinel returned by CurrentWorkerId() on non-scheduler threads.
  static constexpr std::size_t kExternalThread =
      static_cast<std::size_t>(-1);

  /// The process-wide scheduler. First call constructs it; workers are
  /// only spawned by EnsureWorkers. Destroyed (workers joined) at exit.
  static TaskScheduler& Get();

  /// Ensures at least min(n, kMaxWorkers) persistent workers are running.
  /// Never shrinks the pool. Cheap when already satisfied (one relaxed
  /// load), so callers invoke it per search without caring about state.
  void EnsureWorkers(std::size_t n);

  std::size_t num_workers() const {
    return num_workers_.load(std::memory_order_acquire);
  }

  /// Index of the calling scheduler worker, or kExternalThread.
  static std::size_t CurrentWorkerId();

  /// Process-wide count of steal probes (attempts to take a task from
  /// another worker's deque or the injection queue by a thread that ran
  /// out of local work). Monotonic; read it before/after a region to
  /// attribute probes to that region. Probes from concurrent unrelated
  /// work land in the same counter — it is a process-wide gauge, not a
  /// per-query one.
  std::uint64_t steal_attempts() const {
    return steal_attempts_.load(std::memory_order_relaxed);
  }

  /// True while at least one thread is parked (or about to park) for lack
  /// of work. The search driver polls this (one relaxed load) to decide
  /// when to split its DFS — the lazy-splitting handshake.
  bool HasHungryThreads() const {
    return hungry_.load(std::memory_order_relaxed) > 0;
  }

  TaskScheduler(const TaskScheduler&) = delete;
  TaskScheduler& operator=(const TaskScheduler&) = delete;

 private:
  friend class TaskScope;

  /// One scheduled unit: the closure, its fork/join scope, and the worker
  /// id of the submitting thread (kExternalThread for injected tasks),
  /// which lets the executor classify the task as stolen or local.
  struct Task {
    std::function<void()> fn;
    TaskScope* scope;
    std::size_t submitter;
  };

  /// Chase-Lev work-stealing deque of Task*. The owner pushes/pops the
  /// bottom; thieves CAS the top. Growth keeps retired arrays alive until
  /// the deque is destroyed, so a thief holding a stale array pointer
  /// always reads valid (atomic) storage.
  class Deque {
   public:
    Deque();
    ~Deque();

    /// Owner only.
    void Push(Task* task);
    /// Owner only; nullptr when empty.
    Task* Pop();
    /// Any thief; nullptr when empty or lost a race.
    Task* Steal();

   private:
    struct Array {
      explicit Array(std::size_t capacity);
      std::size_t capacity;
      std::vector<std::atomic<Task*>> slots;
      std::atomic<Task*>& At(std::int64_t i) {
        return slots[static_cast<std::size_t>(i) & (capacity - 1)];
      }
    };

    void Grow(std::int64_t bottom, std::int64_t top);

    std::atomic<std::int64_t> top_{0};
    std::atomic<std::int64_t> bottom_{0};
    std::atomic<Array*> array_;
    // Owner-only (and destructor, ordered by thread join): every array
    // ever used, kept alive for racing thieves.
    std::vector<std::unique_ptr<Array>> arrays_;
  };

  TaskScheduler();
  ~TaskScheduler();

  void WorkerLoop(std::size_t id);

  /// One probe round over the injection queue and every worker deque
  /// (random start). Returns nullptr when nothing was found.
  Task* FindWork(std::size_t self);

  /// Enqueues a task from worker `self` (own deque) or an external thread
  /// (injection queue) and wakes a hungry thread if any.
  void Enqueue(Task* task, std::size_t self);

  /// Executes one task: runs the closure, captures the first exception
  /// into its scope, updates the scope counters, and retires the task.
  void Execute(Task* task);

  /// Wakes every parked thread (used by Enqueue and by scope completion).
  void WakeAll();

  std::atomic<std::size_t> num_workers_{0};
  std::atomic<std::uint64_t> steal_attempts_{0};
  std::atomic<std::size_t> hungry_{0};
  std::atomic<bool> stop_{false};

  // Fixed-size so EnsureWorkers never moves a deque another thread reads.
  Deque deques_[kMaxWorkers];
  std::vector<std::thread> threads_;  // Guarded by spawn_mu_.
  std::mutex spawn_mu_;

  std::mutex inject_mu_;
  std::deque<Task*> injected_;

  // Parking: threads that found no work sleep here; Enqueue and scope
  // completion notify. approx_tasks_ is the wake predicate — a count of
  // enqueued-but-not-yet-taken tasks (seq_cst pairs with the hungry_
  // handshake in Enqueue, so a submit cannot slip between a failed probe
  // and the park).
  std::mutex park_mu_;
  std::condition_variable park_cv_;
  std::atomic<std::int64_t> approx_tasks_{0};
};

/// Fork/join handle: a group of tasks submitted to the shared scheduler
/// whose completion can be awaited together. Scopes may nest (a task may
/// create its own scope) because Wait() *helps*: while its tasks are
/// outstanding the waiting thread executes any available task — its own
/// scope's, another scope's, anyone's — instead of blocking a worker.
///
/// Exception contract (mirrors the old ThreadPool): the first exception
/// thrown by any task is captured and rethrown from Wait(), which clears
/// it; remaining tasks still run. The destructor waits but swallows.
class TaskScope {
 public:
  TaskScope();
  ~TaskScope();

  TaskScope(const TaskScope&) = delete;
  TaskScope& operator=(const TaskScope&) = delete;

  /// Enqueues `fn`. From a scheduler worker the task goes to that
  /// worker's own deque (LIFO, stealable from the top); from any other
  /// thread it goes to the injection queue.
  void Submit(std::function<void()> fn);

  /// One relaxed load: true when some thread is idle and a split/submit
  /// would be picked up immediately. The driver's lazy-split poll.
  bool WantsWork() const;

  /// Blocks until every task submitted to this scope has finished,
  /// helping to execute queued tasks meanwhile; then rethrows the first
  /// task exception (clearing it). Reusable: Submit may be called again
  /// after Wait returns.
  void Wait();

  /// Tasks of this scope that have finished executing.
  std::uint64_t tasks_executed() const {
    return tasks_executed_.load(std::memory_order_relaxed);
  }

  /// Subset of tasks_executed() run by a thread other than the one that
  /// submitted them — actual steals (including injected tasks picked up
  /// by workers, which is how every root task starts).
  std::uint64_t tasks_stolen() const {
    return tasks_stolen_.load(std::memory_order_relaxed);
  }

 private:
  friend class TaskScheduler;

  void WaitNoThrow() noexcept;

  TaskScheduler& scheduler_;
  std::atomic<std::size_t> pending_{0};
  std::atomic<std::uint64_t> tasks_executed_{0};
  std::atomic<std::uint64_t> tasks_stolen_{0};
  std::mutex exception_mu_;
  std::exception_ptr first_exception_;
};

}  // namespace tswarp

#endif  // TSWARP_COMMON_TASK_SCHEDULER_H_
