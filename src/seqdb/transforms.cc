#include "seqdb/transforms.h"

#include <cmath>
#include <numeric>

#include "common/logging.h"

namespace tswarp::seqdb {

Sequence ZNormalize(std::span<const Value> s) {
  TSW_CHECK(!s.empty());
  const double n = static_cast<double>(s.size());
  const double mean = std::accumulate(s.begin(), s.end(), 0.0) / n;
  double var = 0.0;
  for (Value v : s) var += (v - mean) * (v - mean);
  var /= n;
  const double stddev = std::sqrt(var);
  Sequence out;
  out.reserve(s.size());
  if (stddev < 1e-12) {
    out.assign(s.size(), 0.0);
    return out;
  }
  for (Value v : s) out.push_back((v - mean) / stddev);
  return out;
}

Sequence MovingAverage(std::span<const Value> s, std::size_t w) {
  TSW_CHECK(!s.empty() && w >= 1);
  Sequence out;
  out.reserve(s.size());
  double window_sum = 0.0;
  for (std::size_t i = 0; i < s.size(); ++i) {
    window_sum += s[i];
    if (i >= w) window_sum -= s[i - w];
    const std::size_t denom = std::min(i + 1, w);
    out.push_back(window_sum / static_cast<double>(denom));
  }
  return out;
}

Sequence Downsample(std::span<const Value> s, std::size_t k) {
  TSW_CHECK(!s.empty() && k >= 1);
  Sequence out;
  out.reserve(s.size() / k + 1);
  for (std::size_t i = 0; i < s.size(); i += k) out.push_back(s[i]);
  return out;
}

Sequence PiecewiseAggregate(std::span<const Value> s, std::size_t pieces) {
  TSW_CHECK(!s.empty());
  TSW_CHECK(pieces >= 1 && pieces <= s.size());
  Sequence out;
  out.reserve(pieces);
  for (std::size_t p = 0; p < pieces; ++p) {
    const std::size_t begin = p * s.size() / pieces;
    const std::size_t end = (p + 1) * s.size() / pieces;
    double sum = 0.0;
    for (std::size_t i = begin; i < end; ++i) sum += s[i];
    out.push_back(sum / static_cast<double>(end - begin));
  }
  return out;
}

}  // namespace tswarp::seqdb
