#include "seqdb/sequence_database.h"

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <numeric>

#include "common/logging.h"

namespace tswarp::seqdb {
namespace {

constexpr std::uint32_t kMagic = 0x54535744;  // "TSWD"
constexpr std::uint32_t kVersion = 1;

struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f != nullptr) std::fclose(f);
  }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

template <typename T>
bool WritePod(std::FILE* f, const T& v) {
  return std::fwrite(&v, sizeof(T), 1, f) == 1;
}

template <typename T>
bool ReadPod(std::FILE* f, T* v) {
  return std::fread(v, sizeof(T), 1, f) == 1;
}

}  // namespace

SeqId SequenceDatabase::Add(Sequence seq) {
  TSW_CHECK(!seq.empty()) << "sequences must be non-null";
  total_elements_ += seq.size();
  sequences_.push_back(std::move(seq));
  return static_cast<SeqId>(sequences_.size() - 1);
}

const Sequence& SequenceDatabase::sequence(SeqId id) const {
  TSW_CHECK(id < sequences_.size()) << "bad SeqId " << id;
  return sequences_[id];
}

std::span<const Value> SequenceDatabase::Subsequence(SeqId id, Pos start,
                                                     Pos len) const {
  const Sequence& s = sequence(id);
  TSW_CHECK(start + len <= s.size())
      << "subsequence [" << start << ", +" << len << ") out of range for "
      << "sequence of length " << s.size();
  return std::span<const Value>(s.data() + start, len);
}

std::span<const Value> SequenceDatabase::Suffix(SeqId id, Pos start) const {
  const Sequence& s = sequence(id);
  TSW_CHECK(start < s.size());
  return std::span<const Value>(s.data() + start, s.size() - start);
}

double SequenceDatabase::AverageLength() const {
  if (sequences_.empty()) return 0.0;
  return static_cast<double>(total_elements_) /
         static_cast<double>(sequences_.size());
}

std::pair<Value, Value> SequenceDatabase::ValueRange() const {
  TSW_CHECK(!sequences_.empty());
  Value lo = kInfinity;
  Value hi = -kInfinity;
  for (const Sequence& s : sequences_) {
    for (Value v : s) {
      lo = std::min(lo, v);
      hi = std::max(hi, v);
    }
  }
  return {lo, hi};
}

Value SequenceDatabase::MeanValue(SeqId id) const {
  const Sequence& s = sequence(id);
  return std::accumulate(s.begin(), s.end(), 0.0) /
         static_cast<double>(s.size());
}

Status SequenceDatabase::Save(const std::string& path) const {
  FilePtr f(std::fopen(path.c_str(), "wb"));
  if (f == nullptr) return Status::IOError("cannot open " + path);
  if (!WritePod(f.get(), kMagic) || !WritePod(f.get(), kVersion) ||
      !WritePod(f.get(), static_cast<std::uint64_t>(sequences_.size()))) {
    return Status::IOError("short write to " + path);
  }
  for (const Sequence& s : sequences_) {
    if (!WritePod(f.get(), static_cast<std::uint64_t>(s.size()))) {
      return Status::IOError("short write to " + path);
    }
    if (std::fwrite(s.data(), sizeof(Value), s.size(), f.get()) != s.size()) {
      return Status::IOError("short write to " + path);
    }
  }
  return Status::OK();
}

StatusOr<SequenceDatabase> SequenceDatabase::Load(const std::string& path) {
  FilePtr f(std::fopen(path.c_str(), "rb"));
  if (f == nullptr) return Status::IOError("cannot open " + path);
  std::uint32_t magic = 0;
  std::uint32_t version = 0;
  std::uint64_t count = 0;
  if (!ReadPod(f.get(), &magic) || !ReadPod(f.get(), &version) ||
      !ReadPod(f.get(), &count)) {
    return Status::Corruption("truncated header in " + path);
  }
  if (magic != kMagic) return Status::Corruption("bad magic in " + path);
  if (version != kVersion) {
    return Status::Corruption("unsupported version in " + path);
  }
  SequenceDatabase db;
  for (std::uint64_t i = 0; i < count; ++i) {
    std::uint64_t len = 0;
    if (!ReadPod(f.get(), &len) || len == 0) {
      return Status::Corruption("bad sequence length in " + path);
    }
    Sequence s(len);
    if (std::fread(s.data(), sizeof(Value), len, f.get()) != len) {
      return Status::Corruption("truncated sequence data in " + path);
    }
    db.Add(std::move(s));
  }
  return db;
}

}  // namespace tswarp::seqdb
