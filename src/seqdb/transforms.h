#ifndef TSWARP_SEQDB_TRANSFORMS_H_
#define TSWARP_SEQDB_TRANSFORMS_H_

#include <span>

#include "common/types.h"
#include "seqdb/sequence_database.h"

namespace tswarp::seqdb {

/// Preprocessing transforms commonly applied before time-warping search
/// (cf. the shape-based transformation literature the paper discusses in
/// Section 2: moving averages, scaling, shifting). All return new
/// sequences; inputs are untouched.

/// Subtracts the mean and divides by the standard deviation. Sequences
/// with zero variance come back as all-zeros. Makes matching invariant to
/// vertical shift and amplitude scale.
Sequence ZNormalize(std::span<const Value> s);

/// Simple moving average with window `w` (>= 1): out[i] is the mean of the
/// window ending at i (shorter head windows use the available prefix).
/// Smooths noise before indexing; |out| == |s|.
Sequence MovingAverage(std::span<const Value> s, std::size_t w);

/// Keeps every k-th element (k >= 1), starting at index 0. Models the
/// different sampling rates the paper motivates with.
Sequence Downsample(std::span<const Value> s, std::size_t k);

/// Piecewise aggregate approximation: divides `s` into `pieces` equal-ish
/// segments and replaces each by its mean. Requires 1 <= pieces <= |s|.
Sequence PiecewiseAggregate(std::span<const Value> s, std::size_t pieces);

/// Applies `transform` to every sequence of `db`.
template <typename Fn>
SequenceDatabase TransformDatabase(const SequenceDatabase& db,
                                   Fn&& transform) {
  SequenceDatabase out;
  for (SeqId id = 0; id < db.size(); ++id) {
    out.Add(transform(std::span<const Value>(db.sequence(id))));
  }
  return out;
}

}  // namespace tswarp::seqdb

#endif  // TSWARP_SEQDB_TRANSFORMS_H_
