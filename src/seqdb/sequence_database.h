#ifndef TSWARP_SEQDB_SEQUENCE_DATABASE_H_
#define TSWARP_SEQDB_SEQUENCE_DATABASE_H_

#include <span>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "common/types.h"

namespace tswarp::seqdb {

/// A univariate sequence of continuous values.
using Sequence = std::vector<Value>;

/// In-memory collection of sequences, the "sequence database" of the paper.
/// Sequences are identified by dense SeqIds in insertion order.
///
/// The database owns element storage; Subsequence() hands out spans into it,
/// so the database must outlive any span (the searchers honor this).
class SequenceDatabase {
 public:
  SequenceDatabase() = default;

  SequenceDatabase(const SequenceDatabase&) = delete;
  SequenceDatabase& operator=(const SequenceDatabase&) = delete;
  SequenceDatabase(SequenceDatabase&&) = default;
  SequenceDatabase& operator=(SequenceDatabase&&) = default;

  /// Appends `seq` and returns its id. Empty sequences are rejected by
  /// TSW_CHECK (the paper's definitions require non-null sequences).
  SeqId Add(Sequence seq);

  /// Number of sequences (the paper's M).
  std::size_t size() const { return sequences_.size(); }
  bool empty() const { return sequences_.empty(); }

  const Sequence& sequence(SeqId id) const;

  /// View of S_id[start : start+len-1] (0-based start, inclusive length).
  std::span<const Value> Subsequence(SeqId id, Pos start, Pos len) const;

  /// Suffix view S_id[start:-].
  std::span<const Value> Suffix(SeqId id, Pos start) const;

  /// Total number of elements across all sequences (M * L-bar).
  std::size_t TotalElements() const { return total_elements_; }

  /// Average sequence length (the paper's L-bar); 0 when empty.
  double AverageLength() const;

  /// (min, max) element value over the whole database. Requires non-empty.
  std::pair<Value, Value> ValueRange() const;

  /// Mean element value of one sequence (used for query stratification).
  Value MeanValue(SeqId id) const;

  /// Raw size of the stored data in bytes (elements only), the "database
  /// size" that Table 3 compares index sizes against.
  std::size_t DataBytes() const { return total_elements_ * sizeof(Value); }

  /// Serializes to a binary file. Format: magic, version, per-sequence
  /// length-prefixed doubles.
  Status Save(const std::string& path) const;

  /// Loads a database previously written by Save().
  static StatusOr<SequenceDatabase> Load(const std::string& path);

 private:
  std::vector<Sequence> sequences_;
  std::size_t total_elements_ = 0;
};

}  // namespace tswarp::seqdb

#endif  // TSWARP_SEQDB_SEQUENCE_DATABASE_H_
