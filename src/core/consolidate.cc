#include "core/consolidate.h"

#include <algorithm>

namespace tswarp::core {

std::vector<Match> ConsolidateMatches(std::vector<Match> matches,
                                      const ConsolidateOptions& options) {
  if (matches.empty()) return matches;
  std::sort(matches.begin(), matches.end(), MatchLess);

  std::vector<Match> out;
  Match best = matches.front();
  // End (exclusive) of the current overlap group, extended as windows are
  // absorbed.
  Pos group_end = matches.front().start + matches.front().len;
  SeqId group_seq = matches.front().seq;

  auto better = [](const Match& a, const Match& b) {
    if (a.distance != b.distance) return a.distance < b.distance;
    if (a.start != b.start) return a.start < b.start;
    return a.len < b.len;
  };

  for (std::size_t i = 1; i < matches.size(); ++i) {
    const Match& m = matches[i];
    const bool same_group =
        m.seq == group_seq && m.start <= group_end + options.max_gap;
    if (same_group) {
      group_end = std::max(group_end, m.start + m.len);
      if (better(m, best)) best = m;
    } else {
      out.push_back(best);
      best = m;
      group_seq = m.seq;
      group_end = m.start + m.len;
    }
  }
  out.push_back(best);
  return out;
}

}  // namespace tswarp::core
