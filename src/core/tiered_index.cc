#include "core/tiered_index.h"

#include <filesystem>
#include <utility>

#include "common/logging.h"
#include "common/task_scheduler.h"
#include "storage/mmap_file.h"
#include "suffixtree/merge.h"

namespace tswarp::core {

namespace {

/// A fresh copy of `frozen`'s nominal category boundaries, fitted to the
/// given sequences so the interval lower bound covers exactly their
/// values (paper Section 5.3, per tier).
categorize::Alphabet FitAlphabetTo(
    const categorize::Alphabet& frozen,
    const seqdb::SequenceDatabase& db) {
  StatusOr<categorize::Alphabet> copy = categorize::Alphabet::FromBoundaries(
      std::vector<Value>(frozen.boundaries().begin(),
                         frozen.boundaries().end()));
  TSW_CHECK(copy.ok());  // The boundaries were valid once already.
  for (SeqId id = 0; id < db.size(); ++id) {
    for (const Value v : db.sequence(id)) copy->FitValue(v);
  }
  return std::move(*copy);
}

suffixtree::BuildOptions BuildOptionsFrom(const IndexOptions& options) {
  suffixtree::BuildOptions build;
  build.sparse = options.kind == IndexKind::kSparse;
  build.min_suffix_length = options.min_suffix_length;
  build.max_suffix_length = options.max_suffix_length;
  return build;
}

}  // namespace

void CleanupOrphanedMergeFiles(const std::string& disk_path) {
  namespace fs = std::filesystem;
  const fs::path base(disk_path);
  fs::path dir = base.parent_path();
  if (dir.empty()) dir = ".";
  const std::string prefix = base.filename().string() + ".tmp-merge-";
  std::error_code ec;
  for (const fs::directory_entry& entry :
       fs::directory_iterator(dir, ec)) {
    const std::string name = entry.path().filename().string();
    if (name.rfind(prefix, 0) == 0) {
      std::error_code remove_ec;
      fs::remove(entry.path(), remove_ec);
    }
  }
}

StatusOr<std::unique_ptr<TieredIndex>> TieredIndex::Create(
    const seqdb::SequenceDatabase* base_db, const TieredOptions& options) {
  if (!options.index.disk_path.empty()) {
    // Crash recovery: a background merge aborted mid-write (process died)
    // leaves a partial <disk_path>.tmp-merge-<n> bundle behind; no tier
    // ever referenced it, so it is garbage.
    CleanupOrphanedMergeFiles(options.index.disk_path);
  }
  TSW_ASSIGN_OR_RETURN(Index base, Index::Build(base_db, options.index));
  return FromIndex(std::move(base), options);
}

std::unique_ptr<TieredIndex> TieredIndex::FromIndex(
    Index base, const TieredOptions& options) {
  return std::unique_ptr<TieredIndex>(
      new TieredIndex(std::move(base), options));
}

TieredIndex::TieredIndex(Index base, const TieredOptions& options)
    : options_(options) {
  std::shared_ptr<const IndexSnapshot> base_snapshot = base.snapshot();
  base_tiers_ = base_snapshot->tiers();
  base_info_ = base_snapshot->build_info();
  base_sequences_ = static_cast<SeqId>(base_snapshot->total_sequences());

  // Freeze the symbolization so every tier speaks the base alphabet.
  const Tier& base_tier = *base_tiers_.front();
  if (options_.index.kind == IndexKind::kSuffixTree) {
    symbol_values_ = base_tier.symbol_values;
    for (std::size_t i = 0; i < symbol_values_.size(); ++i) {
      dict_[symbol_values_[i]] = static_cast<Symbol>(i);
    }
  } else {
    TSW_CHECK(base_tier.alphabet.has_value());
    frozen_alphabet_ = *base_tier.alphabet;
  }

  snapshot_ = std::move(base_snapshot);
  if (options_.merge_in_background) {
    merge_worker_ = std::thread([this] { MergeWorkerLoop(); });
  }
}

TieredIndex::~TieredIndex() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_.store(true, std::memory_order_relaxed);
  }
  cancel_merges_.store(true, std::memory_order_relaxed);
  merge_cv_.notify_all();
  merge_done_cv_.notify_all();
  if (merge_worker_.joinable()) merge_worker_.join();
}

std::shared_ptr<const IndexSnapshot> TieredIndex::Snapshot() const {
  std::lock_guard<std::mutex> lock(snapshot_mu_);
  return snapshot_;
}

void TieredIndex::PublishLocked() {
  std::vector<std::shared_ptr<const Tier>> tiers = base_tiers_;
  tiers.insert(tiers.end(), sealed_tiers_.begin(), sealed_tiers_.end());
  if (memtable_tier_ != nullptr) tiers.push_back(memtable_tier_);
  auto fresh = std::make_shared<const IndexSnapshot>(
      options_.index, base_info_, std::move(tiers));
  std::lock_guard<std::mutex> lock(snapshot_mu_);
  snapshot_ = std::move(fresh);
}

std::size_t TieredIndex::PendingMergesLocked() const {
  return sealed_tiers_.size() > options_.max_sealed_tiers
             ? sealed_tiers_.size() - options_.max_sealed_tiers
             : 0;
}

StatusOr<SeqId> TieredIndex::Append(seqdb::Sequence values) {
  if (values.empty()) {
    return Status::InvalidArgument("cannot append an empty sequence");
  }

  struct Delivery {
    std::uint64_t query_id;
    ContinuousCallback callback;
    std::vector<Match> matches;
  };
  std::vector<Delivery> deliveries;

  std::unique_lock<std::mutex> lock(mu_);
  const SeqId global_id =
      base_sequences_ + static_cast<SeqId>(appended_sequences_);

  // 1. Symbolize under the frozen base alphabet / append-only dictionary.
  std::vector<Symbol> syms;
  syms.reserve(values.size());
  if (options_.index.kind == IndexKind::kSuffixTree) {
    for (const Value v : values) {
      auto it = dict_.find(v);
      if (it == dict_.end()) {
        const Symbol s = static_cast<Symbol>(symbol_values_.size());
        symbol_values_.push_back(v);
        it = dict_.emplace(v, s).first;
      }
      syms.push_back(it->second);
    }
  } else {
    for (const Value v : values) {
      syms.push_back(frozen_alphabet_->ToSymbol(v));
    }
  }

  // 2. Single-sequence tree: the unit the memtable grows by, and the
  // exactly-once evaluation scope for continuous queries (a new match
  // lies entirely within the new sequence, so evaluating only it can
  // neither miss nor re-deliver anything).
  suffixtree::SymbolDatabase one_sym;
  one_sym.Add(syms);
  const suffixtree::BuildOptions build = BuildOptionsFrom(options_.index);
  suffixtree::SuffixTreeBuilder builder(&one_sym, build);
  builder.InsertSequence(0);
  suffixtree::SuffixTree single_tree = builder.Build();

  {
    std::lock_guard<std::recursive_mutex> cq_lock(cq_mu_);
    if (!continuous_.empty()) {
      seqdb::SequenceDatabase single_db;
      single_db.Add(values);
      std::optional<categorize::Alphabet> single_alpha;
      if (options_.index.kind != IndexKind::kSuffixTree) {
        single_alpha = FitAlphabetTo(*frozen_alphabet_, single_db);
      }
      for (const auto& [id, cq] : continuous_) {
        TierSearchEntry entry;
        entry.config.tree = &single_tree;
        entry.config.db = &single_db;
        entry.config.exact = options_.index.kind == IndexKind::kSuffixTree;
        entry.config.sparse = options_.index.kind == IndexKind::kSparse;
        entry.config.alphabet =
            single_alpha.has_value() ? &*single_alpha : nullptr;
        entry.config.symbol_values =
            entry.config.exact ? &symbol_values_ : nullptr;
        entry.config.prune = cq.query_options.prune;
        entry.config.use_lower_bound = cq.query_options.use_lower_bound;
        entry.config.band = cq.query_options.band;
        entry.seq_base = global_id;
        std::vector<Match> matches =
            TierSearch(std::span<const TierSearchEntry>(&entry, 1),
                       cq.query, cq.epsilon);
        if (!matches.empty()) {
          deliveries.push_back({id, cq.callback, std::move(matches)});
        }
      }
    }
  }

  // 3. Grow the memtable: merge the new sequence's tree onto the previous
  // memtable tree (tier-local id = position within the memtable).
  const SeqId local_id = static_cast<SeqId>(memtable_values_.size());
  suffixtree::SuffixTree mem_tree;
  if (local_id == 0) {
    mem_tree = std::move(single_tree);
  } else {
    suffixtree::SeqOffsetTreeView offset_view(single_tree, local_id);
    const bool done = suffixtree::MergeTrees(*memtable_tier_->view(),
                                             offset_view, &mem_tree);
    TSW_CHECK(done);  // No cancel token: memtable merges always finish.
  }
  memtable_values_.push_back(std::move(values));
  memtable_symbols_.push_back(std::move(syms));
  ++appended_sequences_;

  // 4. Assemble the new memtable tier — or, at the seal threshold, the
  // new sealed tier (a tier's role is fixed at creation; nothing is ever
  // mutated after publication).
  auto tier = std::make_shared<Tier>();
  tier->first_seq = global_id - local_id;
  tier->owned_db.emplace();
  for (const seqdb::Sequence& seq : memtable_values_) {
    tier->owned_db->Add(seq);
  }
  tier->db = &*tier->owned_db;
  if (options_.index.kind == IndexKind::kSuffixTree) {
    tier->symbol_values = symbol_values_;
  } else {
    tier->alphabet = FitAlphabetTo(*frozen_alphabet_, *tier->owned_db);
  }
  tier->memory_tree = std::move(mem_tree);
  const bool seal = memtable_values_.size() >= options_.memtable_max_sequences;
  tier->is_memtable = !seal;
  if (seal && options_.index.node_summaries) {
    // Memtable tiers never carry summaries — the tree is replaced on
    // every append and rebuilding the summaries each time would put an
    // O(nodes) pass on the ingest path. A sealing tier is immutable from
    // here on, so build them once now.
    tier->memory_summaries = suffixtree::BuildNodeSummaries(
        *tier->view(), TierSymbolHulls(*tier));
  }
  tier->info = ComputeTierInfo(*tier);
  if (seal) {
    sealed_tiers_.push_back(std::move(tier));
    memtable_tier_.reset();
    memtable_values_.clear();
    memtable_symbols_.clear();
  } else {
    memtable_tier_ = std::move(tier);
  }
  PublishLocked();

  const bool owed = PendingMergesLocked() > 0;
  if (owed && options_.merge_in_background) merge_cv_.notify_one();
  lock.unlock();

  if (owed && !options_.merge_in_background) {
    while (MergeOnce()) {
    }
  }

  for (const Delivery& d : deliveries) {
    std::lock_guard<std::recursive_mutex> cq_lock(cq_mu_);
    // Skip queries unregistered between evaluation and delivery.
    if (continuous_.find(d.query_id) == continuous_.end()) continue;
    d.callback(d.query_id, d.matches);
  }
  return global_id;
}

std::shared_ptr<const Tier> TieredIndex::BuildMergedTier(
    const std::shared_ptr<const Tier>& a,
    const std::shared_ptr<const Tier>& b, std::uint64_t generation) {
  const std::size_t na = a->info.sequences;

  auto tier = std::make_shared<Tier>();
  tier->first_seq = a->first_seq;
  tier->owned_db.emplace();
  for (SeqId id = 0; id < a->db->size(); ++id) {
    tier->owned_db->Add(a->db->sequence(id));
  }
  for (SeqId id = 0; id < b->db->size(); ++id) {
    tier->owned_db->Add(b->db->sequence(id));
  }
  tier->db = &*tier->owned_db;
  if (options_.index.kind == IndexKind::kSuffixTree) {
    // The later tier's dictionary snapshot is a superset of the earlier
    // one's (the dictionary is append-only).
    tier->symbol_values = b->symbol_values;
  } else {
    tier->alphabet = FitAlphabetTo(*frozen_alphabet_, *tier->owned_db);
  }

  suffixtree::SeqOffsetTreeView b_view(*b->view(), static_cast<SeqId>(na));
  if (options_.index.disk_path.empty()) {
    suffixtree::SuffixTree out;
    if (!suffixtree::MergeTrees(*a->view(), b_view, &out,
                                &cancel_merges_)) {
      return nullptr;
    }
    tier->memory_tree = std::move(out);
    if (options_.index.node_summaries) {
      // Recompute over the merged tree: the inputs' summaries describe
      // subtrees that no longer exist as such.
      tier->memory_summaries = suffixtree::BuildNodeSummaries(
          *tier->view(), TierSymbolHulls(*tier));
    }
  } else {
    const std::string tmp =
        options_.index.disk_path + ".tmp-merge-" + std::to_string(generation);
    StatusOr<std::unique_ptr<suffixtree::DiskTreeWriter>> writer =
        suffixtree::DiskTreeWriter::Create(
            tmp, TreeOptionsFromIndexOptions(options_.index));
    if (!writer.ok()) return nullptr;
    const bool done = suffixtree::MergeTrees(*a->view(), b_view,
                                             writer->get(), &cancel_merges_);
    if (!done || !(*writer)->status().ok()) {
      // Merge-cancel cleanup: release the buffer managers, then unlink
      // the partial bundle so no orphan survives the abort.
      writer->reset();
      suffixtree::RemoveDiskTree(tmp);
      return nullptr;
    }
    if (!(*writer)->Close().ok()) {
      writer->reset();
      suffixtree::RemoveDiskTree(tmp);
      return nullptr;
    }
    writer->reset();

    if (options_.index.node_summaries) {
      // Build the merged tier's summaries and attach them to the tmp
      // bundle *before* the rename, so a published tier is always
      // complete — a failure here aborts the whole merge cleanly.
      StatusOr<std::unique_ptr<suffixtree::DiskSuffixTree>> tmp_tree =
          suffixtree::DiskSuffixTree::Open(
              tmp, TreeOptionsFromIndexOptions(options_.index));
      if (!tmp_tree.ok()) {
        suffixtree::RemoveDiskTree(tmp);
        return nullptr;
      }
      const std::vector<suffixtree::NodeSummaryRecord> records =
          suffixtree::BuildNodeSummaries(**tmp_tree, TierSymbolHulls(*tier));
      tmp_tree->reset();  // Release the bundle before rewriting its meta.
      if (!suffixtree::AttachNodeSummaries(tmp, records).ok()) {
        suffixtree::RemoveDiskTree(tmp);
        return nullptr;
      }
    }

    const std::string final_base =
        options_.index.disk_path + ".tier-" + std::to_string(generation);
    namespace fs = std::filesystem;
    bool renamed = true;
    std::vector<const char*> exts = {".meta", ".nodes", ".occs", ".labels"};
    if (options_.index.node_summaries) exts.push_back(".sums");
    for (const char* ext : exts) {
      std::error_code ec;
      fs::rename(tmp + ext, final_base + ext, ec);
      if (ec) renamed = false;
    }
    if (!renamed) {
      suffixtree::RemoveDiskTree(tmp);
      suffixtree::RemoveDiskTree(final_base);
      return nullptr;
    }
    // Persist the renames: without the directory fsync a power loss here
    // could roll the directory back to a state where the published tier's
    // files never existed, even though every byte inside them is durable.
    if (!storage::SyncDir(
             fs::path(options_.index.disk_path).parent_path().string())
             .ok()) {
      suffixtree::RemoveDiskTree(final_base);
      return nullptr;
    }
    StatusOr<std::unique_ptr<suffixtree::DiskSuffixTree>> opened =
        suffixtree::DiskSuffixTree::Open(
            final_base, TreeOptionsFromIndexOptions(options_.index));
    if (!opened.ok()) {
      suffixtree::RemoveDiskTree(final_base);
      return nullptr;
    }
    tier->disk_tree = std::move(*opened);
    tier->disk_base = final_base;
    tier->owns_disk_files = true;
  }
  tier->info = ComputeTierInfo(*tier);
  return tier;
}

bool TieredIndex::MergeOnce() {
  std::shared_ptr<const Tier> a;
  std::shared_ptr<const Tier> b;
  std::uint64_t generation = 0;
  {
    std::unique_lock<std::mutex> lock(mu_);
    merge_done_cv_.wait(lock, [&] {
      return !merge_running_ || stop_.load(std::memory_order_relaxed);
    });
    if (stop_.load(std::memory_order_relaxed)) return false;
    if (PendingMergesLocked() == 0) return false;
    // Only the merge path removes sealed tiers and appends only push to
    // the back, so the two oldest stay at the front until we swap them.
    a = sealed_tiers_[0];
    b = sealed_tiers_[1];
    generation = ++merge_generation_;
    merge_running_ = true;
  }

  // Run the compaction itself as a task on the shared work-stealing
  // scheduler — merges are throughput work and should obey the same
  // executor as searches (the coordinating thread helps execute it).
  std::shared_ptr<const Tier> merged;
  TaskScheduler::Get().EnsureWorkers(1);
  {
    TaskScope scope;
    scope.Submit([&] { merged = BuildMergedTier(a, b, generation); });
    scope.Wait();
  }

  std::unique_lock<std::mutex> lock(mu_);
  merge_running_ = false;
  if (merged == nullptr) {
    ++merges_cancelled_;
    merge_done_cv_.notify_all();
    return false;
  }
  TSW_CHECK(sealed_tiers_.size() >= 2 && sealed_tiers_[0] == a &&
            sealed_tiers_[1] == b);
  sealed_tiers_.erase(sealed_tiers_.begin(), sealed_tiers_.begin() + 2);
  sealed_tiers_.insert(sealed_tiers_.begin(), std::move(merged));
  ++merges_completed_;
  PublishLocked();
  merge_done_cv_.notify_all();
  return true;
}

void TieredIndex::MergeWorkerLoop() {
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(mu_);
      merge_cv_.wait(lock, [&] {
        return stop_.load(std::memory_order_relaxed) ||
               (PendingMergesLocked() > 0 && !merge_running_);
      });
      if (stop_.load(std::memory_order_relaxed)) return;
    }
    MergeOnce();
  }
}

void TieredIndex::WaitForMerges() {
  std::unique_lock<std::mutex> lock(mu_);
  if (options_.merge_in_background) merge_cv_.notify_one();
  merge_done_cv_.wait(lock, [&] {
    return stop_.load(std::memory_order_relaxed) ||
           (PendingMergesLocked() == 0 && !merge_running_);
  });
}

TieredStats TieredIndex::Stats() const {
  TieredStats stats;
  std::shared_ptr<const IndexSnapshot> snapshot = Snapshot();
  stats.tiers.reserve(snapshot->tiers().size());
  for (const std::shared_ptr<const Tier>& tier : snapshot->tiers()) {
    stats.tiers.push_back(tier->info);
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    stats.appended_sequences = appended_sequences_;
    stats.memtable_sequences = memtable_values_.size();
    stats.sealed_tiers = sealed_tiers_.size();
    stats.pending_merges = PendingMergesLocked() + (merge_running_ ? 1 : 0);
    stats.merges_completed = merges_completed_;
    stats.merges_cancelled = merges_cancelled_;
  }
  {
    std::lock_guard<std::recursive_mutex> lock(cq_mu_);
    stats.continuous_queries = continuous_.size();
  }
  return stats;
}

std::uint64_t TieredIndex::RegisterContinuous(
    std::vector<Value> query, Value epsilon, ContinuousCallback callback,
    const QueryOptions& query_options) {
  TSW_CHECK(!query.empty());
  TSW_CHECK(callback != nullptr);
  std::lock_guard<std::recursive_mutex> lock(cq_mu_);
  const std::uint64_t id = next_query_id_++;
  continuous_.emplace(
      id, ContinuousQuery{std::move(query), epsilon, query_options,
                          std::move(callback)});
  return id;
}

void TieredIndex::Unregister(std::uint64_t query_id) {
  std::lock_guard<std::recursive_mutex> lock(cq_mu_);
  continuous_.erase(query_id);
}

}  // namespace tswarp::core
