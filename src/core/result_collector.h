#ifndef TSWARP_CORE_RESULT_COLLECTOR_H_
#define TSWARP_CORE_RESULT_COLLECTOR_H_

#include <atomic>
#include <cstddef>
#include <mutex>
#include <vector>

#include "common/types.h"
#include "core/match.h"

namespace tswarp::core {

/// Total order used by k-NN branch-and-bound: primary key distance,
/// deterministic (seq, start, len) tie-break. With this order the k best
/// matches are a unique set, so serial and parallel searches agree even
/// when ties straddle the k-th position.
bool KnnMatchLess(const Match& a, const Match& b);

/// Shared result collection of one search, used by every searcher (tree
/// driver, sequential scan) in both paper modes:
///
///   range (knn_k == 0)  epsilon is fixed; workers append matches to a
///                       private vector and publish it once via
///                       DrainRange, so the hot path takes no lock.
///   k-NN  (knn_k > 0)   the collector keeps a max-heap (under
///                       KnnMatchLess) of the current k best matches;
///                       Report inserts under the mutex and shrinks the
///                       shared threshold to the k-th best distance.
///
/// epsilon() is the current pruning threshold either way. It is atomic
/// and monotonically non-increasing, so a stale read by a concurrent
/// worker only weakens pruning, never correctness. Parallel tree workers
/// lean on that monotonicity harder still: they prune against a local
/// *cached* copy of the threshold, refreshed periodically and after
/// their own reports (see the driver's EpsMode), so the hot loop does
/// not re-read this cache line on every row.
class ResultCollector {
 public:
  ResultCollector(Value epsilon, std::size_t knn_k)
      : knn_k_(knn_k), epsilon_(knn_k > 0 ? kInfinity : epsilon) {}

  ResultCollector(const ResultCollector&) = delete;
  ResultCollector& operator=(const ResultCollector&) = delete;

  bool knn() const { return knn_k_ > 0; }

  Value epsilon() const { return epsilon_.load(std::memory_order_relaxed); }

  /// Records one exact match. Range mode appends to the worker-private
  /// `local` vector; k-NN mode ignores `local` and inserts into the
  /// shared k-best heap.
  void Report(const Match& m, std::vector<Match>* local);

  /// Publishes a range worker's private answers into the shared set
  /// (single lock per worker; no-op in k-NN mode, whose matches were
  /// already reported into the shared heap).
  void DrainRange(std::vector<Match>* local);

  /// Sorts and returns the final answers: range mode by (seq, start,
  /// len), k-NN mode by (distance, seq, start, len). Call once, after
  /// every worker drained.
  std::vector<Match> Take();

 private:
  const std::size_t knn_k_;
  /// Current pruning threshold. Fixed in range mode; in k-NN mode it
  /// shrinks to the k-th best distance found so far.
  std::atomic<Value> epsilon_;

  std::mutex mu_;
  /// Range mode: concatenated worker answers. k-NN mode: max-heap (by
  /// KnnMatchLess) of the current k best matches. Both guarded by `mu_`.
  std::vector<Match> answers_;
};

}  // namespace tswarp::core

#endif  // TSWARP_CORE_RESULT_COLLECTOR_H_
