#ifndef TSWARP_CORE_CONSOLIDATE_H_
#define TSWARP_CORE_CONSOLIDATE_H_

#include <vector>

#include "core/match.h"

namespace tswarp::core {

/// Range queries under time warping return *every* qualifying window, so a
/// single underlying event typically appears as a cluster of overlapping
/// matches (shifted starts, stretched lengths). ConsolidateMatches groups
/// matches of the same sequence whose windows overlap (transitively) and
/// keeps one representative per group.
struct ConsolidateOptions {
  /// Windows closer than this many positions apart (gap between the end of
  /// one and the start of the next) are still grouped. 0 = require true
  /// overlap.
  Pos max_gap = 0;
};

/// Returns one minimum-distance representative per overlap group, sorted
/// by (seq, start, len). Ties on distance keep the earlier, shorter
/// window.
std::vector<Match> ConsolidateMatches(std::vector<Match> matches,
                                      const ConsolidateOptions& options = {});

}  // namespace tswarp::core

#endif  // TSWARP_CORE_CONSOLIDATE_H_
