#ifndef TSWARP_CORE_TREE_SEARCH_H_
#define TSWARP_CORE_TREE_SEARCH_H_

#include <span>
#include <vector>

#include "categorize/alphabet.h"
#include "common/cancellation.h"
#include "common/types.h"
#include "core/match.h"
#include "seqdb/sequence_database.h"
#include "suffixtree/node_summary.h"
#include "suffixtree/tree_view.h"

namespace tswarp::core {

/// Configuration of one suffix-tree similarity search. Three paper modes:
///
///   SimSearch-ST     exact = true,  sparse = false   (dictionary tree)
///   SimSearch-ST_C   exact = false, sparse = false   (categorized tree)
///   SimSearch-SST_C  exact = false, sparse = true    (sparse categorized)
///
/// In exact mode the cumulative table is built from `symbol_values` (the
/// dictionary decode) and LastColumn() is already the exact D_tw, so
/// answers need no post-processing. In lower-bound mode rows use the
/// category intervals of `alphabet` (D_tw-lb, Definition 3) and candidates
/// are verified against `db` with exact DTW (PostProcess). Sparse mode
/// additionally recovers non-stored suffixes through D_tw-lb2
/// (Definition 4) and discounts the Theorem-1 pruning bound by
/// (MaxRun-1) * D_base-lb(Q[1], first path symbol) so they are never
/// falsely dismissed.
struct TreeSearchConfig {
  const suffixtree::TreeView* tree = nullptr;

  /// Raw sequences, required in lower-bound modes for post-processing.
  const seqdb::SequenceDatabase* db = nullptr;

  /// Category intervals; required when exact == false.
  const categorize::Alphabet* alphabet = nullptr;

  /// Symbol -> value decode; required when exact == true.
  const std::vector<Value>* symbol_values = nullptr;

  bool exact = false;
  bool sparse = false;

  /// Theorem-1 branch pruning; disable only for the R_p ablation.
  bool prune = true;

  /// Envelope lower-bound cascade (LB_Keogh / LB_Improved) screening
  /// post-processing candidates before the exact DTW, plus the
  /// prefix-lower-bound early abandon inside the exact kernel. Exactness
  /// is unaffected (no false dismissals); disable only for the
  /// bench/ablation_lowerbound ablation. No-op in exact mode, which has
  /// no post-processing pass.
  bool use_lower_bound = true;

  /// Sakoe-Chiba band (0 = unconstrained, the paper's setting).
  Pos band = 0;

  /// Per-node summaries of `tree` (indexed by NodeId; empty = screen off).
  /// When present, every edge is screened against the child's precomputed
  /// subtree value hulls before any of its label rows are pushed; a prune
  /// skips the whole subtree. A true lower bound at approx_factor == 1, so
  /// the match set is byte-identical with or without summaries (see
  /// docs/algorithms.md "Node-summary bound"). Ignored in exact mode only
  /// when the model opts out (all three univariate models support it).
  std::span<const suffixtree::NodeSummaryRecord> summaries = {};

  /// The recall dial: scales the summary lower bound before the threshold
  /// comparison. 1.0 (default) = exact; > 1 trades recall for speed — the
  /// result is always a subset of the exact answer. Must be >= 1.
  Value approx_factor = 1.0;

  /// Worker threads for one search. 0 = fully serial (the original
  /// single-table DFS, byte-for-byte identical behavior and stats);
  /// >= 1 runs the traversal on the process-wide work-stealing scheduler
  /// (ensured to have at least that many persistent workers), splitting
  /// branch tasks off lazily as idle threads ask for work. Results are
  /// identical to serial for both range and k-NN searches (see
  /// docs/parallel_search.md).
  std::size_t num_threads = 0;

  /// Cooperative cancellation / deadline token; see QueryOptions::cancel.
  const CancelToken* cancel = nullptr;
};

/// Runs the similarity search: every subsequence of the indexed database
/// whose exact (or banded) time warping distance from `query` is
/// <= epsilon. No false dismissals; results are exact matches only.
std::vector<Match> TreeSearch(const TreeSearchConfig& config,
                              std::span<const Value> query, Value epsilon,
                              SearchStats* stats = nullptr);

/// k-nearest-subsequence search (branch-and-bound extension): returns the
/// k subsequences with the smallest time warping distance from `query`,
/// sorted by distance. The traversal runs with a dynamic threshold equal
/// to the current k-th best distance, so the lower bounds prune exactly as
/// in the range search. Ties at the k-th distance are broken
/// deterministically by (seq, start, len), which makes serial and parallel
/// k-NN return exactly the same set.
std::vector<Match> TreeSearchKnn(const TreeSearchConfig& config,
                                 std::span<const Value> query, std::size_t k,
                                 SearchStats* stats = nullptr);

/// One tier of a multi-tier (LSM-style) search: a complete per-tier
/// search configuration — the tier's own tree, database fragment, and
/// symbol tables, all addressed by tier-local sequence ids — plus the
/// offset that rebases the tier's local ids onto the global id space
/// (`global seq = local seq + seq_base`).
struct TierSearchEntry {
  TreeSearchConfig config;
  SeqId seq_base = 0;
};

/// Range search fanned out across index tiers. All tiers share ONE
/// QueryContext: one query envelope (it depends only on the query and the
/// band), one ResultCollector, and — for k-NN — one shrinking epsilon, so
/// a tight match in any tier prunes every other tier. Serial
/// (num_threads == 0) runs the tiers in order; parallel submits one
/// scheduler task per tier, each of which runs its own lazily-splitting
/// parallel traversal (nested fork/join scopes are deadlock-free).
/// Matches carry global sequence ids, and the merged result is
/// byte-identical to searching a monolithic index over the concatenated
/// data: every engine verifies candidates exactly, so per-tier symbol
/// tables (wider category intervals, extended dictionaries) never change
/// the match set. Every tier must agree on the query-shape knobs (exact,
/// sparse, band, prune, use_lower_bound, num_threads, cancel).
std::vector<Match> TierSearch(std::span<const TierSearchEntry> tiers,
                              std::span<const Value> query, Value epsilon,
                              SearchStats* stats = nullptr);

/// k-NN across tiers; see TierSearch. The k-th-best threshold is shared
/// by all tiers through the one collector.
std::vector<Match> TierSearchKnn(std::span<const TierSearchEntry> tiers,
                                 std::span<const Value> query, std::size_t k,
                                 SearchStats* stats = nullptr);

}  // namespace tswarp::core

#endif  // TSWARP_CORE_TREE_SEARCH_H_
