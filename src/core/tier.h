#ifndef TSWARP_CORE_TIER_H_
#define TSWARP_CORE_TIER_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "categorize/alphabet.h"
#include "common/types.h"
#include "seqdb/sequence_database.h"
#include "suffixtree/disk_tree.h"
#include "suffixtree/node_summary.h"
#include "suffixtree/suffix_tree.h"

namespace tswarp::core {

/// Summary counters of one tier, surfaced through `GET /stats` and the
/// CLI `--stats` per-tier breakdown.
struct TierInfo {
  SeqId first_seq = 0;           // Global id of the tier's first sequence.
  std::size_t sequences = 0;     // Sequences covered by this tier.
  std::uint64_t elements = 0;    // Raw element values covered.
  std::uint64_t nodes = 0;
  std::uint64_t occurrences = 0;  // Stored suffixes.
  std::uint64_t index_bytes = 0;
  bool on_disk = false;
  bool memtable = false;  // The mutable-logically, immutable-physically top.
  /// Read path of a disk tier (meaningless for in-memory tiers).
  storage::IoMode io_mode = storage::IoMode::kBuffered;
  /// Bytes mmap'd for this tier; 0 on the buffered path.
  std::uint64_t mapped_bytes = 0;
  /// Whether the tier serves per-node summaries (the subtree-hull
  /// pre-filter). Memtable tiers never do — summaries are built at
  /// seal/merge time.
  bool has_summaries = false;
};

/// One immutable tier of an index: a suffix tree over a contiguous range
/// of sequences [first_seq, first_seq + sequences), its own symbol tables,
/// and the raw values it indexes. Everything inside a tier is addressed by
/// *tier-local* sequence ids (0-based over the tier's own database
/// fragment); searches rebase matches to global ids with `first_seq`
/// (TierSearchEntry::seq_base).
///
/// A monolithic Index is exactly one tier over the external database; a
/// TieredIndex stacks a base tier, sealed appended tiers, and a memtable
/// tier. Tiers are reference-counted (shared_ptr<const Tier>) and pinned
/// by every snapshot that includes them: a tier retired by a background
/// merge stays fully alive — tree, buffer managers, database fragment —
/// until the last in-flight query drops its snapshot, and a disk tier
/// that owns its bundle files deletes them at that point (the
/// buffer-manager lifetime is the tier lifetime).
struct Tier {
  Tier() = default;
  Tier(const Tier&) = delete;
  Tier& operator=(const Tier&) = delete;
  ~Tier();

  /// Global id of tier-local sequence 0.
  SeqId first_seq = 0;

  /// Raw values indexed by this tier, addressed by tier-local ids. Points
  /// at `owned_db` for appended/merged tiers or at the external base
  /// database (which must outlive the tier).
  const seqdb::SequenceDatabase* db = nullptr;
  std::optional<seqdb::SequenceDatabase> owned_db;

  /// Category intervals (categorized modes). Each tier carries its own
  /// fitted copy: the nominal boundaries are frozen at base build so every
  /// tier symbolizes identically, and the copy is fitted to this tier's
  /// values so the interval lower bound covers them.
  std::optional<categorize::Alphabet> alphabet;

  /// Symbol -> value decode (exact mode). A snapshot of the append-only
  /// global dictionary taken when the tier was sealed; later tiers'
  /// snapshots extend earlier ones, so a merged tier keeps the newer one.
  std::vector<Value> symbol_values;

  /// Exactly one of these holds the tree.
  std::optional<suffixtree::SuffixTree> memory_tree;
  std::unique_ptr<suffixtree::DiskSuffixTree> disk_tree;

  /// Per-node summaries of an in-memory tree (empty = none built). Disk
  /// tiers serve theirs from the bundle's summary section instead; use
  /// summaries() to read whichever the tier has.
  std::vector<suffixtree::NodeSummaryRecord> memory_summaries;

  /// When owns_disk_files, the bundle at disk_base is deleted by ~Tier —
  /// i.e. when the last snapshot pinning this tier is gone. Set for disk
  /// tiers produced by background merges; the base tier's bundle is user
  /// data and is never owned.
  std::string disk_base;
  bool owns_disk_files = false;

  bool is_memtable = false;

  TierInfo info;

  const suffixtree::TreeView* view() const {
    return memory_tree.has_value()
               ? static_cast<const suffixtree::TreeView*>(&*memory_tree)
               : static_cast<const suffixtree::TreeView*>(disk_tree.get());
  }

  /// The tier's node summaries, wherever they live (in-memory vector or
  /// the disk bundle's summary section); empty when the tier has none.
  std::span<const suffixtree::NodeSummaryRecord> summaries() const {
    if (!memory_summaries.empty()) return memory_summaries;
    if (disk_tree != nullptr) return disk_tree->node_summaries();
    return {};
  }
};

/// Derives the TierInfo counters from a fully assembled tier (tree + db
/// fragment in place).
TierInfo ComputeTierInfo(const Tier& tier);

/// Per-symbol value hulls of the tier's symbol tables — the input
/// suffixtree::BuildNodeSummaries aggregates. Category symbols map to
/// their fitted intervals; dictionary symbols to point hulls.
std::vector<suffixtree::SymbolHull> TierSymbolHulls(const Tier& tier);

}  // namespace tswarp::core

#endif  // TSWARP_CORE_TIER_H_
