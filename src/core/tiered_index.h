#ifndef TSWARP_CORE_TIERED_INDEX_H_
#define TSWARP_CORE_TIERED_INDEX_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <thread>
#include <vector>

#include "core/index.h"
#include "core/tier.h"

namespace tswarp::core {

/// Removes orphaned `<disk_path>.tmp-merge-*` bundle files left behind by
/// background merges that aborted without cleanup (process crash).
/// TieredIndex::Create runs this automatically for disk-backed indexes;
/// exposed for tests and ops tooling. Best-effort, never throws.
void CleanupOrphanedMergeFiles(const std::string& disk_path);

/// Configuration of a TieredIndex on top of the base IndexOptions.
struct TieredOptions {
  /// How the base tier is built and how every appended/merged tier is
  /// symbolized (kind, categories, suffix-length bounds, disk settings).
  IndexOptions index;

  /// Seal the memtable tier into an immutable sealed tier once it holds
  /// this many appended sequences.
  std::size_t memtable_max_sequences = 8;

  /// Background compaction keeps at most this many sealed appended tiers;
  /// beyond it the two oldest adjacent sealed tiers are merged
  /// (suffixtree::MergeTrees) into one.
  std::size_t max_sealed_tiers = 2;

  /// When false, compaction runs synchronously inside Append once the
  /// sealed-tier budget is exceeded — deterministic tier shapes for tests;
  /// true hands merges to the background worker.
  bool merge_in_background = true;
};

/// Aggregate statistics of a TieredIndex (surfaced by GET /stats and the
/// CLI --stats breakdown).
struct TieredStats {
  std::vector<TierInfo> tiers;        // Per-tier breakdown, base first.
  std::size_t appended_sequences = 0;  // Total Append() calls accepted.
  std::size_t memtable_sequences = 0;  // Sequences in the memtable tier.
  std::size_t sealed_tiers = 0;        // Sealed appended tiers (not base).
  std::size_t pending_merges = 0;      // Compactions owed right now.
  std::uint64_t merges_completed = 0;
  std::uint64_t merges_cancelled = 0;
  std::size_t continuous_queries = 0;
};

/// Callback of a continuous query: invoked once per Append whose new
/// sequence produced at least one match, with the matches (global ids,
/// sorted) found in that sequence. Exactly-once per (query, match):
/// appends are evaluated against only the newly added sequence, and
/// background merges never re-run continuous queries, so a match is
/// delivered at the single Append that created it. Callbacks run on the
/// appending thread after the new snapshot is published; they may call
/// Snapshot(), RegisterContinuous() and Unregister() (including
/// unregistering themselves) but must not call Append().
using ContinuousCallback =
    std::function<void(std::uint64_t query_id, const std::vector<Match>&)>;

/// The mutable streaming face of the index layer: an LSM-style stack of
/// immutable tiers with a single mutation entry point.
///
///   base tier      the monolithic Index this TieredIndex was created
///                  from (memory or disk), never compacted;
///   sealed tiers   immutable suffix trees over batches of appended
///                  sequences, compacted pairwise in the background;
///   memtable tier  the youngest appended sequences. Logically mutable,
///                  physically immutable: every Append builds a fresh
///                  memtable tier (single-sequence tree merged onto the
///                  previous memtable tree) and publishes a new snapshot,
///                  so readers never observe a tier changing.
///
/// All reads go through Snapshot(): an atomically published
/// std::shared_ptr<const IndexSnapshot> that pins every tier it lists.
/// Queries running against an old snapshot keep their tiers (trees,
/// buffer managers, database fragments) alive until they drop the
/// pointer; a merged-away disk tier deletes its bundle files only then.
///
/// Symbolization is frozen at base build so every tier speaks the same
/// alphabet: categorized modes reuse the base category *boundaries* (each
/// tier carries its own copy fitted to its values, keeping the interval
/// lower bound sound), and exact mode extends an append-only dictionary
/// (each tier snapshots the symbol->value decode at seal time). Because
/// every engine verifies candidates exactly, search results over a
/// tiered snapshot are byte-identical to a monolithic index freshly
/// built over the same data — the differential tests assert exactly
/// this, mid-merge included.
///
/// Thread safety: Append is internally serialized; Snapshot/Stats/
/// searches may run concurrently with Append and with background merges
/// from any thread. The destructor cancels in-flight merges
/// (cooperatively, through suffixtree::MergeTrees' cancel token) and
/// joins the worker.
class TieredIndex {
 public:
  /// Builds the base tier over `base_db` (which must outlive the
  /// TieredIndex) per `options.index` and wraps it. With a disk path this
  /// also removes orphaned `<disk_path>.tmp-merge-*` bundles left behind
  /// by merges aborted in a previous process (crash recovery).
  static StatusOr<std::unique_ptr<TieredIndex>> Create(
      const seqdb::SequenceDatabase* base_db, const TieredOptions& options);

  /// Wraps an already built/opened base index (same database lifetime
  /// contract as Create).
  static std::unique_ptr<TieredIndex> FromIndex(Index base,
                                                const TieredOptions& options);

  ~TieredIndex();

  TieredIndex(const TieredIndex&) = delete;
  TieredIndex& operator=(const TieredIndex&) = delete;

  /// Appends one sequence, assigns it the next global SeqId, publishes a
  /// snapshot containing it, evaluates continuous queries against it, and
  /// (possibly in the background) compacts sealed tiers. Returns the
  /// global id. Serialized internally; safe to call concurrently with
  /// searches on any snapshot.
  StatusOr<SeqId> Append(seqdb::Sequence values);

  /// The currently published immutable snapshot (never null).
  std::shared_ptr<const IndexSnapshot> Snapshot() const;

  /// Blocks until no compaction is owed or running. Test/ops hook.
  void WaitForMerges();

  TieredStats Stats() const;

  /// Registers a standing query: every future Append whose new sequence
  /// contains a subsequence within `epsilon` of `query` invokes `callback`
  /// with those matches. Returns the query id for Unregister.
  std::uint64_t RegisterContinuous(std::vector<Value> query, Value epsilon,
                                   ContinuousCallback callback,
                                   const QueryOptions& query_options = {});

  /// Removes a continuous query; safe from inside its own callback.
  void Unregister(std::uint64_t query_id);

  const TieredOptions& options() const { return options_; }

 private:
  struct ContinuousQuery {
    std::vector<Value> query;
    Value epsilon;
    QueryOptions query_options;
    ContinuousCallback callback;
  };

  TieredIndex(Index base, const TieredOptions& options);

  /// Assembles base + sealed + memtable tiers and publishes the snapshot.
  /// Requires mu_ held.
  void PublishLocked();

  /// Compactions owed under the sealed-tier budget. Requires mu_ held.
  std::size_t PendingMergesLocked() const;

  /// Merges the two oldest sealed tiers if one is owed. Returns false when
  /// nothing was owed or the merge was cancelled. Never holds mu_ across
  /// the tree merge itself.
  bool MergeOnce();

  /// Builds the merged tier from two adjacent sealed tiers (no locks
  /// held). Returns nullptr on cancellation or disk failure.
  std::shared_ptr<const Tier> BuildMergedTier(
      const std::shared_ptr<const Tier>& a,
      const std::shared_ptr<const Tier>& b, std::uint64_t generation);

  void MergeWorkerLoop();

  const TieredOptions options_;

  // Frozen symbolization state. The alphabet copy is unfitted (only its
  // nominal boundaries matter for ToSymbol); dict_/symbol_values_ are the
  // append-only exact dictionary, guarded by mu_.
  std::optional<categorize::Alphabet> frozen_alphabet_;
  std::map<Value, Symbol> dict_;
  std::vector<Value> symbol_values_;

  // Append/compaction state, guarded by mu_.
  mutable std::mutex mu_;
  std::vector<std::shared_ptr<const Tier>> base_tiers_;
  IndexBuildInfo base_info_;
  SeqId base_sequences_ = 0;
  std::vector<std::shared_ptr<const Tier>> sealed_tiers_;
  std::shared_ptr<const Tier> memtable_tier_;
  std::vector<seqdb::Sequence> memtable_values_;
  std::vector<std::vector<Symbol>> memtable_symbols_;
  std::size_t appended_sequences_ = 0;
  std::uint64_t merges_completed_ = 0;
  std::uint64_t merges_cancelled_ = 0;
  std::uint64_t merge_generation_ = 0;
  bool merge_running_ = false;
  std::condition_variable merge_cv_;     // Signals worker: work or stop.
  std::condition_variable merge_done_cv_;  // Signals WaitForMerges.

  // Publication point, guarded separately so Snapshot() never waits on an
  // in-flight append or merge bookkeeping.
  mutable std::mutex snapshot_mu_;
  std::shared_ptr<const IndexSnapshot> snapshot_;

  // Continuous queries. Recursive: callbacks may re-enter
  // Register/Unregister.
  mutable std::recursive_mutex cq_mu_;
  std::map<std::uint64_t, ContinuousQuery> continuous_;
  std::uint64_t next_query_id_ = 1;

  std::atomic<bool> stop_{false};
  std::atomic<bool> cancel_merges_{false};
  std::thread merge_worker_;
};

}  // namespace tswarp::core

#endif  // TSWARP_CORE_TIERED_INDEX_H_
