#ifndef TSWARP_CORE_DICTIONARY_H_
#define TSWARP_CORE_DICTIONARY_H_

#include <vector>

#include "common/types.h"
#include "seqdb/sequence_database.h"
#include "suffixtree/symbol_database.h"

namespace tswarp::core {

/// Dictionary-encodes a continuous-valued database for the *uncategorized*
/// suffix tree (the paper's plain ST): every distinct element value becomes
/// one symbol, so tree-path equality is exact value equality and the
/// cumulative table built over symbol values is the exact D_tw.
///
/// Symbols are assigned in increasing value order; `symbol_values` maps a
/// Symbol back to its Value.
void DictionaryEncode(const seqdb::SequenceDatabase& db,
                      suffixtree::SymbolDatabase* symbols,
                      std::vector<Value>* symbol_values);

}  // namespace tswarp::core

#endif  // TSWARP_CORE_DICTIONARY_H_
