#include "core/tier.h"

namespace tswarp::core {

Tier::~Tier() {
  if (owns_disk_files && !disk_base.empty()) {
    // Close the buffer managers before unlinking so the bundle is not
    // touched again (unlink-while-open is fine on POSIX, but the order
    // keeps the intent obvious).
    disk_tree.reset();
    suffixtree::RemoveDiskTree(disk_base);
  }
}

TierInfo ComputeTierInfo(const Tier& tier) {
  TierInfo info;
  info.first_seq = tier.first_seq;
  info.sequences = tier.db->size();
  info.elements = tier.db->TotalElements();
  const suffixtree::TreeView* view = tier.view();
  info.nodes = view->NumNodes();
  info.occurrences = view->NumOccurrences();
  info.index_bytes = view->SizeBytes();
  info.on_disk = tier.disk_tree != nullptr;
  info.memtable = tier.is_memtable;
  if (tier.disk_tree != nullptr) {
    info.io_mode = tier.disk_tree->io_mode();
    info.mapped_bytes = tier.disk_tree->MappedBytes();
  }
  info.has_summaries = !tier.summaries().empty();
  return info;
}

std::vector<suffixtree::SymbolHull> TierSymbolHulls(const Tier& tier) {
  std::vector<suffixtree::SymbolHull> hulls;
  if (tier.alphabet.has_value()) {
    hulls.reserve(tier.alphabet->size());
    for (std::size_t s = 0; s < tier.alphabet->size(); ++s) {
      const dtw::Interval iv =
          tier.alphabet->ToInterval(static_cast<Symbol>(s));
      hulls.push_back({iv.lb, iv.ub});
    }
  } else {
    hulls.reserve(tier.symbol_values.size());
    for (const Value v : tier.symbol_values) hulls.push_back({v, v});
  }
  return hulls;
}

}  // namespace tswarp::core
