#include "core/index.h"

#include <atomic>
#include <cstdio>
#include <cstring>
#include <memory>
#include <utility>

#include "common/logging.h"
#include "common/task_scheduler.h"
#include "core/dictionary.h"

namespace tswarp::core {

const char* IndexKindToString(IndexKind kind) {
  switch (kind) {
    case IndexKind::kSuffixTree:
      return "ST";
    case IndexKind::kCategorized:
      return "ST_C";
    case IndexKind::kSparse:
      return "SST_C";
  }
  return "?";
}

namespace {

// On-disk fingerprint guarding Index::Open against mismatched databases or
// options. Stored at <disk_path>.index.
struct IndexFingerprint {
  std::uint64_t magic;
  std::uint32_t kind;
  std::uint32_t method;
  std::uint64_t num_categories;
  std::uint32_t min_suffix_length;
  std::uint32_t max_suffix_length;
  std::uint64_t seed;
  std::uint64_t db_sequences;
  std::uint64_t db_elements;
};

constexpr std::uint64_t kIndexMagic = 0x54535749444D4554ull;  // "TSWIDMET"

IndexFingerprint MakeFingerprint(const seqdb::SequenceDatabase& db,
                                 const IndexOptions& options) {
  IndexFingerprint fp{};
  fp.magic = kIndexMagic;
  fp.kind = static_cast<std::uint32_t>(options.kind);
  fp.method = static_cast<std::uint32_t>(options.method);
  fp.num_categories = options.num_categories;
  fp.min_suffix_length = options.min_suffix_length;
  fp.max_suffix_length = options.max_suffix_length;
  fp.seed = options.seed;
  fp.db_sequences = db.size();
  fp.db_elements = db.TotalElements();
  return fp;
}

Status WriteFingerprint(const std::string& path,
                        const IndexFingerprint& fp) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return Status::IOError("cannot create " + path);
  const std::size_t n = std::fwrite(&fp, sizeof(fp), 1, f);
  std::fclose(f);
  if (n != 1) return Status::IOError("short write to " + path);
  return Status::OK();
}

StatusOr<IndexFingerprint> ReadFingerprint(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return Status::IOError("cannot open " + path);
  IndexFingerprint fp{};
  const std::size_t n = std::fread(&fp, sizeof(fp), 1, f);
  std::fclose(f);
  if (n != 1 || fp.magic != kIndexMagic) {
    return Status::Corruption("bad index fingerprint " + path);
  }
  return fp;
}

std::string FingerprintPath(const IndexOptions& options) {
  return options.disk_path + ".index";
}

suffixtree::DiskTreeOptions TreeOptionsFrom(const IndexOptions& options) {
  suffixtree::DiskTreeOptions tree;
  tree.pool_pages = options.disk_pool_pages;
  tree.pool_shards = options.disk_pool_shards;
  tree.eviction = options.disk_eviction;
  tree.readahead_pages = options.disk_readahead_pages;
  return tree;
}

}  // namespace

/// Derives the discretized symbol database (and categorizer state) for
/// `db` under `options`. Deterministic: Build and Open share it.
static Status DeriveSymbols(const seqdb::SequenceDatabase& db,
                            const IndexOptions& options, Index* index,
                            suffixtree::SymbolDatabase* symbols,
                            std::optional<categorize::Alphabet>* alphabet,
                            std::vector<Value>* symbol_values,
                            IndexBuildInfo* info) {
  if (options.kind == IndexKind::kSuffixTree) {
    DictionaryEncode(db, symbols, symbol_values);
  } else {
    const std::vector<Value> values = categorize::CollectValues(db);
    TSW_ASSIGN_OR_RETURN(
        categorize::Alphabet built,
        categorize::Build(options.method, values, options.num_categories,
                          options.seed));
    categorize::CategorizedDatabase converted =
        categorize::ConvertDatabase(db, &built);
    *alphabet = std::move(built);
    *symbols = suffixtree::SymbolDatabase(std::move(converted.sequences));
    info->num_categories = (*alphabet)->size();
  }
  (void)index;
  return Status::OK();
}

StatusOr<Index> Index::Build(const seqdb::SequenceDatabase* db,
                             const IndexOptions& options) {
  if (db == nullptr) return Status::InvalidArgument("null database");
  if (db->empty()) return Status::InvalidArgument("empty database");
  if (options.kind == IndexKind::kSparse &&
      (options.min_suffix_length != 0 || options.max_suffix_length != 0)) {
    return Status::InvalidArgument(
        "length-bounded indexes require banded searches, which sparse "
        "indexes do not support (D_tw-lb2 is unsound under a band); use "
        "kCategorized with min/max_suffix_length instead");
  }

  Index index;
  index.db_ = db;
  index.options_ = options;

  // 1. Discretize the element values.
  TSW_RETURN_IF_ERROR(DeriveSymbols(*db, options, &index, &index.symbols_,
                                    &index.alphabet_, &index.symbol_values_,
                                    &index.build_info_));

  // 2. Build the tree (in memory, or on disk via batched binary merges).
  suffixtree::BuildOptions build;
  build.sparse = options.kind == IndexKind::kSparse;
  build.min_suffix_length = options.min_suffix_length;
  build.max_suffix_length = options.max_suffix_length;

  const suffixtree::TreeView* view = nullptr;
  std::uint64_t stored = 0;
  if (options.disk_path.empty()) {
    suffixtree::SuffixTreeBuilder builder(&index.symbols_, build);
    for (SeqId id = 0; id < index.symbols_.size(); ++id) {
      builder.InsertSequence(id);
    }
    stored = builder.stored_suffixes();
    index.build_info_.skipped_suffixes = builder.skipped_suffixes();
    index.memory_tree_ = builder.Build();
    view = &*index.memory_tree_;
  } else {
    suffixtree::DiskBuildOptions disk;
    disk.build = build;
    disk.batch_sequences = options.disk_batch_sequences;
    disk.tree = TreeOptionsFrom(options);
    TSW_ASSIGN_OR_RETURN(
        index.disk_tree_,
        suffixtree::BuildDiskTree(index.symbols_, options.disk_path, disk));
    stored = index.disk_tree_->NumOccurrences();
    index.build_info_.skipped_suffixes =
        index.symbols_.TotalSymbols() - stored;
    view = index.disk_tree_.get();
  }

  index.build_info_.index_bytes = view->SizeBytes();
  index.build_info_.num_nodes = view->NumNodes();
  index.build_info_.num_occurrences = view->NumOccurrences();
  index.build_info_.stored_suffixes = stored;
  const std::uint64_t total = stored + index.build_info_.skipped_suffixes;
  index.build_info_.compaction_ratio =
      total == 0 ? 0.0
                 : static_cast<double>(index.build_info_.skipped_suffixes) /
                       static_cast<double>(total);
  if (!options.disk_path.empty()) {
    TSW_RETURN_IF_ERROR(WriteFingerprint(FingerprintPath(options),
                                         MakeFingerprint(*db, options)));
  }
  return index;
}

StatusOr<Index> Index::Open(const seqdb::SequenceDatabase* db,
                            const IndexOptions& options) {
  if (db == nullptr || db->empty()) {
    return Status::InvalidArgument("null or empty database");
  }
  if (options.disk_path.empty()) {
    return Status::InvalidArgument("Open requires options.disk_path");
  }
  TSW_ASSIGN_OR_RETURN(const IndexFingerprint fp,
                       ReadFingerprint(FingerprintPath(options)));
  const IndexFingerprint want = MakeFingerprint(*db, options);
  if (std::memcmp(&fp, &want, sizeof(fp)) != 0) {
    return Status::FailedPrecondition(
        "index fingerprint mismatch: bundle was built with different "
        "options or a different database");
  }

  Index index;
  index.db_ = db;
  index.options_ = options;
  TSW_RETURN_IF_ERROR(DeriveSymbols(*db, options, &index, &index.symbols_,
                                    &index.alphabet_, &index.symbol_values_,
                                    &index.build_info_));
  TSW_ASSIGN_OR_RETURN(
      index.disk_tree_,
      suffixtree::DiskSuffixTree::Open(options.disk_path,
                                       TreeOptionsFrom(options)));

  const suffixtree::TreeView* view = index.disk_tree_.get();
  index.build_info_.index_bytes = view->SizeBytes();
  index.build_info_.num_nodes = view->NumNodes();
  index.build_info_.num_occurrences = view->NumOccurrences();
  index.build_info_.stored_suffixes = view->NumOccurrences();
  index.build_info_.skipped_suffixes =
      index.symbols_.TotalSymbols() - view->NumOccurrences();
  const std::uint64_t total = index.symbols_.TotalSymbols();
  index.build_info_.compaction_ratio =
      total == 0 ? 0.0
                 : static_cast<double>(index.build_info_.skipped_suffixes) /
                       static_cast<double>(total);
  return index;
}

std::optional<suffixtree::RegionStats> Index::PoolStats() const {
  if (disk_tree_ == nullptr) return std::nullopt;
  return disk_tree_->PoolStats();
}

namespace {

TreeSearchConfig MakeConfig(const Index& index,
                            const suffixtree::TreeView* tree,
                            const seqdb::SequenceDatabase* db,
                            const categorize::Alphabet* alphabet,
                            const std::vector<Value>* symbol_values,
                            const QueryOptions& query_options) {
  TreeSearchConfig config;
  config.tree = tree;
  config.db = db;
  config.exact = index.options().kind == IndexKind::kSuffixTree;
  config.sparse = index.options().kind == IndexKind::kSparse;
  config.alphabet = alphabet;
  config.symbol_values = config.exact ? symbol_values : nullptr;
  config.prune = query_options.prune;
  config.use_lower_bound = query_options.use_lower_bound;
  config.band = query_options.band;
  config.num_threads = query_options.num_threads;
  config.cancel = query_options.cancel;
  return config;
}

}  // namespace

std::vector<Match> Index::Search(std::span<const Value> query, Value epsilon,
                                 const QueryOptions& query_options,
                                 SearchStats* stats) const {
  const TreeSearchConfig config = MakeConfig(
      *this,
      memory_tree_.has_value()
          ? static_cast<const suffixtree::TreeView*>(&*memory_tree_)
          : disk_tree_.get(),
      db_, alphabet_.has_value() ? &*alphabet_ : nullptr, &symbol_values_,
      query_options);
  return TreeSearch(config, query, epsilon, stats);
}

std::vector<Match> Index::SearchKnn(std::span<const Value> query,
                                    std::size_t k,
                                    const QueryOptions& query_options,
                                    SearchStats* stats) const {
  const TreeSearchConfig config = MakeConfig(
      *this,
      memory_tree_.has_value()
          ? static_cast<const suffixtree::TreeView*>(&*memory_tree_)
          : disk_tree_.get(),
      db_, alphabet_.has_value() ? &*alphabet_ : nullptr, &symbol_values_,
      query_options);
  return TreeSearchKnn(config, query, k, stats);
}

std::vector<std::vector<Match>> Index::SearchBatch(
    const std::vector<std::vector<Value>>& queries,
    const std::vector<Value>& epsilons, const QueryOptions& query_options,
    std::vector<SearchStats>* stats) const {
  TSW_CHECK(epsilons.size() == 1 || epsilons.size() == queries.size())
      << "epsilons must hold one shared threshold or one per query";
  auto epsilon_for = [&](std::size_t i) {
    return epsilons.size() == 1 ? epsilons[0] : epsilons[i];
  };
  // Queries run serially inside; the pool parallelizes across them.
  QueryOptions per_query = query_options;
  per_query.num_threads = 0;

  std::vector<std::vector<Match>> results(queries.size());
  if (stats != nullptr) {
    stats->assign(queries.size(), SearchStats{});
  }
  if (query_options.num_threads == 0) {
    for (std::size_t i = 0; i < queries.size(); ++i) {
      results[i] = Search(queries[i], epsilon_for(i), per_query,
                          stats != nullptr ? &(*stats)[i] : nullptr);
    }
    return results;
  }

  // Batch coalescing: one fork/join scope on the shared work-stealing
  // scheduler, one task per query. Idle workers steal whole queries first;
  // stealing *within* a query would need per-query parallel mode, which is
  // deliberately off here so each query's stats stay bit-identical to its
  // serial run (per_query.num_threads == 0 above).
  TaskScheduler::Get().EnsureWorkers(query_options.num_threads);
  TaskScope scope;
  for (std::size_t i = 0; i < queries.size(); ++i) {
    scope.Submit([&, i] {
      results[i] = Search(queries[i], epsilon_for(i), per_query,
                          stats != nullptr ? &(*stats)[i] : nullptr);
    });
  }
  scope.Wait();
  return results;
}

}  // namespace tswarp::core
