#include "core/index.h"

#include <atomic>
#include <cstdio>
#include <cstring>
#include <memory>
#include <utility>

#include "common/logging.h"
#include "common/task_scheduler.h"
#include "core/dictionary.h"

namespace tswarp::core {

const char* IndexKindToString(IndexKind kind) {
  switch (kind) {
    case IndexKind::kSuffixTree:
      return "ST";
    case IndexKind::kCategorized:
      return "ST_C";
    case IndexKind::kSparse:
      return "SST_C";
  }
  return "?";
}

namespace {

// On-disk fingerprint guarding Index::Open against mismatched databases or
// options. Stored at <disk_path>.index.
struct IndexFingerprint {
  std::uint64_t magic;
  std::uint32_t kind;
  std::uint32_t method;
  std::uint64_t num_categories;
  std::uint32_t min_suffix_length;
  std::uint32_t max_suffix_length;
  std::uint64_t seed;
  std::uint64_t db_sequences;
  std::uint64_t db_elements;
};

constexpr std::uint64_t kIndexMagic = 0x54535749444D4554ull;  // "TSWIDMET"

IndexFingerprint MakeFingerprint(const seqdb::SequenceDatabase& db,
                                 const IndexOptions& options) {
  IndexFingerprint fp{};
  fp.magic = kIndexMagic;
  fp.kind = static_cast<std::uint32_t>(options.kind);
  fp.method = static_cast<std::uint32_t>(options.method);
  fp.num_categories = options.num_categories;
  fp.min_suffix_length = options.min_suffix_length;
  fp.max_suffix_length = options.max_suffix_length;
  fp.seed = options.seed;
  fp.db_sequences = db.size();
  fp.db_elements = db.TotalElements();
  return fp;
}

Status WriteFingerprint(const std::string& path,
                        const IndexFingerprint& fp) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return Status::IOError("cannot create " + path);
  const std::size_t n = std::fwrite(&fp, sizeof(fp), 1, f);
  std::fclose(f);
  if (n != 1) return Status::IOError("short write to " + path);
  return Status::OK();
}

StatusOr<IndexFingerprint> ReadFingerprint(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return Status::IOError("cannot open " + path);
  IndexFingerprint fp{};
  const std::size_t n = std::fread(&fp, sizeof(fp), 1, f);
  std::fclose(f);
  if (n != 1 || fp.magic != kIndexMagic) {
    return Status::Corruption("bad index fingerprint " + path);
  }
  return fp;
}

std::string FingerprintPath(const IndexOptions& options) {
  return options.disk_path + ".index";
}

}  // namespace

suffixtree::DiskTreeOptions TreeOptionsFromIndexOptions(
    const IndexOptions& options) {
  suffixtree::DiskTreeOptions tree;
  tree.pool_pages = options.disk_pool_pages;
  tree.pool_shards = options.disk_pool_shards;
  tree.eviction = options.disk_eviction;
  tree.readahead_pages = options.disk_readahead_pages;
  tree.io_mode = options.disk_io_mode;
  tree.load_node_summaries = options.node_summaries;
  return tree;
}

/// Derives the discretized symbol database (and categorizer state) for
/// `db` under `options`. Deterministic: Build and Open share it.
static Status DeriveSymbols(const seqdb::SequenceDatabase& db,
                            const IndexOptions& options,
                            suffixtree::SymbolDatabase* symbols,
                            std::optional<categorize::Alphabet>* alphabet,
                            std::vector<Value>* symbol_values,
                            IndexBuildInfo* info) {
  if (options.kind == IndexKind::kSuffixTree) {
    DictionaryEncode(db, symbols, symbol_values);
  } else {
    const std::vector<Value> values = categorize::CollectValues(db);
    TSW_ASSIGN_OR_RETURN(
        categorize::Alphabet built,
        categorize::Build(options.method, values, options.num_categories,
                          options.seed));
    categorize::CategorizedDatabase converted =
        categorize::ConvertDatabase(db, &built);
    *alphabet = std::move(built);
    *symbols = suffixtree::SymbolDatabase(std::move(converted.sequences));
    info->num_categories = (*alphabet)->size();
  }
  return Status::OK();
}

StatusOr<Index> Index::Build(const seqdb::SequenceDatabase* db,
                             const IndexOptions& options) {
  if (db == nullptr) return Status::InvalidArgument("null database");
  if (db->empty()) return Status::InvalidArgument("empty database");
  if (options.kind == IndexKind::kSparse &&
      (options.min_suffix_length != 0 || options.max_suffix_length != 0)) {
    return Status::InvalidArgument(
        "length-bounded indexes require banded searches, which sparse "
        "indexes do not support (D_tw-lb2 is unsound under a band); use "
        "kCategorized with min/max_suffix_length instead");
  }

  auto tier = std::make_shared<Tier>();
  tier->first_seq = 0;
  tier->db = db;

  // 1. Discretize the element values. The symbol database is construction
  // scratch: the tree materializes its labels, so it is dropped once the
  // tier is assembled.
  IndexBuildInfo base_info;
  suffixtree::SymbolDatabase symbols;
  TSW_RETURN_IF_ERROR(DeriveSymbols(*db, options, &symbols, &tier->alphabet,
                                    &tier->symbol_values, &base_info));

  // 2. Build the tree (in memory, or on disk via batched binary merges).
  suffixtree::BuildOptions build;
  build.sparse = options.kind == IndexKind::kSparse;
  build.min_suffix_length = options.min_suffix_length;
  build.max_suffix_length = options.max_suffix_length;

  std::uint64_t skipped = 0;
  if (options.disk_path.empty()) {
    suffixtree::SuffixTreeBuilder builder(&symbols, build);
    for (SeqId id = 0; id < symbols.size(); ++id) {
      builder.InsertSequence(id);
    }
    skipped = builder.skipped_suffixes();
    tier->memory_tree = builder.Build();
  } else {
    suffixtree::DiskBuildOptions disk;
    disk.build = build;
    disk.batch_sequences = options.disk_batch_sequences;
    disk.tree = TreeOptionsFromIndexOptions(options);
    TSW_ASSIGN_OR_RETURN(
        tier->disk_tree,
        suffixtree::BuildDiskTree(symbols, options.disk_path, disk));
    skipped = symbols.TotalSymbols() - tier->disk_tree->NumOccurrences();
  }
  // 3. Per-node summaries (the subtree-hull pre-filter). In-memory trees
  // keep them beside the tier; disk bundles persist them as the optional
  // fourth section — attach, then reopen so the served tree reads the
  // same bytes a later Open() would.
  if (options.node_summaries) {
    const std::vector<suffixtree::SymbolHull> hulls = TierSymbolHulls(*tier);
    if (options.disk_path.empty()) {
      tier->memory_summaries =
          suffixtree::BuildNodeSummaries(*tier->view(), hulls);
    } else {
      const std::vector<suffixtree::NodeSummaryRecord> records =
          suffixtree::BuildNodeSummaries(*tier->disk_tree, hulls);
      tier->disk_tree.reset();  // Release the bundle before rewriting it.
      TSW_RETURN_IF_ERROR(
          suffixtree::AttachNodeSummaries(options.disk_path, records));
      TSW_ASSIGN_OR_RETURN(
          tier->disk_tree,
          suffixtree::DiskSuffixTree::Open(options.disk_path,
                                           TreeOptionsFromIndexOptions(options)));
    }
  }
  tier->info = ComputeTierInfo(*tier);
  base_info.skipped_suffixes = skipped;

  if (!options.disk_path.empty()) {
    TSW_RETURN_IF_ERROR(WriteFingerprint(FingerprintPath(options),
                                         MakeFingerprint(*db, options)));
  }
  Index index;
  index.snapshot_ = std::make_shared<const IndexSnapshot>(
      options, base_info,
      std::vector<std::shared_ptr<const Tier>>{std::move(tier)});
  return index;
}

StatusOr<Index> Index::Open(const seqdb::SequenceDatabase* db,
                            const IndexOptions& options) {
  if (db == nullptr || db->empty()) {
    return Status::InvalidArgument("null or empty database");
  }
  if (options.disk_path.empty()) {
    return Status::InvalidArgument("Open requires options.disk_path");
  }
  TSW_ASSIGN_OR_RETURN(const IndexFingerprint fp,
                       ReadFingerprint(FingerprintPath(options)));
  const IndexFingerprint want = MakeFingerprint(*db, options);
  if (std::memcmp(&fp, &want, sizeof(fp)) != 0) {
    return Status::FailedPrecondition(
        "index fingerprint mismatch: bundle was built with different "
        "options or a different database");
  }

  auto tier = std::make_shared<Tier>();
  tier->first_seq = 0;
  tier->db = db;
  IndexBuildInfo base_info;
  suffixtree::SymbolDatabase symbols;
  TSW_RETURN_IF_ERROR(DeriveSymbols(*db, options, &symbols, &tier->alphabet,
                                    &tier->symbol_values, &base_info));
  TSW_ASSIGN_OR_RETURN(
      tier->disk_tree,
      suffixtree::DiskSuffixTree::Open(options.disk_path,
                                       TreeOptionsFromIndexOptions(options)));
  tier->info = ComputeTierInfo(*tier);
  base_info.skipped_suffixes =
      symbols.TotalSymbols() - tier->disk_tree->NumOccurrences();
  Index index;
  index.snapshot_ = std::make_shared<const IndexSnapshot>(
      options, base_info,
      std::vector<std::shared_ptr<const Tier>>{std::move(tier)});
  return index;
}

IndexSnapshot::IndexSnapshot(IndexOptions options, IndexBuildInfo base_info,
                             std::vector<std::shared_ptr<const Tier>> tiers)
    : options_(std::move(options)),
      build_info_(base_info),
      tiers_(std::move(tiers)) {
  TSW_CHECK(!tiers_.empty());
  // Aggregate the additive counters over the tiers; the base_info supplies
  // the non-additive fields (num_categories) and skipped_suffixes, which
  // stays exact because appended tiers re-add their own skip counts via
  // `elements - occurrences` below.
  build_info_.index_bytes = 0;
  build_info_.num_nodes = 0;
  build_info_.num_occurrences = 0;
  std::uint64_t elements = 0;
  for (const std::shared_ptr<const Tier>& tier : tiers_) {
    build_info_.index_bytes += tier->info.index_bytes;
    build_info_.num_nodes += tier->info.nodes;
    build_info_.num_occurrences += tier->info.occurrences;
    elements += tier->info.elements;
  }
  build_info_.stored_suffixes = build_info_.num_occurrences;
  build_info_.skipped_suffixes = elements - build_info_.num_occurrences;
  build_info_.compaction_ratio =
      elements == 0 ? 0.0
                    : static_cast<double>(build_info_.skipped_suffixes) /
                          static_cast<double>(elements);
}

std::size_t IndexSnapshot::total_sequences() const {
  const Tier& last = *tiers_.back();
  return static_cast<std::size_t>(last.first_seq) + last.info.sequences;
}

bool IndexSnapshot::on_disk() const {
  for (const auto& tier : tiers_) {
    if (tier->disk_tree != nullptr) return true;
  }
  return false;
}

const suffixtree::DiskSuffixTree* IndexSnapshot::disk_tree() const {
  return tiers_.front()->disk_tree.get();
}

std::optional<suffixtree::RegionStats> IndexSnapshot::PoolStats() const {
  bool any = false;
  suffixtree::RegionStats total{};
  for (const auto& tier : tiers_) {
    if (tier->disk_tree == nullptr) continue;
    const suffixtree::RegionStats s = tier->disk_tree->PoolStats();
    if (!any) {
      total = s;
    } else {
      total.nodes += s.nodes;
      total.occs += s.occs;
      total.labels += s.labels;
    }
    any = true;
  }
  if (!any) return std::nullopt;
  return total;
}

MappedIoStats IndexSnapshot::MappedStats() const {
  MappedIoStats stats;
  for (const auto& tier : tiers_) {
    if (tier->disk_tree == nullptr) continue;
    stats.mapped_bytes += tier->disk_tree->MappedBytes();
    stats.resident_bytes += tier->disk_tree->ResidentBytes();
  }
  return stats;
}

namespace {

std::vector<TierSearchEntry> MakeEntries(const IndexSnapshot& snapshot,
                                         const QueryOptions& query_options) {
  const bool exact = snapshot.options().kind == IndexKind::kSuffixTree;
  std::vector<TierSearchEntry> entries;
  entries.reserve(snapshot.tiers().size());
  for (const std::shared_ptr<const Tier>& tier : snapshot.tiers()) {
    TierSearchEntry entry;
    entry.config.tree = tier->view();
    entry.config.db = tier->db;
    entry.config.exact = exact;
    entry.config.sparse = snapshot.options().kind == IndexKind::kSparse;
    entry.config.alphabet =
        tier->alphabet.has_value() ? &*tier->alphabet : nullptr;
    entry.config.symbol_values = exact ? &tier->symbol_values : nullptr;
    entry.config.prune = query_options.prune;
    entry.config.use_lower_bound = query_options.use_lower_bound;
    entry.config.band = query_options.band;
    entry.config.num_threads = query_options.num_threads;
    entry.config.cancel = query_options.cancel;
    entry.config.approx_factor = query_options.approx_factor;
    if (query_options.use_node_summaries) {
      entry.config.summaries = tier->summaries();
    }
    entry.seq_base = tier->first_seq;
    entries.push_back(std::move(entry));
  }
  return entries;
}

}  // namespace

std::vector<Match> IndexSnapshot::Search(std::span<const Value> query,
                                         Value epsilon,
                                         const QueryOptions& query_options,
                                         SearchStats* stats) const {
  return TierSearch(MakeEntries(*this, query_options), query, epsilon,
                    stats);
}

std::vector<Match> IndexSnapshot::SearchKnn(std::span<const Value> query,
                                            std::size_t k,
                                            const QueryOptions& query_options,
                                            SearchStats* stats) const {
  return TierSearchKnn(MakeEntries(*this, query_options), query, k, stats);
}

std::vector<std::vector<Match>> IndexSnapshot::SearchBatch(
    const std::vector<std::vector<Value>>& queries,
    const std::vector<Value>& epsilons, const QueryOptions& query_options,
    std::vector<SearchStats>* stats) const {
  TSW_CHECK(epsilons.size() == 1 || epsilons.size() == queries.size())
      << "epsilons must hold one shared threshold or one per query";
  auto epsilon_for = [&](std::size_t i) {
    return epsilons.size() == 1 ? epsilons[0] : epsilons[i];
  };
  // Queries run serially inside; the pool parallelizes across them.
  QueryOptions per_query = query_options;
  per_query.num_threads = 0;

  std::vector<std::vector<Match>> results(queries.size());
  if (stats != nullptr) {
    stats->assign(queries.size(), SearchStats{});
  }
  if (query_options.num_threads == 0) {
    for (std::size_t i = 0; i < queries.size(); ++i) {
      results[i] = Search(queries[i], epsilon_for(i), per_query,
                          stats != nullptr ? &(*stats)[i] : nullptr);
    }
    return results;
  }

  // Batch coalescing: one fork/join scope on the shared work-stealing
  // scheduler, one task per query. Idle workers steal whole queries first;
  // stealing *within* a query would need per-query parallel mode, which is
  // deliberately off here so each query's stats stay bit-identical to its
  // serial run (per_query.num_threads == 0 above).
  TaskScheduler::Get().EnsureWorkers(query_options.num_threads);
  TaskScope scope;
  for (std::size_t i = 0; i < queries.size(); ++i) {
    scope.Submit([&, i] {
      results[i] = Search(queries[i], epsilon_for(i), per_query,
                          stats != nullptr ? &(*stats)[i] : nullptr);
    });
  }
  scope.Wait();
  return results;
}

}  // namespace tswarp::core
