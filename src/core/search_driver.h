#ifndef TSWARP_CORE_SEARCH_DRIVER_H_
#define TSWARP_CORE_SEARCH_DRIVER_H_

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <limits>
#include <memory>
#include <mutex>
#include <span>
#include <utility>
#include <vector>

#include "common/logging.h"
#include "common/thread_pool.h"
#include "common/types.h"
#include "core/match.h"
#include "core/result_collector.h"
#include "dtw/envelope.h"
#include "dtw/warping_table.h"
#include "suffixtree/tree_view.h"

namespace tswarp::core {

/// The branch-and-bound DFS shared by every suffix-tree similarity search
/// in the system. The paper's three algorithms (SimSearch-ST, -ST_C,
/// -SST_C) and the Section 8 multivariate extension are one traversal with
/// different per-row distance rules; SearchDriver<Model> is that traversal,
/// and the rules live in a small *distance model*:
///
///   struct Model {
///     /// Rows are exact distances: LastColumn() is already D_tw and
///     /// matches are emitted without a verification pass. false for
///     /// every lower-bound filter model.
///     static constexpr bool kExactRows;
///
///     /// FirstRowLb: D_base-lb(Q[1], symbol) — the first-row lower bound
///     /// fixed at the root branch (Definition 4). Feeds the sparse
///     /// pruning discount (MaxRun-1) * FirstRowLb and the D_tw-lb2
///     /// recovery of non-stored suffixes.
///     Value FirstRowLb(Symbol s) const;
///
///     /// RowStep: appends the cumulative-table row for one edge symbol
///     /// (exact base distances, category-interval D_tw-lb rows, or
///     /// multivariate grid-cell bounds).
///     void RowStep(dtw::WarpingTable* table, Symbol s) const;
///
///     /// SparseDiscount input for one occurrence: the first-symbol lower
///     /// bound of the *stored* suffix at occ, recomputed from the raw
///     /// data (D_tw-lb2, Definition 4). Only called when
///     /// DriverConfig::sparse.
///     Value OccurrenceFirstLb(const suffixtree::OccurrenceRec& occ) const;
///
///     /// VerifyExact: the exact verification cascade for one candidate
///     /// subsequence (endpoint screen, envelope lower bounds, exact
///     /// kernel). Returns true iff the candidate's exact distance is
///     /// <= eps, setting *distance; bumps the cascade counters in
///     /// *stats. Never called when kExactRows. Models carry their own
///     /// scratch, so VerifyExact may be non-const; the driver copies the
///     /// model prototype once per worker.
///     bool VerifyExact(SeqId seq, Pos start, Pos len, Value eps,
///                      SearchStats* stats, Value* distance);
///   };
///
/// Four instantiations cover the repo: ExactModel (symbol values),
/// CategoryModel (D_tw-lb intervals), SparseCategoryModel (D_tw-lb +
/// D_tw-lb2 recovery), and the multivariate GridCellModel. One kernel
/// means every capability — Theorem-1 pruning, the task-parallel engine,
/// k-NN branch-and-bound, Sakoe-Chiba bands, the envelope cascade —
/// reaches all of them at once.
struct DriverConfig {
  const suffixtree::TreeView* tree = nullptr;

  /// Query length in elements (table width). For multivariate queries this
  /// is the element count, not the flattened value count.
  std::size_t query_length = 0;

  /// Raw univariate query values (length == query_length), bound to each
  /// worker's table so models can use the typed SIMD row-step paths
  /// (PushRowValue / PushRowInterval). Empty for multivariate queries,
  /// whose base distances are not derivable from a Value span.
  std::span<const Value> query = {};

  /// Expected DFS depth (rows simultaneously live in a worker's table);
  /// pre-sizes the table's cell storage. 0 = use the table's default.
  std::size_t depth_hint = 0;

  /// Sparse tree (SST_C): discount the Theorem-1 bound by
  /// (MaxRun-1) * FirstRowLb and recover non-stored suffixes via D_tw-lb2.
  bool sparse = false;

  /// Theorem-1 branch pruning; disable only for the R_p ablation.
  bool prune = true;

  /// Sakoe-Chiba band (0 = unconstrained, the paper's setting). Rejected
  /// on sparse trees: the D_tw-lb2 shift argument does not hold once the
  /// band moves with the dropped leading symbols.
  Pos band = 0;

  /// Worker threads for one search. 0 = fully serial (single-table DFS);
  /// >= 1 decomposes the traversal into branch tasks executed on a
  /// ThreadPool of that many workers. Results are identical to serial for
  /// both range and k-NN searches (see docs/parallel_search.md).
  std::size_t num_threads = 0;
};

/// Per-query shared state, owned for the query's whole lifetime: the
/// shrinking threshold and result set (collector), the merged traversal
/// stats, and the query envelope slot of the univariate lower-bound
/// cascade. Models with a different envelope type (the multivariate
/// per-dimension set) own theirs alongside the context. Worker arenas —
/// the warping-table row pool, the lower-bound scratch, the traversal
/// buffers — are created once per worker and reused across every branch
/// task that worker executes, so the hot path performs no per-task
/// allocations once warmed up.
class QueryContext {
 public:
  QueryContext(Value epsilon, std::size_t knn_k)
      : collector(epsilon, knn_k) {}

  QueryContext(const QueryContext&) = delete;
  QueryContext& operator=(const QueryContext&) = delete;

  /// Query envelope of the univariate lower-bound cascade; non-null iff
  /// the cascade is active for this search. Built once per query (it
  /// depends only on (query, band)) and shared read-only by every worker.
  std::unique_ptr<const dtw::QueryEnvelope> envelope;

  ResultCollector collector;

  std::mutex stats_mu;
  SearchStats stats;  // Guarded by stats_mu; merged per worker at drain.
};

/// One unit of parallel work: process edge `edge_index` of `node` — push
/// its label rows, emit candidates, prune — and, when `descend`, the whole
/// subtree below it. `prefix` holds the symbols on the root-to-`node` path;
/// a worker replays them into its private table (no emission: the rows were
/// already evaluated by the task owning the ancestor edge) so depths, the
/// Sakoe-Chiba band, and Theorem-1 pruning see the true distance table.
struct BranchTask {
  std::vector<Symbol> prefix;
  suffixtree::NodeId node = 0;
  std::uint32_t edge_index = 0;
  bool descend = true;
  /// D_base-lb(Q[1], first path symbol), fixed at the root branch
  /// (Definition 4); only read when `prefix` is non-empty.
  Value first_lb = 0.0;
};

template <typename Model>
class SearchDriver {
 public:
  /// `config` and `model` must outlive the driver; `model` is the
  /// prototype copied once per worker (copies carry the per-worker
  /// verification scratch).
  SearchDriver(const DriverConfig& config, const Model& model)
      : config_(config), model_(model) {
    TSW_CHECK(config.tree != nullptr);
    TSW_CHECK(config.query_length > 0);
    TSW_CHECK(!(config.sparse && config.band != 0))
        << "banded search is unsupported on sparse indexes: the D_tw-lb2 "
           "shift argument does not hold once the band moves with the "
           "dropped leading symbols (build a dense index instead)";
  }

  /// Runs the search against `ctx` (freshly constructed for this query)
  /// and returns the sorted answers; fills *stats when non-null.
  std::vector<Match> Run(QueryContext* ctx, SearchStats* stats) {
    if (config_.num_threads == 0) {
      Worker worker(config_, model_, ctx);
      worker.RunWholeTree();
      worker.Drain();
    } else {
      const std::vector<BranchTask> tasks =
          EnumerateTasks(/*target=*/config_.num_threads * 4);
      ThreadPool pool(config_.num_threads);
      std::atomic<std::size_t> next_task{0};
      for (std::size_t w = 0; w < config_.num_threads; ++w) {
        pool.Submit([this, ctx, &tasks, &next_task] {
          Worker worker(config_, model_, ctx);
          for (;;) {
            const std::size_t i =
                next_task.fetch_add(1, std::memory_order_relaxed);
            if (i >= tasks.size()) break;
            worker.RunTask(tasks[i]);
          }
          worker.Drain();
        });
      }
      pool.Wait();
    }

    std::vector<Match> answers = ctx->collector.Take();
    ctx->stats.answers = answers.size();
    if (stats != nullptr) *stats = ctx->stats;
    return answers;
  }

 private:
  using Children = suffixtree::Children;
  using NodeId = suffixtree::NodeId;
  using OccurrenceRec = suffixtree::OccurrenceRec;

  /// Per-worker search state: a private cumulative table, reusable
  /// traversal buffers, a private model copy (verification scratch),
  /// private stats, and (range mode) a private answer vector that is
  /// appended to the shared state once, when the worker drains. Serial
  /// searches use one worker and therefore identical semantics.
  class Worker {
   public:
    Worker(const DriverConfig& config, const Model& prototype,
           QueryContext* ctx)
        : config_(config),
          model_(prototype),
          ctx_(*ctx),
          collector_(ctx->collector),
          table_(config.query_length, config.band,
                 config.depth_hint != 0
                     ? config.depth_hint
                     : dtw::WarpingTable::kDefaultDepthHint) {
      if (!config.query.empty()) table_.BindQuery(config.query);
    }

    /// Serial entry point: the whole traversal from the root.
    void RunWholeTree() {
      RunSpan(config_.tree->Root(), /*first_lb=*/0.0, 0,
              std::numeric_limits<std::size_t>::max(),
              /*descend_bottom=*/true);
    }

    void RunTask(const BranchTask& task) {
      table_.Reset();
      for (const Symbol sym : task.prefix) {
        model_.RowStep(&table_, sym);
        ++stats_.replayed_rows;
      }
      RunSpan(task.node, task.first_lb, task.edge_index,
              task.edge_index + 1, task.descend);
    }

    /// Publishes this worker's answers and stats into the shared state.
    void Drain() {
      stats_.cells_computed = table_.cells_computed();
      collector_.DrainRange(&answers_);
      std::lock_guard<std::mutex> lock(ctx_.stats_mu);
      ctx_.stats.Merge(stats_);
    }

   private:
    struct Frame {
      NodeId node;
      Value first_lb;          // Inherited branch first-symbol lower bound.
      std::size_t edge = 0;    // Next edge index to process.
      std::size_t pushed = 0;  // Rows pushed for the edge being descended.
    };

    Value Eps() const { return collector_.epsilon(); }

    Children& ChildrenAt(std::size_t depth) {
      if (children_stack_.size() <= depth) children_stack_.resize(depth + 1);
      return children_stack_[depth];
    }

    void PushFrame(NodeId node, Value first_lb, std::size_t edge_lo) {
      // A node's visit is attributed to the frame starting at its first
      // edge, so nodes split across branch tasks are still counted once.
      if (edge_lo == 0) ++stats_.nodes_visited;
      frames_.push_back({node, first_lb, edge_lo, 0});
      config_.tree->GetChildren(node, &ChildrenAt(frames_.size() - 1));
    }

    /// Iterative DFS: processes edges [edge_lo, edge_hi) of `start`
    /// (descending below them only when `descend_bottom`); every deeper
    /// node is traversed in full.
    void RunSpan(NodeId start, Value first_lb, std::size_t edge_lo,
                 std::size_t edge_hi, bool descend_bottom) {
      frames_.clear();
      PushFrame(start, first_lb, edge_lo);
      while (!frames_.empty()) {
        Frame& f = frames_.back();
        Children& children = ChildrenAt(frames_.size() - 1);
        const bool bottom = frames_.size() == 1;
        const std::size_t limit =
            bottom ? std::min(edge_hi, children.edges.size())
                   : children.edges.size();
        if (f.edge >= limit) {
          frames_.pop_back();
          if (!frames_.empty()) {
            table_.PopRows(frames_.back().pushed);
            frames_.back().pushed = 0;
            ++frames_.back().edge;
          }
          continue;
        }

        const Children::Edge& edge = children.edges[f.edge];
        const std::span<const Symbol> label = children.Label(edge);
        const bool at_root = table_.Empty();
        Value branch_first_lb = f.first_lb;
        if (at_root) branch_first_lb = model_.FirstRowLb(label.front());
        // The sparse pruning discount: a non-stored suffix under this
        // branch may skip up to MaxRun-1 leading symbols, each worth at
        // most first_lb of distance (Definition 4).
        Value discount = 0.0;
        if (config_.sparse) {
          const Pos max_run = config_.tree->MaxRun(edge.child);
          if (max_run > 1) {
            discount = static_cast<Value>(max_run - 1) * branch_first_lb;
          }
        }

        std::size_t pushed = 0;
        bool descend = true;
        // Occurrences below this edge are the same at every depth along
        // it; collect them at most once per edge.
        occ_buf_.clear();
        bool occ_collected = false;
        for (const Symbol sym : label) {
          model_.RowStep(&table_, sym);
          ++pushed;
          ++stats_.rows_pushed;
          stats_.unshared_rows += config_.tree->SubtreeOccCount(edge.child);
          const Value dist = table_.LastColumn();
          if (dist <= Eps() ||
              (config_.sparse && dist - discount <= Eps())) {
            if (!occ_collected) {
              config_.tree->CollectSubtreeOccurrences(edge.child, &occ_buf_,
                                                      &occ_scratch_);
              occ_collected = true;
            }
            EmitCandidates(dist);
          }
          if (config_.prune && table_.RowMin() - discount > Eps()) {
            // Theorem 1: no extension can recover. Skip the rest of this
            // edge and the whole subtree.
            ++stats_.branches_pruned;
            descend = false;
            break;
          }
        }
        if (bottom && !descend_bottom) descend = false;
        if (descend) {
          f.pushed = pushed;
          PushFrame(edge.child, branch_first_lb, 0);
        } else {
          table_.PopRows(pushed);
          ++f.edge;
        }
      }
    }

    /// A prefix of depth NumRows() matched with filter distance `dist`:
    /// expand the pre-collected subtree occurrences (occ_buf_) into
    /// answers (exact-row models) or verified candidates (lower-bound
    /// models).
    void EmitCandidates(Value dist) {
      const auto depth = static_cast<Pos>(table_.NumRows());
      for (const OccurrenceRec& occ : occ_buf_) {
        if constexpr (Model::kExactRows) {
          if (dist <= Eps()) {
            ++stats_.candidates;
            Report({occ.seq, occ.pos, depth, dist});
          }
          continue;
        } else {
          // Stored suffix: subsequence S[occ.pos : occ.pos+depth-1].
          if (dist <= Eps()) PostProcess(occ.seq, occ.pos, depth);
          if (!config_.sparse) continue;
          // Non-stored suffixes inside the leading run: skip delta
          // symbols (D_tw-lb2, Definition 4).
          const Value first_lb = model_.OccurrenceFirstLb(occ);
          const Pos max_delta = std::min<Pos>(occ.run - 1, depth - 1);
          for (Pos delta = 1; delta <= max_delta; ++delta) {
            const Value lb2 = dtw::LowerBound2(dist, delta, first_lb);
            if (lb2 <= Eps()) {
              PostProcess(occ.seq, occ.pos + delta, depth - delta);
            }
          }
        }
      }
    }

    /// Exact verification of one candidate subsequence via the model's
    /// cascade; reports the match when it is within the threshold.
    void PostProcess(SeqId seq, Pos start, Pos len) {
      ++stats_.candidates;
      Value d = 0.0;
      if (!model_.VerifyExact(seq, start, len, Eps(), &stats_, &d)) return;
      Report({seq, start, len, d});
    }

    void Report(const Match& m) { collector_.Report(m, &answers_); }

    const DriverConfig& config_;
    Model model_;  // Worker-private copy: carries verification scratch.
    QueryContext& ctx_;
    ResultCollector& collector_;
    dtw::WarpingTable table_;
    std::vector<OccurrenceRec> occ_buf_;
    suffixtree::SubtreeScratch occ_scratch_;
    std::vector<Frame> frames_;
    // Per-depth children buffers, reused across the whole traversal so
    // the hot path performs no per-node allocations once warmed up.
    std::vector<Children> children_stack_;
    std::vector<Match> answers_;
    SearchStats stats_;
  };

  /// Splits the traversal into branch tasks. Level 0 is one task per root
  /// edge; while the task count is under `target` the shallowest subtree
  /// tasks are split into an edge-only task plus one subtree task per
  /// child edge (prefix extended by the split edge's label). Enumeration
  /// only reads tree topology — no distance work happens here.
  std::vector<BranchTask> EnumerateTasks(std::size_t target) const {
    const suffixtree::TreeView& tree = *config_.tree;
    Children children;
    tree.GetChildren(tree.Root(), &children);
    std::vector<BranchTask> tasks;
    tasks.reserve(children.edges.size());
    for (std::uint32_t i = 0; i < children.edges.size(); ++i) {
      BranchTask t;
      t.node = tree.Root();
      t.edge_index = i;
      t.first_lb = model_.FirstRowLb(children.FirstSymbol(children.edges[i]));
      tasks.push_back(std::move(t));
    }

    constexpr int kMaxSplitDepth = 3;
    Children child_children;
    for (int depth = 0; depth < kMaxSplitDepth && tasks.size() < target;
         ++depth) {
      std::vector<BranchTask> next;
      next.reserve(tasks.size() * 2);
      bool split_any = false;
      for (BranchTask& t : tasks) {
        if (!t.descend) {
          next.push_back(std::move(t));
          continue;
        }
        tree.GetChildren(t.node, &children);
        const Children::Edge& edge = children.edges[t.edge_index];
        tree.GetChildren(edge.child, &child_children);
        if (child_children.edges.empty()) {
          next.push_back(std::move(t));
          continue;
        }
        split_any = true;
        std::vector<Symbol> child_prefix = t.prefix;
        const std::span<const Symbol> label = children.Label(edge);
        child_prefix.insert(child_prefix.end(), label.begin(), label.end());
        for (std::uint32_t j = 0; j < child_children.edges.size(); ++j) {
          BranchTask sub;
          sub.prefix = child_prefix;
          sub.node = edge.child;
          sub.edge_index = j;
          sub.first_lb = t.first_lb;
          next.push_back(std::move(sub));
        }
        // The edge rows themselves (emission + pruning along the label)
        // stay with the original task, which no longer descends.
        t.descend = false;
        next.push_back(std::move(t));
      }
      tasks = std::move(next);
      if (!split_any) break;
    }
    return tasks;
  }

  const DriverConfig& config_;
  const Model& model_;
};

/// Convenience wrapper: builds the per-query context (envelope slot left
/// to the caller via `ctx`), runs the driver, and returns the sorted
/// answers. `epsilon` is ignored when knn_k > 0 (the threshold starts at
/// +infinity and shrinks to the k-th best distance).
template <typename Model>
std::vector<Match> RunSearchDriver(const DriverConfig& config,
                                   const Model& model, QueryContext* ctx,
                                   SearchStats* stats) {
  return SearchDriver<Model>(config, model).Run(ctx, stats);
}

}  // namespace tswarp::core

#endif  // TSWARP_CORE_SEARCH_DRIVER_H_
