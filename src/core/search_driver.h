#ifndef TSWARP_CORE_SEARCH_DRIVER_H_
#define TSWARP_CORE_SEARCH_DRIVER_H_

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <memory>
#include <mutex>
#include <span>
#include <thread>
#include <utility>
#include <vector>

#include "common/cancellation.h"
#include "common/logging.h"
#include "common/task_scheduler.h"
#include "common/types.h"
#include "core/match.h"
#include "core/result_collector.h"
#include "dtw/envelope.h"
#include "dtw/simd.h"
#include "dtw/warping_table.h"
#include "suffixtree/node_summary.h"
#include "suffixtree/tree_view.h"

namespace tswarp::core {

/// The branch-and-bound DFS shared by every suffix-tree similarity search
/// in the system. The paper's three algorithms (SimSearch-ST, -ST_C,
/// -SST_C) and the Section 8 multivariate extension are one traversal with
/// different per-row distance rules; SearchDriver<Model> is that traversal,
/// and the rules live in a small *distance model*:
///
///   struct Model {
///     /// Rows are exact distances: LastColumn() is already D_tw and
///     /// matches are emitted without a verification pass. false for
///     /// every lower-bound filter model.
///     static constexpr bool kExactRows;
///
///     /// FirstRowLb: D_base-lb(Q[1], symbol) — the first-row lower bound
///     /// fixed at the root branch (Definition 4). Feeds the sparse
///     /// pruning discount (MaxRun-1) * FirstRowLb and the D_tw-lb2
///     /// recovery of non-stored suffixes.
///     Value FirstRowLb(Symbol s) const;
///
///     /// RowStep: appends the cumulative-table row for one edge symbol
///     /// (exact base distances, category-interval D_tw-lb rows, or
///     /// multivariate grid-cell bounds).
///     void RowStep(dtw::WarpingTable* table, Symbol s) const;
///
///     /// SparseDiscount input for one occurrence: the first-symbol lower
///     /// bound of the *stored* suffix at occ, recomputed from the raw
///     /// data (D_tw-lb2, Definition 4). Only called when
///     /// DriverConfig::sparse.
///     Value OccurrenceFirstLb(const suffixtree::OccurrenceRec& occ) const;
///
///     /// VerifyExact: the exact verification cascade for one candidate
///     /// subsequence (endpoint screen, envelope lower bounds, exact
///     /// kernel). Returns true iff the candidate's exact distance is
///     /// <= eps, setting *distance; bumps the cascade counters in
///     /// *stats. Never called when kExactRows. Models carry their own
///     /// scratch, so VerifyExact may be non-const; the driver copies the
///     /// model prototype once per executing thread.
///     bool VerifyExact(SeqId seq, Pos start, Pos len, Value eps,
///                      SearchStats* stats, Value* distance);
///   };
///
/// Four instantiations cover the repo: ExactModel (symbol values),
/// CategoryModel (D_tw-lb intervals), SparseCategoryModel (D_tw-lb +
/// D_tw-lb2 recovery), and the multivariate GridCellModel. One kernel
/// means every capability — Theorem-1 pruning, the work-stealing parallel
/// engine, k-NN branch-and-bound, Sakoe-Chiba bands, the envelope cascade
/// — reaches all of them at once.
struct DriverConfig {
  const suffixtree::TreeView* tree = nullptr;

  /// Query length in elements (table width). For multivariate queries this
  /// is the element count, not the flattened value count.
  std::size_t query_length = 0;

  /// Raw univariate query values (length == query_length), bound to each
  /// worker's table so models can use the typed SIMD row-step paths
  /// (PushRowValue / PushRowInterval). Empty for multivariate queries,
  /// whose base distances are not derivable from a Value span.
  std::span<const Value> query = {};

  /// Expected DFS depth (rows simultaneously live in a worker's table);
  /// pre-sizes the table's cell storage. 0 = use the table's default.
  std::size_t depth_hint = 0;

  /// Sparse tree (SST_C): discount the Theorem-1 bound by
  /// (MaxRun-1) * FirstRowLb and recover non-stored suffixes via D_tw-lb2.
  bool sparse = false;

  /// Theorem-1 branch pruning; disable only for the R_p ablation.
  bool prune = true;

  /// Sakoe-Chiba band (0 = unconstrained, the paper's setting). Rejected
  /// on sparse trees: the D_tw-lb2 shift argument does not hold once the
  /// band moves with the dropped leading symbols.
  Pos band = 0;

  /// Parallelism for one search. 0 = fully serial (single-table DFS, no
  /// scheduler involvement); >= 1 ensures the process-wide work-stealing
  /// scheduler has at least that many persistent workers and runs the
  /// traversal on it with lazy task splitting — the DFS owner splits off
  /// unexplored sibling edges only when an idle thread asks. No OS thread
  /// is created per search once the scheduler is warm. Results are
  /// identical to serial for both range and k-NN searches (see
  /// docs/parallel_search.md).
  std::size_t num_threads = 0;

  /// Cooperative cancellation: when non-null every worker polls the token
  /// every kCancelPollRows rows/candidates and abandons its traversal once
  /// it expires, marking SearchStats::cancelled. Reported matches stay
  /// exact — stopping early can only drop answers, never fabricate or
  /// falsely dismiss one among the work actually completed — and the
  /// scheduler, arenas, and collector remain reusable afterwards (queued
  /// branch tasks still run; they just return immediately).
  const CancelToken* cancel = nullptr;

  /// Added to every reported Match::seq. Tiered searches run one driver
  /// per tier over tier-local sequence ids (the tier's own database
  /// fragment); the offset rebases matches to global ids at report time,
  /// so the shared collector's ordering and k-NN tie-breaks see the same
  /// ids a monolithic index would produce. Occurrence ids stay tier-local
  /// throughout the traversal and verification (database lookups).
  SeqId seq_base = 0;

  /// Node summaries of `tree`, indexed by NodeId (empty = no summary
  /// pre-filter). When present (and the model supports them), every edge
  /// is screened against the child's subtree hulls before any row is
  /// pushed: if the summary lower bound already exceeds the threshold,
  /// the whole subtree is skipped with zero GetChildren/row-step work.
  /// A true lower bound for every candidate below the edge, so results
  /// stay byte-identical (see docs/algorithms.md "Node-summary bound").
  std::span<const suffixtree::NodeSummaryRecord> summaries = {};

  /// Scales the summary bound before comparing against epsilon: the
  /// recall dial. 1.0 (default) is exact — the multiply is an IEEE
  /// identity, results are byte-identical to summaries-off. Values > 1
  /// prune more aggressively; the result is always a subset of the exact
  /// answer (bounds are only ever inflated, never deflated), with recall
  /// measured by bench/ablation_sketch. Must be >= 1.
  Value approx_factor = 1.0;
};

/// Per-query shared state, owned for the query's whole lifetime: the
/// shrinking threshold and result set (collector), the merged traversal
/// stats, and the query envelope slot of the univariate lower-bound
/// cascade. Models with a different envelope type (the multivariate
/// per-dimension set) own theirs alongside the context. `stats` is
/// written only single-threaded: serially, or at join time when the
/// per-thread worker slots are drained — no mutex on the merge path.
class QueryContext {
 public:
  QueryContext(Value epsilon, std::size_t knn_k)
      : collector(epsilon, knn_k) {}

  QueryContext(const QueryContext&) = delete;
  QueryContext& operator=(const QueryContext&) = delete;

  /// Query envelope of the univariate lower-bound cascade; non-null iff
  /// the cascade is active for this search. Built once per query (it
  /// depends only on (query, band)) and shared read-only by every worker.
  std::unique_ptr<const dtw::QueryEnvelope> envelope;

  ResultCollector collector;

  /// Merged traversal stats. Serial searches write it directly; parallel
  /// searches merge the per-thread worker slots into it after the task
  /// scope joins, so no concurrent access ever happens.
  SearchStats stats;
};

/// One unit of parallel work: process edges [edge_lo, edge_hi) of `node`
/// — push their label rows, emit candidates, prune — and every subtree
/// below them. `prefix` holds the symbols on the root-to-`node` path
/// (nullptr = the node is the root); an executing thread replays them
/// into its table (no emission: those rows were already evaluated by the
/// task that split this one off) so depths, the Sakoe-Chiba band, and
/// Theorem-1 pruning see the true distance table. The prefix buffer is
/// shared, never copied per task: a split at the task's own start node
/// reuses the parent task's buffer, and deeper splits materialize one new
/// buffer from the live frame stack.
struct BranchTask {
  static constexpr std::uint32_t kAllEdges =
      std::numeric_limits<std::uint32_t>::max();

  std::shared_ptr<const std::vector<Symbol>> prefix;
  suffixtree::NodeId node = 0;
  std::uint32_t edge_lo = 0;
  std::uint32_t edge_hi = kAllEdges;
  /// D_base-lb(Q[1], first path symbol), fixed at the root branch
  /// (Definition 4); only read when `prefix` is non-empty.
  Value first_lb = 0.0;
};

/// Reusable per-thread worker arena: the cumulative warping table (the
/// dominant allocation — depth_hint * |Q| cells) plus the traversal
/// buffers. Arenas are cached per thread keyed by the table shape, so a
/// batch of same-length queries reuses warm tables across queries and
/// the hot path performs no allocations once the cache is primed.
struct SearchArena {
  SearchArena(std::size_t query_length, Pos band, std::size_t depth_hint)
      : table(query_length, band, depth_hint),
        key_query_length(query_length),
        key_band(band),
        key_depth_hint(depth_hint) {}

  bool Matches(std::size_t query_length, Pos band,
               std::size_t depth_hint) const {
    return key_query_length == query_length && key_band == band &&
           key_depth_hint == depth_hint;
  }

  dtw::WarpingTable table;
  std::vector<suffixtree::OccurrenceRec> occ_buf;
  suffixtree::SubtreeScratch occ_scratch;
  // Per-depth children buffers, reused across traversals so descending
  // performs no per-node allocations once warmed up.
  std::vector<suffixtree::Children> children_stack;

  std::size_t key_query_length;
  Pos key_band;
  std::size_t key_depth_hint;
};

namespace internal {

/// Thread-local arena cache shared by Acquire/Release below. A handful of
/// entries suffices: distinct shapes in flight on one thread are rare
/// (different query lengths in one interleaved batch).
inline constexpr std::size_t kMaxCachedArenas = 4;

inline std::vector<std::unique_ptr<SearchArena>>& ThreadArenaCache() {
  thread_local std::vector<std::unique_ptr<SearchArena>> cache;
  return cache;
}

}  // namespace internal

/// Pops a shape-matching arena from the calling thread's cache, or builds
/// a fresh one. Each thread touches only its own cache: no locks, and an
/// arena is only ever used by the thread that acquired it.
inline std::unique_ptr<SearchArena> AcquireSearchArena(
    std::size_t query_length, Pos band, std::size_t depth_hint) {
  auto& cache = internal::ThreadArenaCache();
  for (auto it = cache.begin(); it != cache.end(); ++it) {
    if ((*it)->Matches(query_length, band, depth_hint)) {
      std::unique_ptr<SearchArena> arena = std::move(*it);
      cache.erase(it);
      return arena;
    }
  }
  return std::make_unique<SearchArena>(query_length, band, depth_hint);
}

/// Returns an arena to the calling thread's cache, evicting the oldest
/// entry beyond the cap.
inline void ReleaseSearchArena(std::unique_ptr<SearchArena> arena) {
  auto& cache = internal::ThreadArenaCache();
  if (cache.size() >= internal::kMaxCachedArenas) cache.erase(cache.begin());
  cache.push_back(std::move(arena));
}

template <typename Model>
class SearchDriver {
 public:
  /// `config` and `model` must outlive the driver; `model` is the
  /// prototype copied once per executing thread (copies carry the
  /// per-thread verification scratch).
  SearchDriver(const DriverConfig& config, const Model& model)
      : config_(config), model_(model) {
    TSW_CHECK(config.tree != nullptr);
    TSW_CHECK(config.query_length > 0);
    TSW_CHECK(config.approx_factor >= 1.0)
        << "approx_factor scales the summary lower bound up; values below "
           "1 would deflate a bound and fabricate false dismissals";
    TSW_CHECK(config.summaries.empty() ||
              config.summaries.size() == config.tree->NumNodes())
        << "node summaries must cover every tree node";
    TSW_CHECK(!(config.sparse && config.band != 0))
        << "banded search is unsupported on sparse indexes: the D_tw-lb2 "
           "shift argument does not hold once the band moves with the "
           "dropped leading symbols (build a dense index instead)";
  }

  /// Runs the traversal against `ctx` and drains this driver's answers
  /// into the shared collector and its traversal counters into
  /// `*stats_sink` — without consuming the collector. Tiered searches
  /// call RunInto once per tier against one shared QueryContext (one
  /// shrinking epsilon across tiers) with per-tier stats sinks, then
  /// Take() the merged result once; each sink is written only by this
  /// call, so concurrent per-tier drivers never touch shared stats.
  void RunInto(QueryContext* ctx, SearchStats* stats_sink) {
    if (config_.num_threads == 0) {
      Worker worker(config_, model_, ctx, /*parallel=*/false);
      BranchTask root;
      root.node = config_.tree->Root();
      worker.RunTask(root, nullptr);
      worker.Drain(stats_sink);
    } else {
      TaskScheduler& scheduler = TaskScheduler::Get();
      scheduler.EnsureWorkers(config_.num_threads);
      const std::uint64_t probes_before = scheduler.steal_attempts();
      ParallelState par(config_, model_, ctx);
      BranchTask root;
      root.node = config_.tree->Root();
      par.Submit(std::move(root));
      par.scope.Wait();  // Rethrows the first task exception, if any.
      par.DrainAll(stats_sink);
      stats_sink->tasks_executed += par.scope.tasks_executed();
      stats_sink->tasks_stolen += par.scope.tasks_stolen();
      // Process-wide probe delta over the query window; concurrent
      // unrelated searches share the counter (documented in match.h).
      stats_sink->steal_attempts +=
          scheduler.steal_attempts() - probes_before;
    }
  }

  /// Runs the search against `ctx` (freshly constructed for this query)
  /// and returns the sorted answers; fills *stats when non-null.
  std::vector<Match> Run(QueryContext* ctx, SearchStats* stats) {
    RunInto(ctx, &ctx->stats);
    std::vector<Match> answers = ctx->collector.Take();
    ctx->stats.answers = answers.size();
    if (stats != nullptr) *stats = ctx->stats;
    return answers;
  }

 private:
  using Children = suffixtree::Children;
  using NodeId = suffixtree::NodeId;
  using OccurrenceRec = suffixtree::OccurrenceRec;

  struct ParallelState;

  /// Per-(query, executing thread) search state: a private model copy
  /// (verification scratch), private stats, an epsilon cache, and (range
  /// mode) a private answer vector published once at drain. The heavy
  /// arena (table + traversal buffers) is borrowed from the thread-local
  /// cache for each task, so it is reused across queries, not just across
  /// this query's tasks. Serial searches use one worker and therefore
  /// identical semantics.
  class Worker {
   public:
    Worker(const DriverConfig& config, const Model& prototype,
           QueryContext* ctx, bool parallel)
        : config_(config),
          model_(prototype),
          collector_(ctx->collector),
          eps_mode_(!ctx->collector.knn() ? EpsMode::kFixed
                    : parallel            ? EpsMode::kCached
                                          : EpsMode::kExact),
          eps_cache_(ctx->collector.epsilon()),
          use_summaries_(Model::kSupportsSummaries &&
                         !config.summaries.empty() && !config.query.empty()) {}

    /// Executes one branch task: replay the prefix, then traverse the
    /// edge range. `par` enables lazy splitting (nullptr = serial).
    void RunTask(const BranchTask& task, ParallelState* par) {
      if (config_.cancel != nullptr &&
          (cancel_seen_ || config_.cancel->Expired())) {
        // The query is already dead: skip the prefix replay and the whole
        // span. Queued tasks drain through here, leaving the scheduler
        // free for the next query immediately.
        cancel_seen_ = true;
        stats_.cancelled = 1;
        return;
      }
      std::unique_ptr<SearchArena> arena = AcquireSearchArena(
          config_.query_length, config_.band, ResolvedDepthHint());
      struct Return {  // Release even if a model verification throws.
        std::unique_ptr<SearchArena>& a;
        ~Return() { ReleaseSearchArena(std::move(a)); }
      } release{arena};
      dtw::WarpingTable& table = arena->table;
      table.Reset();
      if (!config_.query.empty()) table.BindQuery(config_.query);
      const std::uint64_t cells_before = table.cells_computed();
      // The prefix value hull restarts per task; the replay below widens
      // it to the hull of the replayed path, exactly as the splitting
      // task's own pushes did (BranchTask carries no hull state).
      path_lo_ = std::numeric_limits<Value>::infinity();
      path_hi_ = -std::numeric_limits<Value>::infinity();
      if (task.prefix != nullptr) {
        for (const Symbol sym : *task.prefix) {
          model_.RowStep(&table, sym);
          WidenPathHull(sym);
          ++stats_.replayed_rows;
        }
      }
      RunSpan(*arena, task, par);
      stats_.cells_computed += table.cells_computed() - cells_before;
    }

    /// Publishes this worker's answers into the shared collector and its
    /// stats into `*sink`. Called single-threaded (serially, or after the
    /// scope joined).
    void Drain(SearchStats* sink) {
      collector_.DrainRange(&answers_);
      sink->Merge(stats_);
    }

   private:
    /// Refresh the cached k-NN epsilon from the shared atomic once per
    /// this many Eps() polls. Staleness only loosens pruning (the shared
    /// threshold shrinks monotonically), never correctness.
    static constexpr std::uint32_t kEpsRefreshPolls = 64;

    /// Consult the CancelToken once per this many abort polls (rows
    /// pushed / candidates expanded). Each row costs O(|Q|) cells, so the
    /// reaction latency is tens of row computations — milliseconds — while
    /// the steady-state cost is one counter increment per row.
    static constexpr std::uint32_t kCancelPollRows = 32;

    enum class EpsMode {
      kFixed,   // Range mode: the threshold never changes — no loads.
      kExact,   // Serial k-NN: always read the shared atomic.
      kCached,  // Parallel k-NN: cached, refreshed periodically.
    };

    struct Frame {
      NodeId node;
      Value first_lb;          // Inherited branch first-symbol lower bound.
      std::size_t edge = 0;    // Next edge index to process.
      std::size_t pushed = 0;  // Rows pushed for the edge being descended.
      std::size_t limit = 0;   // One past the last edge this task owns.
      // Prefix value hull snapshot at frame entry. Popping a descended
      // edge's rows returns the table to this frame's entry state, so the
      // running hull is restored from here at the same points PopRows runs.
      Value hull_lo = std::numeric_limits<Value>::infinity();
      Value hull_hi = -std::numeric_limits<Value>::infinity();
    };

    std::size_t ResolvedDepthHint() const {
      return config_.depth_hint != 0 ? config_.depth_hint
                                     : dtw::WarpingTable::kDefaultDepthHint;
    }

    /// The cooperative abort poll. Latches the first expiry into
    /// cancel_seen_ (and the stats) so later polls are one branch.
    bool ShouldAbort() {
      if (config_.cancel == nullptr) return false;
      if (cancel_seen_) return true;
      if (++cancel_polls_ < kCancelPollRows) return false;
      cancel_polls_ = 0;
      if (!config_.cancel->Expired()) return false;
      cancel_seen_ = true;
      stats_.cancelled = 1;
      return true;
    }

    Value Eps() {
      switch (eps_mode_) {
        case EpsMode::kFixed:
          return eps_cache_;
        case EpsMode::kExact:
          return collector_.epsilon();
        case EpsMode::kCached:
          if (++eps_polls_ >= kEpsRefreshPolls) {
            eps_polls_ = 0;
            eps_cache_ = collector_.epsilon();
          }
          return eps_cache_;
      }
      return eps_cache_;
    }

    Children& ChildrenAt(SearchArena& arena, std::size_t depth) {
      if (arena.children_stack.size() <= depth) {
        arena.children_stack.resize(depth + 1);
      }
      return arena.children_stack[depth];
    }

    void PushFrame(SearchArena& arena, NodeId node, Value first_lb,
                   std::size_t edge_lo, std::size_t edge_hi) {
      // A node's visit is attributed to the task starting at its first
      // edge, so nodes split across branch tasks are still counted once.
      if (edge_lo == 0) ++stats_.nodes_visited;
      frames_.push_back({node, first_lb, edge_lo, 0, 0, path_lo_, path_hi_});
      Children& children = ChildrenAt(arena, frames_.size() - 1);
      config_.tree->GetChildren(node, &children);
      frames_.back().limit = std::min(edge_hi, children.edges.size());
    }

    /// Builds the root-to-node prefix of frame `i` for a split task: the
    /// current task's prefix plus the labels of the edges this traversal
    /// descended through below it. Frame 0 shares the current buffer
    /// outright — no copy.
    std::shared_ptr<const std::vector<Symbol>> MaterializePrefix(
        const SearchArena& arena, std::size_t i) const {
      if (i == 0) return current_prefix_;
      auto out = std::make_shared<std::vector<Symbol>>();
      std::size_t total =
          current_prefix_ != nullptr ? current_prefix_->size() : 0;
      for (std::size_t j = 0; j < i; ++j) {
        const Children& c = arena.children_stack[j];
        total += c.Label(c.edges[frames_[j].edge]).size();
      }
      out->reserve(total);
      if (current_prefix_ != nullptr) {
        out->insert(out->end(), current_prefix_->begin(),
                    current_prefix_->end());
      }
      for (std::size_t j = 0; j < i; ++j) {
        const Children& c = arena.children_stack[j];
        const std::span<const Symbol> label =
            c.Label(c.edges[frames_[j].edge]);
        out->insert(out->end(), label.begin(), label.end());
      }
      return out;
    }

    /// Lazy split: hand an idle thread the unexplored sibling edges of
    /// the *shallowest* frame that still has any — the largest chunk of
    /// remaining work, one task, one GetChildren-free handoff. The
    /// owner's frame is truncated so every edge stays owned by exactly
    /// one task; replay cost is paid only on this actual steal.
    void TrySplit(SearchArena& arena, ParallelState* par) {
      for (std::size_t i = 0; i < frames_.size(); ++i) {
        Frame& f = frames_[i];
        if (f.edge + 1 >= f.limit) continue;
        BranchTask task;
        task.prefix = MaterializePrefix(arena, i);
        task.node = f.node;
        task.edge_lo = static_cast<std::uint32_t>(f.edge + 1);
        task.edge_hi = static_cast<std::uint32_t>(f.limit);
        task.first_lb = f.first_lb;
        f.limit = f.edge + 1;
        par->Submit(std::move(task));
        return;
      }
    }

    /// Iterative DFS over the task's edge range; every deeper node is
    /// traversed in full (unless split off to a thief mid-walk).
    void RunSpan(SearchArena& arena, const BranchTask& task,
                 ParallelState* par) {
      dtw::WarpingTable& table = arena.table;
      frames_.clear();
      current_prefix_ = task.prefix;
      PushFrame(arena, task.node, task.first_lb, task.edge_lo, task.edge_hi);
      while (!frames_.empty()) {
        // The lazy-split poll: one relaxed load per DFS step. Only when
        // some thread is idle does the owner materialize a task.
        if (par != nullptr && par->scope.WantsWork()) TrySplit(arena, par);
        Frame& f = frames_.back();
        Children& children = ChildrenAt(arena, frames_.size() - 1);
        if (f.edge >= f.limit) {
          frames_.pop_back();
          if (!frames_.empty()) {
            table.PopRows(frames_.back().pushed);
            path_lo_ = frames_.back().hull_lo;
            path_hi_ = frames_.back().hull_hi;
            frames_.back().pushed = 0;
            ++frames_.back().edge;
          }
          continue;
        }

        const Children::Edge& edge = children.edges[f.edge];
        const std::span<const Symbol> label = children.Label(edge);
        // Node-summary screen: decide from the precomputed subtree hulls
        // whether any candidate below this edge can beat the threshold,
        // before a single row of the edge's label is stepped.
        if (use_summaries_ && SummaryPrune(edge.child, table.NumRows())) {
          ++f.edge;
          continue;
        }
        const bool at_root = table.Empty();
        Value branch_first_lb = f.first_lb;
        if (at_root) branch_first_lb = model_.FirstRowLb(label.front());
        // The sparse pruning discount: a non-stored suffix under this
        // branch may skip up to MaxRun-1 leading symbols, each worth at
        // most first_lb of distance (Definition 4).
        Value discount = 0.0;
        if (config_.sparse) {
          const Pos max_run = config_.tree->MaxRun(edge.child);
          if (max_run > 1) {
            discount = static_cast<Value>(max_run - 1) * branch_first_lb;
          }
        }

        std::size_t pushed = 0;
        bool descend = true;
        // Occurrences below this edge are the same at every depth along
        // it; collect them at most once per edge.
        arena.occ_buf.clear();
        bool occ_collected = false;
        for (const Symbol sym : label) {
          if (ShouldAbort()) {
            // Deadline/cancel fired: abandon the whole span. The arena is
            // released by RunTask's guard and Reset on its next use, so
            // no unwinding of pushed rows is needed.
            frames_.clear();
            return;
          }
          model_.RowStep(&table, sym);
          WidenPathHull(sym);
          ++pushed;
          ++stats_.rows_pushed;
          stats_.unshared_rows += config_.tree->SubtreeOccCount(edge.child);
          const Value dist = table.LastColumn();
          if (dist <= Eps() ||
              (config_.sparse && dist - discount <= Eps())) {
            if (!occ_collected) {
              config_.tree->CollectSubtreeOccurrences(
                  edge.child, &arena.occ_buf, &arena.occ_scratch);
              occ_collected = true;
            }
            EmitCandidates(arena, dist);
          }
          if (config_.prune && table.RowMin() - discount > Eps()) {
            // Theorem 1: no extension can recover. Skip the rest of this
            // edge and the whole subtree.
            ++stats_.branches_pruned;
            descend = false;
            break;
          }
        }
        if (descend) {
          f.pushed = pushed;
          PushFrame(arena, edge.child, branch_first_lb, 0,
                    std::numeric_limits<std::size_t>::max());
        } else {
          table.PopRows(pushed);
          path_lo_ = f.hull_lo;
          path_hi_ = f.hull_hi;
          ++f.edge;
        }
      }
    }

    /// A prefix of depth NumRows() matched with filter distance `dist`:
    /// expand the pre-collected subtree occurrences (arena.occ_buf) into
    /// answers (exact-row models) or verified candidates (lower-bound
    /// models).
    void EmitCandidates(SearchArena& arena, Value dist) {
      const auto depth = static_cast<Pos>(arena.table.NumRows());
      for (const OccurrenceRec& occ : arena.occ_buf) {
        // One emission can verify thousands of candidates (every stored
        // suffix below the edge); poll here too so a deadline interrupts
        // the verification cascade, not just the traversal. The caller's
        // label loop sees the latched flag on its next row.
        if (ShouldAbort()) return;
        if constexpr (Model::kExactRows) {
          if (dist <= Eps()) {
            ++stats_.candidates;
            Report({occ.seq, occ.pos, depth, dist});
          }
          continue;
        } else {
          // Stored suffix: subsequence S[occ.pos : occ.pos+depth-1].
          if (dist <= Eps()) PostProcess(occ.seq, occ.pos, depth);
          if (!config_.sparse) continue;
          // Non-stored suffixes inside the leading run: skip delta
          // symbols (D_tw-lb2, Definition 4).
          const Value first_lb = model_.OccurrenceFirstLb(occ);
          const Pos max_delta = std::min<Pos>(occ.run - 1, depth - 1);
          for (Pos delta = 1; delta <= max_delta; ++delta) {
            const Value lb2 = dtw::LowerBound2(dist, delta, first_lb);
            if (lb2 <= Eps()) {
              PostProcess(occ.seq, occ.pos + delta, depth - delta);
            }
          }
        }
      }
    }

    /// Exact verification of one candidate subsequence via the model's
    /// cascade; reports the match when it is within the threshold.
    void PostProcess(SeqId seq, Pos start, Pos len) {
      ++stats_.candidates;
      Value d = 0.0;
      if (!model_.VerifyExact(seq, start, len, Eps(), &stats_, &d)) return;
      Report({seq, start, len, d});
    }

    /// Folds one path symbol's value hull into the running prefix hull.
    /// Called after every RowStep (replay and label walk alike) so the
    /// hull always covers exactly the rows live in the table. Compiled
    /// out for models without symbol hulls (multivariate).
    void WidenPathHull([[maybe_unused]] Symbol sym) {
      if constexpr (Model::kSupportsSummaries) {
        if (!use_summaries_) return;
        const auto iv = model_.SymbolHull(sym);
        path_lo_ = std::min(path_lo_, iv.lb);
        path_hi_ = std::max(path_hi_, iv.ub);
      }
    }

    /// The node-summary screen for the edge into `child`, evaluated at
    /// prefix depth `depth` (rows live in the table). Every candidate
    /// below the edge draws its elements from the prefix path, the
    /// edge's label, and the child's subtree — so each query element
    /// must align with *some* value inside one of those hulls, and
    /// sum_i min_hull IntervalDist(Q[i], hull) lower-bounds D_tw for
    /// all of them at once (docs/algorithms.md "Node-summary bound";
    /// the subset argument covers sparse dropped-prefix candidates).
    /// Returns true to skip the edge and its whole subtree.
    bool SummaryPrune(NodeId child, std::size_t depth) {
      const suffixtree::NodeSummaryRecord& rec = config_.summaries[child];
      // Banded length screen: a Sakoe-Chiba band makes any candidate
      // shorter than |Q| - band infinitely distant (no legal warping
      // path reaches the final cell). The longest candidate below this
      // edge has depth + max_depth elements.
      if (config_.band != 0 &&
          static_cast<std::uint64_t>(depth) + rec.max_depth + config_.band <
              config_.query_length) {
        ++stats_.nodes_pruned_by_summary;
        return true;
      }
      ++stats_.summary_lb_invocations;
      // Up to 6 hulls: prefix path, subtree, and the <= 4 label
      // segments. Empty hulls (lo > hi sentinels) are dropped; float
      // seg/sub bounds widen exactly to double.
      constexpr std::size_t kMaxHulls =
          2 + suffixtree::NodeSummaryRecord::kMaxLabelSegments;
      Value lo[kMaxHulls];
      Value hi[kMaxHulls];
      std::size_t k = 0;
      if (path_lo_ <= path_hi_) {
        lo[k] = path_lo_;
        hi[k] = path_hi_;
        ++k;
      }
      if (rec.sub_lo <= rec.sub_hi) {
        lo[k] = rec.sub_lo;
        hi[k] = rec.sub_hi;
        ++k;
      }
      for (std::uint32_t s = 0; s < rec.label_segments; ++s) {
        lo[k] = rec.seg_lo[s];
        hi[k] = rec.seg_hi[s];
        ++k;
      }
      if (k == 0) return false;  // Degenerate record: nothing to bound.
      // Same slackened threshold as the envelope cascade, so FP drift
      // between the bound and the exact kernel cannot dismiss a boundary
      // candidate. The cap only lets the kernel abandon early — the
      // returned partial sum is still a lower bound, and the decision
      // below re-tests it against the same cut.
      const Value cut = dtw::LbPruneThreshold(Eps());
      const Value lb = dtw::simd::Kernels().summary_lb(
          config_.query.data(), lo, hi, k, config_.query_length,
          cut / config_.approx_factor);
      if (lb * config_.approx_factor > cut) {
        ++stats_.nodes_pruned_by_summary;
        return true;
      }
      return false;
    }

    void Report(Match m) {
      // Rebase tier-local sequence ids to global ids before the match
      // enters the shared ordering (range sort and k-NN tie-breaks).
      m.seq += config_.seq_base;
      collector_.Report(m, &answers_);
      // A k-NN report may have shrunk the shared threshold; fold it into
      // the cache immediately so this worker prunes with its own result.
      if (eps_mode_ == EpsMode::kCached) eps_cache_ = collector_.epsilon();
    }

    const DriverConfig& config_;
    Model model_;  // Thread-private copy: carries verification scratch.
    ResultCollector& collector_;
    const EpsMode eps_mode_;
    Value eps_cache_;
    std::uint32_t eps_polls_ = 0;
    std::uint32_t cancel_polls_ = 0;
    bool cancel_seen_ = false;
    // Node-summary screen state: whether this search runs it, and the
    // running value hull of the path rows currently live in the table
    // (empty = +inf/-inf sentinels, matching node_summary.h).
    const bool use_summaries_;
    Value path_lo_ = std::numeric_limits<Value>::infinity();
    Value path_hi_ = -std::numeric_limits<Value>::infinity();
    std::vector<Frame> frames_;
    std::shared_ptr<const std::vector<Symbol>> current_prefix_;
    std::vector<Match> answers_;
    SearchStats stats_;
  };

  /// Parallel bookkeeping for one query: the fork/join scope plus one
  /// Worker per executing thread, created on a thread's first task for
  /// this query and drained single-threaded after the scope joins (the
  /// per-worker stats slots that replace the old stats mutex).
  struct ParallelState {
    ParallelState(const DriverConfig& config, const Model& model,
                  QueryContext* ctx)
        : config(config), model(model), ctx(ctx) {}

    Worker& LocalWorker() {
      const std::thread::id id = std::this_thread::get_id();
      std::lock_guard<std::mutex> lock(mu);
      for (auto& slot : workers) {
        if (slot.first == id) return *slot.second;
      }
      workers.emplace_back(
          id, std::make_unique<Worker>(config, model, ctx, /*parallel=*/true));
      return *workers.back().second;
    }

    void Submit(BranchTask task) {
      scope.Submit([this, task = std::move(task)] {
        LocalWorker().RunTask(task, this);
      });
    }

    void DrainAll(SearchStats* sink) {
      for (auto& slot : workers) slot.second->Drain(sink);
    }

    const DriverConfig& config;
    const Model& model;
    QueryContext* ctx;
    TaskScope scope;
    // Worker slots: appended under `mu` (rare — once per thread per
    // query), iterated without it only after the scope joined.
    std::mutex mu;
    std::vector<std::pair<std::thread::id, std::unique_ptr<Worker>>> workers;
  };

  const DriverConfig& config_;
  const Model& model_;
};

/// Convenience wrapper: builds the per-query context (envelope slot left
/// to the caller via `ctx`), runs the driver, and returns the sorted
/// answers. `epsilon` is ignored when knn_k > 0 (the threshold starts at
/// +infinity and shrinks to the k-th best distance).
template <typename Model>
std::vector<Match> RunSearchDriver(const DriverConfig& config,
                                   const Model& model, QueryContext* ctx,
                                   SearchStats* stats) {
  return SearchDriver<Model>(config, model).Run(ctx, stats);
}

}  // namespace tswarp::core

#endif  // TSWARP_CORE_SEARCH_DRIVER_H_
