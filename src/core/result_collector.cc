#include "core/result_collector.h"

#include <algorithm>

namespace tswarp::core {

bool KnnMatchLess(const Match& a, const Match& b) {
  if (a.distance != b.distance) return a.distance < b.distance;
  return MatchLess(a, b);
}

void ResultCollector::Report(const Match& m, std::vector<Match>* local) {
  if (knn_k_ == 0) {
    local->push_back(m);
    return;
  }
  auto worse = [](const Match& a, const Match& b) {
    return KnnMatchLess(a, b);  // Max-heap under the k-NN total order.
  };
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<Match>& heap = answers_;
  if (heap.size() < knn_k_) {
    heap.push_back(m);
    std::push_heap(heap.begin(), heap.end(), worse);
  } else if (KnnMatchLess(m, heap.front())) {
    std::pop_heap(heap.begin(), heap.end(), worse);
    heap.back() = m;
    std::push_heap(heap.begin(), heap.end(), worse);
  } else {
    return;
  }
  if (heap.size() == knn_k_) {
    epsilon_.store(heap.front().distance, std::memory_order_relaxed);
  }
}

void ResultCollector::DrainRange(std::vector<Match>* local) {
  if (knn_k_ > 0) return;
  std::lock_guard<std::mutex> lock(mu_);
  answers_.insert(answers_.end(), local->begin(), local->end());
}

std::vector<Match> ResultCollector::Take() {
  std::vector<Match> answers = std::move(answers_);
  if (knn_k_ > 0) {
    std::sort(answers.begin(), answers.end(), KnnMatchLess);
  } else {
    std::sort(answers.begin(), answers.end(), MatchLess);
  }
  return answers;
}

}  // namespace tswarp::core
