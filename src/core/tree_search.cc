#include "core/tree_search.h"

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <limits>
#include <memory>
#include <mutex>
#include <utility>

#include "common/logging.h"
#include "common/thread_pool.h"
#include "dtw/base.h"
#include "dtw/dtw.h"
#include "dtw/envelope.h"
#include "dtw/warping_table.h"

namespace tswarp::core {
namespace {

using suffixtree::Children;
using suffixtree::NodeId;
using suffixtree::OccurrenceRec;

/// Total order used by k-NN branch-and-bound: primary key distance,
/// deterministic (seq, start, len) tie-break. With this order the k best
/// matches are a unique set, so serial and parallel searches agree even
/// when ties straddle the k-th position.
bool KnnLess(const Match& a, const Match& b) {
  if (a.distance != b.distance) return a.distance < b.distance;
  return MatchLess(a, b);
}

void ValidateConfig(const TreeSearchConfig& config,
                    std::span<const Value> query) {
  TSW_CHECK(config.tree != nullptr);
  TSW_CHECK(!query.empty());
  TSW_CHECK(!(config.sparse && config.band != 0))
      << "banded search is unsupported on sparse indexes: the D_tw-lb2 "
         "shift argument does not hold once the band moves with the "
         "dropped leading symbols (build a dense ST_C index instead)";
  if (config.exact) {
    TSW_CHECK(config.symbol_values != nullptr)
        << "exact mode needs the symbol dictionary";
    TSW_CHECK(!config.sparse) << "sparse trees require lower-bound mode";
  } else {
    TSW_CHECK(config.alphabet != nullptr)
        << "lower-bound mode needs the category alphabet";
    TSW_CHECK(config.db != nullptr)
        << "lower-bound mode needs the raw sequences for post-processing";
  }
}

/// State shared by every worker of one search: the read-only configuration
/// plus the two pieces of cross-worker coordination — the shrinking k-NN
/// threshold (atomic; monotonically non-increasing, so a stale read only
/// weakens pruning, never correctness) and the global result set
/// (mutex-guarded). Serial searches use the same state with one worker and
/// therefore identical semantics.
struct SharedSearchState {
  SharedSearchState(const TreeSearchConfig& config_in,
                    std::span<const Value> query_in, Value epsilon_in,
                    std::size_t knn_k_in)
      : config(config_in),
        query(query_in),
        knn_k(knn_k_in),
        epsilon(knn_k_in > 0 ? kInfinity : epsilon_in) {
    // The envelope depends only on (query, band): build it once and share
    // it read-only across workers. Exact mode has no post-processing, so
    // no candidate ever consults it.
    if (config_in.use_lower_bound && !config_in.exact) {
      envelope = std::make_unique<dtw::QueryEnvelope>(query_in,
                                                      config_in.band);
    }
  }

  const TreeSearchConfig& config;
  const std::span<const Value> query;
  const std::size_t knn_k;

  /// Query envelope of the lower-bound cascade; non-null iff the cascade
  /// is active for this search.
  std::unique_ptr<const dtw::QueryEnvelope> envelope;

  /// Current pruning threshold. Fixed in range mode; in k-NN mode it
  /// shrinks to the k-th best distance found so far.
  std::atomic<Value> epsilon;

  std::mutex mu;
  /// Range mode: concatenated worker answers. k-NN mode: max-heap (by
  /// KnnLess) of the current k best matches. Both guarded by `mu`.
  std::vector<Match> answers;
  SearchStats stats;
};

/// One unit of parallel work: process edge `edge_index` of `node` — push
/// its label rows, emit candidates, prune — and, when `descend`, the whole
/// subtree below it. `prefix` holds the symbols on the root-to-`node` path;
/// a worker replays them into its private table (no emission: the rows were
/// already evaluated by the task owning the ancestor edge) so depths, the
/// Sakoe-Chiba band, and Theorem-1 pruning see the true distance table.
struct BranchTask {
  std::vector<Symbol> prefix;
  NodeId node = 0;
  std::uint32_t edge_index = 0;
  bool descend = true;
  /// D_base-lb(Q[1], first path symbol), fixed at the root branch
  /// (Definition 4); only read when `prefix` is non-empty.
  Value first_lb = 0.0;
};

/// Per-worker search state: a private cumulative table, reusable traversal
/// buffers, private stats, and (range mode) a private answer vector that is
/// appended to the shared state once, when the worker drains.
class SearchWorker {
 public:
  explicit SearchWorker(SharedSearchState* shared)
      : shared_(*shared),
        config_(shared->config),
        query_(shared->query),
        knn_k_(shared->knn_k),
        table_(shared->query, shared->config.band) {}

  /// Serial entry point: the whole traversal from the root.
  void RunWholeTree() {
    RunSpan(config_.tree->Root(), /*first_lb=*/0.0, 0,
            std::numeric_limits<std::size_t>::max(), /*descend_bottom=*/true);
  }

  void RunTask(const BranchTask& task) {
    table_.PopRows(table_.NumRows());
    for (const Symbol sym : task.prefix) {
      PushRow(sym);
      ++stats_.replayed_rows;
    }
    RunSpan(task.node, task.first_lb, task.edge_index, task.edge_index + 1,
            task.descend);
  }

  /// Publishes this worker's answers and stats into the shared state.
  void Drain() {
    stats_.cells_computed = table_.cells_computed();
    std::lock_guard<std::mutex> lock(shared_.mu);
    if (knn_k_ == 0) {
      shared_.answers.insert(shared_.answers.end(), answers_.begin(),
                             answers_.end());
    }
    shared_.stats.Merge(stats_);
  }

 private:
  struct Frame {
    NodeId node;
    Value first_lb;          // Inherited branch first-symbol lower bound.
    std::size_t edge = 0;    // Next edge index to process.
    std::size_t pushed = 0;  // Rows pushed for the edge being descended.
  };

  Value Eps() const {
    return shared_.epsilon.load(std::memory_order_relaxed);
  }

  Children& ChildrenAt(std::size_t depth) {
    if (children_stack_.size() <= depth) children_stack_.resize(depth + 1);
    return children_stack_[depth];
  }

  void PushFrame(NodeId node, Value first_lb, std::size_t edge_lo) {
    // A node's visit is attributed to the frame starting at its first
    // edge, so nodes split across branch tasks are still counted once.
    if (edge_lo == 0) ++stats_.nodes_visited;
    frames_.push_back({node, first_lb, edge_lo, 0});
    config_.tree->GetChildren(node, &ChildrenAt(frames_.size() - 1));
  }

  /// Iterative DFS replacing the old recursive Visit: processes edges
  /// [edge_lo, edge_hi) of `start` (descending below them only when
  /// `descend_bottom`); every deeper node is traversed in full. Operation
  /// order matches the recursive version exactly.
  void RunSpan(NodeId start, Value first_lb, std::size_t edge_lo,
               std::size_t edge_hi, bool descend_bottom) {
    frames_.clear();
    PushFrame(start, first_lb, edge_lo);
    while (!frames_.empty()) {
      Frame& f = frames_.back();
      Children& children = ChildrenAt(frames_.size() - 1);
      const bool bottom = frames_.size() == 1;
      const std::size_t limit =
          bottom ? std::min(edge_hi, children.edges.size())
                 : children.edges.size();
      if (f.edge >= limit) {
        frames_.pop_back();
        if (!frames_.empty()) {
          table_.PopRows(frames_.back().pushed);
          frames_.back().pushed = 0;
          ++frames_.back().edge;
        }
        continue;
      }

      const Children::Edge& edge = children.edges[f.edge];
      const std::span<const Symbol> label = children.Label(edge);
      const bool at_root = table_.Empty();
      Value branch_first_lb = f.first_lb;
      if (at_root) branch_first_lb = FirstSymbolLb(label.front());
      // The sparse pruning discount: a non-stored suffix under this branch
      // may skip up to MaxRun-1 leading symbols, each worth at most
      // first_lb of distance (Definition 4).
      Value discount = 0.0;
      if (config_.sparse) {
        const Pos max_run = config_.tree->MaxRun(edge.child);
        if (max_run > 1) {
          discount = static_cast<Value>(max_run - 1) * branch_first_lb;
        }
      }

      std::size_t pushed = 0;
      bool descend = true;
      // Occurrences below this edge are the same at every depth along it;
      // collect them at most once per edge.
      occ_buf_.clear();
      bool occ_collected = false;
      for (const Symbol sym : label) {
        PushRow(sym);
        ++pushed;
        ++stats_.rows_pushed;
        stats_.unshared_rows += config_.tree->SubtreeOccCount(edge.child);
        const Value dist = table_.LastColumn();
        if (dist <= Eps() ||
            (config_.sparse && dist - discount <= Eps())) {
          if (!occ_collected) {
            config_.tree->CollectSubtreeOccurrences(edge.child, &occ_buf_);
            occ_collected = true;
          }
          EmitCandidates(dist);
        }
        if (config_.prune && table_.RowMin() - discount > Eps()) {
          // Theorem 1: no extension can recover. Skip the rest of this
          // edge and the whole subtree.
          ++stats_.branches_pruned;
          descend = false;
          break;
        }
      }
      if (bottom && !descend_bottom) descend = false;
      if (descend) {
        f.pushed = pushed;
        PushFrame(edge.child, branch_first_lb, 0);
      } else {
        table_.PopRows(pushed);
        ++f.edge;
      }
    }
  }

  Value FirstSymbolLb(Symbol s) const {
    if (config_.exact) return 0.0;
    const dtw::Interval iv = config_.alphabet->ToInterval(s);
    return dtw::BaseDistanceLb(query_.front(), iv.lb, iv.ub);
  }

  void PushRow(Symbol sym) {
    if (config_.exact) {
      table_.PushRowValue((*config_.symbol_values)[static_cast<size_t>(sym)]);
    } else {
      const dtw::Interval iv = config_.alphabet->ToInterval(sym);
      table_.PushRowInterval(iv.lb, iv.ub);
    }
  }

  /// A prefix of depth NumRows() matched with filter distance `dist`:
  /// expand the pre-collected subtree occurrences (occ_buf_) into answers
  /// (exact mode) or post-processed candidates (lower-bound modes).
  void EmitCandidates(Value dist) {
    const auto depth = static_cast<Pos>(table_.NumRows());
    for (const OccurrenceRec& occ : occ_buf_) {
      if (config_.exact) {
        if (dist <= Eps()) {
          ++stats_.candidates;
          Report({occ.seq, occ.pos, depth, dist});
        }
        continue;
      }
      // Stored suffix: subsequence S[occ.pos : occ.pos+depth-1].
      if (dist <= Eps()) PostProcess(occ.seq, occ.pos, depth);
      if (!config_.sparse) continue;
      // Non-stored suffixes inside the leading run: skip delta symbols.
      const Value first_lb = FirstLbForOccurrence(occ);
      const Pos max_delta = std::min<Pos>(occ.run - 1, depth - 1);
      for (Pos delta = 1; delta <= max_delta; ++delta) {
        const Value lb2 = dtw::LowerBound2(dist, delta, first_lb);
        if (lb2 <= Eps()) {
          PostProcess(occ.seq, occ.pos + delta, depth - delta);
        }
      }
    }
  }

  Value FirstLbForOccurrence(const OccurrenceRec& occ) const {
    // The leading symbol of the stored suffix is the path's first symbol;
    // recompute from the raw value's category for robustness.
    if (config_.alphabet == nullptr) return 0.0;
    const Value v = config_.db->sequence(occ.seq)[occ.pos];
    const dtw::Interval iv =
        config_.alphabet->ToInterval(config_.alphabet->ToSymbol(v));
    return dtw::BaseDistanceLb(query_.front(), iv.lb, iv.ub);
  }

  /// Exact verification of one candidate subsequence, behind a cascade of
  /// ever-more-expensive screens: O(1) endpoints, O(len) LB_Keogh +
  /// O(len + |Q|) LB_Improved, then the O(|Q| len) exact kernel (itself
  /// abandoning early on the prefix lower bound). Every screen is a true
  /// lower bound, so no candidate within epsilon is ever dismissed.
  void PostProcess(SeqId seq, Pos start, Pos len) {
    ++stats_.candidates;
    const std::span<const Value> sub = config_.db->Subsequence(seq, start,
                                                               len);
    const Value eps = Eps();
    // O(1) endpoint screen before the O(|Q| len) exact computation.
    if (dtw::EndpointLowerBound(query_, sub) > eps) {
      ++stats_.endpoint_rejections;
      return;
    }
    const dtw::QueryEnvelope* env = shared_.envelope.get();
    if (env != nullptr) {
      ++stats_.lb_invocations;
      if (dtw::LbImproved(*env, query_, sub, eps, &lb_scratch_) > eps) {
        ++stats_.lb_pruned;
        return;
      }
    }
    ++stats_.exact_dtw_calls;
    Value d = 0.0;
    if (env != nullptr) {
      if (!dtw::DtwWithinThresholdLb(query_, sub, *env, eps, &d,
                                     &lb_scratch_)) {
        return;
      }
    } else if (config_.band != 0) {
      d = dtw::DtwDistanceBanded(query_, sub, config_.band);
      if (d > eps) return;
    } else if (!dtw::DtwWithinThreshold(query_, sub, eps, &d)) {
      return;
    }
    Report({seq, start, len, d});
  }

  /// Records an exact match. Range mode appends to the worker-private
  /// vector; k-NN mode inserts into the shared k-best heap (ordered by
  /// KnnLess) and shrinks the shared threshold to the k-th best distance.
  void Report(const Match& m) {
    if (knn_k_ == 0) {
      answers_.push_back(m);
      return;
    }
    auto worse = [](const Match& a, const Match& b) {
      return KnnLess(a, b);  // Max-heap under the k-NN total order.
    };
    std::lock_guard<std::mutex> lock(shared_.mu);
    std::vector<Match>& heap = shared_.answers;
    if (heap.size() < knn_k_) {
      heap.push_back(m);
      std::push_heap(heap.begin(), heap.end(), worse);
    } else if (KnnLess(m, heap.front())) {
      std::pop_heap(heap.begin(), heap.end(), worse);
      heap.back() = m;
      std::push_heap(heap.begin(), heap.end(), worse);
    } else {
      return;
    }
    if (heap.size() == knn_k_) {
      shared_.epsilon.store(heap.front().distance,
                            std::memory_order_relaxed);
    }
  }

  SharedSearchState& shared_;
  const TreeSearchConfig& config_;
  std::span<const Value> query_;
  const std::size_t knn_k_;
  dtw::WarpingTable table_;
  dtw::EnvelopeScratch lb_scratch_;
  std::vector<OccurrenceRec> occ_buf_;
  std::vector<Frame> frames_;
  // Per-depth children buffers, reused across the whole traversal so the
  // hot path performs no per-node allocations once warmed up.
  std::vector<Children> children_stack_;
  std::vector<Match> answers_;
  SearchStats stats_;
};

/// Splits the traversal into branch tasks. Level 0 is one task per root
/// edge; while the task count is under `target` the shallowest subtree
/// tasks are split into an edge-only task plus one subtree task per child
/// edge (prefix extended by the split edge's label). Enumeration only
/// reads tree topology — no distance work happens here.
std::vector<BranchTask> EnumerateTasks(const TreeSearchConfig& config,
                                       std::span<const Value> query,
                                       std::size_t target) {
  const suffixtree::TreeView& tree = *config.tree;
  auto first_symbol_lb = [&](Symbol s) -> Value {
    if (config.exact) return 0.0;
    const dtw::Interval iv = config.alphabet->ToInterval(s);
    return dtw::BaseDistanceLb(query.front(), iv.lb, iv.ub);
  };

  Children children;
  tree.GetChildren(tree.Root(), &children);
  std::vector<BranchTask> tasks;
  tasks.reserve(children.edges.size());
  for (std::uint32_t i = 0; i < children.edges.size(); ++i) {
    BranchTask t;
    t.node = tree.Root();
    t.edge_index = i;
    t.first_lb = first_symbol_lb(children.FirstSymbol(children.edges[i]));
    tasks.push_back(std::move(t));
  }

  constexpr int kMaxSplitDepth = 3;
  Children child_children;
  for (int depth = 0; depth < kMaxSplitDepth && tasks.size() < target;
       ++depth) {
    std::vector<BranchTask> next;
    next.reserve(tasks.size() * 2);
    bool split_any = false;
    for (BranchTask& t : tasks) {
      if (!t.descend) {
        next.push_back(std::move(t));
        continue;
      }
      tree.GetChildren(t.node, &children);
      const Children::Edge& edge = children.edges[t.edge_index];
      tree.GetChildren(edge.child, &child_children);
      if (child_children.edges.empty()) {
        next.push_back(std::move(t));
        continue;
      }
      split_any = true;
      std::vector<Symbol> child_prefix = t.prefix;
      const std::span<const Symbol> label = children.Label(edge);
      child_prefix.insert(child_prefix.end(), label.begin(), label.end());
      for (std::uint32_t j = 0; j < child_children.edges.size(); ++j) {
        BranchTask sub;
        sub.prefix = child_prefix;
        sub.node = edge.child;
        sub.edge_index = j;
        sub.first_lb = t.first_lb;
        next.push_back(std::move(sub));
      }
      // The edge rows themselves (emission + pruning along the label)
      // stay with the original task, which no longer descends.
      t.descend = false;
      next.push_back(std::move(t));
    }
    tasks = std::move(next);
    if (!split_any) break;
  }
  return tasks;
}

std::vector<Match> RunSearch(const TreeSearchConfig& config,
                             std::span<const Value> query, Value epsilon,
                             std::size_t knn_k, SearchStats* stats) {
  ValidateConfig(config, query);
  SharedSearchState shared(config, query, epsilon, knn_k);

  if (config.num_threads == 0) {
    SearchWorker worker(&shared);
    worker.RunWholeTree();
    worker.Drain();
  } else {
    const std::vector<BranchTask> tasks =
        EnumerateTasks(config, query, /*target=*/config.num_threads * 4);
    ThreadPool pool(config.num_threads);
    std::atomic<std::size_t> next_task{0};
    for (std::size_t w = 0; w < config.num_threads; ++w) {
      pool.Submit([&shared, &tasks, &next_task] {
        SearchWorker worker(&shared);
        for (;;) {
          const std::size_t i =
              next_task.fetch_add(1, std::memory_order_relaxed);
          if (i >= tasks.size()) break;
          worker.RunTask(tasks[i]);
        }
        worker.Drain();
      });
    }
    pool.Wait();
  }

  std::vector<Match> answers = std::move(shared.answers);
  if (knn_k > 0) {
    std::sort(answers.begin(), answers.end(), KnnLess);
  } else {
    std::sort(answers.begin(), answers.end(), MatchLess);
  }
  shared.stats.answers = answers.size();
  if (stats != nullptr) *stats = shared.stats;
  return answers;
}

}  // namespace

std::vector<Match> TreeSearch(const TreeSearchConfig& config,
                              std::span<const Value> query, Value epsilon,
                              SearchStats* stats) {
  return RunSearch(config, query, epsilon, /*knn_k=*/0, stats);
}

std::vector<Match> TreeSearchKnn(const TreeSearchConfig& config,
                                 std::span<const Value> query, std::size_t k,
                                 SearchStats* stats) {
  if (k == 0) {
    if (stats != nullptr) *stats = SearchStats{};
    return {};
  }
  return RunSearch(config, query, /*epsilon=*/0.0, k, stats);
}

}  // namespace tswarp::core
