#include "core/tree_search.h"

#include <algorithm>

#include "common/logging.h"
#include "dtw/base.h"
#include "dtw/dtw.h"
#include "dtw/warping_table.h"

namespace tswarp::core {
namespace {

using suffixtree::Children;
using suffixtree::NodeId;
using suffixtree::OccurrenceRec;

class Searcher {
 public:
  /// Range mode: knn_k == 0 and `epsilon` is the fixed threshold.
  /// k-NN mode: knn_k > 0; epsilon starts at +infinity and shrinks to the
  /// current k-th best exact distance (branch-and-bound).
  Searcher(const TreeSearchConfig& config, std::span<const Value> query,
           Value epsilon, std::size_t knn_k = 0)
      : config_(config),
        query_(query),
        epsilon_(knn_k > 0 ? kInfinity : epsilon),
        knn_k_(knn_k),
        table_(query, config.band) {
    TSW_CHECK(config_.tree != nullptr);
    TSW_CHECK(!query.empty());
    TSW_CHECK(!(config_.sparse && config_.band != 0))
        << "banded search is unsupported on sparse indexes: the D_tw-lb2 "
           "shift argument does not hold once the band moves with the "
           "dropped leading symbols (build a dense ST_C index instead)";
    if (config_.exact) {
      TSW_CHECK(config_.symbol_values != nullptr)
          << "exact mode needs the symbol dictionary";
      TSW_CHECK(!config_.sparse) << "sparse trees require lower-bound mode";
    } else {
      TSW_CHECK(config_.alphabet != nullptr)
          << "lower-bound mode needs the category alphabet";
      TSW_CHECK(config_.db != nullptr)
          << "lower-bound mode needs the raw sequences for post-processing";
    }
  }

  std::vector<Match> Run(SearchStats* stats) {
    Visit(config_.tree->Root(), /*first_lb=*/0.0);
    if (knn_k_ > 0) {
      std::sort(answers_.begin(), answers_.end(),
                [](const Match& a, const Match& b) {
                  return a.distance < b.distance;
                });
    } else {
      std::sort(answers_.begin(), answers_.end(), MatchLess);
    }
    stats_.answers = answers_.size();
    stats_.cells_computed = table_.cells_computed();
    if (stats != nullptr) *stats = stats_;
    return answers_;
  }

 private:
  /// DFS over the tree. `first_lb` is D_base-lb(Q[1], CS[1]) for the path's
  /// leading symbol (the D_tw-lb2 per-skip discount); it is fixed once the
  /// first edge symbol below the root is pushed.
  void Visit(NodeId node, Value first_lb) {
    ++stats_.nodes_visited;
    Children children;
    config_.tree->GetChildren(node, &children);
    const bool at_root = table_.Empty();
    for (const Children::Edge& edge : children.edges) {
      const std::span<const Symbol> label = children.Label(edge);
      Value branch_first_lb = first_lb;
      if (at_root) branch_first_lb = FirstSymbolLb(label.front());
      // The sparse pruning discount: a non-stored suffix under this branch
      // may skip up to MaxRun-1 leading symbols, each worth at most
      // first_lb of distance (Definition 4).
      Value discount = 0.0;
      if (config_.sparse) {
        const Pos max_run = config_.tree->MaxRun(edge.child);
        if (max_run > 1) {
          discount = static_cast<Value>(max_run - 1) * branch_first_lb;
        }
      }

      std::size_t pushed = 0;
      bool descend = true;
      // Occurrences below this edge are the same at every depth along it;
      // collect them at most once per edge.
      occ_buf_.clear();
      bool occ_collected = false;
      for (const Symbol sym : label) {
        PushRow(sym);
        ++pushed;
        ++stats_.rows_pushed;
        stats_.unshared_rows += config_.tree->SubtreeOccCount(edge.child);
        const Value dist = table_.LastColumn();
        if (dist <= epsilon_ ||
            (config_.sparse && dist - discount <= epsilon_)) {
          if (!occ_collected) {
            config_.tree->CollectSubtreeOccurrences(edge.child, &occ_buf_);
            occ_collected = true;
          }
          EmitCandidates(dist);
        }
        if (config_.prune && table_.RowMin() - discount > epsilon_) {
          // Theorem 1: no extension can recover. Skip the rest of this
          // edge and the whole subtree.
          ++stats_.branches_pruned;
          descend = false;
          break;
        }
      }
      if (descend) Visit(edge.child, branch_first_lb);
      table_.PopRows(pushed);
    }
  }

  Value FirstSymbolLb(Symbol s) const {
    if (config_.exact) return 0.0;
    const dtw::Interval iv = config_.alphabet->ToInterval(s);
    return dtw::BaseDistanceLb(query_.front(), iv.lb, iv.ub);
  }

  void PushRow(Symbol sym) {
    if (config_.exact) {
      table_.PushRowValue((*config_.symbol_values)[static_cast<size_t>(sym)]);
    } else {
      const dtw::Interval iv = config_.alphabet->ToInterval(sym);
      table_.PushRowInterval(iv.lb, iv.ub);
    }
  }

  /// A prefix of depth NumRows() matched with filter distance `dist`:
  /// expand the pre-collected subtree occurrences (occ_buf_) into answers
  /// (exact mode) or post-processed candidates (lower-bound modes).
  void EmitCandidates(Value dist) {
    const auto depth = static_cast<Pos>(table_.NumRows());
    for (const OccurrenceRec& occ : occ_buf_) {
      if (config_.exact) {
        if (dist <= epsilon_) {
          ++stats_.candidates;
          Report({occ.seq, occ.pos, depth, dist});
        }
        continue;
      }
      // Stored suffix: subsequence S[occ.pos : occ.pos+depth-1].
      if (dist <= epsilon_) PostProcess(occ.seq, occ.pos, depth);
      if (!config_.sparse) continue;
      // Non-stored suffixes inside the leading run: skip delta symbols.
      const Value first_lb = FirstLbForOccurrence(occ);
      const Pos max_delta = std::min<Pos>(occ.run - 1, depth - 1);
      for (Pos delta = 1; delta <= max_delta; ++delta) {
        const Value lb2 =
            dtw::LowerBound2(dist, delta, first_lb);
        if (lb2 <= epsilon_) {
          PostProcess(occ.seq, occ.pos + delta, depth - delta);
        }
      }
    }
  }

  Value FirstLbForOccurrence(const OccurrenceRec& occ) const {
    // The leading symbol of the stored suffix is the path's first symbol;
    // recompute from the raw value's category for robustness.
    if (config_.alphabet == nullptr) return 0.0;
    const Value v = config_.db->sequence(occ.seq)[occ.pos];
    const dtw::Interval iv =
        config_.alphabet->ToInterval(config_.alphabet->ToSymbol(v));
    return dtw::BaseDistanceLb(query_.front(), iv.lb, iv.ub);
  }

  /// Exact verification of one candidate subsequence.
  void PostProcess(SeqId seq, Pos start, Pos len) {
    ++stats_.candidates;
    const std::span<const Value> sub = config_.db->Subsequence(seq, start,
                                                               len);
    // O(1) endpoint screen before the O(|Q| len) exact computation.
    if (dtw::EndpointLowerBound(query_, sub) > epsilon_) {
      ++stats_.endpoint_rejections;
      return;
    }
    ++stats_.exact_dtw_calls;
    Value d = 0.0;
    if (config_.band != 0) {
      d = dtw::DtwDistanceBanded(query_, sub, config_.band);
      if (d > epsilon_) return;
    } else if (!dtw::DtwWithinThreshold(query_, sub, epsilon_, &d)) {
      return;
    }
    Report({seq, start, len, d});
  }

  /// Records an exact match. In k-NN mode maintains a max-heap of the k
  /// best and shrinks the working threshold to the k-th best distance.
  void Report(const Match& m) {
    if (knn_k_ == 0) {
      answers_.push_back(m);
      return;
    }
    auto worse = [](const Match& a, const Match& b) {
      return a.distance < b.distance;  // Max-heap on distance.
    };
    if (answers_.size() < knn_k_) {
      answers_.push_back(m);
      std::push_heap(answers_.begin(), answers_.end(), worse);
    } else if (m.distance < answers_.front().distance) {
      std::pop_heap(answers_.begin(), answers_.end(), worse);
      answers_.back() = m;
      std::push_heap(answers_.begin(), answers_.end(), worse);
    }
    if (answers_.size() == knn_k_) {
      epsilon_ = answers_.front().distance;
    }
  }

  const TreeSearchConfig& config_;
  std::span<const Value> query_;
  Value epsilon_;
  std::size_t knn_k_ = 0;
  dtw::WarpingTable table_;
  std::vector<OccurrenceRec> occ_buf_;
  std::vector<Match> answers_;
  SearchStats stats_;
};

}  // namespace

std::vector<Match> TreeSearch(const TreeSearchConfig& config,
                              std::span<const Value> query, Value epsilon,
                              SearchStats* stats) {
  Searcher searcher(config, query, epsilon);
  return searcher.Run(stats);
}

std::vector<Match> TreeSearchKnn(const TreeSearchConfig& config,
                                 std::span<const Value> query, std::size_t k,
                                 SearchStats* stats) {
  if (k == 0) {
    if (stats != nullptr) *stats = SearchStats{};
    return {};
  }
  Searcher searcher(config, query, /*epsilon=*/0.0, k);
  return searcher.Run(stats);
}

}  // namespace tswarp::core
