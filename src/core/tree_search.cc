#include "core/tree_search.h"

#include <algorithm>
#include <memory>
#include <span>
#include <vector>

#include "common/logging.h"
#include "core/distance_models.h"
#include "core/search_driver.h"
#include "dtw/envelope.h"

namespace tswarp::core {
namespace {

void ValidateConfig(const TreeSearchConfig& config,
                    std::span<const Value> query) {
  TSW_CHECK(config.tree != nullptr);
  TSW_CHECK(!query.empty());
  TSW_CHECK(!(config.sparse && config.band != 0))
      << "banded search is unsupported on sparse indexes: the D_tw-lb2 "
         "shift argument does not hold once the band moves with the "
         "dropped leading symbols (build a dense ST_C index instead)";
  if (config.exact) {
    TSW_CHECK(config.symbol_values != nullptr)
        << "exact mode needs the symbol dictionary";
    TSW_CHECK(!config.sparse) << "sparse trees require lower-bound mode";
  } else {
    TSW_CHECK(config.alphabet != nullptr)
        << "lower-bound mode needs the category alphabet";
    TSW_CHECK(config.db != nullptr)
        << "lower-bound mode needs the raw sequences for post-processing";
  }
}

DriverConfig MakeDriverConfig(const TreeSearchConfig& config,
                              std::span<const Value> query) {
  DriverConfig driver;
  driver.tree = config.tree;
  driver.query_length = query.size();
  driver.query = query;
  driver.sparse = config.sparse;
  driver.prune = config.prune;
  driver.band = config.band;
  driver.num_threads = config.num_threads;
  driver.cancel = config.cancel;
  if (config.db != nullptr) {
    // DFS depth is bounded by the longest suffix in the tree.
    std::size_t max_len = 0;
    for (SeqId id = 0; id < config.db->size(); ++id) {
      max_len = std::max(max_len, config.db->sequence(id).size());
    }
    driver.depth_hint = max_len;
  }
  return driver;
}

/// Instantiates the right distance model for `config` and runs the shared
/// DFS kernel on it (see search_driver.h). The three paper modes map to
/// the three univariate models of distance_models.h.
std::vector<Match> RunSearch(const TreeSearchConfig& config,
                             std::span<const Value> query, Value epsilon,
                             std::size_t knn_k, SearchStats* stats) {
  ValidateConfig(config, query);
  const DriverConfig driver = MakeDriverConfig(config, query);
  QueryContext ctx(epsilon, knn_k);

  if (config.exact) {
    const ExactModel model(query, config.symbol_values);
    return RunSearchDriver(driver, model, &ctx, stats);
  }
  // The envelope depends only on (query, band): build it once and share
  // it read-only across workers. Exact mode has no post-processing, so
  // no candidate ever consults it.
  if (config.use_lower_bound) {
    ctx.envelope =
        std::make_unique<dtw::QueryEnvelope>(query, config.band);
  }
  if (config.sparse) {
    const SparseCategoryModel model(query, config.alphabet, config.db,
                                    ctx.envelope.get(), config.band);
    return RunSearchDriver(driver, model, &ctx, stats);
  }
  const CategoryModel model(query, config.alphabet, config.db,
                            ctx.envelope.get(), config.band);
  return RunSearchDriver(driver, model, &ctx, stats);
}

}  // namespace

std::vector<Match> TreeSearch(const TreeSearchConfig& config,
                              std::span<const Value> query, Value epsilon,
                              SearchStats* stats) {
  return RunSearch(config, query, epsilon, /*knn_k=*/0, stats);
}

std::vector<Match> TreeSearchKnn(const TreeSearchConfig& config,
                                 std::span<const Value> query, std::size_t k,
                                 SearchStats* stats) {
  if (k == 0) {
    if (stats != nullptr) *stats = SearchStats{};
    return {};
  }
  return RunSearch(config, query, /*epsilon=*/0.0, k, stats);
}

}  // namespace tswarp::core
