#include "core/tree_search.h"

#include <algorithm>
#include <memory>
#include <span>
#include <vector>

#include "common/logging.h"
#include "core/distance_models.h"
#include "core/search_driver.h"
#include "dtw/envelope.h"

namespace tswarp::core {
namespace {

void ValidateConfig(const TreeSearchConfig& config,
                    std::span<const Value> query) {
  TSW_CHECK(config.tree != nullptr);
  TSW_CHECK(!query.empty());
  TSW_CHECK(config.approx_factor >= 1.0)
      << "approx_factor < 1 would deflate the summary lower bound and "
         "fabricate false dismissals";
  TSW_CHECK(!(config.sparse && config.band != 0))
      << "banded search is unsupported on sparse indexes: the D_tw-lb2 "
         "shift argument does not hold once the band moves with the "
         "dropped leading symbols (build a dense ST_C index instead)";
  if (config.exact) {
    TSW_CHECK(config.symbol_values != nullptr)
        << "exact mode needs the symbol dictionary";
    TSW_CHECK(!config.sparse) << "sparse trees require lower-bound mode";
  } else {
    TSW_CHECK(config.alphabet != nullptr)
        << "lower-bound mode needs the category alphabet";
    TSW_CHECK(config.db != nullptr)
        << "lower-bound mode needs the raw sequences for post-processing";
  }
}

DriverConfig MakeDriverConfig(const TreeSearchConfig& config,
                              std::span<const Value> query) {
  DriverConfig driver;
  driver.tree = config.tree;
  driver.query_length = query.size();
  driver.query = query;
  driver.sparse = config.sparse;
  driver.prune = config.prune;
  driver.band = config.band;
  driver.num_threads = config.num_threads;
  driver.cancel = config.cancel;
  driver.summaries = config.summaries;
  driver.approx_factor = config.approx_factor;
  if (config.db != nullptr) {
    // DFS depth is bounded by the longest suffix in the tree.
    std::size_t max_len = 0;
    for (SeqId id = 0; id < config.db->size(); ++id) {
      max_len = std::max(max_len, config.db->sequence(id).size());
    }
    driver.depth_hint = max_len;
  }
  return driver;
}

/// Instantiates the right distance model for `config` and runs the shared
/// DFS kernel on it (see search_driver.h). The three paper modes map to
/// the three univariate models of distance_models.h.
std::vector<Match> RunSearch(const TreeSearchConfig& config,
                             std::span<const Value> query, Value epsilon,
                             std::size_t knn_k, SearchStats* stats) {
  ValidateConfig(config, query);
  const DriverConfig driver = MakeDriverConfig(config, query);
  QueryContext ctx(epsilon, knn_k);

  if (config.exact) {
    const ExactModel model(query, config.symbol_values);
    return RunSearchDriver(driver, model, &ctx, stats);
  }
  // The envelope depends only on (query, band): build it once and share
  // it read-only across workers. Exact mode has no post-processing, so
  // no candidate ever consults it.
  if (config.use_lower_bound) {
    ctx.envelope =
        std::make_unique<dtw::QueryEnvelope>(query, config.band);
  }
  if (config.sparse) {
    const SparseCategoryModel model(query, config.alphabet, config.db,
                                    ctx.envelope.get(), config.band);
    return RunSearchDriver(driver, model, &ctx, stats);
  }
  const CategoryModel model(query, config.alphabet, config.db,
                            ctx.envelope.get(), config.band);
  return RunSearchDriver(driver, model, &ctx, stats);
}

/// Runs one tier's traversal into the shared context, draining its
/// counters into `sink` (written by this call only — safe when tiers run
/// concurrently).
void RunTierInto(const TreeSearchConfig& config, const DriverConfig& driver,
                 std::span<const Value> query, QueryContext* ctx,
                 SearchStats* sink) {
  if (config.exact) {
    const ExactModel model(query, config.symbol_values);
    SearchDriver<ExactModel>(driver, model).RunInto(ctx, sink);
  } else if (config.sparse) {
    const SparseCategoryModel model(query, config.alphabet, config.db,
                                    ctx->envelope.get(), config.band);
    SearchDriver<SparseCategoryModel>(driver, model).RunInto(ctx, sink);
  } else {
    const CategoryModel model(query, config.alphabet, config.db,
                              ctx->envelope.get(), config.band);
    SearchDriver<CategoryModel>(driver, model).RunInto(ctx, sink);
  }
}

std::vector<Match> RunTiered(std::span<const TierSearchEntry> tiers,
                             std::span<const Value> query, Value epsilon,
                             std::size_t knn_k, SearchStats* stats) {
  if (tiers.empty()) {
    if (stats != nullptr) *stats = SearchStats{};
    return {};
  }
  const TreeSearchConfig& lead = tiers.front().config;
  std::vector<DriverConfig> drivers;
  drivers.reserve(tiers.size());
  std::size_t depth_hint = 0;
  for (const TierSearchEntry& tier : tiers) {
    ValidateConfig(tier.config, query);
    // Cross-tier matches merge in one collector under one epsilon; that
    // is only meaningful when every tier answers the same question.
    TSW_CHECK(tier.config.exact == lead.exact &&
              tier.config.sparse == lead.sparse &&
              tier.config.prune == lead.prune &&
              tier.config.use_lower_bound == lead.use_lower_bound &&
              tier.config.band == lead.band &&
              tier.config.num_threads == lead.num_threads &&
              tier.config.cancel == lead.cancel &&
              tier.config.approx_factor == lead.approx_factor)
        << "tiers of one search must share the query-shape knobs";
    // Summary spans legitimately differ per tier (memtable tiers carry
    // none), so they are deliberately absent from the agreement check.
    drivers.push_back(MakeDriverConfig(tier.config, query));
    drivers.back().seq_base = tier.seq_base;
    depth_hint = std::max(depth_hint, drivers.back().depth_hint);
  }
  // One shared depth hint: the per-thread arena cache is keyed on the
  // table shape, so tiers of different depths would otherwise thrash it.
  for (DriverConfig& d : drivers) d.depth_hint = depth_hint;

  QueryContext ctx(epsilon, knn_k);
  if (!lead.exact && lead.use_lower_bound) {
    ctx.envelope = std::make_unique<dtw::QueryEnvelope>(query, lead.band);
  }

  if (lead.num_threads == 0) {
    // Serial: tiers in order, one table, the k-NN threshold tightened by
    // each tier pruning the next.
    for (std::size_t i = 0; i < tiers.size(); ++i) {
      RunTierInto(tiers[i].config, drivers[i], query, &ctx, &ctx.stats);
    }
  } else {
    // Parallel: one task per tier on the process-wide scheduler; each
    // tier's traversal lazily splits further when threads go idle
    // (nested scopes are deadlock-free — Wait() helps). Per-tier stats
    // sinks keep the drains race-free; merged after the join.
    TaskScheduler::Get().EnsureWorkers(lead.num_threads);
    std::vector<SearchStats> tier_stats(tiers.size());
    TaskScope scope;
    for (std::size_t i = 0; i < tiers.size(); ++i) {
      scope.Submit([&, i] {
        RunTierInto(tiers[i].config, drivers[i], query, &ctx,
                    &tier_stats[i]);
      });
    }
    scope.Wait();  // Rethrows the first tier exception, if any.
    for (const SearchStats& s : tier_stats) ctx.stats.Merge(s);
    ctx.stats.tasks_executed += scope.tasks_executed();
    ctx.stats.tasks_stolen += scope.tasks_stolen();
  }

  std::vector<Match> answers = ctx.collector.Take();
  ctx.stats.answers = answers.size();
  if (stats != nullptr) *stats = ctx.stats;
  return answers;
}

}  // namespace

std::vector<Match> TreeSearch(const TreeSearchConfig& config,
                              std::span<const Value> query, Value epsilon,
                              SearchStats* stats) {
  return RunSearch(config, query, epsilon, /*knn_k=*/0, stats);
}

std::vector<Match> TreeSearchKnn(const TreeSearchConfig& config,
                                 std::span<const Value> query, std::size_t k,
                                 SearchStats* stats) {
  if (k == 0) {
    if (stats != nullptr) *stats = SearchStats{};
    return {};
  }
  return RunSearch(config, query, /*epsilon=*/0.0, k, stats);
}

std::vector<Match> TierSearch(std::span<const TierSearchEntry> tiers,
                              std::span<const Value> query, Value epsilon,
                              SearchStats* stats) {
  return RunTiered(tiers, query, epsilon, /*knn_k=*/0, stats);
}

std::vector<Match> TierSearchKnn(std::span<const TierSearchEntry> tiers,
                                 std::span<const Value> query, std::size_t k,
                                 SearchStats* stats) {
  if (k == 0) {
    if (stats != nullptr) *stats = SearchStats{};
    return {};
  }
  return RunTiered(tiers, query, /*epsilon=*/0.0, k, stats);
}

}  // namespace tswarp::core
