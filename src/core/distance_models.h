#ifndef TSWARP_CORE_DISTANCE_MODELS_H_
#define TSWARP_CORE_DISTANCE_MODELS_H_

#include <span>
#include <vector>

#include "categorize/alphabet.h"
#include "common/types.h"
#include "core/match.h"
#include "dtw/base.h"
#include "dtw/dtw.h"
#include "dtw/envelope.h"
#include "dtw/warping_table.h"
#include "seqdb/sequence_database.h"
#include "suffixtree/tree_view.h"

namespace tswarp::core {

/// The three univariate distance models of the paper, plugged into
/// core::SearchDriver (see search_driver.h for the concept):
///
///   SimSearch-ST     ExactModel           rows are exact D_tw
///   SimSearch-ST_C   CategoryModel        D_tw-lb interval rows (Def. 3)
///   SimSearch-SST_C  SparseCategoryModel  + D_tw-lb2 recovery  (Def. 4)
///
/// The multivariate grid-cell model (Section 8) lives with its index in
/// src/multivariate.

/// Exact symbol values (dictionary tree): every row is built from the
/// decoded element value, so LastColumn() is already the exact D_tw and
/// matches need no verification pass.
class ExactModel {
 public:
  static constexpr bool kExactRows = true;
  static constexpr bool kSupportsSummaries = true;

  ExactModel(std::span<const Value> query,
             const std::vector<Value>* symbol_values)
      : query_(query), symbol_values_(symbol_values) {}

  Value FirstRowLb(Symbol) const { return 0.0; }

  /// Value hull of one symbol, the unit the node-summary hulls aggregate:
  /// a dictionary symbol stands for exactly one value.
  dtw::Interval SymbolHull(Symbol s) const {
    const Value v = (*symbol_values_)[static_cast<std::size_t>(s)];
    return {v, v};
  }

  /// The driver binds the query span to the table (DriverConfig::query),
  /// so the typed SIMD row step applies directly.
  void RowStep(dtw::WarpingTable* table, Symbol s) const {
    table->PushRowValue((*symbol_values_)[static_cast<std::size_t>(s)]);
  }

  // Never called: exact trees are dense and emit without verification.
  Value OccurrenceFirstLb(const suffixtree::OccurrenceRec&) const {
    return 0.0;
  }
  bool VerifyExact(SeqId, Pos, Pos, Value, SearchStats*, Value*) {
    return false;
  }

 private:
  std::span<const Value> query_;
  const std::vector<Value>* symbol_values_;
};

/// Category intervals (D_tw-lb, Definition 3): rows are interval lower
/// bounds, so every emission is a candidate verified against the raw
/// sequences behind a cascade of ever-more-expensive screens — O(1)
/// endpoints, O(len + |Q|) LB_Keogh/LB_Improved (when the envelope is
/// active), then the O(|Q| len) exact kernel (itself abandoning early on
/// the prefix lower bound). Every screen is a true lower bound, so no
/// candidate within epsilon is ever dismissed.
class CategoryModel {
 public:
  static constexpr bool kExactRows = false;
  static constexpr bool kSupportsSummaries = true;

  /// `envelope` may be null (cascade disabled, the ablation setting).
  CategoryModel(std::span<const Value> query,
                const categorize::Alphabet* alphabet,
                const seqdb::SequenceDatabase* db,
                const dtw::QueryEnvelope* envelope, Pos band)
      : query_(query),
        alphabet_(alphabet),
        db_(db),
        envelope_(envelope),
        band_(band) {}

  Value FirstRowLb(Symbol s) const {
    const dtw::Interval iv = alphabet_->ToInterval(s);
    return dtw::BaseDistanceLb(query_.front(), iv.lb, iv.ub);
  }

  void RowStep(dtw::WarpingTable* table, Symbol s) const {
    const dtw::Interval iv = alphabet_->ToInterval(s);
    table->PushRowInterval(iv.lb, iv.ub);
  }

  /// Value hull of one symbol: the fitted category interval contains
  /// every raw element value the category stands for (the same
  /// containment RowStep's interval rows rely on).
  dtw::Interval SymbolHull(Symbol s) const { return alphabet_->ToInterval(s); }

  Value OccurrenceFirstLb(const suffixtree::OccurrenceRec& occ) const {
    // The leading symbol of the stored suffix is the path's first symbol;
    // recompute from the raw value's category for robustness.
    const Value v = db_->sequence(occ.seq)[occ.pos];
    const dtw::Interval iv = alphabet_->ToInterval(alphabet_->ToSymbol(v));
    return dtw::BaseDistanceLb(query_.front(), iv.lb, iv.ub);
  }

  bool VerifyExact(SeqId seq, Pos start, Pos len, Value eps,
                   SearchStats* stats, Value* distance) {
    const std::span<const Value> sub = db_->Subsequence(seq, start, len);
    // Screens compare against the slackened threshold so reassociation
    // drift between a bound and the exact kernel cannot dismiss a
    // boundary candidate (see dtw::LbPruneThreshold).
    const Value cut = dtw::LbPruneThreshold(eps);
    // O(1) endpoint screen before the O(|Q| len) exact computation.
    if (dtw::EndpointLowerBound(query_, sub) > cut) {
      ++stats->endpoint_rejections;
      return false;
    }
    if (envelope_ != nullptr) {
      ++stats->lb_invocations;
      if (dtw::LbImproved(*envelope_, query_, sub, cut, &lb_scratch_) > cut) {
        ++stats->lb_pruned;
        return false;
      }
    }
    ++stats->exact_dtw_calls;
    Value d = 0.0;
    if (envelope_ != nullptr) {
      if (!dtw::DtwWithinThresholdLb(query_, sub, *envelope_, eps, &d,
                                     &lb_scratch_)) {
        return false;
      }
    } else if (band_ != 0) {
      d = dtw::DtwDistanceBanded(query_, sub, band_);
      if (d > eps) return false;
    } else if (!dtw::DtwWithinThreshold(query_, sub, eps, &d)) {
      return false;
    }
    *distance = d;
    return true;
  }

 private:
  std::span<const Value> query_;
  const categorize::Alphabet* alphabet_;
  const seqdb::SequenceDatabase* db_;
  const dtw::QueryEnvelope* envelope_;
  Pos band_;
  dtw::EnvelopeScratch lb_scratch_;  // Worker-private (models are copied).
};

/// Sparse categorized trees (D_tw-lb2, Definition 4): the per-row rule is
/// CategoryModel's, and OccurrenceFirstLb feeds the driver's recovery of
/// non-stored suffixes plus the (MaxRun-1) * FirstRowLb pruning discount.
/// A distinct instantiation so the sparse search is its own kernel
/// specialization, selected together with DriverConfig::sparse = true.
class SparseCategoryModel : public CategoryModel {
 public:
  using CategoryModel::CategoryModel;
};

}  // namespace tswarp::core

#endif  // TSWARP_CORE_DISTANCE_MODELS_H_
