#ifndef TSWARP_CORE_SEQ_SCAN_H_
#define TSWARP_CORE_SEQ_SCAN_H_

#include <span>
#include <vector>

#include "common/types.h"
#include "core/match.h"
#include "seqdb/sequence_database.h"

namespace tswarp::core {

/// Options for the sequential-scan baseline.
struct SeqScanOptions {
  /// Apply Theorem 1 to stop extending a suffix once the row minimum
  /// exceeds epsilon. Disable only for the pruning ablation.
  bool prune = true;

  /// Running envelope lower bound (LB_Keogh accumulated element by
  /// element): a suffix extension whose accumulated bound exceeds epsilon
  /// is cut O(|Q|) earlier than Theorem 1 can cut it, without building
  /// the row at all. Answers are identical either way; disable only for
  /// the bench/ablation_lowerbound ablation.
  bool use_lower_bound = true;

  /// Sakoe-Chiba band (0 = unconstrained warping, the paper's setting).
  Pos band = 0;

  /// Worker threads. 0 = serial. >= 1 fans the (independent) sequences out
  /// as one task each on the process-wide work-stealing scheduler; answers
  /// and stats are identical to serial (every per-suffix computation is
  /// unchanged, only the execution order differs and Take() re-sorts).
  std::size_t num_threads = 0;
};

/// Sequential scanning (paper Section 4.3): builds one cumulative distance
/// table per suffix of every sequence and reports every subsequence whose
/// time warping distance from `query` is <= epsilon. O(M L^2 |Q|), the
/// baseline of Tables 2-3 and Figures 4-5.
std::vector<Match> SeqScan(const seqdb::SequenceDatabase& db,
                           std::span<const Value> query, Value epsilon,
                           const SeqScanOptions& options = {},
                           SearchStats* stats = nullptr);

}  // namespace tswarp::core

#endif  // TSWARP_CORE_SEQ_SCAN_H_
