#ifndef TSWARP_CORE_CATEGORY_SELECTION_H_
#define TSWARP_CORE_CATEGORY_SELECTION_H_

#include <vector>

#include "common/status.h"
#include "core/index.h"
#include "seqdb/sequence_database.h"

namespace tswarp::core {

/// Configuration for the experiment-based category-count selection of
/// paper Section 5.1: "do many experiments on the set of sequences and
/// determine the best number of categories using the cost function
/// W_t * C_t + W_s * C_s".
struct CategorySelectionOptions {
  /// Candidate category counts to evaluate.
  std::vector<std::size_t> candidates = {10, 20, 40, 80, 120, 160, 200};

  /// Relative weights of query-time cost (C_t) and index-space cost (C_s).
  /// Both costs are normalized by their maximum across candidates before
  /// weighting, so the weights are scale-free. "The determination of these
  /// weights is application-dependent" (paper 5.1).
  double time_weight = 1.0;
  double space_weight = 1.0;

  /// Index configuration evaluated at each candidate count.
  IndexKind kind = IndexKind::kSparse;
  categorize::Method method = categorize::Method::kMaxEntropy;

  /// Distance threshold the sample queries are run at.
  Value epsilon = 10.0;
};

/// Per-candidate measurements.
struct CategoryCandidateCost {
  std::size_t num_categories = 0;
  double query_seconds = 0.0;      // C_t: average query wall time.
  std::uint64_t index_bytes = 0;   // C_s.
  double combined = 0.0;           // W_t * C_t' + W_s * C_s' (normalized).
};

struct CategorySelectionResult {
  std::size_t best_num_categories = 0;
  std::vector<CategoryCandidateCost> measured;
};

/// Runs the selection experiment: builds one index per candidate count,
/// executes the sample `queries`, and returns the candidate minimizing the
/// weighted normalized cost. Candidates whose index fails to build (e.g. a
/// degenerate value range) are skipped; it is an error if all fail.
StatusOr<CategorySelectionResult> SelectNumCategories(
    const seqdb::SequenceDatabase& db,
    const std::vector<seqdb::Sequence>& queries,
    const CategorySelectionOptions& options);

}  // namespace tswarp::core

#endif  // TSWARP_CORE_CATEGORY_SELECTION_H_
