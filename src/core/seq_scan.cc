#include "core/seq_scan.h"

#include <algorithm>
#include <optional>

#include "common/logging.h"
#include "core/result_collector.h"
#include "dtw/envelope.h"
#include "dtw/warping_table.h"

namespace tswarp::core {

std::vector<Match> SeqScan(const seqdb::SequenceDatabase& db,
                           std::span<const Value> query, Value epsilon,
                           const SeqScanOptions& options, SearchStats* stats) {
  TSW_CHECK(!query.empty());
  SearchStats local;
  // The scan emits in (seq, start, len) ascending order — already the
  // collector's range order — so Take()'s sort is the identity and the
  // output is byte-identical to direct emission.
  ResultCollector collector(epsilon, /*knn_k=*/0);
  std::vector<Match> scratch;
  // Running LB_Keogh cascade: D_tw(Q, S[p:q]) >= sum of the elements'
  // envelope distances, and the sum only grows with q, so once it passes
  // epsilon every further extension of this suffix is out too — an O(1)
  // per-element cut ahead of the O(|Q|) row build + Theorem-1 test.
  std::optional<dtw::QueryEnvelope> env;
  if (options.use_lower_bound) env.emplace(query, options.band);
  // Lower-bound cuts use the slackened threshold (dtw::LbPruneThreshold)
  // so reassociation drift against the exact kernel cannot dismiss a
  // boundary candidate that the unfiltered scan keeps.
  const Value lb_cut = dtw::LbPruneThreshold(epsilon);
  std::size_t max_len = 0;
  for (SeqId id = 0; id < db.size(); ++id) {
    max_len = std::max(max_len, db.sequence(id).size());
  }
  dtw::WarpingTable table(query, options.band, std::max<std::size_t>(1, max_len));
  for (SeqId id = 0; id < db.size(); ++id) {
    const seqdb::Sequence& s = db.sequence(id);
    const auto n = static_cast<Pos>(s.size());
    for (Pos p = 0; p < n; ++p) {
      table.Reset();
      Value running_lb = 0.0;
      if (env.has_value()) ++local.lb_invocations;
      for (Pos q = p; q < n; ++q) {
        if (env.has_value()) {
          running_lb += env->ElementLb(q - p, s[q]);
          if (running_lb > lb_cut) {
            ++local.lb_pruned;
            break;
          }
        }
        table.PushRowValue(s[q]);
        ++local.rows_pushed;
        const Value dist = table.LastColumn();
        if (dist <= epsilon) collector.Report({id, p, q - p + 1, dist},
                                              &scratch);
        if (options.prune && table.RowMin() > epsilon) {
          ++local.branches_pruned;
          break;
        }
      }
    }
  }
  local.cells_computed = table.cells_computed();
  collector.DrainRange(&scratch);
  std::vector<Match> out = collector.Take();
  local.answers = out.size();
  if (stats != nullptr) *stats = local;
  return out;
}

}  // namespace tswarp::core
