#include "core/seq_scan.h"

#include <algorithm>
#include <optional>

#include "common/logging.h"
#include "common/task_scheduler.h"
#include "core/result_collector.h"
#include "dtw/envelope.h"
#include "dtw/warping_table.h"

namespace tswarp::core {

namespace {

/// Scans every suffix of one sequence, reporting matches into `collector`
/// (via `scratch`) and counters into `stats`. Self-contained per sequence —
/// its own cumulative table — so sequences can run serially or as one
/// scheduler task each with identical per-suffix computations.
void ScanSequence(const seqdb::SequenceDatabase& db, SeqId id,
                  std::span<const Value> query, Value epsilon,
                  const SeqScanOptions& options,
                  const dtw::QueryEnvelope* env, Value lb_cut,
                  ResultCollector* collector, std::vector<Match>* scratch,
                  SearchStats* stats) {
  const seqdb::Sequence& s = db.sequence(id);
  const auto n = static_cast<Pos>(s.size());
  dtw::WarpingTable table(query, options.band,
                          std::max<std::size_t>(1, s.size()));
  for (Pos p = 0; p < n; ++p) {
    table.Reset();
    Value running_lb = 0.0;
    if (env != nullptr) ++stats->lb_invocations;
    for (Pos q = p; q < n; ++q) {
      if (env != nullptr) {
        running_lb += env->ElementLb(q - p, s[q]);
        if (running_lb > lb_cut) {
          ++stats->lb_pruned;
          break;
        }
      }
      table.PushRowValue(s[q]);
      ++stats->rows_pushed;
      const Value dist = table.LastColumn();
      if (dist <= epsilon) {
        collector->Report({id, p, q - p + 1, dist}, scratch);
      }
      if (options.prune && table.RowMin() > epsilon) {
        ++stats->branches_pruned;
        break;
      }
    }
  }
  stats->cells_computed += table.cells_computed();
}

}  // namespace

std::vector<Match> SeqScan(const seqdb::SequenceDatabase& db,
                           std::span<const Value> query, Value epsilon,
                           const SeqScanOptions& options, SearchStats* stats) {
  TSW_CHECK(!query.empty());
  SearchStats local;
  // Per-suffix emission is in (seq, start, len) ascending order; Take()'s
  // final sort makes the output independent of sequence execution order,
  // so serial and parallel scans return byte-identical answers.
  ResultCollector collector(epsilon, /*knn_k=*/0);
  // Running LB_Keogh cascade: D_tw(Q, S[p:q]) >= sum of the elements'
  // envelope distances, and the sum only grows with q, so once it passes
  // epsilon every further extension of this suffix is out too — an O(1)
  // per-element cut ahead of the O(|Q|) row build + Theorem-1 test.
  std::optional<dtw::QueryEnvelope> env;
  if (options.use_lower_bound) env.emplace(query, options.band);
  // Lower-bound cuts use the slackened threshold (dtw::LbPruneThreshold)
  // so reassociation drift against the exact kernel cannot dismiss a
  // boundary candidate that the unfiltered scan keeps.
  const Value lb_cut = dtw::LbPruneThreshold(epsilon);
  const dtw::QueryEnvelope* env_ptr = env.has_value() ? &*env : nullptr;

  if (options.num_threads == 0 || db.size() <= 1) {
    std::vector<Match> scratch;
    for (SeqId id = 0; id < db.size(); ++id) {
      ScanSequence(db, id, query, epsilon, options, env_ptr, lb_cut,
                   &collector, &scratch, &local);
    }
    collector.DrainRange(&scratch);
  } else {
    // One task per sequence on the shared work-stealing scheduler. Each
    // task owns its table, scratch vector, and stats slot; slots are
    // merged single-threaded after the scope joins.
    TaskScheduler::Get().EnsureWorkers(options.num_threads);
    std::vector<SearchStats> per_seq(db.size());
    TaskScope scope;
    for (SeqId id = 0; id < db.size(); ++id) {
      scope.Submit([&, id] {
        std::vector<Match> scratch;
        ScanSequence(db, id, query, epsilon, options, env_ptr, lb_cut,
                     &collector, &scratch, &per_seq[id]);
        collector.DrainRange(&scratch);
      });
    }
    scope.Wait();
    for (const SearchStats& s : per_seq) local.Merge(s);
  }

  std::vector<Match> out = collector.Take();
  local.answers = out.size();
  if (stats != nullptr) *stats = local;
  return out;
}

}  // namespace tswarp::core
