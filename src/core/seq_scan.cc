#include "core/seq_scan.h"

#include "common/logging.h"
#include "dtw/warping_table.h"

namespace tswarp::core {

std::vector<Match> SeqScan(const seqdb::SequenceDatabase& db,
                           std::span<const Value> query, Value epsilon,
                           const SeqScanOptions& options, SearchStats* stats) {
  TSW_CHECK(!query.empty());
  SearchStats local;
  std::vector<Match> out;
  for (SeqId id = 0; id < db.size(); ++id) {
    const seqdb::Sequence& s = db.sequence(id);
    const auto n = static_cast<Pos>(s.size());
    for (Pos p = 0; p < n; ++p) {
      dtw::WarpingTable table(query, options.band);
      for (Pos q = p; q < n; ++q) {
        table.PushRowValue(s[q]);
        ++local.rows_pushed;
        const Value dist = table.LastColumn();
        if (dist <= epsilon) {
          out.push_back({id, p, q - p + 1, dist});
          ++local.answers;
        }
        if (options.prune && table.RowMin() > epsilon) {
          ++local.branches_pruned;
          break;
        }
      }
      local.cells_computed += table.cells_computed();
    }
  }
  if (stats != nullptr) *stats = local;
  return out;
}

}  // namespace tswarp::core
