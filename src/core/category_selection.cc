#include "core/category_selection.h"

#include <algorithm>
#include <chrono>

#include "common/logging.h"

namespace tswarp::core {

StatusOr<CategorySelectionResult> SelectNumCategories(
    const seqdb::SequenceDatabase& db,
    const std::vector<seqdb::Sequence>& queries,
    const CategorySelectionOptions& options) {
  if (options.candidates.empty()) {
    return Status::InvalidArgument("no candidate category counts");
  }
  if (queries.empty()) {
    return Status::InvalidArgument("no sample queries");
  }
  if (options.kind == IndexKind::kSuffixTree) {
    return Status::InvalidArgument(
        "category selection applies to categorized indexes only");
  }

  CategorySelectionResult result;
  for (const std::size_t c : options.candidates) {
    IndexOptions index_options;
    index_options.kind = options.kind;
    index_options.method = options.method;
    index_options.num_categories = c;
    auto index = Index::Build(&db, index_options);
    if (!index.ok()) continue;  // Degenerate candidate; skip.

    const auto start = std::chrono::steady_clock::now();
    for (const seqdb::Sequence& q : queries) {
      index->Search(q, options.epsilon);
    }
    const double seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count() /
        static_cast<double>(queries.size());

    CategoryCandidateCost cost;
    cost.num_categories = c;
    cost.query_seconds = seconds;
    cost.index_bytes = index->build_info().index_bytes;
    result.measured.push_back(cost);
  }
  if (result.measured.empty()) {
    return Status::FailedPrecondition(
        "every candidate category count failed to build");
  }

  double max_time = 0.0;
  double max_space = 0.0;
  for (const CategoryCandidateCost& m : result.measured) {
    max_time = std::max(max_time, m.query_seconds);
    max_space = std::max(max_space, static_cast<double>(m.index_bytes));
  }
  double best = kInfinity;
  for (CategoryCandidateCost& m : result.measured) {
    const double t = max_time > 0 ? m.query_seconds / max_time : 0.0;
    const double s =
        max_space > 0 ? static_cast<double>(m.index_bytes) / max_space : 0.0;
    m.combined = options.time_weight * t + options.space_weight * s;
    if (m.combined < best) {
      best = m.combined;
      result.best_num_categories = m.num_categories;
    }
  }
  return result;
}

}  // namespace tswarp::core
