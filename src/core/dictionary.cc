#include "core/dictionary.h"

#include <algorithm>

#include "common/logging.h"

namespace tswarp::core {

void DictionaryEncode(const seqdb::SequenceDatabase& db,
                      suffixtree::SymbolDatabase* symbols,
                      std::vector<Value>* symbol_values) {
  TSW_CHECK(symbols != nullptr && symbol_values != nullptr);
  std::vector<Value> values;
  values.reserve(db.TotalElements());
  for (SeqId id = 0; id < db.size(); ++id) {
    const seqdb::Sequence& s = db.sequence(id);
    values.insert(values.end(), s.begin(), s.end());
  }
  std::sort(values.begin(), values.end());
  values.erase(std::unique(values.begin(), values.end()), values.end());
  *symbol_values = values;

  for (SeqId id = 0; id < db.size(); ++id) {
    const seqdb::Sequence& s = db.sequence(id);
    suffixtree::SymbolSequence cs;
    cs.reserve(s.size());
    for (Value v : s) {
      const auto it = std::lower_bound(values.begin(), values.end(), v);
      cs.push_back(static_cast<Symbol>(it - values.begin()));
    }
    symbols->Add(std::move(cs));
  }
}

}  // namespace tswarp::core
