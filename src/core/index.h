#ifndef TSWARP_CORE_INDEX_H_
#define TSWARP_CORE_INDEX_H_

#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "categorize/alphabet.h"
#include "categorize/categorizer.h"
#include "common/cancellation.h"
#include "common/status.h"
#include "common/types.h"
#include "core/match.h"
#include "core/tier.h"
#include "core/tree_search.h"
#include "seqdb/sequence_database.h"
#include "suffixtree/disk_tree.h"
#include "suffixtree/suffix_tree.h"
#include "suffixtree/symbol_database.h"

namespace tswarp::core {

/// Which of the paper's index structures to build.
enum class IndexKind {
  kSuffixTree,   // ST:    exact values (dictionary-encoded), SimSearch-ST.
  kCategorized,  // ST_C:  categorized values, SimSearch-ST_C.
  kSparse,       // SST_C: categorized + sparse suffixes, SimSearch-SST_C.
};

const char* IndexKindToString(IndexKind kind);

struct IndexOptions;

/// Buffer-manager/runtime settings of `options` as DiskTreeOptions (shared
/// by Index::Build/Open and the TieredIndex background merges).
suffixtree::DiskTreeOptions TreeOptionsFromIndexOptions(
    const IndexOptions& options);

/// Build-time configuration of an Index.
struct IndexOptions {
  IndexKind kind = IndexKind::kSparse;

  /// Categorization method and category count (ignored for kSuffixTree).
  categorize::Method method = categorize::Method::kMaxEntropy;
  std::size_t num_categories = 64;

  /// Length-bounded index (paper Section 8, warping-window extension):
  /// skip suffixes shorter than min_suffix_length and truncate stored
  /// suffixes to max_suffix_length. 0 disables either bound. Only sound
  /// when searches use a band consistent with these bounds.
  Pos min_suffix_length = 0;
  Pos max_suffix_length = 0;

  /// When set, the tree is built on disk (batched binary merges) at this
  /// base path and searched through the sharded buffer manager.
  std::string disk_path;
  std::size_t disk_batch_sequences = 64;
  std::size_t disk_pool_pages = 256;

  /// Buffer-manager tuning (runtime-only: not part of the on-disk
  /// fingerprint, so one bundle can be reopened under any of these).
  /// Shards per region manager; 0 = auto, 1 = single-mutex baseline.
  std::size_t disk_pool_shards = 0;
  storage::EvictionPolicyKind disk_eviction =
      storage::EvictionPolicyKind::kLru;
  /// Sequential read-ahead window in pages; 0 disables.
  std::size_t disk_readahead_pages = 8;

  /// Read path for the finalized disk bundle (runtime-only, like the pool
  /// knobs above — not fingerprinted, so one bundle can be reopened under
  /// either mode). mmap serves queries zero-copy off the shared kernel
  /// page cache; buffered routes reads through the private BufferManager
  /// and is required for v1 bundles. Construction and merges always write
  /// (and scan intermediates) buffered regardless of this setting.
  storage::IoMode disk_io_mode = storage::IoMode::kMmap;

  /// Build per-node summaries (the subtree-hull pre-filter ahead of the
  /// LB cascade; see docs/tuning.md "Node summaries & the recall dial").
  /// Runtime-only and NOT fingerprinted: a bundle built without summaries
  /// reopens fine (the screen is simply off), and a bundle with them can
  /// be reopened by a reader that ignores the section. Adds 64 bytes per
  /// tree node of index footprint when on.
  bool node_summaries = true;

  /// Seed for categorizers that need one (k-means).
  std::uint64_t seed = 1;
};

/// Summary statistics of a built index.
struct IndexBuildInfo {
  std::uint64_t index_bytes = 0;       // Serialized footprint (Table 1).
  std::uint64_t num_nodes = 0;
  std::uint64_t num_occurrences = 0;   // Stored suffixes.
  std::uint64_t stored_suffixes = 0;
  std::uint64_t skipped_suffixes = 0;  // Non-stored (sparse / length bound).
  double compaction_ratio = 0.0;       // r = non-stored / total (Section 6).
  std::size_t num_categories = 0;      // Actual categories after dedup.
};

/// mmap read-path statistics, summed over every mapped disk tier.
struct MappedIoStats {
  std::uint64_t mapped_bytes = 0;    // Bytes mapped into the address space.
  std::uint64_t resident_bytes = 0;  // Thereof resident in the page cache.
};

/// Per-search options.
struct QueryOptions {
  /// Sakoe-Chiba warping band; 0 = unconstrained (the paper's setting).
  Pos band = 0;
  /// Theorem-1 pruning (ablation hook).
  bool prune = true;
  /// Envelope lower-bound cascade (LB_Keogh / LB_Improved) in the
  /// post-processing pass; answers are identical either way (ablation
  /// hook, see bench/ablation_lowerbound and docs/tuning.md).
  bool use_lower_bound = true;
  /// Worker threads. 0 = serial (the original single-threaded traversal).
  /// >= 1 ensures the process-wide work-stealing scheduler has at least
  /// that many persistent workers. For Search/SearchKnn the traversal
  /// splits lazily into branch tasks as idle workers ask for work; for
  /// SearchBatch independent queries fan out as one task each. Results
  /// are identical to serial either way.
  std::size_t num_threads = 0;
  /// Cooperative cancellation / deadline hook. When non-null the search
  /// polls the token at bounded intervals and stops early once it expires,
  /// setting SearchStats::cancelled. Matches reported before the stop are
  /// exact (no false dismissal within the completed work); the set is a
  /// subset of the full answer. The token must outlive the search. For
  /// SearchBatch one token covers the whole batch.
  const CancelToken* cancel = nullptr;
  /// Node-summary pre-filter (on by default; a no-op when the index was
  /// built without summaries). Answers are identical either way at
  /// approx_factor == 1 — this is the ablation hook for the screen.
  bool use_node_summaries = true;
  /// The recall dial: scales the summary lower bound before comparing
  /// against the threshold. 1.0 = exact (byte-identical results, the
  /// default); values > 1 prune more aggressively and may drop matches —
  /// the result is always a subset of the exact answer. Must be >= 1.
  /// Ignored when summaries are off.
  Value approx_factor = 1.0;
};

/// An immutable, reference-counted view of an index at one instant: an
/// ordered stack of tiers covering disjoint, contiguous global sequence
/// ranges (a monolithic index is one tier; a TieredIndex adds sealed
/// appended tiers and a memtable tier on top). ALL query entry points live
/// here; Index and TieredIndex are handles that produce snapshots.
///
/// Searches fan out across the tiers through one shared ResultCollector —
/// one shrinking k-NN epsilon, one deterministic merge — and return
/// matches with global sequence ids, byte-identical to a monolithic index
/// over the same data (every engine verifies candidates exactly, so the
/// per-tier symbol tables never change the match set).
///
/// Thread safety: snapshots are immutable after construction; every
/// member may be called from any number of threads concurrently. Holding
/// the shared_ptr pins every tier (trees, buffer managers, database
/// fragments), so queries keep running against retired tiers safely while
/// appends and merges publish newer snapshots.
class IndexSnapshot {
 public:
  /// Assembles a snapshot from tiers (ordered by first_seq). `base_info`
  /// contributes the non-additive fields (num_categories, ...); the
  /// additive counters are re-aggregated over the tiers.
  IndexSnapshot(IndexOptions options, IndexBuildInfo base_info,
                std::vector<std::shared_ptr<const Tier>> tiers);

  IndexSnapshot(const IndexSnapshot&) = delete;
  IndexSnapshot& operator=(const IndexSnapshot&) = delete;

  /// All subsequences with D_tw(query, subsequence) <= epsilon, sorted by
  /// (seq, start, len).
  std::vector<Match> Search(std::span<const Value> query, Value epsilon,
                            const QueryOptions& query_options = {},
                            SearchStats* stats = nullptr) const;

  /// The k subsequences nearest to `query` under D_tw, sorted by distance
  /// (branch-and-bound over the same filter; ties at the k-th distance are
  /// broken deterministically by (distance, seq, start, len)).
  std::vector<Match> SearchKnn(std::span<const Value> query, std::size_t k,
                               const QueryOptions& query_options = {},
                               SearchStats* stats = nullptr) const;

  /// Runs one range search per query, coalescing the (independent)
  /// queries into one fork/join scope on the shared work-stealing
  /// scheduler (>= query_options.num_threads workers); each query itself
  /// runs serially, so per-query results and stats are bit-identical to
  /// Search(). `epsilons` holds either one shared threshold or one per
  /// query. When `stats` is non-null it is resized to one entry per query.
  /// num_threads == 0 degenerates to a serial loop over Search().
  std::vector<std::vector<Match>> SearchBatch(
      const std::vector<std::vector<Value>>& queries,
      const std::vector<Value>& epsilons,
      const QueryOptions& query_options = {},
      std::vector<SearchStats>* stats = nullptr) const;

  const IndexBuildInfo& build_info() const { return build_info_; }
  const IndexOptions& options() const { return options_; }

  const std::vector<std::shared_ptr<const Tier>>& tiers() const {
    return tiers_;
  }

  /// Total sequences covered (global id space size).
  std::size_t total_sequences() const;

  /// True iff any tier is disk-backed.
  bool on_disk() const;

  /// The base (first) tier's disk tree, or nullptr for in-memory bases;
  /// exposes buffer-manager statistics for I/O experiments.
  const suffixtree::DiskSuffixTree* disk_tree() const;

  /// Per-region buffer-manager statistics summed over every disk-backed
  /// tier, or nullopt when none is. All-zero counters under mmap: the
  /// zero-copy path never pins a page.
  std::optional<suffixtree::RegionStats> PoolStats() const;

  /// Mapped/resident byte totals over the mmap-backed disk tiers (zero
  /// when every tier is buffered or in memory). Residency probes mincore;
  /// keep it to stats endpoints.
  MappedIoStats MappedStats() const;

 private:
  IndexOptions options_;
  IndexBuildInfo build_info_;
  std::vector<std::shared_ptr<const Tier>> tiers_;
};

/// The public index: builds one of the paper's three structures over a
/// SequenceDatabase and answers subsequence similarity queries under the
/// time warping distance with no false dismissals.
///
/// An Index is a thin immutable handle over a one-tier IndexSnapshot —
/// construction (Build/Open) produces the snapshot, and every query
/// method delegates to it. The database must outlive the index (and any
/// snapshot taken from it).
///
/// Thread safety: every const member (Search, SearchKnn, SearchBatch,
/// PoolStats, build_info, ...) may be called from any number of threads
/// concurrently, and Build/Open construct independent instances touching
/// no shared mutable state, so opening one index is safe while another —
/// even one over the same on-disk bundle — is serving reads. Move
/// *assignment* is deleted: swapping a live Index in place under
/// concurrent readers was the PR 7 server race, and snapshot publication
/// (server::IndexHandle / TieredIndex) is the only sanctioned swap path.
class Index {
 public:
  static StatusOr<Index> Build(const seqdb::SequenceDatabase* db,
                               const IndexOptions& options);

  /// Reopens a disk-backed index previously Build()-t with
  /// `options.disk_path` set, against the same database. The categorizer
  /// state is re-derived deterministically from (db, options); the tree is
  /// opened from the bundle without rebuilding. A fingerprint written at
  /// build time guards against mismatched databases or options.
  static StatusOr<Index> Open(const seqdb::SequenceDatabase* db,
                              const IndexOptions& options);

  Index(Index&&) = default;
  Index& operator=(Index&&) = delete;
  Index(const Index&) = delete;
  Index& operator=(const Index&) = delete;

  std::vector<Match> Search(std::span<const Value> query, Value epsilon,
                            const QueryOptions& query_options = {},
                            SearchStats* stats = nullptr) const {
    return snapshot_->Search(query, epsilon, query_options, stats);
  }

  std::vector<Match> SearchKnn(std::span<const Value> query, std::size_t k,
                               const QueryOptions& query_options = {},
                               SearchStats* stats = nullptr) const {
    return snapshot_->SearchKnn(query, k, query_options, stats);
  }

  std::vector<std::vector<Match>> SearchBatch(
      const std::vector<std::vector<Value>>& queries,
      const std::vector<Value>& epsilons,
      const QueryOptions& query_options = {},
      std::vector<SearchStats>* stats = nullptr) const {
    return snapshot_->SearchBatch(queries, epsilons, query_options, stats);
  }

  const IndexBuildInfo& build_info() const {
    return snapshot_->build_info();
  }
  const IndexOptions& options() const { return snapshot_->options(); }

  /// Non-null iff the index was built with a disk_path; exposes buffer
  /// manager statistics for I/O experiments.
  const suffixtree::DiskSuffixTree* disk_tree() const {
    return snapshot_->disk_tree();
  }

  /// Per-region buffer-manager statistics of the disk-backed tree, or
  /// nullopt for in-memory indexes.
  std::optional<suffixtree::RegionStats> PoolStats() const {
    return snapshot_->PoolStats();
  }

  /// Mapped/resident byte totals of the mmap read path (see
  /// IndexSnapshot::MappedStats).
  MappedIoStats MappedStats() const { return snapshot_->MappedStats(); }

  /// The underlying immutable snapshot. Shared: the snapshot (and through
  /// it every tier) stays alive as long as any holder keeps the pointer,
  /// independent of this Index object — the handoff used by
  /// server::IndexHandle and TieredIndex.
  std::shared_ptr<const IndexSnapshot> snapshot() const { return snapshot_; }

 private:
  friend class TieredIndex;

  Index() = default;

  std::shared_ptr<const IndexSnapshot> snapshot_;
};

}  // namespace tswarp::core

#endif  // TSWARP_CORE_INDEX_H_
