#ifndef TSWARP_CORE_MATCH_H_
#define TSWARP_CORE_MATCH_H_

#include <cstdint>
#include <tuple>
#include <vector>

#include "common/types.h"

namespace tswarp::core {

/// One answer of a similarity search: the subsequence
/// S_seq[start : start+len-1] (0-based, inclusive length) whose exact time
/// warping distance to the query is `distance` (<= the search threshold).
struct Match {
  SeqId seq;
  Pos start;
  Pos len;
  Value distance;

  friend bool operator==(const Match& a, const Match& b) {
    return a.seq == b.seq && a.start == b.start && a.len == b.len;
  }
};

/// Canonical ordering for comparing result sets across searchers.
inline bool MatchLess(const Match& a, const Match& b) {
  return std::tie(a.seq, a.start, a.len) < std::tie(b.seq, b.start, b.len);
}

/// Instrumentation counters filled by the searchers; used by the benches to
/// report the paper's R_d / R_p reduction factors and by tests. In parallel
/// searches each worker fills a private instance and the per-worker stats
/// are combined with Merge(), so the totals stay exact under concurrency.
struct SearchStats {
  std::uint64_t nodes_visited = 0;      // Tree nodes expanded.
  std::uint64_t rows_pushed = 0;        // Cumulative-table rows built.
  // Rows an unshared per-suffix filter would have built for the same
  // traversal: each pushed row serves every stored suffix below its edge.
  // R_d (paper Section 4.3) = unshared_rows / rows_pushed.
  std::uint64_t unshared_rows = 0;
  std::uint64_t cells_computed = 0;     // Cumulative-table cells built.
  std::uint64_t branches_pruned = 0;    // Theorem-1 cutoffs taken.
  std::uint64_t candidates = 0;         // Subsequences entering PostProcess.
  std::uint64_t endpoint_rejections = 0;  // Candidates killed by the O(1)
                                          // endpoint lower bound.
  // Envelope lower-bound cascade (LB_Keogh / LB_Improved prefilter; see
  // docs/tuning.md "Lower-bound cascade"). In the tree search an
  // invocation is one candidate screened; in SeqScan it is one suffix
  // whose extension loop ran under the running-envelope bound.
  std::uint64_t lb_invocations = 0;     // Envelope bounds evaluated.
  std::uint64_t lb_pruned = 0;          // Candidates/extensions it killed.
  // Node-summary pre-filter (subtree hulls screened before descending an
  // edge; see docs/tuning.md "Node summaries & the recall dial"). An
  // invocation is one edge screened against the summary hulls; a prune
  // skips the child's entire subtree with zero row-step work.
  std::uint64_t summary_lb_invocations = 0;
  std::uint64_t nodes_pruned_by_summary = 0;
  std::uint64_t exact_dtw_calls = 0;    // Exact distance computations.
  std::uint64_t answers = 0;            // Final matches.
  // Prefix rows re-pushed by parallel workers entering a branch task (the
  // duplicated table work parallelism pays for; 0 in serial searches).
  // Replay cells are included in cells_computed, so the serial identity
  // cells_computed == rows_pushed * |Q| relaxes to
  // (rows_pushed + replayed_rows) * |Q| when replayed_rows > 0.
  std::uint64_t replayed_rows = 0;
  // Work-stealing scheduler counters; all 0 in serial searches.
  std::uint64_t tasks_executed = 0;  // Branch tasks run for this query.
  // Tasks executed by a thread other than the one that submitted them
  // (includes the externally injected root task when a pool worker takes
  // it, so parallel searches always report at least 1).
  std::uint64_t tasks_stolen = 0;
  // Steal probes (deque inspections) observed process-wide during this
  // query's window. Unlike every other counter this is not attributed
  // per-query: concurrent searches on the shared scheduler inflate each
  // other's windows. Useful as a contention signal, not an exact count.
  std::uint64_t steal_attempts = 0;
  // Workers that observed an expired CancelToken and stopped early
  // (QueryOptions::cancel). Nonzero means the result set is a sound
  // *subset* of the full answer: every reported match is exact, but the
  // traversal did not finish. 0 for complete searches.
  std::uint64_t cancelled = 0;

  /// Accumulates another worker's counters into this one.
  void Merge(const SearchStats& other) {
    nodes_visited += other.nodes_visited;
    rows_pushed += other.rows_pushed;
    unshared_rows += other.unshared_rows;
    cells_computed += other.cells_computed;
    branches_pruned += other.branches_pruned;
    candidates += other.candidates;
    endpoint_rejections += other.endpoint_rejections;
    lb_invocations += other.lb_invocations;
    lb_pruned += other.lb_pruned;
    summary_lb_invocations += other.summary_lb_invocations;
    nodes_pruned_by_summary += other.nodes_pruned_by_summary;
    exact_dtw_calls += other.exact_dtw_calls;
    answers += other.answers;
    replayed_rows += other.replayed_rows;
    tasks_executed += other.tasks_executed;
    tasks_stolen += other.tasks_stolen;
    steal_attempts += other.steal_attempts;
    cancelled += other.cancelled;
  }
};

}  // namespace tswarp::core

#endif  // TSWARP_CORE_MATCH_H_
