#include "categorize/categorizer.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/logging.h"
#include "common/random.h"

namespace tswarp::categorize {
namespace {

Status ValidateInput(std::span<const Value> values,
                     std::size_t num_categories) {
  if (values.empty()) return Status::InvalidArgument("no values");
  if (num_categories == 0) {
    return Status::InvalidArgument("need at least one category");
  }
  return Status::OK();
}

std::pair<Value, Value> MinMax(std::span<const Value> values) {
  auto [lo, hi] = std::minmax_element(values.begin(), values.end());
  return {*lo, *hi};
}

/// Builds an alphabet from possibly-duplicated interior boundaries by
/// deduplicating and dropping empty categories.
StatusOr<Alphabet> FromDedupedBoundaries(std::vector<Value> boundaries) {
  std::sort(boundaries.begin(), boundaries.end());
  boundaries.erase(std::unique(boundaries.begin(), boundaries.end()),
                   boundaries.end());
  if (boundaries.size() < 2) {
    return Status::InvalidArgument(
        "value range degenerate: all values equal");
  }
  return Alphabet::FromBoundaries(std::move(boundaries));
}

}  // namespace

const char* MethodToString(Method m) {
  switch (m) {
    case Method::kEqualLength:
      return "EL";
    case Method::kMaxEntropy:
      return "ME";
    case Method::kKMeans:
      return "KM";
  }
  return "?";
}

StatusOr<Alphabet> BuildEqualLength(std::span<const Value> values,
                                    std::size_t num_categories) {
  TSW_RETURN_IF_ERROR(ValidateInput(values, num_categories));
  auto [lo, hi] = MinMax(values);
  if (!(hi > lo)) {
    return Status::InvalidArgument("value range degenerate: all values equal");
  }
  std::vector<Value> boundaries;
  boundaries.reserve(num_categories + 1);
  const Value width = (hi - lo) / static_cast<Value>(num_categories);
  for (std::size_t i = 0; i <= num_categories; ++i) {
    boundaries.push_back(lo + width * static_cast<Value>(i));
  }
  boundaries.back() = hi;  // Guard against floating-point drift.
  return FromDedupedBoundaries(std::move(boundaries));
}

StatusOr<Alphabet> BuildMaxEntropy(std::span<const Value> values,
                                   std::size_t num_categories) {
  TSW_RETURN_IF_ERROR(ValidateInput(values, num_categories));
  std::vector<Value> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  const std::size_t n = sorted.size();
  std::vector<Value> boundaries;
  boundaries.reserve(num_categories + 1);
  boundaries.push_back(sorted.front());
  for (std::size_t i = 1; i < num_categories; ++i) {
    // Quantile boundary: every category gets ~n/c elements, which equalizes
    // P(C_i) and hence maximizes the entropy (paper Section 5.1).
    const std::size_t idx = (i * n) / num_categories;
    boundaries.push_back(sorted[idx]);
  }
  boundaries.push_back(sorted.back());
  return FromDedupedBoundaries(std::move(boundaries));
}

StatusOr<Alphabet> BuildKMeans(std::span<const Value> values,
                               std::size_t num_categories, int max_iters,
                               std::uint64_t seed) {
  TSW_RETURN_IF_ERROR(ValidateInput(values, num_categories));
  std::vector<Value> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  const std::size_t n = sorted.size();
  if (!(sorted.back() > sorted.front())) {
    return Status::InvalidArgument("value range degenerate: all values equal");
  }

  // Seed centers at quantiles, with a small jitter so ties break
  // deterministically but not degenerately.
  Rng rng(seed);
  std::vector<Value> centers;
  centers.reserve(num_categories);
  for (std::size_t i = 0; i < num_categories; ++i) {
    const std::size_t idx =
        std::min(n - 1, ((2 * i + 1) * n) / (2 * num_categories));
    centers.push_back(sorted[idx]);
  }
  std::sort(centers.begin(), centers.end());
  centers.erase(std::unique(centers.begin(), centers.end()), centers.end());
  while (centers.size() < num_categories) {
    centers.push_back(rng.Uniform(sorted.front(), sorted.back()));
    std::sort(centers.begin(), centers.end());
    centers.erase(std::unique(centers.begin(), centers.end()), centers.end());
  }

  // Lloyd iterations exploiting 1-D ordering: cluster k owns the sorted
  // range between midpoints of adjacent centers.
  std::vector<Value> sums(centers.size());
  std::vector<std::size_t> counts(centers.size());
  for (int iter = 0; iter < max_iters; ++iter) {
    std::fill(sums.begin(), sums.end(), 0.0);
    std::fill(counts.begin(), counts.end(), 0u);
    std::size_t k = 0;
    for (Value v : sorted) {
      while (k + 1 < centers.size() &&
             v > (centers[k] + centers[k + 1]) / 2) {
        ++k;
      }
      sums[k] += v;
      ++counts[k];
    }
    bool moved = false;
    for (std::size_t i = 0; i < centers.size(); ++i) {
      if (counts[i] == 0) continue;
      const Value next = sums[i] / static_cast<Value>(counts[i]);
      if (std::fabs(next - centers[i]) > 1e-12) moved = true;
      centers[i] = next;
    }
    std::sort(centers.begin(), centers.end());
    if (!moved) break;
  }

  std::vector<Value> boundaries;
  boundaries.reserve(centers.size() + 1);
  boundaries.push_back(sorted.front());
  for (std::size_t i = 0; i + 1 < centers.size(); ++i) {
    boundaries.push_back((centers[i] + centers[i + 1]) / 2);
  }
  boundaries.push_back(sorted.back());
  return FromDedupedBoundaries(std::move(boundaries));
}

StatusOr<Alphabet> Build(Method method, std::span<const Value> values,
                         std::size_t num_categories, std::uint64_t seed) {
  switch (method) {
    case Method::kEqualLength:
      return BuildEqualLength(values, num_categories);
    case Method::kMaxEntropy:
      return BuildMaxEntropy(values, num_categories);
    case Method::kKMeans:
      return BuildKMeans(values, num_categories, /*max_iters=*/32, seed);
  }
  return Status::InvalidArgument("unknown method");
}

std::vector<Value> CollectValues(const seqdb::SequenceDatabase& db) {
  std::vector<Value> out;
  out.reserve(db.TotalElements());
  for (SeqId id = 0; id < db.size(); ++id) {
    const seqdb::Sequence& s = db.sequence(id);
    out.insert(out.end(), s.begin(), s.end());
  }
  return out;
}

double CategorizationEntropy(std::span<const Value> values,
                             const Alphabet& alphabet) {
  TSW_CHECK(!values.empty());
  std::vector<std::size_t> counts(alphabet.size(), 0);
  for (Value v : values) {
    ++counts[static_cast<std::size_t>(alphabet.ToSymbol(v))];
  }
  double h = 0.0;
  const double n = static_cast<double>(values.size());
  for (std::size_t c : counts) {
    if (c == 0) continue;
    const double p = static_cast<double>(c) / n;
    h -= p * std::log(p);
  }
  return h;
}

std::vector<Symbol> Convert(std::span<const Value> seq,
                            const Alphabet& alphabet) {
  std::vector<Symbol> out;
  out.reserve(seq.size());
  for (Value v : seq) out.push_back(alphabet.ToSymbol(v));
  return out;
}

CategorizedDatabase ConvertDatabase(const seqdb::SequenceDatabase& db,
                                    Alphabet* alphabet) {
  TSW_CHECK(alphabet != nullptr);
  CategorizedDatabase out;
  out.sequences.reserve(db.size());
  for (SeqId id = 0; id < db.size(); ++id) {
    const seqdb::Sequence& s = db.sequence(id);
    std::vector<Symbol> cs;
    cs.reserve(s.size());
    for (Value v : s) {
      cs.push_back(alphabet->ToSymbol(v));
      alphabet->FitValue(v);
    }
    out.sequences.push_back(std::move(cs));
  }
  return out;
}

}  // namespace tswarp::categorize
