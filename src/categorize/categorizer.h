#ifndef TSWARP_CATEGORIZE_CATEGORIZER_H_
#define TSWARP_CATEGORIZE_CATEGORIZER_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "categorize/alphabet.h"
#include "common/status.h"
#include "common/types.h"
#include "seqdb/sequence_database.h"

namespace tswarp::categorize {

/// Categorization method (paper Section 5.1, plus k-means which the paper
/// mentions as an alternative).
enum class Method {
  kEqualLength,   // EL: equal interval width (MAX-MIN)/c.
  kMaxEntropy,    // ME: equal-frequency boundaries maximizing entropy.
  kKMeans,        // 1-D Lloyd's algorithm; boundaries at center midpoints.
};

const char* MethodToString(Method m);

/// Equal-length categorization: c categories of width (MAX-MIN)/c over the
/// observed value range of `values`. Requires c >= 1 and a non-degenerate
/// value range (MAX > MIN).
StatusOr<Alphabet> BuildEqualLength(std::span<const Value> values,
                                    std::size_t num_categories);

/// Maximum-entropy categorization: boundaries chosen so every category holds
/// (as nearly as possible) the same number of elements, which maximizes
/// H(C) = -sum P(C_i) log P(C_i). Duplicate quantile boundaries are merged,
/// so the result may have fewer than `num_categories` categories.
StatusOr<Alphabet> BuildMaxEntropy(std::span<const Value> values,
                                   std::size_t num_categories);

/// 1-D k-means categorization: Lloyd iterations from quantile-seeded
/// centers; category boundaries at midpoints between adjacent centers.
StatusOr<Alphabet> BuildKMeans(std::span<const Value> values,
                               std::size_t num_categories, int max_iters,
                               std::uint64_t seed);

/// Dispatch over Method. `seed` is only used by k-means.
StatusOr<Alphabet> Build(Method method, std::span<const Value> values,
                         std::size_t num_categories, std::uint64_t seed = 1);

/// Flattens a database into one value vector (input to the Build* functions).
std::vector<Value> CollectValues(const seqdb::SequenceDatabase& db);

/// Shannon entropy of the categorization of `values` under `alphabet`,
/// in nats. Used by tests and the categorizer ablation.
double CategorizationEntropy(std::span<const Value> values,
                             const Alphabet& alphabet);

/// Converts one sequence to symbols without fitting the alphabet.
std::vector<Symbol> Convert(std::span<const Value> seq,
                            const Alphabet& alphabet);

/// A database converted to category symbols, parallel to the source
/// SequenceDatabase.
struct CategorizedDatabase {
  std::vector<std::vector<Symbol>> sequences;

  std::size_t size() const { return sequences.size(); }
  const std::vector<Symbol>& sequence(SeqId id) const {
    return sequences[id];
  }
};

/// Converts every sequence of `db` and fits `alphabet`'s category [lb, ub]
/// intervals to the observed per-category min/max (paper Section 5.3: the
/// minimum and maximum element values found in the category). The fitted
/// alphabet is what guarantees D_tw-lb <= D_tw for indexed data.
CategorizedDatabase ConvertDatabase(const seqdb::SequenceDatabase& db,
                                    Alphabet* alphabet);

}  // namespace tswarp::categorize

#endif  // TSWARP_CATEGORIZE_CATEGORIZER_H_
