#ifndef TSWARP_CATEGORIZE_ALPHABET_H_
#define TSWARP_CATEGORIZE_ALPHABET_H_

#include <span>
#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "dtw/dtw.h"

namespace tswarp::categorize {

/// A category: an interval of element values. `lb`/`ub` are the minimum and
/// maximum element values *found in* the category (paper Section 5.3) once
/// the alphabet has been fitted to data; before fitting they are the nominal
/// category boundaries.
struct Category {
  Value lb;
  Value ub;
};

/// A discrete alphabet produced by a categorization method: an ordered set
/// of categories covering the value range. Converts continuous values to
/// dense Symbols and exposes per-category [lb, ub] intervals for the
/// D_tw-lb lower bound.
class Alphabet {
 public:
  /// Builds an alphabet from nominal boundaries b_0 < b_1 < ... < b_c;
  /// category i spans [b_i, b_{i+1}). The last category is closed above.
  /// Duplicate boundaries are rejected.
  static StatusOr<Alphabet> FromBoundaries(std::vector<Value> boundaries);

  /// Number of categories (the paper's c).
  std::size_t size() const { return categories_.size(); }

  /// Maps a value to its category symbol. Values outside the nominal range
  /// are clamped to the first/last category; FitValue() must have seen them
  /// for the lower-bound property to hold.
  Symbol ToSymbol(Value v) const;

  const Category& category(Symbol s) const;

  /// The [lb, ub] interval of a category as a DTW Interval.
  dtw::Interval ToInterval(Symbol s) const {
    const Category& c = category(s);
    return {c.lb, c.ub};
  }

  /// Records that `v` was categorized as ToSymbol(v), widening or (first
  /// call per category) tightening that category's [lb, ub] to the observed
  /// data. After fitting every indexed value, lb/ub are exactly the min/max
  /// element values found in the category, as the paper specifies.
  void FitValue(Value v);

  /// True once at least one value has been fitted into category `s`.
  bool IsFitted(Symbol s) const { return fitted_[static_cast<size_t>(s)]; }

  /// Nominal boundary vector (size() + 1 entries).
  std::span<const Value> boundaries() const { return boundaries_; }

 private:
  Alphabet() = default;

  std::vector<Value> boundaries_;    // size c+1, strictly increasing.
  std::vector<Category> categories_; // size c.
  std::vector<bool> fitted_;         // size c.
};

}  // namespace tswarp::categorize

#endif  // TSWARP_CATEGORIZE_ALPHABET_H_
