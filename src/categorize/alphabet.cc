#include "categorize/alphabet.h"

#include <algorithm>

#include "common/logging.h"

namespace tswarp::categorize {

StatusOr<Alphabet> Alphabet::FromBoundaries(std::vector<Value> boundaries) {
  if (boundaries.size() < 2) {
    return Status::InvalidArgument("need at least two boundaries");
  }
  if (!std::is_sorted(boundaries.begin(), boundaries.end())) {
    return Status::InvalidArgument("boundaries must be sorted");
  }
  if (std::adjacent_find(boundaries.begin(), boundaries.end()) !=
      boundaries.end()) {
    return Status::InvalidArgument("boundaries must be strictly increasing");
  }
  Alphabet a;
  a.boundaries_ = std::move(boundaries);
  const std::size_t c = a.boundaries_.size() - 1;
  a.categories_.reserve(c);
  for (std::size_t i = 0; i < c; ++i) {
    a.categories_.push_back({a.boundaries_[i], a.boundaries_[i + 1]});
  }
  a.fitted_.assign(c, false);
  return a;
}

Symbol Alphabet::ToSymbol(Value v) const {
  // Category i spans [b_i, b_{i+1}); upper_bound finds the first boundary
  // strictly greater than v.
  auto it = std::upper_bound(boundaries_.begin(), boundaries_.end(), v);
  std::ptrdiff_t idx = (it - boundaries_.begin()) - 1;
  idx = std::clamp<std::ptrdiff_t>(idx, 0,
                                   static_cast<std::ptrdiff_t>(size()) - 1);
  return static_cast<Symbol>(idx);
}

const Category& Alphabet::category(Symbol s) const {
  TSW_CHECK(s >= 0 && static_cast<std::size_t>(s) < categories_.size())
      << "bad symbol " << s;
  return categories_[static_cast<std::size_t>(s)];
}

void Alphabet::FitValue(Value v) {
  const auto s = static_cast<std::size_t>(ToSymbol(v));
  Category& c = categories_[s];
  if (!fitted_[s]) {
    c.lb = v;
    c.ub = v;
    fitted_[s] = true;
  } else {
    c.lb = std::min(c.lb, v);
    c.ub = std::max(c.ub, v);
  }
}

}  // namespace tswarp::categorize
