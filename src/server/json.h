#ifndef TSWARP_SERVER_JSON_H_
#define TSWARP_SERVER_JSON_H_

#include <cstddef>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace tswarp::server {

/// Minimal JSON document model for the tswarpd wire protocol. The server
/// exchanges small request/response bodies, so a plain recursive value
/// (map-backed objects, vector-backed arrays) is the right weight — no
/// external dependency, deterministic serialization, strict parsing.
///
/// Deliberate strictness (each of these is a protocol test): input must be
/// a single JSON value with nothing but whitespace after it, numbers must
/// be finite, strings must be valid escape sequences (\uXXXX is accepted
/// for ASCII and encoded as UTF-8 for the BMP), and nesting depth is
/// capped so a hostile body cannot blow the stack.
class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  JsonValue() : kind_(Kind::kNull) {}
  static JsonValue MakeBool(bool b);
  static JsonValue MakeNumber(double d);
  static JsonValue MakeString(std::string s);
  static JsonValue MakeArray();
  static JsonValue MakeObject();

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_bool() const { return kind_ == Kind::kBool; }
  bool is_number() const { return kind_ == Kind::kNumber; }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_object() const { return kind_ == Kind::kObject; }

  bool AsBool() const { return bool_; }
  double AsNumber() const { return number_; }
  const std::string& AsString() const { return string_; }
  const std::vector<JsonValue>& AsArray() const { return array_; }
  /// Ordered map: serialization and iteration are deterministic.
  const std::map<std::string, JsonValue>& AsObject() const { return object_; }

  /// Object member lookup; nullptr when absent (or not an object).
  const JsonValue* Find(std::string_view key) const;

  std::vector<JsonValue>* MutableArray() { return &array_; }
  /// Sets (replacing) an object member.
  void Set(std::string key, JsonValue value);

  /// Serializes compactly (no whitespace), keys in map order, doubles via
  /// shortest round-trip (std::to_chars) so equal inputs always produce
  /// byte-equal output.
  std::string Dump() const;

 private:
  Kind kind_;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<JsonValue> array_;
  std::map<std::string, JsonValue> object_;
};

/// Parses `text` as one strict JSON document. On failure the status
/// message names the byte offset and what was expected.
StatusOr<JsonValue> ParseJson(std::string_view text);

/// Appends `d` to `out` in the canonical wire format: shortest
/// round-trip decimal, "-0" normalized to "0". Shared by JsonValue::Dump
/// and hand-rolled serializers that must stay byte-compatible with it.
void AppendJsonNumber(std::string* out, double d);

/// Appends the JSON string literal (quotes + escapes) for `s`.
void AppendJsonString(std::string* out, std::string_view s);

}  // namespace tswarp::server

#endif  // TSWARP_SERVER_JSON_H_
