#ifndef TSWARP_SERVER_CLIENT_H_
#define TSWARP_SERVER_CLIENT_H_

#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/status.h"

namespace tswarp::server {

/// One parsed HTTP response as received by the test client. `raw` keeps
/// the exact wire bytes (status line through body) for golden comparisons.
struct ClientResponse {
  int status = 0;
  std::vector<std::pair<std::string, std::string>> headers;  // Lower-cased.
  std::string body;
  std::string raw;

  /// First header with `name` (lower-case), or "".
  std::string_view Header(std::string_view name) const;
};

/// Minimal blocking HTTP/1.1 client over one keep-alive connection —
/// enough protocol for the e2e tests and the load generator, nothing
/// more. Not thread-safe; use one client per thread.
class HttpClient {
 public:
  /// Connects to 127.0.0.1-style `address`:`port`.
  static StatusOr<HttpClient> Connect(const std::string& address, int port);

  HttpClient(HttpClient&& other) noexcept;
  HttpClient& operator=(HttpClient&& other) noexcept;
  HttpClient(const HttpClient&) = delete;
  HttpClient& operator=(const HttpClient&) = delete;
  ~HttpClient();

  StatusOr<ClientResponse> Get(const std::string& path);
  StatusOr<ClientResponse> Post(const std::string& path,
                                const std::string& body);

  /// Sends `request_bytes` verbatim and reads one response — the hook the
  /// protocol golden tests use to send deliberately malformed framing.
  StatusOr<ClientResponse> Roundtrip(const std::string& request_bytes);

 private:
  explicit HttpClient(int fd) : fd_(fd) {}

  StatusOr<ClientResponse> ReadResponse();

  int fd_ = -1;
  std::string buffer_;  // Bytes past the previous response (keep-alive).
};

}  // namespace tswarp::server

#endif  // TSWARP_SERVER_CLIENT_H_
