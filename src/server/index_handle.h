#ifndef TSWARP_SERVER_INDEX_HANDLE_H_
#define TSWARP_SERVER_INDEX_HANDLE_H_

#include <memory>
#include <mutex>
#include <utility>

#include "core/index.h"

namespace tswarp::server {

/// Publication point for the index a long-lived server is serving.
///
/// core::Index is freely shareable for concurrent *reads*, but mutating the
/// object itself — move-assigning a freshly Open()ed index into a slot that
/// in-flight /stats or /search handlers are reading — is a data race (the
/// handler may dereference `disk_tree_` mid-swap). IndexHandle fixes that
/// by never mutating a published index: Replace() swaps a shared_ptr under
/// a mutex, readers take a Snapshot() that pins the instance they started
/// with for the duration of their request, and the old index is destroyed
/// only when its last reader drops the pin. Index::Open itself touches no
/// shared mutable state, so building the replacement concurrently with
/// serving is safe; the ServerIndexReload regression test runs exactly
/// that pattern under TSan.
class IndexHandle {
 public:
  explicit IndexHandle(core::Index index)
      : current_(std::make_shared<const core::Index>(std::move(index))) {}

  IndexHandle(const IndexHandle&) = delete;
  IndexHandle& operator=(const IndexHandle&) = delete;

  /// The currently published index, pinned for as long as the caller holds
  /// the pointer. Requests take one snapshot up front and use it for every
  /// access, so a mid-request Replace() cannot pull the index out from
  /// under them.
  std::shared_ptr<const core::Index> Snapshot() const {
    std::lock_guard<std::mutex> lock(mu_);
    return current_;
  }

  /// Publishes `next` atomically with respect to Snapshot(). The previous
  /// index stays alive until its last snapshot is released; its destructor
  /// runs on whichever thread drops that pin.
  void Replace(core::Index next) {
    auto fresh = std::make_shared<const core::Index>(std::move(next));
    std::lock_guard<std::mutex> lock(mu_);
    current_ = std::move(fresh);
  }

 private:
  mutable std::mutex mu_;
  std::shared_ptr<const core::Index> current_;
};

}  // namespace tswarp::server

#endif  // TSWARP_SERVER_INDEX_HANDLE_H_
