#ifndef TSWARP_SERVER_INDEX_HANDLE_H_
#define TSWARP_SERVER_INDEX_HANDLE_H_

#include <memory>
#include <mutex>
#include <utility>

#include "core/index.h"
#include "core/tiered_index.h"

namespace tswarp::server {

/// Publication point for the index a long-lived server is serving.
///
/// The server never reads a mutable index object: every request takes one
/// immutable core::IndexSnapshot up front and uses it throughout, so a
/// concurrent Replace() or a TieredIndex append/merge publishing a newer
/// snapshot cannot pull tiers out from under an in-flight handler (the
/// snapshot pins its tiers — trees, buffer managers, database fragments —
/// until the last holder drops the pointer). This generalizes the PR 7
/// race fix: core::Index move-assignment is deleted outright, and this
/// handle (or the TieredIndex behind it) is the only sanctioned swap path.
///
/// Two modes:
///   - static: constructed from a core::Index; Snapshot() returns the
///     published snapshot and Replace() hot-swaps it (reload path).
///   - tiered: constructed from a core::TieredIndex; Snapshot() returns
///     the tiered index's live snapshot, and tiered() exposes the mutable
///     face for /append and continuous queries. Replace() is not
///     meaningful in this mode (TieredIndex::Append is the mutation path).
class IndexHandle {
 public:
  explicit IndexHandle(core::Index index) : current_(index.snapshot()) {}

  explicit IndexHandle(std::shared_ptr<core::TieredIndex> tiered)
      : tiered_(std::move(tiered)) {}

  IndexHandle(const IndexHandle&) = delete;
  IndexHandle& operator=(const IndexHandle&) = delete;

  /// The currently published snapshot, pinned for as long as the caller
  /// holds the pointer. Requests take one snapshot up front and use it for
  /// every access.
  std::shared_ptr<const core::IndexSnapshot> Snapshot() const {
    if (tiered_ != nullptr) return tiered_->Snapshot();
    std::lock_guard<std::mutex> lock(mu_);
    return current_;
  }

  /// Publishes `next` atomically with respect to Snapshot() (static mode
  /// only). The previous snapshot stays alive until its last holder
  /// releases it; tier destructors run on whichever thread drops the pin.
  void Replace(core::Index next) {
    auto fresh = next.snapshot();
    std::lock_guard<std::mutex> lock(mu_);
    current_ = std::move(fresh);
  }

  /// The mutable tiered index behind this handle, or nullptr in static
  /// mode (appends unsupported).
  core::TieredIndex* tiered() const { return tiered_.get(); }

 private:
  mutable std::mutex mu_;
  std::shared_ptr<const core::IndexSnapshot> current_;
  std::shared_ptr<core::TieredIndex> tiered_;
};

}  // namespace tswarp::server

#endif  // TSWARP_SERVER_INDEX_HANDLE_H_
