#include "server/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <charconv>
#include <cstring>

namespace tswarp::server {

namespace {

std::string ToLower(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return out;
}

Status Errno(const char* what) {
  return Status::IOError(std::string(what) + ": " + std::strerror(errno));
}

}  // namespace

std::string_view ClientResponse::Header(std::string_view name) const {
  for (const auto& [key, value] : headers) {
    if (key == name) return value;
  }
  return {};
}

StatusOr<HttpClient> HttpClient::Connect(const std::string& address,
                                         int port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Errno("socket");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::inet_pton(AF_INET, address.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return Status::InvalidArgument("bad address: " + address);
  }
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) <
      0) {
    const Status status = Errno("connect");
    ::close(fd);
    return status;
  }
  return HttpClient(fd);
}

HttpClient::HttpClient(HttpClient&& other) noexcept
    : fd_(other.fd_), buffer_(std::move(other.buffer_)) {
  other.fd_ = -1;
}

HttpClient& HttpClient::operator=(HttpClient&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) ::close(fd_);
    fd_ = other.fd_;
    buffer_ = std::move(other.buffer_);
    other.fd_ = -1;
  }
  return *this;
}

HttpClient::~HttpClient() {
  if (fd_ >= 0) ::close(fd_);
}

StatusOr<ClientResponse> HttpClient::Get(const std::string& path) {
  return Roundtrip("GET " + path + " HTTP/1.1\r\nHost: tswarpd\r\n\r\n");
}

StatusOr<ClientResponse> HttpClient::Post(const std::string& path,
                                          const std::string& body) {
  return Roundtrip("POST " + path +
                   " HTTP/1.1\r\nHost: tswarpd\r\nContent-Type: "
                   "application/json\r\nContent-Length: " +
                   std::to_string(body.size()) + "\r\n\r\n" + body);
}

StatusOr<ClientResponse> HttpClient::Roundtrip(
    const std::string& request_bytes) {
  std::string_view remaining = request_bytes;
  while (!remaining.empty()) {
    const ssize_t n =
        ::send(fd_, remaining.data(), remaining.size(), MSG_NOSIGNAL);
    if (n <= 0) return Errno("send");
    remaining.remove_prefix(static_cast<std::size_t>(n));
  }
  return ReadResponse();
}

StatusOr<ClientResponse> HttpClient::ReadResponse() {
  // Accumulate until the full head and Content-Length body are buffered.
  while (true) {
    const std::size_t header_end = buffer_.find("\r\n\r\n");
    if (header_end != std::string::npos) {
      // Parse the head.
      ClientResponse response;
      const std::string_view head =
          std::string_view(buffer_).substr(0, header_end);
      const std::size_t line_end = head.find("\r\n");
      const std::string_view status_line =
          head.substr(0, std::min(line_end, head.size()));
      // "HTTP/1.1 NNN Reason"
      const std::size_t sp = status_line.find(' ');
      if (sp == std::string_view::npos || status_line.size() < sp + 4) {
        return Status::Corruption("malformed status line");
      }
      const std::string_view code = status_line.substr(sp + 1, 3);
      const auto [unused, ec] =
          std::from_chars(code.data(), code.data() + code.size(),
                          response.status);
      if (ec != std::errc()) {
        return Status::Corruption("malformed status code");
      }
      std::size_t cursor =
          line_end == std::string_view::npos ? head.size() : line_end + 2;
      std::size_t content_length = 0;
      while (cursor < head.size()) {
        std::size_t eol = head.find("\r\n", cursor);
        if (eol == std::string_view::npos) eol = head.size();
        const std::string_view line = head.substr(cursor, eol - cursor);
        const std::size_t colon = line.find(':');
        if (colon != std::string_view::npos) {
          std::string_view value = line.substr(colon + 1);
          while (!value.empty() && (value.front() == ' ')) {
            value.remove_prefix(1);
          }
          std::string name = ToLower(line.substr(0, colon));
          if (name == "content-length") {
            std::from_chars(value.data(), value.data() + value.size(),
                            content_length);
          }
          response.headers.emplace_back(std::move(name), std::string(value));
        }
        cursor = eol + 2;
      }
      const std::size_t total = header_end + 4 + content_length;
      if (buffer_.size() >= total) {
        response.body = buffer_.substr(header_end + 4, content_length);
        response.raw = buffer_.substr(0, total);
        buffer_.erase(0, total);
        return response;
      }
    }
    char chunk[4096];
    const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n < 0) return Errno("recv");
    if (n == 0) {
      return Status::IOError("connection closed before a full response");
    }
    buffer_.append(chunk, static_cast<std::size_t>(n));
  }
}

}  // namespace tswarp::server
