#include "server/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <array>
#include <atomic>
#include <cerrno>
#include <cmath>
#include <cstring>
#include <deque>
#include <future>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/bounded_queue.h"
#include "common/cancellation.h"
#include "common/task_scheduler.h"
#include "server/json.h"

namespace tswarp::server {

namespace {

/// One admitted search: the parsed request plus the reply slot the
/// connection thread is blocked on. The CancelToken lives here so its
/// deadline covers queue wait as well as execution (armed at admission).
struct SearchJob {
  std::vector<Value> query;
  Value epsilon = 0;
  std::size_t k = 0;  // > 0 selects k-NN; 0 selects range search.
  core::QueryOptions opts;
  bool include_stats = false;
  bool has_deadline = false;
  CancelToken cancel;
  std::promise<HttpResponse> reply;
};

using JobPtr = std::unique_ptr<SearchJob>;

HttpResponse JsonResponse(int status, std::string body) {
  HttpResponse response;
  response.status = status;
  response.AddHeader("Content-Type", "application/json");
  response.body = std::move(body);
  return response;
}

HttpResponse ErrorResponse(int status, std::string_view code,
                           std::string_view message) {
  return JsonResponse(status, ErrorBody(code, message));
}

JsonValue StatsToJson(const core::SearchStats& s) {
  JsonValue obj = JsonValue::MakeObject();
  const auto num = [](std::uint64_t v) {
    return JsonValue::MakeNumber(static_cast<double>(v));
  };
  obj.Set("answers", num(s.answers));
  obj.Set("branches_pruned", num(s.branches_pruned));
  obj.Set("cancelled", num(s.cancelled));
  obj.Set("candidates", num(s.candidates));
  obj.Set("cells_computed", num(s.cells_computed));
  obj.Set("endpoint_rejections", num(s.endpoint_rejections));
  obj.Set("exact_dtw_calls", num(s.exact_dtw_calls));
  obj.Set("lb_invocations", num(s.lb_invocations));
  obj.Set("lb_pruned", num(s.lb_pruned));
  obj.Set("nodes_pruned_by_summary", num(s.nodes_pruned_by_summary));
  obj.Set("nodes_visited", num(s.nodes_visited));
  obj.Set("replayed_rows", num(s.replayed_rows));
  obj.Set("rows_pushed", num(s.rows_pushed));
  obj.Set("summary_lb_invocations", num(s.summary_lb_invocations));
  obj.Set("steal_attempts", num(s.steal_attempts));
  obj.Set("tasks_executed", num(s.tasks_executed));
  obj.Set("tasks_stolen", num(s.tasks_stolen));
  obj.Set("unshared_rows", num(s.unshared_rows));
  return obj;
}

/// True when `v` is a non-negative integral number <= `max`.
bool AsCount(const JsonValue& v, double max, double* out) {
  if (!v.is_number()) return false;
  const double d = v.AsNumber();
  if (d < 0 || d != std::floor(d) || d > max) return false;
  *out = d;
  return true;
}

bool SendAll(int fd, std::string_view data) {
  while (!data.empty()) {
    const ssize_t n = ::send(fd, data.data(), data.size(), MSG_NOSIGNAL);
    if (n <= 0) return false;
    data.remove_prefix(static_cast<std::size_t>(n));
  }
  return true;
}

JsonValue MatchesToJson(std::span<const core::Match> matches) {
  JsonValue arr = JsonValue::MakeArray();
  for (const core::Match& m : matches) {
    JsonValue obj = JsonValue::MakeObject();
    obj.Set("distance", JsonValue::MakeNumber(m.distance));
    obj.Set("len", JsonValue::MakeNumber(static_cast<double>(m.len)));
    obj.Set("seq", JsonValue::MakeNumber(static_cast<double>(m.seq)));
    obj.Set("start", JsonValue::MakeNumber(static_cast<double>(m.start)));
    arr.MutableArray()->push_back(std::move(obj));
  }
  return arr;
}

/// Per-registration delivery buffer of a continuous query served over
/// HTTP: the TieredIndex callback pushes new matches here (bounded;
/// overflow drops the oldest and counts), and /continuous/poll drains it.
/// shared_ptr-owned by both the callback closure and the server map, so a
/// late callback after unregister/shutdown is harmless.
struct ContinuousChannel {
  static constexpr std::size_t kBufferCap = 4096;

  std::mutex mu;
  std::deque<core::Match> buffer;
  std::uint64_t delivered = 0;  // Matches handed to clients via poll.
  std::uint64_t dropped = 0;    // Overflowed matches (client too slow).

  void Push(const std::vector<core::Match>& matches) {
    std::lock_guard<std::mutex> lock(mu);
    for (const core::Match& m : matches) {
      if (buffer.size() >= kBufferCap) {
        buffer.pop_front();
        ++dropped;
      }
      buffer.push_back(m);
    }
  }
};

}  // namespace

std::string ErrorBody(std::string_view code, std::string_view message) {
  JsonValue err = JsonValue::MakeObject();
  err.Set("code", JsonValue::MakeString(std::string(code)));
  err.Set("message", JsonValue::MakeString(std::string(message)));
  JsonValue root = JsonValue::MakeObject();
  root.Set("error", std::move(err));
  return root.Dump();
}

std::string SearchResponseBody(std::string_view status_word,
                               std::span<const core::Match> matches,
                               const core::SearchStats* stats) {
  JsonValue root = JsonValue::MakeObject();
  root.Set("count",
           JsonValue::MakeNumber(static_cast<double>(matches.size())));
  root.Set("matches", MatchesToJson(matches));
  if (stats != nullptr) root.Set("stats", StatsToJson(*stats));
  root.Set("status", JsonValue::MakeString(std::string(status_word)));
  return root.Dump();
}

struct Server::Impl {
  IndexHandle* index = nullptr;
  ServerOptions options;
  int listen_fd = -1;
  int bound_port = 0;

  std::atomic<bool> draining{false};
  std::unique_ptr<BoundedQueue<JobPtr>> jobs;
  std::unique_ptr<BoundedQueue<int>> conns;

  std::thread accept_thread;
  std::thread dispatch_thread;
  std::vector<std::thread> conn_threads;
  std::once_flag shutdown_once;

  mutable std::mutex counters_mu;
  ServerCounters counters;

  // HTTP-registered continuous queries, keyed by the TieredIndex query id.
  std::mutex continuous_mu;
  std::map<std::uint64_t, std::shared_ptr<ContinuousChannel>> continuous;

  ~Impl() {
    if (listen_fd >= 0) ::close(listen_fd);
  }

  void CountProtocolError() {
    std::lock_guard<std::mutex> lock(counters_mu);
    ++counters.protocol_errors;
  }

  Status Bind() {
    listen_fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (listen_fd < 0) {
      return Status::IOError(std::string("socket: ") + std::strerror(errno));
    }
    const int one = 1;
    ::setsockopt(listen_fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<std::uint16_t>(options.port));
    if (::inet_pton(AF_INET, options.address.c_str(), &addr.sin_addr) != 1) {
      return Status::InvalidArgument("bad bind address: " + options.address);
    }
    if (::bind(listen_fd, reinterpret_cast<const sockaddr*>(&addr),
               sizeof(addr)) < 0) {
      return Status::IOError(std::string("bind: ") + std::strerror(errno));
    }
    if (::listen(listen_fd, 128) < 0) {
      return Status::IOError(std::string("listen: ") + std::strerror(errno));
    }
    sockaddr_in bound{};
    socklen_t len = sizeof(bound);
    if (::getsockname(listen_fd, reinterpret_cast<sockaddr*>(&bound), &len) <
        0) {
      return Status::IOError(std::string("getsockname: ") +
                             std::strerror(errno));
    }
    bound_port = ntohs(bound.sin_port);
    return Status::OK();
  }

  void AcceptLoop() {
    while (!draining.load(std::memory_order_relaxed)) {
      pollfd pfd{listen_fd, POLLIN, 0};
      const int ready = ::poll(&pfd, 1, 100);
      if (ready <= 0) continue;
      const int fd = ::accept(listen_fd, nullptr, nullptr);
      if (fd < 0) continue;
      {
        std::lock_guard<std::mutex> lock(counters_mu);
        ++counters.connections;
      }
      if (!conns->TryPush(fd)) {
        // Every handler thread is busy and the hand-off buffer is full:
        // refuse at the door rather than let the connection hang.
        const HttpResponse resp =
            ErrorResponse(503, "overloaded", "no connection slots available");
        SendAll(fd, resp.Serialize(false));
        ::close(fd);
      }
    }
  }

  void ConnLoop() {
    int fd = -1;
    while (conns->Pop(&fd)) {
      HandleConnection(fd);
      ::close(fd);
    }
  }

  void HandleConnection(int fd) {
    static constexpr int kPollMs = 100;
    static constexpr int kIdleLimitMs = 5000;
    std::string buffer;
    int idle_ms = 0;
    while (true) {
      HttpRequest request;
      std::size_t consumed = 0;
      const HttpParseStatus parse =
          ParseHttpRequest(buffer, options.http_limits, &request, &consumed);
      if (parse == HttpParseStatus::kIncomplete) {
        if (draining.load(std::memory_order_relaxed) && buffer.empty()) {
          return;  // Idle keep-alive connection during drain: just close.
        }
        pollfd pfd{fd, POLLIN, 0};
        const int ready = ::poll(&pfd, 1, kPollMs);
        if (ready < 0) return;
        if (ready == 0) {
          idle_ms += kPollMs;
          if (idle_ms >= kIdleLimitMs) {
            if (!buffer.empty()) {
              // A half-sent request timed out mid-frame.
              CountProtocolError();
              const HttpResponse resp = ErrorResponse(
                  408, "request_timeout", "timed out waiting for the request");
              SendAll(fd, resp.Serialize(false));
            }
            return;
          }
          continue;
        }
        char chunk[4096];
        const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
        if (n <= 0) return;
        buffer.append(chunk, static_cast<std::size_t>(n));
        idle_ms = 0;
        continue;
      }
      if (parse != HttpParseStatus::kOk) {
        // Framing is broken or over budget; answer once and close (the
        // byte stream can no longer be trusted to stay in sync).
        CountProtocolError();
        HttpResponse resp;
        switch (parse) {
          case HttpParseStatus::kHeadersTooLarge:
            resp = ErrorResponse(431, "headers_too_large",
                                 "request headers exceed the budget");
            break;
          case HttpParseStatus::kBodyTooLarge:
            resp = ErrorResponse(413, "body_too_large",
                                 "request body exceeds the budget");
            break;
          case HttpParseStatus::kUnsupported:
            resp = ErrorResponse(501, "unsupported",
                                 "Transfer-Encoding is not supported");
            break;
          default:
            resp =
                ErrorResponse(400, "bad_request", "malformed HTTP request");
        }
        SendAll(fd, resp.Serialize(false));
        return;
      }
      buffer.erase(0, consumed);
      {
        std::lock_guard<std::mutex> lock(counters_mu);
        ++counters.requests;
      }
      const HttpResponse response = Route(request);
      const bool keep_alive =
          request.KeepAlive() && !draining.load(std::memory_order_relaxed);
      if (!SendAll(fd, response.Serialize(keep_alive))) return;
      if (!keep_alive) return;
    }
  }

  HttpResponse Route(const HttpRequest& request) {
    if (request.target == "/healthz") {
      if (request.method != "GET") return MethodNotAllowed("GET");
      if (draining.load(std::memory_order_relaxed)) {
        return JsonResponse(503, "{\"status\":\"draining\"}");
      }
      return JsonResponse(200, "{\"status\":\"ok\"}");
    }
    if (request.target == "/stats") {
      if (request.method != "GET") return MethodNotAllowed("GET");
      return JsonResponse(200, StatsBody());
    }
    if (request.target == "/search") {
      if (request.method != "POST") return MethodNotAllowed("POST");
      return HandleSearch(request);
    }
    if (request.target == "/append") {
      if (request.method != "POST") return MethodNotAllowed("POST");
      return HandleAppend(request);
    }
    if (request.target == "/continuous/register") {
      if (request.method != "POST") return MethodNotAllowed("POST");
      return HandleContinuousRegister(request);
    }
    if (request.target == "/continuous/poll") {
      if (request.method != "POST") return MethodNotAllowed("POST");
      return HandleContinuousPoll(request);
    }
    if (request.target == "/continuous/unregister") {
      if (request.method != "POST") return MethodNotAllowed("POST");
      return HandleContinuousUnregister(request);
    }
    CountProtocolError();
    return ErrorResponse(404, "not_found",
                         "unknown path " + request.target);
  }

  /// POST /append {"values":[...]} — streams one sequence into the
  /// TieredIndex behind the handle. Runs on the connection thread:
  /// TieredIndex::Append is internally serialized and thread-safe against
  /// searches, so appends need no trip through the admission queue (which
  /// exists to bound *search* concurrency).
  HttpResponse HandleAppend(const HttpRequest& request) {
    core::TieredIndex* tiered = index->tiered();
    if (tiered == nullptr) {
      CountProtocolError();
      return ErrorResponse(400, "append_unsupported",
                           "this server serves a static index");
    }
    if (draining.load(std::memory_order_relaxed)) {
      CountProtocolError();
      return ErrorResponse(503, "draining", "server is shutting down");
    }
    StatusOr<JsonValue> body = ParseJson(request.body);
    if (!body.ok()) {
      CountProtocolError();
      return ErrorResponse(400, "bad_json", body.status().message());
    }
    const JsonValue* values =
        body->is_object() ? body->Find("values") : nullptr;
    if (values == nullptr || !values->is_array() ||
        values->AsArray().empty()) {
      CountProtocolError();
      return ErrorResponse(400, "invalid_values",
                           "\"values\" must be a non-empty array of numbers");
    }
    seqdb::Sequence seq;
    seq.reserve(values->AsArray().size());
    for (const JsonValue& v : values->AsArray()) {
      if (!v.is_number()) {
        CountProtocolError();
        return ErrorResponse(400, "invalid_values",
                             "\"values\" must contain only numbers");
      }
      seq.push_back(v.AsNumber());
    }
    StatusOr<SeqId> id = tiered->Append(std::move(seq));
    if (!id.ok()) {
      CountProtocolError();
      return ErrorResponse(400, "append_failed", id.status().message());
    }
    {
      std::lock_guard<std::mutex> lock(counters_mu);
      ++counters.appends;
    }
    JsonValue root = JsonValue::MakeObject();
    root.Set("seq", JsonValue::MakeNumber(static_cast<double>(*id)));
    return JsonResponse(200, root.Dump());
  }

  /// POST /continuous/register {"query":[...], "epsilon":E} — registers a
  /// standing query on the TieredIndex; matches produced by future appends
  /// accumulate in a bounded per-query buffer drained by /continuous/poll.
  HttpResponse HandleContinuousRegister(const HttpRequest& request) {
    core::TieredIndex* tiered = index->tiered();
    if (tiered == nullptr) {
      CountProtocolError();
      return ErrorResponse(400, "append_unsupported",
                           "this server serves a static index");
    }
    StatusOr<JsonValue> body = ParseJson(request.body);
    if (!body.ok()) {
      CountProtocolError();
      return ErrorResponse(400, "bad_json", body.status().message());
    }
    const JsonValue* query =
        body->is_object() ? body->Find("query") : nullptr;
    const JsonValue* epsilon =
        body->is_object() ? body->Find("epsilon") : nullptr;
    if (query == nullptr || !query->is_array() || query->AsArray().empty() ||
        epsilon == nullptr || !epsilon->is_number() ||
        epsilon->AsNumber() < 0) {
      CountProtocolError();
      return ErrorResponse(400, "invalid_request",
                           "need \"query\" (non-empty number array) and "
                           "\"epsilon\" (number >= 0)");
    }
    std::vector<Value> q;
    q.reserve(query->AsArray().size());
    for (const JsonValue& v : query->AsArray()) {
      if (!v.is_number()) {
        CountProtocolError();
        return ErrorResponse(400, "invalid_query",
                             "\"query\" must contain only numbers");
      }
      q.push_back(v.AsNumber());
    }
    auto channel = std::make_shared<ContinuousChannel>();
    const std::uint64_t id = tiered->RegisterContinuous(
        std::move(q), epsilon->AsNumber(),
        [channel](std::uint64_t, const std::vector<core::Match>& matches) {
          channel->Push(matches);
        });
    {
      std::lock_guard<std::mutex> lock(continuous_mu);
      continuous[id] = std::move(channel);
    }
    JsonValue root = JsonValue::MakeObject();
    root.Set("id", JsonValue::MakeNumber(static_cast<double>(id)));
    return JsonResponse(200, root.Dump());
  }

  std::shared_ptr<ContinuousChannel> FindChannel(const HttpRequest& request,
                                                 std::uint64_t* id,
                                                 HttpResponse* error) {
    StatusOr<JsonValue> body = ParseJson(request.body);
    const JsonValue* idv =
        body.ok() && body->is_object() ? body->Find("id") : nullptr;
    double id_num = 0;
    if (idv == nullptr || !AsCount(*idv, 1e15, &id_num)) {
      CountProtocolError();
      *error = ErrorResponse(400, "invalid_request",
                             "\"id\" must be a registration id");
      return nullptr;
    }
    *id = static_cast<std::uint64_t>(id_num);
    std::lock_guard<std::mutex> lock(continuous_mu);
    auto it = continuous.find(*id);
    if (it == continuous.end()) {
      CountProtocolError();
      *error = ErrorResponse(404, "unknown_id",
                             "no continuous query with that id");
      return nullptr;
    }
    return it->second;
  }

  /// POST /continuous/poll {"id":N} — drains the buffered matches.
  HttpResponse HandleContinuousPoll(const HttpRequest& request) {
    std::uint64_t id = 0;
    HttpResponse error;
    std::shared_ptr<ContinuousChannel> channel =
        FindChannel(request, &id, &error);
    if (channel == nullptr) return error;
    std::vector<core::Match> drained;
    std::uint64_t dropped = 0;
    std::uint64_t delivered = 0;
    {
      std::lock_guard<std::mutex> lock(channel->mu);
      drained.assign(channel->buffer.begin(), channel->buffer.end());
      channel->buffer.clear();
      channel->delivered += drained.size();
      delivered = channel->delivered;
      dropped = channel->dropped;
    }
    JsonValue root = JsonValue::MakeObject();
    root.Set("count",
             JsonValue::MakeNumber(static_cast<double>(drained.size())));
    root.Set("delivered",
             JsonValue::MakeNumber(static_cast<double>(delivered)));
    root.Set("dropped", JsonValue::MakeNumber(static_cast<double>(dropped)));
    root.Set("id", JsonValue::MakeNumber(static_cast<double>(id)));
    root.Set("matches", MatchesToJson(drained));
    return JsonResponse(200, root.Dump());
  }

  /// POST /continuous/unregister {"id":N}.
  HttpResponse HandleContinuousUnregister(const HttpRequest& request) {
    std::uint64_t id = 0;
    HttpResponse error;
    std::shared_ptr<ContinuousChannel> channel =
        FindChannel(request, &id, &error);
    if (channel == nullptr) return error;
    index->tiered()->Unregister(id);
    {
      std::lock_guard<std::mutex> lock(continuous_mu);
      continuous.erase(id);
    }
    return JsonResponse(200, "{\"status\":\"ok\"}");
  }

  HttpResponse MethodNotAllowed(const char* allow) {
    CountProtocolError();
    HttpResponse resp =
        ErrorResponse(405, "method_not_allowed",
                      std::string("use ") + allow + " on this path");
    resp.AddHeader("Allow", allow);
    return resp;
  }

  /// Parses and validates a /search body into `*job`. On failure fills
  /// `*error` with the 400 response and returns false. `index` supplies
  /// the context-dependent rules (band vs. sparse index).
  bool ValidateSearch(const JsonValue& body, const core::IndexSnapshot& index,
                      SearchJob* job, HttpResponse* error) {
    const auto fail = [&](std::string_view code, const std::string& message) {
      *error = ErrorResponse(400, code, message);
      return false;
    };
    if (!body.is_object()) {
      return fail("invalid_request", "body must be a JSON object");
    }
    static constexpr std::array<std::string_view, 11> kKnown = {
        "approx_factor", "band",    "deadline_ms",     "epsilon",
        "include_stats", "k",       "prune",           "query",
        "threads",       "use_lower_bound", "use_node_summaries",
    };
    for (const auto& [key, unused] : body.AsObject()) {
      if (std::find(kKnown.begin(), kKnown.end(), key) == kKnown.end()) {
        return fail("unknown_field", "unknown field \"" + key + "\"");
      }
    }
    const JsonValue* query = body.Find("query");
    if (query == nullptr || !query->is_array() || query->AsArray().empty()) {
      return fail("invalid_query",
                  "\"query\" must be a non-empty array of numbers");
    }
    job->query.reserve(query->AsArray().size());
    for (const JsonValue& v : query->AsArray()) {
      if (!v.is_number()) {
        return fail("invalid_query", "\"query\" must contain only numbers");
      }
      job->query.push_back(v.AsNumber());
    }
    const JsonValue* epsilon = body.Find("epsilon");
    const JsonValue* k = body.Find("k");
    if ((epsilon != nullptr) == (k != nullptr)) {
      return fail("invalid_request",
                  "exactly one of \"epsilon\" and \"k\" is required");
    }
    if (epsilon != nullptr) {
      if (!epsilon->is_number() || epsilon->AsNumber() < 0) {
        return fail("invalid_epsilon", "\"epsilon\" must be a number >= 0");
      }
      job->epsilon = epsilon->AsNumber();
    } else {
      double kd = 0;
      if (!AsCount(*k, 1e9, &kd) || kd < 1) {
        return fail("invalid_k", "\"k\" must be an integer in [1, 1e9]");
      }
      job->k = static_cast<std::size_t>(kd);
    }
    if (const JsonValue* band = body.Find("band")) {
      double bd = 0;
      if (!AsCount(*band, static_cast<double>(job->query.size()), &bd)) {
        return fail("invalid_band",
                    "\"band\" must be an integer in [0, |query|]");
      }
      job->opts.band = static_cast<Pos>(bd);
      // Mirrors the CLI rule: sparse suffix recovery is unsound under a
      // band, so a banded query needs a dense index.
      if (job->opts.band != 0 &&
          index.options().kind == core::IndexKind::kSparse) {
        return fail("invalid_band",
                    "a warping band needs a dense index (kind st or stc)");
      }
    }
    if (const JsonValue* threads = body.Find("threads")) {
      double td = 0;
      if (!AsCount(*threads, 1e6, &td)) {
        return fail("invalid_threads", "\"threads\" must be an integer >= 0");
      }
      job->opts.num_threads = std::min(static_cast<std::size_t>(td),
                                       options.max_request_threads);
    }
    if (const JsonValue* prune = body.Find("prune")) {
      if (!prune->is_bool()) {
        return fail("invalid_request", "\"prune\" must be a boolean");
      }
      job->opts.prune = prune->AsBool();
    }
    if (const JsonValue* lb = body.Find("use_lower_bound")) {
      if (!lb->is_bool()) {
        return fail("invalid_request",
                    "\"use_lower_bound\" must be a boolean");
      }
      job->opts.use_lower_bound = lb->AsBool();
    }
    if (const JsonValue* sums = body.Find("use_node_summaries")) {
      if (!sums->is_bool()) {
        return fail("invalid_request",
                    "\"use_node_summaries\" must be a boolean");
      }
      job->opts.use_node_summaries = sums->AsBool();
    }
    if (const JsonValue* factor = body.Find("approx_factor")) {
      if (!factor->is_number() || factor->AsNumber() < 1.0) {
        return fail("invalid_approx_factor",
                    "\"approx_factor\" must be a number >= 1 (1 = exact)");
      }
      job->opts.approx_factor = factor->AsNumber();
    }
    if (const JsonValue* with_stats = body.Find("include_stats")) {
      if (!with_stats->is_bool()) {
        return fail("invalid_request", "\"include_stats\" must be a boolean");
      }
      job->include_stats = with_stats->AsBool();
    }
    if (const JsonValue* deadline = body.Find("deadline_ms")) {
      if (!deadline->is_number() || deadline->AsNumber() <= 0) {
        return fail("invalid_deadline",
                    "\"deadline_ms\" must be a number > 0");
      }
      const double capped =
          std::min(deadline->AsNumber(),
                   static_cast<double>(options.max_deadline.count()));
      job->has_deadline = true;
      job->cancel.ArmDeadlineAfter(
          std::chrono::duration_cast<CancelToken::Clock::duration>(
              std::chrono::duration<double, std::milli>(capped)));
    }
    return true;
  }

  HttpResponse HandleSearch(const HttpRequest& request) {
    StatusOr<JsonValue> body = ParseJson(request.body);
    if (!body.ok()) {
      CountProtocolError();
      return ErrorResponse(400, "bad_json", body.status().message());
    }
    auto job = std::make_unique<SearchJob>();
    HttpResponse error;
    {
      const std::shared_ptr<const core::IndexSnapshot> snapshot = index->Snapshot();
      if (!ValidateSearch(*body, *snapshot, job.get(), &error)) {
        CountProtocolError();
        return error;
      }
    }
    if (draining.load(std::memory_order_relaxed)) {
      CountProtocolError();
      return ErrorResponse(503, "draining", "server is shutting down");
    }
    // The deadline (if any) was armed during validation, so time spent
    // queued counts against it — overload cannot stretch the budget.
    std::future<HttpResponse> reply = job->reply.get_future();
    if (!jobs->TryPush(std::move(job))) {
      {
        std::lock_guard<std::mutex> lock(counters_mu);
        ++counters.rejected;
      }
      HttpResponse resp = ErrorResponse(
          429, "overloaded", "admission queue is full; retry shortly");
      resp.AddHeader("Retry-After",
                     std::to_string(options.retry_after_seconds));
      return resp;
    }
    {
      std::lock_guard<std::mutex> lock(counters_mu);
      ++counters.admitted;
    }
    try {
      return reply.get();
    } catch (const std::future_error&) {
      // The dispatcher dropped the promise (it only does so on its way
      // down); degrade to a 500 rather than crash the handler.
      CountProtocolError();
      return ErrorResponse(500, "internal", "search dispatcher unavailable");
    }
  }

  std::string StatsBody() {
    const ServerCounters c = Snapshot();
    const std::shared_ptr<const core::IndexSnapshot> idx = index->Snapshot();
    const auto num = [](std::uint64_t v) {
      return JsonValue::MakeNumber(static_cast<double>(v));
    };
    JsonValue root = JsonValue::MakeObject();
    root.Set("draining",
             JsonValue::MakeBool(draining.load(std::memory_order_relaxed)));
    JsonValue index_obj = JsonValue::MakeObject();
    index_obj.Set("kind", JsonValue::MakeString(core::IndexKindToString(
                              idx->options().kind)));
    index_obj.Set("nodes", num(idx->build_info().num_nodes));
    index_obj.Set("occurrences", num(idx->build_info().num_occurrences));
    index_obj.Set("index_bytes", num(idx->build_info().index_bytes));
    index_obj.Set("disk", JsonValue::MakeBool(idx->on_disk()));
    index_obj.Set("sequences", num(idx->total_sequences()));
    // mmap read-path footprint: bytes mapped across disk tiers and how
    // much of that the kernel currently keeps resident. Both zero when
    // every disk tier is buffered (or the index is in memory).
    const core::MappedIoStats mapped = idx->MappedStats();
    index_obj.Set("mapped_bytes", num(mapped.mapped_bytes));
    index_obj.Set("resident_bytes", num(mapped.resident_bytes));
    // Per-tier breakdown of the snapshot being served (one entry for a
    // monolithic index; base + sealed + memtable for a tiered one).
    JsonValue tiers = JsonValue::MakeArray();
    for (const auto& tier : idx->tiers()) {
      JsonValue t = JsonValue::MakeObject();
      t.Set("first_seq", num(tier->info.first_seq));
      t.Set("sequences", num(tier->info.sequences));
      t.Set("elements", num(tier->info.elements));
      t.Set("nodes", num(tier->info.nodes));
      t.Set("occurrences", num(tier->info.occurrences));
      t.Set("index_bytes", num(tier->info.index_bytes));
      t.Set("on_disk", JsonValue::MakeBool(tier->info.on_disk));
      t.Set("memtable", JsonValue::MakeBool(tier->info.memtable));
      t.Set("has_summaries",
            JsonValue::MakeBool(tier->info.has_summaries));
      if (tier->info.on_disk) {
        t.Set("io_mode", JsonValue::MakeString(
                             storage::IoModeToString(tier->info.io_mode)));
        t.Set("mapped_bytes", num(tier->info.mapped_bytes));
      }
      tiers.MutableArray()->push_back(std::move(t));
    }
    index_obj.Set("tiers", std::move(tiers));
    root.Set("index", std::move(index_obj));
    if (core::TieredIndex* tiered = index->tiered()) {
      const core::TieredStats ts = tiered->Stats();
      JsonValue t = JsonValue::MakeObject();
      t.Set("appended_sequences", num(ts.appended_sequences));
      t.Set("memtable_sequences", num(ts.memtable_sequences));
      t.Set("sealed_tiers", num(ts.sealed_tiers));
      t.Set("pending_merges", num(ts.pending_merges));
      t.Set("merges_completed", num(ts.merges_completed));
      t.Set("merges_cancelled", num(ts.merges_cancelled));
      t.Set("continuous_queries", num(ts.continuous_queries));
      t.Set("appends", num(c.appends));
      root.Set("tiered", std::move(t));
    }
    JsonValue queue = JsonValue::MakeObject();
    queue.Set("capacity", num(options.queue_capacity));
    queue.Set("depth", num(c.queue_depth));
    queue.Set("high_water", num(c.queue_high_water));
    queue.Set("admitted", num(c.admitted));
    queue.Set("rejected", num(c.rejected));
    root.Set("queue", std::move(queue));
    JsonValue reqs = JsonValue::MakeObject();
    reqs.Set("connections", num(c.connections));
    reqs.Set("total", num(c.requests));
    reqs.Set("completed", num(c.completed));
    reqs.Set("partials", num(c.partials));
    reqs.Set("timeouts", num(c.timeouts));
    reqs.Set("protocol_errors", num(c.protocol_errors));
    reqs.Set("batches", num(c.batches));
    reqs.Set("coalesced", num(c.coalesced));
    root.Set("requests", std::move(reqs));
    JsonValue sched = JsonValue::MakeObject();
    sched.Set("workers", num(TaskScheduler::Get().num_workers()));
    sched.Set("steal_attempts", num(TaskScheduler::Get().steal_attempts()));
    root.Set("scheduler", std::move(sched));
    root.Set("search", StatsToJson(c.search));
    return root.Dump();
  }

  ServerCounters Snapshot() const {
    ServerCounters c;
    {
      std::lock_guard<std::mutex> lock(counters_mu);
      c = counters;
    }
    c.queue_depth = jobs->depth();
    c.queue_high_water = jobs->high_water();
    return c;
  }

  void DispatchLoop() {
    std::vector<JobPtr> round;
    while (true) {
      round.clear();
      if (jobs->PopBatch(&round, options.max_batch) == 0) break;
      const std::shared_ptr<const core::IndexSnapshot> idx = index->Snapshot();
      // Partition the round: range queries without a deadline coalesce
      // into SearchBatch groups keyed by the options SearchBatch shares
      // across its queries; everything else runs individually.
      std::vector<JobPtr> singles;
      std::vector<std::vector<JobPtr>> groups;
      for (JobPtr& job : round) {
        if (job->k > 0 || job->has_deadline) {
          singles.push_back(std::move(job));
          continue;
        }
        bool placed = false;
        for (std::vector<JobPtr>& group : groups) {
          const core::QueryOptions& o = group.front()->opts;
          if (o.band == job->opts.band && o.prune == job->opts.prune &&
              o.use_lower_bound == job->opts.use_lower_bound &&
              o.use_node_summaries == job->opts.use_node_summaries &&
              o.approx_factor == job->opts.approx_factor) {
            group.push_back(std::move(job));
            placed = true;
            break;
          }
        }
        if (!placed) {
          groups.emplace_back();
          groups.back().push_back(std::move(job));
        }
      }
      for (std::vector<JobPtr>& group : groups) {
        if (group.size() == 1) {
          singles.push_back(std::move(group.front()));
        } else {
          RunGroup(std::move(group), *idx);
        }
      }
      for (JobPtr& job : singles) RunSingle(job.get(), *idx);
    }
  }

  /// Re-checks the one validation rule that depends on the index, which
  /// may have been hot-swapped between admission and execution.
  bool RecheckBand(SearchJob* job, const core::IndexSnapshot& idx) {
    if (job->opts.band != 0 &&
        idx.options().kind == core::IndexKind::kSparse) {
      CountProtocolError();
      job->reply.set_value(ErrorResponse(
          400, "invalid_band",
          "a warping band needs a dense index (kind st or stc)"));
      return false;
    }
    return true;
  }

  void RunGroup(std::vector<JobPtr> group, const core::IndexSnapshot& idx) {
    // A member can fail the band recheck if the index was hot-swapped
    // after admission; it is answered 400 and its siblings still run.
    std::vector<JobPtr> valid;
    valid.reserve(group.size());
    for (JobPtr& job : group) {
      if (RecheckBand(job.get(), idx)) valid.push_back(std::move(job));
    }
    group = std::move(valid);
    if (group.empty()) return;
    std::vector<std::vector<Value>> queries;
    std::vector<Value> epsilons;
    queries.reserve(group.size());
    epsilons.reserve(group.size());
    for (const JobPtr& job : group) {
      queries.push_back(job->query);
      epsilons.push_back(job->epsilon);
    }
    core::QueryOptions opts = group.front()->opts;
    opts.num_threads = options.search_threads;
    opts.cancel = nullptr;
    std::vector<core::SearchStats> stats;
    try {
      const std::vector<std::vector<core::Match>> results =
          idx.SearchBatch(queries, epsilons, opts, &stats);
      {
        std::lock_guard<std::mutex> lock(counters_mu);
        if (group.size() >= 2) {
          ++counters.batches;
          counters.coalesced += group.size();
        }
        counters.completed += group.size();
        for (const core::SearchStats& s : stats) counters.search.Merge(s);
      }
      for (std::size_t i = 0; i < group.size(); ++i) {
        group[i]->reply.set_value(JsonResponse(
            200, SearchResponseBody(
                     "ok", results[i],
                     group[i]->include_stats ? &stats[i] : nullptr)));
      }
    } catch (const std::exception& e) {
      std::lock_guard<std::mutex> lock(counters_mu);
      counters.protocol_errors += group.size();
      for (const JobPtr& job : group) {
        job->reply.set_value(ErrorResponse(500, "internal", e.what()));
      }
    }
  }

  void RunSingle(SearchJob* job, const core::IndexSnapshot& idx) {
    if (!RecheckBand(job, idx)) return;
    if (job->has_deadline && job->cancel.Expired()) {
      {
        std::lock_guard<std::mutex> lock(counters_mu);
        ++counters.timeouts;
      }
      job->reply.set_value(
          ErrorResponse(504, "deadline_exceeded",
                        "deadline expired before the search started"));
      return;
    }
    core::QueryOptions opts = job->opts;
    if (job->has_deadline) opts.cancel = &job->cancel;
    core::SearchStats stats;
    try {
      const std::vector<core::Match> matches =
          job->k > 0 ? idx.SearchKnn(job->query, job->k, opts, &stats)
                     : idx.Search(job->query, job->epsilon, opts, &stats);
      const bool partial = stats.cancelled != 0;
      {
        std::lock_guard<std::mutex> lock(counters_mu);
        partial ? ++counters.partials : ++counters.completed;
        counters.search.Merge(stats);
      }
      job->reply.set_value(JsonResponse(
          200, SearchResponseBody(partial ? "partial" : "ok", matches,
                                  job->include_stats ? &stats : nullptr)));
    } catch (const std::exception& e) {
      CountProtocolError();
      job->reply.set_value(ErrorResponse(500, "internal", e.what()));
    }
  }

  void Shutdown() {
    std::call_once(shutdown_once, [this] {
      draining.store(true, std::memory_order_relaxed);
      if (accept_thread.joinable()) accept_thread.join();
      // Drain order matters: close the job queue first so the dispatcher
      // finishes everything already admitted (fulfilling the promises the
      // handler threads are blocked on), then release the handlers.
      jobs->Close();
      if (dispatch_thread.joinable()) dispatch_thread.join();
      conns->Close();
      for (std::thread& t : conn_threads) {
        if (t.joinable()) t.join();
      }
      if (listen_fd >= 0) {
        ::close(listen_fd);
        listen_fd = -1;
      }
      // Detach continuous queries so the tiered index never calls back
      // into a server that is going away.
      if (core::TieredIndex* tiered = index->tiered()) {
        std::lock_guard<std::mutex> lock(continuous_mu);
        for (const auto& [id, channel] : continuous) tiered->Unregister(id);
        continuous.clear();
      }
    });
  }
};

Server::Server() : impl_(new Impl) {}

Server::~Server() {
  if (impl_ != nullptr) impl_->Shutdown();
}

int Server::port() const { return impl_->bound_port; }

void Server::Shutdown() { impl_->Shutdown(); }

ServerCounters Server::Counters() const { return impl_->Snapshot(); }

StatusOr<std::unique_ptr<Server>> Server::Start(IndexHandle* index,
                                                const ServerOptions& options) {
  std::unique_ptr<Server> server(new Server());
  Impl& impl = *server->impl_;
  impl.index = index;
  impl.options = options;
  if (impl.options.connection_threads == 0) impl.options.connection_threads = 1;
  if (impl.options.queue_capacity == 0) impl.options.queue_capacity = 1;
  if (impl.options.max_batch == 0) impl.options.max_batch = 1;
  impl.jobs =
      std::make_unique<BoundedQueue<JobPtr>>(impl.options.queue_capacity);
  impl.conns =
      std::make_unique<BoundedQueue<int>>(impl.options.connection_threads);
  TSW_RETURN_IF_ERROR(impl.Bind());
  Impl* raw = &impl;
  impl.accept_thread = std::thread([raw] { raw->AcceptLoop(); });
  impl.dispatch_thread = std::thread([raw] { raw->DispatchLoop(); });
  impl.conn_threads.reserve(impl.options.connection_threads);
  for (std::size_t i = 0; i < impl.options.connection_threads; ++i) {
    impl.conn_threads.emplace_back([raw] { raw->ConnLoop(); });
  }
  return server;
}

}  // namespace tswarp::server
