#include "server/http.h"

#include <algorithm>
#include <cctype>
#include <charconv>

namespace tswarp::server {

namespace {

std::string_view Trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) {
    s.remove_prefix(1);
  }
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t')) {
    s.remove_suffix(1);
  }
  return s;
}

std::string ToLower(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return out;
}

}  // namespace

std::string_view HttpRequest::Header(std::string_view name) const {
  for (const auto& [key, value] : headers) {
    if (key == name) return value;
  }
  return {};
}

bool HttpRequest::KeepAlive() const {
  const std::string conn = ToLower(Header("connection"));
  if (version == "HTTP/1.0") return conn == "keep-alive";
  return conn != "close";
}

const char* HttpReasonPhrase(int status) {
  switch (status) {
    case 200: return "OK";
    case 204: return "No Content";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 408: return "Request Timeout";
    case 413: return "Content Too Large";
    case 429: return "Too Many Requests";
    case 431: return "Request Header Fields Too Large";
    case 500: return "Internal Server Error";
    case 501: return "Not Implemented";
    case 503: return "Service Unavailable";
    case 504: return "Gateway Timeout";
    default:  return "Unknown";
  }
}

std::string HttpResponse::Serialize(bool keep_alive) const {
  std::string out = "HTTP/1.1 " + std::to_string(status) + " " +
                    HttpReasonPhrase(status) + "\r\n";
  for (const auto& [name, value] : headers) {
    out += name;
    out += ": ";
    out += value;
    out += "\r\n";
  }
  out += "Content-Length: " + std::to_string(body.size()) + "\r\n";
  out += keep_alive ? "Connection: keep-alive\r\n" : "Connection: close\r\n";
  out += "\r\n";
  out += body;
  return out;
}

HttpParseStatus ParseHttpRequest(std::string_view buffer,
                                 const HttpLimits& limits,
                                 HttpRequest* request,
                                 std::size_t* consumed) {
  const std::size_t header_end = buffer.find("\r\n\r\n");
  if (header_end == std::string_view::npos) {
    // No terminator yet: either wait for more bytes or give up once the
    // prefix already exceeds the header budget.
    return buffer.size() > limits.max_header_bytes
               ? HttpParseStatus::kHeadersTooLarge
               : HttpParseStatus::kIncomplete;
  }
  if (header_end > limits.max_header_bytes) {
    return HttpParseStatus::kHeadersTooLarge;
  }

  HttpRequest req;
  const std::string_view head = buffer.substr(0, header_end);
  std::size_t line_start = 0;
  bool first_line = true;
  while (line_start <= head.size()) {
    std::size_t line_end = head.find("\r\n", line_start);
    if (line_end == std::string_view::npos) line_end = head.size();
    const std::string_view line = head.substr(line_start,
                                              line_end - line_start);
    if (first_line) {
      // request-line: METHOD SP target SP version
      const std::size_t sp1 = line.find(' ');
      const std::size_t sp2 =
          sp1 == std::string_view::npos ? sp1 : line.find(' ', sp1 + 1);
      if (sp1 == std::string_view::npos || sp2 == std::string_view::npos ||
          line.find(' ', sp2 + 1) != std::string_view::npos) {
        return HttpParseStatus::kBadRequest;
      }
      req.method = std::string(line.substr(0, sp1));
      req.target = std::string(line.substr(sp1 + 1, sp2 - sp1 - 1));
      req.version = std::string(line.substr(sp2 + 1));
      if (req.method.empty() || req.target.empty() ||
          (req.version != "HTTP/1.1" && req.version != "HTTP/1.0")) {
        return HttpParseStatus::kBadRequest;
      }
      first_line = false;
    } else if (!line.empty()) {
      const std::size_t colon = line.find(':');
      if (colon == std::string_view::npos || colon == 0) {
        return HttpParseStatus::kBadRequest;
      }
      // Whitespace before the colon is smuggling per RFC 9112 §5.1.
      if (line[colon - 1] == ' ' || line[colon - 1] == '\t') {
        return HttpParseStatus::kBadRequest;
      }
      req.headers.emplace_back(ToLower(line.substr(0, colon)),
                               std::string(Trim(line.substr(colon + 1))));
    }
    if (line_end == head.size()) break;
    line_start = line_end + 2;
  }
  if (first_line) return HttpParseStatus::kBadRequest;

  if (!req.Header("transfer-encoding").empty()) {
    // Chunked bodies are out of protocol scope; refuse loudly rather than
    // desync the framing.
    return HttpParseStatus::kUnsupported;
  }

  std::size_t content_length = 0;
  const std::string_view cl = req.Header("content-length");
  if (!cl.empty()) {
    const auto [end, ec] =
        std::from_chars(cl.data(), cl.data() + cl.size(), content_length);
    if (ec != std::errc() || end != cl.data() + cl.size()) {
      return HttpParseStatus::kBadRequest;
    }
  }
  if (content_length > limits.max_body_bytes) {
    return HttpParseStatus::kBodyTooLarge;
  }

  const std::size_t body_start = header_end + 4;
  if (buffer.size() - body_start < content_length) {
    return HttpParseStatus::kIncomplete;
  }
  req.body = std::string(buffer.substr(body_start, content_length));
  *consumed = body_start + content_length;
  *request = std::move(req);
  return HttpParseStatus::kOk;
}

}  // namespace tswarp::server
