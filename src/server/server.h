#ifndef TSWARP_SERVER_SERVER_H_
#define TSWARP_SERVER_SERVER_H_

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <string_view>

#include "common/status.h"
#include "core/index.h"
#include "core/match.h"
#include "server/http.h"
#include "server/index_handle.h"

namespace tswarp::server {

/// Configuration of one tswarpd instance.
struct ServerOptions {
  /// Bind address and port; port 0 picks an ephemeral port (read it back
  /// from Server::port()), which is how the tests run hermetically.
  std::string address = "127.0.0.1";
  int port = 0;

  /// Connection handler threads. Each owns one connection at a time
  /// (keep-alive requests on a connection are sequential), so this bounds
  /// concurrent connections; excess accepts are answered 503 and closed.
  std::size_t connection_threads = 4;

  /// Admission control: queued-search capacity. A /search arriving when
  /// the queue is full is refused immediately with 429 + Retry-After
  /// instead of waiting — latency under overload stays bounded and the
  /// client owns the retry policy.
  std::size_t queue_capacity = 64;

  /// Coalescer: up to this many queued searches are drained per dispatch
  /// round; compatible range queries among them ride one
  /// Index::SearchBatch call on the shared work-stealing scheduler.
  std::size_t max_batch = 8;

  /// Worker threads for coalesced batches (QueryOptions::num_threads of
  /// the SearchBatch call). 0 = serial. Per-request "threads" only
  /// applies to queries that run individually.
  std::size_t search_threads = 0;

  /// Cap on the per-request "threads" knob, so one client cannot demand
  /// an arbitrary pool size.
  std::size_t max_request_threads = 8;

  /// Cap on the per-request "deadline_ms" knob.
  std::chrono::milliseconds max_deadline{60000};

  /// Seconds advertised in the Retry-After header of 429 responses.
  int retry_after_seconds = 1;

  /// HTTP framing limits (header budget, body size).
  HttpLimits http_limits;
};

/// Monotonic counters exposed by /stats and by Counters() for tests.
struct ServerCounters {
  std::uint64_t connections = 0;       // Accepted sockets.
  std::uint64_t requests = 0;          // Complete HTTP requests parsed.
  std::uint64_t admitted = 0;          // Searches accepted into the queue.
  std::uint64_t rejected = 0;          // Searches refused with 429.
  std::uint64_t completed = 0;         // Searches that ran to completion.
  std::uint64_t partials = 0;          // Deadline hit mid-search (200 partial).
  std::uint64_t timeouts = 0;          // Deadline hit before start (504).
  std::uint64_t protocol_errors = 0;   // 4xx/5xx other than 429/504.
  std::uint64_t batches = 0;           // SearchBatch calls with >= 2 queries.
  std::uint64_t coalesced = 0;         // Queries that rode those batches.
  std::uint64_t appends = 0;           // Sequences accepted via /append.
  std::size_t queue_depth = 0;         // Searches queued right now.
  std::size_t queue_high_water = 0;    // Deepest the queue has been.
  core::SearchStats search;            // Merged over all executed searches.
};

/// Serializes a /search response body. Exposed so the e2e tests can feed a
/// direct library result through the *same* serializer and require the
/// server's bytes to match exactly. `status_word` is "ok" for complete
/// searches, "partial" when the deadline stopped the traversal early;
/// `stats` adds a "stats" member when non-null (requested via
/// "include_stats": stats carry scheduler counters that are not
/// deterministic, so they are opt-in to keep default bodies byte-stable).
std::string SearchResponseBody(std::string_view status_word,
                               std::span<const core::Match> matches,
                               const core::SearchStats* stats);

/// Serializes the canonical error body {"error":{"code":...,"message":...}}.
std::string ErrorBody(std::string_view code, std::string_view message);

/// tswarpd: serves one IndexHandle over HTTP/1.1.
///
///   POST /search   {"query":[...], "epsilon":E | "k":K, ...knobs}
///   GET  /stats    merged SearchStats + admission/scheduler counters
///   GET  /healthz  {"status":"ok"} (503 {"status":"draining"} during drain)
///
/// Threading: one accept thread, `connection_threads` handler threads, one
/// dispatcher thread that drains the admission queue and runs searches
/// (coalescing compatible range queries into Index::SearchBatch). Handler
/// threads block on the dispatcher's reply, so backpressure is end-to-end:
/// queue full -> 429 at admission, never unbounded buffering.
///
/// Shutdown() (also run by the destructor) is a graceful drain: stop
/// accepting, finish in-flight requests, answer everything already
/// admitted, then join. Safe to call from a signal-watching thread.
class Server {
 public:
  /// Binds, spawns the threads, and returns a running server. `index`
  /// must outlive the server.
  static StatusOr<std::unique_ptr<Server>> Start(IndexHandle* index,
                                                 const ServerOptions& options);

  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// The bound port (the ephemeral port when options.port was 0).
  int port() const;

  /// Graceful drain; idempotent, blocks until all threads have joined.
  void Shutdown();

  /// A consistent snapshot of the counters.
  ServerCounters Counters() const;

 private:
  Server();
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace tswarp::server

#endif  // TSWARP_SERVER_SERVER_H_
