#ifndef TSWARP_SERVER_HTTP_H_
#define TSWARP_SERVER_HTTP_H_

#include <cstddef>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace tswarp::server {

/// One parsed HTTP/1.1 request. Header names are lower-cased at parse
/// time (field names are case-insensitive per RFC 9112); values keep
/// their bytes with surrounding whitespace trimmed.
struct HttpRequest {
  std::string method;
  std::string target;
  std::string version;
  std::vector<std::pair<std::string, std::string>> headers;
  std::string body;

  /// First header with name `name` (must be passed lower-case), or "".
  std::string_view Header(std::string_view name) const;

  /// True when the client asked to keep the connection open: HTTP/1.1
  /// without "Connection: close", or HTTP/1.0 with "keep-alive".
  bool KeepAlive() const;
};

/// One HTTP response under construction. Content-Length and the standard
/// framing are emitted by Serialize(); responses carry no Date header so
/// they are byte-deterministic (the protocol golden tests depend on it).
struct HttpResponse {
  int status = 200;
  std::vector<std::pair<std::string, std::string>> headers;
  std::string body;

  void AddHeader(std::string name, std::string value) {
    headers.emplace_back(std::move(name), std::move(value));
  }

  /// The full wire form: status line, headers, Content-Length, blank
  /// line, body. `keep_alive` controls the Connection header.
  std::string Serialize(bool keep_alive) const;
};

/// The canonical reason phrase for a status code ("OK", "Bad Request"...).
const char* HttpReasonPhrase(int status);

/// Parse limits. A request exceeding them is answered with 431 (headers)
/// or 413 (body) and the connection is closed.
struct HttpLimits {
  std::size_t max_header_bytes = 8 * 1024;
  std::size_t max_body_bytes = 1 << 20;
};

/// Outcome of one incremental parse attempt over a receive buffer.
enum class HttpParseStatus {
  kOk,             // *request filled; *consumed bytes may be erased.
  kIncomplete,     // Need more bytes.
  kBadRequest,     // Malformed framing -> 400, close.
  kHeadersTooLarge,  // -> 431, close.
  kBodyTooLarge,   // -> 413, close.
  kUnsupported,    // Transfer-Encoding etc. -> 501, close.
};

/// Attempts to parse one complete request from the front of `buffer`.
/// On kOk, `*request` is filled and `*consumed` is the byte count to drop
/// from the buffer (framing + body). Stateless: call again with a fuller
/// buffer after kIncomplete.
HttpParseStatus ParseHttpRequest(std::string_view buffer,
                                 const HttpLimits& limits,
                                 HttpRequest* request,
                                 std::size_t* consumed);

}  // namespace tswarp::server

#endif  // TSWARP_SERVER_HTTP_H_
