#include "server/json.h"

#include <charconv>
#include <cmath>
#include <cstdio>
#include <utility>

namespace tswarp::server {

JsonValue JsonValue::MakeBool(bool b) {
  JsonValue v;
  v.kind_ = Kind::kBool;
  v.bool_ = b;
  return v;
}

JsonValue JsonValue::MakeNumber(double d) {
  JsonValue v;
  v.kind_ = Kind::kNumber;
  v.number_ = d;
  return v;
}

JsonValue JsonValue::MakeString(std::string s) {
  JsonValue v;
  v.kind_ = Kind::kString;
  v.string_ = std::move(s);
  return v;
}

JsonValue JsonValue::MakeArray() {
  JsonValue v;
  v.kind_ = Kind::kArray;
  return v;
}

JsonValue JsonValue::MakeObject() {
  JsonValue v;
  v.kind_ = Kind::kObject;
  return v;
}

const JsonValue* JsonValue::Find(std::string_view key) const {
  if (kind_ != Kind::kObject) return nullptr;
  const auto it = object_.find(std::string(key));
  return it == object_.end() ? nullptr : &it->second;
}

void JsonValue::Set(std::string key, JsonValue value) {
  object_[std::move(key)] = std::move(value);
}

void AppendJsonNumber(std::string* out, double d) {
  // Integers print without an exponent or trailing ".0" (match counts,
  // stats counters); everything else takes the shortest round-trip form.
  if (d == 0.0) {  // Covers -0.0: the sign bit is protocol noise.
    out->push_back('0');
    return;
  }
  char buf[32];
  const auto [end, ec] = std::to_chars(buf, buf + sizeof(buf), d);
  (void)ec;  // 32 bytes always suffice for the shortest double form.
  out->append(buf, end);
}

void AppendJsonString(std::string* out, std::string_view s) {
  out->push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"':
        out->append("\\\"");
        break;
      case '\\':
        out->append("\\\\");
        break;
      case '\n':
        out->append("\\n");
        break;
      case '\r':
        out->append("\\r");
        break;
      case '\t':
        out->append("\\t");
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out->append(buf);
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

std::string JsonValue::Dump() const {
  std::string out;
  switch (kind_) {
    case Kind::kNull:
      out = "null";
      break;
    case Kind::kBool:
      out = bool_ ? "true" : "false";
      break;
    case Kind::kNumber:
      AppendJsonNumber(&out, number_);
      break;
    case Kind::kString:
      AppendJsonString(&out, string_);
      break;
    case Kind::kArray: {
      out.push_back('[');
      bool first = true;
      for (const JsonValue& v : array_) {
        if (!first) out.push_back(',');
        first = false;
        out.append(v.Dump());
      }
      out.push_back(']');
      break;
    }
    case Kind::kObject: {
      out.push_back('{');
      bool first = true;
      for (const auto& [key, v] : object_) {
        if (!first) out.push_back(',');
        first = false;
        AppendJsonString(&out, key);
        out.push_back(':');
        out.append(v.Dump());
      }
      out.push_back('}');
      break;
    }
  }
  return out;
}

namespace {

/// Recursive-descent parser over a string_view with a depth cap. Keeps a
/// byte cursor for error messages.
class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  StatusOr<JsonValue> Parse() {
    SkipWs();
    TSW_ASSIGN_OR_RETURN(JsonValue v, ParseValue(0));
    SkipWs();
    if (pos_ != text_.size()) {
      return Error("trailing garbage after the JSON document");
    }
    return v;
  }

 private:
  static constexpr std::size_t kMaxDepth = 64;

  Status Error(const std::string& what) const {
    return Status::InvalidArgument("JSON parse error at byte " +
                                   std::to_string(pos_) + ": " + what);
  }

  void SkipWs() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ConsumeWord(std::string_view word) {
    if (text_.substr(pos_, word.size()) == word) {
      pos_ += word.size();
      return true;
    }
    return false;
  }

  StatusOr<JsonValue> ParseValue(std::size_t depth) {
    if (depth > kMaxDepth) return Error("nesting too deep");
    if (pos_ >= text_.size()) return Error("unexpected end of input");
    const char c = text_[pos_];
    if (c == '{') return ParseObject(depth);
    if (c == '[') return ParseArray(depth);
    if (c == '"') {
      TSW_ASSIGN_OR_RETURN(std::string s, ParseString());
      return JsonValue::MakeString(std::move(s));
    }
    if (ConsumeWord("true")) return JsonValue::MakeBool(true);
    if (ConsumeWord("false")) return JsonValue::MakeBool(false);
    if (ConsumeWord("null")) return JsonValue();
    return ParseNumber();
  }

  StatusOr<JsonValue> ParseNumber() {
    const std::size_t start = pos_;
    if (Consume('-')) {
    }
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if ((c >= '0' && c <= '9') || c == '.' || c == 'e' || c == 'E' ||
          c == '+' || c == '-') {
        ++pos_;
      } else {
        break;
      }
    }
    if (pos_ == start) return Error("expected a value");
    double d = 0.0;
    const char* first = text_.data() + start;
    const char* last = text_.data() + pos_;
    const auto [end, ec] = std::from_chars(first, last, d);
    if (ec != std::errc() || end != last) {
      pos_ = start;
      return Error("malformed number");
    }
    if (!std::isfinite(d)) {
      pos_ = start;
      return Error("number out of range");
    }
    return JsonValue::MakeNumber(d);
  }

  StatusOr<std::string> ParseString() {
    if (!Consume('"')) return Error("expected '\"'");
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) return Error("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) {
        return Error("raw control character in string");
      }
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) return Error("unterminated escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"':
          out.push_back('"');
          break;
        case '\\':
          out.push_back('\\');
          break;
        case '/':
          out.push_back('/');
          break;
        case 'b':
          out.push_back('\b');
          break;
        case 'f':
          out.push_back('\f');
          break;
        case 'n':
          out.push_back('\n');
          break;
        case 'r':
          out.push_back('\r');
          break;
        case 't':
          out.push_back('\t');
          break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return Error("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              return Error("bad hex digit in \\u escape");
            }
          }
          // BMP only; surrogate pairs are rejected (the protocol carries
          // numbers and ASCII identifiers — full UTF-16 pairing would be
          // dead code here).
          if (code >= 0xD800 && code <= 0xDFFF) {
            return Error("surrogate \\u escapes are unsupported");
          }
          if (code < 0x80) {
            out.push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (code >> 6)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out.push_back(static_cast<char>(0xE0 | (code >> 12)));
            out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default:
          return Error("unknown escape");
      }
    }
  }

  StatusOr<JsonValue> ParseArray(std::size_t depth) {
    Consume('[');
    JsonValue out = JsonValue::MakeArray();
    SkipWs();
    if (Consume(']')) return out;
    while (true) {
      SkipWs();
      TSW_ASSIGN_OR_RETURN(JsonValue v, ParseValue(depth + 1));
      out.MutableArray()->push_back(std::move(v));
      SkipWs();
      if (Consume(']')) return out;
      if (!Consume(',')) return Error("expected ',' or ']' in array");
    }
  }

  StatusOr<JsonValue> ParseObject(std::size_t depth) {
    Consume('{');
    JsonValue out = JsonValue::MakeObject();
    SkipWs();
    if (Consume('}')) return out;
    while (true) {
      SkipWs();
      TSW_ASSIGN_OR_RETURN(std::string key, ParseString());
      SkipWs();
      if (!Consume(':')) return Error("expected ':' after object key");
      SkipWs();
      TSW_ASSIGN_OR_RETURN(JsonValue v, ParseValue(depth + 1));
      if (out.Find(key) != nullptr) {
        return Error("duplicate object key \"" + key + "\"");
      }
      out.Set(std::move(key), std::move(v));
      SkipWs();
      if (Consume('}')) return out;
      if (!Consume(',')) return Error("expected ',' or '}' in object");
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

StatusOr<JsonValue> ParseJson(std::string_view text) {
  return Parser(text).Parse();
}

}  // namespace tswarp::server
