#ifndef TSWARP_DTW_DTW_H_
#define TSWARP_DTW_DTW_H_

#include <span>

#include "common/types.h"

namespace tswarp::dtw {

/// A category value-interval. Mirrors categorize::Category without creating
/// a dependency from the DTW kernel onto the categorization module.
struct Interval {
  Value lb;
  Value ub;
};

/// Exact time-warping distance D_tw(a, b) (paper Definition 1), computed by
/// the O(|a||b|) dynamic program of Definition 2. Both spans must be
/// non-empty.
Value DtwDistance(std::span<const Value> a, std::span<const Value> b);

/// Thresholded D_tw: returns true and sets *distance iff
/// D_tw(a, b) <= epsilon. Abandons early via Theorem 1 — as soon as every
/// column of the current row exceeds epsilon the result cannot recover.
/// *distance is unspecified when the function returns false.
bool DtwWithinThreshold(std::span<const Value> a, std::span<const Value> b,
                        Value epsilon, Value* distance);

/// Sakoe-Chiba banded D_tw: warping path restricted to |x - y| <= band.
/// Returns kInfinity when no legal path exists (||a| - |b|| > band).
/// band == 0 degenerates to the Euclidean-style diagonal alignment of two
/// equal-length sequences.
Value DtwDistanceBanded(std::span<const Value> a, std::span<const Value> b,
                        Pos band);

/// Lower-bound distance D_tw-lb(q, cs) (paper Definition 3) between a
/// numeric query and a categorized sequence given as intervals.
Value DtwLowerBound(std::span<const Value> q, std::span<const Interval> cs);

}  // namespace tswarp::dtw

#endif  // TSWARP_DTW_DTW_H_
