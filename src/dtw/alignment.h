#ifndef TSWARP_DTW_ALIGNMENT_H_
#define TSWARP_DTW_ALIGNMENT_H_

#include <span>
#include <vector>

#include "common/types.h"

namespace tswarp::dtw {

/// One matched element pair of a warping path: a[a_index] aligned with
/// b[b_index] (0-based).
struct AlignmentStep {
  Pos a_index;
  Pos b_index;

  friend bool operator==(const AlignmentStep&, const AlignmentStep&) =
      default;
};

/// A full warping alignment: the minimum cumulative distance and the
/// element mapping that achieves it (paper Section 3: "the matching of
/// elements can be traced backward in the table by choosing the previous
/// cells with the lowest cumulative distance", Figure 1b).
struct Alignment {
  Value distance = 0.0;
  /// Path from (0, 0) to (|a|-1, |b|-1); each step advances a_index,
  /// b_index, or both by one (monotone, continuous).
  std::vector<AlignmentStep> path;
};

/// Computes D_tw(a, b) together with an optimal warping path. O(|a||b|)
/// time and space (the full table is retained for the traceback). Ties
/// prefer the diagonal predecessor, producing the shortest optimal path.
Alignment DtwAlign(std::span<const Value> a, std::span<const Value> b);

}  // namespace tswarp::dtw

#endif  // TSWARP_DTW_ALIGNMENT_H_
