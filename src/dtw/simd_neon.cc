// NEON backend (AArch64): canonical 4-lane groups as pairs of float64x2_t.
// min/max are built from an explicit compare + bit-select —
// vbsl(a < b, a, b) returns b on equality, exactly the scalar MinPd and
// x86 minpd rule — rather than FMIN/FMAX, whose IEEE-754-2008 minNum
// semantics order signed zeros differently and would break the cross-
// backend bitwise contract. vabsq_f64 clears the sign bit like andnot on
// x86. NEON is baseline on AArch64, so this file needs no extra flags.

#include "dtw/simd_internal.h"

#if defined(__aarch64__) && defined(__ARM_NEON)

#include <arm_neon.h>

namespace tswarp::dtw::simd {
namespace {

namespace in = internal;

/// One canonical 4-lane group.
struct V4 {
  float64x2_t lo;  // lanes 0, 1
  float64x2_t hi;  // lanes 2, 3
};

inline V4 Set1(Value v) {
  const float64x2_t x = vdupq_n_f64(v);
  return {x, x};
}
inline V4 Load(const Value* p) { return {vld1q_f64(p), vld1q_f64(p + 2)}; }
inline void Store(Value* p, V4 x) {
  vst1q_f64(p, x.lo);
  vst1q_f64(p + 2, x.hi);
}
inline V4 Add(V4 a, V4 b) {
  return {vaddq_f64(a.lo, b.lo), vaddq_f64(a.hi, b.hi)};
}
inline V4 Sub(V4 a, V4 b) {
  return {vsubq_f64(a.lo, b.lo), vsubq_f64(a.hi, b.hi)};
}
/// a < b ? a : b per lane (returns b on equality, like MinPd / minpd).
inline float64x2_t MinPair(float64x2_t a, float64x2_t b) {
  return vbslq_f64(vcltq_f64(a, b), a, b);
}
/// a > b ? a : b per lane (returns b on equality, like MaxPd / maxpd).
inline float64x2_t MaxPair(float64x2_t a, float64x2_t b) {
  return vbslq_f64(vcgtq_f64(a, b), a, b);
}
inline V4 Min(V4 a, V4 b) {
  return {MinPair(a.lo, b.lo), MinPair(a.hi, b.hi)};
}
inline V4 Max(V4 a, V4 b) {
  return {MaxPair(a.lo, b.lo), MaxPair(a.hi, b.hi)};
}
inline V4 Abs(V4 x) { return {vabsq_f64(x.lo), vabsq_f64(x.hi)}; }

/// Lanes shifted up by one: {fill[0], x[0], x[1], x[2]}.
inline V4 ShiftUp1(V4 x, V4 fill) {
  return {vextq_f64(vdupq_laneq_f64(fill.lo, 0), x.lo, 1),
          vextq_f64(x.lo, x.hi, 1)};
}

/// Lanes shifted up by two: {fill[0], fill[1], x[0], x[1]}.
inline V4 ShiftUp2(V4 x, V4 fill) { return {fill.lo, x.lo}; }

/// Broadcast of lane 3.
inline V4 Lane3(V4 x) {
  const float64x2_t b = vdupq_laneq_f64(x.hi, 1);
  return {b, b};
}

/// 4-lane inclusive +scan (canonical Scan4Add).
inline V4 Scan4Add(V4 b, V4 zero) {
  const V4 s1 = Add(b, ShiftUp1(b, zero));
  return Add(s1, ShiftUp2(s1, zero));
}

/// 4-lane inclusive min-scan (canonical Scan4Min; operand order u, shifted).
inline V4 Scan4Min(V4 u, V4 inf) {
  const V4 s1 = Min(u, ShiftUp1(u, inf));
  return Min(s1, ShiftUp2(s1, inf));
}

/// Exact min-reduce of 4 lanes.
inline Value ReduceMin(V4 x) {
  const float64x2_t m = MinPair(x.lo, x.hi);
  return in::MinPd(vgetq_lane_f64(m, 0), vgetq_lane_f64(m, 1));
}

/// Canonical stripe combine: (s0 + s1) + (s2 + s3).
inline Value CombineStripes(V4 acc) {
  const Value s01 = vgetq_lane_f64(acc.lo, 0) + vgetq_lane_f64(acc.lo, 1);
  const Value s23 = vgetq_lane_f64(acc.hi, 0) + vgetq_lane_f64(acc.hi, 1);
  return s01 + s23;
}

struct ValueBase {
  const Value* q;
  Value v;
  V4 vv;
  V4 Block(std::size_t i) const { return Abs(Sub(Load(q + i), vv)); }
  Value At(std::size_t i) const { return in::AbsDiff(q[i], v); }
};

struct IntervalBase {
  const Value* q;
  Value lb, ub;
  V4 vlb, vub, zero;
  V4 Block(std::size_t i) const {
    const V4 x = Load(q + i);
    return Max(Max(Sub(x, vub), Sub(vlb, x)), zero);
  }
  Value At(std::size_t i) const { return in::IntervalDist(q[i], lb, ub); }
};

struct ArrayBase {
  const Value* base;
  V4 Block(std::size_t i) const { return Load(base + i); }
  Value At(std::size_t i) const { return base[i]; }
};

/// The canonical row step (ScanBlock8 + PaddedScanBlock) on paired NEON
/// vectors.
template <typename B>
Value RowStep(const B& b, const Value* prev, Value* row, std::size_t n,
              Value left) {
  const V4 inf = Set1(kInfinity);
  const V4 zero = Set1(0.0);
  V4 carry = Set1(left);
  V4 vmin = inf;
  std::size_t i = 0;
  for (; i + kRowBlock <= n; i += kRowBlock) {
    const V4 b0 = b.Block(i);
    const V4 b1 = b.Block(i + 4);
    const V4 mp0 = Min(Load(prev + i), Load(prev + i - 1));
    const V4 mp1 = Min(Load(prev + i + 4), Load(prev + i + 3));
    const V4 p0 = Scan4Add(b0, zero);
    const V4 p0_top = Lane3(p0);
    const V4 p1 = Add(Scan4Add(b1, zero), p0_top);
    const V4 u0 = Sub(mp0, ShiftUp1(p0, zero));
    const V4 u1 = Sub(mp1, ShiftUp1(p1, p0_top));
    const V4 m0 = Scan4Min(u0, inf);
    const V4 m1 = Min(Scan4Min(u1, inf), Lane3(m0));
    const V4 r0 = Add(p0, Min(carry, m0));
    const V4 r1 = Add(p1, Min(carry, m1));
    Store(row + i, r0);
    Store(row + i + 4, r1);
    vmin = Min(vmin, Min(r0, r1));
    carry = Lane3(r1);
  }
  Value row_min = ReduceMin(vmin);
  if (i < n) {
    in::PaddedScanBlock([&b, i](std::size_t k) { return b.At(i + k); },
                        prev + i, row + i, 0, n - i,
                        vgetq_lane_f64(carry.lo, 0), &row_min);
  }
  return row_min;
}

Value RowStepValue(const Value* q, Value v, const Value* prev, Value* row,
                   std::size_t n, Value left) {
  return RowStep(ValueBase{q, v, Set1(v)}, prev, row, n, left);
}

Value RowStepInterval(const Value* q, Value lb, Value ub, const Value* prev,
                      Value* row, std::size_t n, Value left) {
  return RowStep(IntervalBase{q, lb, ub, Set1(lb), Set1(ub), Set1(0.0)},
                 prev, row, n, left);
}

Value RowStepBase(const Value* base, const Value* prev, Value* row,
                  std::size_t n, Value left) {
  return RowStep(ArrayBase{base}, prev, row, n, left);
}

void BaseDistanceRow(const Value* q, Value v, Value* out, std::size_t n) {
  const ValueBase b{q, v, Set1(v)};
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) Store(out + i, b.Block(i));
  for (; i < n; ++i) out[i] = b.At(i);
}

void IntervalDistanceRow(const Value* q, Value lb, Value ub, Value* out,
                         std::size_t n) {
  const IntervalBase b{q, lb, ub, Set1(lb), Set1(ub), Set1(0.0)};
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) Store(out + i, b.Block(i));
  for (; i < n; ++i) out[i] = b.At(i);
}

void MinPairRow(const Value* prev, Value* out, std::size_t n) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    Store(out + i, Min(Load(prev + i), Load(prev + i - 1)));
  }
  for (; i < n; ++i) out[i] = in::MinPd(prev[i], prev[i - 1]);
}

Value RowMin(const Value* row, std::size_t n) {
  V4 vmin = Set1(kInfinity);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) vmin = Min(vmin, Load(row + i));
  Value m = ReduceMin(vmin);
  for (; i < n; ++i) m = in::MinPd(m, row[i]);
  return m;
}

/// Canonical striped accumulation with vector stripes.
template <typename TermVec, typename TermAt>
Value Striped(std::size_t n, TermVec term_vec, TermAt term_at, Value cap) {
  V4 acc = Set1(0.0);
  const std::size_t n4 = n & ~std::size_t{3};
  std::size_t i = 0;
  for (; i < n4; i += 4) {
    acc = Add(acc, term_vec(i));
    if ((i + 4) % kLbBlock == 0) {
      const Value partial = CombineStripes(acc);
      if (partial > cap) return partial;
    }
  }
  Value sum = CombineStripes(acc);
  for (; i < n; ++i) sum += term_at(i);
  return sum;
}

Value LbKeogh(const Value* v, const Value* lo, const Value* up, std::size_t n,
              Value cap) {
  const V4 zero = Set1(0.0);
  return Striped(
      n,
      [&](std::size_t i) {
        const V4 x = Load(v + i);
        return Max(Max(Sub(x, Load(up + i)), Sub(Load(lo + i), x)), zero);
      },
      [&](std::size_t i) { return in::IntervalDist(v[i], lo[i], up[i]); },
      cap);
}

Value LbKeoghConst(const Value* v, Value lo, Value up, std::size_t n,
                   Value cap) {
  const IntervalBase b{v, lo, up, Set1(lo), Set1(up), Set1(0.0)};
  return Striped(
      n, [&](std::size_t i) { return b.Block(i); },
      [&](std::size_t i) { return b.At(i); }, cap);
}

Value LbImprovedPass1(const Value* v, const Value* lo, const Value* up,
                      Value* proj, std::size_t n) {
  const V4 zero = Set1(0.0);
  return Striped(
      n,
      [&](std::size_t i) {
        const V4 x = Load(v + i);
        const V4 l = Load(lo + i);
        const V4 u = Load(up + i);
        Store(proj + i, Min(Max(x, l), u));
        return Max(Max(Sub(x, u), Sub(l, x)), zero);
      },
      [&](std::size_t i) {
        proj[i] = in::MinPd(in::MaxPd(v[i], lo[i]), up[i]);
        return in::IntervalDist(v[i], lo[i], up[i]);
      },
      kInfinity);
}

Value LbImprovedPass1Const(const Value* v, Value lo, Value up, Value* proj,
                           std::size_t n) {
  const V4 vlo = Set1(lo);
  const V4 vup = Set1(up);
  const V4 zero = Set1(0.0);
  return Striped(
      n,
      [&](std::size_t i) {
        const V4 x = Load(v + i);
        Store(proj + i, Min(Max(x, vlo), vup));
        return Max(Max(Sub(x, vup), Sub(vlo, x)), zero);
      },
      [&](std::size_t i) {
        proj[i] = in::MinPd(in::MaxPd(v[i], lo), up);
        return in::IntervalDist(v[i], lo, up);
      },
      kInfinity);
}

void StridedGather(const Value* src, std::size_t stride, Value* dst,
                   std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) dst[i] = src[i * stride];
}

void BandedExtrema(const Value* seq, std::size_t n, std::size_t band,
                   Value* lower, Value* upper, Value* work) {
  // In-place with dst == src is safe in 2-wide chunks: both operands are
  // loaded before the same iteration's store, and later iterations only
  // read slots past every store so far (s >= 1, ascending j). MinPair /
  // MaxPair keep the second-operand-on-equality rule, so the padded
  // +-infinity lanes and ties resolve exactly like the scalar backend.
  in::BandedExtremaGeneric(
      seq, n, band, lower, upper, work,
      [](const Value* min_src, Value* min_dst, const Value* max_src,
         Value* max_dst, std::size_t count, std::size_t s) {
        std::size_t j = 0;
        for (; j + 2 <= count; j += 2) {
          vst1q_f64(min_dst + j, MinPair(vld1q_f64(min_src + j),
                                         vld1q_f64(min_src + j + s)));
          vst1q_f64(max_dst + j, MaxPair(vld1q_f64(max_src + j),
                                         vld1q_f64(max_src + j + s)));
        }
        for (; j < count; ++j) {
          min_dst[j] = in::MinPd(min_src[j], min_src[j + s]);
          max_dst[j] = in::MaxPd(max_src[j], max_src[j + s]);
        }
      });
}

Value SummaryLb(const Value* q, const Value* lo, const Value* hi,
                std::size_t num_intervals, std::size_t n, Value cap) {
  const V4 zero = Set1(0.0);
  return Striped(
      n,
      [&](std::size_t i) {
        const V4 x = Load(q + i);
        V4 d = Max(Max(Sub(x, Set1(hi[0])), Sub(Set1(lo[0]), x)), zero);
        for (std::size_t k = 1; k < num_intervals; ++k) {
          const V4 dk =
              Max(Max(Sub(x, Set1(hi[k])), Sub(Set1(lo[k]), x)), zero);
          d = Min(d, dk);
        }
        return d;
      },
      [&](std::size_t i) {
        Value d = in::IntervalDist(q[i], lo[0], hi[0]);
        for (std::size_t k = 1; k < num_intervals; ++k) {
          d = in::MinPd(d, in::IntervalDist(q[i], lo[k], hi[k]));
        }
        return d;
      },
      cap);
}

constexpr KernelTable kTable = {
    "neon",
    RowStepValue,
    RowStepInterval,
    RowStepBase,
    BaseDistanceRow,
    IntervalDistanceRow,
    MinPairRow,
    RowMin,
    LbKeogh,
    LbKeoghConst,
    LbImprovedPass1,
    LbImprovedPass1Const,
    StridedGather,
    BandedExtrema,
    SummaryLb,
};

}  // namespace

const KernelTable* NeonKernels() { return &kTable; }

}  // namespace tswarp::dtw::simd

#else  // not AArch64 NEON

namespace tswarp::dtw::simd {
const KernelTable* NeonKernels() { return nullptr; }
}  // namespace tswarp::dtw::simd

#endif
