#ifndef TSWARP_DTW_ENVELOPE_H_
#define TSWARP_DTW_ENVELOPE_H_

#include <cstddef>
#include <span>
#include <vector>

#include "common/types.h"
#include "dtw/simd.h"

namespace tswarp::dtw {

/// Min/max envelope of a query, indexed by *data* offset.
///
/// For a data element aligned against offset j (0-based position inside the
/// candidate subsequence), the warping path may only touch query elements
/// Q[i] with |i - j| <= band, so
///
///   lower[j] = min { Q[i] : |i - j| <= band }
///   upper[j] = max { Q[i] : |i - j| <= band }
///
/// and D_base-lb(v, [lower[j], upper[j]]) is a lower bound on the cost any
/// warping path pays for that data element (LB_Keogh's per-element term,
/// "Exact Indexing of Time Series under DTW"). band == 0 means
/// *unconstrained* warping (the paper's setting, matching the WarpingTable
/// convention): every data element may align with any query element, so the
/// envelope degenerates to the global [min Q, max Q] at every offset. The
/// bound stays valid for candidates of any length — only the banded case
/// runs out of reach (offsets j >= |Q| + band admit no legal path).
///
/// Envelopes are built once per query (the dispatched banded_extrema
/// kernel's doubling scheme, O(|Q| log band) branch-free work; one running
/// min/max pass when unconstrained) and shared by every candidate screen
/// of the search.
class QueryEnvelope {
 public:
  QueryEnvelope(std::span<const Value> query, Pos band);

  Pos band() const { return band_; }
  bool unconstrained() const { return band_ == 0; }

  /// Largest data offset with a non-empty query window, plus one. Offsets
  /// >= reach() admit no legal banded path; unconstrained reach is
  /// unlimited (kNoReachLimit).
  std::size_t reach() const { return reach_; }
  static constexpr std::size_t kNoReachLimit = static_cast<std::size_t>(-1);

  /// Lower-bound cost contribution of data value `v` at offset `j`:
  /// D_base-lb(v, [lower[j], upper[j]]), or kInfinity beyond reach().
  Value ElementLb(std::size_t j, Value v) const {
    if (j >= reach_) return kInfinity;
    const std::size_t idx = unconstrained() ? 0 : j;
    if (v > upper_[idx]) return v - upper_[idx];
    if (v < lower_[idx]) return lower_[idx] - v;
    return 0.0;
  }

  /// Envelope interval at offset `j` (requires j < reach()).
  Value LowerAt(std::size_t j) const {
    return lower_[unconstrained() ? 0 : j];
  }
  Value UpperAt(std::size_t j) const {
    return upper_[unconstrained() ? 0 : j];
  }

  /// Raw envelope arrays: length 1 when unconstrained, |Q| + band when
  /// banded (entry j covers data offset j).
  std::span<const Value> lower() const { return lower_; }
  std::span<const Value> upper() const { return upper_; }

 private:
  Pos band_;
  std::size_t reach_;
  simd::AlignedVector lower_;
  simd::AlignedVector upper_;
};

/// Reusable buffers for the two-pass bound and the prefix-abandoning exact
/// kernel; lets callers screen many candidates without re-allocating.
/// Aligned so the dispatched SIMD kernels read them on full-width lanes.
struct EnvelopeScratch {
  simd::AlignedVector projection;  // h(S): S clamped into Q's envelope.
  simd::AlignedVector proj_lower;  // Envelope of the projection (data side).
  simd::AlignedVector proj_upper;
  simd::AlignedVector suffix_lb;   // Suffix sums of per-element bounds.
  // Padded scratch for the banded_extrema kernel's doubling passes;
  // reusing it keeps the banded LB_Improved hot path allocation-free.
  simd::AlignedVector extrema_work;
};

/// Pruning threshold for every lower-bound-vs-epsilon screen: a candidate
/// is dismissed only when its bound exceeds LbPruneThreshold(epsilon), not
/// epsilon itself. The envelope bounds and the exact kernel accumulate the
/// same quantities in different floating-point orders (the exact kernel's
/// canonical block-scan vs the bounds' sums), so a bound that *equals* the
/// exact distance in real arithmetic — routine for piecewise-constant data,
/// where the envelope is tight — can land a few ULPs above the computed
/// exact distance. The relative headroom absorbs that reassociation drift;
/// candidates inside it fall through to the exact kernel, which decides
/// membership with the same bits on every engine. The slack is ~1e-12
/// relative: orders of magnitude above accumulated rounding error, orders
/// of magnitude below any meaningful distance gap, so pruning power is
/// unaffected.
inline Value LbPruneThreshold(Value epsilon) {
  return epsilon + 1e-12 * (epsilon < 0 ? -epsilon : epsilon);
}

/// LB_Keogh(Q, S) under `env`'s band: sum over the candidate's elements of
/// their envelope distance. Always <= D_tw(Q, S) (unconstrained) resp.
/// <= the banded D_tw. Abandons the accumulation once the partial sum
/// exceeds `abandon_above`; the returned partial sum is still a valid
/// lower bound (remaining terms are non-negative).
Value LbKeogh(const QueryEnvelope& env, std::span<const Value> candidate,
              Value abandon_above = kInfinity);

/// Lemire's two-pass bound LB_Improved(Q, S) >= LB_Keogh(Q, S): the first
/// pass is LB_Keogh and records the projection h(S) of the candidate onto
/// Q's envelope; the second adds LB_Keogh(S-side): the distance from each
/// query element to the envelope of h(S). ("Faster Retrieval with a
/// Two-Pass Dynamic-Time-Warping Lower Bound".) Abandons after either pass
/// once the sum exceeds `abandon_above`. `scratch` must be non-null.
Value LbImproved(const QueryEnvelope& env, std::span<const Value> query,
                 std::span<const Value> candidate, Value abandon_above,
                 EnvelopeScratch* scratch);

/// Exact thresholded D_tw with prefix-lower-bound abandoning: like
/// DtwWithinThreshold, but the per-row cutoff tests
///   RowMin(rows 1..y) + sum of envelope bounds of the unprocessed rows
/// against epsilon, which abandons strictly earlier than Theorem 1's
/// RowMin-only test (the suffix bound is >= 0). Uses `env.band()` as the
/// Sakoe-Chiba band of the exact computation; returns true and sets
/// *distance iff the (banded) D_tw(query, candidate) <= epsilon.
/// `env` must have been built from `query` with the same band.
bool DtwWithinThresholdLb(std::span<const Value> query,
                          std::span<const Value> candidate,
                          const QueryEnvelope& env, Value epsilon,
                          Value* distance, EnvelopeScratch* scratch);

}  // namespace tswarp::dtw

#endif  // TSWARP_DTW_ENVELOPE_H_
