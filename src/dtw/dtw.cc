#include "dtw/dtw.h"

#include <algorithm>
#include <vector>

#include "common/logging.h"
#include "dtw/base.h"
#include "dtw/warping_table.h"

namespace tswarp::dtw {

Value DtwDistance(std::span<const Value> a, std::span<const Value> b) {
  TSW_CHECK(!a.empty() && !b.empty());
  WarpingTable table(a, /*band=*/0, b.size());
  for (Value v : b) table.PushRowValue(v);
  return table.LastColumn();
}

bool DtwWithinThreshold(std::span<const Value> a, std::span<const Value> b,
                        Value epsilon, Value* distance) {
  TSW_CHECK(!a.empty() && !b.empty());
  WarpingTable table(a, /*band=*/0, b.size());
  for (Value v : b) {
    table.PushRowValue(v);
    if (table.RowMin() > epsilon) return false;  // Theorem 1.
  }
  const Value d = table.LastColumn();
  if (d > epsilon) return false;
  *distance = d;
  return true;
}

Value DtwDistanceBanded(std::span<const Value> a, std::span<const Value> b,
                        Pos band) {
  TSW_CHECK(!a.empty() && !b.empty());
  const std::size_t la = a.size();
  const std::size_t lb = b.size();
  const std::size_t diff = la > lb ? la - lb : lb - la;
  if (diff > band && band != 0) return kInfinity;
  if (band == 0 && la != lb) return kInfinity;
  WarpingTable table(a, band == 0 ? 1 : band, lb);
  if (band == 0) {
    // Degenerate band: diagonal-only alignment.
    Value total = 0.0;
    for (std::size_t i = 0; i < la; ++i) total += BaseDistance(a[i], b[i]);
    return total;
  }
  for (Value v : b) table.PushRowValue(v);
  return table.LastColumn();
}

Value DtwLowerBound(std::span<const Value> q, std::span<const Interval> cs) {
  TSW_CHECK(!q.empty() && !cs.empty());
  WarpingTable table(q, /*band=*/0, cs.size());
  for (const Interval& iv : cs) table.PushRowInterval(iv.lb, iv.ub);
  return table.LastColumn();
}

}  // namespace tswarp::dtw
