// AVX2 backend: 4-wide double lanes, two vectors per canonical 8-cell scan
// block. Compiled with -mavx2 for this file only (see src/dtw/CMakeLists);
// simd.cc checks __builtin_cpu_supports("avx2") before installing the
// table, so nothing here runs on CPUs without AVX2.
//
// Bitwise contract: every operation mirrors the canonical scalar dataflow
// of simd_internal.h — same association of additions, same shift/scan
// structure, and min/max called with the same operand order as MinPd /
// MaxPd (x86 minpd/maxpd return the second operand on equality, which is
// exactly MinPd/MaxPd's rule). No FMA anywhere: fused rounding would
// diverge from the other backends.

#include "dtw/simd_internal.h"

#if defined(__AVX2__)

#include <immintrin.h>

namespace tswarp::dtw::simd {
namespace {

namespace in = internal;

/// Lanes shifted up by one: out = {fill[0], x[0], x[1], x[2]}.
inline __m256d ShiftUp1(__m256d x, __m256d fill) {
  const __m256d r = _mm256_permute4x64_pd(x, _MM_SHUFFLE(2, 1, 0, 3));
  return _mm256_blend_pd(r, fill, 0x1);
}

/// Lanes shifted up by two: out = {fill[0], fill[1], x[0], x[1]}.
inline __m256d ShiftUp2(__m256d x, __m256d fill) {
  const __m256d r = _mm256_permute4x64_pd(x, _MM_SHUFFLE(1, 0, 3, 2));
  return _mm256_blend_pd(r, fill, 0x3);
}

/// Broadcast of lane 3.
inline __m256d Lane3(__m256d x) { return _mm256_permute4x64_pd(x, 0xFF); }

/// 4-lane inclusive +scan (canonical Scan4Add).
inline __m256d Scan4Add(__m256d b, __m256d zero) {
  const __m256d s1 = _mm256_add_pd(b, ShiftUp1(b, zero));
  return _mm256_add_pd(s1, ShiftUp2(s1, zero));
}

/// 4-lane inclusive min-scan (canonical Scan4Min; operand order u, shifted).
inline __m256d Scan4Min(__m256d u, __m256d inf) {
  const __m256d s1 = _mm256_min_pd(u, ShiftUp1(u, inf));
  return _mm256_min_pd(s1, ShiftUp2(s1, inf));
}

inline __m256d AbsPd(__m256d x) {
  return _mm256_andnot_pd(_mm256_set1_pd(-0.0), x);
}

/// Exact min-reduce of 4 lanes (order-free: min returns one of its inputs).
inline Value ReduceMin(__m256d x) {
  const __m128d lo = _mm256_castpd256_pd128(x);
  const __m128d hi = _mm256_extractf128_pd(x, 1);
  const __m128d m = _mm_min_pd(lo, hi);
  return in::MinPd(_mm_cvtsd_f64(m),
                   _mm_cvtsd_f64(_mm_unpackhi_pd(m, m)));
}

/// Canonical stripe combine: (s0 + s1) + (s2 + s3).
inline Value CombineStripes(__m256d acc) {
  const __m128d lo = _mm256_castpd256_pd128(acc);
  const __m128d hi = _mm256_extractf128_pd(acc, 1);
  const __m128d s01 = _mm_add_sd(lo, _mm_unpackhi_pd(lo, lo));
  const __m128d s23 = _mm_add_sd(hi, _mm_unpackhi_pd(hi, hi));
  return _mm_cvtsd_f64(_mm_add_sd(s01, s23));
}

/// Base-distance generators: a 4-lane block at cell offset i plus the
/// scalar form for the canonical sequential tail.
struct ValueBase {
  const Value* q;
  Value v;
  __m256d vv;
  __m256d Block(std::size_t i) const {
    return AbsPd(_mm256_sub_pd(_mm256_loadu_pd(q + i), vv));
  }
  Value At(std::size_t i) const { return in::AbsDiff(q[i], v); }
};

struct IntervalBase {
  const Value* q;
  Value lb, ub;
  __m256d vlb, vub, zero;
  __m256d Block(std::size_t i) const {
    const __m256d x = _mm256_loadu_pd(q + i);
    return _mm256_max_pd(
        _mm256_max_pd(_mm256_sub_pd(x, vub), _mm256_sub_pd(vlb, x)), zero);
  }
  Value At(std::size_t i) const { return in::IntervalDist(q[i], lb, ub); }
};

struct ArrayBase {
  const Value* base;
  __m256d Block(std::size_t i) const { return _mm256_loadu_pd(base + i); }
  Value At(std::size_t i) const { return base[i]; }
};

/// The canonical row step (ScanBlock8 + PaddedScanBlock) on AVX2 vectors.
template <typename B>
Value RowStep(const B& b, const Value* prev, Value* row, std::size_t n,
              Value left) {
  const __m256d inf = _mm256_set1_pd(kInfinity);
  const __m256d zero = _mm256_setzero_pd();
  __m256d carry = _mm256_set1_pd(left);
  __m256d vmin = inf;
  std::size_t i = 0;
  for (; i + kRowBlock <= n; i += kRowBlock) {
    const __m256d b0 = b.Block(i);
    const __m256d b1 = b.Block(i + 4);
    const __m256d mp0 = _mm256_min_pd(_mm256_loadu_pd(prev + i),
                                      _mm256_loadu_pd(prev + i - 1));
    const __m256d mp1 = _mm256_min_pd(_mm256_loadu_pd(prev + i + 4),
                                      _mm256_loadu_pd(prev + i + 3));
    const __m256d p0 = Scan4Add(b0, zero);
    const __m256d p0_top = Lane3(p0);
    const __m256d p1 = _mm256_add_pd(Scan4Add(b1, zero), p0_top);
    const __m256d u0 = _mm256_sub_pd(mp0, ShiftUp1(p0, zero));
    const __m256d u1 = _mm256_sub_pd(mp1, ShiftUp1(p1, p0_top));
    const __m256d m0 = Scan4Min(u0, inf);
    const __m256d m1 = _mm256_min_pd(Scan4Min(u1, inf), Lane3(m0));
    const __m256d r0 = _mm256_add_pd(p0, _mm256_min_pd(carry, m0));
    const __m256d r1 = _mm256_add_pd(p1, _mm256_min_pd(carry, m1));
    _mm256_storeu_pd(row + i, r0);
    _mm256_storeu_pd(row + i + 4, r1);
    vmin = _mm256_min_pd(vmin, _mm256_min_pd(r0, r1));
    carry = Lane3(r1);
  }
  Value row_min = ReduceMin(vmin);
  if (i < n) {
    in::PaddedScanBlock([&b, i](std::size_t k) { return b.At(i + k); },
                        prev + i, row + i, 0, n - i,
                        _mm256_cvtsd_f64(carry), &row_min);
  }
  return row_min;
}

Value RowStepValue(const Value* q, Value v, const Value* prev, Value* row,
                   std::size_t n, Value left) {
  return RowStep(ValueBase{q, v, _mm256_set1_pd(v)}, prev, row, n, left);
}

Value RowStepInterval(const Value* q, Value lb, Value ub, const Value* prev,
                      Value* row, std::size_t n, Value left) {
  return RowStep(IntervalBase{q, lb, ub, _mm256_set1_pd(lb),
                              _mm256_set1_pd(ub), _mm256_setzero_pd()},
                 prev, row, n, left);
}

Value RowStepBase(const Value* base, const Value* prev, Value* row,
                  std::size_t n, Value left) {
  return RowStep(ArrayBase{base}, prev, row, n, left);
}

void BaseDistanceRow(const Value* q, Value v, Value* out, std::size_t n) {
  const ValueBase b{q, v, _mm256_set1_pd(v)};
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) _mm256_storeu_pd(out + i, b.Block(i));
  for (; i < n; ++i) out[i] = b.At(i);
}

void IntervalDistanceRow(const Value* q, Value lb, Value ub, Value* out,
                         std::size_t n) {
  const IntervalBase b{q, lb, ub, _mm256_set1_pd(lb), _mm256_set1_pd(ub),
                       _mm256_setzero_pd()};
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) _mm256_storeu_pd(out + i, b.Block(i));
  for (; i < n; ++i) out[i] = b.At(i);
}

void MinPairRow(const Value* prev, Value* out, std::size_t n) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm256_storeu_pd(out + i,
                     _mm256_min_pd(_mm256_loadu_pd(prev + i),
                                   _mm256_loadu_pd(prev + i - 1)));
  }
  for (; i < n; ++i) out[i] = in::MinPd(prev[i], prev[i - 1]);
}

Value RowMin(const Value* row, std::size_t n) {
  __m256d vmin = _mm256_set1_pd(kInfinity);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    vmin = _mm256_min_pd(vmin, _mm256_loadu_pd(row + i));
  }
  Value m = ReduceMin(vmin);
  for (; i < n; ++i) m = in::MinPd(m, row[i]);
  return m;
}

/// Canonical striped accumulation (StripedSum) with vector stripes: lane l
/// of `acc` is stripe l.
template <typename TermVec, typename TermAt>
Value Striped(std::size_t n, TermVec term_vec, TermAt term_at, Value cap) {
  __m256d acc = _mm256_setzero_pd();
  const std::size_t n4 = n & ~std::size_t{3};
  std::size_t i = 0;
  for (; i < n4; i += 4) {
    acc = _mm256_add_pd(acc, term_vec(i));
    if ((i + 4) % kLbBlock == 0) {
      const Value partial = CombineStripes(acc);
      if (partial > cap) return partial;
    }
  }
  Value sum = CombineStripes(acc);
  for (; i < n; ++i) sum += term_at(i);
  return sum;
}

Value LbKeogh(const Value* v, const Value* lo, const Value* up, std::size_t n,
              Value cap) {
  const __m256d zero = _mm256_setzero_pd();
  return Striped(
      n,
      [&](std::size_t i) {
        const __m256d x = _mm256_loadu_pd(v + i);
        const __m256d l = _mm256_loadu_pd(lo + i);
        const __m256d u = _mm256_loadu_pd(up + i);
        return _mm256_max_pd(
            _mm256_max_pd(_mm256_sub_pd(x, u), _mm256_sub_pd(l, x)), zero);
      },
      [&](std::size_t i) { return in::IntervalDist(v[i], lo[i], up[i]); },
      cap);
}

Value LbKeoghConst(const Value* v, Value lo, Value up, std::size_t n,
                   Value cap) {
  const IntervalBase b{v, lo, up, _mm256_set1_pd(lo), _mm256_set1_pd(up),
                       _mm256_setzero_pd()};
  return Striped(
      n, [&](std::size_t i) { return b.Block(i); },
      [&](std::size_t i) { return b.At(i); }, cap);
}

Value LbImprovedPass1(const Value* v, const Value* lo, const Value* up,
                      Value* proj, std::size_t n) {
  const __m256d zero = _mm256_setzero_pd();
  return Striped(
      n,
      [&](std::size_t i) {
        const __m256d x = _mm256_loadu_pd(v + i);
        const __m256d l = _mm256_loadu_pd(lo + i);
        const __m256d u = _mm256_loadu_pd(up + i);
        _mm256_storeu_pd(proj + i,
                         _mm256_min_pd(_mm256_max_pd(x, l), u));
        return _mm256_max_pd(
            _mm256_max_pd(_mm256_sub_pd(x, u), _mm256_sub_pd(l, x)), zero);
      },
      [&](std::size_t i) {
        proj[i] = in::MinPd(in::MaxPd(v[i], lo[i]), up[i]);
        return in::IntervalDist(v[i], lo[i], up[i]);
      },
      kInfinity);
}

Value LbImprovedPass1Const(const Value* v, Value lo, Value up, Value* proj,
                           std::size_t n) {
  const __m256d vlo = _mm256_set1_pd(lo);
  const __m256d vup = _mm256_set1_pd(up);
  const __m256d zero = _mm256_setzero_pd();
  return Striped(
      n,
      [&](std::size_t i) {
        const __m256d x = _mm256_loadu_pd(v + i);
        _mm256_storeu_pd(proj + i,
                         _mm256_min_pd(_mm256_max_pd(x, vlo), vup));
        return _mm256_max_pd(
            _mm256_max_pd(_mm256_sub_pd(x, vup), _mm256_sub_pd(vlo, x)),
            zero);
      },
      [&](std::size_t i) {
        proj[i] = in::MinPd(in::MaxPd(v[i], lo), up);
        return in::IntervalDist(v[i], lo, up);
      },
      kInfinity);
}

void StridedGather(const Value* src, std::size_t stride, Value* dst,
                   std::size_t n) {
  // A plain copy (hardware gathers are not faster for this shape); the
  // result is exact, so any implementation matches the contract.
  for (std::size_t i = 0; i < n; ++i) dst[i] = src[i * stride];
}

void BandedExtrema(const Value* seq, std::size_t n, std::size_t band,
                   Value* lower, Value* upper, Value* work) {
  // In-place with dst == src is safe in 4-wide chunks: both operand
  // vectors are loaded before the store of the same iteration, and later
  // iterations only read slots past every store so far (s >= 1, ascending
  // j) — exactly the original values the canonical scalar pass reads.
  in::BandedExtremaGeneric(
      seq, n, band, lower, upper, work,
      [](const Value* min_src, Value* min_dst, const Value* max_src,
         Value* max_dst, std::size_t count, std::size_t s) {
        std::size_t j = 0;
        for (; j + 4 <= count; j += 4) {
          _mm256_storeu_pd(min_dst + j,
                           _mm256_min_pd(_mm256_loadu_pd(min_src + j),
                                         _mm256_loadu_pd(min_src + j + s)));
          _mm256_storeu_pd(max_dst + j,
                           _mm256_max_pd(_mm256_loadu_pd(max_src + j),
                                         _mm256_loadu_pd(max_src + j + s)));
        }
        for (; j < count; ++j) {
          min_dst[j] = in::MinPd(min_src[j], min_src[j + s]);
          max_dst[j] = in::MaxPd(max_src[j], max_src[j + s]);
        }
      });
}

Value SummaryLb(const Value* q, const Value* lo, const Value* hi,
                std::size_t num_intervals, std::size_t n, Value cap) {
  const __m256d zero = _mm256_setzero_pd();
  return Striped(
      n,
      [&](std::size_t i) {
        const __m256d x = _mm256_loadu_pd(q + i);
        __m256d d = _mm256_max_pd(
            _mm256_max_pd(_mm256_sub_pd(x, _mm256_set1_pd(hi[0])),
                          _mm256_sub_pd(_mm256_set1_pd(lo[0]), x)),
            zero);
        for (std::size_t k = 1; k < num_intervals; ++k) {
          const __m256d dk = _mm256_max_pd(
              _mm256_max_pd(_mm256_sub_pd(x, _mm256_set1_pd(hi[k])),
                            _mm256_sub_pd(_mm256_set1_pd(lo[k]), x)),
              zero);
          d = _mm256_min_pd(d, dk);
        }
        return d;
      },
      [&](std::size_t i) {
        Value d = in::IntervalDist(q[i], lo[0], hi[0]);
        for (std::size_t k = 1; k < num_intervals; ++k) {
          d = in::MinPd(d, in::IntervalDist(q[i], lo[k], hi[k]));
        }
        return d;
      },
      cap);
}

constexpr KernelTable kTable = {
    "avx2",
    RowStepValue,
    RowStepInterval,
    RowStepBase,
    BaseDistanceRow,
    IntervalDistanceRow,
    MinPairRow,
    RowMin,
    LbKeogh,
    LbKeoghConst,
    LbImprovedPass1,
    LbImprovedPass1Const,
    StridedGather,
    BandedExtrema,
    SummaryLb,
};

}  // namespace

const KernelTable* Avx2Kernels() { return &kTable; }

}  // namespace tswarp::dtw::simd

#else  // !defined(__AVX2__)

namespace tswarp::dtw::simd {
const KernelTable* Avx2Kernels() { return nullptr; }
}  // namespace tswarp::dtw::simd

#endif
