#include "dtw/alignment.h"

#include <algorithm>

#include "common/logging.h"
#include "dtw/base.h"

namespace tswarp::dtw {

Alignment DtwAlign(std::span<const Value> a, std::span<const Value> b) {
  TSW_CHECK(!a.empty() && !b.empty());
  const std::size_t n = a.size();
  const std::size_t m = b.size();
  // Full gamma table, row-major over b (rows) x a (columns).
  std::vector<Value> g(n * m);
  auto at = [&](std::size_t x, std::size_t y) -> Value& {
    return g[y * n + x];
  };
  for (std::size_t y = 0; y < m; ++y) {
    for (std::size_t x = 0; x < n; ++x) {
      const Value base = BaseDistance(a[x], b[y]);
      Value best;
      if (x == 0 && y == 0) {
        best = 0.0;
      } else if (x == 0) {
        best = at(0, y - 1);
      } else if (y == 0) {
        best = at(x - 1, 0);
      } else {
        best = std::min({at(x - 1, y - 1), at(x - 1, y), at(x, y - 1)});
      }
      at(x, y) = base + best;
    }
  }

  Alignment result;
  result.distance = at(n - 1, m - 1);
  // Backtrack, preferring the diagonal on ties.
  std::size_t x = n - 1;
  std::size_t y = m - 1;
  result.path.push_back({static_cast<Pos>(x), static_cast<Pos>(y)});
  while (x > 0 || y > 0) {
    if (x == 0) {
      --y;
    } else if (y == 0) {
      --x;
    } else {
      const Value diag = at(x - 1, y - 1);
      const Value left = at(x - 1, y);
      const Value down = at(x, y - 1);
      if (diag <= left && diag <= down) {
        --x;
        --y;
      } else if (left <= down) {
        --x;
      } else {
        --y;
      }
    }
    result.path.push_back({static_cast<Pos>(x), static_cast<Pos>(y)});
  }
  std::reverse(result.path.begin(), result.path.end());
  return result;
}

}  // namespace tswarp::dtw
