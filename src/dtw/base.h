#ifndef TSWARP_DTW_BASE_H_
#define TSWARP_DTW_BASE_H_

#include <cmath>

#include "common/types.h"

namespace tswarp::dtw {

/// City-block base distance between two element values (paper Definition 1,
/// D_base(a, b) = |a - b|).
inline Value BaseDistance(Value a, Value b) { return std::fabs(a - b); }

/// Lower-bound base distance between a numeric value `a` and a category
/// interval [lb, ub] (paper Definition 3, D_base-lb): the smallest possible
/// |a - b| over all b in [lb, ub].
inline Value BaseDistanceLb(Value a, Value lb, Value ub) {
  if (a > ub) return a - ub;
  if (a < lb) return lb - a;
  return 0.0;
}

/// Constant-time endpoint lower bound on D_tw(a, b) (in the spirit of
/// Kim et al.'s LB_Kim): every warping path aligns a[0] with b[0] at its
/// start and a[n-1] with b[m-1] at its end, so the sum of those two base
/// distances never exceeds the full distance (they are distinct path
/// cells unless both sequences have length one). Used to reject
/// post-processing candidates before the O(nm) exact computation.
template <typename SpanA, typename SpanB>
Value EndpointLowerBound(const SpanA& a, const SpanB& b) {
  const Value first = BaseDistance(a.front(), b.front());
  if (a.size() == 1 && b.size() == 1) return first;
  return first + BaseDistance(a.back(), b.back());
}

/// Second-level lower bound for suffixes inside a run of equal leading
/// symbols (paper Definition 4, D_tw-lb2). Given
///   lb  = D_tw-lb(Q, CS[s:-])   for a stored suffix starting a run,
///   first_elem_lb = D_base-lb(Q[1], CS[s]),
/// the distance to the non-stored suffix CS[s+skipped:-] is lower-bounded by
///   lb - skipped * first_elem_lb.
/// Clamped at zero since DTW distances are non-negative.
inline Value LowerBound2(Value lb, Pos skipped, Value first_elem_lb) {
  Value v = lb - static_cast<Value>(skipped) * first_elem_lb;
  return v < 0.0 ? 0.0 : v;
}

}  // namespace tswarp::dtw

#endif  // TSWARP_DTW_BASE_H_
