#ifndef TSWARP_DTW_SIMD_INTERNAL_H_
#define TSWARP_DTW_SIMD_INTERNAL_H_

#include <cmath>
#include <cstddef>

#include "common/types.h"
#include "dtw/simd.h"

/// Canonical scalar building blocks shared by every backend translation
/// unit. The vector backends must mirror these exactly — same association
/// of additions, same shift/scan structure, same min/max operand order —
/// so that all backends produce bitwise-identical results.
///
/// MinPd/MaxPd replicate the x86 minpd/maxpd selection rule — return the
/// SECOND operand when the operands compare equal (which is where +0.0
/// and -0.0 differ) — so scalar and vector code agree bit-for-bit as long
/// as both pass operands in the same order. NaN never reaches a kernel
/// (base distances are finite; +infinity only ever meets finite values).
/// NEON backends must select via explicit compare+bitselect, not
/// FMIN/FMAX, which order signed zeros differently.

namespace tswarp::dtw::simd::internal {

inline Value MinPd(Value a, Value b) { return a < b ? a : b; }
inline Value MaxPd(Value a, Value b) { return a > b ? a : b; }

/// |a - b| via sign-bit clear (std::fabs), matching the vector backends'
/// andnot(-0.0, x) — both map -0.0 to +0.0.
inline Value AbsDiff(Value a, Value b) { return std::fabs(a - b); }

/// D_base-lb as max(max(v - up, lo - v), +0.0) — the branch-free form the
/// vector backends use; identical values to the branching BaseDistanceLb
/// (the final max against +0.0 also canonicalizes any -0.0 away).
inline Value IntervalDist(Value v, Value lo, Value up) {
  return MaxPd(MaxPd(v - up, lo - v), 0.0);
}

/// 4-lane Hillis-Steele inclusive +scan: the canonical association is
///   s1[i] = b[i] + b[i-1]   (shift-by-1, zero shifted in)
///   out[i] = s1[i] + s1[i-2] (shift-by-2)
/// giving out = {b0, b1+b0, (b2+b1)+b0, (b3+b2)+(b1+b0)}.
inline void Scan4Add(const Value b[4], Value out[4]) {
  const Value s1_1 = b[1] + b[0];
  const Value s1_2 = b[2] + b[1];
  const Value s1_3 = b[3] + b[2];
  out[0] = b[0];
  out[1] = s1_1;
  out[2] = s1_2 + b[0];
  out[3] = s1_3 + s1_1;
}

/// 4-lane inclusive min-scan with the same shift structure (+infinity
/// shifted in). min is exact, so only signed-zero handling needs the
/// operand-order discipline of MinPd.
inline void Scan4Min(const Value u[4], Value out[4]) {
  const Value s1_1 = MinPd(u[1], u[0]);
  const Value s1_2 = MinPd(u[2], u[1]);
  const Value s1_3 = MinPd(u[3], u[2]);
  out[0] = u[0];
  out[1] = s1_1;
  out[2] = MinPd(s1_2, u[0]);
  out[3] = MinPd(s1_3, s1_1);
}

/// One canonical row-step scan block of kRowBlock == 8 cells (see
/// docs/algorithms.md "two-pass row step"). Inputs are the 8 base
/// distances and the 8 pairwise previous-row minima
/// mp[i] = min(prev[i], prev[i-1]); `left` is row[-1]. Writes row[0..8)
/// and returns row[7] (the next block's carry).
///
/// Derivation: unrolling row[i] = base[i] + min(row[i-1], mp[i]) gives
///   row[i] = P[i] + min(left, min_{j<=i}(mp[j] - P[j-1]))
/// with P the inclusive prefix sum of base and P[-1] = 0. The formula
/// holds exactly in real arithmetic; in floating point it fixes ONE
/// canonical rounding (the scans above), which every backend reproduces.
inline Value ScanBlock8(const Value base[8], const Value mp[8], Value left,
                        Value* row) {
  // P: two 4-lane scans; the high group adds the low group's total.
  Value p_lo[4];
  Value p_hi[4];
  Scan4Add(base, p_lo);
  Scan4Add(base + 4, p_hi);
  Value P[8];
  for (int i = 0; i < 4; ++i) P[i] = p_lo[i];
  for (int i = 0; i < 4; ++i) P[4 + i] = p_hi[i] + p_lo[3];
  // u[i] = mp[i] - P[i-1] (P[-1] = 0). P is finite (base distances are
  // finite), so +infinity in mp propagates cleanly and no NaN can form.
  Value u[8];
  u[0] = mp[0];
  for (int i = 1; i < 8; ++i) u[i] = mp[i] - P[i - 1];
  // M: running min of u with the same two-group scan structure.
  Value m_lo[4];
  Value m_hi[4];
  Scan4Min(u, m_lo);
  Scan4Min(u + 4, m_hi);
  Value M[8];
  for (int i = 0; i < 4; ++i) M[i] = m_lo[i];
  for (int i = 0; i < 4; ++i) M[4 + i] = MinPd(m_hi[i], m_lo[3]);
  for (int i = 0; i < 8; ++i) row[i] = P[i] + MinPd(left, M[i]);
  return row[7];
}

/// One padded scan block: the canonical block dataflow applied to a block
/// that is only partially covered by computed cells. Lanes [0, lead) are
/// out-of-band on the left (a banded row starting mid-block): they keep
/// their REAL base distances — so the prefix sum P is independent of where
/// the band starts — but their mp is forced to +infinity (no warping path
/// may pass through an out-of-band cell; the stored prev values there
/// belong to the previous row's band and must not leak in). Lanes
/// [lead, lead + m) are the computed cells, written to row. Lanes beyond
/// are trailing padding (base 0, mp +infinity) whose lanes are discarded —
/// the scans are causal (lane j depends only on lanes <= j), so trailing
/// padding never perturbs a computed lane.
///
/// Every partial block goes through here — in every backend — so a cell's
/// floating-point dataflow depends only on its absolute column, never on
/// how the band clips the row. Together with the monotonicity of every
/// operation involved (and of rounding), that makes banded distances
/// exactly monotone in the band width. `base_at(k)` must be valid for
/// lanes [0, lead + m); `prev`/`row` point at the block's first lane
/// (prev[-1] readable). Returns the value of lane lead + m - 1 (the
/// carry when the block is full).
template <typename BaseAt>
inline Value PaddedScanBlock(BaseAt base_at, const Value* prev, Value* row,
                             std::size_t lead, std::size_t m, Value left,
                             Value* row_min) {
  Value base[kRowBlock];
  Value mp[kRowBlock];
  const std::size_t end = lead + m;
  for (std::size_t k = 0; k < kRowBlock; ++k) {
    if (k < lead) {
      base[k] = base_at(k);
      mp[k] = kInfinity;
    } else if (k < end) {
      base[k] = base_at(k);
      mp[k] = MinPd(prev[k], prev[k - 1]);
    } else {
      base[k] = 0.0;
      mp[k] = kInfinity;
    }
  }
  Value cells[kRowBlock];
  ScanBlock8(base, mp, left, cells);
  for (std::size_t k = lead; k < end; ++k) {
    row[k] = cells[k];
    *row_min = MinPd(*row_min, cells[k]);
  }
  return cells[end - 1];
}

/// Generic canonical row step: full scan blocks of 8, one padded block for
/// any remainder. The scalar backend uses this directly; vector backends
/// replace the full-block body with vector code but keep this exact
/// structure (and share PaddedScanBlock for the remainder).
template <typename BaseAt>
inline Value RowStepGeneric(BaseAt base_at, const Value* prev, Value* row,
                            std::size_t n, Value left) {
  Value row_min = kInfinity;
  std::size_t i = 0;
  for (; i + kRowBlock <= n; i += kRowBlock) {
    Value base[kRowBlock];
    Value mp[kRowBlock];
    for (std::size_t k = 0; k < kRowBlock; ++k) {
      base[k] = base_at(i + k);
      mp[k] = MinPd(prev[i + k], prev[i + k - 1]);
    }
    left = ScanBlock8(base, mp, left, row + i);
    for (std::size_t k = 0; k < kRowBlock; ++k) {
      row_min = MinPd(row_min, row[i + k]);
    }
  }
  if (i < n) {
    PaddedScanBlock([&](std::size_t k) { return base_at(i + k); }, prev + i,
                    row + i, 0, n - i, left, &row_min);
  }
  return row_min;
}

/// Canonical striped accumulation: four stripe accumulators (stripe l sums
/// elements with index = l mod 4) combined as (s0 + s1) + (s2 + s3), with
/// the sub-multiple-of-4 tail added sequentially onto the combined sum.
/// At every kLbBlock boundary the combined partial is tested against
/// `cap`; exceeding it abandons, returning the partial (still a valid
/// lower bound: all remaining terms are non-negative). Pass
/// cap = kInfinity to disable abandoning.
template <typename TermAt>
inline Value StripedSum(std::size_t n, TermAt term_at, Value cap) {
  Value acc[4] = {0.0, 0.0, 0.0, 0.0};
  const std::size_t n4 = n & ~std::size_t{3};
  for (std::size_t i = 0; i < n4; i += 4) {
    acc[0] += term_at(i);
    acc[1] += term_at(i + 1);
    acc[2] += term_at(i + 2);
    acc[3] += term_at(i + 3);
    if ((i + 4) % kLbBlock == 0) {
      const Value partial = (acc[0] + acc[1]) + (acc[2] + acc[3]);
      if (partial > cap) return partial;
    }
  }
  Value sum = (acc[0] + acc[1]) + (acc[2] + acc[3]);
  for (std::size_t i = n4; i < n; ++i) sum += term_at(i);
  return sum;
}

/// Canonical sliding-window extrema (the banded envelope of LB_Keogh /
/// LB_Improved): for every data offset j in [0, n + band) computes
///
///   lower[j] = min seq[max(0, j-band) .. min(n-1, j+band)]
///   upper[j] = max seq[...same window...]
///
/// via sparse-table doubling: the sequence is padded into `work` (size
/// 2 * (n + 3*band); the first half is the min side, padded with +inf,
/// the second half the max side, padded with -inf), then log2(window)
/// in-place passes work[i] = min(work[i], work[i + s]) with s = 1, 2,
/// 4, ... grow each slot's covered span to the largest power of two
/// p <= window, and the final pass combines the two overlapping p-spans
/// of each window into lower/upper. Every operation is an exact
/// two-operand min/max with MinPd/MaxPd operand order, so all backends
/// produce bitwise-identical envelopes; unlike the classic monotonic
/// deque this dataflow is branch-free and elementwise-vectorizable. The
/// min and max sides run fused in one pass over both halves — two
/// independent dependency chains per loop for the price of one set of
/// loop control.
///
/// `pass(min_src, min_dst, max_src, max_dst, count, s)` must compute
/// min_dst[j] = MinPd(min_src[j], min_src[j + s]) and max_dst[j] =
/// MaxPd(max_src[j], max_src[j + s]) for j in [0, count), reading each
/// src slot before any write lands on it when dst == src and processing
/// j in ascending order (s >= 1 makes ascending in-place reads see only
/// unwritten slots). Requires band >= 1 and n >= 1.
template <typename PassFn>
inline void BandedExtremaGeneric(const Value* seq, std::size_t n,
                                 std::size_t band, Value* lower, Value* upper,
                                 Value* work, PassFn pass) {
  const std::size_t w = 2 * band + 1;  // Window width (odd, >= 3).
  const std::size_t m = n + 3 * band;  // Padded length (per side).
  const std::size_t reach = n + band;  // Output offsets.
  std::size_t p = 1;
  while (p * 2 <= w) p *= 2;
  Value* wmin = work;
  Value* wmax = work + m;
  for (std::size_t i = 0; i < band; ++i) {
    wmin[i] = kInfinity;
    wmax[i] = -kInfinity;
  }
  for (std::size_t i = 0; i < n; ++i) {
    wmin[band + i] = seq[i];
    wmax[band + i] = seq[i];
  }
  for (std::size_t i = band + n; i < m; ++i) {
    wmin[i] = kInfinity;
    wmax[i] = -kInfinity;
  }
  for (std::size_t s = 1; s < p; s *= 2) {
    pass(wmin, wmin, wmax, wmax, m - 2 * s + 1, s);
  }
  pass(wmin, lower, wmax, upper, reach, w - p);
}

}  // namespace tswarp::dtw::simd::internal

#endif  // TSWARP_DTW_SIMD_INTERNAL_H_
