#ifndef TSWARP_DTW_WARPING_TABLE_H_
#define TSWARP_DTW_WARPING_TABLE_H_

#include <cstddef>
#include <span>
#include <vector>

#include "common/logging.h"
#include "common/types.h"
#include "dtw/base.h"
#include "dtw/simd.h"
#include "dtw/simd_internal.h"

namespace tswarp::dtw {

/// Incremental cumulative time-warping distance table (paper Definition 2).
///
/// The query Q is fixed along the columns (x axis); data elements are
/// appended as rows (y axis). After pushing row y:
///   * LastColumn() is D_tw(Q, data[1:y])  — the distance between Q and the
///     data prefix of length y (paper Section 3: "by reading the last column
///     of each row ... we get the distance between S_i and any prefix");
///   * RowMin() is the minimum over all columns of row y. By Theorem 1, if
///     RowMin() > epsilon, no extension of the data prefix can bring the
///     distance back to <= epsilon, so the branch can be pruned. The minimum
///     is recorded while the row is computed, so RowMin() is O(1).
///
/// Rows can be popped, which makes the table usable as a DFS stack over a
/// suffix tree: all suffixes sharing a prefix share the prefix's rows
/// (the R_d table-sharing factor of Section 4.3).
///
/// Rows may be pushed either from exact numeric values (PushRowValue, the
/// D_tw recurrence) or from category intervals (PushRowInterval, the
/// D_tw-lb recurrence of Definition 3). Mixing both in one table is legal:
/// each row's base distance is independent of the others'.
///
/// An optional Sakoe-Chiba band constrains |x - y| <= band; cells outside
/// the band are +infinity. Used by the length-bounded index extension.
///
/// Each row y >= 1 is computed in three steps: (1) the in-band column range
/// [x_lo, x_hi) is hoisted out of the recurrence (the band test is a range
/// computation per row, not a branch per cell); (2) cells outside the range
/// are filled with +infinity; (3) the in-band cells are handed to the
/// active simd::Kernels() row-step kernel, which evaluates the Definition-2
/// recurrence with the canonical block-scan dataflow (bitwise identical on
/// every backend — see dtw/simd.h). The carry-in `left` for the first
/// computed cell is row[x_lo - 1], which is always +infinity: either the
/// column-0 sentinel or a just-filled out-of-band cell. Row 0 (the
/// prefix-sum row with the x == 1 entry cell) is sequential and
/// backend-independent.
///
/// The kernel's scan blocks are anchored to the absolute query index, not
/// to x_lo: a block that the band only partially covers — at either edge
/// of the in-band range — is evaluated with the same padded block-scan
/// dataflow as a full block (simd::internal::PaddedScanBlock: leading
/// out-of-band lanes keep their real base distances, so the prefix sum is
/// band-independent, but contribute +infinity path minima; trailing lanes
/// are causally inert padding). Each cell's floating-point dataflow
/// therefore depends only on its absolute column, never on how the band
/// clips the row, and since every operation in the recurrence is monotone
/// and rounding preserves order, widening the band is monotone per cell
/// even at the ULP level — DtwDistanceBanded distances never increase
/// with a wider band, exactly, which callers and tests rely on.
class WarpingTable {
 public:
  /// Default for `depth_hint` when the caller has no estimate.
  static constexpr std::size_t kDefaultDepthHint = 64;

  /// Creates an empty table for query `query`. The span must stay valid for
  /// the lifetime of the table. `band = 0` means unconstrained warping.
  /// `depth_hint` is the expected number of simultaneously live rows (DFS
  /// depth, or sequence length for scans); it only pre-sizes the cell
  /// storage so that deep traversals do not grow the vector — and copy
  /// every live row — repeatedly. It is not a limit.
  explicit WarpingTable(std::span<const Value> query, Pos band = 0,
                        std::size_t depth_hint = kDefaultDepthHint)
      : query_(query), query_len_(query.size()), band_(band) {
    TSW_CHECK(!query.empty()) << "query must be non-null (paper Def. 1)";
    ReserveDepth(depth_hint);
  }

  /// Length-only constructor for callers that push rows with PushRowCustom
  /// (e.g. the multivariate extension, where elements are vectors and the
  /// base distances cannot be derived from a Value span). PushRowValue /
  /// PushRowInterval are illegal on such a table unless BindQuery() is
  /// called first.
  explicit WarpingTable(std::size_t query_length, Pos band,
                        std::size_t depth_hint = kDefaultDepthHint)
      : query_len_(query_length), band_(band) {
    TSW_CHECK(query_length > 0);
    ReserveDepth(depth_hint);
  }

  WarpingTable(const WarpingTable&) = delete;
  WarpingTable& operator=(const WarpingTable&) = delete;

  /// Binds (or re-binds) the query span of a table built with the
  /// length-only constructor, enabling PushRowValue / PushRowInterval.
  /// The length must match; the span must outlive the table's use of it.
  void BindQuery(std::span<const Value> query) {
    TSW_CHECK(query.size() == query_len_);
    query_ = query;
  }

  /// Appends the exact-D_tw row for data element `v`.
  void PushRowValue(Value v) {
    TSW_DCHECK(!query_.empty());
    const RowFrame f = BeginRow();
    Value rmin;
    if (f.prev == nullptr) {
      rmin = Row0PrefixSum(
          [this, v](std::size_t xi) { return BaseDistance(query_[xi], v); },
          f);
    } else {
      rmin = ComputeRow(
          f,
          [this, v](std::size_t x) { return BaseDistance(query_[x - 1], v); },
          [&](std::size_t start, std::size_t n, Value left) {
            return kernels_->row_step_value(query_.data() + (start - 1), v,
                                            f.prev + start, f.row + start, n,
                                            left);
          });
    }
    FinishRow(rmin, f.hi - f.lo);
  }

  /// Appends the D_tw-lb row for a category interval [lb, ub].
  void PushRowInterval(Value lb, Value ub) {
    TSW_DCHECK(!query_.empty());
    const RowFrame f = BeginRow();
    Value rmin;
    if (f.prev == nullptr) {
      rmin = Row0PrefixSum(
          [this, lb, ub](std::size_t xi) {
            return BaseDistanceLb(query_[xi], lb, ub);
          },
          f);
    } else {
      rmin = ComputeRow(
          f,
          [this, lb, ub](std::size_t x) {
            return BaseDistanceLb(query_[x - 1], lb, ub);
          },
          [&](std::size_t start, std::size_t n, Value left) {
            return kernels_->row_step_interval(query_.data() + (start - 1),
                                               lb, ub, f.prev + start,
                                               f.row + start, n, left);
          });
    }
    FinishRow(rmin, f.hi - f.lo);
  }

  /// Appends a row with caller-supplied base distances: `base(x)` must
  /// return D_base(Q[x+1], element) for query index x (0-based). The base
  /// distances are materialized into an aligned scratch row and handed to
  /// the generic row-step kernel.
  template <typename BaseFn>
  void PushRowCustom(BaseFn base) {
    const RowFrame f = BeginRow();
    Value rmin;
    if (f.prev == nullptr) {
      rmin = Row0PrefixSum(base, f);
    } else {
      rmin = ComputeRow(
          f, [&base](std::size_t x) { return base(x - 1); },
          [&](std::size_t start, std::size_t n, Value left) {
            for (std::size_t k = 0; k < n; ++k) {
              scratch_[k] = base(start - 1 + k);
            }
            return kernels_->row_step_base(scratch_.data(), f.prev + start,
                                           f.row + start, n, left);
          });
    }
    FinishRow(rmin, f.hi - f.lo);
  }

  /// Removes the most recently pushed row.
  void PopRow() {
    TSW_DCHECK(num_rows_ > 0);
    cells_.resize(cells_.size() - Width());
    row_mins_.pop_back();
    --num_rows_;
  }

  /// Removes the `n` most recently pushed rows.
  void PopRows(std::size_t n) {
    TSW_DCHECK(n <= num_rows_);
    cells_.resize(cells_.size() - n * Width());
    row_mins_.resize(row_mins_.size() - n);
    num_rows_ -= n;
  }

  /// Removes every row, keeping the allocated capacity and the
  /// cells_computed() accumulator. Lets one table serve many independent
  /// traversals (scan starts, parallel branch tasks) without re-allocating
  /// or losing the cost accounting.
  void Reset() {
    cells_.clear();
    row_mins_.clear();
    num_rows_ = 0;
  }

  /// Number of data rows currently in the table.
  std::size_t NumRows() const { return num_rows_; }

  bool Empty() const { return num_rows_ == 0; }

  /// D_tw(Q, data-prefix) after the last pushed row. Requires NumRows() > 0.
  Value LastColumn() const {
    TSW_DCHECK(num_rows_ > 0);
    return cells_.back();
  }

  /// Minimum column value of the last pushed row (Theorem 1 pruning test).
  /// O(1): recorded while the row was computed. Requires NumRows() > 0.
  Value RowMin() const {
    TSW_DCHECK(num_rows_ > 0);
    return row_mins_.back();
  }

  /// Number of table cells computed since construction (cost accounting for
  /// the R_d analysis and the bench counters). Out-of-band +infinity fills
  /// are not counted, matching the paper's cell-count model.
  std::uint64_t cells_computed() const { return cells_computed_; }

  std::span<const Value> query() const { return query_; }
  std::size_t query_length() const { return query_len_; }
  Pos band() const { return band_; }

 private:
  // Column 0 is a sentinel: 0 in the virtual row -1 position handling, +inf
  // elsewhere, which realizes the standard DTW boundary conditions.
  std::size_t Width() const { return query_len_ + 1; }

  const Value* RowPtr(std::size_t row) const {
    return cells_.data() + row * Width();
  }
  Value* MutableRowPtr(std::size_t row) {
    return cells_.data() + row * Width();
  }

  void ReserveDepth(std::size_t depth_hint) {
    if (depth_hint == 0) depth_hint = 1;
    cells_.reserve(Width() * depth_hint);
    row_mins_.reserve(depth_hint);
    scratch_.resize(query_len_);
  }

  /// One row being pushed: its storage, the previous row (nullptr for row
  /// 0), and the in-band column range [lo, hi).
  struct RowFrame {
    Value* row;
    const Value* prev;
    std::size_t lo;
    std::size_t hi;
  };

  /// In-band column range [lo, hi) of row `y`: columns x with 0-based query
  /// index xi = x - 1 satisfying |xi - y| <= band. Empty ranges (a row
  /// entirely below the band) come back as {1, 1}, so the +infinity fill
  /// covers the whole row.
  RowFrame BeginRow() {
    const std::size_t w = Width();
    cells_.resize(cells_.size() + w);
    Value* row = MutableRowPtr(num_rows_);
    const Value* prev = num_rows_ > 0 ? RowPtr(num_rows_ - 1) : nullptr;
    row[0] = kInfinity;
    std::size_t lo = 1;
    std::size_t hi = w;
    if (band_ != 0) {
      const std::size_t y = num_rows_;
      const std::size_t lo_xi = y > band_ ? y - band_ : 0;
      const std::size_t hi_xi = query_len_ - 1 < y + band_
                                    ? query_len_ - 1
                                    : y + band_;  // inclusive
      if (lo_xi > hi_xi) {
        lo = hi = 1;  // Row lies entirely outside the band.
      } else {
        lo = lo_xi + 1;
        hi = hi_xi + 2;
      }
      for (std::size_t x = 1; x < lo; ++x) row[x] = kInfinity;
      for (std::size_t x = hi; x < w; ++x) row[x] = kInfinity;
    }
    return {row, prev, lo, hi};
  }

  void FinishRow(Value row_min, std::size_t n) {
    row_mins_.push_back(row_min);
    cells_computed_ += n;
    ++num_rows_;
  }

  /// Computes the in-band cells of a row y >= 1. Scan blocks are anchored
  /// to the absolute query index: if x_lo does not start on a kRowBlock
  /// boundary (only possible under a band), the first block is evaluated
  /// by the canonical padded block-scan (leading out-of-band lanes masked
  /// to +infinity path minima), and the kernel gets the aligned remainder
  /// — the kernel itself pads any trailing partial block the same way.
  /// `base_at_x(x)` is the base distance of column x; `kernel(start, n,
  /// left)` runs the dispatched row step over columns [start, start + n)
  /// and returns their minimum.
  template <typename BaseAtX, typename KernelFn>
  Value ComputeRow(const RowFrame& f, BaseAtX base_at_x, KernelFn kernel) {
    Value rmin = kInfinity;
    Value left = kInfinity;  // row[x_lo - 1] is a sentinel or band fill.
    std::size_t start = f.lo;
    const std::size_t phase = (f.lo - 1) % simd::kRowBlock;
    if (phase != 0) {
      const std::size_t x0 = f.lo - phase;  // Block-aligned column.
      const std::size_t m = f.hi - f.lo < simd::kRowBlock - phase
                                ? f.hi - f.lo
                                : simd::kRowBlock - phase;
      left = simd::internal::PaddedScanBlock(
          [&](std::size_t k) { return base_at_x(x0 + k); }, f.prev + x0,
          f.row + x0, phase, m, left, &rmin);
      start = f.lo + m;
    }
    if (start < f.hi) {
      const Value kernel_min = kernel(start, f.hi - start, left);
      rmin = rmin < kernel_min ? rmin : kernel_min;
    }
    return rmin;
  }

  /// Row 0: gamma(x, 1) = base(x - 1) + gamma(x - 1, 1); the entry cell
  /// x == 1 uses 0 (diagonal entry (0,0)->(1,1) exists only on row 0). A
  /// sequential prefix sum — one canonical order, identical on every
  /// backend; rows are pushed far more often than tables are started, so
  /// this is not worth vectorizing. With a band, row 0's range always
  /// starts at x == 1.
  template <typename BaseFn>
  Value Row0PrefixSum(BaseFn base, const RowFrame& f) {
    Value left = 0.0;
    Value rmin = kInfinity;
    for (std::size_t x = f.lo; x < f.hi; ++x) {
      left = base(x - 1) + left;
      f.row[x] = left;
      rmin = rmin < left ? rmin : left;
    }
    return rmin;
  }

  std::span<const Value> query_;
  std::size_t query_len_;
  Pos band_;
  // Dispatch is resolved once per table: the active backend cannot change
  // mid-build (SetBackend is documented as switch-between-searches only),
  // and hoisting the lookup keeps it off the per-push hot path.
  const simd::KernelTable* kernels_ = &simd::Kernels();
  simd::AlignedVector cells_;
  std::vector<Value> row_mins_;
  simd::AlignedVector scratch_;
  std::size_t num_rows_ = 0;
  std::uint64_t cells_computed_ = 0;
};

}  // namespace tswarp::dtw

#endif  // TSWARP_DTW_WARPING_TABLE_H_
