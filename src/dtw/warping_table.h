#ifndef TSWARP_DTW_WARPING_TABLE_H_
#define TSWARP_DTW_WARPING_TABLE_H_

#include <cstddef>
#include <span>
#include <vector>

#include "common/logging.h"
#include "common/types.h"
#include "dtw/base.h"

namespace tswarp::dtw {

/// Incremental cumulative time-warping distance table (paper Definition 2).
///
/// The query Q is fixed along the columns (x axis); data elements are
/// appended as rows (y axis). After pushing row y:
///   * LastColumn() is D_tw(Q, data[1:y])  — the distance between Q and the
///     data prefix of length y (paper Section 3: "by reading the last column
///     of each row ... we get the distance between S_i and any prefix");
///   * RowMin() is the minimum over all columns of row y. By Theorem 1, if
///     RowMin() > epsilon, no extension of the data prefix can bring the
///     distance back to <= epsilon, so the branch can be pruned.
///
/// Rows can be popped, which makes the table usable as a DFS stack over a
/// suffix tree: all suffixes sharing a prefix share the prefix's rows
/// (the R_d table-sharing factor of Section 4.3).
///
/// Rows may be pushed either from exact numeric values (PushRowValue, the
/// D_tw recurrence) or from category intervals (PushRowInterval, the
/// D_tw-lb recurrence of Definition 3). Mixing both in one table is legal:
/// each row's base distance is independent of the others'.
///
/// An optional Sakoe-Chiba band constrains |x - y| <= band; cells outside
/// the band are +infinity. Used by the length-bounded index extension.
class WarpingTable {
 public:
  /// Creates an empty table for query `query`. The span must stay valid for
  /// the lifetime of the table. `band = 0` means unconstrained warping.
  explicit WarpingTable(std::span<const Value> query, Pos band = 0)
      : query_(query), query_len_(query.size()), band_(band) {
    TSW_CHECK(!query.empty()) << "query must be non-null (paper Def. 1)";
    // Reserve a plausible DFS depth to avoid rehash churn.
    cells_.reserve((query_len_ + 1) * 64);
  }

  /// Length-only constructor for callers that push rows with PushRowCustom
  /// (e.g. the multivariate extension, where elements are vectors and the
  /// base distances cannot be derived from a Value span). PushRowValue /
  /// PushRowInterval are illegal on such a table.
  explicit WarpingTable(std::size_t query_length, Pos band)
      : query_len_(query_length), band_(band) {
    TSW_CHECK(query_length > 0);
    cells_.reserve((query_len_ + 1) * 64);
  }

  WarpingTable(const WarpingTable&) = delete;
  WarpingTable& operator=(const WarpingTable&) = delete;

  /// Appends the exact-D_tw row for data element `v`.
  void PushRowValue(Value v) {
    TSW_DCHECK(!query_.empty());
    PushRow([this, v](std::size_t x) {
      return BaseDistance(query_[x], v);
    });
  }

  /// Appends the D_tw-lb row for a category interval [lb, ub].
  void PushRowInterval(Value lb, Value ub) {
    TSW_DCHECK(!query_.empty());
    PushRow([this, lb, ub](std::size_t x) {
      return BaseDistanceLb(query_[x], lb, ub);
    });
  }

  /// Appends a row with caller-supplied base distances: `base(x)` must
  /// return D_base(Q[x+1], element) for query index x (0-based).
  template <typename BaseFn>
  void PushRowCustom(BaseFn base) {
    PushRow(base);
  }

  /// Removes the most recently pushed row.
  void PopRow() {
    TSW_DCHECK(num_rows_ > 0);
    cells_.resize(cells_.size() - Width());
    --num_rows_;
  }

  /// Removes the `n` most recently pushed rows.
  void PopRows(std::size_t n) {
    TSW_DCHECK(n <= num_rows_);
    cells_.resize(cells_.size() - n * Width());
    num_rows_ -= n;
  }

  /// Removes every row, keeping the allocated capacity and the
  /// cells_computed() accumulator. Lets one table serve many independent
  /// traversals (scan starts, parallel branch tasks) without re-allocating
  /// or losing the cost accounting.
  void Reset() {
    cells_.clear();
    num_rows_ = 0;
  }

  /// Number of data rows currently in the table.
  std::size_t NumRows() const { return num_rows_; }

  bool Empty() const { return num_rows_ == 0; }

  /// D_tw(Q, data-prefix) after the last pushed row. Requires NumRows() > 0.
  Value LastColumn() const {
    TSW_DCHECK(num_rows_ > 0);
    return cells_.back();
  }

  /// Minimum column value of the last pushed row (Theorem 1 pruning test).
  /// Requires NumRows() > 0.
  Value RowMin() const {
    TSW_DCHECK(num_rows_ > 0);
    const Value* row = RowPtr(num_rows_ - 1);
    Value m = kInfinity;
    for (std::size_t x = 1; x < Width(); ++x) m = std::min(m, row[x]);
    return m;
  }

  /// Number of table cells computed since construction (cost accounting for
  /// the R_d analysis and the bench counters).
  std::uint64_t cells_computed() const { return cells_computed_; }

  std::span<const Value> query() const { return query_; }
  std::size_t query_length() const { return query_len_; }
  Pos band() const { return band_; }

 private:
  // Column 0 is a sentinel: 0 in the virtual row -1 position handling, +inf
  // elsewhere, which realizes the standard DTW boundary conditions.
  std::size_t Width() const { return query_len_ + 1; }

  const Value* RowPtr(std::size_t row) const {
    return cells_.data() + row * Width();
  }
  Value* MutableRowPtr(std::size_t row) {
    return cells_.data() + row * Width();
  }

  template <typename BaseFn>
  void PushRow(BaseFn base) {
    const std::size_t w = Width();
    cells_.resize(cells_.size() + w);
    Value* row = MutableRowPtr(num_rows_);
    const Value* prev = num_rows_ > 0 ? RowPtr(num_rows_ - 1) : nullptr;
    // Sentinel column: enables diagonal entry (0,0)->(1,1) only on row 0.
    row[0] = kInfinity;
    const std::size_t y = num_rows_;  // 0-based data index of this row.
    for (std::size_t x = 1; x < w; ++x) {
      if (band_ != 0) {
        const std::size_t xi = x - 1;  // 0-based query index.
        const std::size_t diff = xi > y ? xi - y : y - xi;
        if (diff > band_) {
          row[x] = kInfinity;
          continue;
        }
      }
      Value best;
      if (prev == nullptr) {
        // Row 0: gamma(x, 1) = base + gamma(x-1, 1); entry cell uses 0.
        best = (x == 1) ? 0.0 : row[x - 1];
      } else {
        best = std::min(row[x - 1], std::min(prev[x], prev[x - 1]));
      }
      row[x] = base(x - 1) + best;
      ++cells_computed_;
    }
    ++num_rows_;
  }

  std::span<const Value> query_;
  std::size_t query_len_;
  Pos band_;
  std::vector<Value> cells_;
  std::size_t num_rows_ = 0;
  std::uint64_t cells_computed_ = 0;
};

}  // namespace tswarp::dtw

#endif  // TSWARP_DTW_WARPING_TABLE_H_
