#ifndef TSWARP_DTW_SIMD_H_
#define TSWARP_DTW_SIMD_H_

#include <cstddef>
#include <cstdlib>
#include <new>
#include <string>
#include <string_view>
#include <vector>

#include "common/types.h"

namespace tswarp::dtw::simd {

/// SIMD kernel layer for the DTW row step and the envelope lower bounds.
///
/// Every kernel below is defined by ONE canonical dataflow — a fixed
/// association of additions, a fixed early-abandon granularity, and
/// vector-semantics min/max — and every backend (scalar, SSE2, AVX2, NEON)
/// implements that dataflow exactly. Two consequences:
///
///   * results are bitwise identical across backends, so match sets,
///     distances, and stats do not depend on the machine the search ran on
///     (differential_test enforces this);
///   * the scalar backend is not a "reference with different rounding" but
///     the same algorithm executed one lane at a time.
///
/// The canonical row step is a block-scan decomposition of the Definition-2
/// recurrence (see docs/algorithms.md): blocks of kRowBlock cells are
/// rewritten as a prefix sum of the base distances plus a running min-scan,
/// which breaks the per-cell serial min+add dependency chain; a partial
/// block (a sub-block tail, or a banded row starting mid-block) runs the
/// same block dataflow with padded lanes (simd_internal.h's
/// PaddedScanBlock), so a cell's rounding depends only on its absolute
/// column — which keeps banded distances exactly monotone in the band
/// width. Canonical sums
/// (kernels that accumulate, e.g. LB_Keogh) use four interleaved stripes —
/// stripe l accumulates elements with index = l (mod 4) — combined as
/// (s0 + s1) + (s2 + s3), with any sub-multiple-of-4 tail added in order.
/// Early abandon tests fire only at kLbBlock element boundaries.

/// Cells per row-step scan block. Part of the canonical dataflow: changing
/// it changes results (at ULP level), so it is a constant, not a tunable.
inline constexpr std::size_t kRowBlock = 8;

/// Elements between early-abandon checks in the accumulating kernels.
inline constexpr std::size_t kLbBlock = 64;

/// Alignment (bytes) of AlignedVector storage; covers AVX-512 and every
/// cache line on current targets.
inline constexpr std::size_t kAlignment = 64;

/// Minimal aligned allocator so scratch rows and envelope buffers start on
/// a kAlignment boundary. Kernels use unaligned loads (table rows live at
/// arbitrary offsets inside the DFS cell stack), so alignment is a
/// performance guarantee for the buffers we control, not a correctness
/// requirement.
///
/// construct() without arguments default-initializes instead of
/// value-initializing, so vector::resize() does NOT zero-fill new
/// elements. Every AlignedVector user overwrites grown cells before
/// reading them (table rows are written by the row-step kernel, envelope
/// and scratch buffers by their fill passes); skipping the zero-fill
/// matters on the hot push path, where a resize precedes every row.
template <typename T>
struct AlignedAllocator {
  using value_type = T;
  AlignedAllocator() = default;
  template <typename U>
  AlignedAllocator(const AlignedAllocator<U>&) {}
  T* allocate(std::size_t n) {
    return static_cast<T*>(
        ::operator new(n * sizeof(T), std::align_val_t(kAlignment)));
  }
  void deallocate(T* p, std::size_t) {
    ::operator delete(p, std::align_val_t(kAlignment));
  }
  template <typename U>
  void construct(U* p) noexcept {
    ::new (static_cast<void*>(p)) U;
  }
  template <typename U, typename... Args>
  void construct(U* p, Args&&... args) {
    ::new (static_cast<void*>(p)) U(static_cast<Args&&>(args)...);
  }
  template <typename U>
  bool operator==(const AlignedAllocator<U>&) const {
    return true;
  }
};

using AlignedVector = std::vector<Value, AlignedAllocator<Value>>;

/// Runtime-dispatched kernel set. All row-step kernels compute the n cells
/// row[0..n) of one table row restricted to its in-band range:
///
///   row[i] = base(i) + min(row[i-1], prev[i], prev[i-1])
///
/// where row[-1] is the carry-in `left` and prev[-1] must be readable
/// (callers pass pointers offset so it is the previous row's cell just
/// left of the range). They return the minimum over the computed cells
/// (exact regardless of reduction order), which WarpingTable records for
/// O(1) RowMin().
struct KernelTable {
  const char* name;

  /// Exact rows: base(i) = |q[i] - v| (paper Definition 1).
  Value (*row_step_value)(const Value* q, Value v, const Value* prev,
                          Value* row, std::size_t n, Value left);
  /// Interval rows: base(i) = D_base-lb(q[i], [lb, ub]) (Definition 3).
  Value (*row_step_interval)(const Value* q, Value lb, Value ub,
                             const Value* prev, Value* row, std::size_t n,
                             Value left);
  /// Caller-precomputed base distances (the generic PushRowCustom path).
  Value (*row_step_base)(const Value* base, const Value* prev, Value* row,
                         std::size_t n, Value left);

  /// out[i] = |q[i] - v|.
  void (*base_distance_row)(const Value* q, Value v, Value* out,
                            std::size_t n);
  /// out[i] = D_base-lb(q[i], [lb, ub]).
  void (*interval_distance_row)(const Value* q, Value lb, Value ub,
                                Value* out, std::size_t n);
  /// out[i] = min(prev[i], prev[i-1]); prev[-1] must be readable.
  void (*min_pair_row)(const Value* prev, Value* out, std::size_t n);
  /// Minimum of row[0..n); +infinity when n == 0.
  Value (*row_min)(const Value* row, std::size_t n);

  /// LB_Keogh accumulation: sum of D_base-lb(v[i], [lo[i], up[i]]) with
  /// canonical striped summation; abandons once a kLbBlock-boundary
  /// partial sum exceeds `cap` (the partial is still a lower bound).
  Value (*lb_keogh)(const Value* v, const Value* lo, const Value* up,
                    std::size_t n, Value cap);
  /// Same with a constant envelope (the unconstrained-warping case).
  Value (*lb_keogh_const)(const Value* v, Value lo, Value up, std::size_t n,
                          Value cap);
  /// LB_Improved pass 1: accumulates like lb_keogh but also writes the
  /// projection proj[i] = clamp(v[i], lo[i], up[i]). No early abandon —
  /// the projection must be complete for pass 2.
  Value (*lb_improved_pass1)(const Value* v, const Value* lo,
                             const Value* up, Value* proj, std::size_t n);
  Value (*lb_improved_pass1_const)(const Value* v, Value lo, Value up,
                                   Value* proj, std::size_t n);

  /// dst[i] = src[i * stride]: one dimension of an interleaved
  /// multivariate candidate (multivariate envelope cascade).
  void (*strided_gather)(const Value* src, std::size_t stride, Value* dst,
                         std::size_t n);

  /// Sliding-window extrema for banded envelopes: lower[j] / upper[j] =
  /// min / max of seq[max(0, j-band) .. min(n-1, j+band)] for j in
  /// [0, n + band). Canonical dataflow is the branch-free sparse-table
  /// doubling of simd_internal.h's BandedExtremaGeneric (exact two-operand
  /// min/max only, so envelopes are bitwise identical across backends).
  /// `work` is caller scratch of at least 2 * (n + 3*band) values (one
  /// padded copy per extremum side). Requires band >= 1 and n >= 1.
  void (*banded_extrema)(const Value* seq, std::size_t n, std::size_t band,
                         Value* lower, Value* upper, Value* work);

  /// Node-summary lower bound: sum_i min_k IntervalDist(q[i], lo[k], hi[k])
  /// over `num_intervals` value hulls (the search driver passes at most
  /// 6: prefix hull + subtree hull + up to 4 label-envelope segments).
  /// Canonical dataflow is StripedSum over the per-element interval-min
  /// (k ascending, MinPd semantics), so results are bitwise identical
  /// across backends; early-abandons past `cap` at kLbBlock boundaries
  /// (a partial sum is still a lower bound). Requires num_intervals >= 1.
  Value (*summary_lb)(const Value* q, const Value* lo, const Value* hi,
                      std::size_t num_intervals, std::size_t n, Value cap);
};

/// The active kernel table. First use resolves the backend: an explicit
/// SetBackend() call wins, else the TSWARP_SIMD environment variable
/// (avx2|sse2|neon|scalar), else the best backend the CPU supports
/// (dispatch order avx2 > sse2 > neon > scalar).
const KernelTable& Kernels();

/// Selects a backend by name ("avx2", "sse2", "neon", "scalar", or "auto"
/// for best-available). Returns false — leaving the active backend
/// unchanged — when the name is unknown or the CPU lacks the instruction
/// set. Not thread-safe against concurrent kernel use; switch backends
/// only between searches (CLI startup, test setup).
bool SetBackend(std::string_view name);

/// Name of the active backend ("avx2", "sse2", "neon", or "scalar").
const char* ActiveBackend();

/// Backends usable on this machine, best first; always ends with "scalar".
std::vector<std::string> AvailableBackends();

}  // namespace tswarp::dtw::simd

#endif  // TSWARP_DTW_SIMD_H_
