// SSE2 backend: the canonical 4-lane groups are emulated as pairs of
// __m128d (lo = lanes 0-1, hi = lanes 2-3). Every shuffle below produces
// the same lane motion as the AVX2 backend's permutes, and minpd/maxpd
// have the same second-operand-on-equality rule as AVX2 and the scalar
// MinPd/MaxPd, so all three agree bitwise. SSE2 is baseline on x86-64;
// simd.cc still checks __builtin_cpu_supports("sse2") before install.

#include "dtw/simd_internal.h"

#if defined(__SSE2__) || (defined(_M_X64) && !defined(__clang__))

#include <emmintrin.h>

namespace tswarp::dtw::simd {
namespace {

namespace in = internal;

/// One canonical 4-lane group.
struct V4 {
  __m128d lo;  // lanes 0, 1
  __m128d hi;  // lanes 2, 3
};

inline V4 Set1(Value v) {
  const __m128d x = _mm_set1_pd(v);
  return {x, x};
}
inline V4 Load(const Value* p) { return {_mm_loadu_pd(p), _mm_loadu_pd(p + 2)}; }
inline void Store(Value* p, V4 x) {
  _mm_storeu_pd(p, x.lo);
  _mm_storeu_pd(p + 2, x.hi);
}
inline V4 Add(V4 a, V4 b) {
  return {_mm_add_pd(a.lo, b.lo), _mm_add_pd(a.hi, b.hi)};
}
inline V4 Sub(V4 a, V4 b) {
  return {_mm_sub_pd(a.lo, b.lo), _mm_sub_pd(a.hi, b.hi)};
}
inline V4 Min(V4 a, V4 b) {
  return {_mm_min_pd(a.lo, b.lo), _mm_min_pd(a.hi, b.hi)};
}
inline V4 Max(V4 a, V4 b) {
  return {_mm_max_pd(a.lo, b.lo), _mm_max_pd(a.hi, b.hi)};
}
inline V4 Abs(V4 x) {
  const __m128d mask = _mm_set1_pd(-0.0);
  return {_mm_andnot_pd(mask, x.lo), _mm_andnot_pd(mask, x.hi)};
}

/// Lanes shifted up by one: {fill[0], x[0], x[1], x[2]}.
inline V4 ShiftUp1(V4 x, V4 fill) {
  return {_mm_shuffle_pd(fill.lo, x.lo, 0x0),
          _mm_shuffle_pd(x.lo, x.hi, 0x1)};
}

/// Lanes shifted up by two: {fill[0], fill[1], x[0], x[1]}.
inline V4 ShiftUp2(V4 x, V4 fill) { return {fill.lo, x.lo}; }

/// Broadcast of lane 3.
inline V4 Lane3(V4 x) {
  const __m128d b = _mm_unpackhi_pd(x.hi, x.hi);
  return {b, b};
}

/// 4-lane inclusive +scan (canonical Scan4Add).
inline V4 Scan4Add(V4 b, V4 zero) {
  const V4 s1 = Add(b, ShiftUp1(b, zero));
  return Add(s1, ShiftUp2(s1, zero));
}

/// 4-lane inclusive min-scan (canonical Scan4Min; operand order u, shifted).
inline V4 Scan4Min(V4 u, V4 inf) {
  const V4 s1 = Min(u, ShiftUp1(u, inf));
  return Min(s1, ShiftUp2(s1, inf));
}

/// Exact min-reduce of 4 lanes.
inline Value ReduceMin(V4 x) {
  const __m128d m = _mm_min_pd(x.lo, x.hi);
  return in::MinPd(_mm_cvtsd_f64(m),
                   _mm_cvtsd_f64(_mm_unpackhi_pd(m, m)));
}

/// Canonical stripe combine: (s0 + s1) + (s2 + s3).
inline Value CombineStripes(V4 acc) {
  const __m128d s01 = _mm_add_sd(acc.lo, _mm_unpackhi_pd(acc.lo, acc.lo));
  const __m128d s23 = _mm_add_sd(acc.hi, _mm_unpackhi_pd(acc.hi, acc.hi));
  return _mm_cvtsd_f64(_mm_add_sd(s01, s23));
}

struct ValueBase {
  const Value* q;
  Value v;
  V4 vv;
  V4 Block(std::size_t i) const { return Abs(Sub(Load(q + i), vv)); }
  Value At(std::size_t i) const { return in::AbsDiff(q[i], v); }
};

struct IntervalBase {
  const Value* q;
  Value lb, ub;
  V4 vlb, vub, zero;
  V4 Block(std::size_t i) const {
    const V4 x = Load(q + i);
    return Max(Max(Sub(x, vub), Sub(vlb, x)), zero);
  }
  Value At(std::size_t i) const { return in::IntervalDist(q[i], lb, ub); }
};

struct ArrayBase {
  const Value* base;
  V4 Block(std::size_t i) const { return Load(base + i); }
  Value At(std::size_t i) const { return base[i]; }
};

/// The canonical row step (ScanBlock8 + PaddedScanBlock) on paired SSE2
/// vectors.
template <typename B>
Value RowStep(const B& b, const Value* prev, Value* row, std::size_t n,
              Value left) {
  const V4 inf = Set1(kInfinity);
  const V4 zero = Set1(0.0);
  V4 carry = Set1(left);
  V4 vmin = inf;
  std::size_t i = 0;
  for (; i + kRowBlock <= n; i += kRowBlock) {
    const V4 b0 = b.Block(i);
    const V4 b1 = b.Block(i + 4);
    const V4 mp0 = Min(Load(prev + i), Load(prev + i - 1));
    const V4 mp1 = Min(Load(prev + i + 4), Load(prev + i + 3));
    const V4 p0 = Scan4Add(b0, zero);
    const V4 p0_top = Lane3(p0);
    const V4 p1 = Add(Scan4Add(b1, zero), p0_top);
    const V4 u0 = Sub(mp0, ShiftUp1(p0, zero));
    const V4 u1 = Sub(mp1, ShiftUp1(p1, p0_top));
    const V4 m0 = Scan4Min(u0, inf);
    const V4 m1 = Min(Scan4Min(u1, inf), Lane3(m0));
    const V4 r0 = Add(p0, Min(carry, m0));
    const V4 r1 = Add(p1, Min(carry, m1));
    Store(row + i, r0);
    Store(row + i + 4, r1);
    vmin = Min(vmin, Min(r0, r1));
    carry = Lane3(r1);
  }
  Value row_min = ReduceMin(vmin);
  if (i < n) {
    in::PaddedScanBlock([&b, i](std::size_t k) { return b.At(i + k); },
                        prev + i, row + i, 0, n - i, _mm_cvtsd_f64(carry.lo),
                        &row_min);
  }
  return row_min;
}

Value RowStepValue(const Value* q, Value v, const Value* prev, Value* row,
                   std::size_t n, Value left) {
  return RowStep(ValueBase{q, v, Set1(v)}, prev, row, n, left);
}

Value RowStepInterval(const Value* q, Value lb, Value ub, const Value* prev,
                      Value* row, std::size_t n, Value left) {
  return RowStep(IntervalBase{q, lb, ub, Set1(lb), Set1(ub), Set1(0.0)},
                 prev, row, n, left);
}

Value RowStepBase(const Value* base, const Value* prev, Value* row,
                  std::size_t n, Value left) {
  return RowStep(ArrayBase{base}, prev, row, n, left);
}

void BaseDistanceRow(const Value* q, Value v, Value* out, std::size_t n) {
  const ValueBase b{q, v, Set1(v)};
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) Store(out + i, b.Block(i));
  for (; i < n; ++i) out[i] = b.At(i);
}

void IntervalDistanceRow(const Value* q, Value lb, Value ub, Value* out,
                         std::size_t n) {
  const IntervalBase b{q, lb, ub, Set1(lb), Set1(ub), Set1(0.0)};
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) Store(out + i, b.Block(i));
  for (; i < n; ++i) out[i] = b.At(i);
}

void MinPairRow(const Value* prev, Value* out, std::size_t n) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    Store(out + i, Min(Load(prev + i), Load(prev + i - 1)));
  }
  for (; i < n; ++i) out[i] = in::MinPd(prev[i], prev[i - 1]);
}

Value RowMin(const Value* row, std::size_t n) {
  V4 vmin = Set1(kInfinity);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) vmin = Min(vmin, Load(row + i));
  Value m = ReduceMin(vmin);
  for (; i < n; ++i) m = in::MinPd(m, row[i]);
  return m;
}

/// Canonical striped accumulation with vector stripes.
template <typename TermVec, typename TermAt>
Value Striped(std::size_t n, TermVec term_vec, TermAt term_at, Value cap) {
  V4 acc = Set1(0.0);
  const std::size_t n4 = n & ~std::size_t{3};
  std::size_t i = 0;
  for (; i < n4; i += 4) {
    acc = Add(acc, term_vec(i));
    if ((i + 4) % kLbBlock == 0) {
      const Value partial = CombineStripes(acc);
      if (partial > cap) return partial;
    }
  }
  Value sum = CombineStripes(acc);
  for (; i < n; ++i) sum += term_at(i);
  return sum;
}

Value LbKeogh(const Value* v, const Value* lo, const Value* up, std::size_t n,
              Value cap) {
  const V4 zero = Set1(0.0);
  return Striped(
      n,
      [&](std::size_t i) {
        const V4 x = Load(v + i);
        return Max(Max(Sub(x, Load(up + i)), Sub(Load(lo + i), x)), zero);
      },
      [&](std::size_t i) { return in::IntervalDist(v[i], lo[i], up[i]); },
      cap);
}

Value LbKeoghConst(const Value* v, Value lo, Value up, std::size_t n,
                   Value cap) {
  const IntervalBase b{v, lo, up, Set1(lo), Set1(up), Set1(0.0)};
  return Striped(
      n, [&](std::size_t i) { return b.Block(i); },
      [&](std::size_t i) { return b.At(i); }, cap);
}

Value LbImprovedPass1(const Value* v, const Value* lo, const Value* up,
                      Value* proj, std::size_t n) {
  const V4 zero = Set1(0.0);
  return Striped(
      n,
      [&](std::size_t i) {
        const V4 x = Load(v + i);
        const V4 l = Load(lo + i);
        const V4 u = Load(up + i);
        Store(proj + i, Min(Max(x, l), u));
        return Max(Max(Sub(x, u), Sub(l, x)), zero);
      },
      [&](std::size_t i) {
        proj[i] = in::MinPd(in::MaxPd(v[i], lo[i]), up[i]);
        return in::IntervalDist(v[i], lo[i], up[i]);
      },
      kInfinity);
}

Value LbImprovedPass1Const(const Value* v, Value lo, Value up, Value* proj,
                           std::size_t n) {
  const V4 vlo = Set1(lo);
  const V4 vup = Set1(up);
  const V4 zero = Set1(0.0);
  return Striped(
      n,
      [&](std::size_t i) {
        const V4 x = Load(v + i);
        Store(proj + i, Min(Max(x, vlo), vup));
        return Max(Max(Sub(x, vup), Sub(vlo, x)), zero);
      },
      [&](std::size_t i) {
        proj[i] = in::MinPd(in::MaxPd(v[i], lo), up);
        return in::IntervalDist(v[i], lo, up);
      },
      kInfinity);
}

void StridedGather(const Value* src, std::size_t stride, Value* dst,
                   std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) dst[i] = src[i * stride];
}

void BandedExtrema(const Value* seq, std::size_t n, std::size_t band,
                   Value* lower, Value* upper, Value* work) {
  // In-place with dst == src is safe in 2-wide chunks: both operands are
  // loaded before the same iteration's store, and later iterations only
  // read slots past every store so far (s >= 1, ascending j).
  in::BandedExtremaGeneric(
      seq, n, band, lower, upper, work,
      [](const Value* min_src, Value* min_dst, const Value* max_src,
         Value* max_dst, std::size_t count, std::size_t s) {
        std::size_t j = 0;
        for (; j + 2 <= count; j += 2) {
          _mm_storeu_pd(min_dst + j, _mm_min_pd(_mm_loadu_pd(min_src + j),
                                                _mm_loadu_pd(min_src + j + s)));
          _mm_storeu_pd(max_dst + j, _mm_max_pd(_mm_loadu_pd(max_src + j),
                                                _mm_loadu_pd(max_src + j + s)));
        }
        for (; j < count; ++j) {
          min_dst[j] = in::MinPd(min_src[j], min_src[j + s]);
          max_dst[j] = in::MaxPd(max_src[j], max_src[j + s]);
        }
      });
}

Value SummaryLb(const Value* q, const Value* lo, const Value* hi,
                std::size_t num_intervals, std::size_t n, Value cap) {
  const V4 zero = Set1(0.0);
  return Striped(
      n,
      [&](std::size_t i) {
        const V4 x = Load(q + i);
        V4 d = Max(Max(Sub(x, Set1(hi[0])), Sub(Set1(lo[0]), x)), zero);
        for (std::size_t k = 1; k < num_intervals; ++k) {
          const V4 dk =
              Max(Max(Sub(x, Set1(hi[k])), Sub(Set1(lo[k]), x)), zero);
          d = Min(d, dk);
        }
        return d;
      },
      [&](std::size_t i) {
        Value d = in::IntervalDist(q[i], lo[0], hi[0]);
        for (std::size_t k = 1; k < num_intervals; ++k) {
          d = in::MinPd(d, in::IntervalDist(q[i], lo[k], hi[k]));
        }
        return d;
      },
      cap);
}

constexpr KernelTable kTable = {
    "sse2",
    RowStepValue,
    RowStepInterval,
    RowStepBase,
    BaseDistanceRow,
    IntervalDistanceRow,
    MinPairRow,
    RowMin,
    LbKeogh,
    LbKeoghConst,
    LbImprovedPass1,
    LbImprovedPass1Const,
    StridedGather,
    BandedExtrema,
    SummaryLb,
};

}  // namespace

const KernelTable* Sse2Kernels() { return &kTable; }

}  // namespace tswarp::dtw::simd

#else  // no SSE2 at compile time

namespace tswarp::dtw::simd {
const KernelTable* Sse2Kernels() { return nullptr; }
}  // namespace tswarp::dtw::simd

#endif
