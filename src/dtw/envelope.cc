#include "dtw/envelope.h"

#include <algorithm>
#include <deque>

#include "common/logging.h"
#include "dtw/base.h"
#include "dtw/warping_table.h"

namespace tswarp::dtw {
namespace {

/// Streaming sliding-window min/max (Lemire's monotonic-deque algorithm):
/// for every data offset j in [0, n + band) computes the extrema of
/// seq[max(0, j-band) .. min(n-1, j+band)] in O(n) total. The deques hold
/// indices of a decreasing (max) / increasing (min) subsequence; each index
/// enters and leaves each deque at most once.
void BandedExtrema(std::span<const Value> seq, Pos band,
                   std::vector<Value>* lower, std::vector<Value>* upper) {
  const std::size_t n = seq.size();
  const std::size_t reach = n + band;
  lower->resize(reach);
  upper->resize(reach);
  std::deque<std::size_t> min_dq;
  std::deque<std::size_t> max_dq;
  std::size_t next = 0;  // First element not yet admitted to the window.
  for (std::size_t j = 0; j < reach; ++j) {
    const std::size_t hi = std::min(j + band, n - 1);  // Window right edge.
    while (next <= hi) {
      while (!min_dq.empty() && seq[min_dq.back()] >= seq[next]) {
        min_dq.pop_back();
      }
      min_dq.push_back(next);
      while (!max_dq.empty() && seq[max_dq.back()] <= seq[next]) {
        max_dq.pop_back();
      }
      max_dq.push_back(next);
      ++next;
    }
    if (j > band) {  // Window left edge is j - band.
      const std::size_t lo = j - band;
      while (min_dq.front() < lo) min_dq.pop_front();
      while (max_dq.front() < lo) max_dq.pop_front();
    }
    (*lower)[j] = seq[min_dq.front()];
    (*upper)[j] = seq[max_dq.front()];
  }
}

}  // namespace

QueryEnvelope::QueryEnvelope(std::span<const Value> query, Pos band)
    : band_(band) {
  TSW_CHECK(!query.empty()) << "envelope of an empty query";
  if (band == 0) {
    // Unconstrained warping: one global interval covers every offset.
    const auto [lo, hi] = std::minmax_element(query.begin(), query.end());
    lower_.assign(1, *lo);
    upper_.assign(1, *hi);
    reach_ = kNoReachLimit;
  } else {
    BandedExtrema(query, band, &lower_, &upper_);
    reach_ = lower_.size();
  }
}

Value LbKeogh(const QueryEnvelope& env, std::span<const Value> candidate,
              Value abandon_above) {
  Value sum = 0.0;
  for (std::size_t j = 0; j < candidate.size(); ++j) {
    sum += env.ElementLb(j, candidate[j]);
    if (sum > abandon_above) return sum;
  }
  return sum;
}

Value LbImproved(const QueryEnvelope& env, std::span<const Value> query,
                 std::span<const Value> candidate, Value abandon_above,
                 EnvelopeScratch* scratch) {
  TSW_DCHECK(scratch != nullptr);
  const std::size_t len = candidate.size();
  // Pass 1: LB_Keogh, recording the projection h(S) (no early abandon here
  // so the projection is complete; the per-element work is the same).
  std::vector<Value>& h = scratch->projection;
  h.resize(len);
  Value sum = 0.0;
  for (std::size_t j = 0; j < len; ++j) {
    const Value v = candidate[j];
    const Value e = env.ElementLb(j, v);
    if (e == kInfinity) return kInfinity;  // Beyond banded reach.
    sum += e;
    // h_j = clamp(v, lower[j], upper[j]): e > 0 means v sits outside the
    // envelope and projects onto the violated edge.
    h[j] = e == 0.0 ? v : (v > env.UpperAt(j) ? env.UpperAt(j)
                                              : env.LowerAt(j));
  }
  if (sum > abandon_above) return sum;

  // Pass 2: each query element must align with some h-reachable data
  // element, so its distance to the envelope of h(S) adds to the bound
  // (the two terms count disjoint path-cost shares).
  if (env.unconstrained()) {
    const auto [lo, hi] = std::minmax_element(h.begin(), h.end());
    for (std::size_t i = 0; i < query.size(); ++i) {
      sum += BaseDistanceLb(query[i], *lo, *hi);
      if (sum > abandon_above) return sum;
    }
    return sum;
  }
  BandedExtrema(h, env.band(), &scratch->proj_lower, &scratch->proj_upper);
  const std::size_t proj_reach = scratch->proj_lower.size();
  for (std::size_t i = 0; i < query.size(); ++i) {
    // Query index i reaches data offsets [i - band, i + band]; beyond the
    // projection's reach no legal banded path exists at all.
    if (i >= proj_reach) return kInfinity;
    sum += BaseDistanceLb(query[i], scratch->proj_lower[i],
                          scratch->proj_upper[i]);
    if (sum > abandon_above) return sum;
  }
  return sum;
}

bool DtwWithinThresholdLb(std::span<const Value> query,
                          std::span<const Value> candidate,
                          const QueryEnvelope& env, Value epsilon,
                          Value* distance, EnvelopeScratch* scratch) {
  TSW_CHECK(!query.empty() && !candidate.empty());
  TSW_DCHECK(scratch != nullptr);
  const std::size_t len = candidate.size();
  // suffix_lb[y] bounds the cost the path must still pay for rows y..len-1.
  std::vector<Value>& suffix_lb = scratch->suffix_lb;
  suffix_lb.resize(len + 1);
  suffix_lb[len] = 0.0;
  for (std::size_t y = len; y-- > 0;) {
    suffix_lb[y] = suffix_lb[y + 1] + env.ElementLb(y, candidate[y]);
  }
  if (suffix_lb[0] > epsilon) return false;  // LB_Keogh re-check; free here.

  WarpingTable table(query, env.band());
  for (std::size_t y = 0; y < len; ++y) {
    table.PushRowValue(candidate[y]);
    // Every completion extends some partial path through row y+1 (cost
    // >= RowMin) and still pays at least the envelope bound of each
    // remaining row; Theorem 1 is the suffix_lb == 0 special case.
    if (table.RowMin() + suffix_lb[y + 1] > epsilon) return false;
  }
  const Value d = table.LastColumn();
  if (d > epsilon) return false;
  *distance = d;
  return true;
}

}  // namespace tswarp::dtw
