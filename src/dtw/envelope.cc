#include "dtw/envelope.h"

#include <algorithm>

#include "common/logging.h"
#include "dtw/base.h"
#include "dtw/simd.h"
#include "dtw/warping_table.h"

namespace tswarp::dtw {
namespace {

/// Banded sliding-window extrema through the dispatched kernel: for every
/// data offset j in [0, n + band) computes the extrema of
/// seq[max(0, j-band) .. min(n-1, j+band)]. The kernel's branch-free
/// doubling scheme replaced the monotonic-deque pass here: it uses only
/// two-operand min/max, so it vectorizes and stays bitwise identical
/// across backends, and the reused `work` scratch (2 * (n + 3*band)
/// values) keeps the banded LB_Improved hot path allocation-free.
/// Requires band >= 1 (band == 0 takes the unconstrained path) and
/// non-empty seq.
void BandedExtrema(std::span<const Value> seq, Pos band,
                   simd::AlignedVector* lower, simd::AlignedVector* upper,
                   simd::AlignedVector* work) {
  const std::size_t n = seq.size();
  lower->resize(n + band);
  upper->resize(n + band);
  work->resize(2 * (n + 3 * static_cast<std::size_t>(band)));
  simd::Kernels().banded_extrema(seq.data(), n, band, lower->data(),
                                 upper->data(), work->data());
}

}  // namespace

QueryEnvelope::QueryEnvelope(std::span<const Value> query, Pos band)
    : band_(band) {
  TSW_CHECK(!query.empty()) << "envelope of an empty query";
  if (band == 0) {
    // Unconstrained warping: one global interval covers every offset.
    const auto [lo, hi] = std::minmax_element(query.begin(), query.end());
    lower_.assign(1, *lo);
    upper_.assign(1, *hi);
    reach_ = kNoReachLimit;
  } else {
    simd::AlignedVector work;  // Once per query: a local is fine.
    BandedExtrema(query, band, &lower_, &upper_, &work);
    reach_ = lower_.size();
  }
}

Value LbKeogh(const QueryEnvelope& env, std::span<const Value> candidate,
              Value abandon_above) {
  const std::size_t len = candidate.size();
  // Beyond the banded reach some element admits no legal path at all.
  if (len > env.reach()) return kInfinity;
  const simd::KernelTable& k = simd::Kernels();
  if (env.unconstrained()) {
    return k.lb_keogh_const(candidate.data(), env.LowerAt(0), env.UpperAt(0),
                            len, abandon_above);
  }
  return k.lb_keogh(candidate.data(), env.lower().data(), env.upper().data(),
                    len, abandon_above);
}

Value LbImproved(const QueryEnvelope& env, std::span<const Value> query,
                 std::span<const Value> candidate, Value abandon_above,
                 EnvelopeScratch* scratch) {
  TSW_DCHECK(scratch != nullptr);
  const std::size_t len = candidate.size();
  if (len > env.reach()) return kInfinity;  // Beyond banded reach.
  const simd::KernelTable& k = simd::Kernels();
  // Pass 1: LB_Keogh, recording the projection h(S) = clamp(S, envelope)
  // (no early abandon here so the projection is complete; the per-element
  // work is the same).
  simd::AlignedVector& h = scratch->projection;
  h.resize(len);
  Value sum =
      env.unconstrained()
          ? k.lb_improved_pass1_const(candidate.data(), env.LowerAt(0),
                                      env.UpperAt(0), h.data(), len)
          : k.lb_improved_pass1(candidate.data(), env.lower().data(),
                                env.upper().data(), h.data(), len);
  if (sum > abandon_above) return sum;

  // Pass 2: each query element must align with some h-reachable data
  // element, so its distance to the envelope of h(S) adds to the bound
  // (the two terms count disjoint path-cost shares). The kernel's abandon
  // cap is the remaining budget; the returned partial is added back onto
  // pass 1's sum, which keeps the result a valid lower bound either way.
  if (env.unconstrained()) {
    const auto [lo, hi] = std::minmax_element(h.begin(), h.end());
    return sum + k.lb_keogh_const(query.data(), *lo, *hi, query.size(),
                                  abandon_above - sum);
  }
  BandedExtrema(h, env.band(), &scratch->proj_lower, &scratch->proj_upper,
                &scratch->extrema_work);
  // Query index i reaches data offsets [i - band, i + band]; beyond the
  // projection's reach no legal banded path exists at all.
  if (query.size() > scratch->proj_lower.size()) return kInfinity;
  return sum + k.lb_keogh(query.data(), scratch->proj_lower.data(),
                          scratch->proj_upper.data(), query.size(),
                          abandon_above - sum);
}

bool DtwWithinThresholdLb(std::span<const Value> query,
                          std::span<const Value> candidate,
                          const QueryEnvelope& env, Value epsilon,
                          Value* distance, EnvelopeScratch* scratch) {
  TSW_CHECK(!query.empty() && !candidate.empty());
  TSW_DCHECK(scratch != nullptr);
  const std::size_t len = candidate.size();
  // Lower-bound cuts compare against the slackened threshold so that
  // reassociation drift between the bounds and the exact kernel cannot
  // dismiss a boundary candidate (see LbPruneThreshold).
  const Value cut = LbPruneThreshold(epsilon);
  // suffix_lb[y] bounds the cost the path must still pay for rows y..len-1.
  simd::AlignedVector& suffix_lb = scratch->suffix_lb;
  suffix_lb.resize(len + 1);
  suffix_lb[len] = 0.0;
  for (std::size_t y = len; y-- > 0;) {
    suffix_lb[y] = suffix_lb[y + 1] + env.ElementLb(y, candidate[y]);
  }
  if (suffix_lb[0] > cut) return false;  // LB_Keogh re-check; free here.

  WarpingTable table(query, env.band(), len);
  for (std::size_t y = 0; y < len; ++y) {
    table.PushRowValue(candidate[y]);
    // Every completion extends some partial path through row y+1 (cost
    // >= RowMin) and still pays at least the envelope bound of each
    // remaining row; Theorem 1 is the suffix_lb == 0 special case.
    if (table.RowMin() + suffix_lb[y + 1] > cut) return false;
  }
  const Value d = table.LastColumn();
  if (d > epsilon) return false;
  *distance = d;
  return true;
}

}  // namespace tswarp::dtw
