#include "dtw/simd.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <mutex>

#include "dtw/simd_internal.h"

namespace tswarp::dtw::simd {

// Backend tables. Each backend file compiles unconditionally and returns
// nullptr when its instruction set is unavailable (wrong architecture at
// compile time, or missing CPU feature at run time), which keeps every
// #ifdef __AVX2__ / __ARM_NEON inside src/dtw/simd* — CI greps for leaks.
const KernelTable* Avx2Kernels();  // simd_avx2.cc
const KernelTable* Sse2Kernels();  // simd_sse2.cc
const KernelTable* NeonKernels();  // simd_neon.cc

namespace {

namespace in = internal;

Value ScalarRowStepValue(const Value* q, Value v, const Value* prev,
                         Value* row, std::size_t n, Value left) {
  return in::RowStepGeneric(
      [q, v](std::size_t i) { return in::AbsDiff(q[i], v); }, prev, row, n,
      left);
}

Value ScalarRowStepInterval(const Value* q, Value lb, Value ub,
                            const Value* prev, Value* row, std::size_t n,
                            Value left) {
  return in::RowStepGeneric(
      [q, lb, ub](std::size_t i) { return in::IntervalDist(q[i], lb, ub); },
      prev, row, n, left);
}

Value ScalarRowStepBase(const Value* base, const Value* prev, Value* row,
                        std::size_t n, Value left) {
  return in::RowStepGeneric([base](std::size_t i) { return base[i]; }, prev,
                            row, n, left);
}

void ScalarBaseDistanceRow(const Value* q, Value v, Value* out,
                           std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) out[i] = in::AbsDiff(q[i], v);
}

void ScalarIntervalDistanceRow(const Value* q, Value lb, Value ub, Value* out,
                               std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) out[i] = in::IntervalDist(q[i], lb, ub);
}

void ScalarMinPairRow(const Value* prev, Value* out, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = in::MinPd(prev[i], prev[i - 1]);
  }
}

Value ScalarRowMin(const Value* row, std::size_t n) {
  Value m = kInfinity;
  for (std::size_t i = 0; i < n; ++i) m = in::MinPd(m, row[i]);
  return m;
}

Value ScalarLbKeogh(const Value* v, const Value* lo, const Value* up,
                    std::size_t n, Value cap) {
  return in::StripedSum(
      n,
      [v, lo, up](std::size_t i) {
        return in::IntervalDist(v[i], lo[i], up[i]);
      },
      cap);
}

Value ScalarLbKeoghConst(const Value* v, Value lo, Value up, std::size_t n,
                         Value cap) {
  return in::StripedSum(
      n, [v, lo, up](std::size_t i) { return in::IntervalDist(v[i], lo, up); },
      cap);
}

Value ScalarLbImprovedPass1(const Value* v, const Value* lo, const Value* up,
                            Value* proj, std::size_t n) {
  return in::StripedSum(
      n,
      [v, lo, up, proj](std::size_t i) {
        const Value x = v[i];
        proj[i] = in::MinPd(in::MaxPd(x, lo[i]), up[i]);
        return in::IntervalDist(x, lo[i], up[i]);
      },
      kInfinity);
}

Value ScalarLbImprovedPass1Const(const Value* v, Value lo, Value up,
                                 Value* proj, std::size_t n) {
  return in::StripedSum(
      n,
      [v, lo, up, proj](std::size_t i) {
        const Value x = v[i];
        proj[i] = in::MinPd(in::MaxPd(x, lo), up);
        return in::IntervalDist(x, lo, up);
      },
      kInfinity);
}

void ScalarStridedGather(const Value* src, std::size_t stride, Value* dst,
                         std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) dst[i] = src[i * stride];
}

void ScalarBandedExtrema(const Value* seq, std::size_t n, std::size_t band,
                         Value* lower, Value* upper, Value* work) {
  in::BandedExtremaGeneric(
      seq, n, band, lower, upper, work,
      [](const Value* min_src, Value* min_dst, const Value* max_src,
         Value* max_dst, std::size_t count, std::size_t s) {
        for (std::size_t j = 0; j < count; ++j) {
          min_dst[j] = in::MinPd(min_src[j], min_src[j + s]);
          max_dst[j] = in::MaxPd(max_src[j], max_src[j + s]);
        }
      });
}

Value ScalarSummaryLb(const Value* q, const Value* lo, const Value* hi,
                      std::size_t num_intervals, std::size_t n, Value cap) {
  return in::StripedSum(
      n,
      [q, lo, hi, num_intervals](std::size_t i) {
        Value d = in::IntervalDist(q[i], lo[0], hi[0]);
        for (std::size_t k = 1; k < num_intervals; ++k) {
          d = in::MinPd(d, in::IntervalDist(q[i], lo[k], hi[k]));
        }
        return d;
      },
      cap);
}

constexpr KernelTable kScalarTable = {
    "scalar",
    ScalarRowStepValue,
    ScalarRowStepInterval,
    ScalarRowStepBase,
    ScalarBaseDistanceRow,
    ScalarIntervalDistanceRow,
    ScalarMinPairRow,
    ScalarRowMin,
    ScalarLbKeogh,
    ScalarLbKeoghConst,
    ScalarLbImprovedPass1,
    ScalarLbImprovedPass1Const,
    ScalarStridedGather,
    ScalarBandedExtrema,
    ScalarSummaryLb,
};

// Runtime CPU feature checks live here, in a TU compiled WITHOUT any
// extra ISA flags, so no vector instruction can execute before its check
// passes. The backend getters only report compile-time availability.
#if defined(__x86_64__) || defined(__i386__)
bool CpuHasAvx2() { return __builtin_cpu_supports("avx2"); }
bool CpuHasSse2() { return __builtin_cpu_supports("sse2"); }
bool CpuHasNeon() { return false; }
#elif defined(__aarch64__)
bool CpuHasAvx2() { return false; }
bool CpuHasSse2() { return false; }
bool CpuHasNeon() { return true; }  // NEON is baseline on AArch64.
#else
bool CpuHasAvx2() { return false; }
bool CpuHasSse2() { return false; }
bool CpuHasNeon() { return false; }
#endif

/// Candidates in dispatch order (best first). A backend is usable iff the
/// CPU supports it at run time AND the build compiled it (get() non-null).
struct Candidate {
  const char* name;
  bool (*supported)();
  const KernelTable* (*get)();
};
constexpr Candidate kCandidates[] = {
    {"avx2", CpuHasAvx2, Avx2Kernels},
    {"sse2", CpuHasSse2, Sse2Kernels},
    {"neon", CpuHasNeon, NeonKernels},
    {"scalar", [] { return true; }, [] { return &kScalarTable; }},
};

const KernelTable* Resolve(const Candidate& c) {
  return c.supported() ? c.get() : nullptr;
}

const KernelTable* ResolveAuto() {
  for (const Candidate& c : kCandidates) {
    if (const KernelTable* t = Resolve(c)) return t;
  }
  return &kScalarTable;  // Unreachable: scalar always resolves.
}

const KernelTable* ResolveNamed(std::string_view name) {
  if (name == "auto") return ResolveAuto();
  for (const Candidate& c : kCandidates) {
    if (name == c.name) return Resolve(c);
  }
  return nullptr;
}

std::atomic<const KernelTable*> g_active{nullptr};
std::once_flag g_init_once;

void InitOnce() {
  std::call_once(g_init_once, [] {
    // An explicit SetBackend() before first use already installed a table.
    if (g_active.load(std::memory_order_acquire) != nullptr) return;
    const KernelTable* table = nullptr;
    if (const char* env = std::getenv("TSWARP_SIMD")) {
      table = ResolveNamed(env);
      if (table == nullptr) {
        std::fprintf(stderr,
                     "tswarp: TSWARP_SIMD=%s is unknown or unsupported on "
                     "this CPU; falling back to auto dispatch\n",
                     env);
      }
    }
    if (table == nullptr) table = ResolveAuto();
    g_active.store(table, std::memory_order_release);
  });
}

}  // namespace

const KernelTable& Kernels() {
  const KernelTable* t = g_active.load(std::memory_order_acquire);
  if (t != nullptr) return *t;
  InitOnce();
  return *g_active.load(std::memory_order_acquire);
}

bool SetBackend(std::string_view name) {
  const KernelTable* table = ResolveNamed(name);
  if (table == nullptr) return false;
  g_active.store(table, std::memory_order_release);
  return true;
}

const char* ActiveBackend() { return Kernels().name; }

std::vector<std::string> AvailableBackends() {
  std::vector<std::string> out;
  for (const Candidate& c : kCandidates) {
    if (Resolve(c) != nullptr) out.emplace_back(c.name);
  }
  return out;
}

}  // namespace tswarp::dtw::simd
