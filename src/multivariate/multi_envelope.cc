#include "multivariate/multi_envelope.h"

#include "common/logging.h"
#include "dtw/simd.h"

namespace tswarp::mv {

MultiQueryEnvelope::MultiQueryEnvelope(std::span<const Value> query,
                                       std::size_t query_len,
                                       std::size_t dim, Pos band)
    : band_(band) {
  TSW_CHECK(query_len > 0 && dim > 0);
  TSW_CHECK(query.size() == query_len * dim);
  dims_.reserve(dim);
  for (std::size_t d = 0; d < dim; ++d) {
    dtw::simd::AlignedVector projection(query_len);
    dtw::simd::Kernels().strided_gather(query.data() + d, dim,
                                        projection.data(), query_len);
    dtw::QueryEnvelope envelope(projection, band);
    dims_.push_back(Dimension{std::move(projection), std::move(envelope)});
  }
}

Value MultiLbImproved(const MultiQueryEnvelope& env,
                      std::span<const Value> candidate, std::size_t len,
                      Value abandon_above, MultiEnvelopeScratch* scratch) {
  const std::size_t dim = env.dim();
  TSW_DCHECK(candidate.size() == len * dim);
  scratch->candidate_dim.resize(len);
  Value sum = 0.0;
  for (std::size_t d = 0; d < dim; ++d) {
    dtw::simd::Kernels().strided_gather(candidate.data() + d, dim,
                                        scratch->candidate_dim.data(), len);
    // Remaining dimensions only add cost, so each per-dimension pass may
    // abandon against the budget left after the ones already summed.
    sum += dtw::LbImproved(env.envelope(d), env.query_dim(d),
                           scratch->candidate_dim, abandon_above - sum,
                           &scratch->env_scratch);
    if (sum > abandon_above) return sum;
  }
  return sum;
}

}  // namespace tswarp::mv
