#ifndef TSWARP_MULTIVARIATE_GRID_MODEL_H_
#define TSWARP_MULTIVARIATE_GRID_MODEL_H_

#include <span>

#include "common/types.h"
#include "core/match.h"
#include "dtw/warping_table.h"
#include "multivariate/grid_alphabet.h"
#include "multivariate/multi_database.h"
#include "multivariate/multi_dtw.h"
#include "multivariate/multi_envelope.h"
#include "suffixtree/tree_view.h"

namespace tswarp::mv {

/// The multivariate distance model for core::SearchDriver (paper Section 8):
/// rows are grid-cell lower bounds on the city-block base distance, so every
/// emission is a candidate verified with exact multivariate DTW behind an
/// endpoint screen and the per-dimension envelope cascade (see
/// multi_envelope.h). The fourth instantiation of the driver, next to
/// core::{ExactModel, CategoryModel, SparseCategoryModel}.
class GridCellModel {
 public:
  static constexpr bool kExactRows = false;
  // Node summaries describe scalar value hulls; grid cells are
  // d-dimensional, so the multivariate index never builds them.
  static constexpr bool kSupportsSummaries = false;

  /// `envelope` may be null (cascade disabled, the ablation setting). All
  /// pointers must outlive the model.
  GridCellModel(const MultiSequenceDatabase* db, const GridAlphabet* grid,
                std::span<const Value> query, std::size_t query_len,
                const MultiQueryEnvelope* envelope, Pos band)
      : db_(db),
        grid_(grid),
        query_(query),
        query_len_(query_len),
        envelope_(envelope),
        band_(band) {}

  Value FirstRowLb(Symbol s) const {
    return grid_->CellLowerBound(QueryElement(0), s);
  }

  void RowStep(dtw::WarpingTable* table, Symbol s) const {
    table->PushRowCustom([this, s](std::size_t x) {
      return grid_->CellLowerBound(QueryElement(x), s);
    });
  }

  Value OccurrenceFirstLb(const suffixtree::OccurrenceRec& occ) const {
    const Symbol cell = grid_->ToSymbol(db_->Element(occ.seq, occ.pos));
    return grid_->CellLowerBound(QueryElement(0), cell);
  }

  bool VerifyExact(SeqId seq, Pos start, Pos len, Value eps,
                   core::SearchStats* stats, Value* distance) {
    // O(dim) endpoint screen (first and last elements must align).
    Value endpoint_lb =
        MultiBaseDistance(QueryElement(0), db_->Element(seq, start));
    if (query_len_ > 1 || len > 1) {
      endpoint_lb += MultiBaseDistance(QueryElement(query_len_ - 1),
                                       db_->Element(seq, start + len - 1));
    }
    if (endpoint_lb > eps) {
      ++stats->endpoint_rejections;
      return false;
    }
    const std::span<const Value> slice = db_->Slice(seq, start, len);
    if (envelope_ != nullptr) {
      ++stats->lb_invocations;
      if (MultiLbImproved(*envelope_, slice, len, eps, &lb_scratch_) > eps) {
        ++stats->lb_pruned;
        return false;
      }
    }
    ++stats->exact_dtw_calls;
    return MultiDtwWithinThreshold(query_, query_len_, slice, len,
                                   db_->dim(), eps, distance, band_);
  }

 private:
  std::span<const Value> QueryElement(std::size_t x) const {
    return std::span<const Value>(query_.data() + x * db_->dim(),
                                  db_->dim());
  }

  const MultiSequenceDatabase* db_;
  const GridAlphabet* grid_;
  std::span<const Value> query_;
  std::size_t query_len_;
  const MultiQueryEnvelope* envelope_;
  Pos band_;
  MultiEnvelopeScratch lb_scratch_;  // Worker-private (models are copied).
};

}  // namespace tswarp::mv

#endif  // TSWARP_MULTIVARIATE_GRID_MODEL_H_
