#ifndef TSWARP_MULTIVARIATE_MULTI_INDEX_H_
#define TSWARP_MULTIVARIATE_MULTI_INDEX_H_

#include <optional>
#include <span>
#include <vector>

#include "categorize/categorizer.h"
#include "common/status.h"
#include "common/types.h"
#include "core/index.h"
#include "core/match.h"
#include "multivariate/grid_alphabet.h"
#include "multivariate/multi_database.h"
#include "suffixtree/suffix_tree.h"
#include "suffixtree/symbol_database.h"

namespace tswarp::mv {

/// Build options for the multivariate index.
struct MultiIndexOptions {
  categorize::Method method = categorize::Method::kMaxEntropy;
  std::size_t categories_per_dim = 8;
  bool sparse = true;
  std::uint64_t seed = 1;
};

/// Multivariate subsequence index (paper Section 8): elements are
/// categorized into grid cells, a (sparse) suffix tree is built over the
/// cell symbols, and queries run on core::SearchDriver with the
/// GridCellModel — grid-cell lower-bound filtering, then exact
/// multivariate-DTW post-processing behind the per-dimension envelope
/// cascade. No false dismissals. Searches take the same core::QueryOptions
/// as the univariate Index (band, pruning/lower-bound ablations,
/// num_threads), with identical semantics: parallel results are
/// bit-identical to serial, and bands are rejected on sparse indexes.
class MultiIndex {
 public:
  /// `db` must outlive the index.
  static StatusOr<MultiIndex> Build(const MultiSequenceDatabase* db,
                                    const MultiIndexOptions& options);

  /// All subsequences whose multivariate D_tw from the flattened query
  /// (`query_len` elements) is <= epsilon, sorted by (seq, start, len).
  std::vector<core::Match> Search(std::span<const Value> query,
                                  std::size_t query_len, Value epsilon,
                                  const core::QueryOptions& query_options = {},
                                  core::SearchStats* stats = nullptr) const;

  /// The k subsequences nearest to the query under the multivariate D_tw,
  /// sorted by distance (branch-and-bound over the same filter; ties at
  /// the k-th distance are broken arbitrarily).
  std::vector<core::Match> SearchKnn(
      std::span<const Value> query, std::size_t query_len, std::size_t k,
      const core::QueryOptions& query_options = {},
      core::SearchStats* stats = nullptr) const;

  std::uint64_t IndexBytes() const { return tree_->SizeBytes(); }
  const GridAlphabet& grid() const { return *grid_; }
  const MultiIndexOptions& options() const { return options_; }

 private:
  MultiIndex() = default;

  const MultiSequenceDatabase* db_ = nullptr;
  MultiIndexOptions options_;
  std::optional<GridAlphabet> grid_;
  suffixtree::SymbolDatabase symbols_;
  std::optional<suffixtree::SuffixTree> tree_;
};

/// Sequential-scan baseline for multivariate queries (ground truth), under
/// an optional Sakoe-Chiba band.
std::vector<core::Match> MultiSeqScan(const MultiSequenceDatabase& db,
                                      std::span<const Value> query,
                                      std::size_t query_len, Value epsilon,
                                      Pos band = 0);

}  // namespace tswarp::mv

#endif  // TSWARP_MULTIVARIATE_MULTI_INDEX_H_
