#ifndef TSWARP_MULTIVARIATE_MULTI_ENVELOPE_H_
#define TSWARP_MULTIVARIATE_MULTI_ENVELOPE_H_

#include <span>
#include <vector>

#include "common/types.h"
#include "dtw/envelope.h"

namespace tswarp::mv {

/// Per-dimension envelope set of a multivariate query: one univariate
/// QueryEnvelope over each dimension's projection Q_d.
///
/// Because the multivariate base distance is the city-block sum over
/// dimensions, any warping path P satisfies
///
///   cost_mv(P) = sum_d cost_d(P)  >=  sum_d min_P' cost_d(P')
///              = sum_d D_tw(Q_d, S_d),
///
/// so the sum over dimensions of any univariate lower bound on
/// D_tw(Q_d, S_d) — LB_Keogh, LB_Improved — lower-bounds the multivariate
/// D_tw(Q, S). The argument restricts paths identically under a
/// Sakoe-Chiba band, so the cascade stays valid banded.
class MultiQueryEnvelope {
 public:
  /// `query` is the flattened query (query_len elements, `dim` wide);
  /// copied per dimension, so it need not outlive the envelope.
  MultiQueryEnvelope(std::span<const Value> query, std::size_t query_len,
                     std::size_t dim, Pos band);

  std::size_t dim() const { return dims_.size(); }
  Pos band() const { return band_; }

  const dtw::QueryEnvelope& envelope(std::size_t d) const {
    return dims_[d].envelope;
  }
  std::span<const Value> query_dim(std::size_t d) const {
    return dims_[d].query;
  }

 private:
  struct Dimension {
    // Projection Q_d; owns the envelope's span. Aligned for the SIMD
    // lower-bound kernels.
    dtw::simd::AlignedVector query;
    dtw::QueryEnvelope envelope;
  };

  Pos band_;
  std::vector<Dimension> dims_;
};

/// Reusable buffers for MultiLbImproved.
struct MultiEnvelopeScratch {
  dtw::simd::AlignedVector candidate_dim;  // One dimension's slice of S.
  dtw::EnvelopeScratch env_scratch;
};

/// Sum over dimensions of LB_Improved(Q_d, S_d): a lower bound on the
/// multivariate D_tw (see MultiQueryEnvelope). `candidate` is the
/// flattened subsequence (`len` elements). Abandons once the partial sum
/// exceeds `abandon_above`; the partial sum returned is still a valid
/// lower bound (per-dimension terms are non-negative).
Value MultiLbImproved(const MultiQueryEnvelope& env,
                      std::span<const Value> candidate, std::size_t len,
                      Value abandon_above, MultiEnvelopeScratch* scratch);

}  // namespace tswarp::mv

#endif  // TSWARP_MULTIVARIATE_MULTI_ENVELOPE_H_
