#ifndef TSWARP_MULTIVARIATE_MULTI_DTW_H_
#define TSWARP_MULTIVARIATE_MULTI_DTW_H_

#include <span>

#include "common/types.h"

namespace tswarp::mv {

/// City-block base distance between two `dim`-dimensional elements:
/// sum_d |a_d - b_d| (the natural multivariate extension of the paper's
/// D_base).
Value MultiBaseDistance(std::span<const Value> a, std::span<const Value> b);

/// Exact multivariate time warping distance between flattened sequences
/// `a` (a_len elements) and `b` (b_len elements), each element `dim` wide.
/// `band` is an optional Sakoe-Chiba constraint (0 = unconstrained, the
/// paper's setting).
Value MultiDtwDistance(std::span<const Value> a, std::size_t a_len,
                       std::span<const Value> b, std::size_t b_len,
                       std::size_t dim, Pos band = 0);

/// Thresholded variant with Theorem-1 early abandon; true iff the (banded)
/// distance is <= epsilon (then *distance is set).
bool MultiDtwWithinThreshold(std::span<const Value> a, std::size_t a_len,
                             std::span<const Value> b, std::size_t b_len,
                             std::size_t dim, Value epsilon, Value* distance,
                             Pos band = 0);

}  // namespace tswarp::mv

#endif  // TSWARP_MULTIVARIATE_MULTI_DTW_H_
