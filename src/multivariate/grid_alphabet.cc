#include "multivariate/grid_alphabet.h"

#include "common/logging.h"
#include "dtw/base.h"

namespace tswarp::mv {

StatusOr<GridAlphabet> GridAlphabet::Build(const MultiSequenceDatabase& db,
                                           categorize::Method method,
                                           std::size_t categories_per_dim,
                                           std::uint64_t seed) {
  if (db.size() == 0) return Status::InvalidArgument("empty database");
  GridAlphabet grid;
  const std::size_t dim = db.dim();
  for (std::size_t d = 0; d < dim; ++d) {
    std::vector<Value> values;
    values.reserve(db.TotalElements());
    for (SeqId id = 0; id < db.size(); ++id) {
      const Pos len = db.Length(id);
      for (Pos p = 0; p < len; ++p) values.push_back(db.Element(id, p)[d]);
    }
    TSW_ASSIGN_OR_RETURN(
        categorize::Alphabet alphabet,
        categorize::Build(method, values, categories_per_dim, seed + d));
    grid.per_dim_.push_back(std::move(alphabet));
  }
  grid.strides_.resize(dim);
  std::size_t stride = 1;
  for (std::size_t d = dim; d-- > 0;) {
    grid.strides_[d] = stride;
    stride *= grid.per_dim_[d].size();
  }
  grid.num_cells_ = stride;
  TSW_CHECK(grid.num_cells_ <
            static_cast<std::size_t>(1) << 30)
      << "grid too fine: reduce categories_per_dim";
  return grid;
}

Symbol GridAlphabet::ToSymbol(std::span<const Value> element) const {
  TSW_DCHECK(element.size() == dim());
  std::size_t cell = 0;
  for (std::size_t d = 0; d < dim(); ++d) {
    cell += static_cast<std::size_t>(per_dim_[d].ToSymbol(element[d])) *
            strides_[d];
  }
  return static_cast<Symbol>(cell);
}

dtw::Interval GridAlphabet::IntervalOf(Symbol s, std::size_t d) const {
  const auto cell = static_cast<std::size_t>(s);
  const auto sym_d =
      static_cast<Symbol>((cell / strides_[d]) % per_dim_[d].size());
  return per_dim_[d].ToInterval(sym_d);
}

Value GridAlphabet::CellLowerBound(std::span<const Value> element,
                                   Symbol s) const {
  TSW_DCHECK(element.size() == dim());
  Value total = 0.0;
  for (std::size_t d = 0; d < dim(); ++d) {
    const dtw::Interval iv = IntervalOf(s, d);
    total += dtw::BaseDistanceLb(element[d], iv.lb, iv.ub);
  }
  return total;
}

std::vector<std::vector<Symbol>> ConvertMultiDatabase(
    const MultiSequenceDatabase& db, GridAlphabet* grid) {
  TSW_CHECK(grid != nullptr);
  std::vector<std::vector<Symbol>> out;
  out.reserve(db.size());
  for (SeqId id = 0; id < db.size(); ++id) {
    const Pos len = db.Length(id);
    std::vector<Symbol> cs;
    cs.reserve(len);
    for (Pos p = 0; p < len; ++p) {
      const std::span<const Value> elem = db.Element(id, p);
      cs.push_back(grid->ToSymbol(elem));
      for (std::size_t d = 0; d < db.dim(); ++d) {
        // Fit per-dimension intervals to the observed data so the cell
        // lower bound stays below the true base distance.
        grid->mutable_dimension_alphabet(d)->FitValue(elem[d]);
      }
    }
    out.push_back(std::move(cs));
  }
  return out;
}

}  // namespace tswarp::mv
