#ifndef TSWARP_MULTIVARIATE_MULTI_DATABASE_H_
#define TSWARP_MULTIVARIATE_MULTI_DATABASE_H_

#include <span>
#include <utility>
#include <vector>

#include "common/logging.h"
#include "common/types.h"

namespace tswarp::mv {

/// A database of multivariate sequences (the paper's Section 8 extension:
/// "sequences of multivariate numeric values"). Every element is a vector
/// of `dim` values; sequences are stored flattened element-major, so
/// element p of a sequence is the span [p*dim, (p+1)*dim).
class MultiSequenceDatabase {
 public:
  explicit MultiSequenceDatabase(std::size_t dim) : dim_(dim) {
    TSW_CHECK(dim >= 1);
  }

  MultiSequenceDatabase(const MultiSequenceDatabase&) = delete;
  MultiSequenceDatabase& operator=(const MultiSequenceDatabase&) = delete;
  MultiSequenceDatabase(MultiSequenceDatabase&&) = default;
  MultiSequenceDatabase& operator=(MultiSequenceDatabase&&) = default;

  std::size_t dim() const { return dim_; }
  std::size_t size() const { return sequences_.size(); }

  /// Adds a flattened sequence; `flat.size()` must be a positive multiple
  /// of dim().
  SeqId Add(std::vector<Value> flat) {
    TSW_CHECK(!flat.empty() && flat.size() % dim_ == 0);
    total_elements_ += flat.size() / dim_;
    sequences_.push_back(std::move(flat));
    return static_cast<SeqId>(sequences_.size() - 1);
  }

  /// Number of elements (vectors) in sequence `id`.
  Pos Length(SeqId id) const {
    return static_cast<Pos>(sequence(id).size() / dim_);
  }

  const std::vector<Value>& sequence(SeqId id) const {
    TSW_CHECK(id < sequences_.size());
    return sequences_[id];
  }

  /// Element (vector) `pos` of sequence `id`.
  std::span<const Value> Element(SeqId id, Pos pos) const {
    const std::vector<Value>& s = sequence(id);
    TSW_CHECK(static_cast<std::size_t>(pos + 1) * dim_ <= s.size());
    return std::span<const Value>(s.data() + pos * dim_, dim_);
  }

  /// Flattened view of elements [start, start+len).
  std::span<const Value> Slice(SeqId id, Pos start, Pos len) const {
    const std::vector<Value>& s = sequence(id);
    TSW_CHECK(static_cast<std::size_t>(start + len) * dim_ <= s.size());
    return std::span<const Value>(s.data() + start * dim_, len * dim_);
  }

  std::size_t TotalElements() const { return total_elements_; }

 private:
  std::size_t dim_;
  std::vector<std::vector<Value>> sequences_;
  std::size_t total_elements_ = 0;
};

}  // namespace tswarp::mv

#endif  // TSWARP_MULTIVARIATE_MULTI_DATABASE_H_
