#include "multivariate/multi_dtw.h"

#include <cmath>

#include "common/logging.h"
#include "dtw/warping_table.h"

namespace tswarp::mv {

Value MultiBaseDistance(std::span<const Value> a, std::span<const Value> b) {
  TSW_DCHECK(a.size() == b.size());
  Value d = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) d += std::fabs(a[i] - b[i]);
  return d;
}

namespace {

bool RunTable(std::span<const Value> a, std::size_t a_len,
              std::span<const Value> b, std::size_t b_len, std::size_t dim,
              Value epsilon, bool thresholded, Value* distance, Pos band) {
  TSW_CHECK(a_len > 0 && b_len > 0);
  TSW_CHECK(a.size() == a_len * dim && b.size() == b_len * dim);
  dtw::WarpingTable table(a_len, band, b_len);
  for (std::size_t y = 0; y < b_len; ++y) {
    const Value* elem = b.data() + y * dim;
    table.PushRowCustom([&](std::size_t x) {
      return MultiBaseDistance(
          std::span<const Value>(a.data() + x * dim, dim),
          std::span<const Value>(elem, dim));
    });
    if (thresholded && table.RowMin() > epsilon) return false;
  }
  const Value d = table.LastColumn();
  if (thresholded && d > epsilon) return false;
  *distance = d;
  return true;
}

}  // namespace

Value MultiDtwDistance(std::span<const Value> a, std::size_t a_len,
                       std::span<const Value> b, std::size_t b_len,
                       std::size_t dim, Pos band) {
  Value d = 0.0;
  RunTable(a, a_len, b, b_len, dim, 0.0, /*thresholded=*/false, &d, band);
  return d;
}

bool MultiDtwWithinThreshold(std::span<const Value> a, std::size_t a_len,
                             std::span<const Value> b, std::size_t b_len,
                             std::size_t dim, Value epsilon, Value* distance,
                             Pos band) {
  return RunTable(a, a_len, b, b_len, dim, epsilon, /*thresholded=*/true,
                  distance, band);
}

}  // namespace tswarp::mv
