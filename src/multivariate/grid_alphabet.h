#ifndef TSWARP_MULTIVARIATE_GRID_ALPHABET_H_
#define TSWARP_MULTIVARIATE_GRID_ALPHABET_H_

#include <span>
#include <vector>

#include "categorize/alphabet.h"
#include "categorize/categorizer.h"
#include "common/status.h"
#include "common/types.h"
#include "multivariate/multi_database.h"

namespace tswarp::mv {

/// Multi-dimensional categorization (the MTAH-style grid of the paper's
/// Section 8): one 1-D alphabet per dimension; an element maps to the cell
/// indexed by the tuple of per-dimension symbols, flattened into a single
/// Symbol (row-major over dimensions).
class GridAlphabet {
 public:
  /// Builds per-dimension alphabets over the values observed in `db`
  /// (`categories_per_dim` each) and fits the intervals to the data.
  static StatusOr<GridAlphabet> Build(const MultiSequenceDatabase& db,
                                      categorize::Method method,
                                      std::size_t categories_per_dim,
                                      std::uint64_t seed = 1);

  std::size_t dim() const { return per_dim_.size(); }

  /// Total number of grid cells (product of per-dimension sizes).
  std::size_t NumCells() const { return num_cells_; }

  /// Maps a `dim()`-wide element to its flattened cell symbol.
  Symbol ToSymbol(std::span<const Value> element) const;

  /// The [lb, ub] interval of cell `s` along dimension `d`.
  dtw::Interval IntervalOf(Symbol s, std::size_t d) const;

  /// Lower bound of the multivariate base distance between `element` and
  /// cell `s`: sum over dimensions of the per-dimension interval distance.
  Value CellLowerBound(std::span<const Value> element, Symbol s) const;

  const categorize::Alphabet& dimension_alphabet(std::size_t d) const {
    return per_dim_[d];
  }
  categorize::Alphabet* mutable_dimension_alphabet(std::size_t d) {
    return &per_dim_[d];
  }

 private:
  GridAlphabet() = default;

  std::vector<categorize::Alphabet> per_dim_;
  std::vector<std::size_t> strides_;
  std::size_t num_cells_ = 1;
};

/// Converts every sequence of `db` to flattened cell symbols, fitting the
/// grid's per-dimension intervals to the observed data.
std::vector<std::vector<Symbol>> ConvertMultiDatabase(
    const MultiSequenceDatabase& db, GridAlphabet* grid);

}  // namespace tswarp::mv

#endif  // TSWARP_MULTIVARIATE_GRID_ALPHABET_H_
