#include "multivariate/multi_index.h"

#include <algorithm>
#include <optional>

#include "common/logging.h"
#include "core/search_driver.h"
#include "dtw/warping_table.h"
#include "multivariate/grid_model.h"
#include "multivariate/multi_dtw.h"
#include "multivariate/multi_envelope.h"

namespace tswarp::mv {
namespace {

using core::Match;
using core::MatchLess;
using core::SearchStats;

/// Shared body of Search / SearchKnn: instantiate the grid-cell model and
/// run the common DFS kernel (core::SearchDriver). The per-dimension
/// envelope set lives here for the query's duration, mirroring
/// QueryContext's univariate envelope slot.
std::vector<Match> RunDriver(const MultiSequenceDatabase& db,
                             const GridAlphabet& grid,
                             const suffixtree::TreeView& tree, bool sparse,
                             std::span<const Value> query,
                             std::size_t query_len, Value epsilon,
                             std::size_t knn_k,
                             const core::QueryOptions& options,
                             SearchStats* stats) {
  TSW_CHECK(query_len > 0 && query.size() == query_len * db.dim());
  TSW_CHECK(options.band <= query_len)
      << "band wider than the query has no effect and is almost certainly "
         "a misconfiguration";

  core::DriverConfig driver;
  driver.tree = &tree;
  driver.query_length = query_len;
  // driver.query stays empty: multivariate base distances are not
  // derivable from a Value span (GridCellModel pushes custom rows).
  driver.sparse = sparse;
  driver.prune = options.prune;
  driver.band = options.band;
  driver.num_threads = options.num_threads;
  driver.cancel = options.cancel;
  std::size_t max_len = 0;
  for (SeqId id = 0; id < db.size(); ++id) {
    max_len = std::max<std::size_t>(max_len, db.Length(id));
  }
  driver.depth_hint = max_len;

  core::QueryContext ctx(epsilon, knn_k);
  std::optional<MultiQueryEnvelope> envelope;
  if (options.use_lower_bound) {
    envelope.emplace(query, query_len, db.dim(), options.band);
  }
  const GridCellModel model(&db, &grid, query, query_len,
                            envelope ? &*envelope : nullptr, options.band);
  return core::RunSearchDriver(driver, model, &ctx, stats);
}

}  // namespace

StatusOr<MultiIndex> MultiIndex::Build(const MultiSequenceDatabase* db,
                                       const MultiIndexOptions& options) {
  if (db == nullptr || db->size() == 0) {
    return Status::InvalidArgument("null or empty database");
  }
  MultiIndex index;
  index.db_ = db;
  index.options_ = options;
  TSW_ASSIGN_OR_RETURN(
      GridAlphabet grid,
      GridAlphabet::Build(*db, options.method, options.categories_per_dim,
                          options.seed));
  std::vector<std::vector<Symbol>> converted = ConvertMultiDatabase(*db,
                                                                    &grid);
  index.grid_ = std::move(grid);
  index.symbols_ = suffixtree::SymbolDatabase(std::move(converted));
  suffixtree::BuildOptions build;
  build.sparse = options.sparse;
  index.tree_ = suffixtree::BuildSuffixTree(index.symbols_, build);
  return index;
}

std::vector<Match> MultiIndex::Search(std::span<const Value> query,
                                      std::size_t query_len, Value epsilon,
                                      const core::QueryOptions& query_options,
                                      SearchStats* stats) const {
  return RunDriver(*db_, *grid_, *tree_, options_.sparse, query, query_len,
                   epsilon, /*knn_k=*/0, query_options, stats);
}

std::vector<Match> MultiIndex::SearchKnn(
    std::span<const Value> query, std::size_t query_len, std::size_t k,
    const core::QueryOptions& query_options, SearchStats* stats) const {
  if (k == 0) {
    if (stats != nullptr) *stats = SearchStats{};
    return {};
  }
  return RunDriver(*db_, *grid_, *tree_, options_.sparse, query, query_len,
                   /*epsilon=*/0.0, k, query_options, stats);
}

std::vector<Match> MultiSeqScan(const MultiSequenceDatabase& db,
                                std::span<const Value> query,
                                std::size_t query_len, Value epsilon,
                                Pos band) {
  TSW_CHECK(query_len > 0 && query.size() == query_len * db.dim());
  std::vector<Match> out;
  std::size_t max_len = 0;
  for (SeqId id = 0; id < db.size(); ++id) {
    max_len = std::max<std::size_t>(max_len, db.Length(id));
  }
  dtw::WarpingTable table(query_len, band,
                          std::max<std::size_t>(1, max_len));
  for (SeqId id = 0; id < db.size(); ++id) {
    const Pos n = db.Length(id);
    for (Pos p = 0; p < n; ++p) {
      table.Reset();
      for (Pos q = p; q < n; ++q) {
        const std::span<const Value> elem = db.Element(id, q);
        table.PushRowCustom([&](std::size_t x) {
          return MultiBaseDistance(
              std::span<const Value>(query.data() + x * db.dim(), db.dim()),
              elem);
        });
        const Value dist = table.LastColumn();
        if (dist <= epsilon) out.push_back({id, p, q - p + 1, dist});
        if (table.RowMin() > epsilon) break;
      }
    }
  }
  std::sort(out.begin(), out.end(), MatchLess);
  return out;
}

}  // namespace tswarp::mv
