#include "multivariate/multi_index.h"

#include <algorithm>

#include "common/logging.h"
#include "dtw/base.h"
#include "dtw/warping_table.h"
#include "multivariate/multi_dtw.h"

namespace tswarp::mv {
namespace {

using core::Match;
using core::MatchLess;
using core::SearchStats;
using suffixtree::Children;
using suffixtree::NodeId;
using suffixtree::OccurrenceRec;

/// Multivariate analogue of the core tree searcher: lower-bound filtering
/// via grid cells, D_tw-lb2 recovery of sparse non-stored suffixes, exact
/// multivariate-DTW post-processing.
class MvSearcher {
 public:
  MvSearcher(const MultiSequenceDatabase& db, const GridAlphabet& grid,
             const suffixtree::TreeView& tree, bool sparse,
             std::span<const Value> query, std::size_t query_len,
             Value epsilon)
      : db_(db), grid_(grid), tree_(tree), sparse_(sparse), query_(query),
        query_len_(query_len), epsilon_(epsilon),
        table_(query_len, /*band=*/0) {
    TSW_CHECK(query_len > 0 && query.size() == query_len * db.dim());
  }

  std::vector<Match> Run(SearchStats* stats) {
    Visit(tree_.Root(), 0.0);
    std::sort(answers_.begin(), answers_.end(), MatchLess);
    stats_.answers = answers_.size();
    stats_.cells_computed = table_.cells_computed();
    if (stats != nullptr) *stats = stats_;
    return answers_;
  }

 private:
  std::span<const Value> QueryElement(std::size_t x) const {
    return std::span<const Value>(query_.data() + x * db_.dim(), db_.dim());
  }

  void Visit(NodeId node, Value first_lb) {
    ++stats_.nodes_visited;
    Children children;
    tree_.GetChildren(node, &children);
    const bool at_root = table_.Empty();
    for (const Children::Edge& edge : children.edges) {
      const std::span<const Symbol> label = children.Label(edge);
      Value branch_first_lb = first_lb;
      if (at_root) {
        branch_first_lb = grid_.CellLowerBound(QueryElement(0), label.front());
      }
      Value discount = 0.0;
      if (sparse_) {
        const Pos max_run = tree_.MaxRun(edge.child);
        if (max_run > 1) {
          discount = static_cast<Value>(max_run - 1) * branch_first_lb;
        }
      }
      std::size_t pushed = 0;
      bool descend = true;
      occ_buf_.clear();
      bool occ_collected = false;
      for (const Symbol sym : label) {
        table_.PushRowCustom([this, sym](std::size_t x) {
          return grid_.CellLowerBound(QueryElement(x), sym);
        });
        ++pushed;
        ++stats_.rows_pushed;
        const Value dist = table_.LastColumn();
        if (dist <= epsilon_ || (sparse_ && dist - discount <= epsilon_)) {
          if (!occ_collected) {
            tree_.CollectSubtreeOccurrences(edge.child, &occ_buf_);
            occ_collected = true;
          }
          EmitCandidates(dist);
        }
        if (table_.RowMin() - discount > epsilon_) {
          ++stats_.branches_pruned;
          descend = false;
          break;
        }
      }
      if (descend) Visit(edge.child, branch_first_lb);
      table_.PopRows(pushed);
    }
  }

  void EmitCandidates(Value dist) {
    const auto depth = static_cast<Pos>(table_.NumRows());
    for (const OccurrenceRec& occ : occ_buf_) {
      if (dist <= epsilon_) PostProcess(occ.seq, occ.pos, depth);
      if (!sparse_) continue;
      const Symbol first_cell =
          grid_.ToSymbol(std::span<const Value>(db_.Element(occ.seq,
                                                            occ.pos)));
      const Value first_lb = grid_.CellLowerBound(QueryElement(0), first_cell);
      const Pos max_delta = std::min<Pos>(occ.run - 1, depth - 1);
      for (Pos delta = 1; delta <= max_delta; ++delta) {
        if (dtw::LowerBound2(dist, delta, first_lb) <= epsilon_) {
          PostProcess(occ.seq, occ.pos + delta, depth - delta);
        }
      }
    }
  }

  void PostProcess(SeqId seq, Pos start, Pos len) {
    ++stats_.candidates;
    // O(dim) endpoint screen (first and last elements must align).
    const Value first = MultiBaseDistance(QueryElement(0),
                                          db_.Element(seq, start));
    Value endpoint_lb = first;
    if (query_len_ > 1 || len > 1) {
      endpoint_lb += MultiBaseDistance(QueryElement(query_len_ - 1),
                                       db_.Element(seq, start + len - 1));
    }
    if (endpoint_lb > epsilon_) {
      ++stats_.endpoint_rejections;
      return;
    }
    ++stats_.exact_dtw_calls;
    Value d = 0.0;
    if (MultiDtwWithinThreshold(query_, query_len_,
                                db_.Slice(seq, start, len), len, db_.dim(),
                                epsilon_, &d)) {
      answers_.push_back({seq, start, len, d});
    }
  }

  const MultiSequenceDatabase& db_;
  const GridAlphabet& grid_;
  const suffixtree::TreeView& tree_;
  bool sparse_;
  std::span<const Value> query_;
  std::size_t query_len_;
  Value epsilon_;
  dtw::WarpingTable table_;
  std::vector<OccurrenceRec> occ_buf_;
  std::vector<Match> answers_;
  SearchStats stats_;
};

}  // namespace

StatusOr<MultiIndex> MultiIndex::Build(const MultiSequenceDatabase* db,
                                       const MultiIndexOptions& options) {
  if (db == nullptr || db->size() == 0) {
    return Status::InvalidArgument("null or empty database");
  }
  MultiIndex index;
  index.db_ = db;
  index.options_ = options;
  TSW_ASSIGN_OR_RETURN(
      GridAlphabet grid,
      GridAlphabet::Build(*db, options.method, options.categories_per_dim,
                          options.seed));
  std::vector<std::vector<Symbol>> converted = ConvertMultiDatabase(*db,
                                                                    &grid);
  index.grid_ = std::move(grid);
  index.symbols_ = suffixtree::SymbolDatabase(std::move(converted));
  suffixtree::BuildOptions build;
  build.sparse = options.sparse;
  index.tree_ = suffixtree::BuildSuffixTree(index.symbols_, build);
  return index;
}

std::vector<Match> MultiIndex::Search(std::span<const Value> query,
                                      std::size_t query_len, Value epsilon,
                                      SearchStats* stats) const {
  MvSearcher searcher(*db_, *grid_, *tree_, options_.sparse, query,
                      query_len, epsilon);
  return searcher.Run(stats);
}

std::vector<Match> MultiSeqScan(const MultiSequenceDatabase& db,
                                std::span<const Value> query,
                                std::size_t query_len, Value epsilon) {
  TSW_CHECK(query_len > 0 && query.size() == query_len * db.dim());
  std::vector<Match> out;
  for (SeqId id = 0; id < db.size(); ++id) {
    const Pos n = db.Length(id);
    for (Pos p = 0; p < n; ++p) {
      dtw::WarpingTable table(query_len, /*band=*/0);
      for (Pos q = p; q < n; ++q) {
        const std::span<const Value> elem = db.Element(id, q);
        table.PushRowCustom([&](std::size_t x) {
          return MultiBaseDistance(
              std::span<const Value>(query.data() + x * db.dim(), db.dim()),
              elem);
        });
        const Value dist = table.LastColumn();
        if (dist <= epsilon) out.push_back({id, p, q - p + 1, dist});
        if (table.RowMin() > epsilon) break;
      }
    }
  }
  std::sort(out.begin(), out.end(), MatchLess);
  return out;
}

}  // namespace tswarp::mv
