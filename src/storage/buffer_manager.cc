#include "storage/buffer_manager.h"

#include <algorithm>
#include <bit>
#include <cstring>
#include <deque>
#include <list>
#include <mutex>
#include <shared_mutex>
#include <thread>
#include <unordered_map>
#include <utility>

#include "common/logging.h"

namespace tswarp::storage {

namespace internal {

/// One resident page. `pins`/`dirty` are atomics so guards can unpin and
/// mark without the shard lock; the policy fields (lru_it/in_lru,
/// ring_slot/ref) are guarded by the owning shard's mutex. Page data is
/// protected by `latch` (shared for read guards, exclusive for write
/// guards); an evictor needs neither — a victim has pins == 0, and the
/// release-decrement in Unpin makes the last holder's writes visible to
/// the evictor's acquire-load.
struct Frame {
  std::uint64_t page_no = 0;
  std::atomic<std::uint32_t> pins{0};
  std::atomic<bool> dirty{false};
  std::shared_mutex latch;
  std::vector<std::byte> data;

  // LRU state.
  std::list<Frame*>::iterator lru_it{};
  bool in_lru = false;
  // CLOCK state.
  std::size_t ring_slot = static_cast<std::size_t>(-1);
  bool ref = false;
};

/// Per-shard replacement policy; all methods run under the shard mutex.
/// PickVictim must never return a pinned frame.
class EvictionPolicy {
 public:
  virtual ~EvictionPolicy() = default;
  virtual void OnInsert(Frame* f) = 0;
  virtual void OnAccess(Frame* f) = 0;
  virtual void OnEvict(Frame* f) = 0;
  /// An unpinned victim, or nullptr when every resident frame is pinned.
  virtual Frame* PickVictim() = 0;
};

namespace {

bool Pinned(const Frame* f) {
  // Pins only increment under the shard mutex (which PickVictim callers
  // hold), so a stale nonzero read is conservative, never unsafe.
  return f->pins.load(std::memory_order_acquire) != 0;
}

class LruPolicy final : public EvictionPolicy {
 public:
  void OnInsert(Frame* f) override {
    lru_.push_front(f);
    f->lru_it = lru_.begin();
    f->in_lru = true;
  }
  void OnAccess(Frame* f) override {
    lru_.splice(lru_.begin(), lru_, f->lru_it);
  }
  void OnEvict(Frame* f) override {
    lru_.erase(f->lru_it);
    f->in_lru = false;
  }
  Frame* PickVictim() override {
    for (auto it = lru_.rbegin(); it != lru_.rend(); ++it) {
      if (!Pinned(*it)) return *it;
    }
    return nullptr;
  }

 private:
  std::list<Frame*> lru_;  // front = most recent.
};

class ClockPolicy final : public EvictionPolicy {
 public:
  void OnInsert(Frame* f) override {
    if (f->ring_slot == static_cast<std::size_t>(-1)) {
      f->ring_slot = ring_.size();
      ring_.push_back(f);
    }
    f->ref = true;
  }
  void OnAccess(Frame* f) override { f->ref = true; }
  void OnEvict(Frame*) override {
    // The slot is kept: an evicted frame is immediately reused for the
    // incoming page (OnInsert re-arms its ref bit).
  }
  Frame* PickVictim() override {
    // Two sweeps: the first clears ref bits, the second must then find an
    // unpinned frame if one exists.
    for (std::size_t step = 0; step < 2 * ring_.size(); ++step) {
      Frame* f = ring_[hand_];
      hand_ = (hand_ + 1) % ring_.size();
      if (Pinned(f)) continue;
      if (f->ref) {
        f->ref = false;
        continue;
      }
      return f;
    }
    return nullptr;
  }

 private:
  std::vector<Frame*> ring_;
  std::size_t hand_ = 0;
};

std::unique_ptr<EvictionPolicy> MakePolicy(EvictionPolicyKind kind) {
  if (kind == EvictionPolicyKind::kClock) {
    return std::make_unique<ClockPolicy>();
  }
  return std::make_unique<LruPolicy>();
}

constexpr std::uint64_t kNoPage = static_cast<std::uint64_t>(-1);

}  // namespace

struct Shard {
  std::mutex mu;
  std::unordered_map<std::uint64_t, Frame*> map;
  std::deque<Frame> frames;  // Stable addresses; grows, never shrinks.
  std::vector<Frame*> free_list;  // Frames orphaned by fault I/O errors.
  std::unique_ptr<EvictionPolicy> policy;
  std::size_t capacity = 0;
  BufferManager::Stats stats;  // Guarded by mu (except shard_conflicts).
  std::atomic<std::uint64_t> conflicts{0};  // try_lock failures.
};

}  // namespace internal

using internal::Frame;
using internal::Shard;

const char* EvictionPolicyKindToString(EvictionPolicyKind kind) {
  return kind == EvictionPolicyKind::kClock ? "clock" : "lru";
}

bool ParseEvictionPolicyKind(std::string_view text, EvictionPolicyKind* out) {
  if (text == "lru") {
    *out = EvictionPolicyKind::kLru;
    return true;
  }
  if (text == "clock") {
    *out = EvictionPolicyKind::kClock;
    return true;
  }
  return false;
}

BufferManager::Stats& BufferManager::Stats::operator+=(const Stats& other) {
  hits += other.hits;
  misses += other.misses;
  evictions += other.evictions;
  writebacks += other.writebacks;
  readaheads += other.readaheads;
  overflow_pins += other.overflow_pins;
  shard_conflicts += other.shard_conflicts;
  return *this;
}

// ---------------------------------------------------------------------------
// PageGuard
// ---------------------------------------------------------------------------

PageGuard::PageGuard(PageGuard&& other) noexcept
    : mgr_(other.mgr_), frame_(other.frame_), data_(other.data_),
      page_no_(other.page_no_), intent_(other.intent_) {
  other.mgr_ = nullptr;
  other.frame_ = nullptr;
  other.data_ = nullptr;
}

PageGuard& PageGuard::operator=(PageGuard&& other) noexcept {
  if (this != &other) {
    Release();
    mgr_ = other.mgr_;
    frame_ = other.frame_;
    data_ = other.data_;
    page_no_ = other.page_no_;
    intent_ = other.intent_;
    other.mgr_ = nullptr;
    other.frame_ = nullptr;
    other.data_ = nullptr;
  }
  return *this;
}

PageGuard::~PageGuard() { Release(); }

void PageGuard::Release() {
  if (frame_ != nullptr) {
    mgr_->Unpin(frame_, intent_);
    mgr_ = nullptr;
    frame_ = nullptr;
    data_ = nullptr;
  }
}

std::span<std::byte> PageGuard::mutable_bytes() {
  TSW_CHECK(intent_ == PinIntent::kWrite)
      << "mutable_bytes() requires a write pin";
  frame_->dirty.store(true, std::memory_order_relaxed);
  return std::span<std::byte>(data_, PagedFile::kPageSize);
}

// ---------------------------------------------------------------------------
// BufferManager
// ---------------------------------------------------------------------------

namespace {

std::size_t AutoShards(std::size_t capacity_pages) {
  const std::size_t hw = std::max<std::size_t>(
      1, static_cast<std::size_t>(std::thread::hardware_concurrency()));
  return std::max<std::size_t>(
      1, std::min({std::bit_ceil(hw), std::size_t{16}, capacity_pages}));
}

}  // namespace

BufferManager::BufferManager(PagedFile* file, BufferManagerOptions options)
    : file_(file), options_(options),
      logical_size_(file != nullptr ? file->SizeBytes() : 0),
      last_fault_page_(internal::kNoPage) {
  TSW_CHECK(file != nullptr);
  TSW_CHECK(options_.capacity_pages >= 1);
  std::size_t num_shards = options_.num_shards == 0
                               ? AutoShards(options_.capacity_pages)
                               : options_.num_shards;
  num_shards = std::max<std::size_t>(
      1, std::min(num_shards, options_.capacity_pages));
  options_.num_shards = num_shards;
  const std::size_t per_shard =
      (options_.capacity_pages + num_shards - 1) / num_shards;
  shards_.reserve(num_shards);
  for (std::size_t i = 0; i < num_shards; ++i) {
    auto shard = std::make_unique<Shard>();
    shard->capacity = per_shard;
    shard->policy = internal::MakePolicy(options_.eviction);
    shards_.push_back(std::move(shard));
  }
}

BufferManager::~BufferManager() = default;

Shard& BufferManager::ShardFor(std::uint64_t page_no) {
  return *shards_[page_no % shards_.size()];
}

StatusOr<PageGuard> BufferManager::Pin(std::uint64_t page_no,
                                       PinIntent intent) {
  return PinInternal(page_no, intent, /*allow_readahead=*/true,
                     /*is_readahead=*/false);
}

StatusOr<PageGuard> BufferManager::PinInternal(std::uint64_t page_no,
                                               PinIntent intent,
                                               bool allow_readahead,
                                               bool is_readahead) {
  Shard& shard = ShardFor(page_no);
  Frame* frame = nullptr;
  bool missed = false;
  std::uint64_t prev_fault = internal::kNoPage;
  {
    if (!shard.mu.try_lock()) {
// GCC 12 with -fsanitize=address,undefined mis-sizes the atomic behind
// this fetch_add and reports a bogus stringop-overflow writing "8 bytes
// into a region of size 0". The counter is a plain member of Shard; the
// store is in bounds. Suppress just this diagnostic for the call.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wstringop-overflow"
#endif
      shard.conflicts.fetch_add(1, std::memory_order_relaxed);
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic pop
#endif
      shard.mu.lock();
    }
    std::lock_guard<std::mutex> lock(shard.mu, std::adopt_lock);
    auto it = shard.map.find(page_no);
    if (it != shard.map.end()) {
      frame = it->second;
      ++shard.stats.hits;
      shard.policy->OnAccess(frame);
    } else {
      missed = true;
      ++shard.stats.misses;
      if (is_readahead) ++shard.stats.readaheads;
      // Find a frame: recycle an orphan, grow within budget, evict an
      // unpinned victim, or (all pinned) overflow the budget — a pinned
      // page is never evicted.
      if (!shard.free_list.empty()) {
        frame = shard.free_list.back();
        shard.free_list.pop_back();
      } else if (shard.frames.size() < shard.capacity) {
        frame = &shard.frames.emplace_back();
        frame->data.resize(PagedFile::kPageSize);
      } else if (Frame* victim = shard.policy->PickVictim();
                 victim != nullptr) {
        ++shard.stats.evictions;
        shard.map.erase(victim->page_no);
        shard.policy->OnEvict(victim);
        if (victim->dirty.load(std::memory_order_acquire)) {
          ++shard.stats.writebacks;
          const Status s = file_->WritePage(victim->page_no, victim->data);
          if (!s.ok()) {
            shard.free_list.push_back(victim);
            return s;
          }
          victim->dirty.store(false, std::memory_order_relaxed);
        }
        frame = victim;
      } else {
        ++shard.stats.overflow_pins;
        frame = &shard.frames.emplace_back();
        frame->data.resize(PagedFile::kPageSize);
      }
      frame->page_no = page_no;
      frame->dirty.store(false, std::memory_order_relaxed);
      const Status s = file_->ReadPage(page_no, frame->data);
      if (!s.ok()) {
        shard.free_list.push_back(frame);
        return s;
      }
      shard.map[page_no] = frame;
      shard.policy->OnInsert(frame);
      prev_fault =
          last_fault_page_.exchange(page_no, std::memory_order_relaxed);
    }
    frame->pins.fetch_add(1, std::memory_order_relaxed);
  }

  // The pin alone protects the frame from eviction, so the sequential
  // read-ahead can fire here — before the frame latch is taken. Prefetch
  // pins must never nest under a held latch: frames are reused across
  // pages, so latch-under-latch nesting would weave cycles into the
  // latch-order graph over time.
  if (missed && allow_readahead && intent == PinIntent::kRead &&
      options_.readahead_pages > 0 && prev_fault != internal::kNoPage &&
      prev_fault + 1 == page_no) {
    ReadAhead(page_no + 1, options_.readahead_pages);
  }

  // The latch serializes data access. Taken outside the shard lock so a
  // blocked reader (writer active on this page) does not stall the whole
  // shard.
  if (intent == PinIntent::kRead) {
    frame->latch.lock_shared();
  } else {
    frame->latch.lock();
  }
  return PageGuard(this, frame, frame->data.data(), page_no, intent);
}

void BufferManager::Unpin(Frame* frame, PinIntent intent) {
  if (intent == PinIntent::kRead) {
    frame->latch.unlock_shared();
  } else {
    frame->latch.unlock();
  }
  frame->pins.fetch_sub(1, std::memory_order_release);
}

void BufferManager::ReadAhead(std::uint64_t first_page,
                              std::size_t num_pages) {
  // Never prefetch past the known end of the file: those pins would
  // fault zero pages and inflate the miss count for nothing.
  const std::uint64_t end_page =
      (logical_size_.load(std::memory_order_acquire) +
       PagedFile::kPageSize - 1) /
      PagedFile::kPageSize;
  for (std::size_t i = 0; i < num_pages; ++i) {
    if (first_page + i >= end_page) return;
    // Pin-and-drop: faults the page (counted as a readahead on miss) and
    // leaves it resident. Errors are dropped — a later real Pin reports.
    auto guard = PinInternal(first_page + i, PinIntent::kRead,
                             /*allow_readahead=*/false,
                             /*is_readahead=*/true);
    if (!guard.ok()) return;
  }
}

Status BufferManager::Read(std::uint64_t offset, void* out, std::size_t n) {
  auto* dst = static_cast<std::byte*>(out);
  while (n > 0) {
    const std::uint64_t page_no = offset / PagedFile::kPageSize;
    const std::size_t in_page = offset % PagedFile::kPageSize;
    const std::size_t chunk =
        std::min(n, PagedFile::kPageSize - in_page);
    // Read-ahead stays armed for every chunk: a long scan misses at the
    // end of each prefetched run and re-triggers the next window.
    TSW_ASSIGN_OR_RETURN(
        PageGuard guard,
        PinInternal(page_no, PinIntent::kRead,
                    /*allow_readahead=*/true, /*is_readahead=*/false));
    std::memcpy(dst, guard.bytes().data() + in_page, chunk);
    dst += chunk;
    offset += chunk;
    n -= chunk;
  }
  return Status::OK();
}

Status BufferManager::Write(std::uint64_t offset, const void* in,
                            std::size_t n) {
  const auto* src = static_cast<const std::byte*>(in);
  while (n > 0) {
    const std::uint64_t page_no = offset / PagedFile::kPageSize;
    const std::size_t in_page = offset % PagedFile::kPageSize;
    const std::size_t chunk =
        std::min(n, PagedFile::kPageSize - in_page);
    TSW_ASSIGN_OR_RETURN(
        PageGuard guard,
        PinInternal(page_no, PinIntent::kWrite,
                    /*allow_readahead=*/false, /*is_readahead=*/false));
    std::memcpy(guard.mutable_bytes().data() + in_page, src, chunk);
    guard.Release();
    src += chunk;
    offset += chunk;
    n -= chunk;
    // Publish the high-water mark.
    std::uint64_t cur = logical_size_.load(std::memory_order_relaxed);
    while (offset > cur && !logical_size_.compare_exchange_weak(
                               cur, offset, std::memory_order_release,
                               std::memory_order_relaxed)) {
    }
  }
  return Status::OK();
}

Status BufferManager::Flush() {
  for (auto& shard_ptr : shards_) {
    Shard& shard = *shard_ptr;
    std::lock_guard<std::mutex> lock(shard.mu);
    for (Frame& f : shard.frames) {
      if (!f.dirty.load(std::memory_order_acquire)) continue;
      // A shared latch keeps an in-flight writer from racing the
      // writeback; read guards are compatible.
      std::shared_lock<std::shared_mutex> latch(f.latch);
      ++shard.stats.writebacks;
      TSW_RETURN_IF_ERROR(file_->WritePage(f.page_no, f.data));
      f.dirty.store(false, std::memory_order_relaxed);
    }
  }
  return file_->Sync();
}

BufferManager::Stats BufferManager::stats() const {
  Stats total;
  for (const auto& shard_ptr : shards_) {
    Shard& shard = *shard_ptr;
    std::lock_guard<std::mutex> lock(shard.mu);
    Stats s = shard.stats;
    s.shard_conflicts = shard.conflicts.load(std::memory_order_relaxed);
    total += s;
  }
  return total;
}

std::vector<BufferManager::Stats> BufferManager::ShardStats() const {
  std::vector<Stats> out;
  out.reserve(shards_.size());
  for (const auto& shard_ptr : shards_) {
    Shard& shard = *shard_ptr;
    std::lock_guard<std::mutex> lock(shard.mu);
    Stats s = shard.stats;
    s.shard_conflicts = shard.conflicts.load(std::memory_order_relaxed);
    out.push_back(s);
  }
  return out;
}

}  // namespace tswarp::storage
