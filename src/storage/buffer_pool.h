#ifndef TSWARP_STORAGE_BUFFER_POOL_H_
#define TSWARP_STORAGE_BUFFER_POOL_H_

#include <cstddef>
#include <cstdint>
#include <list>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "storage/paged_file.h"

namespace tswarp::storage {

/// LRU page cache in front of a PagedFile. Byte-granular Read()/Write()
/// copy across page boundaries, so callers work with plain records while
/// only `capacity_pages` pages of the file are resident — the "disk-based
/// representation in limited main memory" of the paper's index
/// construction and traversal.
///
/// Thread safety: Read(), Write(), Flush(), stats() and logical_size() are
/// serialized on an internal mutex, so a pool may be shared by concurrent
/// search workers (the parallel tree searchers traverse one DiskSuffixTree
/// from many threads). The Stats counters are updated under the same lock
/// and therefore stay exact under concurrency. Individual operations are
/// atomic; callers needing multi-operation atomicity (read-modify-write of
/// one record) must add their own coordination.
class BufferPool {
 public:
  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
    std::uint64_t writebacks = 0;
  };

  /// `file` must outlive the pool. `capacity_pages` >= 1.
  BufferPool(PagedFile* file, std::size_t capacity_pages);

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  /// Reads `n` bytes at byte `offset` into `out`.
  Status Read(std::uint64_t offset, void* out, std::size_t n);

  /// Writes `n` bytes at byte `offset`, extending the file as needed.
  Status Write(std::uint64_t offset, const void* in, std::size_t n);

  /// Writes all dirty pages back to the file.
  Status Flush();

  Stats stats() const {
    std::lock_guard<std::mutex> lock(mu_);
    return stats_;
  }
  std::size_t capacity_pages() const { return capacity_; }

  /// Logical end of written data (high-water byte offset).
  std::uint64_t logical_size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return logical_size_;
  }

 private:
  struct Frame {
    std::uint64_t page_no = 0;
    bool dirty = false;
    std::vector<std::byte> data;
  };

  /// Returns the frame index holding `page_no`, faulting it in and
  /// evicting the LRU page if needed. Caller must hold mu_.
  StatusOr<std::size_t> Pin(std::uint64_t page_no);

  /// Serializes all pool state (frames, LRU, map, stats, logical size).
  mutable std::mutex mu_;
  PagedFile* file_;
  std::size_t capacity_;
  std::vector<Frame> frames_;
  // LRU: front = most recent. Values are frame indices.
  std::list<std::size_t> lru_;
  std::unordered_map<std::uint64_t, std::list<std::size_t>::iterator>
      page_map_;
  Stats stats_;
  std::uint64_t logical_size_ = 0;
};

}  // namespace tswarp::storage

#endif  // TSWARP_STORAGE_BUFFER_POOL_H_
