#include "storage/mmap_file.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>
#include <vector>

#include "common/logging.h"

namespace tswarp::storage {
namespace {

Status ErrnoStatus(const std::string& op, const std::string& path) {
  return Status::IOError(op + " " + path + ": " + std::strerror(errno));
}

}  // namespace

const char* IoModeToString(IoMode mode) {
  switch (mode) {
    case IoMode::kBuffered:
      return "buffered";
    case IoMode::kMmap:
      return "mmap";
  }
  return "unknown";
}

StatusOr<IoMode> ParseIoMode(std::string_view text) {
  if (text == "buffered") return IoMode::kBuffered;
  if (text == "mmap") return IoMode::kMmap;
  return Status::InvalidArgument("unknown io mode '" + std::string(text) +
                                 "' (expected mmap or buffered)");
}

// ---------------------------------------------------------------------------
// MappedFile
// ---------------------------------------------------------------------------

StatusOr<MappedFile> MappedFile::Open(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) return ErrnoStatus("open", path);

  struct stat st{};
  if (::fstat(fd, &st) != 0) {
    const Status s = ErrnoStatus("fstat", path);
    ::close(fd);
    return s;
  }

  MappedFile file;
  file.path_ = path;
  file.size_ = static_cast<std::size_t>(st.st_size);
  if (file.size_ > 0) {
    void* data =
        ::mmap(nullptr, file.size_, PROT_READ, MAP_SHARED, fd, 0);
    if (data == MAP_FAILED) {
      const Status s = ErrnoStatus("mmap", path);
      ::close(fd);
      return s;
    }
    file.data_ = data;
  }
  // The mapping keeps the file alive; the descriptor is no longer needed.
  ::close(fd);
  return file;
}

MappedFile::~MappedFile() { Reset(); }

MappedFile::MappedFile(MappedFile&& other) noexcept
    : path_(std::move(other.path_)), data_(other.data_), size_(other.size_) {
  other.data_ = nullptr;
  other.size_ = 0;
}

MappedFile& MappedFile::operator=(MappedFile&& other) noexcept {
  if (this != &other) {
    Reset();
    path_ = std::move(other.path_);
    data_ = other.data_;
    size_ = other.size_;
    other.data_ = nullptr;
    other.size_ = 0;
  }
  return *this;
}

void MappedFile::Reset() {
  if (data_ != nullptr) {
    ::munmap(data_, size_);
    data_ = nullptr;
  }
  size_ = 0;
}

void MappedFile::Advise(AccessHint hint) const {
  if (data_ == nullptr) return;
  int advice = MADV_NORMAL;
  switch (hint) {
    case AccessHint::kNormal:
      advice = MADV_NORMAL;
      break;
    case AccessHint::kSequential:
      advice = MADV_SEQUENTIAL;
      break;
    case AccessHint::kRandom:
      advice = MADV_RANDOM;
      break;
    case AccessHint::kWillNeed:
      advice = MADV_WILLNEED;
      break;
  }
  // Best-effort: a kernel that rejects the advice still serves the pages.
  (void)::madvise(data_, size_, advice);
}

std::uint64_t MappedFile::ResidentBytes() const {
  if (data_ == nullptr) return 0;
  const std::size_t page = static_cast<std::size_t>(::sysconf(_SC_PAGESIZE));
  const std::size_t num_pages = (size_ + page - 1) / page;
  std::vector<unsigned char> residency(num_pages);
  if (::mincore(data_, size_, residency.data()) != 0) return 0;
  std::uint64_t resident = 0;
  for (std::size_t i = 0; i < num_pages; ++i) {
    if (residency[i] & 1u) {
      const std::size_t extent =
          (i + 1 == num_pages) ? size_ - i * page : page;
      resident += extent;
    }
  }
  return resident;
}

// ---------------------------------------------------------------------------
// MappedRegion
// ---------------------------------------------------------------------------

StatusOr<MappedRegion> MappedRegion::Create(const MappedFile& file,
                                            std::size_t record_size,
                                            std::uint64_t record_count,
                                            const std::string& what) {
  TSW_CHECK(record_size > 0);
  const std::uint64_t need = record_count * record_size;
  if (file.size_bytes() < need) {
    return Status::Corruption(
        "truncated " + what + " region in " + file.path() + ": need " +
        std::to_string(need) + " bytes, file has " +
        std::to_string(file.size_bytes()));
  }
  return MappedRegion(file.bytes().data(), record_size, record_count);
}

const std::byte* MappedRegion::RecordAt(std::uint64_t index) const {
  TSW_DCHECK(index < record_count_);
  return data_ + index * record_size_;
}

// ---------------------------------------------------------------------------
// SyncDir
// ---------------------------------------------------------------------------

Status SyncDir(const std::string& dir) {
  const std::string path = dir.empty() ? "." : dir;
  const int fd = ::open(path.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (fd < 0) return ErrnoStatus("open dir", path);
  Status result = Status::OK();
  if (::fsync(fd) != 0) result = ErrnoStatus("fsync dir", path);
  ::close(fd);
  return result;
}

}  // namespace tswarp::storage
