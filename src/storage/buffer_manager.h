#ifndef TSWARP_STORAGE_BUFFER_MANAGER_H_
#define TSWARP_STORAGE_BUFFER_MANAGER_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "storage/paged_file.h"

namespace tswarp::storage {

namespace internal {
struct Frame;
struct Shard;
}  // namespace internal

/// Replacement policy of one buffer-manager shard.
enum class EvictionPolicyKind {
  kLru,    // Strict least-recently-used (intrusive list).
  kClock,  // Second-chance clock sweep (one ref bit per frame).
};

const char* EvictionPolicyKindToString(EvictionPolicyKind kind);

/// Parses "lru" / "clock" (case-sensitive). Returns false on anything else.
bool ParseEvictionPolicyKind(std::string_view text, EvictionPolicyKind* out);

/// Declared intent of a page pin. Read pins share the page with other
/// readers; a write pin is exclusive and marks the page dirty on access
/// through mutable_bytes().
enum class PinIntent { kRead, kWrite };

struct BufferManagerOptions {
  /// Total frame budget across all shards (>= 1). A shard may temporarily
  /// exceed its slice when every resident frame is pinned (see
  /// Stats::overflow_pins) — pinned pages are never evicted.
  std::size_t capacity_pages = 256;

  /// Lock shards (pages are distributed by page number). 0 = auto: the
  /// hardware thread count rounded up to a power of two, capped at 16 and
  /// at capacity_pages. 1 degenerates to the classic single-mutex pool.
  std::size_t num_shards = 0;

  EvictionPolicyKind eviction = EvictionPolicyKind::kLru;

  /// Sequential read-ahead window: when a faulted page directly follows
  /// the previously faulted one (or an explicit ReadAhead() hint is
  /// given), up to this many subsequent pages are faulted eagerly.
  /// 0 disables read-ahead.
  std::size_t readahead_pages = 0;
};

class BufferManager;

/// RAII pin on one page frame. While a guard lives, the page cannot be
/// evicted and its bytes() span stays valid. Read guards hold the frame
/// latch shared (any number of concurrent readers), write guards hold it
/// exclusively. Destruction (or Release()) unpins.
///
/// Do not hold a *write* guard while calling back into the same manager
/// (Pin/Read/Write/Flush): Flush and eviction writeback take the frame
/// latch shared, so an exclusive holder that re-enters the manager could
/// deadlock against them. Read guards may be held across further pins.
class PageGuard {
 public:
  PageGuard() = default;
  PageGuard(PageGuard&& other) noexcept;
  PageGuard& operator=(PageGuard&& other) noexcept;
  PageGuard(const PageGuard&) = delete;
  PageGuard& operator=(const PageGuard&) = delete;
  ~PageGuard();

  bool valid() const { return frame_ != nullptr; }
  std::uint64_t page_no() const { return page_no_; }

  /// Zero-copy view of the whole page (kPageSize bytes).
  std::span<const std::byte> bytes() const {
    return std::span<const std::byte>(data_, PagedFile::kPageSize);
  }

  /// Writable view; requires PinIntent::kWrite. Marks the page dirty.
  std::span<std::byte> mutable_bytes();

  /// Unpins now instead of at destruction.
  void Release();

 private:
  friend class BufferManager;
  PageGuard(BufferManager* mgr, internal::Frame* frame, std::byte* data,
            std::uint64_t page_no, PinIntent intent)
      : mgr_(mgr), frame_(frame), data_(data), page_no_(page_no),
        intent_(intent) {}

  BufferManager* mgr_ = nullptr;
  internal::Frame* frame_ = nullptr;
  std::byte* data_ = nullptr;
  std::uint64_t page_no_ = 0;
  PinIntent intent_ = PinIntent::kRead;
};

/// Sharded pin-based page cache in front of a PagedFile — the successor
/// of the single-mutex LRU BufferPool. Pages are distributed over N
/// independently locked shards, each with its own frame table and
/// eviction policy state, so concurrent tree searchers only contend when
/// they touch pages of the same shard. Pin() hands out zero-copy
/// PageGuards; the byte-granular Read()/Write() shim preserves the old
/// record-copy interface for writers that patch records in place.
///
/// Thread safety: all public methods may be called concurrently. Shard
/// metadata (frame table, policy state, stats) is serialized per shard;
/// page *data* is protected by a per-frame shared latch held by guards
/// (shared for kRead, exclusive for kWrite), so readers scale and a
/// writer never races a reader byte-wise. Fault I/O runs under the
/// owning shard's lock only, so a miss in one shard never stalls hits in
/// another. Stats are exact.
class BufferManager {
 public:
  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
    std::uint64_t writebacks = 0;
    /// Pages faulted eagerly by the sequential read-ahead.
    std::uint64_t readaheads = 0;
    /// Pins served past the shard budget because every resident frame of
    /// the shard was pinned (the pool never evicts a pinned page).
    std::uint64_t overflow_pins = 0;
    /// Shard-mutex acquisitions that found the lock already held — the
    /// contention the sharding exists to dilute.
    std::uint64_t shard_conflicts = 0;

    Stats& operator+=(const Stats& other);
  };

  /// `file` must outlive the manager.
  BufferManager(PagedFile* file, BufferManagerOptions options);

  /// Convenience: capacity only, defaults for everything else.
  BufferManager(PagedFile* file, std::size_t capacity_pages)
      : BufferManager(file, MakeOptions(capacity_pages)) {}

  BufferManager(const BufferManager&) = delete;
  BufferManager& operator=(const BufferManager&) = delete;
  ~BufferManager();

  /// Pins `page_no`, faulting it in if absent, and returns a guard whose
  /// bytes() views the frame directly. Blocks while a conflicting latch
  /// holder (writer vs. anyone) is active on the same page.
  StatusOr<PageGuard> Pin(std::uint64_t page_no, PinIntent intent);

  /// Faults up to `num_pages` pages starting at `first_page` without
  /// pinning them (best-effort; errors are ignored, a real Pin will
  /// surface them). Cheap for already-resident pages.
  void ReadAhead(std::uint64_t first_page, std::size_t num_pages);

  /// Byte-granular compatibility shim over Pin: copies `n` bytes at byte
  /// `offset` into `out`, crossing page (and shard) boundaries as needed.
  Status Read(std::uint64_t offset, void* out, std::size_t n);

  /// Copies `n` bytes at byte `offset` into the pool, extending the file
  /// as needed; pages become dirty and are written back on eviction or
  /// Flush().
  Status Write(std::uint64_t offset, const void* in, std::size_t n);

  /// Writes all dirty pages back and syncs the file.
  Status Flush();

  /// Aggregate statistics over all shards.
  Stats stats() const;

  /// Per-shard breakdown (index = shard id); sums to stats().
  std::vector<Stats> ShardStats() const;

  std::size_t capacity_pages() const { return options_.capacity_pages; }
  std::size_t num_shards() const { return shards_.size(); }
  EvictionPolicyKind eviction_policy() const { return options_.eviction; }

  /// Logical end of written data (high-water byte offset).
  std::uint64_t logical_size() const {
    return logical_size_.load(std::memory_order_acquire);
  }

 private:
  friend class PageGuard;

  static BufferManagerOptions MakeOptions(std::size_t capacity_pages) {
    BufferManagerOptions o;
    o.capacity_pages = capacity_pages;
    return o;
  }

  internal::Shard& ShardFor(std::uint64_t page_no);

  /// Pin without triggering further read-ahead (used by ReadAhead itself
  /// and by the shim once it has hinted the full range).
  StatusOr<PageGuard> PinInternal(std::uint64_t page_no, PinIntent intent,
                                  bool allow_readahead,
                                  bool is_readahead);

  void Unpin(internal::Frame* frame, PinIntent intent);

  PagedFile* file_;
  BufferManagerOptions options_;
  std::vector<std::unique_ptr<internal::Shard>> shards_;
  std::atomic<std::uint64_t> logical_size_;
  /// Last faulted page, for sequential-run detection (~0 = none yet).
  std::atomic<std::uint64_t> last_fault_page_;
};

}  // namespace tswarp::storage

#endif  // TSWARP_STORAGE_BUFFER_MANAGER_H_
