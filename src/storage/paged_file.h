#ifndef TSWARP_STORAGE_PAGED_FILE_H_
#define TSWARP_STORAGE_PAGED_FILE_H_

#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <mutex>
#include <span>
#include <string>

#include "common/status.h"

namespace tswarp::storage {

/// Fixed-size-page file abstraction beneath the buffer manager. Pages are
/// kPageSize bytes; reading a page beyond the current end yields zeros
/// (pages come into existence when first written).
///
/// Thread safety: ReadPage, WritePage, Sync and SizeBytes are serialized
/// on an internal mutex, so the sharded buffer manager may fault pages
/// from several shards concurrently. (The stdio seek+transfer pair must
/// be atomic; per-call stdio locking is not enough.)
class PagedFile {
 public:
  static constexpr std::size_t kPageSize = 4096;

  /// Creates (truncates) a file for read/write.
  static StatusOr<PagedFile> Create(const std::string& path);

  /// Opens an existing file; `writable` controls write access.
  static StatusOr<PagedFile> Open(const std::string& path, bool writable);

  PagedFile(PagedFile&&) = default;
  PagedFile& operator=(PagedFile&&) = default;
  PagedFile(const PagedFile&) = delete;
  PagedFile& operator=(const PagedFile&) = delete;

  /// Reads page `page_no` into `out` (kPageSize bytes). Beyond-EOF bytes
  /// are zero-filled.
  Status ReadPage(std::uint64_t page_no, std::span<std::byte> out);

  /// Writes page `page_no` from `in` (kPageSize bytes), extending the file
  /// as needed.
  Status WritePage(std::uint64_t page_no, std::span<const std::byte> in);

  Status Sync();

  /// Size of the file in bytes (as last observed).
  std::uint64_t SizeBytes() const {
    std::lock_guard<std::mutex> lock(*io_mu_);
    return size_bytes_;
  }

  const std::string& path() const { return path_; }

 private:
  struct Closer {
    void operator()(std::FILE* f) const {
      if (f != nullptr) std::fclose(f);
    }
  };

  PagedFile(std::string path, std::FILE* f, std::uint64_t size)
      : path_(std::move(path)), file_(f), size_bytes_(size),
        io_mu_(std::make_unique<std::mutex>()) {}

  std::string path_;
  std::unique_ptr<std::FILE, Closer> file_;
  std::uint64_t size_bytes_ = 0;
  /// Serializes the seek+transfer pairs and size_bytes_. Heap-allocated so
  /// PagedFile stays movable.
  std::unique_ptr<std::mutex> io_mu_;
};

}  // namespace tswarp::storage

#endif  // TSWARP_STORAGE_PAGED_FILE_H_
