#ifndef TSWARP_STORAGE_MMAP_FILE_H_
#define TSWARP_STORAGE_MMAP_FILE_H_

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <string_view>

#include "common/status.h"

namespace tswarp::storage {

/// How a disk tree bundle is read at query time.
///   kBuffered — every read pins pages through the sharded BufferManager
///               (private page cache, pin/unpin per touch). Required for
///               construction, merges, and v1 bundles.
///   kMmap     — the region files are mapped read-only and cursors read
///               straight out of the mapping: no pins, no private cache,
///               and the kernel page cache is shared across processes.
///               Requires a finalized v2 bundle.
enum class IoMode {
  kBuffered,
  kMmap,
};

const char* IoModeToString(IoMode mode);

/// Parses "buffered" / "mmap" (case-sensitive, the CLI spelling).
StatusOr<IoMode> ParseIoMode(std::string_view text);

/// Access-pattern hints forwarded to madvise(). Best-effort: advice
/// failures are ignored (the mapping stays correct either way).
enum class AccessHint {
  kNormal,
  kSequential,
  kRandom,
  kWillNeed,
};

/// A whole file mapped read-only into the address space. Move-only; the
/// mapping lives until destruction, so any pointer into bytes() is valid
/// for the lifetime of the MappedFile. Empty files map to an empty span
/// (no mmap call — mapping zero bytes is undefined).
///
/// This is the only place in the codebase that calls mmap / munmap /
/// madvise / mincore; everything above works with spans.
class MappedFile {
 public:
  static StatusOr<MappedFile> Open(const std::string& path);

  MappedFile() = default;
  ~MappedFile();
  MappedFile(MappedFile&& other) noexcept;
  MappedFile& operator=(MappedFile&& other) noexcept;
  MappedFile(const MappedFile&) = delete;
  MappedFile& operator=(const MappedFile&) = delete;

  std::span<const std::byte> bytes() const {
    return {static_cast<const std::byte*>(data_), size_};
  }
  std::string_view view() const {
    return {static_cast<const char*>(data_), size_};
  }
  std::size_t size_bytes() const { return size_; }
  const std::string& path() const { return path_; }

  /// Forwards `hint` to madvise over the whole mapping. Best-effort.
  void Advise(AccessHint hint) const;

  /// Bytes of the mapping currently resident in the page cache (via
  /// mincore). Best-effort: returns 0 if the probe fails or the file is
  /// empty. Cost is one syscall plus one byte per mapped page, so keep it
  /// off hot paths (stats endpoints only).
  std::uint64_t ResidentBytes() const;

 private:
  void Reset();

  std::string path_;
  void* data_ = nullptr;
  std::size_t size_ = 0;
};

/// A validated view of fixed-size records inside a MappedFile. Creation
/// checks up front that `record_count * record_size` bytes actually exist
/// in the mapping, so a truncated file fails with Status::Corruption at
/// open time instead of SIGBUS-ing mid-query.
///
/// MappedRegion does not own the mapping; the MappedFile it was created
/// from must outlive it.
class MappedRegion {
 public:
  static StatusOr<MappedRegion> Create(const MappedFile& file,
                                       std::size_t record_size,
                                       std::uint64_t record_count,
                                       const std::string& what);

  MappedRegion() = default;

  /// Pointer to record `index`; valid for the mapping's lifetime.
  const std::byte* RecordAt(std::uint64_t index) const;

  const std::byte* data() const { return data_; }
  std::uint64_t record_count() const { return record_count_; }
  std::size_t record_size() const { return record_size_; }

 private:
  MappedRegion(const std::byte* data, std::size_t record_size,
               std::uint64_t record_count)
      : data_(data), record_size_(record_size), record_count_(record_count) {}

  const std::byte* data_ = nullptr;
  std::size_t record_size_ = 0;
  std::uint64_t record_count_ = 0;
};

/// fsyncs a directory so a just-renamed file inside it survives power
/// loss. Linux requires this for durable renames; the rename itself only
/// orders the metadata, it does not persist it.
Status SyncDir(const std::string& dir);

}  // namespace tswarp::storage

#endif  // TSWARP_STORAGE_MMAP_FILE_H_
