#include "storage/paged_file.h"

#include <algorithm>
#include <cstring>

#include "common/logging.h"

namespace tswarp::storage {

StatusOr<PagedFile> PagedFile::Create(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "wb+");
  if (f == nullptr) return Status::IOError("cannot create " + path);
  return PagedFile(path, f, 0);
}

StatusOr<PagedFile> PagedFile::Open(const std::string& path, bool writable) {
  std::FILE* f = std::fopen(path.c_str(), writable ? "rb+" : "rb");
  if (f == nullptr) return Status::IOError("cannot open " + path);
  if (std::fseek(f, 0, SEEK_END) != 0) {
    std::fclose(f);
    return Status::IOError("cannot seek " + path);
  }
  const long size = std::ftell(f);
  if (size < 0) {
    std::fclose(f);
    return Status::IOError("cannot tell " + path);
  }
  return PagedFile(path, f, static_cast<std::uint64_t>(size));
}

Status PagedFile::ReadPage(std::uint64_t page_no, std::span<std::byte> out) {
  TSW_CHECK(out.size() == kPageSize);
  std::lock_guard<std::mutex> lock(*io_mu_);
  const std::uint64_t offset = page_no * kPageSize;
  if (offset >= size_bytes_) {
    std::memset(out.data(), 0, kPageSize);
    return Status::OK();
  }
  if (std::fseek(file_.get(), static_cast<long>(offset), SEEK_SET) != 0) {
    return Status::IOError("seek failed in " + path_);
  }
  const std::size_t want =
      static_cast<std::size_t>(std::min<std::uint64_t>(
          kPageSize, size_bytes_ - offset));
  const std::size_t got = std::fread(out.data(), 1, want, file_.get());
  if (got != want) return Status::IOError("short read in " + path_);
  if (got < kPageSize) std::memset(out.data() + got, 0, kPageSize - got);
  return Status::OK();
}

Status PagedFile::WritePage(std::uint64_t page_no,
                            std::span<const std::byte> in) {
  TSW_CHECK(in.size() == kPageSize);
  std::lock_guard<std::mutex> lock(*io_mu_);
  const std::uint64_t offset = page_no * kPageSize;
  if (std::fseek(file_.get(), static_cast<long>(offset), SEEK_SET) != 0) {
    return Status::IOError("seek failed in " + path_);
  }
  if (std::fwrite(in.data(), 1, kPageSize, file_.get()) != kPageSize) {
    return Status::IOError("short write in " + path_);
  }
  size_bytes_ = std::max(size_bytes_, offset + kPageSize);
  return Status::OK();
}

Status PagedFile::Sync() {
  std::lock_guard<std::mutex> lock(*io_mu_);
  if (std::fflush(file_.get()) != 0) {
    return Status::IOError("flush failed in " + path_);
  }
  return Status::OK();
}

}  // namespace tswarp::storage
