#include "storage/buffer_pool.h"

#include <algorithm>
#include <cstring>
#include <mutex>

#include "common/logging.h"

namespace tswarp::storage {

BufferPool::BufferPool(PagedFile* file, std::size_t capacity_pages)
    : file_(file), capacity_(capacity_pages),
      logical_size_(file->SizeBytes()) {
  TSW_CHECK(file != nullptr);
  TSW_CHECK(capacity_pages >= 1);
  frames_.reserve(capacity_);
}

StatusOr<std::size_t> BufferPool::Pin(std::uint64_t page_no) {
  auto it = page_map_.find(page_no);
  if (it != page_map_.end()) {
    ++stats_.hits;
    // Move to front of LRU.
    lru_.splice(lru_.begin(), lru_, it->second);
    return *it->second;
  }
  ++stats_.misses;
  std::size_t frame_idx;
  if (frames_.size() < capacity_) {
    frame_idx = frames_.size();
    frames_.emplace_back();
    frames_.back().data.resize(PagedFile::kPageSize);
  } else {
    // Evict least-recently-used.
    frame_idx = lru_.back();
    lru_.pop_back();
    Frame& victim = frames_[frame_idx];
    page_map_.erase(victim.page_no);
    ++stats_.evictions;
    if (victim.dirty) {
      ++stats_.writebacks;
      TSW_RETURN_IF_ERROR(file_->WritePage(victim.page_no, victim.data));
      victim.dirty = false;
    }
  }
  Frame& frame = frames_[frame_idx];
  frame.page_no = page_no;
  frame.dirty = false;
  TSW_RETURN_IF_ERROR(file_->ReadPage(page_no, frame.data));
  lru_.push_front(frame_idx);
  page_map_[page_no] = lru_.begin();
  return frame_idx;
}

Status BufferPool::Read(std::uint64_t offset, void* out, std::size_t n) {
  std::lock_guard<std::mutex> lock(mu_);
  auto* dst = static_cast<std::byte*>(out);
  while (n > 0) {
    const std::uint64_t page_no = offset / PagedFile::kPageSize;
    const std::size_t in_page = offset % PagedFile::kPageSize;
    const std::size_t chunk = std::min(n, PagedFile::kPageSize - in_page);
    TSW_ASSIGN_OR_RETURN(const std::size_t frame_idx, Pin(page_no));
    std::memcpy(dst, frames_[frame_idx].data.data() + in_page, chunk);
    dst += chunk;
    offset += chunk;
    n -= chunk;
  }
  return Status::OK();
}

Status BufferPool::Write(std::uint64_t offset, const void* in,
                         std::size_t n) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto* src = static_cast<const std::byte*>(in);
  while (n > 0) {
    const std::uint64_t page_no = offset / PagedFile::kPageSize;
    const std::size_t in_page = offset % PagedFile::kPageSize;
    const std::size_t chunk = std::min(n, PagedFile::kPageSize - in_page);
    TSW_ASSIGN_OR_RETURN(const std::size_t frame_idx, Pin(page_no));
    std::memcpy(frames_[frame_idx].data.data() + in_page, src, chunk);
    frames_[frame_idx].dirty = true;
    src += chunk;
    offset += chunk;
    n -= chunk;
    logical_size_ = std::max(logical_size_, offset);
  }
  return Status::OK();
}

Status BufferPool::Flush() {
  std::lock_guard<std::mutex> lock(mu_);
  for (Frame& f : frames_) {
    if (f.dirty) {
      ++stats_.writebacks;
      TSW_RETURN_IF_ERROR(file_->WritePage(f.page_no, f.data));
      f.dirty = false;
    }
  }
  return file_->Sync();
}

}  // namespace tswarp::storage
