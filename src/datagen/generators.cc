#include "datagen/generators.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "common/random.h"

namespace tswarp::datagen {

seqdb::SequenceDatabase GenerateRandomWalks(const RandomWalkOptions& options) {
  TSW_CHECK(options.num_sequences > 0 && options.avg_length > 1);
  Rng rng(options.seed);
  seqdb::SequenceDatabase db;
  for (std::size_t i = 0; i < options.num_sequences; ++i) {
    const auto jitter = static_cast<std::int64_t>(options.length_jitter);
    const std::size_t len = static_cast<std::size_t>(std::max<std::int64_t>(
        2, static_cast<std::int64_t>(options.avg_length) +
               (jitter > 0 ? rng.UniformInt(-jitter, jitter) : 0)));
    seqdb::Sequence s;
    s.reserve(len);
    Value v = rng.Uniform(options.start_min, options.start_max);
    s.push_back(v);
    for (std::size_t p = 1; p < len; ++p) {
      v += rng.Gaussian(0.0, options.step_stddev);
      s.push_back(v);
    }
    db.Add(std::move(s));
  }
  return db;
}

seqdb::SequenceDatabase GenerateStocks(const StockOptions& options) {
  TSW_CHECK(options.num_sequences > 0);
  Rng rng(options.seed);
  seqdb::SequenceDatabase db;
  for (std::size_t i = 0; i < options.num_sequences; ++i) {
    const std::size_t len = static_cast<std::size_t>(std::max<double>(
        static_cast<double>(options.min_length),
        std::round(rng.Gaussian(static_cast<double>(options.avg_length),
                                static_cast<double>(options.length_stddev)))));
    seqdb::Sequence s;
    s.reserve(len);
    Value price = rng.LogNormal(std::log(options.median_price),
                                options.price_sigma);
    price = std::max(price, options.min_price);
    s.push_back(price);
    for (std::size_t p = 1; p < len; ++p) {
      price += rng.Gaussian(0.0, options.daily_volatility * price);
      price = std::max(price, options.min_price);
      s.push_back(price);
    }
    db.Add(std::move(s));
  }
  return db;
}

seqdb::SequenceDatabase GenerateEcg(const EcgOptions& options) {
  TSW_CHECK(options.num_sequences > 0 && options.length > 4);
  Rng rng(options.seed);
  seqdb::SequenceDatabase db;
  for (std::size_t i = 0; i < options.num_sequences; ++i) {
    seqdb::Sequence s(options.length, options.baseline);
    // Slow baseline wander.
    const Value wander_phase = rng.Uniform(0.0, 6.28318);
    const Value wander_amp = rng.Uniform(0.0, 2.0);
    for (std::size_t p = 0; p < options.length; ++p) {
      s[p] += wander_amp *
              std::sin(wander_phase + 0.01 * static_cast<double>(p));
    }
    // Beats: narrow positive pulse with a small negative overshoot.
    double beat_at = rng.Uniform(0.0, options.beat_period);
    while (beat_at < static_cast<double>(options.length)) {
      const Value amp =
          options.pulse_amplitude * (0.9 + 0.2 * rng.Uniform(0.0, 1.0));
      for (std::size_t p = 0; p < options.length; ++p) {
        const double t = static_cast<double>(p) - beat_at;
        s[p] += amp * std::exp(-t * t / 2.0);         // QRS spike.
        s[p] -= 0.2 * amp * std::exp(-(t - 4) * (t - 4) / 18.0);  // T dip.
      }
      beat_at += options.beat_period + rng.Gaussian(0.0, options.period_jitter);
    }
    // Measurement noise.
    for (std::size_t p = 0; p < options.length; ++p) {
      s[p] += rng.Gaussian(0.0, options.noise_stddev);
    }
    db.Add(std::move(s));
  }
  return db;
}

std::vector<seqdb::Sequence> ExtractQueries(
    const seqdb::SequenceDatabase& db, const QueryWorkloadOptions& options) {
  TSW_CHECK(!db.empty());
  Rng rng(options.seed);

  // Stratify the sequences by mean value (the paper stratifies by average
  // price: <$30 / $30-60 / >$60).
  std::vector<SeqId> low, mid, high;
  for (SeqId id = 0; id < db.size(); ++id) {
    const Value mean = db.MeanValue(id);
    if (mean < options.low_cut) {
      low.push_back(id);
    } else if (mean <= options.high_cut) {
      mid.push_back(id);
    } else {
      high.push_back(id);
    }
  }
  std::vector<SeqId> any;
  for (SeqId id = 0; id < db.size(); ++id) any.push_back(id);

  auto pick_stratum = [&](double u) -> const std::vector<SeqId>& {
    const std::vector<SeqId>* chosen;
    if (u < options.frac_low) {
      chosen = &low;
    } else if (u < options.frac_low + options.frac_mid) {
      chosen = &mid;
    } else {
      chosen = &high;
    }
    return chosen->empty() ? any : *chosen;
  };

  std::vector<seqdb::Sequence> queries;
  queries.reserve(options.num_queries);
  for (std::size_t i = 0; i < options.num_queries; ++i) {
    const std::vector<SeqId>& stratum = pick_stratum(rng.Uniform(0.0, 1.0));
    const SeqId id = stratum[static_cast<std::size_t>(
        rng.UniformInt(0, static_cast<std::int64_t>(stratum.size()) - 1))];
    const seqdb::Sequence& s = db.sequence(id);
    const auto jitter = static_cast<std::int64_t>(options.length_jitter);
    std::size_t len = static_cast<std::size_t>(std::max<std::int64_t>(
        2, static_cast<std::int64_t>(options.avg_length) +
               (jitter > 0 ? rng.UniformInt(-jitter, jitter) : 0)));
    len = std::min(len, s.size());
    const std::size_t start = static_cast<std::size_t>(
        rng.UniformInt(0, static_cast<std::int64_t>(s.size() - len)));
    queries.emplace_back(s.begin() + static_cast<std::ptrdiff_t>(start),
                         s.begin() + static_cast<std::ptrdiff_t>(start + len));
  }
  return queries;
}

}  // namespace tswarp::datagen
