#ifndef TSWARP_DATAGEN_GENERATORS_H_
#define TSWARP_DATAGEN_GENERATORS_H_

#include <cstdint>
#include <vector>

#include "common/types.h"
#include "seqdb/sequence_database.h"

namespace tswarp::datagen {

/// Artificial sequences exactly as in the paper's Section 7:
/// S_i[p] = S_i[p-1] + Z_p with iid Z_p (here N(0, step_stddev)).
struct RandomWalkOptions {
  std::size_t num_sequences = 200;
  std::size_t avg_length = 200;
  /// Lengths are uniform in [avg_length - jitter, avg_length + jitter].
  std::size_t length_jitter = 0;
  Value start_min = 20.0;
  Value start_max = 80.0;
  Value step_stddev = 1.0;
  std::uint64_t seed = 42;
};

seqdb::SequenceDatabase GenerateRandomWalks(const RandomWalkOptions& options);

/// Synthetic stand-in for the paper's S&P 500 daily-closing-price set
/// (545 sequences, average length 232). The original crawl is unavailable;
/// this generator matches its relevant shape: log-normally distributed
/// base prices (so the paper's <$30 / $30-60 / >$60 strata are all
/// populated), geometric-ish random-walk dynamics, and the same length
/// distribution.
struct StockOptions {
  std::size_t num_sequences = 545;
  std::size_t avg_length = 232;
  std::size_t length_stddev = 40;
  std::size_t min_length = 40;
  /// Base price ~ LogNormal(log(median_price), price_sigma).
  Value median_price = 42.0;
  Value price_sigma = 0.75;
  /// Daily move stddev as a fraction of the current price. Together with
  /// min_price this is calibrated so answer-set sizes at epsilon 5..50
  /// span the paper's regime (tens per query at 5, hundreds of thousands
  /// in total at 50) instead of saturating: low-priced stocks move in
  /// tiny absolute steps and would otherwise match everything.
  Value daily_volatility = 0.045;
  Value min_price = 8.0;
  std::uint64_t seed = 7;
};

seqdb::SequenceDatabase GenerateStocks(const StockOptions& options);

/// Periodic heartbeat-like signal: baseline wander + per-beat QRS-ish
/// pulses with period jitter and amplitude noise. Used by the ECG example
/// and the shape-robustness tests (time warping should match beats of
/// different instantaneous heart rates).
struct EcgOptions {
  std::size_t num_sequences = 50;
  std::size_t length = 400;
  Value beat_period = 36.0;     // Samples per beat.
  Value period_jitter = 4.0;    // Per-beat period noise.
  Value pulse_amplitude = 25.0;
  Value noise_stddev = 0.5;
  Value baseline = 60.0;
  std::uint64_t seed = 11;
};

seqdb::SequenceDatabase GenerateEcg(const EcgOptions& options);

/// Query workload extracted from a database the way the paper's Section 7
/// describes: 20% of queries from sequences whose mean value is below
/// `low_cut`, 50% from [low_cut, high_cut], 30% above; average query
/// length `avg_length` (paper: 20).
struct QueryWorkloadOptions {
  std::size_t num_queries = 50;
  std::size_t avg_length = 20;
  std::size_t length_jitter = 4;  // Uniform in avg +/- jitter.
  Value low_cut = 30.0;
  Value high_cut = 60.0;
  double frac_low = 0.2;
  double frac_mid = 0.5;  // Remainder goes to the high stratum.
  std::uint64_t seed = 13;
};

std::vector<seqdb::Sequence> ExtractQueries(
    const seqdb::SequenceDatabase& db, const QueryWorkloadOptions& options);

}  // namespace tswarp::datagen

#endif  // TSWARP_DATAGEN_GENERATORS_H_
