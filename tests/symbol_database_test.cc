#include "suffixtree/symbol_database.h"

#include <gtest/gtest.h>

namespace tswarp::suffixtree {
namespace {

TEST(SymbolDatabaseTest, AddAndAccess) {
  SymbolDatabase db;
  EXPECT_EQ(db.size(), 0u);
  EXPECT_EQ(db.Add({1, 2, 3}), 0u);
  EXPECT_EQ(db.Add({4}), 1u);
  EXPECT_EQ(db.size(), 2u);
  EXPECT_EQ(db.TotalSymbols(), 4u);
  EXPECT_EQ(db.sequence(0).size(), 3u);
}

TEST(SymbolDatabaseTest, SuffixViews) {
  SymbolDatabase db;
  db.Add({7, 8, 9});
  const auto suffix = db.Suffix(0, 1);
  ASSERT_EQ(suffix.size(), 2u);
  EXPECT_EQ(suffix[0], 8);
  EXPECT_EQ(suffix[1], 9);
  EXPECT_EQ(db.Suffix(0, 2).size(), 1u);
}

TEST(SymbolDatabaseTest, RunLengthsAndRunStarts) {
  SymbolDatabase db;
  db.Add({5});
  EXPECT_EQ(db.RunLength(0, 0), 1u);
  EXPECT_TRUE(db.IsRunStart(0, 0));

  db.Add({2, 2, 2});
  EXPECT_EQ(db.RunLength(1, 0), 3u);
  EXPECT_EQ(db.RunLength(1, 1), 2u);
  EXPECT_EQ(db.RunLength(1, 2), 1u);
  EXPECT_TRUE(db.IsRunStart(1, 0));
  EXPECT_FALSE(db.IsRunStart(1, 1));
  EXPECT_FALSE(db.IsRunStart(1, 2));

  db.Add({1, 1, 2, 1});
  EXPECT_EQ(db.RunLength(2, 0), 2u);
  EXPECT_EQ(db.RunLength(2, 2), 1u);
  EXPECT_EQ(db.RunLength(2, 3), 1u);
  EXPECT_TRUE(db.IsRunStart(2, 2));
  EXPECT_TRUE(db.IsRunStart(2, 3));
}

TEST(SymbolDatabaseTest, ConstructFromVector) {
  std::vector<SymbolSequence> seqs = {{1, 2}, {3}};
  SymbolDatabase db(std::move(seqs));
  EXPECT_EQ(db.size(), 2u);
  EXPECT_EQ(db.TotalSymbols(), 3u);
}

TEST(SymbolDatabaseTest, MoveSemantics) {
  SymbolDatabase a;
  a.Add({1, 2, 3});
  SymbolDatabase b = std::move(a);
  EXPECT_EQ(b.size(), 1u);
  EXPECT_EQ(b.TotalSymbols(), 3u);
}

}  // namespace
}  // namespace tswarp::suffixtree
