// Merge-order invariance: the Bieganski construction may combine partial
// trees in any order (the paper's "series of binary merges of suffix
// trees of increasing size"); every schedule must converge to the same
// canonical tree. Also checks structural size bounds.

#include <algorithm>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "suffixtree/merge.h"
#include "suffixtree/suffix_tree.h"
#include "suffixtree/symbol_database.h"
#include "suffixtree/ukkonen.h"

namespace tswarp::suffixtree {
namespace {

using Canon =
    std::vector<std::pair<std::vector<Symbol>, std::tuple<SeqId, Pos, Pos>>>;

Canon Canonicalize(const TreeView& view) {
  Canon out;
  struct Frame {
    NodeId node;
    std::vector<Symbol> path;
  };
  std::vector<Frame> stack = {{view.Root(), {}}};
  while (!stack.empty()) {
    Frame f = std::move(stack.back());
    stack.pop_back();
    std::vector<OccurrenceRec> occs;
    view.GetOccurrences(f.node, &occs);
    for (const OccurrenceRec& o : occs) {
      out.emplace_back(f.path, std::make_tuple(o.seq, o.pos, o.run));
    }
    Children children;
    view.GetChildren(f.node, &children);
    for (const Children::Edge& e : children.edges) {
      Frame next{e.child, f.path};
      const std::span<const Symbol> label = children.Label(e);
      next.path.insert(next.path.end(), label.begin(), label.end());
      stack.push_back(std::move(next));
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

SymbolDatabase RandomDb(std::uint64_t seed) {
  Rng rng(seed);
  SymbolDatabase db;
  const int n = static_cast<int>(rng.UniformInt(4, 9));
  for (int i = 0; i < n; ++i) {
    const auto len = static_cast<std::size_t>(rng.UniformInt(2, 25));
    SymbolSequence s;
    for (std::size_t p = 0; p < len; ++p) {
      s.push_back(static_cast<Symbol>(rng.UniformInt(0, 3)));
    }
    db.Add(std::move(s));
  }
  return db;
}

SuffixTree SingleTree(const SymbolDatabase& db, SeqId id) {
  SuffixTreeBuilder builder(&db);
  builder.InsertSequence(id);
  return builder.Build();
}

TEST(MergeOrderTest, RandomSchedulesConverge) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const SymbolDatabase db = RandomDb(seed);
    const Canon expected = Canonicalize(BuildSuffixTree(db));

    Rng rng(100 + seed);
    for (int schedule = 0; schedule < 4; ++schedule) {
      // Random binary-merge schedule over per-sequence trees.
      std::vector<SuffixTree> forest;
      for (SeqId id = 0; id < db.size(); ++id) {
        forest.push_back(SingleTree(db, id));
      }
      while (forest.size() > 1) {
        const auto i = static_cast<std::size_t>(rng.UniformInt(
            0, static_cast<std::int64_t>(forest.size()) - 1));
        std::swap(forest[i], forest.back());
        SuffixTree a = std::move(forest.back());
        forest.pop_back();
        const auto j = static_cast<std::size_t>(rng.UniformInt(
            0, static_cast<std::int64_t>(forest.size()) - 1));
        std::swap(forest[j], forest.back());
        SuffixTree b = std::move(forest.back());
        forest.pop_back();
        SuffixTree merged;
        MergeTrees(a, b, &merged);
        forest.push_back(std::move(merged));
      }
      ASSERT_EQ(Canonicalize(forest.front()), expected)
          << "seed " << seed << " schedule " << schedule;
    }
  }
}

TEST(MergeOrderTest, UkkonenLeavesMergeIdentically) {
  const SymbolDatabase db = RandomDb(42);
  const Canon expected = Canonicalize(BuildSuffixTree(db));
  std::vector<SuffixTree> forest;
  for (SeqId id = 0; id < db.size(); ++id) {
    forest.push_back(BuildSuffixTreeUkkonen(db, id));
  }
  std::size_t head = 0;
  while (forest.size() - head > 1) {
    SuffixTree merged;
    MergeTrees(forest[head], forest[head + 1], &merged);
    head += 2;
    forest.push_back(std::move(merged));
  }
  EXPECT_EQ(Canonicalize(forest[head]), expected);
}

TEST(MergeOrderTest, NodeCountBounds) {
  // A generalized suffix tree over k stored suffixes has at most 2k
  // proper nodes besides the root (each leaf adds one node, each split
  // one more), and at least one node per distinct suffix path.
  for (std::uint64_t seed = 20; seed <= 30; ++seed) {
    const SymbolDatabase db = RandomDb(seed);
    const SuffixTree tree = BuildSuffixTree(db);
    const std::uint64_t k = tree.NumOccurrences();
    EXPECT_LE(tree.NumNodes(), 2 * k + 1) << "seed " << seed;
    EXPECT_GE(tree.NumNodes(), 2u);
    // Label pool never exceeds the total suffix mass.
    std::uint64_t total_mass = 0;
    for (SeqId id = 0; id < db.size(); ++id) {
      const std::size_t len = db.sequence(id).size();
      total_mass += len * (len + 1) / 2;
    }
    EXPECT_LE(tree.NumLabelSymbols(), total_mass);
  }
}

}  // namespace
}  // namespace tswarp::suffixtree
