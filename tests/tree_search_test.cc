// End-to-end correctness of the three similarity-search algorithms:
// SimSearch-ST, SimSearch-ST_C and SimSearch-SST_C must return exactly the
// answer set of sequential scanning — the paper's no-false-dismissal
// guarantee (and, since post-processing verifies exactly, no false alarms
// in the final answers either).

#include "core/tree_search.h"

#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "core/index.h"
#include "core/seq_scan.h"
#include "datagen/generators.h"
#include "seqdb/sequence_database.h"
#include "test_util.h"

namespace tswarp::core {
namespace {

using categorize::Method;

seqdb::SequenceDatabase SmallRandomDb(std::uint64_t seed,
                                      std::size_t num_sequences = 12,
                                      std::size_t avg_length = 40) {
  datagen::RandomWalkOptions opt;
  opt.num_sequences = num_sequences;
  opt.avg_length = avg_length;
  opt.length_jitter = avg_length / 4;
  opt.seed = seed;
  return datagen::GenerateRandomWalks(opt);
}

std::vector<Value> RandomQuery(const seqdb::SequenceDatabase& db, Rng* rng,
                               std::size_t max_len = 8) {
  // Half the queries are perturbed extracts (guaranteeing non-empty
  // answers at moderate epsilon), half are fresh random walks.
  std::vector<Value> q;
  const auto len =
      static_cast<std::size_t>(rng->UniformInt(1,
                                               static_cast<int>(max_len)));
  if (rng->Coin(0.5)) {
    const auto id = static_cast<SeqId>(
        rng->UniformInt(0, static_cast<int>(db.size()) - 1));
    const seqdb::Sequence& s = db.sequence(id);
    const std::size_t use_len = std::min(len, s.size());
    const auto start = static_cast<std::size_t>(rng->UniformInt(
        0, static_cast<int>(s.size() - use_len)));
    q.assign(s.begin() + static_cast<std::ptrdiff_t>(start),
             s.begin() + static_cast<std::ptrdiff_t>(start + use_len));
    for (Value& v : q) v += rng->Gaussian(0, 0.3);
  } else {
    Value v = rng->Uniform(20, 80);
    for (std::size_t i = 0; i < len; ++i) {
      q.push_back(v);
      v += rng->Gaussian(0, 1);
    }
  }
  return q;
}

struct KindCase {
  IndexKind kind;
  Method method;
  std::size_t categories;
};

std::string CaseName(const testing::TestParamInfo<KindCase>& info) {
  std::string name = IndexKindToString(info.param.kind);
  for (char& c : name) {
    if (c == '_') c = 'x';
  }
  name += "_";
  name += categorize::MethodToString(info.param.method);
  name += "_";
  name += std::to_string(info.param.categories);
  return name;
}

class NoFalseDismissalTest : public testing::TestWithParam<KindCase> {};

TEST_P(NoFalseDismissalTest, MatchesSequentialScan) {
  const KindCase param = GetParam();
  Rng rng(1000 + static_cast<std::uint64_t>(param.categories));
  for (int round = 0; round < 6; ++round) {
    const seqdb::SequenceDatabase db =
        SmallRandomDb(77 + static_cast<std::uint64_t>(round) * 13);
    IndexOptions options;
    options.kind = param.kind;
    options.method = param.method;
    options.num_categories = param.categories;
    auto index = Index::Build(&db, options);
    ASSERT_TRUE(index.ok()) << index.status();
    for (int qi = 0; qi < 8; ++qi) {
      const std::vector<Value> q = RandomQuery(db, &rng);
      const Value eps = rng.Uniform(0.0, 12.0);
      const std::vector<Match> expected = SeqScan(db, q, eps);
      const std::vector<Match> actual = index->Search(q, eps);
      testutil::ExpectSameMatches(
          expected, actual,
          std::string(IndexKindToString(param.kind)) + " round " +
              std::to_string(round) + " query " + std::to_string(qi) +
              " eps " + std::to_string(eps));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllKinds, NoFalseDismissalTest,
    testing::Values(
        KindCase{IndexKind::kSuffixTree, Method::kMaxEntropy, 0},
        KindCase{IndexKind::kCategorized, Method::kEqualLength, 4},
        KindCase{IndexKind::kCategorized, Method::kEqualLength, 16},
        KindCase{IndexKind::kCategorized, Method::kMaxEntropy, 4},
        KindCase{IndexKind::kCategorized, Method::kMaxEntropy, 16},
        KindCase{IndexKind::kCategorized, Method::kKMeans, 8},
        KindCase{IndexKind::kSparse, Method::kEqualLength, 4},
        KindCase{IndexKind::kSparse, Method::kEqualLength, 16},
        KindCase{IndexKind::kSparse, Method::kMaxEntropy, 4},
        KindCase{IndexKind::kSparse, Method::kMaxEntropy, 16},
        KindCase{IndexKind::kSparse, Method::kKMeans, 8}),
    CaseName);

// Few categories force long runs, stressing the sparse D_tw-lb2 path.
TEST(SparseSearchTest, VeryCoarseCategoriesStillExact) {
  Rng rng(4242);
  for (int round = 0; round < 10; ++round) {
    const seqdb::SequenceDatabase db =
        SmallRandomDb(500 + static_cast<std::uint64_t>(round), 8, 30);
    IndexOptions options;
    options.kind = IndexKind::kSparse;
    options.num_categories = 2;  // Extreme compaction, long runs.
    auto index = Index::Build(&db, options);
    ASSERT_TRUE(index.ok()) << index.status();
    EXPECT_GT(index->build_info().compaction_ratio, 0.3)
        << "2 categories should drop many suffixes";
    for (int qi = 0; qi < 6; ++qi) {
      const std::vector<Value> q = RandomQuery(db, &rng);
      const Value eps = rng.Uniform(0.0, 15.0);
      testutil::ExpectSameMatches(SeqScan(db, q, eps),
                                  index->Search(q, eps),
                                  "coarse round " + std::to_string(round));
    }
  }
}

TEST(TreeSearchTest, PruningDisabledGivesSameAnswers) {
  Rng rng(99);
  const seqdb::SequenceDatabase db = SmallRandomDb(3);
  IndexOptions options;
  options.kind = IndexKind::kSparse;
  options.num_categories = 8;
  auto index = Index::Build(&db, options);
  ASSERT_TRUE(index.ok());
  for (int qi = 0; qi < 10; ++qi) {
    const std::vector<Value> q = RandomQuery(db, &rng);
    const Value eps = rng.Uniform(0.0, 10.0);
    QueryOptions no_prune;
    no_prune.prune = false;
    SearchStats with_stats, without_stats;
    const auto with = index->Search(q, eps, {}, &with_stats);
    const auto without = index->Search(q, eps, no_prune, &without_stats);
    testutil::ExpectSameMatches(with, without, "prune ablation");
    EXPECT_LE(with_stats.rows_pushed, without_stats.rows_pushed)
        << "pruning must not increase work";
  }
}

TEST(TreeSearchTest, EmptyAnswerSetAtTinyEpsilonOnForeignQuery) {
  const seqdb::SequenceDatabase db = SmallRandomDb(8);
  IndexOptions options;
  options.kind = IndexKind::kSparse;
  options.num_categories = 12;
  auto index = Index::Build(&db, options);
  ASSERT_TRUE(index.ok());
  // A query far outside the value range cannot match at epsilon 0.1.
  const std::vector<Value> q = {1e6, 1e6 + 1, 1e6 + 2};
  EXPECT_TRUE(index->Search(q, 0.1).empty());
}

TEST(TreeSearchTest, EpsilonZeroFindsExactOccurrences) {
  // Build a database with a repeated exact motif; epsilon 0 must find all
  // its occurrences (and any time-warped zero-distance repeats).
  seqdb::SequenceDatabase db;
  db.Add({5, 1, 9, 2, 7, 5, 1, 9});
  db.Add({3, 5, 1, 9, 4, 4});
  IndexOptions options;
  options.kind = IndexKind::kSuffixTree;
  auto index = Index::Build(&db, options);
  ASSERT_TRUE(index.ok());
  const std::vector<Value> q = {5, 1, 9};
  const std::vector<Match> matches = index->Search(q, 0.0);
  // Exact occurrences: S0[0:2], S0[5:7], S1[1:3]; plus warped variants
  // (e.g. duplicated elements) also at distance 0 — compare with scan.
  testutil::ExpectSameMatches(SeqScan(db, q, 0.0), matches, "eps=0");
  // The three literal occurrences must be present.
  int literal = 0;
  for (const Match& m : matches) {
    if (m.len == 3 && m.distance == 0.0) ++literal;
  }
  EXPECT_GE(literal, 3);
}

TEST(TreeSearchTest, BandedSearchMatchesBandedScan) {
  Rng rng(123);
  const seqdb::SequenceDatabase db = SmallRandomDb(21);
  // Banded search requires a dense index; the D_tw-lb2 recovery of sparse
  // trees is only valid for unconstrained warping.
  IndexOptions options;
  options.kind = IndexKind::kCategorized;
  options.num_categories = 10;
  auto index = Index::Build(&db, options);
  ASSERT_TRUE(index.ok());
  for (int qi = 0; qi < 8; ++qi) {
    const std::vector<Value> q = RandomQuery(db, &rng);
    const Value eps = rng.Uniform(0.0, 10.0);
    const Pos band = static_cast<Pos>(rng.UniformInt(1, 6));
    SeqScanOptions scan_options;
    scan_options.band = band;
    QueryOptions query_options;
    query_options.band = band;
    testutil::ExpectSameMatches(SeqScan(db, q, eps, scan_options),
                                index->Search(q, eps, query_options),
                                "band " + std::to_string(band));
  }
}

}  // namespace
}  // namespace tswarp::core
