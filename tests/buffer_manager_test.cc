// BufferManager-specific invariants: pin semantics (pinned pages are
// never evicted, overflow past the budget instead), shard-crossing
// multi-page reads, policy equivalence (CLOCK and LRU return identical
// bytes), read-ahead accounting, and per-shard stats consistency.

#include <cstring>
#include <filesystem>
#include <numeric>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "storage/buffer_manager.h"
#include "storage/paged_file.h"

namespace tswarp::storage {
namespace {

class BufferManagerTest : public testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("tswarp_buffer_manager_test_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string Path(const std::string& name) { return (dir_ / name).string(); }

  /// Creates a file whose page p starts with the 64-bit marker `p`.
  PagedFile MakeMarkedFile(const std::string& name, std::uint64_t pages) {
    auto file_or = PagedFile::Create(Path(name));
    EXPECT_TRUE(file_or.ok());
    PagedFile file = std::move(file_or).value();
    std::vector<std::byte> page(PagedFile::kPageSize);
    for (std::uint64_t p = 0; p < pages; ++p) {
      std::memset(page.data(), static_cast<int>(p & 0x3F), page.size());
      std::memcpy(page.data(), &p, sizeof(p));
      EXPECT_TRUE(file.WritePage(p, page).ok());
    }
    EXPECT_TRUE(file.Sync().ok());
    return file;
  }

  std::filesystem::path dir_;
};

std::uint64_t Marker(const PageGuard& guard) {
  std::uint64_t marker = 0;
  std::memcpy(&marker, guard.bytes().data(), sizeof(marker));
  return marker;
}

TEST_F(BufferManagerTest, PinnedPagesAreNeverEvicted) {
  PagedFile file = MakeMarkedFile("pinned.dat", 16);
  BufferManagerOptions options;
  options.capacity_pages = 4;
  options.num_shards = 1;
  BufferManager mgr(&file, options);

  // Hold more pins than the whole budget: every extra pin must overflow
  // the shard rather than evict a pinned frame.
  std::vector<PageGuard> guards;
  for (std::uint64_t p = 0; p < 8; ++p) {
    auto guard = mgr.Pin(p, PinIntent::kRead);
    ASSERT_TRUE(guard.ok());
    guards.push_back(std::move(guard).value());
  }
  EXPECT_EQ(mgr.stats().evictions, 0u);
  EXPECT_GE(mgr.stats().overflow_pins, 4u);
  // Every guard still views its own page.
  for (std::uint64_t p = 0; p < 8; ++p) {
    EXPECT_EQ(Marker(guards[p]), p);
  }
  guards.clear();

  // With the pins gone, eviction works again and stays byte-correct.
  for (std::uint64_t p = 8; p < 16; ++p) {
    auto guard = mgr.Pin(p, PinIntent::kRead);
    ASSERT_TRUE(guard.ok());
    EXPECT_EQ(Marker(*guard), p);
  }
  EXPECT_GT(mgr.stats().evictions, 0u);
}

TEST_F(BufferManagerTest, ShardCrossingMultiPageRead) {
  PagedFile file = MakeMarkedFile("shards.dat", 12);
  BufferManagerOptions options;
  options.capacity_pages = 16;
  options.num_shards = 4;
  BufferManager mgr(&file, options);
  ASSERT_EQ(mgr.num_shards(), 4u);

  // One byte-granular read spanning all 12 pages (and all 4 shards).
  std::vector<std::byte> all(12 * PagedFile::kPageSize);
  ASSERT_TRUE(mgr.Read(0, all.data(), all.size()).ok());
  for (std::uint64_t p = 0; p < 12; ++p) {
    std::uint64_t marker = 0;
    std::memcpy(&marker, all.data() + p * PagedFile::kPageSize,
                sizeof(marker));
    EXPECT_EQ(marker, p);
  }

  // A misaligned read crossing a page (= shard) boundary.
  std::uint64_t pair[2] = {0, 0};
  const std::uint64_t off = PagedFile::kPageSize - sizeof(std::uint64_t);
  ASSERT_TRUE(mgr.Read(off, pair, sizeof(pair)).ok());
  EXPECT_EQ(pair[1], 1u);  // Marker of page 1.

  // Guards from different shards can be held simultaneously.
  auto g0 = mgr.Pin(0, PinIntent::kRead);
  auto g1 = mgr.Pin(1, PinIntent::kRead);
  auto g2 = mgr.Pin(2, PinIntent::kRead);
  ASSERT_TRUE(g0.ok() && g1.ok() && g2.ok());
  EXPECT_EQ(Marker(*g0), 0u);
  EXPECT_EQ(Marker(*g1), 1u);
  EXPECT_EQ(Marker(*g2), 2u);

  // Per-shard stats sum to the aggregate.
  const auto shard_stats = mgr.ShardStats();
  ASSERT_EQ(shard_stats.size(), 4u);
  BufferManager::Stats sum;
  for (const auto& s : shard_stats) sum += s;
  const auto total = mgr.stats();
  EXPECT_EQ(sum.hits, total.hits);
  EXPECT_EQ(sum.misses, total.misses);
  EXPECT_EQ(sum.evictions, total.evictions);
}

TEST_F(BufferManagerTest, ClockAndLruReturnIdenticalBytes) {
  // Same randomized workload against an LRU-managed and a CLOCK-managed
  // file; both must agree with the shadow buffer at every step.
  const std::size_t kBytes = 8 * PagedFile::kPageSize;
  std::vector<std::uint8_t> shadow(kBytes, 0);

  auto lru_file_or = PagedFile::Create(Path("lru.dat"));
  auto clock_file_or = PagedFile::Create(Path("clock.dat"));
  ASSERT_TRUE(lru_file_or.ok() && clock_file_or.ok());
  PagedFile lru_file = std::move(lru_file_or).value();
  PagedFile clock_file = std::move(clock_file_or).value();

  BufferManagerOptions lru_options;
  lru_options.capacity_pages = 3;  // Tiny: constant eviction.
  lru_options.eviction = EvictionPolicyKind::kLru;
  BufferManagerOptions clock_options = lru_options;
  clock_options.eviction = EvictionPolicyKind::kClock;
  BufferManager lru(&lru_file, lru_options);
  BufferManager clock(&clock_file, clock_options);

  Rng rng(777);
  for (int op = 0; op < 600; ++op) {
    const auto off = static_cast<std::uint64_t>(
        rng.UniformInt(0, static_cast<std::int64_t>(kBytes) - 128));
    const auto n = static_cast<std::size_t>(rng.UniformInt(1, 128));
    if (rng.Coin(0.5)) {
      std::vector<std::uint8_t> data(n);
      for (auto& b : data) {
        b = static_cast<std::uint8_t>(rng.UniformInt(0, 255));
      }
      ASSERT_TRUE(lru.Write(off, data.data(), n).ok());
      ASSERT_TRUE(clock.Write(off, data.data(), n).ok());
      std::copy(data.begin(), data.end(),
                shadow.begin() + static_cast<long>(off));
    } else {
      std::vector<std::uint8_t> a(n, 0xAA), b(n, 0xBB);
      ASSERT_TRUE(lru.Read(off, a.data(), n).ok());
      ASSERT_TRUE(clock.Read(off, b.data(), n).ok());
      for (std::size_t i = 0; i < n; ++i) {
        ASSERT_EQ(a[i], shadow[off + i]) << "lru offset " << (off + i);
        ASSERT_EQ(b[i], shadow[off + i]) << "clock offset " << (off + i);
      }
    }
  }
  EXPECT_GT(lru.stats().evictions, 0u);
  EXPECT_GT(clock.stats().evictions, 0u);
}

TEST_F(BufferManagerTest, SequentialReadAheadFaultsAndCounts) {
  PagedFile file = MakeMarkedFile("readahead.dat", 32);
  BufferManagerOptions options;
  options.capacity_pages = 64;
  options.readahead_pages = 4;
  BufferManager mgr(&file, options);

  // A front-to-back scan: after the first two sequential faults the
  // manager prefetches ahead, so readaheads must show up and the data
  // must stay correct.
  std::vector<std::byte> all(32 * PagedFile::kPageSize);
  ASSERT_TRUE(mgr.Read(0, all.data(), all.size()).ok());
  for (std::uint64_t p = 0; p < 32; ++p) {
    std::uint64_t marker = 0;
    std::memcpy(&marker, all.data() + p * PagedFile::kPageSize,
                sizeof(marker));
    EXPECT_EQ(marker, p);
  }
  EXPECT_GT(mgr.stats().readaheads, 0u);
  // Every page was faulted exactly once, demand or ahead.
  EXPECT_EQ(mgr.stats().misses, 32u);

  // Explicit hint: all pages resident, so it costs nothing new.
  mgr.ReadAhead(0, 8);
  EXPECT_EQ(mgr.stats().misses, 32u);
}

TEST_F(BufferManagerTest, ReadAheadDisabledByDefault) {
  PagedFile file = MakeMarkedFile("noreadahead.dat", 8);
  BufferManager mgr(&file, 16);  // Convenience ctor: readahead off.
  std::vector<std::byte> all(8 * PagedFile::kPageSize);
  ASSERT_TRUE(mgr.Read(0, all.data(), all.size()).ok());
  EXPECT_EQ(mgr.stats().readaheads, 0u);
  EXPECT_EQ(mgr.stats().misses, 8u);
}

TEST_F(BufferManagerTest, WriteGuardMarksDirtyAndFlushPersists) {
  auto file_or = PagedFile::Create(Path("write.dat"));
  ASSERT_TRUE(file_or.ok());
  PagedFile file = std::move(file_or).value();
  BufferManager mgr(&file, 4);
  {
    auto guard = mgr.Pin(2, PinIntent::kWrite);
    ASSERT_TRUE(guard.ok());
    const std::uint64_t marker = 0xDEADBEEFu;
    std::memcpy(guard->mutable_bytes().data(), &marker, sizeof(marker));
  }
  ASSERT_TRUE(mgr.Flush().ok());
  std::vector<std::byte> page(PagedFile::kPageSize);
  ASSERT_TRUE(file.ReadPage(2, page).ok());
  std::uint64_t marker = 0;
  std::memcpy(&marker, page.data(), sizeof(marker));
  EXPECT_EQ(marker, 0xDEADBEEFu);
}

TEST_F(BufferManagerTest, ShardCountNormalization) {
  auto file_or = PagedFile::Create(Path("norm.dat"));
  ASSERT_TRUE(file_or.ok());
  PagedFile file = std::move(file_or).value();
  {
    BufferManagerOptions options;
    options.capacity_pages = 2;
    options.num_shards = 64;  // Clamped to the frame budget.
    BufferManager mgr(&file, options);
    EXPECT_EQ(mgr.num_shards(), 2u);
  }
  {
    BufferManagerOptions options;
    options.capacity_pages = 256;
    options.num_shards = 0;  // Auto: >= 1, never more than 16.
    BufferManager mgr(&file, options);
    EXPECT_GE(mgr.num_shards(), 1u);
    EXPECT_LE(mgr.num_shards(), 16u);
  }
}

TEST_F(BufferManagerTest, EvictionPolicyKindParsing) {
  EvictionPolicyKind kind = EvictionPolicyKind::kLru;
  EXPECT_TRUE(ParseEvictionPolicyKind("clock", &kind));
  EXPECT_EQ(kind, EvictionPolicyKind::kClock);
  EXPECT_TRUE(ParseEvictionPolicyKind("lru", &kind));
  EXPECT_EQ(kind, EvictionPolicyKind::kLru);
  EXPECT_FALSE(ParseEvictionPolicyKind("fifo", &kind));
  EXPECT_STREQ(EvictionPolicyKindToString(EvictionPolicyKind::kLru), "lru");
  EXPECT_STREQ(EvictionPolicyKindToString(EvictionPolicyKind::kClock),
               "clock");
}

}  // namespace
}  // namespace tswarp::storage
