// Concurrency stress for the sharded buffer manager (run under TSan in
// CI, label "stress"): many readers and one writer hammering a shared
// manager, and many searchers traversing one shared DiskSuffixTree
// through a pool small enough to evict constantly.

#include <atomic>
#include <cstring>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "storage/buffer_manager.h"
#include "storage/paged_file.h"
#include "suffixtree/disk_tree.h"
#include "suffixtree/suffix_tree.h"
#include "suffixtree/symbol_database.h"

namespace tswarp::storage {
namespace {

class BufferManagerStressTest : public testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("tswarp_bm_stress_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string Path(const std::string& name) { return (dir_ / name).string(); }

  std::filesystem::path dir_;
};

// Each page holds the same 8-byte value twice (offset 0 and offset 8),
// always updated together under one exclusive write guard. A reader that
// ever observes the two copies disagreeing has seen a torn page — i.e.
// the shared/exclusive frame latch failed.
TEST_F(BufferManagerStressTest, ConcurrentReadersAndOneWriter) {
  constexpr std::uint64_t kPages = 16;
  constexpr int kReaders = 4;
  constexpr int kWriterOps = 2000;
  constexpr int kReaderOps = 4000;

  auto file_or = PagedFile::Create(Path("shared.dat"));
  ASSERT_TRUE(file_or.ok());
  PagedFile file = std::move(file_or).value();
  {
    std::vector<std::byte> zero(PagedFile::kPageSize, std::byte{0});
    for (std::uint64_t p = 0; p < kPages; ++p) {
      ASSERT_TRUE(file.WritePage(p, zero).ok());
    }
  }

  BufferManagerOptions options;
  options.capacity_pages = 8;  // Half the pages: eviction under load.
  options.num_shards = 4;
  BufferManager mgr(&file, options);

  std::atomic<bool> failed{false};
  std::thread writer([&] {
    Rng rng(1);
    for (int op = 0; op < kWriterOps && !failed.load(); ++op) {
      const auto p = static_cast<std::uint64_t>(
          rng.UniformInt(0, kPages - 1));
      auto guard = mgr.Pin(p, PinIntent::kWrite);
      if (!guard.ok()) {
        failed.store(true);
        break;
      }
      const std::uint64_t value =
          (static_cast<std::uint64_t>(op) << 8) | p;
      std::byte* data = guard->mutable_bytes().data();
      std::memcpy(data, &value, sizeof(value));
      std::memcpy(data + sizeof(value), &value, sizeof(value));
      guard->Release();
      if (op % 256 == 0) {
        if (!mgr.Flush().ok()) failed.store(true);
      }
    }
  });

  std::vector<std::thread> readers;
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&, r] {
      Rng rng(100 + r);
      for (int op = 0; op < kReaderOps && !failed.load(); ++op) {
        const auto p = static_cast<std::uint64_t>(
            rng.UniformInt(0, kPages - 1));
        auto guard = mgr.Pin(p, PinIntent::kRead);
        if (!guard.ok()) {
          failed.store(true);
          break;
        }
        std::uint64_t a = 0, b = 0;
        std::memcpy(&a, guard->bytes().data(), sizeof(a));
        std::memcpy(&b, guard->bytes().data() + sizeof(a), sizeof(b));
        if (a != b) failed.store(true);  // Torn page.
      }
    });
  }
  writer.join();
  for (auto& t : readers) t.join();
  EXPECT_FALSE(failed.load());
  ASSERT_TRUE(mgr.Flush().ok());

  // Post-mortem: every page consistent on disk too.
  for (std::uint64_t p = 0; p < kPages; ++p) {
    std::vector<std::byte> page(PagedFile::kPageSize);
    ASSERT_TRUE(file.ReadPage(p, page).ok());
    std::uint64_t a = 0, b = 0;
    std::memcpy(&a, page.data(), sizeof(a));
    std::memcpy(&b, page.data() + sizeof(a), sizeof(b));
    EXPECT_EQ(a, b) << "page " << p;
  }
}

TEST_F(BufferManagerStressTest, ConcurrentSearchersOnSharedDiskTree) {
  using namespace tswarp::suffixtree;
  // A modest random tree, searched through a tiny sharded pool so the
  // concurrent traversals evict each other's pages continuously.
  Rng rng(42);
  SymbolDatabase db;
  for (int i = 0; i < 12; ++i) {
    SymbolSequence s;
    const int len = static_cast<int>(rng.UniformInt(5, 40));
    for (int p = 0; p < len; ++p) {
      s.push_back(static_cast<Symbol>(rng.UniformInt(0, 3)));
    }
    db.Add(std::move(s));
  }
  const SuffixTree memory_tree = BuildSuffixTree(db);
  ASSERT_TRUE(WriteTreeToDisk(memory_tree, Path("tree")).ok());

  DiskTreeOptions options;
  options.pool_pages = 2;
  options.pool_shards = 2;
  options.readahead_pages = 2;
  auto disk = DiskSuffixTree::Open(Path("tree"), options);
  ASSERT_TRUE(disk.ok());
  const DiskSuffixTree& tree = **disk;
  const std::uint64_t expected_occs = tree.NumOccurrences();

  constexpr int kThreads = 4;
  std::atomic<int> mismatches{0};
  std::vector<std::thread> searchers;
  for (int t = 0; t < kThreads; ++t) {
    searchers.emplace_back([&] {
      for (int round = 0; round < 8; ++round) {
        // Full DFS: every node's children and occurrences.
        std::uint64_t seen = 0;
        std::vector<NodeId> stack = {tree.Root()};
        Children children;
        std::vector<OccurrenceRec> occs;
        while (!stack.empty()) {
          const NodeId n = stack.back();
          stack.pop_back();
          occs.clear();
          tree.GetOccurrences(n, &occs);
          seen += occs.size();
          tree.GetChildren(n, &children);
          for (const Children::Edge& e : children.edges) {
            stack.push_back(e.child);
          }
        }
        if (seen != expected_occs) mismatches.fetch_add(1);
        if (tree.SubtreeOccCount(tree.Root()) != expected_occs) {
          mismatches.fetch_add(1);
        }
      }
    });
  }
  for (auto& t : searchers) t.join();
  EXPECT_EQ(mismatches.load(), 0);
  const auto stats = tree.PoolStats().Total();
  EXPECT_GT(stats.evictions, 0u);  // The tiny pool really was stressed.
}

}  // namespace
}  // namespace tswarp::storage
