#include "suffixtree/ukkonen.h"

#include <algorithm>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "suffixtree/merge.h"
#include "suffixtree/suffix_tree.h"

namespace tswarp::suffixtree {
namespace {

using Canon =
    std::vector<std::pair<std::vector<Symbol>, std::tuple<SeqId, Pos, Pos>>>;

Canon Canonicalize(const TreeView& view) {
  Canon out;
  struct Frame {
    NodeId node;
    std::vector<Symbol> path;
  };
  std::vector<Frame> stack = {{view.Root(), {}}};
  while (!stack.empty()) {
    Frame f = std::move(stack.back());
    stack.pop_back();
    std::vector<OccurrenceRec> occs;
    view.GetOccurrences(f.node, &occs);
    for (const OccurrenceRec& o : occs) {
      out.emplace_back(f.path, std::make_tuple(o.seq, o.pos, o.run));
    }
    Children children;
    view.GetChildren(f.node, &children);
    for (const Children::Edge& e : children.edges) {
      Frame next{e.child, f.path};
      const std::span<const Symbol> label = children.Label(e);
      next.path.insert(next.path.end(), label.begin(), label.end());
      stack.push_back(std::move(next));
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

SuffixTree InsertionBuild(const SymbolDatabase& db, SeqId id) {
  SuffixTreeBuilder builder(&db);
  builder.InsertSequence(id);
  return builder.Build();
}

TEST(UkkonenTest, ClassicExamples) {
  // banana-style and abab-style sequences exercise splits, implicit
  // suffixes and repeated symbols.
  const std::vector<SymbolSequence> cases = {
      {1, 2, 3, 2, 3, 2},        // "banana"-like: b a n a n a.
      {0, 1, 0, 1},              // abab: every proper suffix is implicit.
      {0, 0, 0, 0, 0},           // single-symbol run.
      {0, 1, 2, 3, 4},           // all distinct.
      {0},                       // single element.
      {1, 0, 0, 1, 0, 0, 1, 0},  // periodic.
  };
  for (const SymbolSequence& s : cases) {
    SymbolDatabase db;
    db.Add(s);
    const SuffixTree reference = InsertionBuild(db, 0);
    const SuffixTree ukkonen = BuildSuffixTreeUkkonen(db, 0);
    EXPECT_EQ(Canonicalize(ukkonen), Canonicalize(reference))
        << "sequence size " << s.size();
    EXPECT_EQ(ukkonen.NumNodes(), reference.NumNodes());
    EXPECT_EQ(ukkonen.NumOccurrences(), reference.NumOccurrences());
  }
}

TEST(UkkonenTest, RandomSequencesMatchInsertionBuilder) {
  Rng rng(808);
  for (int trial = 0; trial < 60; ++trial) {
    const auto len = static_cast<std::size_t>(rng.UniformInt(1, 80));
    const auto alphabet = static_cast<Symbol>(rng.UniformInt(1, 5));
    SymbolSequence s;
    for (std::size_t i = 0; i < len; ++i) {
      s.push_back(static_cast<Symbol>(rng.UniformInt(0, alphabet - 1)));
    }
    SymbolDatabase db;
    db.Add(std::move(s));
    const SuffixTree reference = InsertionBuild(db, 0);
    const SuffixTree ukkonen = BuildSuffixTreeUkkonen(db, 0);
    ASSERT_EQ(Canonicalize(ukkonen), Canonicalize(reference))
        << "trial " << trial;
  }
}

TEST(UkkonenTest, PureBiedganskiPipelineEqualsDirectBuild) {
  // The paper's construction in its purest form: linear-time per-sequence
  // trees combined by a series of binary merges.
  Rng rng(909);
  SymbolDatabase db;
  for (int i = 0; i < 7; ++i) {
    const auto len = static_cast<std::size_t>(rng.UniformInt(3, 30));
    SymbolSequence s;
    for (std::size_t p = 0; p < len; ++p) {
      s.push_back(static_cast<Symbol>(rng.UniformInt(0, 2)));
    }
    db.Add(std::move(s));
  }
  const SuffixTree whole = BuildSuffixTree(db);
  std::vector<SuffixTree> trees;
  for (SeqId id = 0; id < db.size(); ++id) {
    trees.push_back(BuildSuffixTreeUkkonen(db, id));
  }
  std::size_t head = 0;
  while (trees.size() - head > 1) {
    SuffixTree merged;
    MergeTrees(trees[head], trees[head + 1], &merged);
    head += 2;
    trees.push_back(std::move(merged));
  }
  EXPECT_EQ(Canonicalize(trees[head]), Canonicalize(whole));
  EXPECT_EQ(trees[head].NumNodes(), whole.NumNodes());
}

TEST(UkkonenTest, LinearWorkOnPathologicalInput) {
  // A single-symbol run is the insertion builder's worst case (quadratic
  // matched-prefix work); Ukkonen handles it in linear time. This is a
  // smoke test that it completes fast and correctly at a size where
  // quadratic behaviour would still be fine but measurable.
  SymbolDatabase db;
  db.Add(SymbolSequence(20000, 7));
  const SuffixTree tree = BuildSuffixTreeUkkonen(db, 0);
  EXPECT_EQ(tree.NumOccurrences(), 20000u);
  // The tree of a^n is a single chain: n nodes + root.
  EXPECT_EQ(tree.NumNodes(), 20001u);
}

}  // namespace
}  // namespace tswarp::suffixtree
