// HTTP/JSON protocol conformance tests for tswarpd, pinned by a golden
// corpus: each tests/data/server/NAME.request file holds the raw bytes a
// client sends, NAME.response the exact bytes the server must answer —
// malformed JSON, unknown fields, oversized bodies, invalid band/k, bad
// framing, all as structured {"error":{code,message}} bodies. Responses
// deliberately carry no Date header, so they are byte-reproducible.
//
// Regenerate the .response files after an intentional protocol change:
//   TSWARP_REGEN_GOLDEN=1 ./server_protocol_test

#include <cstdlib>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "datagen/generators.h"
#include "server/client.h"
#include "server/http.h"
#include "server/index_handle.h"
#include "server/json.h"
#include "server/server.h"

namespace tswarp::server {
namespace {

std::string DataDir() { return std::string(TSWARP_TEST_DATA_DIR) + "/server"; }

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "missing " << path;
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

void WriteFile(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary);
  out << bytes;
}

/// The corpus runs against a fixed server configuration: a sparse index
/// (so the band-vs-sparse rule is observable) over a seeded database.
/// Every corpus case exercises an error or static path whose response
/// bytes do not depend on the data, only on the protocol.
class ServerProtocolTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    datagen::RandomWalkOptions walk;
    walk.num_sequences = 8;
    walk.avg_length = 30;
    walk.seed = 47;
    db_ = new seqdb::SequenceDatabase(datagen::GenerateRandomWalks(walk));
    core::IndexOptions options;
    options.kind = core::IndexKind::kSparse;
    options.num_categories = 8;
    auto index = core::Index::Build(db_, options);
    ASSERT_TRUE(index.ok());
    handle_ = new IndexHandle(std::move(*index));
    auto server = Server::Start(handle_, ServerOptions{});
    ASSERT_TRUE(server.ok());
    server_ = server->release();
  }

  static void TearDownTestSuite() {
    delete server_;
    delete handle_;
    delete db_;
    server_ = nullptr;
    handle_ = nullptr;
    db_ = nullptr;
  }

  void RunGolden(const std::string& name) {
    const std::string request = ReadFile(DataDir() + "/" + name + ".request");
    ASSERT_FALSE(request.empty());
    auto client = HttpClient::Connect("127.0.0.1", server_->port());
    ASSERT_TRUE(client.ok()) << client.status().ToString();
    auto response = client->Roundtrip(request);
    ASSERT_TRUE(response.ok()) << response.status().ToString();
    const std::string golden_path = DataDir() + "/" + name + ".response";
    if (std::getenv("TSWARP_REGEN_GOLDEN") != nullptr) {
      WriteFile(golden_path, response->raw);
      GTEST_SKIP() << "regenerated " << golden_path;
    }
    EXPECT_EQ(response->raw, ReadFile(golden_path)) << "case " << name;
  }

  static seqdb::SequenceDatabase* db_;
  static IndexHandle* handle_;
  static Server* server_;
};

seqdb::SequenceDatabase* ServerProtocolTest::db_ = nullptr;
IndexHandle* ServerProtocolTest::handle_ = nullptr;
Server* ServerProtocolTest::server_ = nullptr;

TEST_F(ServerProtocolTest, Healthz) { RunGolden("healthz"); }
TEST_F(ServerProtocolTest, NotFound) { RunGolden("not_found"); }
TEST_F(ServerProtocolTest, MethodNotAllowed) {
  RunGolden("method_not_allowed");
}
TEST_F(ServerProtocolTest, BadJson) { RunGolden("bad_json"); }
TEST_F(ServerProtocolTest, UnknownField) { RunGolden("unknown_field"); }
TEST_F(ServerProtocolTest, MissingQuery) { RunGolden("missing_query"); }
TEST_F(ServerProtocolTest, BothEpsilonAndK) {
  RunGolden("both_epsilon_and_k");
}
TEST_F(ServerProtocolTest, InvalidKZero) { RunGolden("invalid_k_zero"); }
TEST_F(ServerProtocolTest, InvalidKFractional) {
  RunGolden("invalid_k_fractional");
}
TEST_F(ServerProtocolTest, InvalidBandRange) {
  RunGolden("invalid_band_range");
}
TEST_F(ServerProtocolTest, InvalidBandSparse) {
  RunGolden("invalid_band_sparse");
}
TEST_F(ServerProtocolTest, InvalidEpsilon) { RunGolden("invalid_epsilon"); }
TEST_F(ServerProtocolTest, BodyTooLarge) { RunGolden("body_too_large"); }
TEST_F(ServerProtocolTest, TransferEncoding) {
  RunGolden("transfer_encoding");
}
TEST_F(ServerProtocolTest, BadRequestLine) { RunGolden("bad_request_line"); }
TEST_F(ServerProtocolTest, HeaderSpaceSmuggle) {
  RunGolden("header_space_smuggle");
}

// --- JSON layer unit tests -------------------------------------------------

TEST(ServerJsonTest, ParsesAndDumpsDeterministically) {
  auto v = ParseJson(R"({"b":[1,2.5,-3e2],"a":{"x":true,"y":null}})");
  ASSERT_TRUE(v.ok());
  // Keys re-serialize in sorted order, numbers in shortest form.
  EXPECT_EQ(v->Dump(), R"({"a":{"x":true,"y":null},"b":[1,2.5,-300]})");
}

TEST(ServerJsonTest, RejectsProtocolHostileInput) {
  EXPECT_FALSE(ParseJson("").ok());
  EXPECT_FALSE(ParseJson("{").ok());
  EXPECT_FALSE(ParseJson("{}extra").ok());            // Trailing garbage.
  EXPECT_FALSE(ParseJson("{\"a\":1,\"a\":2}").ok());  // Duplicate key.
  EXPECT_FALSE(ParseJson("1e999").ok());              // Non-finite.
  EXPECT_FALSE(ParseJson("\"\x01\"").ok());  // Raw control char in string.
  std::string deep;
  for (int i = 0; i < 100; ++i) deep += "[";
  EXPECT_FALSE(ParseJson(deep).ok());  // Depth cap, not a stack overflow.
}

TEST(ServerJsonTest, NumberFormattingIsCanonical) {
  std::string out;
  AppendJsonNumber(&out, -0.0);
  EXPECT_EQ(out, "0");
  out.clear();
  AppendJsonNumber(&out, 2.5);
  EXPECT_EQ(out, "2.5");
  out.clear();
  AppendJsonNumber(&out, 1234567.0);
  EXPECT_EQ(out, "1234567");
  // Round trip: dump -> parse -> dump is a fixed point.
  const double tricky = 0.1 + 0.2;
  out.clear();
  AppendJsonNumber(&out, tricky);
  auto parsed = ParseJson(out);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->AsNumber(), tricky);
}

// --- HTTP layer unit tests -------------------------------------------------

TEST(ServerHttpTest, ParsesPipelinedRequestsIncrementally) {
  const std::string wire =
      "POST /search HTTP/1.1\r\nContent-Length: 2\r\n\r\nhi"
      "GET /stats HTTP/1.1\r\n\r\n";
  HttpLimits limits;
  HttpRequest first;
  std::size_t consumed = 0;
  ASSERT_EQ(ParseHttpRequest(wire, limits, &first, &consumed),
            HttpParseStatus::kOk);
  EXPECT_EQ(first.method, "POST");
  EXPECT_EQ(first.body, "hi");
  HttpRequest second;
  std::size_t consumed2 = 0;
  ASSERT_EQ(ParseHttpRequest(std::string_view(wire).substr(consumed), limits,
                             &second, &consumed2),
            HttpParseStatus::kOk);
  EXPECT_EQ(second.method, "GET");
  EXPECT_EQ(second.target, "/stats");

  // A truncated prefix of a valid request is always kIncomplete.
  for (std::size_t cut = 0; cut < consumed; ++cut) {
    HttpRequest partial;
    std::size_t unused = 0;
    EXPECT_EQ(ParseHttpRequest(wire.substr(0, cut), limits, &partial,
                               &unused),
              HttpParseStatus::kIncomplete)
        << "cut at " << cut;
  }
}

TEST(ServerHttpTest, EnforcesLimits) {
  HttpLimits limits;
  limits.max_header_bytes = 64;
  limits.max_body_bytes = 8;
  HttpRequest request;
  std::size_t consumed = 0;
  const std::string big_header =
      "GET / HTTP/1.1\r\nX-Pad: " + std::string(100, 'a') + "\r\n\r\n";
  EXPECT_EQ(ParseHttpRequest(big_header, limits, &request, &consumed),
            HttpParseStatus::kHeadersTooLarge);
  EXPECT_EQ(ParseHttpRequest("POST / HTTP/1.1\r\nContent-Length: 9\r\n\r\n",
                             limits, &request, &consumed),
            HttpParseStatus::kBodyTooLarge);
  EXPECT_EQ(ParseHttpRequest(
                "POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n",
                limits, &request, &consumed),
            HttpParseStatus::kUnsupported);
}

TEST(ServerHttpTest, SerializedResponsesAreDateless) {
  HttpResponse response;
  response.status = 200;
  response.AddHeader("Content-Type", "application/json");
  response.body = "{}";
  const std::string wire = response.Serialize(true);
  EXPECT_EQ(wire,
            "HTTP/1.1 200 OK\r\nContent-Type: application/json\r\n"
            "Content-Length: 2\r\nConnection: keep-alive\r\n\r\n{}");
  EXPECT_EQ(wire.find("Date:"), std::string::npos);
}

}  // namespace
}  // namespace tswarp::server
