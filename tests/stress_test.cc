// Heavier randomized differential tests: realistic stock-shaped data, the
// paper's stratified query workload, disk- and memory-backed indexes, all
// three algorithms, with sequential scanning as ground truth.

#include <filesystem>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "core/index.h"
#include "core/seq_scan.h"
#include "datagen/generators.h"
#include "test_util.h"

namespace tswarp::core {
namespace {

using categorize::Method;

class StressTest : public testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("tswarp_stress_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }
  std::filesystem::path dir_;
};

TEST_F(StressTest, StockWorkloadAllConfigurations) {
  datagen::StockOptions stock;
  stock.num_sequences = 25;
  stock.avg_length = 70;
  stock.seed = 31;
  const seqdb::SequenceDatabase db = datagen::GenerateStocks(stock);
  datagen::QueryWorkloadOptions workload;
  workload.num_queries = 6;
  workload.avg_length = 10;
  workload.length_jitter = 3;
  const auto queries = datagen::ExtractQueries(db, workload);

  int config_id = 0;
  for (const IndexKind kind : {IndexKind::kSuffixTree,
                               IndexKind::kCategorized, IndexKind::kSparse}) {
    for (const Method method : {Method::kEqualLength, Method::kMaxEntropy,
                                Method::kKMeans}) {
      for (const std::size_t categories : {3u, 24u}) {
        if (kind == IndexKind::kSuffixTree &&
            (method != Method::kEqualLength || categories != 3u)) {
          continue;  // ST ignores categorization; test it once.
        }
        IndexOptions options;
        options.kind = kind;
        options.method = method;
        options.num_categories = categories;
        auto memory_index = Index::Build(&db, options);
        ASSERT_TRUE(memory_index.ok()) << memory_index.status();
        options.disk_path =
            (dir_ / ("idx" + std::to_string(config_id++))).string();
        options.disk_batch_sequences = 7;
        options.disk_pool_pages = 8;
        auto disk_index = Index::Build(&db, options);
        ASSERT_TRUE(disk_index.ok()) << disk_index.status();

        for (std::size_t qi = 0; qi < queries.size(); ++qi) {
          const Value eps = 2.0 + static_cast<Value>(qi) * 3.0;
          const auto expected = SeqScan(db, queries[qi], eps);
          const std::string context =
              std::string(IndexKindToString(kind)) + "/" +
              categorize::MethodToString(method) + "/" +
              std::to_string(categories) + " q" + std::to_string(qi);
          testutil::ExpectSameMatches(
              expected, memory_index->Search(queries[qi], eps),
              context + " (memory)");
          testutil::ExpectSameMatches(
              expected, disk_index->Search(queries[qi], eps),
              context + " (disk)");
        }
      }
    }
  }
}

TEST_F(StressTest, PlateauHeavyDataMaximizesSparseRecovery) {
  // Rounded random walks create long runs of equal categorized symbols,
  // the regime where SST_C answers mostly come from D_tw-lb2 virtual
  // suffixes.
  Rng rng(67);
  seqdb::SequenceDatabase db;
  for (int i = 0; i < 10; ++i) {
    seqdb::Sequence s;
    Value v = std::round(rng.Uniform(10, 20));
    for (int p = 0; p < 60; ++p) {
      if (rng.Coin(0.25)) v += std::round(rng.Gaussian(0, 2));
      s.push_back(v);
    }
    db.Add(std::move(s));
  }
  IndexOptions options;
  options.kind = IndexKind::kSparse;
  options.num_categories = 6;
  auto index = Index::Build(&db, options);
  ASSERT_TRUE(index.ok());
  // High compaction confirms the regime.
  EXPECT_GT(index->build_info().compaction_ratio, 0.5);
  for (int qi = 0; qi < 8; ++qi) {
    std::vector<Value> q;
    Value v = std::round(rng.Uniform(10, 20));
    const auto len = static_cast<std::size_t>(rng.UniformInt(2, 7));
    for (std::size_t i = 0; i < len; ++i) {
      q.push_back(v);
      if (rng.Coin(0.4)) v += 1.0;
    }
    const Value eps = rng.Uniform(0, 6);
    testutil::ExpectSameMatches(SeqScan(db, q, eps), index->Search(q, eps),
                                "plateau q" + std::to_string(qi));
  }
}

TEST_F(StressTest, EcgWorkload) {
  datagen::EcgOptions ecg;
  ecg.num_sequences = 6;
  ecg.length = 120;
  const seqdb::SequenceDatabase db = datagen::GenerateEcg(ecg);
  IndexOptions options;
  options.kind = IndexKind::kSparse;
  options.num_categories = 16;
  auto index = Index::Build(&db, options);
  ASSERT_TRUE(index.ok());
  Rng rng(41);
  for (int qi = 0; qi < 5; ++qi) {
    const auto id = static_cast<SeqId>(rng.UniformInt(0, 5));
    const auto start = static_cast<Pos>(rng.UniformInt(0, 100));
    const std::vector<Value> q(
        db.sequence(id).begin() + start,
        db.sequence(id).begin() + start + 12);
    const Value eps = rng.Uniform(0, 20);
    testutil::ExpectSameMatches(SeqScan(db, q, eps), index->Search(q, eps),
                                "ecg q" + std::to_string(qi));
  }
}

}  // namespace
}  // namespace tswarp::core
