#include "suffixtree/dot_export.h"

#include <gtest/gtest.h>

#include "suffixtree/suffix_tree.h"
#include "suffixtree/symbol_database.h"

namespace tswarp::suffixtree {
namespace {

TEST(DotExportTest, EmitsValidDigraph) {
  SymbolDatabase db;
  db.Add({0, 1, 0, 2});
  const SuffixTree tree = BuildSuffixTree(db);
  const std::string dot = ToDot(tree);
  EXPECT_NE(dot.find("digraph suffixtree {"), std::string::npos);
  EXPECT_EQ(dot.back(), '\n');
  EXPECT_NE(dot.find("}"), std::string::npos);
  // Every node appears; root is n0.
  EXPECT_NE(dot.find("n0 ["), std::string::npos);
  // Occurrence annotations are double circles.
  EXPECT_NE(dot.find("doublecircle"), std::string::npos);
  // All 4 suffix occurrences are annotated.
  for (const char* occ : {"(0,0)", "(0,1)", "(0,2)", "(0,3)"}) {
    EXPECT_NE(dot.find(occ), std::string::npos) << occ;
  }
}

TEST(DotExportTest, RespectsNodeCap) {
  SymbolDatabase db;
  SymbolSequence s;
  for (int i = 0; i < 100; ++i) s.push_back(i % 7);
  db.Add(std::move(s));
  const SuffixTree tree = BuildSuffixTree(db);
  DotOptions options;
  options.max_nodes = 4;
  const std::string dot = ToDot(tree, options);
  EXPECT_NE(dot.find("\"...\""), std::string::npos)
      << "cap placeholder expected";
}

TEST(DotExportTest, CustomSymbolFormatter) {
  SymbolDatabase db;
  db.Add({0, 1});
  const SuffixTree tree = BuildSuffixTree(db);
  DotOptions options;
  options.symbol_formatter = [](Symbol s) {
    return std::string(1, static_cast<char>('A' + s));
  };
  const std::string dot = ToDot(tree, options);
  EXPECT_NE(dot.find("label=\"A"), std::string::npos);
  EXPECT_NE(dot.find("label=\"B"), std::string::npos);
}

TEST(DotExportTest, LongLabelsAreElided) {
  SymbolDatabase db;
  SymbolSequence s;
  for (int i = 0; i < 40; ++i) s.push_back(i);  // One long leaf edge.
  db.Add(std::move(s));
  const SuffixTree tree = BuildSuffixTree(db);
  const std::string dot = ToDot(tree);
  EXPECT_NE(dot.find("... +"), std::string::npos);
}

}  // namespace
}  // namespace tswarp::suffixtree
