// Buffer manager persistence cycles: random write/flush/reopen workloads
// against a shadow buffer, across frame budgets and both eviction
// policies, verifying that data survives arbitrary eviction orders and
// process "restarts" (manager teardown + fresh manager over the same
// file).

#include <filesystem>
#include <string>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "storage/buffer_manager.h"
#include "storage/paged_file.h"

namespace tswarp::storage {
namespace {

using CycleParam = std::tuple<std::size_t, EvictionPolicyKind>;

class BufferManagerCycleTest : public testing::TestWithParam<CycleParam> {
 protected:
  void SetUp() override {
    path_ = (std::filesystem::temp_directory_path() /
             ("tswarp_pool_cycle_" + std::to_string(::getpid()) + "_" +
              std::to_string(std::get<0>(GetParam())) + "_" +
              EvictionPolicyKindToString(std::get<1>(GetParam())) + ".dat"))
                .string();
  }
  void TearDown() override { std::filesystem::remove(path_); }

  BufferManagerOptions Options() const {
    BufferManagerOptions options;
    options.capacity_pages = std::get<0>(GetParam());
    options.eviction = std::get<1>(GetParam());
    return options;
  }

  std::string path_;
};

TEST_P(BufferManagerCycleTest, SurvivesReopenCycles) {
  const std::size_t capacity = std::get<0>(GetParam());
  const std::size_t kBytes = 5 * PagedFile::kPageSize;
  std::vector<std::uint8_t> shadow(kBytes, 0);
  Rng rng(9000 + capacity);

  auto file_or = PagedFile::Create(path_);
  ASSERT_TRUE(file_or.ok());
  auto file = std::make_unique<PagedFile>(std::move(file_or).value());
  auto pool = std::make_unique<BufferManager>(file.get(), Options());

  for (int cycle = 0; cycle < 5; ++cycle) {
    for (int op = 0; op < 120; ++op) {
      const auto off = static_cast<std::uint64_t>(rng.UniformInt(
          0, static_cast<std::int64_t>(kBytes) - 32));
      const auto n = static_cast<std::size_t>(rng.UniformInt(1, 32));
      if (rng.Coin(0.6)) {
        std::vector<std::uint8_t> data(n);
        for (auto& b : data) {
          b = static_cast<std::uint8_t>(rng.UniformInt(0, 255));
        }
        ASSERT_TRUE(pool->Write(off, data.data(), n).ok());
        std::copy(data.begin(), data.end(),
                  shadow.begin() + static_cast<long>(off));
      } else {
        std::vector<std::uint8_t> data(n);
        ASSERT_TRUE(pool->Read(off, data.data(), n).ok());
        for (std::size_t i = 0; i < n; ++i) {
          ASSERT_EQ(data[i], shadow[off + i])
              << "cycle " << cycle << " offset " << off + i;
        }
      }
    }
    // "Restart": flush, drop the manager and the file handle, reopen.
    ASSERT_TRUE(pool->Flush().ok());
    pool.reset();
    file.reset();
    auto reopened = PagedFile::Open(path_, /*writable=*/true);
    ASSERT_TRUE(reopened.ok());
    file = std::make_unique<PagedFile>(std::move(reopened).value());
    pool = std::make_unique<BufferManager>(file.get(), Options());
    // Full verification after reopen.
    std::vector<std::uint8_t> all(kBytes);
    ASSERT_TRUE(pool->Read(0, all.data(), kBytes).ok());
    ASSERT_EQ(all, shadow) << "cycle " << cycle;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Capacities, BufferManagerCycleTest,
    testing::Combine(testing::Values(1u, 2u, 3u, 8u, 64u),
                     testing::Values(EvictionPolicyKind::kLru,
                                     EvictionPolicyKind::kClock)),
    [](const testing::TestParamInfo<CycleParam>& info) {
      return "cap" + std::to_string(std::get<0>(info.param)) + "_" +
             EvictionPolicyKindToString(std::get<1>(info.param));
    });

}  // namespace
}  // namespace tswarp::storage
