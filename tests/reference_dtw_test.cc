// Validates the DTW stack against an independently written textbook
// implementation (full 2-D matrix, no sentinel tricks, no sharing). If the
// WarpingTable recurrence drifted from Definition 2, every module above it
// would inherit the bug while remaining self-consistent — this test breaks
// that cycle.

#include <cmath>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "dtw/dtw.h"
#include "dtw/warping_table.h"
#include "multivariate/multi_dtw.h"

namespace tswarp {
namespace {

/// Tolerance against the textbook reference: the production row step uses
/// the canonical block-scan decomposition (see dtw/simd.h), which
/// reassociates the per-cell additions of the Definition-2 recurrence.
/// The result agrees with the sequential textbook order to a handful of
/// ULPs (relative error ~1e-15 per row, observed <= ~20 ULPs over deep
/// tables), not bit-for-bit, so comparisons allow a 1e-12 relative slack —
/// far above any accumulation the block-scan can produce, far below any
/// real recurrence bug (a wrong neighbor or base term shifts results by
/// whole base-distance magnitudes).
void ExpectNearRelative(Value actual, Value expected,
                        const std::string& context) {
  const Value slack = 1e-12 * (1.0 + std::fabs(expected));
  EXPECT_NEAR(actual, expected, slack) << context;
}

/// Textbook D_tw (paper Definitions 1-2): gamma(x, y) over a full matrix
/// with explicit boundary handling; 1-based indices mapped to 0-based.
Value ReferenceDtw(const std::vector<Value>& a, const std::vector<Value>& b) {
  const std::size_t n = a.size();
  const std::size_t m = b.size();
  std::vector<std::vector<Value>> g(n, std::vector<Value>(m, 0.0));
  for (std::size_t x = 0; x < n; ++x) {
    for (std::size_t y = 0; y < m; ++y) {
      const Value base = std::fabs(a[x] - b[y]);
      if (x == 0 && y == 0) {
        g[x][y] = base;
      } else if (x == 0) {
        g[x][y] = base + g[x][y - 1];
      } else if (y == 0) {
        g[x][y] = base + g[x - 1][y];
      } else {
        g[x][y] = base + std::min({g[x][y - 1], g[x - 1][y],
                                   g[x - 1][y - 1]});
      }
    }
  }
  return g[n - 1][m - 1];
}

/// Reference for the prefix property: D_tw(a, b[0..q]) for every q.
std::vector<Value> ReferencePrefixDistances(const std::vector<Value>& a,
                                            const std::vector<Value>& b) {
  std::vector<Value> out;
  for (std::size_t q = 1; q <= b.size(); ++q) {
    out.push_back(ReferenceDtw(a, std::vector<Value>(b.begin(),
                                                     b.begin() +
                                                         static_cast<long>(
                                                             q))));
  }
  return out;
}

TEST(ReferenceDtwTest, DtwDistanceMatchesTextbookImplementation) {
  Rng rng(101);
  for (int trial = 0; trial < 500; ++trial) {
    std::vector<Value> a, b;
    const int la = static_cast<int>(rng.UniformInt(1, 15));
    const int lb = static_cast<int>(rng.UniformInt(1, 15));
    for (int i = 0; i < la; ++i) a.push_back(rng.Uniform(-10, 10));
    for (int i = 0; i < lb; ++i) b.push_back(rng.Uniform(-10, 10));
    ExpectNearRelative(dtw::DtwDistance(a, b), ReferenceDtw(a, b),
                       "trial " + std::to_string(trial));
  }
}

TEST(ReferenceDtwTest, PrefixDistancesMatch) {
  Rng rng(102);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<Value> a, b;
    const int la = static_cast<int>(rng.UniformInt(1, 8));
    const int lb = static_cast<int>(rng.UniformInt(1, 12));
    for (int i = 0; i < la; ++i) a.push_back(rng.Uniform(0, 10));
    for (int i = 0; i < lb; ++i) b.push_back(rng.Uniform(0, 10));
    const std::vector<Value> expected = ReferencePrefixDistances(a, b);
    dtw::WarpingTable table(a);
    for (std::size_t q = 0; q < b.size(); ++q) {
      table.PushRowValue(b[q]);
      ExpectNearRelative(table.LastColumn(), expected[q],
                         "prefix " + std::to_string(q));
    }
  }
}

TEST(ReferenceDtwTest, MultiDtwDim1MatchesTextbook) {
  Rng rng(103);
  for (int trial = 0; trial < 100; ++trial) {
    std::vector<Value> a, b;
    const int la = static_cast<int>(rng.UniformInt(1, 10));
    const int lb = static_cast<int>(rng.UniformInt(1, 10));
    for (int i = 0; i < la; ++i) a.push_back(rng.Uniform(-5, 5));
    for (int i = 0; i < lb; ++i) b.push_back(rng.Uniform(-5, 5));
    ExpectNearRelative(mv::MultiDtwDistance(a, a.size(), b, b.size(), 1),
                       ReferenceDtw(a, b), "trial " + std::to_string(trial));
  }
}

TEST(ReferenceDtwTest, TriangleInequalityCounterexampleExists) {
  // The paper (Section 1) notes D_tw violates the triangle inequality,
  // which is why spatial access methods are unusable. Find a violation on
  // random triples to document the property.
  Rng rng(104);
  bool violated = false;
  for (int trial = 0; trial < 2000 && !violated; ++trial) {
    std::vector<Value> a, b, c;
    for (int i = 0; i < 3; ++i) {
      a.push_back(rng.Uniform(0, 10));
      b.push_back(rng.Uniform(0, 10));
      c.push_back(rng.Uniform(0, 10));
    }
    const Value ab = ReferenceDtw(a, b);
    const Value bc = ReferenceDtw(b, c);
    const Value ac = ReferenceDtw(a, c);
    if (ac > ab + bc + 1e-9) violated = true;
  }
  EXPECT_TRUE(violated)
      << "expected to find a triangle-inequality violation";
}

TEST(ReferenceDtwTest, KnownClosedForms) {
  // Constant vs constant: |a - b| * max(n, m)? No — warping aligns all
  // elements pairwise; the minimum path has max(n, m) cells.
  const std::vector<Value> c3(3, 5.0);
  const std::vector<Value> c7(7, 2.0);
  EXPECT_DOUBLE_EQ(ReferenceDtw(c3, c7), 3.0 * 7);
  EXPECT_DOUBLE_EQ(dtw::DtwDistance(c3, c7), 3.0 * 7);
  // Monotone ramp against itself shifted: each element pairs with its
  // equal neighbour except at the ends.
  const std::vector<Value> ramp = {1, 2, 3, 4, 5};
  const std::vector<Value> shifted = {2, 3, 4, 5, 6};
  EXPECT_DOUBLE_EQ(dtw::DtwDistance(ramp, shifted),
                   ReferenceDtw(ramp, shifted));
  EXPECT_DOUBLE_EQ(dtw::DtwDistance(ramp, shifted), 2.0);
}

}  // namespace
}  // namespace tswarp
