#include "multivariate/multi_index.h"

#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "dtw/dtw.h"
#include "multivariate/grid_alphabet.h"
#include "multivariate/multi_dtw.h"
#include "test_util.h"

namespace tswarp::mv {
namespace {

MultiSequenceDatabase RandomMultiDb(std::uint64_t seed, std::size_t dim,
                                    std::size_t num_seqs,
                                    std::size_t max_len) {
  Rng rng(seed);
  MultiSequenceDatabase db(dim);
  for (std::size_t i = 0; i < num_seqs; ++i) {
    const auto len = static_cast<std::size_t>(
        rng.UniformInt(2, static_cast<int>(max_len)));
    std::vector<Value> flat;
    std::vector<Value> cur(dim);
    for (std::size_t d = 0; d < dim; ++d) cur[d] = rng.Uniform(0, 50);
    for (std::size_t p = 0; p < len; ++p) {
      for (std::size_t d = 0; d < dim; ++d) {
        cur[d] += rng.Gaussian(0, 1);
        flat.push_back(cur[d]);
      }
    }
    db.Add(std::move(flat));
  }
  return db;
}

std::vector<Value> RandomMultiQuery(std::size_t dim, std::size_t len,
                                    Rng* rng) {
  std::vector<Value> q;
  std::vector<Value> cur(dim);
  for (std::size_t d = 0; d < dim; ++d) cur[d] = rng->Uniform(0, 50);
  for (std::size_t p = 0; p < len; ++p) {
    for (std::size_t d = 0; d < dim; ++d) {
      cur[d] += rng->Gaussian(0, 1);
      q.push_back(cur[d]);
    }
  }
  return q;
}

TEST(MultiDtwTest, Dim1MatchesUnivariate) {
  Rng rng(1);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<Value> a, b;
    const auto la = static_cast<std::size_t>(rng.UniformInt(1, 10));
    const auto lb = static_cast<std::size_t>(rng.UniformInt(1, 10));
    for (std::size_t i = 0; i < la; ++i) a.push_back(rng.Uniform(0, 10));
    for (std::size_t i = 0; i < lb; ++i) b.push_back(rng.Uniform(0, 10));
    EXPECT_DOUBLE_EQ(MultiDtwDistance(a, la, b, lb, 1),
                     dtw::DtwDistance(a, b));
  }
}

TEST(MultiDtwTest, IdenticalSequencesHaveZeroDistance) {
  const std::vector<Value> a = {1, 2, 3, 4, 5, 6};  // 3 elements, dim 2.
  EXPECT_DOUBLE_EQ(MultiDtwDistance(a, 3, a, 3, 2), 0.0);
}

TEST(MultiDtwTest, StretchingIsFree) {
  const std::vector<Value> a = {1, 10, 2, 20};          // <(1,10),(2,20)>
  const std::vector<Value> b = {1, 10, 1, 10, 2, 20};   // First element x2.
  EXPECT_DOUBLE_EQ(MultiDtwDistance(a, 2, b, 3, 2), 0.0);
}

TEST(MultiDtwTest, ThresholdedMatchesExact) {
  Rng rng(2);
  for (int trial = 0; trial < 100; ++trial) {
    const std::size_t dim = static_cast<std::size_t>(rng.UniformInt(1, 3));
    const auto la = static_cast<std::size_t>(rng.UniformInt(1, 8));
    const auto lb = static_cast<std::size_t>(rng.UniformInt(1, 8));
    std::vector<Value> a, b;
    for (std::size_t i = 0; i < la * dim; ++i) a.push_back(rng.Uniform(0, 5));
    for (std::size_t i = 0; i < lb * dim; ++i) b.push_back(rng.Uniform(0, 5));
    const Value exact = MultiDtwDistance(a, la, b, lb, dim);
    const Value eps = rng.Uniform(0, 20);
    Value d = -1;
    const bool within = MultiDtwWithinThreshold(a, la, b, lb, dim, eps, &d);
    EXPECT_EQ(within, exact <= eps);
    if (within) {
      EXPECT_DOUBLE_EQ(d, exact);
    }
  }
}

TEST(GridAlphabetTest, CellsAndIntervals) {
  const MultiSequenceDatabase db = RandomMultiDb(3, 2, 5, 20);
  auto grid = GridAlphabet::Build(db, categorize::Method::kMaxEntropy, 4);
  ASSERT_TRUE(grid.ok());
  EXPECT_EQ(grid->dim(), 2u);
  EXPECT_LE(grid->NumCells(), 16u);
  // Round trip: each element's cell interval contains the element (after
  // fitting).
  GridAlphabet g = std::move(grid).value();
  ConvertMultiDatabase(db, &g);
  for (SeqId id = 0; id < db.size(); ++id) {
    for (Pos p = 0; p < db.Length(id); ++p) {
      const auto elem = db.Element(id, p);
      const Symbol s = g.ToSymbol(elem);
      EXPECT_DOUBLE_EQ(g.CellLowerBound(elem, s), 0.0)
          << "element must be inside its own (fitted) cell";
    }
  }
}

TEST(GridAlphabetTest, CellLowerBoundIsLowerBound) {
  const MultiSequenceDatabase db = RandomMultiDb(4, 3, 4, 15);
  auto grid_or = GridAlphabet::Build(db, categorize::Method::kEqualLength, 3);
  ASSERT_TRUE(grid_or.ok());
  GridAlphabet grid = std::move(grid_or).value();
  ConvertMultiDatabase(db, &grid);
  Rng rng(5);
  for (int trial = 0; trial < 200; ++trial) {
    const auto id = static_cast<SeqId>(rng.UniformInt(
        0, static_cast<int>(db.size()) - 1));
    const auto pos = static_cast<Pos>(rng.UniformInt(
        0, static_cast<int>(db.Length(id)) - 1));
    const auto member = db.Element(id, pos);
    const Symbol cell = grid.ToSymbol(member);
    // Any probe element: lb(probe, cell) <= base distance to any member.
    std::vector<Value> probe(db.dim());
    for (std::size_t d = 0; d < db.dim(); ++d) {
      probe[d] = rng.Uniform(-10, 60);
    }
    EXPECT_LE(grid.CellLowerBound(probe, cell),
              MultiBaseDistance(probe, member) + 1e-9);
  }
}

class MultiIndexParamTest
    : public testing::TestWithParam<std::tuple<bool, std::size_t>> {};

TEST_P(MultiIndexParamTest, MatchesMultiSeqScan) {
  const auto [sparse, dim] = GetParam();
  Rng rng(100 + dim);
  for (int round = 0; round < 3; ++round) {
    const MultiSequenceDatabase db =
        RandomMultiDb(10 + static_cast<std::uint64_t>(round), dim, 8, 25);
    MultiIndexOptions options;
    options.sparse = sparse;
    options.categories_per_dim = 4;
    auto index = MultiIndex::Build(&db, options);
    ASSERT_TRUE(index.ok()) << index.status();
    for (int qi = 0; qi < 5; ++qi) {
      const auto qlen = static_cast<std::size_t>(rng.UniformInt(1, 5));
      const std::vector<Value> q = RandomMultiQuery(dim, qlen, &rng);
      const Value eps = rng.Uniform(0, 15);
      testutil::ExpectSameMatches(
          MultiSeqScan(db, q, qlen, eps), index->Search(q, qlen, eps),
          "dim " + std::to_string(dim) + " sparse " +
              std::to_string(sparse));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, MultiIndexParamTest,
    testing::Combine(testing::Bool(), testing::Values(1u, 2u, 3u)),
    [](const testing::TestParamInfo<std::tuple<bool, std::size_t>>& info) {
      return std::string(std::get<0>(info.param) ? "sparse" : "dense") +
             "_dim" + std::to_string(std::get<1>(info.param));
    });

// Suite name matters: the TSan CI job selects concurrency suites with
// -R 'ThreadPool|ParallelSearch|MultivariateParallel'.
class MultivariateParallelTest
    : public testing::TestWithParam<std::tuple<bool, std::size_t>> {};

TEST_P(MultivariateParallelTest, ParallelMatchesSerialByteIdentical) {
  const auto [sparse, dim] = GetParam();
  const MultiSequenceDatabase db =
      RandomMultiDb(40 + static_cast<std::uint64_t>(dim), dim, 8, 25);
  MultiIndexOptions options;
  options.sparse = sparse;
  options.categories_per_dim = 4;
  auto index = MultiIndex::Build(&db, options);
  ASSERT_TRUE(index.ok()) << index.status();
  Rng rng(300 + dim);
  for (int qi = 0; qi < 4; ++qi) {
    const auto qlen = static_cast<std::size_t>(rng.UniformInt(2, 5));
    const std::vector<Value> q = RandomMultiQuery(dim, qlen, &rng);
    const Value eps = rng.Uniform(1, 15);
    core::SearchStats serial_stats;
    const std::vector<core::Match> serial =
        index->Search(q, qlen, eps, {}, &serial_stats);
    const std::vector<core::Match> serial_knn =
        index->SearchKnn(q, qlen, 5);
    for (const std::size_t threads : {1u, 2u, 4u}) {
      core::QueryOptions query_options;
      query_options.num_threads = threads;
      core::SearchStats stats;
      const std::vector<core::Match> parallel =
          index->Search(q, qlen, eps, query_options, &stats);
      ASSERT_EQ(serial.size(), parallel.size()) << "threads " << threads;
      for (std::size_t i = 0; i < serial.size(); ++i) {
        EXPECT_EQ(serial[i].seq, parallel[i].seq);
        EXPECT_EQ(serial[i].start, parallel[i].start);
        EXPECT_EQ(serial[i].len, parallel[i].len);
        EXPECT_EQ(serial[i].distance, parallel[i].distance)
            << "threads " << threads << " at " << i;
      }
      // The emission-side totals are invariant under the decomposition
      // (Theorem 1 guarantees pruned subtrees hold no answers); row
      // counts may only grow, since tasks are split on topology before
      // any distance work and may enter branches serial pruning skipped.
      EXPECT_EQ(stats.answers, serial_stats.answers);
      EXPECT_EQ(stats.candidates, serial_stats.candidates);
      EXPECT_EQ(stats.exact_dtw_calls, serial_stats.exact_dtw_calls);
      EXPECT_GE(stats.rows_pushed, serial_stats.rows_pushed);
      const std::vector<core::Match> parallel_knn =
          index->SearchKnn(q, qlen, 5, query_options);
      ASSERT_EQ(serial_knn.size(), parallel_knn.size());
      for (std::size_t i = 0; i < serial_knn.size(); ++i) {
        EXPECT_EQ(serial_knn[i].seq, parallel_knn[i].seq);
        EXPECT_EQ(serial_knn[i].distance, parallel_knn[i].distance);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, MultivariateParallelTest,
    testing::Combine(testing::Bool(), testing::Values(1u, 2u, 3u)),
    [](const testing::TestParamInfo<std::tuple<bool, std::size_t>>& info) {
      return std::string(std::get<0>(info.param) ? "sparse" : "dense") +
             "_dim" + std::to_string(std::get<1>(info.param));
    });

TEST(MultiIndexTest, RejectsEmptyDatabase) {
  MultiSequenceDatabase db(2);
  EXPECT_FALSE(MultiIndex::Build(&db, {}).ok());
  EXPECT_FALSE(MultiIndex::Build(nullptr, {}).ok());
}

TEST(MultiIndexTest, ReportsIndexBytes) {
  const MultiSequenceDatabase db = RandomMultiDb(20, 2, 5, 20);
  auto index = MultiIndex::Build(&db, {});
  ASSERT_TRUE(index.ok());
  EXPECT_GT(index->IndexBytes(), 0u);
}

}  // namespace
}  // namespace tswarp::mv
