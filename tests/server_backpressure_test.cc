// Admission-control and lifecycle tests of tswarpd, written to run under
// TSan (the CI stress leg): queue saturation must produce 429s with
// bounded queueing and no lost or duplicated responses, graceful drain
// must answer everything already admitted, deadlines must be enforced
// end-to-end, and hot-swapping the index (Index::Open concurrent with
// in-flight stats reads) must be race-free through server::IndexHandle.

#include "server/server.h"

#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "datagen/generators.h"
#include "server/client.h"
#include "server/index_handle.h"
#include "server/json.h"

namespace tswarp::server {
namespace {

seqdb::SequenceDatabase TestDb(std::uint64_t seed, std::size_t n,
                               std::size_t len) {
  datagen::RandomWalkOptions options;
  options.num_sequences = n;
  options.avg_length = len;
  options.length_jitter = len / 8;
  options.seed = seed;
  return datagen::GenerateRandomWalks(options);
}

core::Index BuildIndex(const seqdb::SequenceDatabase& db,
                       const std::string& disk_path = "") {
  core::IndexOptions options;
  options.kind = core::IndexKind::kCategorized;
  options.num_categories = 12;
  options.disk_path = disk_path;
  auto index = core::Index::Build(&db, options);
  EXPECT_TRUE(index.ok()) << index.status().ToString();
  return std::move(*index);
}

std::string QueryJson(const seqdb::SequenceDatabase& db, std::size_t len) {
  const std::span<const Value> sub = db.Subsequence(0, 0, len);
  std::string body = "[";
  for (std::size_t i = 0; i < sub.size(); ++i) {
    if (i != 0) body.push_back(',');
    AppendJsonNumber(&body, sub[i]);
  }
  body.push_back(']');
  return body;
}

/// A deliberately expensive request: pruning, the lower-bound cascade,
/// and the node-summary screen disabled force the full traversal + exact
/// DTW on every candidate, so it occupies the dispatcher long enough for
/// the queue to fill behind it.
std::string SlowBody(const seqdb::SequenceDatabase& db) {
  return "{\"query\":" + QueryJson(db, 20) +
         ",\"epsilon\":0.5,\"prune\":false,\"use_lower_bound\":false,"
         "\"use_node_summaries\":false}";
}

std::string QuickBody(const seqdb::SequenceDatabase& db) {
  return "{\"query\":" + QueryJson(db, 8) + ",\"epsilon\":2}";
}

int PostStatus(int port, const std::string& body, std::string* out = nullptr,
               std::string* retry_after = nullptr) {
  auto client = HttpClient::Connect("127.0.0.1", port);
  if (!client.ok()) return -1;
  auto resp = client->Post("/search", body);
  if (!resp.ok()) return -1;
  if (out != nullptr) *out = resp->body;
  if (retry_after != nullptr) {
    *retry_after = std::string(resp->Header("retry-after"));
  }
  return resp->status;
}

TEST(ServerBackpressureTest, FullQueueAnswers429WithRetryAfter) {
  // Sized so SlowBody takes ~1s on this db: the dispatcher must still be
  // busy (and the queue still full) when the refusal probe arrives 400ms
  // into the test.
  const seqdb::SequenceDatabase db = TestDb(31, 80, 600);
  auto handle = std::make_unique<IndexHandle>(BuildIndex(db));
  ServerOptions options;
  options.queue_capacity = 2;
  options.connection_threads = 8;
  auto server = Server::Start(handle.get(), options);
  ASSERT_TRUE(server.ok());
  const int port = (*server)->port();

  // One expensive query occupies the dispatcher...
  std::thread slow([&] { EXPECT_EQ(PostStatus(port, SlowBody(db)), 200); });
  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  // ...two more fill the queue to capacity...
  std::vector<std::thread> fillers;
  std::atomic<int> filler_ok{0};
  for (int i = 0; i < 2; ++i) {
    fillers.emplace_back([&] {
      if (PostStatus(port, SlowBody(db)) == 200) ++filler_ok;
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  // ...so the next arrival must be refused at the door, immediately.
  std::string retry_after;
  const auto refused_at = std::chrono::steady_clock::now();
  EXPECT_EQ(PostStatus(port, QuickBody(db), nullptr, &retry_after), 429);
  const auto refusal_latency =
      std::chrono::steady_clock::now() - refused_at;
  EXPECT_EQ(retry_after, "1");
  // Refusal must not wait for the slow work to finish (bounded latency is
  // the point of non-blocking admission). The slow queries take seconds;
  // give the refusal a generous second to cover sanitizer overhead.
  EXPECT_LT(refusal_latency, std::chrono::seconds(1));

  slow.join();
  for (std::thread& t : fillers) t.join();
  EXPECT_EQ(filler_ok.load(), 2);

  const ServerCounters counters = (*server)->Counters();
  EXPECT_EQ(counters.admitted, 3u);
  EXPECT_GE(counters.rejected, 1u);
  EXPECT_EQ(counters.completed, 3u);
  EXPECT_LE(counters.queue_high_water, options.queue_capacity);
  (*server)->Shutdown();
}

TEST(ServerDrainTest, ShutdownAnswersEverythingAdmitted) {
  const seqdb::SequenceDatabase db = TestDb(37, 12, 40);
  auto handle = std::make_unique<IndexHandle>(BuildIndex(db));
  ServerOptions options;
  options.queue_capacity = 16;
  options.connection_threads = 8;
  auto server = Server::Start(handle.get(), options);
  ASSERT_TRUE(server.ok());
  const int port = (*server)->port();
  const std::string body = QuickBody(db);

  // Establish the expected body once (server still fully up).
  std::string expected;
  ASSERT_EQ(PostStatus(port, body, &expected), 200);

  const int kClients = 6;
  std::vector<int> statuses(kClients, -2);
  std::vector<std::string> bodies(kClients);
  std::vector<std::thread> clients;
  for (int i = 0; i < kClients; ++i) {
    clients.emplace_back([&, i] {
      statuses[i] = PostStatus(port, body, &bodies[i]);
    });
  }
  // Drain while they are in flight. Every admitted request must still be
  // answered exactly once, with the full (correct) response; requests
  // that race the drain flag get an orderly 503, never a hang or a cut
  // connection mid-response.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  (*server)->Shutdown();
  for (std::thread& t : clients) t.join();

  int ok = 0, unavailable = 0;
  for (int i = 0; i < kClients; ++i) {
    if (statuses[i] == 200) {
      ++ok;
      EXPECT_EQ(bodies[i], expected) << "client " << i;
    } else {
      // 503 (drain refused it) or a refused/reset connection (-1) once
      // the listener is gone.
      EXPECT_TRUE(statuses[i] == 503 || statuses[i] == -1)
          << "client " << i << " got " << statuses[i];
      ++unavailable;
    }
  }
  EXPECT_EQ(ok + unavailable, kClients);
  const ServerCounters counters = (*server)->Counters();
  // +1 for the expected-body probe; every admitted search completed.
  EXPECT_EQ(counters.completed, static_cast<std::uint64_t>(ok) + 1);
  EXPECT_EQ(counters.admitted, counters.completed);
}

TEST(ServerDeadlineTest, QueueWaitCountsAgainstTheDeadline) {
  // Same sizing rationale as the backpressure test: SlowBody must outlive
  // the 200ms settle sleep so the deadlined request really queues.
  const seqdb::SequenceDatabase db = TestDb(41, 80, 600);
  auto handle = std::make_unique<IndexHandle>(BuildIndex(db));
  ServerOptions options;
  options.queue_capacity = 8;
  options.connection_threads = 4;
  auto server = Server::Start(handle.get(), options);
  ASSERT_TRUE(server.ok());
  const int port = (*server)->port();

  // Occupy the dispatcher, then queue a request whose 1ms deadline will
  // expire while it waits: it must come back 504, not run to completion.
  std::thread slow([&] { EXPECT_EQ(PostStatus(port, SlowBody(db)), 200); });
  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  const std::string deadlined = "{\"query\":" + QueryJson(db, 8) +
                                ",\"epsilon\":2,\"deadline_ms\":1}";
  std::string body;
  EXPECT_EQ(PostStatus(port, deadlined, &body), 504);
  EXPECT_NE(body.find("deadline_exceeded"), std::string::npos);
  slow.join();

  // A deadline that stops the search mid-run yields 200 "partial" with
  // the cancelled flag visible in the stats; a generous deadline yields
  // "ok". Either way the flag and the status word must agree.
  for (const char* deadline : {"\"deadline_ms\":1", "\"deadline_ms\":30000"}) {
    const std::string request = "{\"query\":" + QueryJson(db, 20) +
                                ",\"epsilon\":0.5,\"prune\":false,"
                                "\"use_lower_bound\":false,"
                                "\"include_stats\":true," +
                                deadline + "}";
    std::string response;
    const int status = PostStatus(port, request, &response);
    if (status == 504) {
      // The 1ms budget can expire before the dispatcher even picks the
      // job up (dispatch latency is real, especially under sanitizers);
      // a pre-run timeout is a legal outcome for it.
      EXPECT_NE(response.find("deadline_exceeded"), std::string::npos);
      continue;
    }
    ASSERT_EQ(status, 200) << response;
    auto parsed = ParseJson(response);
    ASSERT_TRUE(parsed.ok());
    const bool cancelled =
        parsed->Find("stats")->Find("cancelled")->AsNumber() > 0;
    const std::string& status_word = parsed->Find("status")->AsString();
    EXPECT_EQ(status_word, cancelled ? "partial" : "ok");
  }
  const ServerCounters counters = (*server)->Counters();
  EXPECT_GE(counters.timeouts, 1u);
  (*server)->Shutdown();
}

TEST(ServerIndexReloadTest, OpenConcurrentWithStatsReadsIsRaceFree) {
  // Regression test for the hot-swap race: reopening the on-disk index
  // and publishing it through IndexHandle::Replace while /stats handlers
  // and searches are reading the live index must be clean under TSan.
  // (Move-assigning the Index object itself — the pre-IndexHandle
  // pattern — is exactly the race core/index.h now documents as illegal.)
  const seqdb::SequenceDatabase db = TestDb(43, 12, 40);
  const std::string disk_path = ::testing::TempDir() + "/server_reload_idx";
  core::IndexOptions index_options;
  index_options.kind = core::IndexKind::kCategorized;
  index_options.num_categories = 12;
  index_options.disk_path = disk_path;
  auto built = core::Index::Build(&db, index_options);
  ASSERT_TRUE(built.ok()) << built.status().ToString();
  IndexHandle handle(std::move(*built));

  ServerOptions options;
  options.connection_threads = 4;
  auto server = Server::Start(&handle, options);
  ASSERT_TRUE(server.ok());
  const int port = (*server)->port();
  const std::string body = QuickBody(db);

  std::atomic<bool> stop{false};
  std::vector<std::thread> readers;
  for (int i = 0; i < 2; ++i) {
    readers.emplace_back([&] {
      auto client = HttpClient::Connect("127.0.0.1", port);
      if (!client.ok()) return;
      while (!stop.load(std::memory_order_relaxed)) {
        auto stats = client->Get("/stats");
        if (!stats.ok() || stats->status != 200) return;
        auto search = client->Post("/search", body);
        if (!search.ok() || search->status != 200) return;
      }
    });
  }
  for (int cycle = 0; cycle < 8; ++cycle) {
    auto reopened = core::Index::Open(&db, index_options);
    ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
    handle.Replace(std::move(*reopened));
  }
  stop.store(true, std::memory_order_relaxed);
  for (std::thread& t : readers) t.join();

  // The final published index still answers.
  std::string response;
  EXPECT_EQ(PostStatus(port, body, &response), 200);
  (*server)->Shutdown();
}

}  // namespace
}  // namespace tswarp::server
