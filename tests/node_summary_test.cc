// Unit tests for per-node envelope summaries: record construction against
// recomputed ground truth, the persisted v2 summary section (attach,
// reopen on both io paths, missing/truncated/version-gated bundles), and
// the compatibility promise that bundles without the section keep working.

#include "suffixtree/node_summary.h"

#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "suffixtree/disk_tree.h"
#include "suffixtree/suffix_tree.h"

namespace tswarp::suffixtree {
namespace {

SymbolDatabase RandomSymbolDb(std::uint64_t seed, std::size_t num_seqs,
                              std::size_t max_len, Symbol alphabet) {
  Rng rng(seed);
  SymbolDatabase db;
  for (std::size_t i = 0; i < num_seqs; ++i) {
    const auto len = static_cast<std::size_t>(
        rng.UniformInt(2, static_cast<int>(max_len)));
    SymbolSequence s;
    for (std::size_t p = 0; p < len; ++p) {
      s.push_back(static_cast<Symbol>(rng.UniformInt(0, alphabet - 1)));
    }
    db.Add(std::move(s));
  }
  return db;
}

/// Hulls with float-exact endpoints so outward rounding is the identity
/// and ground-truth comparisons can use ==.
std::vector<SymbolHull> PointHulls(Symbol alphabet) {
  std::vector<SymbolHull> hulls;
  for (Symbol s = 0; s < alphabet; ++s) {
    hulls.push_back({static_cast<Value>(s), static_cast<Value>(s) + 0.5});
  }
  return hulls;
}

TEST(NodeSummaryRecordTest, LayoutInvariants) {
  // The 64-byte size is a disk-format contract (record alignment, no
  // cache-line straddle); a change here is a format break.
  static_assert(sizeof(NodeSummaryRecord) == 64);
  static_assert(NodeSummaryRecord::kMaxLabelSegments == 4);
  // The empty-hull sentinel must be "impossible interval", so any
  // min/max fold against it is absorbing.
  EXPECT_GT(kEmptyHullLo, kEmptyHullHi);
}

TEST(NodeSummaryTest, MatchesRecomputedGroundTruth) {
  constexpr Symbol kAlphabet = 4;
  const std::vector<SymbolHull> hulls = PointHulls(kAlphabet);
  for (const bool sparse : {false, true}) {
    const SymbolDatabase db = RandomSymbolDb(sparse ? 11 : 7, 6, 24,
                                             kAlphabet);
    BuildOptions build;
    build.sparse = sparse;
    const SuffixTree tree = BuildSuffixTree(db, build);
    const std::vector<NodeSummaryRecord> recs =
        BuildNodeSummaries(tree, hulls);
    ASSERT_EQ(recs.size(), tree.NumNodes());

    // Recompute every field recursively and compare exactly.
    struct Expected {
      float lo;          // total hull
      float hi;
      std::uint32_t depth;  // label_len + deepest child
    };
    struct Checker {
      const SuffixTree& tree;
      const std::vector<SymbolHull>& hulls;
      const std::vector<NodeSummaryRecord>& recs;

      Expected Check(NodeId node, std::span<const Symbol> label) {
        const NodeSummaryRecord& rec = recs[node];
        // Label segments: the builder splits the label into
        // `label_segments` contiguous runs with the same arithmetic.
        const auto segments = static_cast<std::uint32_t>(std::min<std::size_t>(
            NodeSummaryRecord::kMaxLabelSegments, label.size()));
        EXPECT_EQ(rec.label_segments, segments);
        float label_lo = kEmptyHullLo;
        float label_hi = kEmptyHullHi;
        for (std::uint32_t s = 0; s < segments; ++s) {
          const std::size_t begin = label.size() * s / segments;
          const std::size_t end = label.size() * (s + 1) / segments;
          float lo = kEmptyHullLo;
          float hi = kEmptyHullHi;
          for (std::size_t i = begin; i < end; ++i) {
            const SymbolHull& h =
                hulls[static_cast<std::size_t>(label[i])];
            lo = std::min(lo, static_cast<float>(h.lo));
            hi = std::max(hi, static_cast<float>(h.hi));
          }
          EXPECT_EQ(rec.seg_lo[s], lo) << "node " << node << " seg " << s;
          EXPECT_EQ(rec.seg_hi[s], hi) << "node " << node << " seg " << s;
          label_lo = std::min(label_lo, lo);
          label_hi = std::max(label_hi, hi);
        }
        for (std::uint32_t s = segments;
             s < NodeSummaryRecord::kMaxLabelSegments; ++s) {
          EXPECT_EQ(rec.seg_lo[s], kEmptyHullLo);
          EXPECT_EQ(rec.seg_hi[s], kEmptyHullHi);
        }

        Children children;
        tree.GetChildren(node, &children);
        float sub_lo = kEmptyHullLo;
        float sub_hi = kEmptyHullHi;
        std::uint32_t max_below = 0;
        for (const Children::Edge& e : children.edges) {
          const Expected child = Check(e.child, children.Label(e));
          sub_lo = std::min(sub_lo, child.lo);
          sub_hi = std::max(sub_hi, child.hi);
          max_below = std::max(max_below, child.depth);
        }
        EXPECT_EQ(rec.sub_lo, sub_lo) << "node " << node;
        EXPECT_EQ(rec.sub_hi, sub_hi) << "node " << node;
        const float total_lo = std::min(sub_lo, label_lo);
        const float total_hi = std::max(sub_hi, label_hi);
        EXPECT_EQ(rec.total_lo, total_lo) << "node " << node;
        EXPECT_EQ(rec.total_hi, total_hi) << "node " << node;
        const auto depth =
            static_cast<std::uint32_t>(label.size()) + max_below;
        EXPECT_EQ(rec.max_depth, depth) << "node " << node;
        EXPECT_EQ(rec.reserved[0], 0u);
        EXPECT_EQ(rec.reserved[1], 0u);
        return {total_lo, total_hi, depth};
      }
    };
    Checker checker{tree, hulls, recs};
    checker.Check(tree.Root(), {});
    EXPECT_EQ(recs[tree.Root()].label_segments, 0u);
  }
}

class NodeSummaryDiskTest : public testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("tswarp_node_summary_test_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string Path(const std::string& name) { return (dir_ / name).string(); }

  /// Builds a tree, writes it as a v2 bundle, and returns its summaries.
  std::vector<NodeSummaryRecord> WriteBundle(const std::string& base,
                                             std::uint64_t seed,
                                             std::size_t num_seqs = 6,
                                             std::size_t max_len = 24) {
    constexpr Symbol kAlphabet = 3;
    const SymbolDatabase db =
        RandomSymbolDb(seed, num_seqs, max_len, kAlphabet);
    const SuffixTree tree = BuildSuffixTree(db);
    EXPECT_TRUE(WriteTreeToDisk(tree, base).ok());
    return BuildNodeSummaries(tree, PointHulls(kAlphabet));
  }

  static DiskTreeOptions IoOptions(storage::IoMode mode) {
    DiskTreeOptions options;
    options.io_mode = mode;
    return options;
  }

  std::filesystem::path dir_;
};

TEST_F(NodeSummaryDiskTest, AttachAndReopenRoundTripsBothIoModes) {
  const std::string base = Path("roundtrip");
  const std::vector<NodeSummaryRecord> records = WriteBundle(base, 21);
  ASSERT_TRUE(AttachNodeSummaries(base, records).ok());

  for (const storage::IoMode mode :
       {storage::IoMode::kBuffered, storage::IoMode::kMmap}) {
    auto disk = DiskSuffixTree::Open(base, IoOptions(mode));
    ASSERT_TRUE(disk.ok()) << disk.status();
    const std::span<const NodeSummaryRecord> loaded =
        (*disk)->node_summaries();
    ASSERT_EQ(loaded.size(), records.size());
    EXPECT_EQ(std::memcmp(loaded.data(), records.data(),
                          records.size() * sizeof(NodeSummaryRecord)),
              0)
        << storage::IoModeToString(mode);

    // Opting out of the section leaves the rest of the bundle intact.
    DiskTreeOptions no_load = IoOptions(mode);
    no_load.load_node_summaries = false;
    auto bare = DiskSuffixTree::Open(base, no_load);
    ASSERT_TRUE(bare.ok());
    EXPECT_TRUE((*bare)->node_summaries().empty());
    EXPECT_EQ((*bare)->NumNodes(), records.size());
  }
}

TEST_F(NodeSummaryDiskTest, BundleWithoutSectionOpensCleanly) {
  // The pre-summary v2 bundle (3 sections) is the compatibility baseline:
  // both read paths must open it and report no summaries.
  const std::string base = Path("plain_v2");
  const std::vector<NodeSummaryRecord> records = WriteBundle(base, 22);
  for (const storage::IoMode mode :
       {storage::IoMode::kBuffered, storage::IoMode::kMmap}) {
    auto disk = DiskSuffixTree::Open(base, IoOptions(mode));
    ASSERT_TRUE(disk.ok()) << disk.status();
    EXPECT_TRUE((*disk)->node_summaries().empty());
    EXPECT_EQ((*disk)->NumNodes(), records.size());
    EXPECT_EQ((*disk)->format_version(), 2u);
  }
}

TEST_F(NodeSummaryDiskTest, TruncatedSectionIsCorruptionNotACrash) {
  // Enough sequences that the summary section spans multiple pages, so a
  // one-page file is short for the announced extent on both read paths.
  const std::string base = Path("truncated");
  const std::vector<NodeSummaryRecord> records =
      WriteBundle(base, 23, /*num_seqs=*/12, /*max_len=*/40);
  ASSERT_GT(records.size() * sizeof(NodeSummaryRecord), 4096u)
      << "test needs a multi-page section to truncate meaningfully";
  ASSERT_TRUE(AttachNodeSummaries(base, records).ok());
  std::filesystem::resize_file(base + ".sums", 4096);

  for (const storage::IoMode mode :
       {storage::IoMode::kBuffered, storage::IoMode::kMmap}) {
    auto disk = DiskSuffixTree::Open(base, IoOptions(mode));
    ASSERT_FALSE(disk.ok()) << storage::IoModeToString(mode);
    EXPECT_EQ(disk.status().code(), StatusCode::kCorruption)
        << disk.status().ToString();

    // The escape hatch: skip the section and the bundle still serves.
    DiskTreeOptions no_load = IoOptions(mode);
    no_load.load_node_summaries = false;
    auto bare = DiskSuffixTree::Open(base, no_load);
    ASSERT_TRUE(bare.ok()) << bare.status();
    EXPECT_TRUE((*bare)->node_summaries().empty());
    Children children;
    (*bare)->GetChildren((*bare)->Root(), &children);
    EXPECT_FALSE(children.edges.empty());
  }
}

TEST_F(NodeSummaryDiskTest, MissingSectionFileFailsCleanly) {
  // Meta announces four sections but the .sums file is gone: a clean
  // error on both paths (never a crash), and load_node_summaries=false
  // still opens.
  const std::string base = Path("missing");
  const std::vector<NodeSummaryRecord> records = WriteBundle(base, 24);
  ASSERT_TRUE(AttachNodeSummaries(base, records).ok());
  std::filesystem::remove(base + ".sums");

  for (const storage::IoMode mode :
       {storage::IoMode::kBuffered, storage::IoMode::kMmap}) {
    auto disk = DiskSuffixTree::Open(base, IoOptions(mode));
    EXPECT_FALSE(disk.ok()) << storage::IoModeToString(mode);

    DiskTreeOptions no_load = IoOptions(mode);
    no_load.load_node_summaries = false;
    auto bare = DiskSuffixTree::Open(base, no_load);
    ASSERT_TRUE(bare.ok()) << bare.status();
    EXPECT_TRUE((*bare)->node_summaries().empty());
  }
}

TEST_F(NodeSummaryDiskTest, AttachRejectsV1Bundles) {
  // v1 bundles predate the section table; there is nowhere to announce a
  // fourth section, so the attach must refuse rather than write a file
  // no reader will ever consult.
  const std::string base = Path("v1");
  const std::vector<NodeSummaryRecord> records = WriteBundle(base, 25);
  ASSERT_TRUE(DowngradeBundleToV1ForTest(base).ok());
  const Status status = AttachNodeSummaries(base, records);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument)
      << status.ToString();
  EXPECT_FALSE(std::filesystem::exists(base + ".sums"));
}

TEST_F(NodeSummaryDiskTest, AttachRejectsCountMismatch) {
  const std::string base = Path("mismatch");
  std::vector<NodeSummaryRecord> records = WriteBundle(base, 26);
  records.pop_back();
  const Status status = AttachNodeSummaries(base, records);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument)
      << status.ToString();
}

}  // namespace
}  // namespace tswarp::suffixtree
