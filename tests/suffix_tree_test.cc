#include "suffixtree/suffix_tree.h"

#include <map>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "suffixtree/symbol_database.h"
#include "suffixtree/tree_view.h"

namespace tswarp::suffixtree {
namespace {

/// Recursively collects (path-label, occurrence) pairs and checks
/// structural invariants of a well-formed generalized suffix tree.
struct TreeChecker {
  const TreeView& view;
  std::multimap<std::vector<Symbol>, OccurrenceRec> found;
  std::uint64_t nodes = 0;

  explicit TreeChecker(const TreeView& v) : view(v) {}

  void Walk(NodeId node, const std::vector<Symbol>& path, bool is_root) {
    ++nodes;
    std::vector<OccurrenceRec> occs;
    view.GetOccurrences(node, &occs);
    for (const OccurrenceRec& occ : occs) found.emplace(path, occ);

    Children children;
    view.GetChildren(node, &children);
    // Children must have pairwise-distinct first symbols.
    std::set<Symbol> firsts;
    for (const Children::Edge& e : children.edges) {
      EXPECT_GE(e.label_len, 1u);
      EXPECT_TRUE(firsts.insert(children.FirstSymbol(e)).second)
          << "duplicate first symbol under one node";
    }
    // Non-root nodes need >= 2 children or an occurrence (path
    // compression: unary label-only nodes are not allowed).
    if (!is_root) {
      EXPECT_TRUE(children.edges.size() >= 2 || !occs.empty())
          << "unary node without occurrences";
    }
    // Subtree occurrence count must match.
    std::uint32_t child_total = static_cast<std::uint32_t>(occs.size());
    Pos max_run = 0;
    for (const OccurrenceRec& o : occs) max_run = std::max(max_run, o.run);
    for (const Children::Edge& e : children.edges) {
      child_total += view.SubtreeOccCount(e.child);
      max_run = std::max(max_run, view.MaxRun(e.child));
    }
    EXPECT_EQ(view.SubtreeOccCount(node), child_total);
    EXPECT_EQ(view.MaxRun(node), max_run);

    for (const Children::Edge& e : children.edges) {
      std::vector<Symbol> next = path;
      const std::span<const Symbol> label = children.Label(e);
      next.insert(next.end(), label.begin(), label.end());
      Walk(e.child, next, /*is_root=*/false);
    }
  }
};

/// Verifies the tree stores exactly the expected suffixes of `db`.
void CheckTreeAgainstDb(const TreeView& view, const SymbolDatabase& db,
                        bool sparse, Pos max_suffix_length = 0,
                        Pos min_suffix_length = 0) {
  TreeChecker checker(view);
  checker.Walk(view.Root(), {}, /*is_root=*/true);

  std::size_t expected_count = 0;
  for (SeqId id = 0; id < db.size(); ++id) {
    const SymbolSequence& s = db.sequence(id);
    for (Pos p = 0; p < s.size(); ++p) {
      if (sparse && !db.IsRunStart(id, p)) continue;
      if (min_suffix_length != 0 && s.size() - p < min_suffix_length) {
        continue;
      }
      ++expected_count;
      std::vector<Symbol> suffix(s.begin() + p, s.end());
      if (max_suffix_length != 0 && suffix.size() > max_suffix_length) {
        suffix.resize(max_suffix_length);
      }
      // Exactly one stored occurrence must sit at this suffix's path.
      auto [lo, hi] = checker.found.equal_range(suffix);
      bool present = false;
      for (auto it = lo; it != hi; ++it) {
        if (it->second.seq == id && it->second.pos == p) {
          EXPECT_EQ(it->second.run, db.RunLength(id, p));
          present = true;
        }
      }
      EXPECT_TRUE(present) << "missing suffix (" << id << ", " << p << ")";
    }
  }
  EXPECT_EQ(checker.found.size(), expected_count);
  EXPECT_EQ(view.NumOccurrences(), expected_count);
}

SymbolDatabase RandomSymbolDb(std::uint64_t seed, std::size_t num_seqs,
                              std::size_t max_len, Symbol alphabet) {
  Rng rng(seed);
  SymbolDatabase db;
  for (std::size_t i = 0; i < num_seqs; ++i) {
    const auto len = static_cast<std::size_t>(
        rng.UniformInt(1, static_cast<int>(max_len)));
    SymbolSequence s;
    for (std::size_t p = 0; p < len; ++p) {
      s.push_back(static_cast<Symbol>(rng.UniformInt(0, alphabet - 1)));
    }
    db.Add(std::move(s));
  }
  return db;
}

TEST(SuffixTreeTest, SingleSequenceStoresAllSuffixes) {
  SymbolDatabase db;
  db.Add({0, 1, 0, 1, 2});
  const SuffixTree tree = BuildSuffixTree(db);
  CheckTreeAgainstDb(tree, db, /*sparse=*/false);
}

TEST(SuffixTreeTest, RepeatedSymbolSequence) {
  SymbolDatabase db;
  db.Add({3, 3, 3, 3, 3, 3});
  const SuffixTree tree = BuildSuffixTree(db);
  CheckTreeAgainstDb(tree, db, /*sparse=*/false);
  // All suffixes lie on a single chain of nodes.
  EXPECT_EQ(tree.NumOccurrences(), 6u);
}

TEST(SuffixTreeTest, IdenticalSequencesShareAllPaths) {
  SymbolDatabase db;
  db.Add({1, 2, 3, 4});
  db.Add({1, 2, 3, 4});
  const SuffixTree tree = BuildSuffixTree(db);
  CheckTreeAgainstDb(tree, db, /*sparse=*/false);
  // The second copy adds occurrences, not label symbols.
  SymbolDatabase single;
  single.Add({1, 2, 3, 4});
  const SuffixTree tree1 = BuildSuffixTree(single);
  EXPECT_EQ(tree.NumLabelSymbols(), tree1.NumLabelSymbols());
  EXPECT_EQ(tree.NumNodes(), tree1.NumNodes());
  EXPECT_EQ(tree.NumOccurrences(), 2 * tree1.NumOccurrences());
}

TEST(SuffixTreeTest, RandomDatabasesAreWellFormed) {
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    const SymbolDatabase db = RandomSymbolDb(seed, 6, 25, 4);
    const SuffixTree tree = BuildSuffixTree(db);
    CheckTreeAgainstDb(tree, db, /*sparse=*/false);
  }
}

TEST(SuffixTreeTest, BinaryAlphabetStress) {
  // Tiny alphabet maximizes shared prefixes and edge splits.
  for (std::uint64_t seed = 50; seed < 56; ++seed) {
    const SymbolDatabase db = RandomSymbolDb(seed, 5, 40, 2);
    const SuffixTree tree = BuildSuffixTree(db);
    CheckTreeAgainstDb(tree, db, /*sparse=*/false);
  }
}

TEST(SparseSuffixTreeTest, StoresOnlyRunStarts) {
  SymbolDatabase db;
  // CS_8 of the paper: <C1,C1,C1,C3,C2,C2> -> stored suffixes 1, 4, 5
  // (1-based), i.e. positions 0, 3, 4.
  db.Add({1, 1, 1, 3, 2, 2});
  BuildOptions options;
  options.sparse = true;
  const SuffixTree tree = BuildSuffixTree(db, options);
  EXPECT_EQ(tree.NumOccurrences(), 3u);
  CheckTreeAgainstDb(tree, db, /*sparse=*/true);
}

TEST(SparseSuffixTreeTest, RunLengthsRecorded) {
  SymbolDatabase db;
  db.Add({7, 7, 7, 7, 1, 7, 7});
  EXPECT_EQ(db.RunLength(0, 0), 4u);
  EXPECT_EQ(db.RunLength(0, 2), 2u);
  EXPECT_EQ(db.RunLength(0, 4), 1u);
  EXPECT_EQ(db.RunLength(0, 5), 2u);
  EXPECT_TRUE(db.IsRunStart(0, 0));
  EXPECT_FALSE(db.IsRunStart(0, 1));
  EXPECT_TRUE(db.IsRunStart(0, 4));
  EXPECT_TRUE(db.IsRunStart(0, 5));
  EXPECT_FALSE(db.IsRunStart(0, 6));

  BuildOptions options;
  options.sparse = true;
  const SuffixTree tree = BuildSuffixTree(db, options);
  CheckTreeAgainstDb(tree, db, /*sparse=*/true);
  // MaxRun at the root covers the longest run.
  EXPECT_EQ(tree.MaxRun(tree.Root()), 4u);
}

TEST(SparseSuffixTreeTest, RandomSparseTreesAreWellFormed) {
  for (std::uint64_t seed = 100; seed < 110; ++seed) {
    const SymbolDatabase db = RandomSymbolDb(seed, 6, 30, 3);
    BuildOptions options;
    options.sparse = true;
    const SuffixTree tree = BuildSuffixTree(db, options);
    CheckTreeAgainstDb(tree, db, /*sparse=*/true);
  }
}

TEST(SuffixTreeBuilderTest, CompactionAccounting) {
  SymbolDatabase db;
  db.Add({1, 1, 1, 1, 2, 2});  // 6 suffixes, run starts at 0 and 4.
  BuildOptions options;
  options.sparse = true;
  SuffixTreeBuilder builder(&db, options);
  builder.InsertSequence(0);
  EXPECT_EQ(builder.stored_suffixes(), 2u);
  EXPECT_EQ(builder.skipped_suffixes(), 4u);
}

TEST(SuffixTreeBuilderTest, LengthBounds) {
  SymbolDatabase db;
  db.Add({1, 2, 3, 4, 5, 6});
  BuildOptions options;
  options.min_suffix_length = 3;   // Suffixes of length 1-2 skipped.
  options.max_suffix_length = 4;   // Longer suffixes truncated to 4.
  const SuffixTree tree = BuildSuffixTree(db, options);
  EXPECT_EQ(tree.NumOccurrences(), 4u);  // Starts 0..3.
  CheckTreeAgainstDb(tree, db, /*sparse=*/false, /*max_suffix_length=*/4,
                     /*min_suffix_length=*/3);
}

TEST(SuffixTreeTest, SizeBytesTracksComponents) {
  SymbolDatabase db;
  db.Add({0, 1, 2, 0, 1});
  const SuffixTree tree = BuildSuffixTree(db);
  EXPECT_EQ(tree.SizeBytes(), 64 + tree.NumNodes() * 32 +
                                  tree.NumOccurrences() * 16 +
                                  tree.NumLabelSymbols() * sizeof(Symbol));
}

TEST(SuffixTreeTest, CollectSubtreeOccurrencesFindsAll) {
  const SymbolDatabase db = RandomSymbolDb(7, 4, 15, 3);
  const SuffixTree tree = BuildSuffixTree(db);
  std::vector<OccurrenceRec> all;
  tree.CollectSubtreeOccurrences(tree.Root(), &all);
  EXPECT_EQ(all.size(), tree.NumOccurrences());
}

}  // namespace
}  // namespace tswarp::suffixtree
