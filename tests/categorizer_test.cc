#include "categorize/categorizer.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "datagen/generators.h"

namespace tswarp::categorize {
namespace {

std::vector<Value> UniformValues(std::size_t n, std::uint64_t seed,
                                 Value lo = 0.0, Value hi = 100.0) {
  Rng rng(seed);
  std::vector<Value> v;
  v.reserve(n);
  for (std::size_t i = 0; i < n; ++i) v.push_back(rng.Uniform(lo, hi));
  return v;
}

TEST(AlphabetTest, FromBoundariesValidation) {
  EXPECT_FALSE(Alphabet::FromBoundaries({1.0}).ok());
  EXPECT_FALSE(Alphabet::FromBoundaries({2.0, 1.0}).ok());
  EXPECT_FALSE(Alphabet::FromBoundaries({1.0, 1.0, 2.0}).ok());
  EXPECT_TRUE(Alphabet::FromBoundaries({0.0, 1.0, 2.0}).ok());
}

TEST(AlphabetTest, ToSymbolRespectsHalfOpenIntervals) {
  auto a = Alphabet::FromBoundaries({0.0, 1.0, 2.0, 3.0}).value();
  EXPECT_EQ(a.size(), 3u);
  EXPECT_EQ(a.ToSymbol(0.0), 0);
  EXPECT_EQ(a.ToSymbol(0.99), 0);
  EXPECT_EQ(a.ToSymbol(1.0), 1);
  EXPECT_EQ(a.ToSymbol(2.5), 2);
  // Clamping outside the nominal range.
  EXPECT_EQ(a.ToSymbol(-5.0), 0);
  EXPECT_EQ(a.ToSymbol(3.0), 2);
  EXPECT_EQ(a.ToSymbol(99.0), 2);
}

TEST(AlphabetTest, PaperSection5Example) {
  // Paper: C1 = [0.1, 3.9], C2 = [4.0, 10.0];
  // S7 = <5.27, 2.56, 3.85> -> <C2, C1, C1>.
  auto a = Alphabet::FromBoundaries({0.1, 3.95, 10.0}).value();
  EXPECT_EQ(a.ToSymbol(5.27), 1);
  EXPECT_EQ(a.ToSymbol(2.56), 0);
  EXPECT_EQ(a.ToSymbol(3.85), 0);
}

TEST(AlphabetTest, FitValueTightensToObservedMinMax) {
  auto a = Alphabet::FromBoundaries({0.0, 10.0, 20.0}).value();
  a.FitValue(3.0);
  a.FitValue(7.0);
  a.FitValue(5.0);
  EXPECT_DOUBLE_EQ(a.category(0).lb, 3.0);
  EXPECT_DOUBLE_EQ(a.category(0).ub, 7.0);
  EXPECT_TRUE(a.IsFitted(0));
  EXPECT_FALSE(a.IsFitted(1));
  // The untouched category keeps its nominal interval.
  EXPECT_DOUBLE_EQ(a.category(1).lb, 10.0);
  EXPECT_DOUBLE_EQ(a.category(1).ub, 20.0);
}

TEST(EqualLengthTest, IntervalsHaveEqualWidth) {
  const std::vector<Value> values = UniformValues(5000, 1);
  auto a = BuildEqualLength(values, 10).value();
  ASSERT_EQ(a.size(), 10u);
  const auto b = a.boundaries();
  const Value width = b[1] - b[0];
  for (std::size_t i = 0; i + 1 < b.size(); ++i) {
    EXPECT_NEAR(b[i + 1] - b[i], width, 1e-9);
  }
}

TEST(EqualLengthTest, CoversValueRange) {
  const std::vector<Value> values = UniformValues(100, 2, -50, 75);
  auto a = BuildEqualLength(values, 7).value();
  auto [lo, hi] = std::minmax_element(values.begin(), values.end());
  EXPECT_DOUBLE_EQ(a.boundaries().front(), *lo);
  EXPECT_DOUBLE_EQ(a.boundaries().back(), *hi);
}

TEST(EqualLengthTest, RejectsDegenerateRange) {
  const std::vector<Value> values(10, 5.0);
  EXPECT_FALSE(BuildEqualLength(values, 4).ok());
  EXPECT_FALSE(BuildEqualLength({}, 4).ok());
  EXPECT_FALSE(BuildEqualLength(values, 0).ok());
}

TEST(MaxEntropyTest, EqualFrequencies) {
  const std::vector<Value> values = UniformValues(10000, 3);
  auto a = BuildMaxEntropy(values, 8).value();
  ASSERT_EQ(a.size(), 8u);
  std::vector<std::size_t> counts(a.size(), 0);
  for (Value v : values) ++counts[static_cast<std::size_t>(a.ToSymbol(v))];
  for (std::size_t c : counts) {
    EXPECT_NEAR(static_cast<double>(c), 10000.0 / 8.0, 10000.0 * 0.02);
  }
}

TEST(MaxEntropyTest, EntropyAtLeastEqualLength) {
  // On a skewed distribution, ME must achieve at least the entropy of EL
  // (it maximizes entropy by construction).
  Rng rng(4);
  std::vector<Value> values;
  for (int i = 0; i < 5000; ++i) {
    values.push_back(rng.LogNormal(1.0, 0.8));
  }
  for (std::size_t c : {4u, 16u, 64u}) {
    auto me = BuildMaxEntropy(values, c).value();
    auto el = BuildEqualLength(values, c).value();
    EXPECT_GE(CategorizationEntropy(values, me) + 1e-6,
              CategorizationEntropy(values, el))
        << "c=" << c;
    // And close to the theoretical maximum log(c).
    EXPECT_GT(CategorizationEntropy(values, me),
              0.95 * std::log(static_cast<double>(c)));
  }
}

TEST(MaxEntropyTest, MergesDuplicateQuantiles) {
  // Heavily repeated values force duplicate quantile boundaries.
  std::vector<Value> values(1000, 5.0);
  for (int i = 0; i < 10; ++i) values.push_back(static_cast<Value>(i));
  auto a = BuildMaxEntropy(values, 16);
  ASSERT_TRUE(a.ok());
  EXPECT_LE(a->size(), 16u);
  EXPECT_GE(a->size(), 1u);
}

TEST(KMeansTest, ProducesRequestedCategoriesOnSpreadData) {
  const std::vector<Value> values = UniformValues(2000, 5);
  auto a = BuildKMeans(values, 12, 32, 1).value();
  EXPECT_GE(a.size(), 6u);
  EXPECT_LE(a.size(), 12u);
}

TEST(KMeansTest, SeparatesWellSeparatedClusters) {
  Rng rng(6);
  std::vector<Value> values;
  for (int c = 0; c < 3; ++c) {
    for (int i = 0; i < 500; ++i) {
      values.push_back(static_cast<Value>(c) * 100.0 + rng.Gaussian(0, 1));
    }
  }
  auto a = BuildKMeans(values, 3, 32, 1).value();
  ASSERT_EQ(a.size(), 3u);
  // Every cluster maps to its own symbol.
  EXPECT_EQ(a.ToSymbol(0.0), 0);
  EXPECT_EQ(a.ToSymbol(100.0), 1);
  EXPECT_EQ(a.ToSymbol(200.0), 2);
}

TEST(ConvertTest, RoundTripSymbolsContainValues) {
  const std::vector<Value> values = UniformValues(500, 7);
  auto a = BuildMaxEntropy(values, 10).value();
  for (Value v : values) {
    const Symbol s = a.ToSymbol(v);
    // Nominal category interval must contain the value (before fitting,
    // boundaries bound the data).
    EXPECT_LE(a.category(s).lb, v + 1e-12);
    EXPECT_GE(a.category(s).ub + 1e-9, v);
  }
}

TEST(ConvertDatabaseTest, FittedIntervalsContainAllConvertedValues) {
  datagen::StockOptions options;
  options.num_sequences = 20;
  options.avg_length = 60;
  const seqdb::SequenceDatabase db = datagen::GenerateStocks(options);
  const std::vector<Value> values = CollectValues(db);
  auto alphabet = BuildMaxEntropy(values, 12).value();
  const CategorizedDatabase converted = ConvertDatabase(db, &alphabet);
  ASSERT_EQ(converted.size(), db.size());
  for (SeqId id = 0; id < db.size(); ++id) {
    const seqdb::Sequence& s = db.sequence(id);
    ASSERT_EQ(converted.sequence(id).size(), s.size());
    for (std::size_t p = 0; p < s.size(); ++p) {
      const Symbol sym = converted.sequence(id)[p];
      EXPECT_EQ(sym, alphabet.ToSymbol(s[p]));
      // Paper 5.3: lb/ub are the min/max values found in the category.
      EXPECT_LE(alphabet.category(sym).lb, s[p]);
      EXPECT_GE(alphabet.category(sym).ub, s[p]);
    }
  }
}

TEST(ConvertDatabaseTest, FittedIntervalsAreMinMaxOfCategoryMembers) {
  seqdb::SequenceDatabase db;
  db.Add({1.0, 2.0, 11.0, 19.0});
  db.Add({3.5, 12.0});
  auto alphabet = Alphabet::FromBoundaries({0.0, 10.0, 20.0}).value();
  ConvertDatabase(db, &alphabet);
  EXPECT_DOUBLE_EQ(alphabet.category(0).lb, 1.0);
  EXPECT_DOUBLE_EQ(alphabet.category(0).ub, 3.5);
  EXPECT_DOUBLE_EQ(alphabet.category(1).lb, 11.0);
  EXPECT_DOUBLE_EQ(alphabet.category(1).ub, 19.0);
}

TEST(BuildDispatchTest, AllMethodsWork) {
  const std::vector<Value> values = UniformValues(300, 8);
  for (Method m : {Method::kEqualLength, Method::kMaxEntropy,
                   Method::kKMeans}) {
    auto a = Build(m, values, 6, 1);
    ASSERT_TRUE(a.ok()) << MethodToString(m);
    EXPECT_GE(a->size(), 2u);
  }
}

TEST(MethodToStringTest, Names) {
  EXPECT_STREQ(MethodToString(Method::kEqualLength), "EL");
  EXPECT_STREQ(MethodToString(Method::kMaxEntropy), "ME");
  EXPECT_STREQ(MethodToString(Method::kKMeans), "KM");
}

}  // namespace
}  // namespace tswarp::categorize
