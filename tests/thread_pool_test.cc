// ThreadPool contract: tasks all run, Wait() drains and rethrows the
// first task exception, and the pool is reusable after Wait().

#include <atomic>
#include <chrono>
#include <stdexcept>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/thread_pool.h"

namespace tswarp {
namespace {

TEST(ThreadPoolTest, RunsEveryTask) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&count] { count.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPoolTest, WaitRethrowsFirstException) {
  ThreadPool pool(2);
  std::atomic<int> ran{0};
  pool.Submit([] { throw std::runtime_error("boom"); });
  for (int i = 0; i < 10; ++i) {
    pool.Submit([&ran] { ran.fetch_add(1); });
  }
  EXPECT_THROW(pool.Wait(), std::runtime_error);
  // The exception is cleared and the rest of the queue still ran.
  pool.Wait();
  EXPECT_EQ(ran.load(), 10);
}

TEST(ThreadPoolTest, ReusableAfterWait) {
  ThreadPool pool(3);
  std::atomic<int> count{0};
  for (int round = 0; round < 5; ++round) {
    for (int i = 0; i < 20; ++i) {
      pool.Submit([&count] { count.fetch_add(1); });
    }
    pool.Wait();
    EXPECT_EQ(count.load(), (round + 1) * 20);
  }
}

TEST(ThreadPoolTest, TasksRunConcurrentlyAcrossWorkers) {
  // Two tasks that each wait for the other prove two workers are live;
  // a single-threaded executor would deadlock (bounded here by a timeout).
  ThreadPool pool(2);
  std::atomic<bool> a_entered{false};
  std::atomic<bool> b_entered{false};
  auto spin_until = [](std::atomic<bool>& flag) {
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(10);
    while (!flag.load() && std::chrono::steady_clock::now() < deadline) {
      std::this_thread::yield();
    }
    return flag.load();
  };
  std::atomic<bool> ok{true};
  pool.Submit([&] {
    a_entered.store(true);
    if (!spin_until(b_entered)) ok.store(false);
  });
  pool.Submit([&] {
    b_entered.store(true);
    if (!spin_until(a_entered)) ok.store(false);
  });
  pool.Wait();
  EXPECT_TRUE(ok.load());
}

TEST(ThreadPoolTest, DestructorDrainsPendingTasks) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(1);
    for (int i = 0; i < 50; ++i) {
      pool.Submit([&count] { count.fetch_add(1); });
    }
  }
  EXPECT_EQ(count.load(), 50);
}

TEST(ThreadPoolTest, HardwareThreadsIsPositive) {
  EXPECT_GE(ThreadPool::HardwareThreads(), 1u);
}

}  // namespace
}  // namespace tswarp
