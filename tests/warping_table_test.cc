#include "dtw/warping_table.h"

#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "dtw/dtw.h"

namespace tswarp::dtw {
namespace {

TEST(WarpingTableTest, PrefixDistancesMatchPaperFigure1) {
  // Paper Figure 1: query S3 = <3,4,3> along x, S4 = <4,5,6,7,6,6> as rows.
  const std::vector<Value> q = {3, 4, 3};
  const std::vector<Value> s4 = {4, 5, 6, 7, 6, 6};
  const std::vector<Value> expected_last_col = {2, 3, 5, 8, 10, 12};
  WarpingTable table(q);
  for (std::size_t i = 0; i < s4.size(); ++i) {
    table.PushRowValue(s4[i]);
    EXPECT_DOUBLE_EQ(table.LastColumn(), expected_last_col[i])
        << "prefix length " << (i + 1);
  }
}

TEST(WarpingTableTest, LastColumnEqualsDtwOfPrefix) {
  Rng rng(17);
  for (int trial = 0; trial < 100; ++trial) {
    std::vector<Value> q, s;
    const int lq = static_cast<int>(rng.UniformInt(1, 10));
    const int ls = static_cast<int>(rng.UniformInt(1, 15));
    for (int i = 0; i < lq; ++i) q.push_back(rng.Uniform(0, 10));
    for (int i = 0; i < ls; ++i) s.push_back(rng.Uniform(0, 10));
    WarpingTable table(q);
    for (int i = 0; i < ls; ++i) {
      table.PushRowValue(s[i]);
      const std::span<const Value> prefix(s.data(),
                                          static_cast<std::size_t>(i) + 1);
      EXPECT_DOUBLE_EQ(table.LastColumn(), DtwDistance(q, prefix));
    }
  }
}

TEST(WarpingTableTest, PopRowRestoresState) {
  const std::vector<Value> q = {1, 2, 3};
  WarpingTable table(q);
  table.PushRowValue(1);
  const Value after_one = table.LastColumn();
  table.PushRowValue(9);
  table.PushRowValue(9);
  table.PopRows(2);
  EXPECT_EQ(table.NumRows(), 1u);
  EXPECT_DOUBLE_EQ(table.LastColumn(), after_one);
  // Re-pushing gives the same values as the first time.
  table.PushRowValue(2);
  const Value with_two = table.LastColumn();
  table.PopRow();
  table.PushRowValue(2);
  EXPECT_DOUBLE_EQ(table.LastColumn(), with_two);
}

TEST(WarpingTableTest, SharedPrefixEqualsRebuild) {
  // The DFS sharing pattern: distances after push/pop interleavings match
  // freshly built tables (the R_d sharing of Section 4.3 is exact).
  Rng rng(23);
  const std::vector<Value> q = {2, 4, 6, 8};
  WarpingTable shared(q);
  std::vector<Value> prefix;
  for (int step = 0; step < 200; ++step) {
    if (!prefix.empty() && rng.Coin(0.4)) {
      prefix.pop_back();
      shared.PopRow();
    } else {
      const Value v = rng.Uniform(0, 10);
      prefix.push_back(v);
      shared.PushRowValue(v);
    }
    if (!prefix.empty()) {
      WarpingTable fresh(q);
      for (Value v : prefix) fresh.PushRowValue(v);
      ASSERT_DOUBLE_EQ(shared.LastColumn(), fresh.LastColumn());
      ASSERT_DOUBLE_EQ(shared.RowMin(), fresh.RowMin());
    }
  }
}

TEST(WarpingTableTest, RowMinNeverExceedsLastColumn) {
  Rng rng(29);
  const std::vector<Value> q = {1, 3, 5};
  WarpingTable table(q);
  for (int i = 0; i < 50; ++i) {
    table.PushRowValue(rng.Uniform(0, 10));
    EXPECT_LE(table.RowMin(), table.LastColumn());
  }
}

// Theorem 1: once the row minimum exceeds epsilon, no later row's last
// column can be <= epsilon.
TEST(WarpingTableTest, Theorem1NoRecoveryAfterRowMinExceeds) {
  Rng rng(41);
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<Value> q;
    const int lq = static_cast<int>(rng.UniformInt(1, 6));
    for (int i = 0; i < lq; ++i) q.push_back(rng.Uniform(0, 10));
    const Value eps = rng.Uniform(0, 8);
    WarpingTable table(q);
    bool exceeded = false;
    for (int i = 0; i < 30; ++i) {
      table.PushRowValue(rng.Uniform(0, 10));
      if (exceeded) {
        ASSERT_GT(table.LastColumn(), eps)
            << "Theorem 1 violated at row " << (i + 1);
      }
      if (table.RowMin() > eps) exceeded = true;
    }
  }
}

TEST(WarpingTableTest, RowMinIsMonotoneNonDecreasing) {
  // The row minimum is non-decreasing in the row index (cumulative
  // distances only grow), which is why Theorem 1 gives a safe cutoff.
  Rng rng(43);
  const std::vector<Value> q = {5, 1, 7, 2};
  WarpingTable table(q);
  Value prev = 0.0;
  for (int i = 0; i < 100; ++i) {
    table.PushRowValue(rng.Uniform(0, 10));
    EXPECT_GE(table.RowMin(), prev - 1e-12);
    prev = table.RowMin();
  }
}

TEST(WarpingTableTest, IntervalRowsLowerBoundValueRows) {
  Rng rng(47);
  for (int trial = 0; trial < 100; ++trial) {
    std::vector<Value> q;
    const int lq = static_cast<int>(rng.UniformInt(1, 6));
    for (int i = 0; i < lq; ++i) q.push_back(rng.Uniform(0, 10));
    WarpingTable exact(q);
    WarpingTable lower(q);
    for (int i = 0; i < 20; ++i) {
      const Value v = rng.Uniform(0, 10);
      const Value lo = v - rng.Uniform(0, 1.5);
      const Value hi = v + rng.Uniform(0, 1.5);
      exact.PushRowValue(v);
      lower.PushRowInterval(lo, hi);
      EXPECT_LE(lower.LastColumn(), exact.LastColumn() + 1e-9);
      EXPECT_LE(lower.RowMin(), exact.RowMin() + 1e-9);
    }
  }
}

TEST(WarpingTableTest, CellsComputedCountsRows) {
  const std::vector<Value> q = {1, 2, 3, 4, 5};
  WarpingTable table(q);
  table.PushRowValue(1);
  table.PushRowValue(2);
  EXPECT_EQ(table.cells_computed(), 10u);
  table.PopRow();
  table.PushRowValue(3);
  EXPECT_EQ(table.cells_computed(), 15u);
}

TEST(WarpingTableTest, CustomRowsMatchValueRows) {
  const std::vector<Value> q = {1, 4, 2};
  WarpingTable a(q);
  WarpingTable b(q.size(), 0);
  for (Value v : {3.0, 0.5, 2.0}) {
    a.PushRowValue(v);
    b.PushRowCustom(
        [&](std::size_t x) { return std::fabs(q[x] - v); });
    EXPECT_DOUBLE_EQ(a.LastColumn(), b.LastColumn());
    EXPECT_DOUBLE_EQ(a.RowMin(), b.RowMin());
  }
}

TEST(WarpingTableTest, BandedTableMatchesBandedDistance) {
  Rng rng(53);
  for (int trial = 0; trial < 100; ++trial) {
    std::vector<Value> q, s;
    const int lq = static_cast<int>(rng.UniformInt(2, 8));
    const int ls = static_cast<int>(rng.UniformInt(2, 8));
    for (int i = 0; i < lq; ++i) q.push_back(rng.Uniform(0, 10));
    for (int i = 0; i < ls; ++i) s.push_back(rng.Uniform(0, 10));
    const Pos band = static_cast<Pos>(rng.UniformInt(1, 9));
    WarpingTable table(q, band);
    for (Value v : s) table.PushRowValue(v);
    EXPECT_DOUBLE_EQ(table.LastColumn(), DtwDistanceBanded(q, s, band));
  }
}

}  // namespace
}  // namespace tswarp::dtw
