#include "dtw/warping_table.h"

#include <bit>
#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "dtw/dtw.h"
#include "dtw/simd.h"

namespace tswarp::dtw {
namespace {

TEST(WarpingTableTest, PrefixDistancesMatchPaperFigure1) {
  // Paper Figure 1: query S3 = <3,4,3> along x, S4 = <4,5,6,7,6,6> as rows.
  const std::vector<Value> q = {3, 4, 3};
  const std::vector<Value> s4 = {4, 5, 6, 7, 6, 6};
  const std::vector<Value> expected_last_col = {2, 3, 5, 8, 10, 12};
  WarpingTable table(q);
  for (std::size_t i = 0; i < s4.size(); ++i) {
    table.PushRowValue(s4[i]);
    EXPECT_DOUBLE_EQ(table.LastColumn(), expected_last_col[i])
        << "prefix length " << (i + 1);
  }
}

TEST(WarpingTableTest, LastColumnEqualsDtwOfPrefix) {
  Rng rng(17);
  for (int trial = 0; trial < 100; ++trial) {
    std::vector<Value> q, s;
    const int lq = static_cast<int>(rng.UniformInt(1, 10));
    const int ls = static_cast<int>(rng.UniformInt(1, 15));
    for (int i = 0; i < lq; ++i) q.push_back(rng.Uniform(0, 10));
    for (int i = 0; i < ls; ++i) s.push_back(rng.Uniform(0, 10));
    WarpingTable table(q);
    for (int i = 0; i < ls; ++i) {
      table.PushRowValue(s[i]);
      const std::span<const Value> prefix(s.data(),
                                          static_cast<std::size_t>(i) + 1);
      EXPECT_DOUBLE_EQ(table.LastColumn(), DtwDistance(q, prefix));
    }
  }
}

TEST(WarpingTableTest, PopRowRestoresState) {
  const std::vector<Value> q = {1, 2, 3};
  WarpingTable table(q);
  table.PushRowValue(1);
  const Value after_one = table.LastColumn();
  table.PushRowValue(9);
  table.PushRowValue(9);
  table.PopRows(2);
  EXPECT_EQ(table.NumRows(), 1u);
  EXPECT_DOUBLE_EQ(table.LastColumn(), after_one);
  // Re-pushing gives the same values as the first time.
  table.PushRowValue(2);
  const Value with_two = table.LastColumn();
  table.PopRow();
  table.PushRowValue(2);
  EXPECT_DOUBLE_EQ(table.LastColumn(), with_two);
}

TEST(WarpingTableTest, SharedPrefixEqualsRebuild) {
  // The DFS sharing pattern: distances after push/pop interleavings match
  // freshly built tables (the R_d sharing of Section 4.3 is exact).
  Rng rng(23);
  const std::vector<Value> q = {2, 4, 6, 8};
  WarpingTable shared(q);
  std::vector<Value> prefix;
  for (int step = 0; step < 200; ++step) {
    if (!prefix.empty() && rng.Coin(0.4)) {
      prefix.pop_back();
      shared.PopRow();
    } else {
      const Value v = rng.Uniform(0, 10);
      prefix.push_back(v);
      shared.PushRowValue(v);
    }
    if (!prefix.empty()) {
      WarpingTable fresh(q);
      for (Value v : prefix) fresh.PushRowValue(v);
      ASSERT_DOUBLE_EQ(shared.LastColumn(), fresh.LastColumn());
      ASSERT_DOUBLE_EQ(shared.RowMin(), fresh.RowMin());
    }
  }
}

TEST(WarpingTableTest, RowMinNeverExceedsLastColumn) {
  Rng rng(29);
  const std::vector<Value> q = {1, 3, 5};
  WarpingTable table(q);
  for (int i = 0; i < 50; ++i) {
    table.PushRowValue(rng.Uniform(0, 10));
    EXPECT_LE(table.RowMin(), table.LastColumn());
  }
}

// Theorem 1: once the row minimum exceeds epsilon, no later row's last
// column can be <= epsilon.
TEST(WarpingTableTest, Theorem1NoRecoveryAfterRowMinExceeds) {
  Rng rng(41);
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<Value> q;
    const int lq = static_cast<int>(rng.UniformInt(1, 6));
    for (int i = 0; i < lq; ++i) q.push_back(rng.Uniform(0, 10));
    const Value eps = rng.Uniform(0, 8);
    WarpingTable table(q);
    bool exceeded = false;
    for (int i = 0; i < 30; ++i) {
      table.PushRowValue(rng.Uniform(0, 10));
      if (exceeded) {
        ASSERT_GT(table.LastColumn(), eps)
            << "Theorem 1 violated at row " << (i + 1);
      }
      if (table.RowMin() > eps) exceeded = true;
    }
  }
}

TEST(WarpingTableTest, RowMinIsMonotoneNonDecreasing) {
  // The row minimum is non-decreasing in the row index (cumulative
  // distances only grow), which is why Theorem 1 gives a safe cutoff.
  Rng rng(43);
  const std::vector<Value> q = {5, 1, 7, 2};
  WarpingTable table(q);
  Value prev = 0.0;
  for (int i = 0; i < 100; ++i) {
    table.PushRowValue(rng.Uniform(0, 10));
    EXPECT_GE(table.RowMin(), prev - 1e-12);
    prev = table.RowMin();
  }
}

TEST(WarpingTableTest, IntervalRowsLowerBoundValueRows) {
  Rng rng(47);
  for (int trial = 0; trial < 100; ++trial) {
    std::vector<Value> q;
    const int lq = static_cast<int>(rng.UniformInt(1, 6));
    for (int i = 0; i < lq; ++i) q.push_back(rng.Uniform(0, 10));
    WarpingTable exact(q);
    WarpingTable lower(q);
    for (int i = 0; i < 20; ++i) {
      const Value v = rng.Uniform(0, 10);
      const Value lo = v - rng.Uniform(0, 1.5);
      const Value hi = v + rng.Uniform(0, 1.5);
      exact.PushRowValue(v);
      lower.PushRowInterval(lo, hi);
      EXPECT_LE(lower.LastColumn(), exact.LastColumn() + 1e-9);
      EXPECT_LE(lower.RowMin(), exact.RowMin() + 1e-9);
    }
  }
}

TEST(WarpingTableTest, CellsComputedCountsRows) {
  const std::vector<Value> q = {1, 2, 3, 4, 5};
  WarpingTable table(q);
  table.PushRowValue(1);
  table.PushRowValue(2);
  EXPECT_EQ(table.cells_computed(), 10u);
  table.PopRow();
  table.PushRowValue(3);
  EXPECT_EQ(table.cells_computed(), 15u);
}

TEST(WarpingTableTest, CustomRowsMatchValueRows) {
  const std::vector<Value> q = {1, 4, 2};
  WarpingTable a(q);
  WarpingTable b(q.size(), 0);
  for (Value v : {3.0, 0.5, 2.0}) {
    a.PushRowValue(v);
    b.PushRowCustom(
        [&](std::size_t x) { return std::fabs(q[x] - v); });
    EXPECT_DOUBLE_EQ(a.LastColumn(), b.LastColumn());
    EXPECT_DOUBLE_EQ(a.RowMin(), b.RowMin());
  }
}

TEST(WarpingTableTest, BandExcludesEntireRow) {
  // With a narrow band, rows far below the diagonal have an empty in-band
  // column range: the whole row is the +infinity fill, and — because
  // cumulative distances only grow — every later row is +infinity too.
  const std::vector<Value> q = {1, 2, 3};
  WarpingTable table(q, /*band=*/1);
  std::vector<Value> last, row_min;
  for (int i = 0; i < 8; ++i) {
    table.PushRowValue(2.0);
    last.push_back(table.LastColumn());
    row_min.push_back(table.RowMin());
  }
  // Early rows intersect the band diagonal: some cell is finite.
  EXPECT_TRUE(std::isfinite(row_min.front()));
  // Rows past query_len + band lie entirely outside the band: the whole
  // row is the +infinity fill, and every later row stays +infinity.
  EXPECT_TRUE(std::isinf(row_min.back()));
  EXPECT_TRUE(std::isinf(last.back()));
  bool seen_inf = false;
  for (const Value m : row_min) {
    if (std::isinf(m)) seen_inf = true;
    if (seen_inf) {
      EXPECT_TRUE(std::isinf(m));
    }
  }
  // Popping back across the all-infinity rows restores the recorded
  // prefix exactly.
  while (table.NumRows() > 1) {
    table.PopRow();
    EXPECT_DOUBLE_EQ(table.LastColumn(), last[table.NumRows() - 1]);
    EXPECT_DOUBLE_EQ(table.RowMin(), row_min[table.NumRows() - 1]);
  }
}

TEST(WarpingTableTest, PopRowsAcrossBandBoundaries) {
  // Push/pop interleavings that cross the row where the band window hits
  // the right edge of the query and the row where it empties entirely:
  // shared-prefix reuse must be exact across both boundaries.
  Rng rng(59);
  const std::vector<Value> q = {4, 1, 7, 3, 9};
  for (const Pos band : {Pos{1}, Pos{2}, Pos{3}}) {
    WarpingTable shared(q, band);
    std::vector<Value> rows;
    for (int i = 0; i < 12; ++i) {
      rows.push_back(rng.Uniform(0, 10));
      shared.PushRowValue(rows.back());
    }
    // Pop from beyond the band-empty region back to row 2, then re-push.
    shared.PopRows(10);
    ASSERT_EQ(shared.NumRows(), 2u);
    for (std::size_t i = 2; i < rows.size(); ++i) {
      shared.PushRowValue(rows[i]);
      WarpingTable fresh(q, band);
      for (std::size_t j = 0; j <= i; ++j) fresh.PushRowValue(rows[j]);
      ASSERT_DOUBLE_EQ(shared.LastColumn(), fresh.LastColumn())
          << "band " << band << " row " << i;
      ASSERT_DOUBLE_EQ(shared.RowMin(), fresh.RowMin());
    }
  }
}

TEST(WarpingTableTest, TableResultsBitwiseEqualAcrossSimdBackends) {
  // End-to-end check of the canonical-dataflow contract (simd.h): whole
  // tables — banded and not, value and interval rows — produce bitwise
  // identical per-row results on every backend this machine can run.
  Rng rng(61);
  const std::string saved = simd::ActiveBackend();
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<Value> q;
    const int lq = static_cast<int>(rng.UniformInt(1, 20));
    for (int i = 0; i < lq; ++i) q.push_back(rng.Uniform(0, 10));
    const Pos band = rng.Coin(0.5) ? static_cast<Pos>(rng.UniformInt(1, 6))
                                   : Pos{0};
    std::vector<Value> rows;
    for (int i = 0; i < 15; ++i) rows.push_back(rng.Uniform(0, 10));

    std::vector<std::uint64_t> want;
    bool first = true;
    for (const std::string& backend : simd::AvailableBackends()) {
      ASSERT_TRUE(simd::SetBackend(backend));
      std::vector<std::uint64_t> got;
      WarpingTable exact(q, band);
      WarpingTable interval(q, band);
      for (const Value v : rows) {
        exact.PushRowValue(v);
        interval.PushRowInterval(v - 0.5, v + 0.5);
        got.push_back(std::bit_cast<std::uint64_t>(exact.LastColumn()));
        got.push_back(std::bit_cast<std::uint64_t>(exact.RowMin()));
        got.push_back(std::bit_cast<std::uint64_t>(interval.LastColumn()));
        got.push_back(std::bit_cast<std::uint64_t>(interval.RowMin()));
      }
      if (first) {
        want = got;
        first = false;
      } else {
        ASSERT_EQ(want, got) << "backend " << backend << " trial " << trial;
      }
    }
  }
  ASSERT_TRUE(simd::SetBackend(saved));
}

TEST(WarpingTableTest, BandedTableMatchesBandedDistance) {
  Rng rng(53);
  for (int trial = 0; trial < 100; ++trial) {
    std::vector<Value> q, s;
    const int lq = static_cast<int>(rng.UniformInt(2, 8));
    const int ls = static_cast<int>(rng.UniformInt(2, 8));
    for (int i = 0; i < lq; ++i) q.push_back(rng.Uniform(0, 10));
    for (int i = 0; i < ls; ++i) s.push_back(rng.Uniform(0, 10));
    const Pos band = static_cast<Pos>(rng.UniformInt(1, 9));
    WarpingTable table(q, band);
    for (Value v : s) table.PushRowValue(v);
    EXPECT_DOUBLE_EQ(table.LastColumn(), DtwDistanceBanded(q, s, band));
  }
}

}  // namespace
}  // namespace tswarp::dtw
