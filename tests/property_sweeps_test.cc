// Parameterized property sweeps: each instantiation checks one invariant
// across a grid of parameters.

#include <algorithm>
#include <cmath>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "categorize/categorizer.h"
#include "common/random.h"
#include "core/index.h"
#include "datagen/generators.h"
#include "dtw/dtw.h"
#include "dtw/warping_table.h"

namespace tswarp {
namespace {

// ---------------------------------------------------------------------------
// Banded DTW vs an independent banded reference.
// ---------------------------------------------------------------------------

Value ReferenceBandedDtw(const std::vector<Value>& a,
                         const std::vector<Value>& b, Pos band) {
  const std::size_t n = a.size();
  const std::size_t m = b.size();
  std::vector<std::vector<Value>> g(n, std::vector<Value>(m, kInfinity));
  for (std::size_t x = 0; x < n; ++x) {
    for (std::size_t y = 0; y < m; ++y) {
      const std::size_t diff = x > y ? x - y : y - x;
      if (diff > band) continue;
      const Value base = std::fabs(a[x] - b[y]);
      Value best = kInfinity;
      if (x == 0 && y == 0) {
        best = 0.0;
      } else {
        if (x > 0 && y > 0) best = std::min(best, g[x - 1][y - 1]);
        if (x > 0) best = std::min(best, g[x - 1][y]);
        if (y > 0) best = std::min(best, g[x][y - 1]);
      }
      g[x][y] = base + best;
    }
  }
  return g[n - 1][m - 1];
}

class BandedDtwSweep : public testing::TestWithParam<Pos> {};

TEST_P(BandedDtwSweep, MatchesIndependentReference) {
  const Pos band = GetParam();
  Rng rng(7000 + band);
  for (int trial = 0; trial < 100; ++trial) {
    std::vector<Value> a, b;
    const int la = static_cast<int>(rng.UniformInt(1, 12));
    const int lb = static_cast<int>(rng.UniformInt(1, 12));
    for (int i = 0; i < la; ++i) a.push_back(rng.Uniform(0, 10));
    for (int i = 0; i < lb; ++i) b.push_back(rng.Uniform(0, 10));
    const Value expected = ReferenceBandedDtw(a, b, band);
    const Value actual = dtw::DtwDistanceBanded(a, b, band);
    if (std::isinf(expected)) {
      EXPECT_TRUE(std::isinf(actual));
    } else {
      // The production row step uses the canonical block-scan decomposition
      // (see dtw/simd.h), which reassociates the Definition-2 additions; it
      // agrees with this sequential reference to a handful of ULPs, not
      // bit-for-bit, hence the small relative slack (see also
      // reference_dtw_test.cc).
      EXPECT_NEAR(actual, expected, 1e-12 * (1.0 + std::fabs(expected)));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Bands, BandedDtwSweep,
                         testing::Values(1u, 2u, 3u, 5u, 8u, 15u),
                         [](const testing::TestParamInfo<Pos>& info) {
                           return "band" + std::to_string(info.param);
                         });

// ---------------------------------------------------------------------------
// Categorizer invariants across (method, category count).
// ---------------------------------------------------------------------------

using CategorizerParam = std::tuple<categorize::Method, std::size_t>;

class CategorizerSweep : public testing::TestWithParam<CategorizerParam> {};

TEST_P(CategorizerSweep, CoverageEntropyAndContainment) {
  const auto [method, c] = GetParam();
  Rng rng(42);
  std::vector<Value> values;
  for (int i = 0; i < 4000; ++i) values.push_back(rng.LogNormal(3.0, 0.7));
  auto alphabet_or = categorize::Build(method, values, c, 1);
  ASSERT_TRUE(alphabet_or.ok());
  const categorize::Alphabet& a = *alphabet_or;
  // No more categories than requested; at least one.
  EXPECT_GE(a.size(), 1u);
  EXPECT_LE(a.size(), c);
  // Boundaries strictly increasing and spanning the data.
  const auto b = a.boundaries();
  for (std::size_t i = 1; i < b.size(); ++i) EXPECT_LT(b[i - 1], b[i]);
  auto [lo, hi] = std::minmax_element(values.begin(), values.end());
  EXPECT_LE(b.front(), *lo + 1e-9);
  EXPECT_GE(b.back(), *hi - 1e-9);
  // Every value lands in a category whose nominal interval contains it.
  for (int i = 0; i < 200; ++i) {
    const Value v = values[static_cast<std::size_t>(
        rng.UniformInt(0, static_cast<int>(values.size()) - 1))];
    const Symbol s = a.ToSymbol(v);
    EXPECT_GE(v, a.category(s).lb - 1e-9);
    EXPECT_LE(v, a.category(s).ub + 1e-9);
  }
  // Entropy never exceeds log(#categories).
  EXPECT_LE(categorize::CategorizationEntropy(values, a),
            std::log(static_cast<double>(a.size())) + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, CategorizerSweep,
    testing::Combine(testing::Values(categorize::Method::kEqualLength,
                                     categorize::Method::kMaxEntropy,
                                     categorize::Method::kKMeans),
                     testing::Values(2u, 5u, 17u, 64u, 256u)),
    [](const testing::TestParamInfo<CategorizerParam>& info) {
      return std::string(categorize::MethodToString(std::get<0>(
                 info.param))) +
             "_c" + std::to_string(std::get<1>(info.param));
    });

// ---------------------------------------------------------------------------
// Sparse compaction across category counts.
// ---------------------------------------------------------------------------

class CompactionSweep : public testing::TestWithParam<std::size_t> {};

TEST_P(CompactionSweep, RatioMatchesDirectRunCount) {
  const std::size_t c = GetParam();
  datagen::StockOptions stock;
  stock.num_sequences = 30;
  stock.avg_length = 80;
  const seqdb::SequenceDatabase db = datagen::GenerateStocks(stock);
  core::IndexOptions options;
  options.kind = core::IndexKind::kSparse;
  options.num_categories = c;
  auto index = core::Index::Build(&db, options);
  ASSERT_TRUE(index.ok());

  // Recompute r directly from the categorized sequences.
  const std::vector<Value> values = categorize::CollectValues(db);
  auto alphabet = categorize::Build(categorize::Method::kMaxEntropy, values,
                                    c, options.seed)
                      .value();
  std::size_t stored = 0;
  std::size_t total = 0;
  for (SeqId id = 0; id < db.size(); ++id) {
    const auto symbols = categorize::Convert(db.sequence(id), alphabet);
    for (std::size_t p = 0; p < symbols.size(); ++p) {
      ++total;
      if (p == 0 || symbols[p] != symbols[p - 1]) ++stored;
    }
  }
  EXPECT_EQ(index->build_info().stored_suffixes, stored);
  EXPECT_NEAR(index->build_info().compaction_ratio,
              static_cast<double>(total - stored) /
                  static_cast<double>(total),
              1e-12);
}

INSTANTIATE_TEST_SUITE_P(Counts, CompactionSweep,
                         testing::Values(2u, 4u, 8u, 16u, 32u, 64u),
                         [](const testing::TestParamInfo<std::size_t>& info) {
                           return "c" + std::to_string(info.param);
                         });

// ---------------------------------------------------------------------------
// Lower-bound hierarchy D_tw-lb <= D_tw across interval widths.
// ---------------------------------------------------------------------------

class LowerBoundSweep : public testing::TestWithParam<int> {};

TEST_P(LowerBoundSweep, LbBelowExactAndTightensWithNarrowIntervals) {
  const double width = static_cast<double>(GetParam()) / 10.0;
  Rng rng(8000 + GetParam());
  for (int trial = 0; trial < 100; ++trial) {
    const int lq = static_cast<int>(rng.UniformInt(1, 8));
    const int ls = static_cast<int>(rng.UniformInt(1, 8));
    std::vector<Value> q, s;
    std::vector<dtw::Interval> wide, narrow;
    for (int i = 0; i < lq; ++i) q.push_back(rng.Uniform(0, 10));
    for (int i = 0; i < ls; ++i) {
      const Value v = rng.Uniform(0, 10);
      s.push_back(v);
      wide.push_back({v - width, v + width});
      narrow.push_back({v - width / 2, v + width / 2});
    }
    const Value exact = dtw::DtwDistance(q, s);
    const Value lb_wide = dtw::DtwLowerBound(q, wide);
    const Value lb_narrow = dtw::DtwLowerBound(q, narrow);
    EXPECT_LE(lb_wide, exact + 1e-9);
    EXPECT_LE(lb_narrow, exact + 1e-9);
    // Narrower intervals give a tighter (larger) lower bound.
    EXPECT_GE(lb_narrow, lb_wide - 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Widths, LowerBoundSweep,
                         testing::Values(0, 2, 5, 10, 30),
                         [](const testing::TestParamInfo<int>& info) {
                           return "w" + std::to_string(info.param);
                         });

}  // namespace
}  // namespace tswarp
