// Contract tests for the process-wide work-stealing TaskScheduler: worker
// identity, pool growth, fork/join scope counters, and exception
// propagation. The randomized load tests live in
// task_scheduler_stress_test.cc (stress label, run under TSan in CI).

#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>

#include "common/task_scheduler.h"

namespace tswarp {
namespace {

TEST(TaskSchedulerTest, ExternalThreadHasNoWorkerId) {
  EXPECT_EQ(TaskScheduler::CurrentWorkerId(), TaskScheduler::kExternalThread);
}

TEST(TaskSchedulerTest, EnsureWorkersGrowsAndNeverShrinks) {
  TaskScheduler& scheduler = TaskScheduler::Get();
  scheduler.EnsureWorkers(2);
  const std::size_t grown = scheduler.num_workers();
  EXPECT_GE(grown, 2u);
  scheduler.EnsureWorkers(1);  // Smaller request: no-op.
  EXPECT_EQ(scheduler.num_workers(), grown);
  scheduler.EnsureWorkers(TaskScheduler::kMaxWorkers + 100);  // Clamped.
  EXPECT_LE(scheduler.num_workers(), TaskScheduler::kMaxWorkers);
}

TEST(TaskSchedulerTest, ScopeCountsEveryTask) {
  TaskScheduler::Get().EnsureWorkers(2);
  TaskScope scope;
  std::atomic<int> ran{0};
  constexpr int kTasks = 64;
  for (int i = 0; i < kTasks; ++i) {
    scope.Submit([&ran] { ran.fetch_add(1, std::memory_order_relaxed); });
  }
  scope.Wait();
  EXPECT_EQ(ran.load(), kTasks);
  EXPECT_EQ(scope.tasks_executed(), static_cast<std::uint64_t>(kTasks));
  // Externally submitted tasks count as stolen when a pool worker takes
  // them; the waiting thread helping itself does not.
  EXPECT_LE(scope.tasks_stolen(), scope.tasks_executed());
}

TEST(TaskSchedulerTest, ScopeIsReusableAndCountersAccumulate) {
  TaskScope scope;
  std::atomic<int> ran{0};
  scope.Submit([&ran] { ran.fetch_add(1); });
  scope.Wait();
  scope.Submit([&ran] { ran.fetch_add(1); });
  scope.Wait();
  EXPECT_EQ(ran.load(), 2);
  EXPECT_EQ(scope.tasks_executed(), 2u);
}

TEST(TaskSchedulerTest, WaitRethrowsFirstExceptionAndClearsIt) {
  TaskScope scope;
  std::atomic<int> ran{0};
  scope.Submit([] { throw std::runtime_error("boom"); });
  for (int i = 0; i < 8; ++i) {
    scope.Submit([&ran] { ran.fetch_add(1); });
  }
  EXPECT_THROW(scope.Wait(), std::runtime_error);
  EXPECT_EQ(ran.load(), 8);  // Remaining tasks still ran.
  scope.Submit([&ran] { ran.fetch_add(1); });
  scope.Wait();  // Cleared: no rethrow on the next Wait.
  EXPECT_EQ(ran.load(), 9);
}

TEST(TaskSchedulerTest, StealAttemptCounterIsMonotonic) {
  TaskScheduler& scheduler = TaskScheduler::Get();
  scheduler.EnsureWorkers(2);
  const std::uint64_t before = scheduler.steal_attempts();
  TaskScope scope;
  for (int i = 0; i < 32; ++i) {
    scope.Submit([] {});
  }
  scope.Wait();
  EXPECT_GE(scheduler.steal_attempts(), before);
}

TEST(TaskSchedulerTest, NestedScopeInsideTaskJoinsWithoutDeadlock) {
  TaskScheduler::Get().EnsureWorkers(2);
  TaskScope outer;
  std::atomic<int> n{0};
  outer.Submit([&n] {
    TaskScope inner;
    for (int i = 0; i < 32; ++i) {
      inner.Submit([&n] { n.fetch_add(1, std::memory_order_relaxed); });
    }
    inner.Wait();  // Helping Wait: runs queued tasks instead of blocking.
    n.fetch_add(1000, std::memory_order_relaxed);
  });
  outer.Wait();
  EXPECT_EQ(n.load(), 1032);
}

}  // namespace
}  // namespace tswarp
