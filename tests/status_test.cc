#include "common/status.h"

#include <gtest/gtest.h>

namespace tswarp {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  const Status s = Status::IOError("disk on fire");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kIOError);
  EXPECT_EQ(s.message(), "disk on fire");
  EXPECT_EQ(s.ToString(), "IOError: disk on fire");
}

TEST(StatusTest, Equality) {
  EXPECT_EQ(Status::OK(), Status());
  EXPECT_EQ(Status::NotFound("x"), Status::NotFound("x"));
  EXPECT_FALSE(Status::NotFound("x") == Status::NotFound("y"));
  EXPECT_FALSE(Status::NotFound("x") == Status::IOError("x"));
}

TEST(StatusTest, AllCodesHaveNames) {
  for (StatusCode code :
       {StatusCode::kOk, StatusCode::kInvalidArgument, StatusCode::kNotFound,
        StatusCode::kIOError, StatusCode::kCorruption, StatusCode::kOutOfRange,
        StatusCode::kFailedPrecondition, StatusCode::kUnimplemented,
        StatusCode::kInternal}) {
    EXPECT_STRNE(StatusCodeToString(code), "Unknown");
  }
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> v = 42;
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 42);
  EXPECT_EQ(v.value(), 42);
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> v = Status::NotFound("nope");
  EXPECT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kNotFound);
}

TEST(StatusOrTest, MoveOnlyValue) {
  StatusOr<std::unique_ptr<int>> v = std::make_unique<int>(7);
  ASSERT_TRUE(v.ok());
  std::unique_ptr<int> out = std::move(v).value();
  EXPECT_EQ(*out, 7);
}

Status ReturnIfErrorHelper(bool fail) {
  TSW_RETURN_IF_ERROR(fail ? Status::Internal("boom") : Status::OK());
  return Status::OK();
}

TEST(StatusMacrosTest, ReturnIfError) {
  EXPECT_TRUE(ReturnIfErrorHelper(false).ok());
  EXPECT_EQ(ReturnIfErrorHelper(true).code(), StatusCode::kInternal);
}

StatusOr<int> AssignHelper(bool fail) {
  if (fail) return Status::OutOfRange("too big");
  return 5;
}

Status AssignOrReturnHelper(bool fail, int* out) {
  TSW_ASSIGN_OR_RETURN(const int v, AssignHelper(fail));
  *out = v + 1;
  return Status::OK();
}

TEST(StatusMacrosTest, AssignOrReturn) {
  int out = 0;
  EXPECT_TRUE(AssignOrReturnHelper(false, &out).ok());
  EXPECT_EQ(out, 6);
  EXPECT_EQ(AssignOrReturnHelper(true, &out).code(), StatusCode::kOutOfRange);
}

}  // namespace
}  // namespace tswarp
