#include "core/index.h"

#include <gtest/gtest.h>

#include "common/random.h"
#include "core/seq_scan.h"
#include "datagen/generators.h"
#include "test_util.h"

namespace tswarp::core {
namespace {

seqdb::SequenceDatabase TestDb(std::uint64_t seed = 1) {
  datagen::RandomWalkOptions options;
  options.num_sequences = 15;
  options.avg_length = 50;
  options.length_jitter = 10;
  options.seed = seed;
  return datagen::GenerateRandomWalks(options);
}

TEST(IndexBuildTest, RejectsNullAndEmpty) {
  EXPECT_FALSE(Index::Build(nullptr, {}).ok());
  seqdb::SequenceDatabase empty;
  EXPECT_FALSE(Index::Build(&empty, {}).ok());
}

TEST(IndexBuildTest, BuildInfoAccounting) {
  const seqdb::SequenceDatabase db = TestDb();
  IndexOptions options;
  options.kind = IndexKind::kSparse;
  options.num_categories = 8;
  auto index = Index::Build(&db, options);
  ASSERT_TRUE(index.ok());
  const IndexBuildInfo& info = index->build_info();
  EXPECT_EQ(info.stored_suffixes + info.skipped_suffixes,
            db.TotalElements());
  EXPECT_EQ(info.num_occurrences, info.stored_suffixes);
  EXPECT_GT(info.compaction_ratio, 0.0);
  EXPECT_LT(info.compaction_ratio, 1.0);
  EXPECT_GT(info.num_nodes, 1u);
  EXPECT_GT(info.index_bytes, 0u);
  EXPECT_LE(info.num_categories, 8u);
}

TEST(IndexBuildTest, DenseIndexStoresEverySuffix) {
  const seqdb::SequenceDatabase db = TestDb();
  for (IndexKind kind : {IndexKind::kSuffixTree, IndexKind::kCategorized}) {
    IndexOptions options;
    options.kind = kind;
    options.num_categories = 16;
    auto index = Index::Build(&db, options);
    ASSERT_TRUE(index.ok());
    EXPECT_EQ(index->build_info().stored_suffixes, db.TotalElements());
    EXPECT_DOUBLE_EQ(index->build_info().compaction_ratio, 0.0);
  }
}

TEST(IndexBuildTest, IndexSizeOrderingMatchesPaperTable1) {
  // ST >> ST_C > SST_C for a fixed category count (Table 1's shape).
  const seqdb::SequenceDatabase db = TestDb(3);
  IndexOptions st;
  st.kind = IndexKind::kSuffixTree;
  IndexOptions stc;
  stc.kind = IndexKind::kCategorized;
  stc.num_categories = 10;
  IndexOptions sstc;
  sstc.kind = IndexKind::kSparse;
  sstc.num_categories = 10;
  const auto i1 = Index::Build(&db, st);
  const auto i2 = Index::Build(&db, stc);
  const auto i3 = Index::Build(&db, sstc);
  ASSERT_TRUE(i1.ok() && i2.ok() && i3.ok());
  EXPECT_GT(i1->build_info().index_bytes, i2->build_info().index_bytes);
  EXPECT_GT(i2->build_info().index_bytes, i3->build_info().index_bytes);
}

TEST(IndexBuildTest, MoreCategoriesGrowCategorizedIndex) {
  const seqdb::SequenceDatabase db = TestDb(4);
  std::uint64_t prev = 0;
  for (std::size_t c : {4u, 16u, 64u}) {
    IndexOptions options;
    options.kind = IndexKind::kCategorized;
    options.num_categories = c;
    auto index = Index::Build(&db, options);
    ASSERT_TRUE(index.ok());
    EXPECT_GE(index->build_info().index_bytes, prev);
    prev = index->build_info().index_bytes;
  }
}

TEST(IndexSearchTest, AllKindsAgreeWithEachOther) {
  const seqdb::SequenceDatabase db = TestDb(5);
  std::vector<Index> indexes;
  for (IndexKind kind : {IndexKind::kSuffixTree, IndexKind::kCategorized,
                         IndexKind::kSparse}) {
    IndexOptions options;
    options.kind = kind;
    options.num_categories = 12;
    auto index = Index::Build(&db, options);
    ASSERT_TRUE(index.ok());
    indexes.push_back(std::move(index).value());
  }
  Rng rng(55);
  for (int qi = 0; qi < 5; ++qi) {
    std::vector<Value> q;
    Value v = rng.Uniform(20, 80);
    const auto len = static_cast<std::size_t>(rng.UniformInt(2, 6));
    for (std::size_t i = 0; i < len; ++i) {
      q.push_back(v);
      v += rng.Gaussian(0, 1);
    }
    const Value eps = rng.Uniform(0, 9);
    const auto expected = SeqScan(db, q, eps);
    for (const Index& index : indexes) {
      testutil::ExpectSameMatches(
          expected, index.Search(q, eps),
          IndexKindToString(index.options().kind));
    }
  }
}

TEST(IndexSearchTest, StatsArePopulated) {
  const seqdb::SequenceDatabase db = TestDb(6);
  IndexOptions options;
  options.kind = IndexKind::kSparse;
  options.num_categories = 8;
  auto index = Index::Build(&db, options);
  ASSERT_TRUE(index.ok());
  const std::vector<Value> q(db.sequence(0).begin(),
                             db.sequence(0).begin() + 6);
  SearchStats stats;
  const auto matches = index->Search(q, 5.0, {}, &stats);
  EXPECT_GT(stats.nodes_visited, 0u);
  EXPECT_GT(stats.rows_pushed, 0u);
  EXPECT_GT(stats.cells_computed, 0u);
  EXPECT_EQ(stats.answers, matches.size());
  EXPECT_GE(stats.candidates, stats.answers);
}

TEST(IndexKindToStringTest, Names) {
  EXPECT_STREQ(IndexKindToString(IndexKind::kSuffixTree), "ST");
  EXPECT_STREQ(IndexKindToString(IndexKind::kCategorized), "ST_C");
  EXPECT_STREQ(IndexKindToString(IndexKind::kSparse), "SST_C");
}

TEST(LengthBoundedIndexTest, BandedSearchOnTruncatedIndexIsExact) {
  // The Section 8 extension: with a Sakoe-Chiba band w and query lengths in
  // [qmin, qmax], answers have length in [qmin - w, qmax + w]. Suffixes
  // shorter than the minimum answer length are skipped, longer ones
  // truncated to the maximum. Banded search over the bounded dense index
  // must equal the banded sequential scan for conforming queries.
  const seqdb::SequenceDatabase db = TestDb(7);
  const Pos band = 3;
  const Pos qmin = 5, qmax = 8;
  IndexOptions options;
  options.kind = IndexKind::kCategorized;
  options.num_categories = 10;
  options.min_suffix_length = qmin > band ? qmin - band : 1;
  options.max_suffix_length = qmax + band;
  auto index = Index::Build(&db, options);
  ASSERT_TRUE(index.ok());
  EXPECT_GT(index->build_info().skipped_suffixes, 0u);

  Rng rng(77);
  for (int qi = 0; qi < 6; ++qi) {
    std::vector<Value> q;
    Value v = rng.Uniform(20, 80);
    const auto len = static_cast<std::size_t>(
        rng.UniformInt(qmin, qmax));
    for (std::size_t i = 0; i < len; ++i) {
      q.push_back(v);
      v += rng.Gaussian(0, 1);
    }
    const Value eps = rng.Uniform(0, 8);
    SeqScanOptions scan_options;
    scan_options.band = band;
    QueryOptions query_options;
    query_options.band = band;
    testutil::ExpectSameMatches(SeqScan(db, q, eps, scan_options),
                                index->Search(q, eps, query_options),
                                "length-bounded query " + std::to_string(qi));
  }
}


TEST(LengthBoundedIndexTest, SparseWithLengthBoundsRejected) {
  // Length bounds are only sound with banded searches, and bands are
  // rejected on sparse indexes — so the combination must fail at build
  // time instead of silently dismissing answers.
  const seqdb::SequenceDatabase db = TestDb(8);
  IndexOptions options;
  options.kind = IndexKind::kSparse;
  options.num_categories = 8;
  options.min_suffix_length = 4;
  auto index = Index::Build(&db, options);
  ASSERT_FALSE(index.ok());
  EXPECT_EQ(index.status().code(), StatusCode::kInvalidArgument);
  options.min_suffix_length = 0;
  options.max_suffix_length = 30;
  EXPECT_FALSE(Index::Build(&db, options).ok());
}

}  // namespace
}  // namespace tswarp::core
