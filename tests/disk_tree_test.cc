#include "suffixtree/disk_tree.h"

#include <filesystem>
#include <algorithm>
#include <utility>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "core/index.h"
#include "core/seq_scan.h"
#include "datagen/generators.h"
#include "suffixtree/merge.h"
#include "suffixtree/suffix_tree.h"
#include "test_util.h"

namespace tswarp::suffixtree {
namespace {

using Canon =
    std::vector<std::pair<std::vector<Symbol>, std::tuple<SeqId, Pos, Pos>>>;

Canon Canonicalize(const TreeView& view) {
  Canon out;
  struct Frame {
    NodeId node;
    std::vector<Symbol> path;
  };
  std::vector<Frame> stack = {{view.Root(), {}}};
  while (!stack.empty()) {
    Frame f = std::move(stack.back());
    stack.pop_back();
    std::vector<OccurrenceRec> occs;
    view.GetOccurrences(f.node, &occs);
    for (const OccurrenceRec& o : occs) {
      out.emplace_back(f.path, std::make_tuple(o.seq, o.pos, o.run));
    }
    Children children;
    view.GetChildren(f.node, &children);
    for (const Children::Edge& e : children.edges) {
      Frame next{e.child, f.path};
      const std::span<const Symbol> label = children.Label(e);
      next.path.insert(next.path.end(), label.begin(), label.end());
      stack.push_back(std::move(next));
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

class DiskTreeTest : public testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("tswarp_disk_tree_test_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string Path(const std::string& name) { return (dir_ / name).string(); }

  std::filesystem::path dir_;
};

SymbolDatabase RandomSymbolDb(std::uint64_t seed, std::size_t num_seqs,
                              std::size_t max_len, Symbol alphabet) {
  Rng rng(seed);
  SymbolDatabase db;
  for (std::size_t i = 0; i < num_seqs; ++i) {
    const auto len = static_cast<std::size_t>(
        rng.UniformInt(2, static_cast<int>(max_len)));
    SymbolSequence s;
    for (std::size_t p = 0; p < len; ++p) {
      s.push_back(static_cast<Symbol>(rng.UniformInt(0, alphabet - 1)));
    }
    db.Add(std::move(s));
  }
  return db;
}

TEST_F(DiskTreeTest, WriteAndReopenPreservesStructure) {
  const SymbolDatabase db = RandomSymbolDb(1, 8, 25, 3);
  const SuffixTree memory_tree = BuildSuffixTree(db);
  ASSERT_TRUE(WriteTreeToDisk(memory_tree, Path("t1")).ok());
  auto disk = DiskSuffixTree::Open(Path("t1"));
  ASSERT_TRUE(disk.ok()) << disk.status();
  EXPECT_EQ(Canonicalize(**disk), Canonicalize(memory_tree));
  EXPECT_EQ((*disk)->NumNodes(), memory_tree.NumNodes());
  EXPECT_EQ((*disk)->NumOccurrences(), memory_tree.NumOccurrences());
  EXPECT_EQ((*disk)->NumLabelSymbols(), memory_tree.NumLabelSymbols());
}

TEST_F(DiskTreeTest, SubtreeStatsSurviveSerialization) {
  const SymbolDatabase db = RandomSymbolDb(2, 5, 20, 2);
  BuildOptions options;
  options.sparse = true;
  const SuffixTree memory_tree = BuildSuffixTree(db, options);
  ASSERT_TRUE(WriteTreeToDisk(memory_tree, Path("t2")).ok());
  auto disk = DiskSuffixTree::Open(Path("t2"));
  ASSERT_TRUE(disk.ok());
  // Spot-check stats across the whole tree.
  struct Frame {
    NodeId mem;
    NodeId dsk;
  };
  // Canonical equality already ensures matching structure; compare root
  // aggregates.
  EXPECT_EQ((*disk)->SubtreeOccCount((*disk)->Root()),
            memory_tree.SubtreeOccCount(memory_tree.Root()));
  EXPECT_EQ((*disk)->MaxRun((*disk)->Root()),
            memory_tree.MaxRun(memory_tree.Root()));
}

TEST_F(DiskTreeTest, OpenMissingBundleFails) {
  auto disk = DiskSuffixTree::Open(Path("nothing"));
  EXPECT_FALSE(disk.ok());
}

TEST_F(DiskTreeTest, TinyPoolStillCorrect) {
  // A 1-page-per-region pool forces constant eviction during both write
  // and traversal.
  const SymbolDatabase db = RandomSymbolDb(3, 6, 30, 3);
  const SuffixTree memory_tree = BuildSuffixTree(db);
  DiskTreeOptions options;
  options.pool_pages = 1;
  ASSERT_TRUE(WriteTreeToDisk(memory_tree, Path("t3"), options).ok());
  auto disk = DiskSuffixTree::Open(Path("t3"), options);
  ASSERT_TRUE(disk.ok());
  EXPECT_EQ(Canonicalize(**disk), Canonicalize(memory_tree));
  EXPECT_GT((*disk)->PoolStats().Total().misses, 0u);
}

TEST_F(DiskTreeTest, PoolOptionsDoNotChangeStructure) {
  // Any (shards, eviction, readahead) combination must read back the
  // identical tree.
  const SymbolDatabase db = RandomSymbolDb(4, 8, 25, 3);
  const SuffixTree memory_tree = BuildSuffixTree(db);
  ASSERT_TRUE(WriteTreeToDisk(memory_tree, Path("t4")).ok());
  const Canon expected = Canonicalize(memory_tree);
  for (const std::size_t shards : {std::size_t{1}, std::size_t{4}}) {
    for (const auto eviction : {storage::EvictionPolicyKind::kLru,
                                storage::EvictionPolicyKind::kClock}) {
      DiskTreeOptions options;
      options.pool_pages = 2;
      options.pool_shards = shards;
      options.eviction = eviction;
      options.readahead_pages = 2;
      auto disk = DiskSuffixTree::Open(Path("t4"), options);
      ASSERT_TRUE(disk.ok()) << disk.status();
      EXPECT_EQ((*disk)->pool_eviction(), eviction);
      EXPECT_EQ(Canonicalize(**disk), expected)
          << shards << " shards, "
          << storage::EvictionPolicyKindToString(eviction);
    }
  }
}

TEST_F(DiskTreeTest, WriterCloseIsIdempotent) {
  const SymbolDatabase db = RandomSymbolDb(5, 4, 15, 3);
  const SuffixTree memory_tree = BuildSuffixTree(db);
  auto writer = DiskTreeWriter::Create(Path("t5"));
  ASSERT_TRUE(writer.ok());
  CopyTree(memory_tree, writer->get());
  ASSERT_TRUE((*writer)->Close().ok());
  // Second close: no meta rewrite, same latched outcome.
  EXPECT_TRUE((*writer)->Close().ok());
  auto disk = DiskSuffixTree::Open(Path("t5"));
  ASSERT_TRUE(disk.ok());
  EXPECT_EQ(Canonicalize(**disk), Canonicalize(memory_tree));
}

TEST_F(DiskTreeTest, CloseBeforeFinalizeLatchesFailedPrecondition) {
  auto writer = DiskTreeWriter::Create(Path("t6"));
  ASSERT_TRUE(writer.ok());
  (*writer)->AddNode(kNilNode, {});
  const Status first = (*writer)->Close();
  EXPECT_EQ(first.code(), StatusCode::kFailedPrecondition);
  // The failure is latched: repeated calls return it and never write meta.
  EXPECT_EQ((*writer)->Close(), first);
  EXPECT_EQ((*writer)->status().code(), StatusCode::kFailedPrecondition);
  EXPECT_FALSE(DiskSuffixTree::Open(Path("t6")).ok());
}

TEST_F(DiskTreeTest, BuildDiskTreeEqualsDirectBuild) {
  for (std::uint64_t seed = 10; seed <= 13; ++seed) {
    const SymbolDatabase db = RandomSymbolDb(seed, 10, 20, 3);
    const SuffixTree whole = BuildSuffixTree(db);
    DiskBuildOptions options;
    options.batch_sequences = 3;  // Forces several binary merges.
    auto disk = BuildDiskTree(db, Path("built" + std::to_string(seed)),
                              options);
    ASSERT_TRUE(disk.ok()) << disk.status();
    EXPECT_EQ(Canonicalize(**disk), Canonicalize(whole)) << "seed " << seed;
    EXPECT_EQ((*disk)->NumNodes(), whole.NumNodes());
  }
}

TEST_F(DiskTreeTest, BuildDiskTreeCleansTemporaries) {
  const SymbolDatabase db = RandomSymbolDb(21, 9, 15, 3);
  DiskBuildOptions options;
  options.batch_sequences = 2;
  auto disk = BuildDiskTree(db, Path("clean"), options);
  ASSERT_TRUE(disk.ok());
  std::size_t files = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir_)) {
    EXPECT_EQ(entry.path().string().find(".tmp"), std::string::npos)
        << "leftover temporary " << entry.path();
    ++files;
  }
  EXPECT_EQ(files, 4u);  // meta, nodes, occs, labels.
}

TEST_F(DiskTreeTest, DiskBackedIndexMatchesSeqScan) {
  datagen::RandomWalkOptions data_options;
  data_options.num_sequences = 10;
  data_options.avg_length = 35;
  data_options.seed = 555;
  const seqdb::SequenceDatabase db =
      datagen::GenerateRandomWalks(data_options);

  core::IndexOptions options;
  options.kind = core::IndexKind::kSparse;
  options.num_categories = 8;
  options.disk_path = Path("index");
  options.disk_batch_sequences = 3;
  options.disk_pool_pages = 4;
  auto index = core::Index::Build(&db, options);
  ASSERT_TRUE(index.ok()) << index.status();

  Rng rng(777);
  for (int qi = 0; qi < 6; ++qi) {
    std::vector<Value> q;
    Value v = rng.Uniform(20, 80);
    const auto len = static_cast<std::size_t>(rng.UniformInt(2, 6));
    for (std::size_t i = 0; i < len; ++i) {
      q.push_back(v);
      v += rng.Gaussian(0, 1);
    }
    const Value eps = rng.Uniform(0.0, 10.0);
    testutil::ExpectSameMatches(core::SeqScan(db, q, eps),
                                index->Search(q, eps),
                                "disk index query " + std::to_string(qi));
  }
}

}  // namespace
}  // namespace tswarp::suffixtree
