// Coherence of the SearchStats instrumentation across the searchers: the
// counters feed the paper's R_d / R_p analyses and the benches, so they
// must obey basic accounting identities.

#include <gtest/gtest.h>

#include "common/random.h"
#include "core/index.h"
#include "core/seq_scan.h"
#include "datagen/generators.h"

namespace tswarp::core {
namespace {

seqdb::SequenceDatabase Db() {
  datagen::StockOptions options;
  options.num_sequences = 20;
  options.avg_length = 60;
  options.seed = 77;
  return datagen::GenerateStocks(options);
}

std::vector<Value> Query(const seqdb::SequenceDatabase& db) {
  return std::vector<Value>(db.sequence(3).begin() + 10,
                            db.sequence(3).begin() + 18);
}

TEST(SearchStatsTest, TreeSearchAccountingIdentities) {
  const seqdb::SequenceDatabase db = Db();
  for (IndexKind kind : {IndexKind::kSuffixTree, IndexKind::kCategorized,
                         IndexKind::kSparse}) {
    IndexOptions options;
    options.kind = kind;
    options.num_categories = 12;
    auto index = Index::Build(&db, options);
    ASSERT_TRUE(index.ok());
    SearchStats stats;
    const auto matches = index->Search(Query(db), 6.0, {}, &stats);
    SCOPED_TRACE(IndexKindToString(kind));
    // Every answer was a candidate; rejected candidates were either
    // endpoint-screened or failed the exact computation.
    EXPECT_GE(stats.candidates, matches.size());
    EXPECT_EQ(stats.answers, matches.size());
    EXPECT_LE(stats.endpoint_rejections, stats.candidates);
    if (kind != IndexKind::kSuffixTree) {
      EXPECT_LE(stats.exact_dtw_calls + stats.endpoint_rejections,
                stats.candidates);
    }
    // Rows/cells relation: every pushed row computes |Q| cells.
    EXPECT_EQ(stats.cells_computed, stats.rows_pushed * 8);
    // Each row serves at least one stored suffix.
    EXPECT_GE(stats.unshared_rows, stats.rows_pushed);
    EXPECT_GT(stats.nodes_visited, 0u);
  }
}

TEST(SearchStatsTest, EndpointScreenFiresOnLowerBoundModes) {
  const seqdb::SequenceDatabase db = Db();
  IndexOptions options;
  options.kind = IndexKind::kSparse;
  options.num_categories = 4;  // Loose bounds -> many candidates.
  auto index = Index::Build(&db, options);
  ASSERT_TRUE(index.ok());
  SearchStats stats;
  index->Search(Query(db), 3.0, {}, &stats);
  EXPECT_GT(stats.candidates, 0u);
  EXPECT_GT(stats.endpoint_rejections, 0u)
      << "with 4 categories and a tight epsilon the O(1) screen should "
         "reject many candidates";
}

TEST(SearchStatsTest, SeqScanAccountingIdentities) {
  const seqdb::SequenceDatabase db = Db();
  SearchStats stats;
  const auto q = Query(db);
  const auto matches = SeqScan(db, q, 5.0, {}, &stats);
  EXPECT_EQ(stats.answers, matches.size());
  EXPECT_EQ(stats.cells_computed, stats.rows_pushed * q.size());
  // Every suffix either pushes at least one row or is cut by the running
  // envelope bound before its first row; the cascade runs once per suffix.
  EXPECT_GE(stats.rows_pushed + stats.lb_pruned, db.TotalElements());
  EXPECT_EQ(stats.lb_invocations, db.TotalElements());

  // Without the cascade every suffix builds at least one row, and the
  // match set is unchanged.
  SeqScanOptions no_lb;
  no_lb.use_lower_bound = false;
  SearchStats plain;
  const auto unfiltered = SeqScan(db, q, 5.0, no_lb, &plain);
  EXPECT_GE(plain.rows_pushed, db.TotalElements());
  EXPECT_EQ(plain.lb_invocations, 0u);
  EXPECT_EQ(plain.lb_pruned, 0u);
  EXPECT_EQ(unfiltered.size(), matches.size());
}

TEST(SearchStatsTest, LowerBoundCascadeCountsOnTreeSearch) {
  const seqdb::SequenceDatabase db = Db();
  IndexOptions options;
  options.kind = IndexKind::kSparse;
  options.num_categories = 4;  // Loose filter -> many candidates to screen.
  auto index = Index::Build(&db, options);
  ASSERT_TRUE(index.ok());
  SearchStats stats;
  index->Search(Query(db), 3.0, {}, &stats);
  // Everything surviving the endpoint screen is screened by the envelope
  // cascade; exact DTW only runs on what the cascade admits.
  EXPECT_EQ(stats.lb_invocations,
            stats.candidates - stats.endpoint_rejections);
  EXPECT_EQ(stats.exact_dtw_calls, stats.lb_invocations - stats.lb_pruned);
  EXPECT_GT(stats.lb_pruned, 0u)
      << "with 4 categories and a tight epsilon the envelope bound should "
         "kill candidates the endpoint screen admits";

  QueryOptions no_lb;
  no_lb.use_lower_bound = false;
  SearchStats plain;
  index->Search(Query(db), 3.0, no_lb, &plain);
  EXPECT_EQ(plain.lb_invocations, 0u);
  EXPECT_EQ(plain.lb_pruned, 0u);
  EXPECT_GE(plain.exact_dtw_calls, stats.exact_dtw_calls);
}

TEST(SearchStatsTest, SchedulerCountersTrackParallelExecution) {
  const seqdb::SequenceDatabase db = Db();
  IndexOptions options;
  options.kind = IndexKind::kCategorized;
  options.num_categories = 12;
  auto index = Index::Build(&db, options);
  ASSERT_TRUE(index.ok());

  SearchStats serial;
  index->Search(Query(db), 6.0, {}, &serial);
  EXPECT_EQ(serial.tasks_executed, 0u);
  EXPECT_EQ(serial.tasks_stolen, 0u);
  EXPECT_EQ(serial.steal_attempts, 0u);
  EXPECT_EQ(serial.replayed_rows, 0u);

  QueryOptions parallel;
  parallel.num_threads = 4;
  SearchStats par;
  index->Search(Query(db), 6.0, parallel, &par);
  // At least the root task ran. Whether it counts as stolen depends on
  // who took it: a pool worker (stolen) or the waiting submitter helping
  // itself (not) — timing-dependent, so only the bound is asserted.
  EXPECT_GE(par.tasks_executed, 1u);
  EXPECT_LE(par.tasks_stolen, par.tasks_executed);
  // Replay happens only when a task actually split off a non-root branch;
  // either way the cells identity covers the replayed rows.
  EXPECT_EQ(par.cells_computed,
            (par.rows_pushed + par.replayed_rows) * Query(db).size());

  // Merge sums the scheduler counters like every other field.
  SearchStats merged = serial;
  merged.Merge(par);
  EXPECT_EQ(merged.tasks_executed, par.tasks_executed);
  EXPECT_EQ(merged.tasks_stolen, par.tasks_stolen);
  EXPECT_EQ(merged.steal_attempts, par.steal_attempts);
}

TEST(SearchStatsTest, RdGrowsWithCoarserCategories) {
  const seqdb::SequenceDatabase db = Db();
  const auto q = Query(db);
  double prev_rd = 1e18;
  for (std::size_t c : {4u, 16u, 64u}) {
    IndexOptions options;
    options.kind = IndexKind::kSparse;
    options.num_categories = c;
    auto index = Index::Build(&db, options);
    ASSERT_TRUE(index.ok());
    SearchStats stats;
    index->Search(q, 8.0, {}, &stats);
    const double rd = static_cast<double>(stats.unshared_rows) /
                      static_cast<double>(stats.rows_pushed);
    EXPECT_GE(rd, 1.0);
    // Coarser categories share longer prefixes: R_d should not increase
    // as categories get finer (allow slack for pruning interactions).
    EXPECT_LE(rd, prev_rd * 1.5) << "c=" << c;
    prev_rd = rd;
  }
}

}  // namespace
}  // namespace tswarp::core
