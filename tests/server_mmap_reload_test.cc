// Hot-reloading mmap-backed indexes under concurrent search traffic.
//
// The TSan-targeted race surface: server::IndexHandle::Replace retires an
// index whose tiers hold live mmap'd regions while searcher threads still
// run queries through pinned snapshots. The snapshot pin must keep every
// retired mapping alive until the last in-flight query drops it — a
// mapping unmapped too early is a use-after-munmap the buffered path's
// buffer pool never had. The CI TSan job selects this suite by the
// MmapReload name.

#include <atomic>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "core/index.h"
#include "datagen/generators.h"
#include "server/index_handle.h"
#include "storage/mmap_file.h"

namespace tswarp::server {
namespace {

using core::Index;
using core::IndexOptions;
using core::Match;
using core::QueryOptions;

seqdb::SequenceDatabase MakeDb() {
  datagen::RandomWalkOptions options;
  options.num_sequences = 10;
  options.avg_length = 32;
  options.seed = 97;
  return datagen::GenerateRandomWalks(options);
}

IndexOptions MmapOptions(const std::string& path) {
  IndexOptions options;
  options.kind = core::IndexKind::kSparse;
  options.num_categories = 8;
  options.disk_path = path;
  options.disk_batch_sequences = 4;
  options.disk_io_mode = storage::IoMode::kMmap;
  return options;
}

void ExpectIdentical(const std::vector<Match>& expected,
                     const std::vector<Match>& actual) {
  ASSERT_EQ(expected.size(), actual.size());
  for (std::size_t i = 0; i < expected.size(); ++i) {
    ASSERT_EQ(expected[i], actual[i]) << "at " << i;
    ASSERT_EQ(expected[i].distance, actual[i].distance) << "at " << i;
  }
}

TEST(MmapReloadTest, ReplaceUnderConcurrentMmapSearches) {
  const seqdb::SequenceDatabase db = MakeDb();
  const std::string base_a = testing::TempDir() + "/mmap_reload_a";
  const std::string base_b = testing::TempDir() + "/mmap_reload_b";
  // Two persisted bundles over the same data: alternating between them
  // makes every Replace retire a mapping the searchers may still read.
  ASSERT_TRUE(Index::Build(&db, MmapOptions(base_a)).ok());
  ASSERT_TRUE(Index::Build(&db, MmapOptions(base_b)).ok());

  const std::vector<Value> q(db.sequence(3).begin(),
                             db.sequence(3).begin() + 5);
  const Value eps = 8.0;

  auto first = Index::Open(&db, MmapOptions(base_a));
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  EXPECT_GT(first->MappedStats().mapped_bytes, 0u);
  const std::vector<Match> reference = first->Search(q, eps);
  const std::vector<Match> knn_reference = first->SearchKnn(q, 7);
  IndexHandle handle(std::move(*first));

  std::atomic<bool> stop{false};
  std::atomic<int> searches{0};
  std::vector<std::thread> searchers;
  for (int t = 0; t < 4; ++t) {
    searchers.emplace_back([&, t] {
      QueryOptions qo;
      qo.num_threads = (t % 2 == 0) ? 0u : 2u;
      while (!stop.load(std::memory_order_relaxed)) {
        const auto snapshot = handle.Snapshot();
        ExpectIdentical(reference, snapshot->Search(q, eps, qo));
        ExpectIdentical(knn_reference, snapshot->SearchKnn(q, 7, qo));
        searches.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  // Reload loop: each iteration maps a fresh bundle and retires the
  // previous one; the retired tiers unmap on whichever thread drops the
  // last snapshot pin.
  for (int round = 0; round < 24; ++round) {
    auto next =
        Index::Open(&db, MmapOptions(round % 2 == 0 ? base_b : base_a));
    ASSERT_TRUE(next.ok()) << next.status().ToString();
    handle.Replace(std::move(*next));
    std::this_thread::yield();
  }
  // Let the searchers observe the final published snapshot too.
  const int drained = searches.load() + 1;
  while (searches.load() < drained) std::this_thread::yield();
  stop.store(true);
  for (auto& thread : searchers) thread.join();
  EXPECT_GT(searches.load(), 0);

  const auto final_snapshot = handle.Snapshot();
  ExpectIdentical(reference, final_snapshot->Search(q, eps));
  EXPECT_GT(final_snapshot->MappedStats().mapped_bytes, 0u);
}

}  // namespace
}  // namespace tswarp::server
