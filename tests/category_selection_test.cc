#include "core/category_selection.h"

#include <gtest/gtest.h>

#include "datagen/generators.h"

namespace tswarp::core {
namespace {

seqdb::SequenceDatabase TestDb() {
  datagen::StockOptions options;
  options.num_sequences = 25;
  options.avg_length = 60;
  options.seed = 3;
  return datagen::GenerateStocks(options);
}

std::vector<seqdb::Sequence> TestQueries(
    const seqdb::SequenceDatabase& db) {
  datagen::QueryWorkloadOptions options;
  options.num_queries = 4;
  options.avg_length = 8;
  return datagen::ExtractQueries(db, options);
}

TEST(CategorySelectionTest, PicksACandidate) {
  const seqdb::SequenceDatabase db = TestDb();
  CategorySelectionOptions options;
  options.candidates = {4, 16, 64};
  options.epsilon = 5.0;
  auto result = SelectNumCategories(db, TestQueries(db), options);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->measured.size(), 3u);
  bool best_found = false;
  for (const CategoryCandidateCost& m : result->measured) {
    EXPECT_GT(m.index_bytes, 0u);
    EXPECT_GE(m.query_seconds, 0.0);
    EXPECT_GE(m.combined, 0.0);
    EXPECT_LE(m.combined, options.time_weight + options.space_weight);
    if (m.num_categories == result->best_num_categories) best_found = true;
  }
  EXPECT_TRUE(best_found);
}

TEST(CategorySelectionTest, SpaceOnlyWeightPrefersFewestCategories) {
  // With W_t = 0, the cost is the (normalized) index size, which grows
  // with the category count — the smallest candidate must win.
  const seqdb::SequenceDatabase db = TestDb();
  CategorySelectionOptions options;
  options.candidates = {4, 16, 64};
  options.time_weight = 0.0;
  options.space_weight = 1.0;
  auto result = SelectNumCategories(db, TestQueries(db), options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->best_num_categories, 4u);
  // Index bytes must be increasing in the candidate count.
  for (std::size_t i = 1; i < result->measured.size(); ++i) {
    EXPECT_GE(result->measured[i].index_bytes,
              result->measured[i - 1].index_bytes);
  }
}

TEST(CategorySelectionTest, ValidatesInput) {
  const seqdb::SequenceDatabase db = TestDb();
  const auto queries = TestQueries(db);
  CategorySelectionOptions options;
  options.candidates.clear();
  EXPECT_FALSE(SelectNumCategories(db, queries, options).ok());
  options = {};
  EXPECT_FALSE(SelectNumCategories(db, {}, options).ok());
  options.kind = IndexKind::kSuffixTree;
  EXPECT_FALSE(SelectNumCategories(db, queries, options).ok());
}

TEST(CategorySelectionTest, SkipsDegenerateCandidates) {
  // A constant-valued database cannot be categorized at all: every
  // candidate fails and the function reports it.
  seqdb::SequenceDatabase flat;
  flat.Add({5, 5, 5, 5});
  CategorySelectionOptions options;
  options.candidates = {2, 4};
  const std::vector<seqdb::Sequence> queries = {{5, 5}};
  auto result = SelectNumCategories(flat, queries, options);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kFailedPrecondition);
}

}  // namespace
}  // namespace tswarp::core
