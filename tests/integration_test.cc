// End-to-end user workflow: generate data, persist the database, build a
// disk index, reopen both from disk, query, consolidate, k-NN — the whole
// public API surface in one scenario.

#include <filesystem>

#include <gtest/gtest.h>

#include "core/consolidate.h"
#include "core/index.h"
#include "core/seq_scan.h"
#include "datagen/generators.h"
#include "seqdb/transforms.h"
#include "test_util.h"

namespace tswarp {
namespace {

class IntegrationTest : public testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("tswarp_integration_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }
  std::filesystem::path dir_;
};

TEST_F(IntegrationTest, FullLifecycle) {
  // 1. Generate and persist a database.
  datagen::StockOptions stock;
  stock.num_sequences = 30;
  stock.avg_length = 90;
  stock.seed = 1234;
  seqdb::SequenceDatabase generated = datagen::GenerateStocks(stock);
  const std::string db_path = (dir_ / "market.db").string();
  ASSERT_TRUE(generated.Save(db_path).ok());

  // 2. Reload it (a separate "process").
  auto loaded = seqdb::SequenceDatabase::Load(db_path);
  ASSERT_TRUE(loaded.ok());
  const seqdb::SequenceDatabase& db = *loaded;
  ASSERT_EQ(db.size(), generated.size());

  // 3. Build a persistent disk index.
  core::IndexOptions options;
  options.kind = core::IndexKind::kSparse;
  options.method = categorize::Method::kMaxEntropy;
  options.num_categories = 24;
  options.disk_path = (dir_ / "market_idx").string();
  options.disk_batch_sequences = 8;
  auto built = core::Index::Build(&db, options);
  ASSERT_TRUE(built.ok()) << built.status();

  // 4. Reopen the index without rebuilding and run queries.
  auto index = core::Index::Open(&db, options);
  ASSERT_TRUE(index.ok()) << index.status();

  datagen::QueryWorkloadOptions workload;
  workload.num_queries = 5;
  workload.avg_length = 12;
  const auto queries = datagen::ExtractQueries(db, workload);
  for (std::size_t qi = 0; qi < queries.size(); ++qi) {
    const Value eps = 3.0 + static_cast<Value>(qi) * 2.0;
    const auto matches = index->Search(queries[qi], eps);
    testutil::ExpectSameMatches(core::SeqScan(db, queries[qi], eps),
                                matches, "query " + std::to_string(qi));
    // 5. Consolidate overlapping windows; representatives must be a
    //    subset of the raw matches and keep the global best distance.
    const auto consolidated = core::ConsolidateMatches(matches);
    EXPECT_LE(consolidated.size(), matches.size());
    if (!matches.empty()) {
      Value best_raw = 1e18, best_consolidated = 1e18;
      for (const auto& m : matches) best_raw = std::min(best_raw,
                                                        m.distance);
      for (const auto& m : consolidated) {
        best_consolidated = std::min(best_consolidated, m.distance);
      }
      EXPECT_DOUBLE_EQ(best_raw, best_consolidated);
    }
    // 6. k-NN returns the same best match as the range search's minimum.
    const auto top1 = index->SearchKnn(queries[qi], 1);
    ASSERT_EQ(top1.size(), 1u);
    EXPECT_NEAR(top1[0].distance, 0.0, 1e-9)
        << "the query was cut from the database, so the 1-NN is exact";
  }
}

TEST_F(IntegrationTest, NormalizedPipeline) {
  // Index a z-normalized database: shape matching irrespective of price
  // level — the query is taken from a shifted/scaled copy.
  datagen::RandomWalkOptions walk;
  walk.num_sequences = 10;
  walk.avg_length = 50;
  walk.seed = 9;
  seqdb::SequenceDatabase raw = datagen::GenerateRandomWalks(walk);
  const seqdb::SequenceDatabase normalized = seqdb::TransformDatabase(
      raw, [](std::span<const Value> s) { return seqdb::ZNormalize(s); });

  core::IndexOptions options;
  options.kind = core::IndexKind::kSparse;
  options.num_categories = 16;
  auto index = core::Index::Build(&normalized, options);
  ASSERT_TRUE(index.ok());

  // A scaled + shifted copy of sequence 2's full profile normalizes to
  // the same shape.
  seqdb::Sequence scaled;
  for (Value v : raw.sequence(2)) scaled.push_back(4.0 * v - 100.0);
  const seqdb::Sequence query = seqdb::ZNormalize(scaled);
  const auto matches = index->Search(query, 1e-6);
  bool found_self = false;
  for (const auto& m : matches) {
    if (m.seq == 2 && m.start == 0 &&
        m.len == normalized.sequence(2).size()) {
      found_self = true;
    }
  }
  EXPECT_TRUE(found_self)
      << "z-normalization must make the scaled copy an exact match";
}

}  // namespace
}  // namespace tswarp
