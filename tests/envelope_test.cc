// Unit tests of the query envelope (src/dtw/envelope.cc): construction
// against a brute-force O(n * band) reference, band edge cases, and the
// bound/kernel semantics on small hand-checkable inputs.

#include <algorithm>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "dtw/dtw.h"
#include "dtw/envelope.h"

namespace tswarp::dtw {
namespace {

/// O(n * band) reference: extrema of q[max(0,j-band) .. min(n-1,j+band)].
void BruteForceEnvelope(const std::vector<Value>& q, Pos band,
                        std::vector<Value>* lower,
                        std::vector<Value>* upper) {
  const std::size_t n = q.size();
  lower->clear();
  upper->clear();
  for (std::size_t j = 0; j < n + band; ++j) {
    const std::size_t lo = j > band ? j - band : 0;
    const std::size_t hi = std::min(j + band, n - 1);
    Value mn = q[lo], mx = q[lo];
    for (std::size_t i = lo; i <= hi; ++i) {
      mn = std::min(mn, q[i]);
      mx = std::max(mx, q[i]);
    }
    lower->push_back(mn);
    upper->push_back(mx);
  }
}

std::vector<Value> RandomWalk(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Value> v;
  Value x = rng.Uniform(-5, 5);
  for (std::size_t i = 0; i < n; ++i) {
    x += rng.Gaussian(0, 1);
    v.push_back(x);
  }
  return v;
}

TEST(EnvelopeTest, BandedMatchesBruteForce) {
  for (const std::size_t n : {1u, 2u, 3u, 7u, 16u, 33u}) {
    for (const Pos band : {1u, 2u, 5u, 16u, 64u}) {
      const std::vector<Value> q = RandomWalk(n, 100 * n + band);
      const QueryEnvelope env(q, band);
      std::vector<Value> lower, upper;
      BruteForceEnvelope(q, band, &lower, &upper);
      ASSERT_EQ(env.reach(), lower.size()) << "n=" << n << " band=" << band;
      for (std::size_t j = 0; j < lower.size(); ++j) {
        EXPECT_DOUBLE_EQ(env.LowerAt(j), lower[j])
            << "n=" << n << " band=" << band << " j=" << j;
        EXPECT_DOUBLE_EQ(env.UpperAt(j), upper[j])
            << "n=" << n << " band=" << band << " j=" << j;
      }
    }
  }
}

TEST(EnvelopeTest, UnconstrainedIsGlobalExtrema) {
  const std::vector<Value> q = {3.0, -1.5, 7.25, 0.0, 7.0};
  const QueryEnvelope env(q, 0);
  EXPECT_TRUE(env.unconstrained());
  EXPECT_EQ(env.reach(), QueryEnvelope::kNoReachLimit);
  // Any offset, however large, sees [min Q, max Q].
  for (const std::size_t j : {0ul, 1ul, 4ul, 1000ul}) {
    EXPECT_DOUBLE_EQ(env.LowerAt(j), -1.5);
    EXPECT_DOUBLE_EQ(env.UpperAt(j), 7.25);
    EXPECT_DOUBLE_EQ(env.ElementLb(j, 8.25), 1.0);
    EXPECT_DOUBLE_EQ(env.ElementLb(j, -3.5), 2.0);
    EXPECT_DOUBLE_EQ(env.ElementLb(j, 0.0), 0.0);
  }
}

TEST(EnvelopeTest, BandAtLeastQueryLengthEdgeCases) {
  const std::vector<Value> q = {2.0, 9.0, 4.0};
  for (const Pos band : {3u, 4u, 100u}) {  // band >= |Q|.
    const QueryEnvelope env(q, band);
    EXPECT_EQ(env.reach(), q.size() + band);
    for (std::size_t j = 0; j < env.reach(); ++j) {
      // Window [max(0, j-band), min(|Q|-1, j+band)]: the whole query while
      // j <= band; for larger j the left edge walks past element 0.
      const std::size_t lo = j > band ? j - band : 0;
      EXPECT_DOUBLE_EQ(env.LowerAt(j),
                       *std::min_element(q.begin() + lo, q.end()))
          << "band=" << band << " j=" << j;
      EXPECT_DOUBLE_EQ(env.UpperAt(j),
                       *std::max_element(q.begin() + lo, q.end()))
          << "band=" << band << " j=" << j;
      if (j <= band) {
        EXPECT_DOUBLE_EQ(env.LowerAt(j), 2.0);
        EXPECT_DOUBLE_EQ(env.UpperAt(j), 9.0);
      }
    }
    EXPECT_EQ(env.ElementLb(env.reach(), 5.0), kInfinity);
  }
}

TEST(EnvelopeTest, SingleElementQuery) {
  const std::vector<Value> q = {4.0};
  const QueryEnvelope unconstrained(q, 0);
  EXPECT_DOUBLE_EQ(unconstrained.ElementLb(17, 6.5), 2.5);
  const QueryEnvelope banded(q, 2);
  EXPECT_EQ(banded.reach(), 3u);  // Offsets 0..2 reach the one element.
  for (std::size_t j = 0; j < 3; ++j) {
    EXPECT_DOUBLE_EQ(banded.ElementLb(j, 1.0), 3.0);
  }
  EXPECT_EQ(banded.ElementLb(3, 4.0), kInfinity);
}

TEST(EnvelopeTest, ElementLbBeyondBandedReachIsInfinite) {
  const std::vector<Value> q = RandomWalk(8, 3);
  const QueryEnvelope env(q, 2);
  EXPECT_EQ(env.reach(), 10u);
  EXPECT_LT(env.ElementLb(9, q[7]), kInfinity);
  EXPECT_EQ(env.ElementLb(10, q[7]), kInfinity);
  EXPECT_EQ(env.ElementLb(10000, q[7]), kInfinity);
}

TEST(EnvelopeTest, LbKeoghHandComputed) {
  // Q = <0, 10>, unconstrained: envelope [0, 10] at every offset.
  const std::vector<Value> q = {0.0, 10.0};
  const QueryEnvelope env(q, 0);
  const std::vector<Value> s = {-2.0, 5.0, 13.0};  // 2 + 0 + 3.
  EXPECT_DOUBLE_EQ(LbKeogh(env, s), 5.0);
  EXPECT_LE(LbKeogh(env, s), DtwDistance(q, s));
}

TEST(EnvelopeTest, LbKeoghEarlyAbandonStillLowerBounds) {
  const std::vector<Value> q = RandomWalk(12, 5);
  const QueryEnvelope env(q, 0);
  const std::vector<Value> s = RandomWalk(30, 6);
  const Value full = LbKeogh(env, s);
  for (const Value cap : {0.0, full / 2, full}) {
    const Value abandoned = LbKeogh(env, s, cap);
    EXPECT_LE(abandoned, full);
    if (abandoned <= cap) {
      EXPECT_DOUBLE_EQ(abandoned, full);
    }
  }
}

TEST(EnvelopeTest, LbImprovedAtLeastLbKeogh) {
  EnvelopeScratch scratch;
  const std::vector<Value> q = RandomWalk(10, 7);
  for (const Pos band : {0u, 2u, 5u, 10u}) {
    const QueryEnvelope env(q, band);
    const std::vector<Value> s = RandomWalk(10, 8);
    const Value keogh = LbKeogh(env, s);
    const Value improved = LbImproved(env, q, s, kInfinity, &scratch);
    EXPECT_GE(improved, keogh) << "band=" << band;
    const Value exact =
        band == 0 ? DtwDistance(q, s) : DtwDistanceBanded(q, s, band);
    EXPECT_LE(improved, exact + 1e-9) << "band=" << band;
  }
}

TEST(EnvelopeTest, DtwWithinThresholdLbAgreesWithPlainKernel) {
  EnvelopeScratch scratch;
  const std::vector<Value> q = RandomWalk(9, 11);
  const QueryEnvelope env(q, 0);
  for (std::uint64_t seed = 0; seed < 50; ++seed) {
    const std::vector<Value> s = RandomWalk(1 + seed % 20, 200 + seed);
    const Value exact = DtwDistance(q, s);
    for (const Value eps : {exact * 0.5, exact, exact * 2.0}) {
      Value got = -1.0, want = -1.0;
      const bool in_lb = DtwWithinThresholdLb(q, s, env, eps, &got,
                                              &scratch);
      const bool in_plain = DtwWithinThreshold(q, s, eps, &want);
      ASSERT_EQ(in_lb, in_plain) << "seed=" << seed << " eps=" << eps;
      if (in_lb) {
        EXPECT_DOUBLE_EQ(got, want);
      }
    }
  }
}

TEST(EnvelopeTest, DtwWithinThresholdLbBandedMatchesBandedDistance) {
  EnvelopeScratch scratch;
  const std::vector<Value> q = RandomWalk(10, 13);
  for (const Pos band : {1u, 3u, 10u}) {
    const QueryEnvelope env(q, band);
    for (std::uint64_t seed = 0; seed < 30; ++seed) {
      const std::vector<Value> s = RandomWalk(1 + seed % 16, 300 + seed);
      const Value exact = DtwDistanceBanded(q, s, band);
      for (const Value eps : {1.0, 10.0, 100.0}) {
        Value got = -1.0;
        const bool in =
            DtwWithinThresholdLb(q, s, env, eps, &got, &scratch);
        ASSERT_EQ(in, exact <= eps)
            << "band=" << band << " seed=" << seed << " eps=" << eps;
        if (in) {
          EXPECT_DOUBLE_EQ(got, exact);
        }
      }
    }
  }
}

}  // namespace
}  // namespace tswarp::dtw
