// Parallel == serial: for every index kind, range and k-NN searches with
// num_threads in {0, 1, 4} must return exactly the same match sets with
// the same distances, including on disk-backed indexes (shared buffer
// pools) and at k-NN tie boundaries. Also covers SearchBatch and the
// mergeability of SearchStats.

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "core/index.h"
#include "datagen/generators.h"
#include "test_util.h"

namespace tswarp::core {
namespace {

seqdb::SequenceDatabase RandomDb(std::uint64_t seed) {
  datagen::RandomWalkOptions options;
  options.num_sequences = 12;
  options.avg_length = 40;
  options.length_jitter = 8;
  options.seed = seed;
  return datagen::GenerateRandomWalks(options);
}

std::vector<Value> RandomQuery(Rng& rng, std::size_t len) {
  std::vector<Value> q;
  Value v = rng.Uniform(30, 70);
  for (std::size_t i = 0; i < len; ++i) {
    q.push_back(v);
    v += rng.Gaussian(0, 1.5);
  }
  return q;
}

void ExpectIdenticalKnn(const std::vector<Match>& serial,
                        const std::vector<Match>& parallel,
                        const std::string& context) {
  ASSERT_EQ(serial.size(), parallel.size()) << context;
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i], parallel[i]) << context << " at " << i;
    EXPECT_DOUBLE_EQ(serial[i].distance, parallel[i].distance)
        << context << " at " << i;
  }
}

class ParallelSearchKindTest : public testing::TestWithParam<IndexKind> {};

TEST_P(ParallelSearchKindTest, RangeSearchMatchesSerial) {
  Rng rng(4242);
  for (int round = 0; round < 3; ++round) {
    const seqdb::SequenceDatabase db =
        RandomDb(900 + static_cast<std::uint64_t>(round));
    IndexOptions options;
    options.kind = GetParam();
    options.num_categories = 10;
    auto index = Index::Build(&db, options);
    ASSERT_TRUE(index.ok());
    const std::vector<Value> q =
        RandomQuery(rng, static_cast<std::size_t>(rng.UniformInt(3, 7)));
    for (const Value epsilon : {2.0, 6.0, 15.0}) {
      QueryOptions serial_opts;
      SearchStats serial_stats;
      const auto serial = index->Search(q, epsilon, serial_opts,
                                        &serial_stats);
      for (const std::size_t threads : {1u, 4u}) {
        QueryOptions par_opts;
        par_opts.num_threads = threads;
        SearchStats par_stats;
        const auto parallel = index->Search(q, epsilon, par_opts,
                                            &par_stats);
        testutil::ExpectSameMatches(
            serial, parallel,
            "round " + std::to_string(round) + " eps " +
                std::to_string(epsilon) + " threads " +
                std::to_string(threads));
        EXPECT_EQ(par_stats.answers, serial_stats.answers);
        // Every candidate the serial search verified is verified by
        // exactly one worker (no duplicated post-processing).
        EXPECT_EQ(par_stats.candidates, serial_stats.candidates);
      }
    }
  }
}

TEST_P(ParallelSearchKindTest, KnnMatchesSerial) {
  Rng rng(1717);
  for (int round = 0; round < 3; ++round) {
    const seqdb::SequenceDatabase db =
        RandomDb(1200 + static_cast<std::uint64_t>(round));
    IndexOptions options;
    options.kind = GetParam();
    options.num_categories = 10;
    auto index = Index::Build(&db, options);
    ASSERT_TRUE(index.ok());
    const std::vector<Value> q =
        RandomQuery(rng, static_cast<std::size_t>(rng.UniformInt(3, 6)));
    for (const std::size_t k : {1u, 7u, 25u}) {
      const auto serial = index->SearchKnn(q, k);
      for (const std::size_t threads : {1u, 4u}) {
        QueryOptions par_opts;
        par_opts.num_threads = threads;
        const auto parallel = index->SearchKnn(q, k, par_opts);
        ExpectIdenticalKnn(serial, parallel,
                           "round " + std::to_string(round) + " k " +
                               std::to_string(k) + " threads " +
                               std::to_string(threads));
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllKinds, ParallelSearchKindTest,
                         testing::Values(IndexKind::kSuffixTree,
                                         IndexKind::kCategorized,
                                         IndexKind::kSparse),
                         [](const auto& info) {
                           return IndexKindToString(info.param);
                         });

TEST(ParallelSearchTest, DiskBackedIndexMatchesSerial) {
  const seqdb::SequenceDatabase db = RandomDb(31);
  IndexOptions options;
  options.kind = IndexKind::kSparse;
  options.num_categories = 8;
  options.disk_path = testing::TempDir() + "/parallel_disk_idx";
  // A tiny pool so concurrent workers actually contend on evictions —
  // which requires the buffered read path; the mmap leg below exercises
  // the pin-free cursors under the same concurrency.
  options.disk_io_mode = storage::IoMode::kBuffered;
  options.disk_pool_pages = 2;
  options.disk_batch_sequences = 4;
  auto index = Index::Build(&db, options);
  ASSERT_TRUE(index.ok());
  const std::vector<Value> q(db.sequence(2).begin(),
                             db.sequence(2).begin() + 5);
  const auto serial = index->Search(q, 8.0);
  QueryOptions par_opts;
  par_opts.num_threads = 4;
  testutil::ExpectSameMatches(serial, index->Search(q, 8.0, par_opts),
                              "disk range");
  const auto knn_serial = index->SearchKnn(q, 9);
  ExpectIdenticalKnn(knn_serial, index->SearchKnn(q, 9, par_opts),
                     "disk knn");
  // Pool counters kept counting under concurrency.
  ASSERT_NE(index->disk_tree(), nullptr);
  const auto pool_stats = index->disk_tree()->PoolStats().Total();
  EXPECT_GT(pool_stats.hits + pool_stats.misses, 0u);

  // Same bundle served zero-copy: identical matches, zero pool traffic.
  options.disk_io_mode = storage::IoMode::kMmap;
  auto mapped = Index::Open(&db, options);
  ASSERT_TRUE(mapped.ok());
  testutil::ExpectSameMatches(serial, mapped->Search(q, 8.0, par_opts),
                              "mmap disk range");
  ExpectIdenticalKnn(knn_serial, mapped->SearchKnn(q, 9, par_opts),
                     "mmap disk knn");
  ASSERT_NE(mapped->disk_tree(), nullptr);
  const auto mapped_stats = mapped->disk_tree()->PoolStats().Total();
  EXPECT_EQ(mapped_stats.hits + mapped_stats.misses, 0u);
  EXPECT_GT(mapped->MappedStats().mapped_bytes, 0u);
}

TEST(ParallelSearchTest, KnnTieBoundaryIsDeterministic) {
  // Four identical sequences: every subsequence exists in four copies, so
  // any k not divisible by four cuts through a tie group. The total order
  // (distance, seq, start, len) must resolve the boundary identically in
  // serial and parallel runs.
  const seqdb::Sequence base = {10, 12, 15, 13, 11, 14, 16, 12, 10, 13};
  seqdb::SequenceDatabase db;
  for (int i = 0; i < 4; ++i) db.Add(base);
  for (IndexKind kind : {IndexKind::kSuffixTree, IndexKind::kCategorized,
                         IndexKind::kSparse}) {
    IndexOptions options;
    options.kind = kind;
    options.num_categories = 6;
    auto index = Index::Build(&db, options);
    ASSERT_TRUE(index.ok());
    const std::vector<Value> q = {12, 14, 13};
    for (const std::size_t k : {2u, 5u, 11u}) {
      const auto serial = index->SearchKnn(q, k);
      ASSERT_EQ(serial.size(), k);
      for (const std::size_t threads : {1u, 4u}) {
        QueryOptions par_opts;
        par_opts.num_threads = threads;
        ExpectIdenticalKnn(serial, index->SearchKnn(q, k, par_opts),
                           std::string(IndexKindToString(kind)) + " k=" +
                               std::to_string(k) + " threads=" +
                               std::to_string(threads));
      }
    }
  }
}

TEST(ParallelSearchTest, SearchBatchMatchesPerQuerySearch) {
  Rng rng(77);
  const seqdb::SequenceDatabase db = RandomDb(55);
  IndexOptions options;
  options.kind = IndexKind::kSparse;
  options.num_categories = 10;
  auto index = Index::Build(&db, options);
  ASSERT_TRUE(index.ok());

  std::vector<std::vector<Value>> queries;
  std::vector<Value> epsilons;
  for (int i = 0; i < 9; ++i) {
    queries.push_back(
        RandomQuery(rng, static_cast<std::size_t>(rng.UniformInt(3, 6))));
    epsilons.push_back(rng.Uniform(3, 10));
  }

  std::vector<std::vector<Match>> expected;
  std::vector<SearchStats> expected_stats(queries.size());
  for (std::size_t i = 0; i < queries.size(); ++i) {
    expected.push_back(
        index->Search(queries[i], epsilons[i], {}, &expected_stats[i]));
  }

  for (const std::size_t threads : {0u, 1u, 4u}) {
    QueryOptions batch_opts;
    batch_opts.num_threads = threads;
    std::vector<SearchStats> stats;
    const auto results =
        index->SearchBatch(queries, epsilons, batch_opts, &stats);
    ASSERT_EQ(results.size(), queries.size());
    ASSERT_EQ(stats.size(), queries.size());
    for (std::size_t i = 0; i < queries.size(); ++i) {
      testutil::ExpectSameMatches(expected[i], results[i],
                                  "batch query " + std::to_string(i) +
                                      " threads " + std::to_string(threads));
      // Batched queries run serially inside: stats are bit-identical.
      EXPECT_EQ(stats[i].rows_pushed, expected_stats[i].rows_pushed);
      EXPECT_EQ(stats[i].candidates, expected_stats[i].candidates);
      EXPECT_EQ(stats[i].answers, expected_stats[i].answers);
    }
  }

  // Shared single epsilon form.
  const auto shared_eps =
      index->SearchBatch(queries, {epsilons[0]}, QueryOptions{});
  for (std::size_t i = 0; i < queries.size(); ++i) {
    testutil::ExpectSameMatches(index->Search(queries[i], epsilons[0]),
                                shared_eps[i],
                                "shared-eps query " + std::to_string(i));
  }
}

TEST(ParallelSearchTest, MergedStatsCoverTheWholeTraversal) {
  const seqdb::SequenceDatabase db = RandomDb(303);
  IndexOptions options;
  options.kind = IndexKind::kSparse;
  options.num_categories = 10;
  auto index = Index::Build(&db, options);
  ASSERT_TRUE(index.ok());
  const std::vector<Value> q(db.sequence(1).begin(),
                             db.sequence(1).begin() + 6);
  SearchStats serial;
  index->Search(q, 6.0, {}, &serial);
  EXPECT_EQ(serial.replayed_rows, 0u);
  QueryOptions par_opts;
  par_opts.num_threads = 4;
  SearchStats merged;
  index->Search(q, 6.0, par_opts, &merged);
  // Workers together visit at least every node the serial search visits
  // (task splitting can add a few below serially-pruned edges), and
  // replay rows are accounted separately from real filter rows.
  EXPECT_GE(merged.nodes_visited, serial.nodes_visited);
  EXPECT_EQ(merged.answers, serial.answers);
  EXPECT_EQ(merged.cells_computed,
            (merged.rows_pushed + merged.replayed_rows) * q.size());

  SearchStats a = serial;
  a.Merge(merged);
  EXPECT_EQ(a.rows_pushed, serial.rows_pushed + merged.rows_pushed);
  EXPECT_EQ(a.candidates, serial.candidates + merged.candidates);
}

}  // namespace
}  // namespace tswarp::core
