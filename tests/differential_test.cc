// Randomized differential-testing harness for the envelope lower-bound
// fast path. Two claims are exercised with seeded random cases:
//
//  1. The bound chain LB_Keogh <= LB_Improved <= D_tw holds for every
//     (query, candidate, band) — the exactness precondition of the whole
//     cascade — and the prefix-abandoning exact kernel agrees with the
//     plain one on membership and distance.
//  2. The fast-path searches (envelope cascade on, the default) return
//     byte-identical Match sets to the unfiltered engine for range and
//     k-NN queries, serial and multi-threaded, across all index kinds and
//     for the SeqScan baseline.
//  3. Disk-backed searches are byte-identical to a serial single-mutex
//     baseline across every buffer-pool configuration (eviction policy x
//     shard count x thread count) for all three index kinds.
//  4. The multivariate grid index (the fourth instantiation of the shared
//     search driver) is byte-identical to brute-force multivariate DTW
//     across thread counts, range and k-NN, bands, and with the
//     per-dimension envelope cascade on or off.
//  5. Every SIMD backend this machine can run (dtw::simd) returns
//     byte-identical match sets to the scalar backend across index kinds,
//     thread counts, and the SeqScan baseline — and identical serial
//     search stats, so the cascade prunes in exactly the same places.
//  7. The mmap zero-copy read path serves byte-identical match sets to
//     the buffered buffer-pool path over the same v2 bundle — across
//     index kinds, thread counts, range and k-NN, monolithic and tiered —
//     and the format gate holds: v1 bundles still open buffered but the
//     mmap path refuses them with Status::Corruption.
//  8. The node-summary screen (subtree hulls tested before descending an
//     edge) is byte-identical to searches with the screen disabled at
//     approx_factor 1.0 — across index kinds, memory/disk/tiered,
//     thread counts, range and k-NN, and bands — and any approx_factor
//     greater than 1 returns a subset of the exact answer with exact
//     (unperturbed) distances.
//
// Sequences mix three adversarial shapes: Gaussian random walks, spike
// trains (flat with rare large jumps — stresses the envelope edges), and
// constant runs (stresses sparse-suffix recovery and zero-width
// envelopes). Lengths span 1..64. Everything is seeded: a failure report
// names the case's seed, so any case replays deterministically.

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "core/index.h"
#include "core/result_collector.h"
#include "core/seq_scan.h"
#include "core/tiered_index.h"
#include "dtw/dtw.h"
#include "dtw/envelope.h"
#include "dtw/simd.h"
#include "multivariate/multi_index.h"
#include "seqdb/sequence_database.h"
#include "storage/buffer_manager.h"
#include "storage/mmap_file.h"
#include "suffixtree/disk_tree.h"

namespace tswarp {
namespace {

using core::Index;
using core::IndexKind;
using core::IndexOptions;
using core::Match;
using core::QueryOptions;
using core::SeqScanOptions;

/// One random sequence of length `n`, shape selected by `shape % 3`.
std::vector<Value> RandomShape(Rng* rng, std::size_t n, std::uint64_t shape) {
  std::vector<Value> v;
  v.reserve(n);
  switch (shape % 3) {
    case 0: {  // Gaussian random walk.
      Value x = rng->Uniform(-10, 10);
      for (std::size_t i = 0; i < n; ++i) {
        x += rng->Gaussian(0, 1);
        v.push_back(x);
      }
      break;
    }
    case 1: {  // Spike train: flat baseline, rare large excursions.
      const Value base = rng->Uniform(-5, 5);
      for (std::size_t i = 0; i < n; ++i) {
        v.push_back(rng->Coin(0.1) ? base + rng->Uniform(-50, 50)
                                   : base + rng->Gaussian(0, 0.1));
      }
      break;
    }
    default: {  // Piecewise-constant runs.
      Value level = rng->Uniform(-8, 8);
      for (std::size_t i = 0; i < n; ++i) {
        if (rng->Coin(0.25)) level = rng->Uniform(-8, 8);
        v.push_back(level);
      }
      break;
    }
  }
  return v;
}

/// Byte-level equality: same order, same (seq, start, len), and exactly
/// the same distance doubles — the fast path must not perturb a single
/// bit of the output.
void ExpectByteIdentical(const std::vector<Match>& expected,
                         const std::vector<Match>& actual,
                         const std::string& context) {
  ASSERT_EQ(expected.size(), actual.size()) << context;
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(expected[i].seq, actual[i].seq) << context << " at " << i;
    EXPECT_EQ(expected[i].start, actual[i].start) << context << " at " << i;
    EXPECT_EQ(expected[i].len, actual[i].len) << context << " at " << i;
    EXPECT_EQ(expected[i].distance, actual[i].distance)
        << context << " at " << i;
  }
}

// ---------------------------------------------------------------------------
// Claim 1: the bound chain, >= 1000 seeded random cases.
// ---------------------------------------------------------------------------

TEST(DifferentialTest, BoundChainHoldsOnRandomCases) {
  constexpr int kCases = 1200;
  dtw::EnvelopeScratch scratch;
  for (std::uint64_t seed = 1; seed <= kCases; ++seed) {
    Rng rng(seed);
    const std::size_t qlen =
        static_cast<std::size_t>(rng.UniformInt(1, 64));
    const std::size_t slen =
        static_cast<std::size_t>(rng.UniformInt(1, 64));
    const std::vector<Value> q = RandomShape(&rng, qlen, seed);
    const std::vector<Value> s = RandomShape(&rng, slen, seed / 3);
    constexpr Pos kBands[] = {0, 1, 3, 8, 64};
    const Pos band = kBands[static_cast<std::size_t>(rng.UniformInt(0, 4))];

    const dtw::QueryEnvelope env(q, band);
    const Value keogh = dtw::LbKeogh(env, s);
    const Value improved = dtw::LbImproved(env, q, s, kInfinity, &scratch);
    const Value exact = band == 0 ? dtw::DtwDistance(q, s)
                                  : dtw::DtwDistanceBanded(q, s, band);
    ASSERT_LE(keogh, improved + 1e-9)
        << "LB_Keogh > LB_Improved, seed=" << seed << " band=" << band;
    ASSERT_LE(improved, exact + 1e-9)
        << "LB_Improved > D_tw, seed=" << seed << " band=" << band
        << " |Q|=" << qlen << " |S|=" << slen;

    // The prefix-abandoning kernel must agree with the plain one on
    // membership and, when inside, on the exact distance.
    const Value eps = rng.Uniform(0, 2) * (exact == kInfinity
                                               ? 100.0
                                               : exact + 0.25);
    Value got = -1.0;
    const bool in = dtw::DtwWithinThresholdLb(q, s, env, eps, &got,
                                              &scratch);
    ASSERT_EQ(in, exact <= eps) << "seed=" << seed << " band=" << band;
    if (in) {
      ASSERT_EQ(got, exact) << "seed=" << seed << " band=" << band;
    }
  }
}

// ---------------------------------------------------------------------------
// Claim 2: fast-path searches are byte-identical to the unfiltered engine.
// ---------------------------------------------------------------------------

seqdb::SequenceDatabase RandomDb(std::uint64_t seed) {
  Rng rng(seed);
  seqdb::SequenceDatabase db;
  const int num_sequences = static_cast<int>(rng.UniformInt(6, 12));
  for (int i = 0; i < num_sequences; ++i) {
    const std::size_t n = static_cast<std::size_t>(rng.UniformInt(1, 40));
    db.Add(RandomShape(&rng, n, seed + static_cast<std::uint64_t>(i)));
  }
  return db;
}

TEST(DifferentialTest, FastPathSearchByteIdenticalAcrossEngines) {
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    const seqdb::SequenceDatabase db = RandomDb(seed);
    Rng rng(1000 + seed);
    const std::vector<Value> q = RandomShape(
        &rng, static_cast<std::size_t>(rng.UniformInt(2, 10)), seed);
    const Value eps = rng.Uniform(0.5, 12.0);

    for (const IndexKind kind : {IndexKind::kSuffixTree,
                                 IndexKind::kCategorized,
                                 IndexKind::kSparse}) {
      IndexOptions options;
      options.kind = kind;
      options.num_categories = 8;
      auto index = Index::Build(&db, options);
      ASSERT_TRUE(index.ok()) << index.status().ToString();

      QueryOptions slow;
      slow.use_lower_bound = false;
      const std::vector<Match> reference = index->Search(q, eps, slow);
      const std::vector<Match> knn_reference = index->SearchKnn(q, 7, slow);
      for (const std::size_t threads : {0u, 2u, 3u}) {
        QueryOptions fast;
        fast.num_threads = threads;
        const std::string ctx = std::string(core::IndexKindToString(kind)) +
                                " seed=" + std::to_string(seed) +
                                " threads=" + std::to_string(threads);
        ExpectByteIdentical(reference, index->Search(q, eps, fast),
                            "range " + ctx);
        ExpectByteIdentical(knn_reference, index->SearchKnn(q, 7, fast),
                            "knn " + ctx);
      }
    }
  }
}

TEST(DifferentialTest, FastPathBandedSearchByteIdentical) {
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    const seqdb::SequenceDatabase db = RandomDb(50 + seed);
    Rng rng(2000 + seed);
    const std::vector<Value> q = RandomShape(
        &rng, static_cast<std::size_t>(rng.UniformInt(3, 10)), seed);
    const Value eps = rng.Uniform(0.5, 8.0);
    // Banded searches need a dense index (sparse recovery is unsound
    // under a band).
    IndexOptions options;
    options.kind = IndexKind::kCategorized;
    options.num_categories = 8;
    auto index = Index::Build(&db, options);
    ASSERT_TRUE(index.ok());
    for (const Pos band : {1u, 2u, 4u}) {
      QueryOptions slow;
      slow.band = band;
      slow.use_lower_bound = false;
      QueryOptions fast;
      fast.band = band;
      ExpectByteIdentical(index->Search(q, eps, slow),
                          index->Search(q, eps, fast),
                          "banded range seed=" + std::to_string(seed) +
                              " band=" + std::to_string(band));
      ExpectByteIdentical(index->SearchKnn(q, 5, slow),
                          index->SearchKnn(q, 5, fast),
                          "banded knn seed=" + std::to_string(seed) +
                              " band=" + std::to_string(band));
    }
  }
}

TEST(DifferentialTest, DiskBackedSearchByteIdenticalAcrossPoolConfigs) {
  // Acceptance gate for the sharded buffer manager: for every index kind,
  // disk-backed searches through any (eviction, shards, threads) pool
  // configuration return byte-identical matches to a serial search through
  // the single-mutex (1-shard) baseline pool. The pool is kept tiny so
  // every configuration actually evicts and re-reads pages mid-search.
  for (const IndexKind kind : {IndexKind::kSuffixTree,
                               IndexKind::kCategorized,
                               IndexKind::kSparse}) {
    const std::string kind_name = core::IndexKindToString(kind);
    const seqdb::SequenceDatabase db = RandomDb(
        200 + static_cast<std::uint64_t>(kind));
    Rng rng(4000 + static_cast<std::uint64_t>(kind));
    const std::vector<Value> q = RandomShape(
        &rng, static_cast<std::size_t>(rng.UniformInt(2, 8)), 1);
    const Value eps = rng.Uniform(1.0, 10.0);

    IndexOptions build;
    build.kind = kind;
    build.num_categories = 8;
    build.disk_path = testing::TempDir() + "/diff_disk_" + kind_name;
    build.disk_batch_sequences = 4;
    // Pool configurations are a buffered-path concept: the mmap path has
    // no pool at all (claim 7 covers it).
    build.disk_io_mode = storage::IoMode::kBuffered;
    build.disk_pool_pages = 2;
    build.disk_pool_shards = 1;  // Single-mutex baseline.
    auto baseline = Index::Build(&db, build);
    ASSERT_TRUE(baseline.ok()) << kind_name << ": "
                               << baseline.status().ToString();
    const std::vector<Match> reference = baseline->Search(q, eps);
    const std::vector<Match> knn_reference = baseline->SearchKnn(q, 7);

    for (const auto eviction : {storage::EvictionPolicyKind::kLru,
                                storage::EvictionPolicyKind::kClock}) {
      for (const std::size_t shards : {std::size_t{1}, std::size_t{4}}) {
        IndexOptions reopen = build;
        reopen.disk_pool_shards = shards;
        reopen.disk_eviction = eviction;
        reopen.disk_readahead_pages = 2;
        auto index = Index::Open(&db, reopen);
        ASSERT_TRUE(index.ok()) << kind_name << ": "
                                << index.status().ToString();
        for (const std::size_t threads : {0u, 4u}) {
          QueryOptions query_options;
          query_options.num_threads = threads;
          const std::string ctx =
              kind_name + " " +
              storage::EvictionPolicyKindToString(eviction) + " shards=" +
              std::to_string(shards) + " threads=" + std::to_string(threads);
          ExpectByteIdentical(reference, index->Search(q, eps, query_options),
                              "disk range " + ctx);
          ExpectByteIdentical(knn_reference,
                              index->SearchKnn(q, 7, query_options),
                              "disk knn " + ctx);
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Claim 4: the multivariate grid index runs on the same search driver and
// is byte-identical to brute-force multivariate DTW — across thread
// counts, range and k-NN, and with the envelope cascade on or off.
// ---------------------------------------------------------------------------

/// Random multivariate database: `dim` interleaved RandomShape streams per
/// sequence, flattened element-major.
mv::MultiSequenceDatabase RandomMultiDb(std::uint64_t seed,
                                        std::size_t dim) {
  Rng rng(seed);
  mv::MultiSequenceDatabase db(dim);
  const int num_sequences = static_cast<int>(rng.UniformInt(5, 9));
  for (int i = 0; i < num_sequences; ++i) {
    const std::size_t n = static_cast<std::size_t>(rng.UniformInt(2, 24));
    std::vector<std::vector<Value>> per_dim;
    for (std::size_t d = 0; d < dim; ++d) {
      per_dim.push_back(RandomShape(&rng, n, seed + d));
    }
    std::vector<Value> flat;
    flat.reserve(n * dim);
    for (std::size_t p = 0; p < n; ++p) {
      for (std::size_t d = 0; d < dim; ++d) flat.push_back(per_dim[d][p]);
    }
    db.Add(std::move(flat));
  }
  return db;
}

std::vector<Value> RandomMultiQuery(Rng* rng, std::size_t dim,
                                    std::size_t len, std::uint64_t shape) {
  std::vector<std::vector<Value>> per_dim;
  for (std::size_t d = 0; d < dim; ++d) {
    per_dim.push_back(RandomShape(rng, len, shape + d));
  }
  std::vector<Value> flat;
  for (std::size_t p = 0; p < len; ++p) {
    for (std::size_t d = 0; d < dim; ++d) flat.push_back(per_dim[d][p]);
  }
  return flat;
}

TEST(DifferentialTest, MultivariateDriverByteIdenticalAcrossEngines) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const std::size_t dim = 1 + seed % 3;
    const mv::MultiSequenceDatabase db = RandomMultiDb(500 + seed, dim);
    Rng rng(5000 + seed);
    const std::size_t qlen =
        static_cast<std::size_t>(rng.UniformInt(2, 6));
    const std::vector<Value> q = RandomMultiQuery(&rng, dim, qlen, seed);
    const Value eps = rng.Uniform(0.5, 15.0) * static_cast<Value>(dim);

    // Ground truth: brute-force multivariate DTW over every subsequence.
    const std::vector<Match> truth = mv::MultiSeqScan(db, q, qlen, eps);

    for (const bool sparse : {true, false}) {
      mv::MultiIndexOptions build;
      build.sparse = sparse;
      build.categories_per_dim = 4;
      auto index = mv::MultiIndex::Build(&db, build);
      ASSERT_TRUE(index.ok()) << index.status().ToString();

      QueryOptions slow;
      slow.use_lower_bound = false;
      const std::vector<Match> reference = index->Search(q, qlen, eps, slow);
      const std::vector<Match> knn_reference =
          index->SearchKnn(q, qlen, 6, slow);
      ExpectByteIdentical(truth, reference,
                          "mv truth seed=" + std::to_string(seed) +
                              " sparse=" + std::to_string(sparse));

      for (const std::size_t threads : {0u, 2u, 3u}) {
        for (const bool lb : {true, false}) {
          QueryOptions fast;
          fast.num_threads = threads;
          fast.use_lower_bound = lb;
          const std::string ctx = "mv seed=" + std::to_string(seed) +
                                  " dim=" + std::to_string(dim) +
                                  " sparse=" + std::to_string(sparse) +
                                  " threads=" + std::to_string(threads) +
                                  " lb=" + std::to_string(lb);
          ExpectByteIdentical(reference, index->Search(q, qlen, eps, fast),
                              "range " + ctx);
          ExpectByteIdentical(knn_reference,
                              index->SearchKnn(q, qlen, 6, fast),
                              "knn " + ctx);
        }
      }
    }
  }
}

TEST(DifferentialTest, MultivariateKnnMatchesBruteForce) {
  // The k-NN heap keeps the k best matches under the total order
  // (distance, seq, start, len); selecting the same top k from an
  // exhaustive enumeration must reproduce it byte for byte.
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    const std::size_t dim = 1 + seed % 3;
    const mv::MultiSequenceDatabase db = RandomMultiDb(600 + seed, dim);
    Rng rng(6000 + seed);
    const std::size_t qlen =
        static_cast<std::size_t>(rng.UniformInt(2, 5));
    const std::vector<Value> q = RandomMultiQuery(&rng, dim, qlen, seed);
    std::vector<Match> all = mv::MultiSeqScan(db, q, qlen, kInfinity);
    std::sort(all.begin(), all.end(), core::KnnMatchLess);
    const std::size_t k = 5;
    if (all.size() > k) all.resize(k);

    mv::MultiIndexOptions build;
    build.categories_per_dim = 4;
    auto index = mv::MultiIndex::Build(&db, build);
    ASSERT_TRUE(index.ok());
    for (const std::size_t threads : {0u, 3u}) {
      QueryOptions query_options;
      query_options.num_threads = threads;
      ExpectByteIdentical(all,
                          index->SearchKnn(q, qlen, k, query_options),
                          "mv knn brute seed=" + std::to_string(seed) +
                              " threads=" + std::to_string(threads));
    }
  }
}

TEST(DifferentialTest, MultivariateBandedByteIdentical) {
  // Bands need a dense grid index (sparse recovery is unsound banded);
  // the banded driver must agree with the banded brute-force scan.
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const std::size_t dim = 1 + seed % 2;
    const mv::MultiSequenceDatabase db = RandomMultiDb(700 + seed, dim);
    Rng rng(7000 + seed);
    const std::size_t qlen =
        static_cast<std::size_t>(rng.UniformInt(3, 6));
    const std::vector<Value> q = RandomMultiQuery(&rng, dim, qlen, seed);
    const Value eps = rng.Uniform(0.5, 12.0) * static_cast<Value>(dim);
    mv::MultiIndexOptions build;
    build.sparse = false;
    build.categories_per_dim = 4;
    auto index = mv::MultiIndex::Build(&db, build);
    ASSERT_TRUE(index.ok());
    for (const Pos band : {1u, 2u}) {
      const std::vector<Match> truth =
          mv::MultiSeqScan(db, q, qlen, eps, band);
      for (const std::size_t threads : {0u, 2u}) {
        for (const bool lb : {true, false}) {
          QueryOptions query_options;
          query_options.band = band;
          query_options.num_threads = threads;
          query_options.use_lower_bound = lb;
          ExpectByteIdentical(
              truth, index->Search(q, qlen, eps, query_options),
              "mv banded seed=" + std::to_string(seed) + " band=" +
                  std::to_string(band) + " threads=" +
                  std::to_string(threads) + " lb=" + std::to_string(lb));
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Claim 5: SIMD backends are interchangeable — same matches, same stats.
// ---------------------------------------------------------------------------

void ExpectStatsEqual(const core::SearchStats& a, const core::SearchStats& b,
                      const std::string& context) {
  EXPECT_EQ(a.nodes_visited, b.nodes_visited) << context;
  EXPECT_EQ(a.rows_pushed, b.rows_pushed) << context;
  EXPECT_EQ(a.unshared_rows, b.unshared_rows) << context;
  EXPECT_EQ(a.cells_computed, b.cells_computed) << context;
  EXPECT_EQ(a.branches_pruned, b.branches_pruned) << context;
  EXPECT_EQ(a.candidates, b.candidates) << context;
  EXPECT_EQ(a.endpoint_rejections, b.endpoint_rejections) << context;
  EXPECT_EQ(a.lb_invocations, b.lb_invocations) << context;
  EXPECT_EQ(a.lb_pruned, b.lb_pruned) << context;
  EXPECT_EQ(a.exact_dtw_calls, b.exact_dtw_calls) << context;
  EXPECT_EQ(a.answers, b.answers) << context;
}

TEST(DifferentialTest, SimdBackendsByteIdenticalAcrossEnginesAndThreads) {
  const std::string saved = dtw::simd::ActiveBackend();
  const std::vector<std::string> backends = dtw::simd::AvailableBackends();
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    const seqdb::SequenceDatabase db = RandomDb(300 + seed);
    Rng rng(8000 + seed);
    const std::vector<Value> q = RandomShape(
        &rng, static_cast<std::size_t>(rng.UniformInt(2, 10)), seed);
    const Value eps = rng.Uniform(0.5, 12.0);

    for (const IndexKind kind : {IndexKind::kSuffixTree,
                                 IndexKind::kCategorized,
                                 IndexKind::kSparse}) {
      IndexOptions options;
      options.kind = kind;
      options.num_categories = 8;
      auto index = Index::Build(&db, options);
      ASSERT_TRUE(index.ok()) << index.status().ToString();

      // Scalar reference: serial fast path, with stats.
      ASSERT_TRUE(dtw::simd::SetBackend("scalar"));
      core::SearchStats ref_stats;
      const std::vector<Match> reference =
          index->Search(q, eps, {}, &ref_stats);
      core::SearchStats ref_knn_stats;
      const std::vector<Match> knn_reference =
          index->SearchKnn(q, 7, {}, &ref_knn_stats);
      const std::vector<Match> scan_reference = core::SeqScan(db, q, eps, {});

      for (const std::string& backend : backends) {
        ASSERT_TRUE(dtw::simd::SetBackend(backend));
        const std::string ctx = std::string(core::IndexKindToString(kind)) +
                                " seed=" + std::to_string(seed) +
                                " backend=" + backend;
        core::SearchStats stats;
        ExpectByteIdentical(reference, index->Search(q, eps, {}, &stats),
                            "range " + ctx);
        ExpectStatsEqual(ref_stats, stats, "range stats " + ctx);
        core::SearchStats knn_stats;
        ExpectByteIdentical(knn_reference,
                            index->SearchKnn(q, 7, {}, &knn_stats),
                            "knn " + ctx);
        ExpectStatsEqual(ref_knn_stats, knn_stats, "knn stats " + ctx);
        ExpectByteIdentical(scan_reference, core::SeqScan(db, q, eps, {}),
                            "seqscan " + ctx);
        for (const std::size_t threads : {2u, 3u}) {
          QueryOptions parallel;
          parallel.num_threads = threads;
          ExpectByteIdentical(
              reference, index->Search(q, eps, parallel),
              "range " + ctx + " threads=" + std::to_string(threads));
          ExpectByteIdentical(
              knn_reference, index->SearchKnn(q, 7, parallel),
              "knn " + ctx + " threads=" + std::to_string(threads));
        }
      }
    }
  }
  ASSERT_TRUE(dtw::simd::SetBackend(saved));
}

TEST(DifferentialTest, SeqScanCascadeByteIdentical) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const seqdb::SequenceDatabase db = RandomDb(100 + seed);
    Rng rng(3000 + seed);
    const std::vector<Value> q = RandomShape(
        &rng, static_cast<std::size_t>(rng.UniformInt(1, 12)), seed);
    const Value eps = rng.Uniform(0.0, 10.0);
    for (const Pos band : {0u, 2u}) {
      SeqScanOptions slow;
      slow.band = band;
      slow.use_lower_bound = false;
      SeqScanOptions fast;
      fast.band = band;
      ExpectByteIdentical(core::SeqScan(db, q, eps, slow),
                          core::SeqScan(db, q, eps, fast),
                          "seqscan seed=" + std::to_string(seed) +
                              " band=" + std::to_string(band));
    }
  }
}

TEST(DifferentialTest, WorkStealingExecutorByteIdenticalAcrossThreadCounts) {
  // Acceptance gate for the work-stealing execution layer: with lazy task
  // splitting, per-thread arena reuse, and the cached k-NN threshold, a
  // parallel search at any worker count must return byte-identical
  // matches to the serial traversal — memory- and disk-backed, range and
  // k-NN, for every index kind. Runs several seeds back to back so
  // threads reuse cached arenas across queries of different lengths.
  for (std::uint64_t seed = 21; seed <= 26; ++seed) {
    const seqdb::SequenceDatabase db = RandomDb(500 + seed);
    Rng rng(6000 + seed);
    const std::vector<Value> q = RandomShape(
        &rng, static_cast<std::size_t>(rng.UniformInt(2, 10)), seed);
    const Value eps = rng.Uniform(0.5, 10.0);

    for (const IndexKind kind : {IndexKind::kSuffixTree,
                                 IndexKind::kCategorized,
                                 IndexKind::kSparse}) {
      const std::string kind_name = core::IndexKindToString(kind);
      IndexOptions options;
      options.kind = kind;
      options.num_categories = 8;
      auto index = Index::Build(&db, options);
      ASSERT_TRUE(index.ok()) << index.status().ToString();

      const std::vector<Match> reference = index->Search(q, eps);
      const std::vector<Match> knn_reference = index->SearchKnn(q, 7);

      IndexOptions disk = options;
      disk.disk_path = testing::TempDir() + "/diff_steal_" + kind_name +
                       std::to_string(seed);
      disk.disk_batch_sequences = 4;
      disk.disk_io_mode = storage::IoMode::kBuffered;
      disk.disk_pool_pages = 2;  // Tiny pool: evictions mid-search.
      auto disk_index = Index::Build(&db, disk);
      ASSERT_TRUE(disk_index.ok()) << disk_index.status().ToString();

      for (const std::size_t threads : {1u, 4u}) {
        QueryOptions qo;
        qo.num_threads = threads;
        const std::string ctx = kind_name + " seed=" + std::to_string(seed) +
                                " threads=" + std::to_string(threads);
        ExpectByteIdentical(reference, index->Search(q, eps, qo),
                            "steal range " + ctx);
        ExpectByteIdentical(knn_reference, index->SearchKnn(q, 7, qo),
                            "steal knn " + ctx);
        ExpectByteIdentical(reference, disk_index->Search(q, eps, qo),
                            "steal disk range " + ctx);
        ExpectByteIdentical(knn_reference, disk_index->SearchKnn(q, 7, qo),
                            "steal disk knn " + ctx);
      }
    }

    // The SeqScan baseline's new parallel mode obeys the same gate.
    const std::vector<Match> scan_reference = core::SeqScan(db, q, eps);
    for (const std::size_t threads : {1u, 4u}) {
      SeqScanOptions scan;
      scan.num_threads = threads;
      ExpectByteIdentical(scan_reference, core::SeqScan(db, q, eps, scan),
                          "steal seqscan seed=" + std::to_string(seed) +
                              " threads=" + std::to_string(threads));
    }
  }
}

// ---------------------------------------------------------------------------
// Claim 6 (PR 8): a TieredIndex — base tier + appended sealed tiers +
// memtable, before, during, and after compactions — returns byte-identical
// match sets to a monolithic index freshly built over the same data, for
// range and k-NN, memory- and disk-backed, serial and parallel. Every
// engine verifies candidates exactly against raw values, so per-tier
// symbol tables cannot perturb the output; these sweeps are the proof.
// ---------------------------------------------------------------------------

/// Shared setup: `total` random sequences, the first `base_count` of which
/// seed the base tier and the rest arrive via Append.
struct TieredCase {
  std::vector<std::vector<Value>> data;
  seqdb::SequenceDatabase full_db;
  seqdb::SequenceDatabase base_db;
  std::size_t base_count;
  std::vector<Value> q;
  Value eps;
};

TieredCase MakeTieredCase(std::uint64_t seed) {
  TieredCase c;
  Rng rng(9000 + seed);
  const int total = static_cast<int>(rng.UniformInt(10, 14));
  for (int i = 0; i < total; ++i) {
    c.data.push_back(RandomShape(
        &rng, static_cast<std::size_t>(rng.UniformInt(4, 28)),
        seed + static_cast<std::uint64_t>(i)));
  }
  c.base_count = 4 + seed % 3;
  for (std::size_t i = 0; i < c.data.size(); ++i) {
    c.full_db.Add(c.data[i]);
    if (i < c.base_count) c.base_db.Add(c.data[i]);
  }
  c.q = RandomShape(&rng, static_cast<std::size_t>(rng.UniformInt(2, 8)),
                    seed);
  c.eps = rng.Uniform(0.5, 10.0);
  return c;
}

TEST(DifferentialTest, TieredIndexByteIdenticalToMonolithic) {
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    const TieredCase c = MakeTieredCase(seed);
    for (const IndexKind kind : {IndexKind::kSuffixTree,
                                 IndexKind::kCategorized,
                                 IndexKind::kSparse}) {
      IndexOptions mono;
      mono.kind = kind;
      mono.num_categories = 8;
      auto monolithic = Index::Build(&c.full_db, mono);
      ASSERT_TRUE(monolithic.ok()) << monolithic.status().ToString();
      const std::vector<Match> reference = monolithic->Search(c.q, c.eps);
      const std::vector<Match> knn_reference = monolithic->SearchKnn(c.q, 7);

      // memtable_max sweeps the final tier count from ~1 extra tier up to
      // a 4-deep stack (memtable + sealed tiers awaiting compaction).
      for (const std::size_t memtable_max : {1u, 2u, 4u}) {
        core::TieredOptions tiered_options;
        tiered_options.index = mono;
        tiered_options.memtable_max_sequences = memtable_max;
        tiered_options.max_sealed_tiers = 2;
        tiered_options.merge_in_background = false;
        auto tiered = core::TieredIndex::Create(&c.base_db, tiered_options);
        ASSERT_TRUE(tiered.ok()) << tiered.status().ToString();
        for (std::size_t i = c.base_count; i < c.data.size(); ++i) {
          ASSERT_TRUE((*tiered)->Append(c.data[i]).ok());
        }
        const auto snapshot = (*tiered)->Snapshot();
        ASSERT_GE(snapshot->tiers().size(), 2u);
        for (const std::size_t threads : {0u, 1u, 4u}) {
          QueryOptions qo;
          qo.num_threads = threads;
          const std::string ctx =
              std::string(core::IndexKindToString(kind)) + " seed=" +
              std::to_string(seed) + " memtable=" +
              std::to_string(memtable_max) + " threads=" +
              std::to_string(threads);
          ExpectByteIdentical(reference, snapshot->Search(c.q, c.eps, qo),
                              "tiered range " + ctx);
          ExpectByteIdentical(knn_reference,
                              snapshot->SearchKnn(c.q, 7, qo),
                              "tiered knn " + ctx);
        }
      }
    }
  }
}

TEST(DifferentialTest, TieredMidStreamSnapshotsMatchMonolithicPrefixes) {
  // After *every* append (and the inline compactions it triggers), the
  // published snapshot must equal a monolithic index freshly built over
  // exactly the sequences ingested so far — the mid-stream tier shapes
  // (fresh memtable, tier just sealed, pair just merged) all pass through
  // this gate.
  const TieredCase c = MakeTieredCase(7);
  for (const IndexKind kind : {IndexKind::kSuffixTree,
                               IndexKind::kCategorized,
                               IndexKind::kSparse}) {
    IndexOptions mono;
    mono.kind = kind;
    mono.num_categories = 8;
    core::TieredOptions tiered_options;
    tiered_options.index = mono;
    tiered_options.memtable_max_sequences = 2;
    tiered_options.max_sealed_tiers = 1;
    tiered_options.merge_in_background = false;
    auto tiered = core::TieredIndex::Create(&c.base_db, tiered_options);
    ASSERT_TRUE(tiered.ok());

    seqdb::SequenceDatabase prefix_db;
    for (std::size_t i = 0; i < c.base_count; ++i) prefix_db.Add(c.data[i]);
    for (std::size_t i = c.base_count; i < c.data.size(); ++i) {
      ASSERT_TRUE((*tiered)->Append(c.data[i]).ok());
      prefix_db.Add(c.data[i]);
      auto prefix_index = Index::Build(&prefix_db, mono);
      ASSERT_TRUE(prefix_index.ok());
      const std::string ctx = std::string(core::IndexKindToString(kind)) +
                              " after append " + std::to_string(i);
      ExpectByteIdentical(prefix_index->Search(c.q, c.eps),
                          (*tiered)->Snapshot()->Search(c.q, c.eps),
                          "midstream range " + ctx);
      ExpectByteIdentical(prefix_index->SearchKnn(c.q, 5),
                          (*tiered)->Snapshot()->SearchKnn(c.q, 5),
                          "midstream knn " + ctx);
    }
  }
}

TEST(DifferentialTest, TieredDiskBackedByteIdenticalToMonolithic) {
  const TieredCase c = MakeTieredCase(11);
  for (const IndexKind kind : {IndexKind::kSuffixTree,
                               IndexKind::kCategorized,
                               IndexKind::kSparse}) {
    const std::string kind_name = core::IndexKindToString(kind);
    IndexOptions mono;
    mono.kind = kind;
    mono.num_categories = 8;
    auto monolithic = Index::Build(&c.full_db, mono);
    ASSERT_TRUE(monolithic.ok());
    const std::vector<Match> reference = monolithic->Search(c.q, c.eps);
    const std::vector<Match> knn_reference = monolithic->SearchKnn(c.q, 7);

    core::TieredOptions tiered_options;
    tiered_options.index = mono;
    tiered_options.index.disk_path =
        testing::TempDir() + "/diff_tiered_" + kind_name;
    tiered_options.index.disk_batch_sequences = 4;
    tiered_options.memtable_max_sequences = 1;
    tiered_options.max_sealed_tiers = 1;
    tiered_options.merge_in_background = false;
    auto tiered = core::TieredIndex::Create(&c.base_db, tiered_options);
    ASSERT_TRUE(tiered.ok()) << tiered.status().ToString();
    for (std::size_t i = c.base_count; i < c.data.size(); ++i) {
      ASSERT_TRUE((*tiered)->Append(c.data[i]).ok());
    }
    ASSERT_GE((*tiered)->Stats().merges_completed, 1u);
    const auto snapshot = (*tiered)->Snapshot();
    for (const std::size_t threads : {0u, 4u}) {
      QueryOptions qo;
      qo.num_threads = threads;
      const std::string ctx =
          kind_name + " threads=" + std::to_string(threads);
      ExpectByteIdentical(reference, snapshot->Search(c.q, c.eps, qo),
                          "tiered disk range " + ctx);
      ExpectByteIdentical(knn_reference, snapshot->SearchKnn(c.q, 7, qo),
                          "tiered disk knn " + ctx);
    }
  }
}

TEST(DifferentialTest, TieredBackgroundMergeSnapshotsByteIdentical) {
  // With the background worker on, snapshots taken while compactions may
  // still be in flight — and again after the queue drains — must both be
  // byte-identical to the monolithic reference.
  const TieredCase c = MakeTieredCase(13);
  IndexOptions mono;
  mono.kind = IndexKind::kSparse;
  mono.num_categories = 8;
  auto monolithic = Index::Build(&c.full_db, mono);
  ASSERT_TRUE(monolithic.ok());
  const std::vector<Match> reference = monolithic->Search(c.q, c.eps);
  const std::vector<Match> knn_reference = monolithic->SearchKnn(c.q, 7);

  core::TieredOptions tiered_options;
  tiered_options.index = mono;
  tiered_options.memtable_max_sequences = 1;
  tiered_options.max_sealed_tiers = 1;
  tiered_options.merge_in_background = true;
  auto tiered = core::TieredIndex::Create(&c.base_db, tiered_options);
  ASSERT_TRUE(tiered.ok());
  for (std::size_t i = c.base_count; i < c.data.size(); ++i) {
    ASSERT_TRUE((*tiered)->Append(c.data[i]).ok());
  }
  // Taken possibly mid-merge: the snapshot still covers every ingested
  // sequence with some consistent tier stack.
  ExpectByteIdentical(reference, (*tiered)->Snapshot()->Search(c.q, c.eps),
                      "bg possibly-mid-merge range");
  (*tiered)->WaitForMerges();
  ExpectByteIdentical(reference, (*tiered)->Snapshot()->Search(c.q, c.eps),
                      "bg drained range");
  ExpectByteIdentical(knn_reference,
                      (*tiered)->Snapshot()->SearchKnn(c.q, 7),
                      "bg drained knn");
}

// ---------------------------------------------------------------------------
// Claim 7: the mmap zero-copy read path is interchangeable with the
// buffered path — same bundle, byte-identical answers — and the v1
// format gate refuses mmap cleanly.
// ---------------------------------------------------------------------------

TEST(DifferentialTest, MmapReadPathByteIdenticalToBuffered) {
  // For every index kind, the same persisted bundle is reopened through
  // both read paths; every (io_mode, threads) combination must return
  // byte-identical matches to the buffered serial reference, and the
  // mmap reopen must show zero buffer-pool traffic (the whole point of
  // the zero-copy path) with a non-empty mapping.
  for (const IndexKind kind : {IndexKind::kSuffixTree,
                               IndexKind::kCategorized,
                               IndexKind::kSparse}) {
    const std::string kind_name = core::IndexKindToString(kind);
    const seqdb::SequenceDatabase db = RandomDb(
        900 + static_cast<std::uint64_t>(kind));
    Rng rng(9900 + static_cast<std::uint64_t>(kind));
    const std::vector<Value> q = RandomShape(
        &rng, static_cast<std::size_t>(rng.UniformInt(2, 8)), 1);
    const Value eps = rng.Uniform(1.0, 10.0);

    IndexOptions build;
    build.kind = kind;
    build.num_categories = 8;
    build.disk_path = testing::TempDir() + "/diff_iomode_" + kind_name;
    build.disk_batch_sequences = 4;
    build.disk_io_mode = storage::IoMode::kBuffered;
    build.disk_pool_pages = 2;  // Tiny pool: the buffered legs re-read.
    auto baseline = Index::Build(&db, build);
    ASSERT_TRUE(baseline.ok()) << kind_name << ": "
                               << baseline.status().ToString();
    const std::vector<Match> reference = baseline->Search(q, eps);
    const std::vector<Match> knn_reference = baseline->SearchKnn(q, 7);

    for (const storage::IoMode mode : {storage::IoMode::kBuffered,
                                       storage::IoMode::kMmap}) {
      IndexOptions reopen = build;
      reopen.disk_io_mode = mode;
      auto index = Index::Open(&db, reopen);
      ASSERT_TRUE(index.ok()) << kind_name << ": "
                              << index.status().ToString();
      for (const std::size_t threads : {0u, 4u}) {
        QueryOptions query_options;
        query_options.num_threads = threads;
        const std::string ctx = kind_name + " io=" +
                                storage::IoModeToString(mode) +
                                " threads=" + std::to_string(threads);
        ExpectByteIdentical(reference, index->Search(q, eps, query_options),
                            "iomode range " + ctx);
        ExpectByteIdentical(knn_reference,
                            index->SearchKnn(q, 7, query_options),
                            "iomode knn " + ctx);
      }
      ASSERT_NE(index->disk_tree(), nullptr);
      EXPECT_EQ(index->disk_tree()->io_mode(), mode) << kind_name;
      if (mode == storage::IoMode::kMmap) {
        const auto pool = index->disk_tree()->PoolStats().Total();
        EXPECT_EQ(pool.hits + pool.misses, 0u)
            << kind_name << ": mmap path touched the buffer pool";
        EXPECT_GT(index->MappedStats().mapped_bytes, 0u) << kind_name;
      }
    }
  }
}

TEST(DifferentialTest, TieredMmapByteIdenticalToMonolithic) {
  // The tiered stack on the mmap path: merges write through buffered
  // scratch trees, but every *published* disk tier is reopened mmap'd —
  // and the stack still answers byte-identically to a monolithic index.
  const TieredCase c = MakeTieredCase(17);
  for (const IndexKind kind : {IndexKind::kSuffixTree,
                               IndexKind::kCategorized,
                               IndexKind::kSparse}) {
    const std::string kind_name = core::IndexKindToString(kind);
    IndexOptions mono;
    mono.kind = kind;
    mono.num_categories = 8;
    auto monolithic = Index::Build(&c.full_db, mono);
    ASSERT_TRUE(monolithic.ok());
    const std::vector<Match> reference = monolithic->Search(c.q, c.eps);
    const std::vector<Match> knn_reference = monolithic->SearchKnn(c.q, 7);

    core::TieredOptions tiered_options;
    tiered_options.index = mono;
    tiered_options.index.disk_path =
        testing::TempDir() + "/diff_tiered_mmap_" + kind_name;
    tiered_options.index.disk_batch_sequences = 4;
    tiered_options.index.disk_io_mode = storage::IoMode::kMmap;
    tiered_options.memtable_max_sequences = 1;
    tiered_options.max_sealed_tiers = 1;
    tiered_options.merge_in_background = false;
    auto tiered = core::TieredIndex::Create(&c.base_db, tiered_options);
    ASSERT_TRUE(tiered.ok()) << tiered.status().ToString();
    for (std::size_t i = c.base_count; i < c.data.size(); ++i) {
      ASSERT_TRUE((*tiered)->Append(c.data[i]).ok());
    }
    ASSERT_GE((*tiered)->Stats().merges_completed, 1u);
    const auto snapshot = (*tiered)->Snapshot();
    std::size_t mapped_tiers = 0;
    for (const auto& tier : snapshot->tiers()) {
      if (!tier->info.on_disk) continue;
      EXPECT_EQ(tier->info.io_mode, storage::IoMode::kMmap) << kind_name;
      EXPECT_GT(tier->info.mapped_bytes, 0u) << kind_name;
      ++mapped_tiers;
    }
    EXPECT_GE(mapped_tiers, 1u) << kind_name;
    for (const std::size_t threads : {0u, 4u}) {
      QueryOptions qo;
      qo.num_threads = threads;
      const std::string ctx =
          kind_name + " threads=" + std::to_string(threads);
      ExpectByteIdentical(reference, snapshot->Search(c.q, c.eps, qo),
                          "tiered mmap range " + ctx);
      ExpectByteIdentical(knn_reference, snapshot->SearchKnn(c.q, 7, qo),
                          "tiered mmap knn " + ctx);
    }
  }
}

TEST(DifferentialTest, V1BundleVersionGate) {
  // A v1 bundle (no section table) must keep opening on the buffered
  // path with byte-identical answers, while the mmap path refuses it
  // with Corruption — the relocatable layout only exists in v2.
  const seqdb::SequenceDatabase db = RandomDb(777);
  Rng rng(10700);
  const std::vector<Value> q = RandomShape(
      &rng, static_cast<std::size_t>(rng.UniformInt(2, 8)), 1);
  const Value eps = rng.Uniform(1.0, 10.0);

  IndexOptions build;
  build.kind = IndexKind::kSparse;
  build.num_categories = 8;
  build.disk_path = testing::TempDir() + "/diff_v1_gate";
  build.disk_batch_sequences = 4;
  build.disk_io_mode = storage::IoMode::kBuffered;
  auto baseline = Index::Build(&db, build);
  ASSERT_TRUE(baseline.ok()) << baseline.status().ToString();
  ASSERT_NE(baseline->disk_tree(), nullptr);
  EXPECT_EQ(baseline->disk_tree()->format_version(), 2u);
  const std::vector<Match> reference = baseline->Search(q, eps);
  const std::vector<Match> knn_reference = baseline->SearchKnn(q, 7);

  ASSERT_TRUE(suffixtree::DowngradeBundleToV1ForTest(build.disk_path).ok());

  // Buffered: a v1 bundle is still first-class.
  auto buffered = Index::Open(&db, build);
  ASSERT_TRUE(buffered.ok()) << buffered.status().ToString();
  ASSERT_NE(buffered->disk_tree(), nullptr);
  EXPECT_EQ(buffered->disk_tree()->format_version(), 1u);
  ExpectByteIdentical(reference, buffered->Search(q, eps), "v1 range");
  ExpectByteIdentical(knn_reference, buffered->SearchKnn(q, 7), "v1 knn");

  // Mmap: refused cleanly, no crash.
  IndexOptions mmap_reopen = build;
  mmap_reopen.disk_io_mode = storage::IoMode::kMmap;
  auto refused = Index::Open(&db, mmap_reopen);
  ASSERT_FALSE(refused.ok());
  EXPECT_EQ(refused.status().code(), StatusCode::kCorruption)
      << refused.status().ToString();
}

// ---------------------------------------------------------------------------
// Claim 8: the node-summary screen never changes the answer at
// approx_factor 1.0, and factors > 1 trade a subset answer for pruning.
// ---------------------------------------------------------------------------

/// Every match in `subset` must appear in `superset` with the same
/// (seq, start, len) and exactly the same distance double — the approx
/// dial may drop matches but never invent or perturb one.
void ExpectSubsetWithExactDistances(const std::vector<Match>& superset,
                                    const std::vector<Match>& subset,
                                    const std::string& context) {
  ASSERT_LE(subset.size(), superset.size()) << context;
  for (const Match& m : subset) {
    bool found = false;
    for (const Match& ref : superset) {
      if (ref.seq == m.seq && ref.start == m.start && ref.len == m.len) {
        EXPECT_EQ(ref.distance, m.distance)
            << context << " at (" << m.seq << "," << m.start << ","
            << m.len << ")";
        found = true;
        break;
      }
    }
    EXPECT_TRUE(found) << context << ": approx match (" << m.seq << ","
                       << m.start << "," << m.len
                       << ") not in the exact answer";
  }
}

TEST(DifferentialTest, SummaryScreenByteIdenticalAcrossEngines) {
  // Also proves the screen is live, not vacuously identical: across the
  // sweep it must have screened edges and pruned at least one subtree.
  std::uint64_t total_invocations = 0;
  std::uint64_t total_pruned = 0;
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const seqdb::SequenceDatabase db = RandomDb(300 + seed);
    Rng rng(11000 + seed);
    const std::vector<Value> q = RandomShape(
        &rng, static_cast<std::size_t>(rng.UniformInt(2, 10)), seed);
    const Value eps = rng.Uniform(0.5, 12.0);

    for (const IndexKind kind : {IndexKind::kSuffixTree,
                                 IndexKind::kCategorized,
                                 IndexKind::kSparse}) {
      IndexOptions options;
      options.kind = kind;
      options.num_categories = 8;
      auto index = Index::Build(&db, options);
      ASSERT_TRUE(index.ok()) << index.status().ToString();

      QueryOptions off;
      off.use_node_summaries = false;
      const std::vector<Match> reference = index->Search(q, eps, off);
      const std::vector<Match> knn_reference = index->SearchKnn(q, 7, off);
      for (const std::size_t threads : {0u, 2u, 3u}) {
        QueryOptions on;  // Summaries default on at factor 1.0.
        on.num_threads = threads;
        core::SearchStats stats;
        const std::string ctx = std::string(core::IndexKindToString(kind)) +
                                " seed=" + std::to_string(seed) +
                                " threads=" + std::to_string(threads);
        ExpectByteIdentical(reference, index->Search(q, eps, on, &stats),
                            "summary range " + ctx);
        ExpectByteIdentical(knn_reference, index->SearchKnn(q, 7, on),
                            "summary knn " + ctx);
        total_invocations += stats.summary_lb_invocations;
        total_pruned += stats.nodes_pruned_by_summary;
      }
    }
  }
  EXPECT_GT(total_invocations, 0u);
  EXPECT_GT(total_pruned, 0u);
}

TEST(DifferentialTest, SummaryScreenBandedByteIdentical) {
  // Under a band the screen adds the length pre-check (subtree too short
  // for any legal banded path); both legs must still be exact.
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    const seqdb::SequenceDatabase db = RandomDb(350 + seed);
    Rng rng(12000 + seed);
    const std::vector<Value> q = RandomShape(
        &rng, static_cast<std::size_t>(rng.UniformInt(3, 10)), seed);
    const Value eps = rng.Uniform(0.5, 8.0);
    IndexOptions options;
    options.kind = IndexKind::kCategorized;
    options.num_categories = 8;
    auto index = Index::Build(&db, options);
    ASSERT_TRUE(index.ok());
    for (const Pos band : {1u, 2u, 4u}) {
      QueryOptions off;
      off.band = band;
      off.use_node_summaries = false;
      QueryOptions on;
      on.band = band;
      const std::string ctx = "seed=" + std::to_string(seed) +
                              " band=" + std::to_string(band);
      ExpectByteIdentical(index->Search(q, eps, off),
                          index->Search(q, eps, on),
                          "summary banded range " + ctx);
      ExpectByteIdentical(index->SearchKnn(q, 5, off),
                          index->SearchKnn(q, 5, on),
                          "summary banded knn " + ctx);
    }
  }
}

TEST(DifferentialTest, SummaryScreenDiskAndTieredByteIdentical) {
  // The persisted summary section (v2 4th section, both io modes) and the
  // tiered stack (memory summaries on sealed tiers, attached sections on
  // merged disk tiers, none on the memtable) must all stay exact.
  const TieredCase c = MakeTieredCase(23);
  for (const IndexKind kind : {IndexKind::kSuffixTree,
                               IndexKind::kCategorized,
                               IndexKind::kSparse}) {
    const std::string kind_name = core::IndexKindToString(kind);
    IndexOptions build;
    build.kind = kind;
    build.num_categories = 8;
    build.disk_path = testing::TempDir() + "/diff_sums_disk_" + kind_name;
    build.disk_batch_sequences = 4;
    build.disk_io_mode = storage::IoMode::kBuffered;
    build.disk_pool_pages = 2;
    auto built = Index::Build(&c.full_db, build);
    ASSERT_TRUE(built.ok()) << kind_name << ": " << built.status().ToString();

    QueryOptions off;
    off.use_node_summaries = false;
    const std::vector<Match> reference = built->Search(c.q, c.eps, off);
    const std::vector<Match> knn_reference =
        built->SearchKnn(c.q, 7, off);

    for (const storage::IoMode io :
         {storage::IoMode::kBuffered, storage::IoMode::kMmap}) {
      IndexOptions reopen = build;
      reopen.disk_io_mode = io;
      auto index = Index::Open(&c.full_db, reopen);
      ASSERT_TRUE(index.ok()) << kind_name << ": "
                              << index.status().ToString();
      for (const std::size_t threads : {0u, 4u}) {
        QueryOptions on;
        on.num_threads = threads;
        core::SearchStats stats;
        const std::string ctx = kind_name + " io=" +
                                storage::IoModeToString(io) + " threads=" +
                                std::to_string(threads);
        ExpectByteIdentical(reference,
                            index->Search(c.q, c.eps, on, &stats),
                            "disk summary range " + ctx);
        ExpectByteIdentical(knn_reference,
                            index->SearchKnn(c.q, 7, on),
                            "disk summary knn " + ctx);
        if (threads == 0) {
          EXPECT_GT(stats.summary_lb_invocations, 0u) << ctx;
        }
      }
    }

    // Tiered: base tier + appends through seal/merge, memory and disk.
    for (const bool on_disk : {false, true}) {
      core::TieredOptions tiered_options;
      tiered_options.index.kind = kind;
      tiered_options.index.num_categories = 8;
      if (on_disk) {
        tiered_options.index.disk_path =
            testing::TempDir() + "/diff_sums_tiered_" + kind_name;
        tiered_options.index.disk_batch_sequences = 4;
      }
      tiered_options.memtable_max_sequences = 2;
      tiered_options.max_sealed_tiers = 2;
      tiered_options.merge_in_background = false;
      auto tiered = core::TieredIndex::Create(&c.base_db, tiered_options);
      ASSERT_TRUE(tiered.ok()) << tiered.status().ToString();
      for (std::size_t i = c.base_count; i < c.data.size(); ++i) {
        ASSERT_TRUE((*tiered)->Append(c.data[i]).ok());
      }
      const auto snapshot = (*tiered)->Snapshot();
      const std::vector<Match> tiered_reference =
          snapshot->Search(c.q, c.eps, off);
      const std::vector<Match> tiered_knn_reference =
          snapshot->SearchKnn(c.q, 7, off);
      ExpectByteIdentical(reference, tiered_reference,
                          "tiered summary-off baseline " + kind_name);
      for (const std::size_t threads : {0u, 4u}) {
        QueryOptions on;
        on.num_threads = threads;
        const std::string ctx = kind_name +
                                (on_disk ? " disk" : " memory") +
                                " threads=" + std::to_string(threads);
        ExpectByteIdentical(tiered_reference,
                            snapshot->Search(c.q, c.eps, on),
                            "tiered summary range " + ctx);
        ExpectByteIdentical(tiered_knn_reference,
                            snapshot->SearchKnn(c.q, 7, on),
                            "tiered summary knn " + ctx);
      }
    }
  }
}

TEST(DifferentialTest, ApproxFactorReturnsSubsetWithExactDistances) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const seqdb::SequenceDatabase db = RandomDb(400 + seed);
    Rng rng(13000 + seed);
    const std::vector<Value> q = RandomShape(
        &rng, static_cast<std::size_t>(rng.UniformInt(2, 10)), seed);
    const Value eps = rng.Uniform(1.0, 12.0);
    for (const IndexKind kind : {IndexKind::kSuffixTree,
                                 IndexKind::kCategorized,
                                 IndexKind::kSparse}) {
      IndexOptions options;
      options.kind = kind;
      options.num_categories = 8;
      auto index = Index::Build(&db, options);
      ASSERT_TRUE(index.ok());
      const std::vector<Match> exact = index->Search(q, eps);
      const std::vector<Match> everything = index->Search(q, kInfinity);
      for (const Value factor : {1.5, 4.0}) {
        QueryOptions approx;
        approx.approx_factor = factor;
        const std::string ctx = std::string(core::IndexKindToString(kind)) +
                                " seed=" + std::to_string(seed) +
                                " factor=" + std::to_string(factor);
        ExpectSubsetWithExactDistances(exact,
                                       index->Search(q, eps, approx),
                                       "approx range " + ctx);
        // k-NN under a factor may return different (farther) neighbors
        // than the exact top-k, but every one it reports must be a real
        // match from the database at its true distance — checked against
        // the unbounded exact range answer.
        const std::vector<Match> knn = index->SearchKnn(q, 4, approx);
        EXPECT_LE(knn.size(), 4u) << ctx;
        ExpectSubsetWithExactDistances(everything, knn, "approx knn " + ctx);
      }
    }
  }
}

TEST(DifferentialTest, ApproxFactorActuallyPrunes) {
  // A crafted case where the dial must bite: the query sits far from the
  // data, so every surviving candidate's summary lower bound is large and
  // a factor of 3 pushes it past the threshold. Exact search still finds
  // matches (eps is generous); the approximate search must drop some of
  // them — and report the prunes in its stats.
  Rng rng(14000);
  seqdb::SequenceDatabase db;
  for (int i = 0; i < 8; ++i) {
    db.Add(RandomShape(&rng, static_cast<std::size_t>(rng.UniformInt(8, 24)),
                       0));  // Random walks near 0.
  }
  const std::vector<Value> q(6, 40.0);  // Constant, far from the walks.
  IndexOptions options;
  options.kind = IndexKind::kCategorized;
  options.num_categories = 8;
  auto index = Index::Build(&db, options);
  ASSERT_TRUE(index.ok());
  // Anchor eps just above the true nearest neighbor: every candidate's
  // summary bound is then ~eps/1.25 or more, so bound * 3 clears the
  // threshold and the dial must discard real matches.
  const std::vector<Match> nearest = index->SearchKnn(q, 1);
  ASSERT_EQ(nearest.size(), 1u);
  const Value eps = nearest[0].distance * 1.25;
  const std::vector<Match> exact = index->Search(q, eps);
  ASSERT_GT(exact.size(), 0u);

  QueryOptions approx;
  approx.approx_factor = 3.0;
  core::SearchStats stats;
  const std::vector<Match> got = index->Search(q, eps, approx, &stats);
  ExpectSubsetWithExactDistances(exact, got, "forced approx");
  EXPECT_LT(got.size(), exact.size());
  EXPECT_GT(stats.nodes_pruned_by_summary, 0u);
}

}  // namespace
}  // namespace tswarp
