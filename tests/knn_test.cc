// k-nearest-subsequence search (branch-and-bound extension on top of the
// paper's filter): results must match the k smallest exact DTW distances
// over all subsequences.

#include <algorithm>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "core/index.h"
#include "datagen/generators.h"
#include "dtw/dtw.h"

namespace tswarp::core {
namespace {

std::vector<Value> AllDistances(const seqdb::SequenceDatabase& db,
                                std::span<const Value> q) {
  std::vector<Value> out;
  for (SeqId id = 0; id < db.size(); ++id) {
    const auto n = static_cast<Pos>(db.sequence(id).size());
    for (Pos p = 0; p < n; ++p) {
      for (Pos len = 1; len <= n - p; ++len) {
        out.push_back(dtw::DtwDistance(q, db.Subsequence(id, p, len)));
      }
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

seqdb::SequenceDatabase SmallDb(std::uint64_t seed) {
  datagen::RandomWalkOptions options;
  options.num_sequences = 6;
  options.avg_length = 25;
  options.length_jitter = 5;
  options.seed = seed;
  return datagen::GenerateRandomWalks(options);
}

class KnnKindTest : public testing::TestWithParam<IndexKind> {};

TEST_P(KnnKindTest, MatchesBruteForceTopK) {
  Rng rng(31337);
  for (int round = 0; round < 3; ++round) {
    const seqdb::SequenceDatabase db =
        SmallDb(600 + static_cast<std::uint64_t>(round));
    IndexOptions options;
    options.kind = GetParam();
    options.num_categories = 8;
    auto index = Index::Build(&db, options);
    ASSERT_TRUE(index.ok());
    for (const std::size_t k : {1u, 5u, 20u}) {
      std::vector<Value> q;
      Value v = rng.Uniform(20, 80);
      const auto len = static_cast<std::size_t>(rng.UniformInt(2, 5));
      for (std::size_t i = 0; i < len; ++i) {
        q.push_back(v);
        v += rng.Gaussian(0, 1);
      }
      const std::vector<Match> knn = index->SearchKnn(q, k);
      ASSERT_EQ(knn.size(), k);
      // Sorted by distance.
      for (std::size_t i = 1; i < knn.size(); ++i) {
        EXPECT_LE(knn[i - 1].distance, knn[i].distance);
      }
      // Distances equal the k smallest over all subsequences (ties may
      // swap which subsequence is reported, so compare distances).
      const std::vector<Value> all = AllDistances(db, q);
      for (std::size_t i = 0; i < k; ++i) {
        EXPECT_NEAR(knn[i].distance, all[i], 1e-9)
            << "k=" << k << " i=" << i;
      }
      // Each reported distance is the true distance of its subsequence.
      for (const Match& m : knn) {
        EXPECT_NEAR(m.distance,
                    dtw::DtwDistance(q, db.Subsequence(m.seq, m.start,
                                                       m.len)),
                    1e-9);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllKinds, KnnKindTest,
                         testing::Values(IndexKind::kSuffixTree,
                                         IndexKind::kCategorized,
                                         IndexKind::kSparse),
                         [](const testing::TestParamInfo<IndexKind>& info) {
                           std::string s = IndexKindToString(info.param);
                           std::erase(s, '_');
                           return s;
                         });

TEST(KnnTest, KZeroReturnsEmpty) {
  const seqdb::SequenceDatabase db = SmallDb(1);
  IndexOptions options;
  options.kind = IndexKind::kSparse;
  options.num_categories = 8;
  auto index = Index::Build(&db, options);
  ASSERT_TRUE(index.ok());
  const std::vector<Value> q = {30.0, 31.0};
  EXPECT_TRUE(index->SearchKnn(q, 0).empty());
}

TEST(KnnTest, KLargerThanSubsequenceCountReturnsAll) {
  seqdb::SequenceDatabase db;
  db.Add({1, 2, 3});  // 6 subsequences.
  IndexOptions options;
  options.kind = IndexKind::kSuffixTree;
  auto index = Index::Build(&db, options);
  ASSERT_TRUE(index.ok());
  const std::vector<Value> q = {2.0};
  const auto knn = index->SearchKnn(q, 100);
  EXPECT_EQ(knn.size(), 6u);
}

TEST(KnnTest, NearestIsThePlantedCopy) {
  Rng rng(9);
  seqdb::SequenceDatabase db = SmallDb(77);
  // Plant an exact copy of the query inside sequence 2.
  const std::vector<Value> q = {55, 54, 53.5, 54.5, 56};
  {
    seqdb::Sequence s = db.sequence(2);
    std::copy(q.begin(), q.end(), s.begin() + 10);
    db = SmallDb(77);  // Rebuild (SequenceDatabase is append-only).
    seqdb::SequenceDatabase db2;
    for (SeqId id = 0; id < db.size(); ++id) {
      if (id == 2) {
        db2.Add(std::move(s));
      } else {
        db2.Add(seqdb::Sequence(db.sequence(id)));
      }
    }
    db = std::move(db2);
  }
  IndexOptions options;
  options.kind = IndexKind::kSparse;
  options.num_categories = 10;
  auto index = Index::Build(&db, options);
  ASSERT_TRUE(index.ok());
  const auto knn = index->SearchKnn(q, 1);
  ASSERT_EQ(knn.size(), 1u);
  EXPECT_EQ(knn[0].seq, 2u);
  EXPECT_NEAR(knn[0].distance, 0.0, 1e-12);
}

TEST(KnnTest, PrunesRelativeToUnprunedRun) {
  const seqdb::SequenceDatabase db = SmallDb(5);
  IndexOptions options;
  options.kind = IndexKind::kSparse;
  options.num_categories = 12;
  auto index = Index::Build(&db, options);
  ASSERT_TRUE(index.ok());
  const std::vector<Value> q(db.sequence(0).begin(),
                             db.sequence(0).begin() + 4);
  SearchStats pruned, full;
  QueryOptions no_prune;
  no_prune.prune = false;
  const auto a = index->SearchKnn(q, 3, {}, &pruned);
  const auto b = index->SearchKnn(q, 3, no_prune, &full);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_NEAR(a[i].distance, b[i].distance, 1e-9);
  }
  EXPECT_LE(pruned.rows_pushed, full.rows_pushed);
}

}  // namespace
}  // namespace tswarp::core
