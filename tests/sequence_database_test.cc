#include "seqdb/sequence_database.h"

#include <filesystem>

#include <gtest/gtest.h>

namespace tswarp::seqdb {
namespace {

TEST(SequenceDatabaseTest, AddAndAccess) {
  SequenceDatabase db;
  EXPECT_TRUE(db.empty());
  const SeqId a = db.Add({1.0, 2.0, 3.0});
  const SeqId b = db.Add({4.0});
  EXPECT_EQ(a, 0u);
  EXPECT_EQ(b, 1u);
  EXPECT_EQ(db.size(), 2u);
  EXPECT_EQ(db.TotalElements(), 4u);
  EXPECT_DOUBLE_EQ(db.AverageLength(), 2.0);
  EXPECT_EQ(db.sequence(0).size(), 3u);
  EXPECT_DOUBLE_EQ(db.sequence(1)[0], 4.0);
}

TEST(SequenceDatabaseTest, SubsequenceAndSuffixViews) {
  SequenceDatabase db;
  db.Add({10, 20, 30, 40, 50});
  const auto sub = db.Subsequence(0, 1, 3);
  ASSERT_EQ(sub.size(), 3u);
  EXPECT_DOUBLE_EQ(sub[0], 20);
  EXPECT_DOUBLE_EQ(sub[2], 40);
  const auto suffix = db.Suffix(0, 3);
  ASSERT_EQ(suffix.size(), 2u);
  EXPECT_DOUBLE_EQ(suffix[0], 40);
}

TEST(SequenceDatabaseTest, ValueRangeAndMean) {
  SequenceDatabase db;
  db.Add({5, -3, 8});
  db.Add({2, 2});
  const auto [lo, hi] = db.ValueRange();
  EXPECT_DOUBLE_EQ(lo, -3);
  EXPECT_DOUBLE_EQ(hi, 8);
  EXPECT_DOUBLE_EQ(db.MeanValue(0), 10.0 / 3.0);
  EXPECT_DOUBLE_EQ(db.MeanValue(1), 2.0);
}

TEST(SequenceDatabaseTest, DataBytes) {
  SequenceDatabase db;
  db.Add({1, 2, 3});
  EXPECT_EQ(db.DataBytes(), 3 * sizeof(Value));
}

class SaveLoadTest : public testing::Test {
 protected:
  void SetUp() override {
    path_ = (std::filesystem::temp_directory_path() /
             ("tswarp_seqdb_" + std::to_string(::getpid()) + ".bin"))
                .string();
  }
  void TearDown() override { std::filesystem::remove(path_); }
  std::string path_;
};

TEST_F(SaveLoadTest, RoundTrip) {
  SequenceDatabase db;
  db.Add({1.5, -2.25, 1e9});
  db.Add({0.0});
  db.Add({3, 3, 3, 3});
  ASSERT_TRUE(db.Save(path_).ok());
  auto loaded = SequenceDatabase::Load(path_);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  ASSERT_EQ(loaded->size(), 3u);
  EXPECT_EQ(loaded->TotalElements(), db.TotalElements());
  for (SeqId id = 0; id < db.size(); ++id) {
    EXPECT_EQ(loaded->sequence(id), db.sequence(id));
  }
}

TEST_F(SaveLoadTest, LoadMissingFileFails) {
  auto loaded = SequenceDatabase::Load(path_ + ".nope");
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kIOError);
}

TEST_F(SaveLoadTest, LoadRejectsCorruptHeader) {
  {
    std::FILE* f = std::fopen(path_.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    const char junk[] = "this is not a tswarp database file";
    std::fwrite(junk, 1, sizeof(junk), f);
    std::fclose(f);
  }
  auto loaded = SequenceDatabase::Load(path_);
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kCorruption);
}

TEST_F(SaveLoadTest, LoadRejectsTruncatedBody) {
  SequenceDatabase db;
  db.Add({1, 2, 3, 4, 5, 6, 7, 8});
  ASSERT_TRUE(db.Save(path_).ok());
  // Truncate the file to cut into the sequence payload.
  std::filesystem::resize_file(path_, 30);
  auto loaded = SequenceDatabase::Load(path_);
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kCorruption);
}

}  // namespace
}  // namespace tswarp::seqdb
