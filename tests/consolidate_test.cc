#include "core/consolidate.h"

#include <gtest/gtest.h>

#include "core/index.h"
#include "datagen/generators.h"

namespace tswarp::core {
namespace {

TEST(ConsolidateTest, EmptyInput) {
  EXPECT_TRUE(ConsolidateMatches({}).empty());
}

TEST(ConsolidateTest, SingleMatchPassesThrough) {
  const std::vector<Match> in = {{0, 5, 3, 1.5}};
  const auto out = ConsolidateMatches(in);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], in[0]);
}

TEST(ConsolidateTest, OverlappingWindowsKeepBest) {
  const std::vector<Match> in = {
      {0, 5, 4, 2.0},   // [5, 9)
      {0, 6, 4, 0.5},   // [6, 10) overlaps -> best of group
      {0, 8, 3, 1.0},   // [8, 11) overlaps
  };
  const auto out = ConsolidateMatches(in);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].start, 6u);
  EXPECT_DOUBLE_EQ(out[0].distance, 0.5);
}

TEST(ConsolidateTest, DisjointWindowsStaySeparate) {
  const std::vector<Match> in = {
      {0, 0, 3, 1.0},   // [0, 3)
      {0, 3, 2, 2.0},   // [3, 5): touching, not overlapping -> same group
                        // only with max_gap >= 0? start <= group_end: 3 <= 3
      {0, 10, 2, 0.1},  // Far away.
      {1, 0, 3, 0.2},   // Other sequence.
  };
  const auto out = ConsolidateMatches(in);
  // Window [3,5) starts exactly at the previous end: grouped (gap 0).
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[0].seq, 0u);
  EXPECT_EQ(out[0].start, 0u);
  EXPECT_EQ(out[1].start, 10u);
  EXPECT_EQ(out[2].seq, 1u);
}

TEST(ConsolidateTest, MaxGapBridgesNearbyWindows) {
  const std::vector<Match> in = {
      {0, 0, 3, 1.0},   // [0, 3)
      {0, 6, 3, 0.4},   // [6, 9): gap of 3.
  };
  EXPECT_EQ(ConsolidateMatches(in).size(), 2u);
  ConsolidateOptions bridge;
  bridge.max_gap = 3;
  const auto out = ConsolidateMatches(in, bridge);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_DOUBLE_EQ(out[0].distance, 0.4);
}

TEST(ConsolidateTest, TransitiveOverlapChains) {
  // a overlaps b, b overlaps c, but a does not overlap c: one group.
  const std::vector<Match> in = {
      {0, 0, 5, 3.0},   // [0, 5)
      {0, 4, 5, 2.0},   // [4, 9)
      {0, 8, 5, 1.0},   // [8, 13)
  };
  const auto out = ConsolidateMatches(in);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_DOUBLE_EQ(out[0].distance, 1.0);
}

TEST(ConsolidateTest, TieBreaksPreferEarlierShorter) {
  const std::vector<Match> in = {
      {0, 2, 5, 1.0},
      {0, 1, 5, 1.0},
      {0, 1, 3, 1.0},
  };
  const auto out = ConsolidateMatches(in);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].start, 1u);
  EXPECT_EQ(out[0].len, 3u);
}

TEST(ConsolidateTest, RealSearchResultsShrinkToEventCount) {
  // Plant one motif twice; the raw range result has many overlapping
  // windows, the consolidated result has ~2 per sequence region.
  datagen::RandomWalkOptions data;
  data.num_sequences = 1;
  data.avg_length = 120;
  data.seed = 9;
  seqdb::SequenceDatabase base = datagen::GenerateRandomWalks(data);
  seqdb::Sequence s = base.sequence(0);
  const std::vector<Value> motif = {50, 53, 51, 55, 52};
  std::copy(motif.begin(), motif.end(), s.begin() + 20);
  std::copy(motif.begin(), motif.end(), s.begin() + 80);
  seqdb::SequenceDatabase db;
  db.Add(std::move(s));

  IndexOptions options;
  options.kind = IndexKind::kSparse;
  options.num_categories = 16;
  auto index = Index::Build(&db, options);
  ASSERT_TRUE(index.ok());
  const auto raw = index->Search(motif, 4.0);
  ASSERT_GT(raw.size(), 2u) << "expect overlapping windows";
  const auto consolidated = ConsolidateMatches(raw);
  EXPECT_LT(consolidated.size(), raw.size());
  // Both planted sites survive.
  bool site1 = false, site2 = false;
  for (const Match& m : consolidated) {
    if (m.start <= 20 && m.start + m.len > 20) site1 = true;
    if (m.start <= 80 && m.start + m.len > 80) site2 = true;
  }
  EXPECT_TRUE(site1);
  EXPECT_TRUE(site2);
}

}  // namespace
}  // namespace tswarp::core
