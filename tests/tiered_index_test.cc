// TieredIndex unit and integration tests: append/seal/merge lifecycle,
// snapshot immutability, continuous-query exactly-once delivery, orphaned
// merge-file recovery, and the frozen-symbolization contract that makes
// tiered search results byte-identical to a monolithic rebuild (the full
// differential sweep lives in differential_test.cc).

#include "core/tiered_index.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <set>
#include <string>
#include <tuple>
#include <type_traits>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "core/index.h"
#include "seqdb/sequence_database.h"

namespace tswarp {
namespace {

using core::Index;
using core::IndexKind;
using core::IndexOptions;
using core::Match;
using core::TieredIndex;
using core::TieredOptions;
using core::TieredStats;

// PR 8 satellite: the only sanctioned index-swap paths are IndexHandle
// and TieredIndex — a raw `index = std::move(other)` (the PR 7 torn-swap
// hazard) must not compile.
static_assert(!std::is_move_assignable_v<Index>,
              "Index move-assignment must stay deleted");
static_assert(std::is_move_constructible_v<Index>,
              "Index stays movable for StatusOr and factories");
static_assert(!std::is_copy_constructible_v<Index>);

seqdb::Sequence RandomSeq(Rng* rng, std::size_t n) {
  seqdb::Sequence v;
  v.reserve(n);
  Value x = rng->Uniform(-10, 10);
  for (std::size_t i = 0; i < n; ++i) {
    x += rng->Gaussian(0, 1);
    v.push_back(x);
  }
  return v;
}

seqdb::SequenceDatabase BaseDb(int sequences = 6, std::uint64_t seed = 1) {
  Rng rng(seed);
  seqdb::SequenceDatabase db;
  for (int i = 0; i < sequences; ++i) {
    db.Add(RandomSeq(&rng, static_cast<std::size_t>(rng.UniformInt(8, 24))));
  }
  return db;
}

TieredOptions Opts(IndexKind kind, std::size_t memtable_max,
                   std::size_t max_sealed, bool background = false) {
  TieredOptions options;
  options.index.kind = kind;
  options.index.num_categories = 8;
  options.memtable_max_sequences = memtable_max;
  options.max_sealed_tiers = max_sealed;
  options.merge_in_background = background;
  return options;
}

void ExpectSameMatches(const std::vector<Match>& expected,
                       const std::vector<Match>& actual,
                       const std::string& context) {
  ASSERT_EQ(expected.size(), actual.size()) << context;
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(expected[i].seq, actual[i].seq) << context << " at " << i;
    EXPECT_EQ(expected[i].start, actual[i].start) << context << " at " << i;
    EXPECT_EQ(expected[i].len, actual[i].len) << context << " at " << i;
    EXPECT_EQ(expected[i].distance, actual[i].distance)
        << context << " at " << i;
  }
}

TEST(TieredIndexTest, AppendAssignsSequentialGlobalIds) {
  const seqdb::SequenceDatabase db = BaseDb(5);
  auto tiered = TieredIndex::Create(&db, Opts(IndexKind::kSparse, 4, 2));
  ASSERT_TRUE(tiered.ok()) << tiered.status().ToString();
  Rng rng(11);
  for (SeqId i = 0; i < 3; ++i) {
    auto id = (*tiered)->Append(RandomSeq(&rng, 12));
    ASSERT_TRUE(id.ok()) << id.status().ToString();
    EXPECT_EQ(*id, db.size() + i);
  }
  const TieredStats stats = (*tiered)->Stats();
  EXPECT_EQ(stats.appended_sequences, 3u);
  EXPECT_EQ((*tiered)->Snapshot()->total_sequences(), db.size() + 3);
}

TEST(TieredIndexTest, AppendRejectsEmptySequence) {
  const seqdb::SequenceDatabase db = BaseDb(3);
  auto tiered = TieredIndex::Create(&db, Opts(IndexKind::kCategorized, 4, 2));
  ASSERT_TRUE(tiered.ok());
  EXPECT_FALSE((*tiered)->Append({}).ok());
}

TEST(TieredIndexTest, AppendedSequenceIsImmediatelySearchable) {
  for (const IndexKind kind : {IndexKind::kSuffixTree,
                               IndexKind::kCategorized, IndexKind::kSparse}) {
    const seqdb::SequenceDatabase db = BaseDb(4);
    auto tiered = TieredIndex::Create(&db, Opts(kind, 4, 2));
    ASSERT_TRUE(tiered.ok()) << tiered.status().ToString();

    Rng rng(17);
    const seqdb::Sequence fresh = RandomSeq(&rng, 16);
    const std::vector<Value> probe(fresh.begin() + 4, fresh.begin() + 10);
    auto id = (*tiered)->Append(fresh);
    ASSERT_TRUE(id.ok());

    const std::vector<Match> matches =
        (*tiered)->Snapshot()->Search(probe, 0.01);
    const bool hit = std::any_of(matches.begin(), matches.end(),
                                 [&](const Match& m) { return m.seq == *id; });
    EXPECT_TRUE(hit) << "kind=" << core::IndexKindToString(kind)
                     << ": appended sequence not found";
  }
}

TEST(TieredIndexTest, MemtableSealsAtThresholdAndMergesBoundSealedTiers) {
  const seqdb::SequenceDatabase db = BaseDb(4);
  auto tiered = TieredIndex::Create(&db, Opts(IndexKind::kCategorized, 2, 1));
  ASSERT_TRUE(tiered.ok());
  Rng rng(23);

  ASSERT_TRUE((*tiered)->Append(RandomSeq(&rng, 10)).ok());
  TieredStats stats = (*tiered)->Stats();
  EXPECT_EQ(stats.memtable_sequences, 1u);
  EXPECT_EQ(stats.sealed_tiers, 0u);

  // Second append hits memtable_max_sequences: the tier is created sealed.
  ASSERT_TRUE((*tiered)->Append(RandomSeq(&rng, 10)).ok());
  stats = (*tiered)->Stats();
  EXPECT_EQ(stats.memtable_sequences, 0u);
  EXPECT_EQ(stats.sealed_tiers, 1u);
  EXPECT_EQ(stats.merges_completed, 0u);

  // Two more appends seal a second tier; inline compaction folds the pair
  // back under the max_sealed_tiers=1 budget.
  ASSERT_TRUE((*tiered)->Append(RandomSeq(&rng, 10)).ok());
  ASSERT_TRUE((*tiered)->Append(RandomSeq(&rng, 10)).ok());
  stats = (*tiered)->Stats();
  EXPECT_EQ(stats.sealed_tiers, 1u);
  EXPECT_EQ(stats.merges_completed, 1u);
  EXPECT_EQ(stats.pending_merges, 0u);
  // base + one merged sealed tier.
  EXPECT_EQ(stats.tiers.size(), 2u);
  EXPECT_EQ(stats.tiers[1].sequences, 4u);
  EXPECT_EQ(stats.tiers[1].first_seq, db.size());
  EXPECT_FALSE(stats.tiers[1].memtable);
}

TEST(TieredIndexTest, SnapshotsAreImmutableAcrossAppendsAndMerges) {
  const seqdb::SequenceDatabase db = BaseDb(5);
  auto tiered = TieredIndex::Create(&db, Opts(IndexKind::kSparse, 1, 1));
  ASSERT_TRUE(tiered.ok());
  Rng rng(31);
  const std::vector<Value> q = RandomSeq(&rng, 6);

  const auto before = (*tiered)->Snapshot();
  const std::size_t before_sequences = before->total_sequences();
  const std::vector<Match> before_matches = before->Search(q, 5.0);

  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE((*tiered)->Append(RandomSeq(&rng, 12)).ok());
  }
  (*tiered)->WaitForMerges();

  // The old snapshot still answers from its own (pinned) tiers.
  EXPECT_EQ(before->total_sequences(), before_sequences);
  ExpectSameMatches(before_matches, before->Search(q, 5.0),
                    "pre-append snapshot drifted");
  EXPECT_EQ((*tiered)->Snapshot()->total_sequences(), before_sequences + 5);
}

TEST(TieredIndexTest, SearchSpansBaseSealedAndMemtableTiers) {
  // Append the base sequences verbatim: every base match must reappear,
  // rebased to the appended global ids, in the same search.
  const seqdb::SequenceDatabase db = BaseDb(3);
  auto tiered = TieredIndex::Create(&db, Opts(IndexKind::kCategorized, 2, 2));
  ASSERT_TRUE(tiered.ok());
  for (SeqId id = 0; id < db.size(); ++id) {
    const auto span = db.sequence(id);
    ASSERT_TRUE(
        (*tiered)->Append(seqdb::Sequence(span.begin(), span.end())).ok());
  }

  const auto base_span = db.sequence(1);
  const std::vector<Value> q(base_span.begin(), base_span.begin() + 6);
  const std::vector<Match> matches = (*tiered)->Snapshot()->Search(q, 0.01);
  std::set<SeqId> seqs;
  for (const Match& m : matches) seqs.insert(m.seq);
  EXPECT_TRUE(seqs.count(1)) << "base tier match missing";
  EXPECT_TRUE(seqs.count(db.size() + 1)) << "appended tier match missing";
}

TEST(TieredIndexTest, ContinuousQueryDeliversEveryMatchExactlyOnce) {
  const seqdb::SequenceDatabase db = BaseDb(4);
  auto tiered = TieredIndex::Create(&db, Opts(IndexKind::kCategorized, 2, 1));
  ASSERT_TRUE(tiered.ok());
  Rng rng(41);
  const std::vector<Value> q = RandomSeq(&rng, 5);
  const Value eps = 6.0;

  std::vector<Match> delivered;
  std::set<std::tuple<SeqId, Pos, Pos>> seen;
  bool duplicate = false;
  const std::uint64_t qid = (*tiered)->RegisterContinuous(
      q, eps, [&](std::uint64_t, const std::vector<Match>& matches) {
        for (const Match& m : matches) {
          if (!seen.insert({m.seq, m.start, m.len}).second) duplicate = true;
          delivered.push_back(m);
        }
      });

  // Appends interleaved with (inline) merges: compactions must never
  // re-deliver a match from a merged-away tier.
  std::vector<SeqId> appended_ids;
  for (int i = 0; i < 6; ++i) {
    auto id = (*tiered)->Append(RandomSeq(&rng, 14));
    ASSERT_TRUE(id.ok());
    appended_ids.push_back(*id);
  }
  (*tiered)->WaitForMerges();
  EXPECT_FALSE(duplicate) << "a continuous match was delivered twice";

  // Ground truth: the matches a fresh search finds inside the appended
  // sequences are exactly the delivered set.
  const std::vector<Match> full = (*tiered)->Snapshot()->Search(q, eps);
  std::set<std::tuple<SeqId, Pos, Pos>> expected;
  for (const Match& m : full) {
    if (m.seq >= db.size()) expected.insert({m.seq, m.start, m.len});
  }
  EXPECT_EQ(expected, seen);

  (*tiered)->Unregister(qid);
  ASSERT_TRUE((*tiered)->Append(RandomSeq(&rng, 14)).ok());
  EXPECT_EQ(seen.size(), delivered.size());
  EXPECT_EQ((*tiered)->Stats().continuous_queries, 0u);
}

TEST(TieredIndexTest, ContinuousCallbackMayUnregisterItself) {
  const seqdb::SequenceDatabase db = BaseDb(3);
  auto tiered = TieredIndex::Create(&db, Opts(IndexKind::kCategorized, 4, 2));
  ASSERT_TRUE(tiered.ok());
  Rng rng(47);
  const seqdb::Sequence fresh = RandomSeq(&rng, 12);

  int deliveries = 0;
  std::uint64_t qid = 0;
  qid = (*tiered)->RegisterContinuous(
      std::vector<Value>(fresh.begin(), fresh.begin() + 5), 0.01,
      [&](std::uint64_t id, const std::vector<Match>&) {
        ++deliveries;
        (*tiered)->Unregister(id);
      });
  ASSERT_NE(qid, 0u);

  ASSERT_TRUE((*tiered)->Append(fresh).ok());
  EXPECT_EQ(deliveries, 1);
  ASSERT_TRUE((*tiered)->Append(fresh).ok());  // Unregistered: no redelivery.
  EXPECT_EQ(deliveries, 1);
}

TEST(TieredIndexTest, CleanupRemovesOnlyOrphanedTmpMergeBundles) {
  namespace fs = std::filesystem;
  const std::string dir = ::testing::TempDir() + "/tiered_cleanup";
  fs::create_directories(dir);
  const std::string base = dir + "/idx";
  const auto touch = [](const std::string& path) {
    std::ofstream(path) << "x";
  };
  touch(base + ".tmp-merge-3.nodes");
  touch(base + ".tmp-merge-3.meta");
  touch(base + ".tmp-merge-12.occs");
  touch(base + ".tier-1.nodes");  // A live merged tier: must survive.
  touch(base + ".nodes");         // The base bundle: must survive.

  core::CleanupOrphanedMergeFiles(base);

  EXPECT_FALSE(fs::exists(base + ".tmp-merge-3.nodes"));
  EXPECT_FALSE(fs::exists(base + ".tmp-merge-3.meta"));
  EXPECT_FALSE(fs::exists(base + ".tmp-merge-12.occs"));
  EXPECT_TRUE(fs::exists(base + ".tier-1.nodes"));
  EXPECT_TRUE(fs::exists(base + ".nodes"));
}

TEST(TieredIndexTest, DiskBackedMergeLeavesNoTmpFilesAndStaysSearchable) {
  namespace fs = std::filesystem;
  const std::string dir = ::testing::TempDir() + "/tiered_disk";
  fs::create_directories(dir);
  const seqdb::SequenceDatabase db = BaseDb(4);

  TieredOptions options = Opts(IndexKind::kCategorized, 1, 1);
  options.index.disk_path = dir + "/idx";
  options.index.disk_batch_sequences = 2;
  // Plant an orphan from a "crashed" merge: Create must remove it.
  std::ofstream(options.index.disk_path + ".tmp-merge-9.nodes") << "junk";

  auto tiered = TieredIndex::Create(&db, options);
  ASSERT_TRUE(tiered.ok()) << tiered.status().ToString();
  EXPECT_FALSE(fs::exists(options.index.disk_path + ".tmp-merge-9.nodes"));

  Rng rng(53);
  std::vector<seqdb::Sequence> appended;
  for (int i = 0; i < 4; ++i) {
    appended.push_back(RandomSeq(&rng, 12));
    ASSERT_TRUE((*tiered)->Append(appended.back()).ok());
  }
  (*tiered)->WaitForMerges();
  const TieredStats stats = (*tiered)->Stats();
  EXPECT_GE(stats.merges_completed, 1u);
  // Merged appended tiers live in their own on-disk bundles.
  EXPECT_TRUE(stats.tiers.back().on_disk || stats.tiers.size() > 2);

  // The merged tier answers: probe a subsequence of the first append,
  // which by now lives only inside merged tiers.
  const std::vector<Value> probe(appended[0].begin(),
                                 appended[0].begin() + 6);
  const std::vector<Match> matches = (*tiered)->Snapshot()->Search(probe, 0.01);
  EXPECT_TRUE(std::any_of(matches.begin(), matches.end(), [&](const Match& m) {
    return m.seq == db.size();
  }));

  // No merge temp files survive a successful compaction.
  for (const fs::directory_entry& entry : fs::directory_iterator(dir)) {
    EXPECT_EQ(entry.path().filename().string().find(".tmp-merge-"),
              std::string::npos)
        << "orphan: " << entry.path();
  }

  // Dropping the index drops the merged tiers' bundles too (the base
  // bundle persists for reopening).
  tiered->reset();
  for (const fs::directory_entry& entry : fs::directory_iterator(dir)) {
    EXPECT_EQ(entry.path().filename().string().find(".tier-"),
              std::string::npos)
        << "leaked tier bundle: " << entry.path();
  }
}

TEST(TieredIndexTest, BackgroundWorkerDrainsPendingMerges) {
  const seqdb::SequenceDatabase db = BaseDb(4);
  auto tiered = TieredIndex::Create(
      &db, Opts(IndexKind::kCategorized, 1, 1, /*background=*/true));
  ASSERT_TRUE(tiered.ok());
  Rng rng(61);
  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE((*tiered)->Append(RandomSeq(&rng, 10)).ok());
  }
  (*tiered)->WaitForMerges();
  const TieredStats stats = (*tiered)->Stats();
  EXPECT_EQ(stats.pending_merges, 0u);
  EXPECT_LE(stats.sealed_tiers, 1u);
  EXPECT_GE(stats.merges_completed, 1u);
  EXPECT_EQ((*tiered)->Snapshot()->total_sequences(), db.size() + 6);
}

}  // namespace
}  // namespace tswarp
